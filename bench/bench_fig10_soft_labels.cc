// Reproduces Fig. 10 (RQ5): strongly supervised baselines trained on CamAL
// soft labels. CamAL is trained on the EDF-Weak possession cohort, its
// predicted status on EDF-EV houses becomes soft labels, and each baseline
// is trained with 0%, 50%, and 100% of houses carrying strong labels (the
// rest using CamAL's soft labels).

#include <algorithm>

#include "bench_common.h"

namespace camal {
namespace {

void Run() {
  bench::PrintHeader("Fig. 10 — strong baselines on CamAL soft labels (RQ5)",
                     "Fig. 10 (soft-label data augmentation)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  // Simulate the EDF-EV cohort and split houses train/valid/test.
  auto houses = simulate::SimulateDataset(simulate::EdfEvProfile(),
                                          params.dataset_scale, 31);
  const data::ApplianceSpec spec =
      simulate::SpecFor(simulate::ApplianceType::kElectricVehicle);
  Rng rng(31);
  const auto n = static_cast<int64_t>(houses.size());
  auto split_result = data::SplitHouses(
      houses, std::max<int64_t>(1, n / 5), std::max<int64_t>(1, n / 4), &rng);
  if (!split_result.ok()) {
    std::printf("cohort too small at this scale\n");
    return;
  }
  const data::HouseSplit& split = split_result.value();
  data::BuildOptions opt;
  opt.window_length = params.window_length;
  auto train_r = data::BuildWindowDataset(split.train, spec, opt);
  auto valid_r = data::BuildWindowDataset(split.valid, spec, opt);
  auto test_r = data::BuildWindowDataset(split.test, spec, opt);
  if (!train_r.ok() || !valid_r.ok() || !test_r.ok()) {
    std::printf("could not build EDF-EV windows\n");
    return;
  }
  data::WindowDataset train = std::move(train_r).value();
  data::WindowDataset valid = std::move(valid_r).value();
  data::WindowDataset test = std::move(test_r).value();

  // Train CamAL on the EDF-Weak possession cohort and produce soft labels
  // for the EDF-EV training windows.
  auto weak_houses = simulate::SimulateDataset(simulate::EdfWeakProfile(),
                                               params.dataset_scale, 32);
  data::BuildOptions popt = opt;
  popt.possession_labels = true;
  auto weak_all = data::BuildWindowDataset(weak_houses, spec, popt);
  if (!weak_all.ok()) {
    std::printf("could not build EDF-Weak windows\n");
    return;
  }
  data::WindowDataset weak_balanced =
      data::BalanceByWeakLabel(weak_all.value(), &rng);
  std::vector<int64_t> widx_train, widx_valid;
  for (int64_t i = 0; i < weak_balanced.size(); ++i) {
    (i % 5 == 0 ? widx_valid : widx_train).push_back(i);
  }
  auto camal = core::CamalEnsemble::Train(weak_balanced.Subset(widx_train),
                                          weak_balanced.Subset(widx_valid),
                                          params.ensemble, 7);
  if (!camal.ok()) {
    std::printf("CamAL training failed: %s\n",
                camal.status().ToString().c_str());
    return;
  }
  core::CamalEnsemble ensemble = std::move(camal).value();
  core::CamalLocalizer localizer(&ensemble);
  core::LocalizationResult soft = localizer.Localize(train.inputs);

  // Mixtures: 0, half, all houses with strong labels; the rest soft.
  std::vector<double> strong_fractions = {0.0, 0.5, 1.0};
  if (params.mode == eval::BenchMode::kSmoke) strong_fractions = {0.0, 1.0};
  std::vector<baselines::BaselineKind> kinds = {
      baselines::BaselineKind::kTpnilm, baselines::BaselineKind::kBiGru};
  if (params.mode == eval::BenchMode::kFull) {
    kinds = {baselines::BaselineKind::kTpnilm,
             baselines::BaselineKind::kBiGru,
             baselines::BaselineKind::kUnetNilm,
             baselines::BaselineKind::kCrnnStrong,
             baselines::BaselineKind::kTransNilm};
  }

  // Distinct house ids in the training windows.
  std::vector<int> house_ids;
  for (int id : train.house_ids) {
    if (std::find(house_ids.begin(), house_ids.end(), id) ==
        house_ids.end()) {
      house_ids.push_back(id);
    }
  }

  TablePrinter table({"Method", "Strong houses", "Soft houses", "F1"});
  std::vector<std::vector<std::string>> csv_rows{
      {"method", "strong_houses", "soft_houses", "f1"}};
  baselines::BaselineScale scale;
  scale.width = params.baseline_width;

  for (double frac : strong_fractions) {
    const auto n_strong = static_cast<size_t>(
        std::llround(frac * static_cast<double>(house_ids.size())));
    // Targets: ground truth for strong houses, CamAL prediction otherwise.
    nn::Tensor targets({train.size(), train.window_length});
    for (int64_t i = 0; i < train.size(); ++i) {
      const int id = train.house_ids[static_cast<size_t>(i)];
      const auto pos = static_cast<size_t>(
          std::find(house_ids.begin(), house_ids.end(), id) -
          house_ids.begin());
      const bool strong = pos < n_strong;
      for (int64_t t = 0; t < train.window_length; ++t) {
        targets.at2(i, t) =
            strong ? train.status.at2(i, t) : soft.status.at2(i, t);
      }
    }
    for (baselines::BaselineKind kind : kinds) {
      Rng mrng(7);
      auto model = baselines::MakeBaseline(kind, scale, &mrng);
      eval::TrainConfig tc = params.train;
      eval::TrainWithSoftTargets(model.get(), train, targets, valid, tc);
      nn::Tensor probs = eval::PredictFrameProbabilities(model.get(), test);
      const eval::LocalizationScores scores =
          eval::ScoreLocalization(eval::ThresholdStatus(probs), test);
      table.AddRow({baselines::BaselineName(kind), FmtInt(n_strong),
                    FmtInt(house_ids.size() - n_strong),
                    Fmt(scores.f1, 3)});
      csv_rows.push_back({baselines::BaselineName(kind), FmtInt(n_strong),
                          FmtInt(house_ids.size() - n_strong),
                          Fmt(scores.f1, 4)});
    }
  }
  table.Print(stdout);
  bench::WriteCsv("fig10_soft_labels", csv_rows);
  std::printf("\nShape check vs paper: baselines trained purely on CamAL\n"
              "soft labels stay close to fully supervised scores, and\n"
              "mixing soft labels with scarce strong labels recovers most\n"
              "of the gap (paper: +34%% to +1200%% at <=1 strong house).\n");
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
