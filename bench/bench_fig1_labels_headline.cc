// Reproduces Fig. 1: localization F1 versus number of training labels for
// CamAL and the baselines on the dishwasher/IDEAL headline case. Weak
// methods consume 1 label per window, strong methods window_length labels
// per window, so at equal window budgets their label budgets differ by L.

#include "bench_common.h"
#include "eval/label_budget.h"

namespace camal {
namespace {

void Run() {
  bench::PrintHeader("Fig. 1 — F1 vs #training labels (dishwasher, IDEAL)",
                     "Fig. 1 (headline label-efficiency plot)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  bench::EvalCase eval_case{simulate::IdealProfile(),
                            simulate::ApplianceType::kDishwasher};
  bench::CaseData data;
  if (!bench::MakeCaseData(eval_case, params, 42, &data)) {
    std::printf("no usable simulated case at this scale; rerun with "
                "CAMAL_BENCH_MODE=fast or full\n");
    return;
  }

  const int steps = params.mode == eval::BenchMode::kSmoke ? 2
                    : params.mode == eval::BenchMode::kFast ? 4
                                                            : 6;
  const auto budgets =
      eval::GeometricBudgets(std::min<int64_t>(16, data.train.size()),
                             data.train.size(), steps);

  std::vector<baselines::BaselineKind> strong_kinds;
  if (params.mode == eval::BenchMode::kFull) {
    strong_kinds = {baselines::BaselineKind::kTpnilm,
                    baselines::BaselineKind::kBiGru,
                    baselines::BaselineKind::kUnetNilm,
                    baselines::BaselineKind::kCrnnStrong,
                    baselines::BaselineKind::kTransNilm};
  } else {
    strong_kinds = {baselines::BaselineKind::kTpnilm,
                    baselines::BaselineKind::kBiGru};
  }

  TablePrinter table({"Method", "#Windows", "#Labels", "F1"});
  std::vector<std::vector<std::string>> csv_rows{
      {"method", "windows", "labels", "f1"}};
  Rng rng(7);
  baselines::BaselineScale scale;
  scale.width = params.baseline_width;

  for (int64_t budget : budgets) {
    data::WindowDataset sub = eval::SubsetByBudget(data.train, budget, &rng);
    // CamAL (weak).
    auto camal_run = eval::RunCamalExperiment(
        sub, data.valid, data.test, params.ensemble,
        core::LocalizerOptions{}, 7);
    if (camal_run.ok()) {
      table.AddRow({"CamAL", FmtInt(budget),
                    FmtInt(camal_run.value().labels_used),
                    Fmt(camal_run.value().scores.f1, 3)});
      csv_rows.push_back({"CamAL", FmtInt(budget),
                          FmtInt(camal_run.value().labels_used),
                          Fmt(camal_run.value().scores.f1, 4)});
    }
    // CRNN Weak.
    auto crnn_run = eval::RunBaselineExperiment(
        baselines::BaselineKind::kCrnnWeak, scale, params.train, sub,
        data.valid, data.test, 7);
    if (crnn_run.ok()) {
      table.AddRow({"CRNN Weak", FmtInt(budget),
                    FmtInt(crnn_run.value().labels_used),
                    Fmt(crnn_run.value().scores.f1, 3)});
      csv_rows.push_back({"CRNN Weak", FmtInt(budget),
                          FmtInt(crnn_run.value().labels_used),
                          Fmt(crnn_run.value().scores.f1, 4)});
    }
    // Strongly supervised baselines (window_length labels per window).
    for (baselines::BaselineKind kind : strong_kinds) {
      auto run = eval::RunBaselineExperiment(kind, scale, params.train, sub,
                                             data.valid, data.test, 7);
      if (!run.ok()) continue;
      table.AddRow({baselines::BaselineName(kind), FmtInt(budget),
                    FmtInt(run.value().labels_used),
                    Fmt(run.value().scores.f1, 3)});
      csv_rows.push_back({baselines::BaselineName(kind), FmtInt(budget),
                          FmtInt(run.value().labels_used),
                          Fmt(run.value().scores.f1, 4)});
    }
  }
  table.Print(stdout);
  bench::WriteCsv("fig1_labels_headline", csv_rows);
  std::printf(
      "\nShape check vs paper: at equal #labels CamAL should dominate (the\n"
      "paper reports 2.2x better F1 at equal labels and ~5200x fewer labels\n"
      "at equal F1 for this case); strong baselines only catch up when\n"
      "given window_length(=%lld)x more labels per window.\n",
      static_cast<long long>(params.window_length));
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
