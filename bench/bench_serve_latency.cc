// Serving latency of the async front-end (serve::Service): per-request
// p50/p95/p99 latency and aggregate throughput versus worker count, for a
// burst of household scan requests. Latency is measured by the service
// itself (ScanResult::latency_seconds = admission-queue wait + scan), so
// under a full burst it includes the queueing the last requests see —
// the figure an operator sizing the worker pool cares about.

#include <algorithm>
#include <future>
#include <vector>

#include "bench_common.h"
#include "common/parallel_for.h"
#include "common/stopwatch.h"
#include "serve/service.h"

namespace camal {
namespace {

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// Deep queue of small households: each request carries only a few
/// windows, so per-request scans run tiny, underfilled GEMM batches even
/// when requests are plentiful. Cross-request coalescing
/// (ServiceOptions::coalesce_budget) merges the backlog's windows into
/// shared batches; this scenario sweeps the budget on a fixed worker
/// count and reports throughput plus the observed group occupancy.
void DeepQueueScenario(const eval::BenchParams& params,
                       core::CamalEnsemble* ensemble,
                       const serve::BatchRunnerOptions& runner) {
  int requests = 192;
  if (params.mode == eval::BenchMode::kSmoke) {
    requests = 48;
  } else if (params.mode == eval::BenchMode::kFull) {
    requests = 768;
  }
  // One window per request — the short-household extreme: a per-request
  // scan runs every forward pass at batch size 1 against a stream batch
  // size of 32, paying the full per-batch overhead (layer output
  // allocations, member/CAM setup, stitch bookkeeping) for every single
  // window. Coalescing is what fills these batches; longer households
  // amortize the overhead by themselves.
  const int64_t series_length = params.window_length;

  Rng rng(11);
  std::vector<std::vector<float>> cohort;
  cohort.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    std::vector<float> series(static_cast<size_t>(series_length));
    for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
    cohort.push_back(std::move(series));
  }
  const int workers = std::min(2, NumThreads());

  std::printf("\nDeep queue, small households — cross-request coalescing\n"
              "(%d requests of %lld samples each, %d workers)\n",
              requests, static_cast<long long>(series_length), workers);
  TablePrinter table({"Coalesce", "Req/sec", "Windows/sec", "p50 ms",
                      "Groups", "Occupancy"});
  std::vector<std::vector<std::string>> csv_rows{
      {"coalesce_budget", "requests_per_sec", "windows_per_sec", "p50_ms",
       "coalesced_groups", "mean_group_occupancy"}};
  double baseline_rps = 0.0, best_rps = 0.0;
  for (int budget : {1, 8, 32}) {
    serve::ServiceOptions service_opt;
    service_opt.workers = workers;
    service_opt.queue_capacity = 0;  // measure coalescing, not rejections
    service_opt.coalesce_budget = budget;
    serve::Service service(service_opt);
    CAMAL_CHECK(
        service.RegisterAppliance("appliance", ensemble, runner).ok());
    CAMAL_CHECK(service.Start().ok());

    auto burst = [&] {
      std::vector<std::future<Result<serve::ScanResult>>> futures;
      futures.reserve(cohort.size());
      for (size_t i = 0; i < cohort.size(); ++i) {
        serve::ScanRequest request;
        request.household_id = FmtInt(static_cast<int64_t>(i));
        request.appliance = "appliance";
        request.series = &cohort[i];
        futures.push_back(service.Submit(std::move(request)));
      }
      std::vector<serve::ScanResult> results;
      results.reserve(futures.size());
      for (auto& future : futures) {
        results.push_back(std::move(future.get()).value());
      }
      return results;
    };
    burst();  // warm replicas, scratch, allocator
    // Counters are cumulative since Start; snapshot after the warm-up so
    // the table reports the timed burst alone.
    const serve::ServiceStats warm = service.stats();

    Stopwatch watch;
    std::vector<serve::ScanResult> results = burst();
    const double wall = watch.ElapsedSeconds();
    service.Shutdown();

    std::vector<double> latencies_ms;
    latencies_ms.reserve(results.size());
    int64_t windows = 0;
    for (const serve::ScanResult& result : results) {
      latencies_ms.push_back(result.latency_seconds * 1e3);
      windows += result.windows;
    }
    std::sort(latencies_ms.begin(), latencies_ms.end());
    const serve::ServiceStats stats = service.stats();
    const int64_t groups = stats.coalesced_groups - warm.coalesced_groups;
    const int64_t grouped_requests =
        stats.coalesced_requests - warm.coalesced_requests;
    const double occupancy =
        groups > 0 ? static_cast<double>(grouped_requests) /
                         static_cast<double>(groups)
                   : 1.0;
    const double rps = wall > 0.0 ? requests / wall : 0.0;
    if (budget == 1) baseline_rps = rps;
    best_rps = std::max(best_rps, rps);
    const double wps = wall > 0.0 ? static_cast<double>(windows) / wall : 0.0;
    table.AddRow({FmtInt(budget), Fmt(rps, 1), Fmt(wps, 1),
                  Fmt(Percentile(latencies_ms, 0.50), 1), FmtInt(groups),
                  Fmt(occupancy, 1)});
    csv_rows.push_back({FmtInt(budget), Fmt(rps, 2), Fmt(wps, 2),
                        Fmt(Percentile(latencies_ms, 0.50), 2),
                        FmtInt(groups), Fmt(occupancy, 2)});
  }
  table.Print(stdout);
  bench::WriteCsv("serve_deep_queue", csv_rows);
  if (baseline_rps > 0.0) {
    std::printf("\ncoalescing speedup (best budget vs off): %.2fx — merged\n"
                "windows fill the GEMM batches that per-request scans of\n"
                "%lld-sample households leave mostly empty.\n",
                best_rps / baseline_rps,
                static_cast<long long>(series_length));
  }
}

void Run() {
  bench::PrintHeader("Serving latency — async serve::Service",
                     "serving extension (request latency vs workers)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  int requests = 48;
  int64_t series_length = 2048;
  if (params.mode == eval::BenchMode::kSmoke) {
    requests = 12;
    series_length = 512;
  } else if (params.mode == eval::BenchMode::kFull) {
    requests = 256;
    series_length = 17520;  // 30-min sampling for one year
  }

  Rng rng(7);
  core::CamalEnsemble ensemble =
      bench::MakeBenchEnsemble({5, 7, 9}, params.base_filters, &rng);
  serve::BatchRunnerOptions runner;
  runner.stream.window_length = params.window_length;
  runner.stream.stride = params.window_length / 2;
  runner.stream.batch_size = 32;
  runner.appliance_avg_power_w = 700.0f;

  std::vector<std::vector<float>> cohort;
  cohort.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    std::vector<float> series(static_cast<size_t>(series_length));
    for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
    cohort.push_back(std::move(series));
  }

  std::vector<int> worker_counts;
  for (int w : {1, 2, 4, 8}) {
    if (w == 1 || w <= NumThreads()) worker_counts.push_back(w);
  }

  TablePrinter table({"Workers", "Requests", "p50 ms", "p95 ms", "p99 ms",
                      "Req/sec", "Windows/sec"});
  std::vector<std::vector<std::string>> csv_rows{
      {"workers", "requests", "p50_ms", "p95_ms", "p99_ms",
       "requests_per_sec", "windows_per_sec"}};
  serve::ServiceStats totals;
  for (int workers : worker_counts) {
    serve::ServiceOptions service_opt;
    service_opt.workers = workers;
    service_opt.queue_capacity = 0;  // measure queueing, not rejections
    // This scenario isolates worker scaling on large households; the
    // coalescing win on small ones is measured by DeepQueueScenario.
    service_opt.coalesce_budget = 1;
    serve::Service service(service_opt);
    CAMAL_CHECK(
        service.RegisterAppliance("appliance", &ensemble, runner).ok());
    CAMAL_CHECK(service.Start().ok());

    auto burst = [&] {
      std::vector<std::future<Result<serve::ScanResult>>> futures;
      futures.reserve(cohort.size());
      for (size_t i = 0; i < cohort.size(); ++i) {
        serve::ScanRequest request;
        request.household_id = FmtInt(static_cast<int64_t>(i));
        request.appliance = "appliance";
        request.series = &cohort[i];
        futures.push_back(service.Submit(std::move(request)));
      }
      std::vector<serve::ScanResult> results;
      results.reserve(futures.size());
      for (auto& future : futures) {
        results.push_back(std::move(future.get()).value());
      }
      return results;
    };
    burst();  // warm replicas, scratch, allocator
    // Counters are cumulative since Start; snapshot after the warm-up so
    // the sweep totals below cover the timed bursts alone.
    const serve::ServiceStats warm = service.stats();

    Stopwatch watch;
    std::vector<serve::ScanResult> results = burst();
    const double wall = watch.ElapsedSeconds();

    std::vector<double> latencies_ms;
    latencies_ms.reserve(results.size());
    int64_t windows = 0;
    for (const serve::ScanResult& result : results) {
      latencies_ms.push_back(result.latency_seconds * 1e3);
      windows += result.windows;
    }
    std::sort(latencies_ms.begin(), latencies_ms.end());
    const double rps = wall > 0.0 ? requests / wall : 0.0;
    const double wps = wall > 0.0 ? windows / wall : 0.0;
    table.AddRow({FmtInt(workers), FmtInt(requests),
                  Fmt(Percentile(latencies_ms, 0.50), 1),
                  Fmt(Percentile(latencies_ms, 0.95), 1),
                  Fmt(Percentile(latencies_ms, 0.99), 1), Fmt(rps, 1),
                  Fmt(wps, 1)});
    csv_rows.push_back({FmtInt(workers), FmtInt(requests),
                        Fmt(Percentile(latencies_ms, 0.50), 2),
                        Fmt(Percentile(latencies_ms, 0.95), 2),
                        Fmt(Percentile(latencies_ms, 0.99), 2), Fmt(rps, 2),
                        Fmt(wps, 2)});
    const serve::ServiceStats stats = service.stats();
    totals.accepted += stats.accepted - warm.accepted;
    totals.completed += stats.completed - warm.completed;
    totals.rejected_invalid += stats.rejected_invalid - warm.rejected_invalid;
    totals.rejected_backpressure +=
        stats.rejected_backpressure - warm.rejected_backpressure;
  }
  table.Print(stdout);
  bench::WriteCsv("serve_latency", csv_rows);
  std::printf("\nacross the sweep: %lld accepted, %lld completed, "
              "%lld rejected invalid, %lld rejected by backpressure\n",
              static_cast<long long>(totals.accepted),
              static_cast<long long>(totals.completed),
              static_cast<long long>(totals.rejected_invalid),
              static_cast<long long>(totals.rejected_backpressure));
  std::printf("\nShape check: aggregate throughput should grow with the\n"
              "worker count (until CAMAL_THREADS=%d saturates) while burst\n"
              "p95/p99 latency shrinks — more workers drain the admission\n"
              "queue faster.\n",
              NumThreads());

  DeepQueueScenario(params, &ensemble, runner);
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
