// Serving latency of the async front-end (serve::Service): per-request
// p50/p95/p99 latency and aggregate throughput versus worker count, for a
// burst of household scan requests. Latency is measured by the service
// itself (ScanResult::latency_seconds = admission-queue wait + scan), so
// under a full burst it includes the queueing the last requests see —
// the figure an operator sizing the worker pool cares about.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/parallel_for.h"
#include "common/stopwatch.h"
#include "serve/service.h"

namespace camal {
namespace {

/// Deep queue of small households: each request carries only a few
/// windows, so per-request scans run tiny, underfilled GEMM batches even
/// when requests are plentiful. Cross-request coalescing
/// (ServiceOptions::coalesce_budget) merges the backlog's windows into
/// shared batches; this scenario sweeps the budget on a fixed worker
/// count and reports throughput plus the observed group occupancy.
void DeepQueueScenario(const eval::BenchParams& params,
                       core::CamalEnsemble* ensemble,
                       const serve::BatchRunnerOptions& runner) {
  int requests = 192;
  if (params.mode == eval::BenchMode::kSmoke) {
    requests = 48;
  } else if (params.mode == eval::BenchMode::kFull) {
    requests = 768;
  }
  // One window per request — the short-household extreme: a per-request
  // scan runs every forward pass at batch size 1 against a stream batch
  // size of 32, paying the full per-batch overhead (layer output
  // allocations, member/CAM setup, stitch bookkeeping) for every single
  // window. Coalescing is what fills these batches; longer households
  // amortize the overhead by themselves.
  const int64_t series_length = params.window_length;

  Rng rng(11);
  std::vector<std::vector<float>> cohort;
  cohort.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    std::vector<float> series(static_cast<size_t>(series_length));
    for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
    cohort.push_back(std::move(series));
  }
  const int workers = std::min(2, NumThreads());

  std::printf("\nDeep queue, small households — cross-request coalescing\n"
              "(%d requests of %lld samples each, %d workers)\n",
              requests, static_cast<long long>(series_length), workers);
  TablePrinter table({"Coalesce", "Req/sec", "Windows/sec", "p50 ms",
                      "Groups", "Occupancy"});
  std::vector<std::vector<std::string>> csv_rows{
      {"coalesce_budget", "requests_per_sec", "windows_per_sec", "p50_ms",
       "coalesced_groups", "mean_group_occupancy"}};
  double baseline_rps = 0.0, best_rps = 0.0;
  for (int budget : {1, 8, 32}) {
    serve::ServiceOptions service_opt;
    service_opt.workers = workers;
    service_opt.queue_capacity = 0;  // measure coalescing, not rejections
    service_opt.coalesce_budget = budget;
    serve::Service service(service_opt);
    CAMAL_CHECK(
        service.RegisterAppliance("appliance", ensemble, runner).ok());
    CAMAL_CHECK(service.Start().ok());

    auto burst = [&] {
      std::vector<std::future<Result<serve::ScanResult>>> futures;
      futures.reserve(cohort.size());
      for (size_t i = 0; i < cohort.size(); ++i) {
        serve::ScanRequest request;
        request.household_id = FmtInt(static_cast<int64_t>(i));
        request.appliance = "appliance";
        request.series = data::SeriesView(cohort[i]);
        futures.push_back(service.Submit(std::move(request)));
      }
      std::vector<serve::ScanResult> results;
      results.reserve(futures.size());
      for (auto& future : futures) {
        results.push_back(std::move(future.get()).value());
      }
      return results;
    };
    burst();  // warm replicas, scratch, allocator
    // Counters are cumulative since Start; snapshot after the warm-up so
    // the table reports the timed burst alone.
    const serve::ServiceStats warm = service.stats();

    Stopwatch watch;
    std::vector<serve::ScanResult> results = burst();
    const double wall = watch.ElapsedSeconds();
    service.Shutdown();

    std::vector<double> latencies_ms;
    latencies_ms.reserve(results.size());
    int64_t windows = 0;
    for (const serve::ScanResult& result : results) {
      latencies_ms.push_back(result.latency_seconds * 1e3);
      windows += result.windows;
    }
    const loadgen::LatencySummary latency =
        bench::SummarizeLatenciesMs(latencies_ms);
    const serve::ServiceStats stats = service.stats();
    const int64_t groups = stats.coalesced_groups - warm.coalesced_groups;
    const int64_t grouped_requests =
        stats.coalesced_requests - warm.coalesced_requests;
    const double occupancy =
        groups > 0 ? static_cast<double>(grouped_requests) /
                         static_cast<double>(groups)
                   : 1.0;
    const double rps = wall > 0.0 ? requests / wall : 0.0;
    if (budget == 1) baseline_rps = rps;
    best_rps = std::max(best_rps, rps);
    const double wps = wall > 0.0 ? static_cast<double>(windows) / wall : 0.0;
    table.AddRow({FmtInt(budget), Fmt(rps, 1), Fmt(wps, 1),
                  Fmt(latency.p50_ms, 1), FmtInt(groups),
                  Fmt(occupancy, 1)});
    csv_rows.push_back({FmtInt(budget), Fmt(rps, 2), Fmt(wps, 2),
                        Fmt(latency.p50_ms, 2), FmtInt(groups),
                        Fmt(occupancy, 2)});
  }
  table.Print(stdout);
  bench::WriteCsv("serve_deep_queue", csv_rows);
  if (baseline_rps > 0.0) {
    std::printf("\ncoalescing speedup (best budget vs off): %.2fx — merged\n"
                "windows fill the GEMM batches that per-request scans of\n"
                "%lld-sample households leave mostly empty.\n",
                best_rps / baseline_rps,
                static_cast<long long>(series_length));
  }
}

/// Resident set size in KB from /proc/self/status, or -1 where the file
/// does not exist (non-Linux).
int64_t ReadVmRssKb() {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return -1;
  char line[256];
  long long kb = -1;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::sscanf(line, "VmRSS: %lld", &kb) == 1) break;
  }
  std::fclose(file);
  return kb;
}

/// Long-lived streaming sessions under Poisson-arriving appends: each
/// household holds a serve::Session and keeps appending tail-sized deltas
/// (one stride of samples), so the incremental path re-feeds only the
/// window grid the new tail touches instead of rescanning the whole
/// series. Reports steady-state append latency, resident memory at
/// start/mid/end of the soak (per-session stitch state is the only thing
/// that should grow, linearly and slowly), and the measured speedup of
/// incremental appends over from-scratch rescans of the same prefixes.
///
/// The soak is OPEN-LOOP and charges latency from each append's intended
/// Poisson arrival time: the whole schedule is laid out up front, the
/// submit loop sleeps until each intended time regardless of how far the
/// service has fallen behind, and a slow append inflates the measured
/// latency of the appends queued behind it instead of silently delaying
/// their arrivals. (The scenario previously slept per-submission and
/// harvested in rounds — coordinated omission: every stall paused the
/// arrival process itself and vanished from the percentiles.)
void SoakScenario(const eval::BenchParams& params,
                  core::CamalEnsemble* ensemble,
                  const serve::BatchRunnerOptions& runner) {
  int sessions = 192;
  int appends = 12;
  if (params.mode == eval::BenchMode::kSmoke) {
    sessions = 128;  // the CI gate wants >= 100 sessions, ~10 appends
    appends = 10;
  } else if (params.mode == eval::BenchMode::kFull) {
    sessions = 512;
    appends = 16;
  }
  const auto append_samples = static_cast<size_t>(runner.stream.stride);
  const int workers = std::min(2, NumThreads());
  // Poisson process over the whole fleet: fleet-wide arrival rate of one
  // append per 100us keeps a deep, never-empty queue without letting the
  // arrival loop outrun the workers entirely.
  const double arrivals_per_second = 10'000.0;

  std::printf("\nStreaming session soak — incremental append-and-rescan\n"
              "(%d sessions x %d appends of %zu samples each, Poisson\n"
              "arrivals at %.0f appends/sec, %d workers)\n",
              sessions, appends, append_samples, arrivals_per_second,
              workers);

  serve::ServiceOptions service_opt;
  service_opt.workers = workers;
  service_opt.queue_capacity = 0;  // session flow control bounds appends
  service_opt.coalesce_budget = 8;
  serve::Service service(service_opt);
  CAMAL_CHECK(service.RegisterAppliance("appliance", ensemble, runner).ok());
  CAMAL_CHECK(service.Start().ok());

  Rng rng(23);
  std::vector<std::shared_ptr<serve::Session>> fleet;
  fleet.reserve(static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    serve::SessionOptions session_opt;
    session_opt.household_id = "house_" + FmtInt(s);
    fleet.push_back(service.CreateSession("appliance", session_opt).value());
  }
  auto make_chunk = [&] {
    std::vector<float> chunk(append_samples);
    for (auto& v : chunk) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
    return chunk;
  };

  // Warm-up round (replicas, scratch, per-session state) before the RSS
  // baseline, so "growth" below measures the steady state, not the first
  // allocations.
  {
    std::vector<std::future<Result<serve::ScanResult>>> futures;
    for (auto& session : fleet) {
      futures.push_back(session->AppendReadings(make_chunk()));
    }
    for (auto& future : futures) CAMAL_CHECK(future.get().ok());
  }
  const int64_t rss_start_kb = ReadVmRssKb();
  int64_t rss_mid_kb = rss_start_kb;

  // The fleet-wide Poisson schedule, intended arrival offsets laid out
  // before the first submission; appends rotate through the sessions.
  const int total_appends = sessions * appends;
  std::vector<double> intended;
  intended.reserve(static_cast<size_t>(total_appends));
  double next_arrival = 0.0;
  for (int k = 0; k < total_appends; ++k) {
    next_arrival += rng.Exponential(arrivals_per_second);
    intended.push_back(next_arrival);
  }

  std::vector<std::future<Result<serve::ScanResult>>> futures;
  std::vector<double> submit_offsets;
  futures.reserve(static_cast<size_t>(total_appends));
  submit_offsets.reserve(static_cast<size_t>(total_appends));
  Stopwatch watch;
  const auto soak_t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < total_appends; ++k) {
    std::this_thread::sleep_until(
        soak_t0 +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(intended[static_cast<size_t>(k)])));
    submit_offsets.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      soak_t0)
            .count());
    futures.push_back(
        fleet[static_cast<size_t>(k % sessions)]->AppendReadings(
            make_chunk()));
    if (k == total_appends / 2) rss_mid_kb = ReadVmRssKb();
  }
  loadgen::LatencyHistogram latency_hist;
  for (int k = 0; k < total_appends; ++k) {
    Result<serve::ScanResult> result = futures[static_cast<size_t>(k)].get();
    CAMAL_CHECK(result.ok());
    // Intended-arrival latency: schedule slip the driver accumulated plus
    // the service's own admission-to-completion measurement.
    latency_hist.Record(std::max(
        0.0, submit_offsets[static_cast<size_t>(k)] -
                 intended[static_cast<size_t>(k)] +
                 result.value().latency_seconds));
  }
  const double soak_wall = watch.ElapsedSeconds();
  const int64_t rss_end_kb = ReadVmRssKb();
  const serve::ServiceStats stats = service.stats();

  // Lifecycle sweep: half the fleet closes like polite clients, the rest
  // go silent and are reclaimed by the idle sweep.
  for (int s = 0; s < sessions / 2; ++s) CAMAL_CHECK(fleet[s]->Close().ok());
  const int64_t evicted = service.EvictIdleSessions(0.0);
  CAMAL_CHECK(service.live_sessions() == 0);
  service.Shutdown();

  // Incremental-vs-rescan speedup, measured directly on a BatchRunner
  // (the service is down, so the shared ensemble is free): replay one
  // session's append sequence, then from-scratch scan every prefix.
  const int replay = appends + 1;
  serve::BatchRunner incremental(ensemble, runner);
  serve::BatchRunner reference(ensemble, runner);
  std::vector<std::vector<float>> chunks;
  for (int k = 0; k < replay; ++k) chunks.push_back(make_chunk());
  serve::SessionScanState state;
  Stopwatch incremental_watch;
  for (const auto& chunk : chunks) incremental.AppendScan(&state, chunk);
  const double incremental_s = incremental_watch.ElapsedSeconds();
  std::vector<float> prefix;
  Stopwatch rescan_watch;
  for (const auto& chunk : chunks) {
    prefix.insert(prefix.end(), chunk.begin(), chunk.end());
    reference.Scan(prefix);
  }
  const double rescan_s = rescan_watch.ElapsedSeconds();
  const double speedup = incremental_s > 0.0 ? rescan_s / incremental_s : 0.0;

  const loadgen::LatencySummary latency = latency_hist.Summary();
  const double p50 = latency.p50_ms;
  const double p95 = latency.p95_ms;
  const double p99 = latency.p99_ms;
  const double aps = soak_wall > 0.0
                         ? static_cast<double>(latency.count) / soak_wall
                         : 0.0;
  const double growth_pct =
      rss_mid_kb > 0 ? 100.0 *
                           static_cast<double>(rss_end_kb - rss_mid_kb) /
                           static_cast<double>(rss_mid_kb)
                     : 0.0;

  TablePrinter table({"Appends", "Appends/sec", "p50 ms", "p95 ms", "p99 ms",
                      "Windows saved"});
  table.AddRow({FmtInt(latency.count), Fmt(aps, 1), Fmt(p50, 1), Fmt(p95, 1),
                Fmt(p99, 1), FmtInt(stats.incremental_windows_saved)});
  table.Print(stdout);
  std::printf("\nsteady-state RSS: start %lld KB, mid %lld KB, end %lld KB "
              "(growth after mid-soak %.1f%%)\n",
              static_cast<long long>(rss_start_kb),
              static_cast<long long>(rss_mid_kb),
              static_cast<long long>(rss_end_kb), growth_pct);
  std::printf("sessions: %lld created, %lld closed by clients, %lld "
              "reclaimed by the idle sweep, %lld readings appended\n",
              static_cast<long long>(stats.sessions_created),
              static_cast<long long>(sessions) -
                  static_cast<long long>(evicted),
              static_cast<long long>(evicted),
              static_cast<long long>(stats.appended_readings));
  std::printf("incremental speedup vs full rescan: %.2fx over %d tail-sized "
              "appends (%.3fs incremental, %.3fs rescans)\n",
              speedup, replay, incremental_s, rescan_s);

  std::string json = "{\n";
  json += "  \"bench\": \"serve_soak\",\n";
  json += "  \"sessions\": " + FmtInt(sessions) + ",\n";
  json += "  \"appends_per_session\": " + FmtInt(appends) + ",\n";
  json += "  \"append_samples\": " +
          FmtInt(static_cast<int64_t>(append_samples)) + ",\n";
  json += "  \"appends_per_sec\": " + Fmt(aps, 2) + ",\n";
  // Latency is charged from the intended Poisson arrival time (open-loop;
  // no coordinated omission). Earlier artifacts measured from submission
  // of a closed-loop-per-round driver, so percentiles are not comparable
  // across that change.
  json += "  \"latency_measured_from\": \"intended_arrival\",\n";
  json += "  \"p50_ms\": " + Fmt(p50, 3) + ",\n";
  json += "  \"p95_ms\": " + Fmt(p95, 3) + ",\n";
  json += "  \"p99_ms\": " + Fmt(p99, 3) + ",\n";
  json += "  \"rss_start_kb\": " + FmtInt(rss_start_kb) + ",\n";
  json += "  \"rss_mid_kb\": " + FmtInt(rss_mid_kb) + ",\n";
  json += "  \"rss_end_kb\": " + FmtInt(rss_end_kb) + ",\n";
  json += "  \"rss_growth_after_mid_pct\": " + Fmt(growth_pct, 2) + ",\n";
  json += "  \"incremental_windows_saved\": " +
          FmtInt(stats.incremental_windows_saved) + ",\n";
  json += "  \"sessions_evicted\": " + FmtInt(evicted) + ",\n";
  json += "  \"incremental_seconds\": " + Fmt(incremental_s, 4) + ",\n";
  json += "  \"rescan_seconds\": " + Fmt(rescan_s, 4) + ",\n";
  json += "  \"incremental_speedup\": " + Fmt(speedup, 3) + "\n";
  json += "}\n";
  bench::WriteTextFile("BENCH_soak.json", json);
}

/// Crash-recovery phase: stream a session fleet, checkpoint it, kill the
/// service, and time how long a cold service takes to restore the whole
/// fleet and resume streaming — the recovery wall-time an operator sizes
/// their restart budget by. Emits BENCH_recovery.json.
void RecoveryScenario(const eval::BenchParams& params,
                      core::CamalEnsemble* ensemble,
                      const serve::BatchRunnerOptions& runner) {
  int sessions = 96;
  int appends = 4;
  if (params.mode == eval::BenchMode::kSmoke) {
    sessions = 64;
    appends = 3;
  } else if (params.mode == eval::BenchMode::kFull) {
    sessions = 256;
    appends = 6;
  }
  const auto append_samples = static_cast<size_t>(runner.stream.stride);
  const std::string dir = "bench_recovery_ckpt";

  std::printf("\nCrash recovery — session checkpoint/restore\n"
              "(%d sessions x %d appends of %zu samples, then checkpoint,\n"
              "kill, and cold restore)\n",
              sessions, appends, append_samples);

  serve::ServiceOptions service_opt;
  service_opt.workers = std::min(2, NumThreads());
  service_opt.queue_capacity = 0;
  service_opt.coalesce_budget = 8;

  Rng rng(29);
  auto make_chunk = [&] {
    std::vector<float> chunk(append_samples);
    for (auto& v : chunk) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
    return chunk;
  };

  double checkpoint_s = 0.0;
  int64_t checkpoint_bytes = 0;
  {
    serve::Service service(service_opt);
    CAMAL_CHECK(
        service.RegisterAppliance("appliance", ensemble, runner).ok());
    CAMAL_CHECK(service.Start().ok());
    std::vector<std::shared_ptr<serve::Session>> fleet;
    fleet.reserve(static_cast<size_t>(sessions));
    for (int s = 0; s < sessions; ++s) {
      serve::SessionOptions session_opt;
      session_opt.household_id = "house_" + FmtInt(s);
      fleet.push_back(
          service.CreateSession("appliance", session_opt).value());
    }
    for (int round = 0; round < appends; ++round) {
      std::vector<std::future<Result<serve::ScanResult>>> futures;
      futures.reserve(fleet.size());
      for (auto& session : fleet) {
        futures.push_back(session->AppendReadings(make_chunk()));
      }
      for (auto& future : futures) CAMAL_CHECK(future.get().ok());
    }
    Stopwatch checkpoint_watch;
    CAMAL_CHECK(service.CheckpointSessions(dir).ok());
    checkpoint_s = checkpoint_watch.ElapsedSeconds();
    checkpoint_bytes = static_cast<int64_t>(
        std::filesystem::file_size(serve::Service::CheckpointFile(dir)));
    service.Shutdown();  // the "crash": only the snapshot survives
  }

  serve::Service revived(service_opt);
  CAMAL_CHECK(revived.RegisterAppliance("appliance", ensemble, runner).ok());
  CAMAL_CHECK(revived.Start().ok());
  Stopwatch restore_watch;
  Result<int64_t> restored = revived.RestoreSessions(dir);
  const double restore_s = restore_watch.ElapsedSeconds();
  CAMAL_CHECK(restored.ok());
  CAMAL_CHECK(restored.value() == sessions);

  // The fleet streams on: one more append per restored session.
  {
    std::vector<std::future<Result<serve::ScanResult>>> futures;
    futures.reserve(static_cast<size_t>(sessions));
    for (int s = 0; s < sessions; ++s) {
      auto session = revived.GetSession("house_" + FmtInt(s));
      CAMAL_CHECK(session.ok());
      futures.push_back(session.value()->AppendReadings(make_chunk()));
    }
    for (auto& future : futures) CAMAL_CHECK(future.get().ok());
  }
  const serve::ServiceStats stats = revived.stats();
  revived.Shutdown();
  std::filesystem::remove_all(dir);

  const double restore_rate =
      restore_s > 0.0 ? sessions / restore_s : 0.0;
  TablePrinter table({"Sessions", "Checkpoint ms", "Snapshot KB",
                      "Restore ms", "Sessions/s restored"});
  table.AddRow({FmtInt(sessions), Fmt(checkpoint_s * 1e3, 2),
                FmtInt(checkpoint_bytes / 1024), Fmt(restore_s * 1e3, 2),
                Fmt(restore_rate, 0)});
  table.Print(stdout);
  std::printf("restored %lld sessions in %.2f ms; every one resumed "
              "streaming after the cold restore\n",
              static_cast<long long>(stats.sessions_restored),
              restore_s * 1e3);

  std::string json = "{\n";
  json += "  \"bench\": \"serve_recovery\",\n";
  json += "  \"sessions\": " + FmtInt(sessions) + ",\n";
  json += "  \"appends_per_session\": " + FmtInt(appends) + ",\n";
  json += "  \"append_samples\": " +
          FmtInt(static_cast<int64_t>(append_samples)) + ",\n";
  json += "  \"checkpoint_seconds\": " + Fmt(checkpoint_s, 4) + ",\n";
  json += "  \"checkpoint_bytes\": " + FmtInt(checkpoint_bytes) + ",\n";
  json += "  \"restore_seconds\": " + Fmt(restore_s, 4) + ",\n";
  json += "  \"sessions_restored\": " + FmtInt(stats.sessions_restored) +
          ",\n";
  json += "  \"restore_sessions_per_sec\": " + Fmt(restore_rate, 1) + "\n";
  json += "}\n";
  bench::WriteTextFile("BENCH_recovery.json", json);
}

void Run() {
  bench::PrintHeader("Serving latency — async serve::Service",
                     "serving extension (request latency vs workers)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  int requests = 48;
  int64_t series_length = 2048;
  if (params.mode == eval::BenchMode::kSmoke) {
    requests = 12;
    series_length = 512;
  } else if (params.mode == eval::BenchMode::kFull) {
    requests = 256;
    series_length = 17520;  // 30-min sampling for one year
  }

  Rng rng(7);
  core::CamalEnsemble ensemble =
      bench::MakeBenchEnsemble({5, 7, 9}, params.base_filters, &rng);
  serve::BatchRunnerOptions runner;
  runner.stream.window_length = params.window_length;
  runner.stream.stride = params.window_length / 2;
  runner.stream.batch_size = 32;
  runner.appliance_avg_power_w = 700.0f;

  std::vector<std::vector<float>> cohort;
  cohort.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    std::vector<float> series(static_cast<size_t>(series_length));
    for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
    cohort.push_back(std::move(series));
  }

  std::vector<int> worker_counts;
  for (int w : {1, 2, 4, 8}) {
    if (w == 1 || w <= NumThreads()) worker_counts.push_back(w);
  }

  TablePrinter table({"Workers", "Requests", "p50 ms", "p95 ms", "p99 ms",
                      "Req/sec", "Windows/sec"});
  std::vector<std::vector<std::string>> csv_rows{
      {"workers", "requests", "p50_ms", "p95_ms", "p99_ms",
       "requests_per_sec", "windows_per_sec"}};
  serve::ServiceStats totals;
  for (int workers : worker_counts) {
    serve::ServiceOptions service_opt;
    service_opt.workers = workers;
    service_opt.queue_capacity = 0;  // measure queueing, not rejections
    // This scenario isolates worker scaling on large households; the
    // coalescing win on small ones is measured by DeepQueueScenario.
    service_opt.coalesce_budget = 1;
    serve::Service service(service_opt);
    CAMAL_CHECK(
        service.RegisterAppliance("appliance", &ensemble, runner).ok());
    CAMAL_CHECK(service.Start().ok());

    auto burst = [&] {
      std::vector<std::future<Result<serve::ScanResult>>> futures;
      futures.reserve(cohort.size());
      for (size_t i = 0; i < cohort.size(); ++i) {
        serve::ScanRequest request;
        request.household_id = FmtInt(static_cast<int64_t>(i));
        request.appliance = "appliance";
        request.series = data::SeriesView(cohort[i]);
        futures.push_back(service.Submit(std::move(request)));
      }
      std::vector<serve::ScanResult> results;
      results.reserve(futures.size());
      for (auto& future : futures) {
        results.push_back(std::move(future.get()).value());
      }
      return results;
    };
    burst();  // warm replicas, scratch, allocator
    // Counters are cumulative since Start; snapshot after the warm-up so
    // the sweep totals below cover the timed bursts alone.
    const serve::ServiceStats warm = service.stats();

    Stopwatch watch;
    std::vector<serve::ScanResult> results = burst();
    const double wall = watch.ElapsedSeconds();

    std::vector<double> latencies_ms;
    latencies_ms.reserve(results.size());
    int64_t windows = 0;
    for (const serve::ScanResult& result : results) {
      latencies_ms.push_back(result.latency_seconds * 1e3);
      windows += result.windows;
    }
    const loadgen::LatencySummary latency =
        bench::SummarizeLatenciesMs(latencies_ms);
    const double rps = wall > 0.0 ? requests / wall : 0.0;
    const double wps = wall > 0.0 ? windows / wall : 0.0;
    table.AddRow({FmtInt(workers), FmtInt(requests), Fmt(latency.p50_ms, 1),
                  Fmt(latency.p95_ms, 1), Fmt(latency.p99_ms, 1), Fmt(rps, 1),
                  Fmt(wps, 1)});
    csv_rows.push_back({FmtInt(workers), FmtInt(requests),
                        Fmt(latency.p50_ms, 2), Fmt(latency.p95_ms, 2),
                        Fmt(latency.p99_ms, 2), Fmt(rps, 2), Fmt(wps, 2)});
    const serve::ServiceStats stats = service.stats();
    totals.accepted += stats.accepted - warm.accepted;
    totals.completed += stats.completed - warm.completed;
    totals.rejected_invalid += stats.rejected_invalid - warm.rejected_invalid;
    totals.rejected_backpressure +=
        stats.rejected_backpressure - warm.rejected_backpressure;
  }
  table.Print(stdout);
  bench::WriteCsv("serve_latency", csv_rows);
  std::printf("\nacross the sweep: %lld accepted, %lld completed, "
              "%lld rejected invalid, %lld rejected by backpressure\n",
              static_cast<long long>(totals.accepted),
              static_cast<long long>(totals.completed),
              static_cast<long long>(totals.rejected_invalid),
              static_cast<long long>(totals.rejected_backpressure));
  std::printf("\nShape check: aggregate throughput should grow with the\n"
              "worker count (until CAMAL_THREADS=%d saturates) while burst\n"
              "p95/p99 latency shrinks — more workers drain the admission\n"
              "queue faster.\n",
              NumThreads());

  DeepQueueScenario(params, &ensemble, runner);
  SoakScenario(params, &ensemble, runner);
  RecoveryScenario(params, &ensemble, runner);
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
