#ifndef CAMAL_BENCH_BENCH_COMMON_H_
#define CAMAL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/table_printer.h"
#include "core/resnet.h"
#include "data/balance.h"
#include "data/split.h"
#include "eval/bench_mode.h"
#include "eval/experiment.h"
#include "loadgen/latency_histogram.h"
#include "simulate/profiles.h"

namespace camal::bench {

/// One (dataset, appliance) evaluation case of the paper (§V-A/B).
struct EvalCase {
  simulate::DatasetProfile profile;
  simulate::ApplianceType appliance;

  std::string Name() const {
    return profile.name + "/" + simulate::ApplianceName(appliance);
  }
};

/// The 11 cases of Table III / Fig. 5.
inline std::vector<EvalCase> AllCases() {
  using simulate::ApplianceType;
  std::vector<EvalCase> cases;
  auto add = [&](const simulate::DatasetProfile& p,
                 std::vector<ApplianceType> types) {
    for (ApplianceType t : types) cases.push_back({p, t});
  };
  add(simulate::UkdaleProfile(),
      {ApplianceType::kDishwasher, ApplianceType::kKettle,
       ApplianceType::kMicrowave});
  add(simulate::RefitProfile(),
      {ApplianceType::kDishwasher, ApplianceType::kKettle,
       ApplianceType::kMicrowave, ApplianceType::kWashingMachine});
  add(simulate::IdealProfile(),
      {ApplianceType::kDishwasher, ApplianceType::kShower,
       ApplianceType::kWashingMachine});
  add(simulate::EdfEvProfile(), {ApplianceType::kElectricVehicle});
  return cases;
}

/// Train/valid/test windows for one case.
struct CaseData {
  data::WindowDataset train;  ///< balanced by weak label
  data::WindowDataset valid;
  data::WindowDataset test;
};

/// Simulates the case's cohort (scaled by the bench mode), splits houses
/// per §V-B (distinct houses for train/valid/test), and windows + balances.
/// Returns false when the simulated cohort yields no usable case (e.g. no
/// house owns the appliance at tiny scales).
inline bool MakeCaseData(const EvalCase& eval_case,
                         const eval::BenchParams& params, uint64_t seed,
                         CaseData* out) {
  auto houses =
      simulate::SimulateDataset(eval_case.profile, params.dataset_scale, seed);
  // Keep only submetered houses for the standard (non-possession) pipeline.
  std::vector<data::HouseRecord> submetered;
  for (auto& h : houses) {
    if (!h.appliances.empty()) submetered.push_back(std::move(h));
  }
  if (submetered.size() < 3) return false;
  Rng rng(seed + 1);
  const auto n = static_cast<int64_t>(submetered.size());
  auto split = data::SplitHouses(submetered, std::max<int64_t>(1, n / 5),
                                 std::max<int64_t>(1, n / 4), &rng);
  if (!split.ok()) return false;
  data::BuildOptions opt;
  opt.window_length = params.window_length;
  const data::ApplianceSpec spec = simulate::SpecFor(eval_case.appliance);
  auto train = data::BuildWindowDataset(split.value().train, spec, opt);
  auto valid = data::BuildWindowDataset(split.value().valid, spec, opt);
  auto test = data::BuildWindowDataset(split.value().test, spec, opt);
  if (!train.ok() || !valid.ok() || !test.ok()) return false;
  out->train = data::BalanceByWeakLabel(train.value(), &rng);
  out->valid = std::move(valid).value();
  out->test = std::move(test).value();
  return out->train.size() >= 8 && out->valid.size() > 0 &&
         out->test.size() > 0;
}

/// Randomly initialized ResNet ensemble for inference/serving benches
/// (training-free: member weights come straight from \p rng).
inline core::CamalEnsemble MakeBenchEnsemble(
    const std::vector<int64_t>& kernel_sizes, int64_t base_filters,
    Rng* rng) {
  std::vector<core::EnsembleMember> members;
  for (int64_t kp : kernel_sizes) {
    core::ResNetConfig rc;
    rc.base_filters = base_filters;
    rc.kernel_size = kp;
    core::EnsembleMember member;
    member.model = std::make_unique<core::ResNetClassifier>(rc, rng);
    member.model->SetTraining(false);
    member.kernel_size = kp;
    members.push_back(std::move(member));
  }
  return core::CamalEnsemble::FromMembers(std::move(members));
}

/// Latency percentiles for a bench table, backed by the load harness's
/// log-bucketed histogram — the one percentile implementation in the
/// tree (each bench used to carry its own sort-a-vector copy).
/// Percentiles are bucket estimates (~2.5% relative error); max is exact.
inline loadgen::LatencySummary SummarizeLatenciesMs(
    const std::vector<double>& latencies_ms) {
  loadgen::LatencyHistogram histogram;
  for (const double ms : latencies_ms) histogram.Record(ms * 1e-3);
  return histogram.Summary();
}

/// Writes a CSV copy of a bench table under bench_results/.
inline void WriteCsv(const std::string& bench_name,
                     const std::vector<std::vector<std::string>>& rows) {
  (void)std::system("mkdir -p bench_results");
  CsvWriter writer("bench_results/" + bench_name + ".csv");
  for (const auto& row : rows) writer.AddRow(row);
  Status st = writer.Write();
  if (!st.ok()) {
    std::fprintf(stderr, "warning: %s\n", st.ToString().c_str());
  }
}

/// Writes a raw text artifact (e.g. machine-readable JSON for perf
/// tracking) under bench_results/.
inline void WriteTextFile(const std::string& filename,
                          const std::string& content) {
  (void)std::system("mkdir -p bench_results");
  const std::string path = "bench_results/" + filename;
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
}

/// Standard bench banner with the active mode.
inline void PrintHeader(const char* title, const char* paper_ref) {
  const eval::BenchParams params = eval::CurrentBenchParams();
  std::printf("==================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Mode: %s (CAMAL_BENCH_MODE={smoke,fast,full}); window=%lld, "
              "scale=%.2f\n",
              eval::BenchModeName(params.mode),
              static_cast<long long>(params.window_length),
              params.dataset_scale);
  std::printf("==================================================\n");
}

}  // namespace camal::bench

#endif  // CAMAL_BENCH_BENCH_COMMON_H_
