// Reproduces Fig. 9: label-acquisition cost (dollars / gCO2 per household)
// and storage cost (TB/year for 1M households, 5 appliances, 1-minute
// sampling) for strong vs weak vs possession-only labels.

#include "bench_common.h"
#include "eval/cost_model.h"

namespace camal {
namespace {

void Run() {
  bench::PrintHeader("Fig. 9 — label acquisition & storage costs",
                     "Fig. 9(a) costs per household, Fig. 9(b) storage");
  eval::CostModel model;

  TablePrinter costs({"Label regime", "USD/household (1 yr)",
                      "gCO2/household (1 yr)"});
  std::vector<std::vector<std::string>> csv_rows{
      {"regime", "usd_per_household_1yr", "gco2_per_household_1yr"}};
  const std::vector<std::pair<eval::LabelRegime, std::string>> regimes = {
      {eval::LabelRegime::kPerTimestamp, "per timestamp (NILM sensors)"},
      {eval::LabelRegime::kPerSubsequence, "per subsequence (weekly survey)"},
      {eval::LabelRegime::kPerHousehold, "per household (possession/CamAL)"},
  };
  for (const auto& [regime, name] : regimes) {
    const double usd = eval::CostUsdPerHousehold(model, regime, 1.0);
    const double gco2 = eval::CostGco2PerHousehold(model, regime, 1.0);
    costs.AddRow({name, Fmt(usd, 2), Fmt(gco2, 2)});
    csv_rows.push_back({name, Fmt(usd, 2), Fmt(gco2, 2)});
  }
  costs.Print(stdout);
  bench::WriteCsv("fig9a_costs", csv_rows);

  std::printf("\nStorage for 1M households, 5 appliances, 1-min sampling "
              "(Fig. 9(b)):\n");
  TablePrinter storage({"Labels", "TB/year"});
  const double strong = eval::StorageTbPerYearStrong(model, 1'000'000, 5,
                                                     60.0);
  const double weak = eval::StorageTbPerYearWeak(model, 1'000'000, 5, 60.0);
  storage.AddRow({"strong (aggregate + 5 submeters)", Fmt(strong, 2)});
  storage.AddRow({"weak (aggregate + possession bits)", Fmt(weak, 2)});
  storage.Print(stdout);
  bench::WriteCsv("fig9b_storage", {{"labels", "tb_per_year"},
                                    {"strong", Fmt(strong, 2)},
                                    {"weak", Fmt(weak, 2)}});
  std::printf("\nShape check vs paper: strong/weak storage ratio = %.1fx "
              "(paper: 6x); strong vs possession label cost ratio = %.0fx "
              "(paper: >2 orders of magnitude).\n",
              strong / weak,
              eval::CostUsdPerHousehold(model,
                                        eval::LabelRegime::kPerTimestamp,
                                        1.0) /
                  eval::CostUsdPerHousehold(
                      model, eval::LabelRegime::kPerHousehold, 1.0));
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
