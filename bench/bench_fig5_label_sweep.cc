// Reproduces Fig. 5: F1 vs number of training labels per case for every
// method. Full mode runs all 11 cases and 7 methods; fast/smoke modes run a
// representative subset (the crossover shape is the reproduction target).

#include "bench_common.h"
#include "eval/label_budget.h"

namespace camal {
namespace {

void Run() {
  bench::PrintHeader("Fig. 5 — F1 vs #labels for all cases and methods",
                     "Fig. 5 (label-efficiency sweep, 11 cases)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  std::vector<bench::EvalCase> cases;
  std::vector<baselines::BaselineKind> strong_kinds;
  int steps = 3;
  switch (params.mode) {
    case eval::BenchMode::kSmoke:
      cases = {{simulate::UkdaleProfile(), simulate::ApplianceType::kKettle}};
      strong_kinds = {baselines::BaselineKind::kTpnilm};
      steps = 2;
      break;
    case eval::BenchMode::kFast:
      cases = {{simulate::UkdaleProfile(), simulate::ApplianceType::kKettle},
               {simulate::RefitProfile(),
                simulate::ApplianceType::kDishwasher},
               {simulate::EdfEvProfile(),
                simulate::ApplianceType::kElectricVehicle}};
      strong_kinds = {baselines::BaselineKind::kTpnilm,
                      baselines::BaselineKind::kBiGru};
      steps = 3;
      break;
    case eval::BenchMode::kFull:
      cases = bench::AllCases();
      strong_kinds = {baselines::BaselineKind::kTpnilm,
                      baselines::BaselineKind::kBiGru,
                      baselines::BaselineKind::kUnetNilm,
                      baselines::BaselineKind::kCrnnStrong,
                      baselines::BaselineKind::kTransNilm};
      steps = 6;
      break;
  }

  TablePrinter table({"Case", "Method", "#Labels", "F1"});
  std::vector<std::vector<std::string>> csv_rows{
      {"case", "method", "labels", "f1"}};
  baselines::BaselineScale scale;
  scale.width = params.baseline_width;
  int case_idx = 0;

  for (const auto& eval_case : cases) {
    bench::CaseData data;
    if (!bench::MakeCaseData(eval_case, params, 500 + case_idx, &data)) {
      std::printf("skipping %s\n", eval_case.Name().c_str());
      ++case_idx;
      continue;
    }
    Rng rng(11 + case_idx);
    const auto budgets =
        eval::GeometricBudgets(std::min<int64_t>(16, data.train.size()),
                               data.train.size(), steps);
    for (int64_t budget : budgets) {
      data::WindowDataset sub = eval::SubsetByBudget(data.train, budget, &rng);
      auto camal_run = eval::RunCamalExperiment(
          sub, data.valid, data.test, params.ensemble,
          core::LocalizerOptions{}, 7);
      if (camal_run.ok()) {
        table.AddRow({eval_case.Name(), "CamAL",
                      FmtInt(camal_run.value().labels_used),
                      Fmt(camal_run.value().scores.f1, 3)});
        csv_rows.push_back({eval_case.Name(), "CamAL",
                            FmtInt(camal_run.value().labels_used),
                            Fmt(camal_run.value().scores.f1, 4)});
      }
      std::vector<baselines::BaselineKind> kinds = strong_kinds;
      kinds.push_back(baselines::BaselineKind::kCrnnWeak);
      for (baselines::BaselineKind kind : kinds) {
        auto run = eval::RunBaselineExperiment(kind, scale, params.train, sub,
                                               data.valid, data.test, 7);
        if (!run.ok()) continue;
        table.AddRow({eval_case.Name(), baselines::BaselineName(kind),
                      FmtInt(run.value().labels_used),
                      Fmt(run.value().scores.f1, 3)});
        csv_rows.push_back({eval_case.Name(), baselines::BaselineName(kind),
                            FmtInt(run.value().labels_used),
                            Fmt(run.value().scores.f1, 4)});
      }
    }
    ++case_idx;
  }
  table.Print(stdout);
  bench::WriteCsv("fig5_label_sweep", csv_rows);
  std::printf("\nShape check vs paper: at matched label budgets, weak CamAL\n"
              "leads; strong baselines need ~window_length x more labels\n"
              "(paper: 20x-500x, avg 144x) to match CamAL's F1.\n");
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
