// Reproduces Fig. 7(b): per-epoch training time versus the number of
// households, on synthetic white-noise data exactly as §V-H.3 describes
// (random consumption series with per-timestamp labels; strong baselines
// slice windows, weak methods consume whole sequences). Also measures the
// serving side of household scaling: end-to-end BatchRunner scans
// (detection + localization + power estimation) per household count,
// batched vs single-window.

#include <future>

#include "bench_common.h"
#include "common/parallel_for.h"
#include "common/stopwatch.h"
#include "core/resnet.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "serve/service.h"

namespace camal {
namespace {

// White-noise "household": one long series + random status labels.
data::WindowDataset WhiteNoiseWindows(int households, int64_t series_length,
                                      int64_t window, uint64_t seed) {
  Rng rng(seed);
  const int64_t per_house = series_length / window;
  const int64_t n = households * per_house;
  data::WindowDataset ds;
  ds.window_length = window;
  ds.appliance = {"noise", 300.0f, 800.0f};
  ds.inputs = nn::Tensor({n, 1, window});
  ds.status = nn::Tensor({n, window});
  ds.appliance_power = nn::Tensor({n, window});
  for (int64_t i = 0; i < n; ++i) {
    bool any = false;
    for (int64_t t = 0; t < window; ++t) {
      ds.inputs.at3(i, 0, t) = static_cast<float>(rng.Uniform(0.0, 1.0));
      const bool on = rng.Bernoulli(0.1);
      ds.status.at2(i, t) = on ? 1.0f : 0.0f;
      any = any || on;
    }
    ds.weak_labels.push_back(any ? 1 : 0);
    ds.house_ids.push_back(static_cast<int>(i / per_house));
  }
  return ds;
}

// One epoch of weak classifier training on whole sequences.
double CamalEpochSeconds(int households, int64_t series_length,
                         int64_t base_filters, uint64_t seed) {
  Rng rng(seed);
  core::ResNetConfig rc;
  rc.base_filters = base_filters;
  rc.kernel_size = 7;
  core::ResNetClassifier model(rc, &rng);
  nn::Adam adam(model.Parameters(), 1e-3f);
  // Whole-sequence input, one weak label per household; batch of 4 houses.
  Stopwatch watch;
  const int64_t batch = 4;
  for (int64_t begin = 0; begin < households; begin += batch) {
    const int64_t b = std::min<int64_t>(batch, households - begin);
    nn::Tensor x({b, 1, series_length});
    std::vector<int> labels;
    for (int64_t i = 0; i < b; ++i) {
      for (int64_t t = 0; t < series_length; ++t) {
        x.at3(i, 0, t) = static_cast<float>(rng.Uniform(0.0, 1.0));
      }
      labels.push_back(static_cast<int>(rng.UniformInt(0, 1)));
    }
    nn::Tensor logits = model.Forward(x);
    nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
    adam.ZeroGrad();
    model.Backward(loss.grad);
    adam.Step();
  }
  return watch.ElapsedSeconds();
}

void Run() {
  bench::PrintHeader("Fig. 7(b) — per-epoch training time vs #households",
                     "Fig. 7(b) (scalability on synthetic white noise)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  int64_t series_length = 1024;
  std::vector<int> household_counts = {2, 4, 8};
  if (params.mode == eval::BenchMode::kFull) {
    series_length = 17520;  // 30-min sampling for one year (the paper's)
    household_counts = {2, 4, 8, 16, 32};
  } else if (params.mode == eval::BenchMode::kSmoke) {
    series_length = 512;
    household_counts = {2, 4};
  }

  baselines::BaselineScale scale;
  scale.width = params.baseline_width;
  std::vector<baselines::BaselineKind> kinds = {
      baselines::BaselineKind::kCrnnWeak, baselines::BaselineKind::kTpnilm,
      baselines::BaselineKind::kBiGru};
  if (params.mode == eval::BenchMode::kFull) {
    kinds = baselines::AllBaselines();
  }

  TablePrinter table({"Method", "#Households", "Seconds/epoch"});
  std::vector<std::vector<std::string>> csv_rows{
      {"method", "households", "seconds_per_epoch"}};
  for (int h : household_counts) {
    // CamAL: one weak classifier over whole sequences (1 label/house).
    const double camal_s =
        CamalEpochSeconds(h, series_length, params.base_filters, 3);
    table.AddRow({"CamAL (1 ResNet, whole series)", FmtInt(h),
                  Fmt(camal_s, 3)});
    csv_rows.push_back({"CamAL", FmtInt(h), Fmt(camal_s, 4)});

    data::WindowDataset windows =
        WhiteNoiseWindows(h, series_length, params.window_length, 9);
    for (baselines::BaselineKind kind : kinds) {
      Rng rng(5);
      auto model = baselines::MakeBaseline(kind, scale, &rng);
      eval::TrainConfig one_epoch = params.train;
      one_epoch.max_epochs = 1;
      one_epoch.patience = 0;
      eval::TrainStats stats;
      if (baselines::IsWeaklySupervised(kind)) {
        stats = eval::TrainWeakMilModel(model.get(), windows, windows,
                                        one_epoch);
      } else {
        stats = eval::TrainStrongModel(model.get(), windows, windows,
                                       one_epoch);
      }
      table.AddRow({baselines::BaselineName(kind), FmtInt(h),
                    Fmt(stats.seconds_per_epoch, 3)});
      csv_rows.push_back({baselines::BaselineName(kind), FmtInt(h),
                          Fmt(stats.seconds_per_epoch, 4)});
    }
  }
  table.Print(stdout);
  bench::WriteCsv("fig7b_scaling_households", csv_rows);
  std::printf("\nShape check vs paper: CamAL's per-epoch cost grows with\n"
              "#households far more slowly than the strongly supervised\n"
              "sequence-to-sequence baselines (which train on every sliced\n"
              "window of every house).\n");

  // ------------------------------------------------------------------
  // Serving scalability: scan whole household series end to end through
  // the batched inference runtime (overlapping windows, ensemble
  // detection, CAM localization, power estimation) and through the same
  // pipeline one window at a time.
  // ------------------------------------------------------------------
  Rng member_rng(11);
  core::CamalEnsemble ensemble =
      bench::MakeBenchEnsemble({5, 7, 9}, params.base_filters, &member_rng);

  serve::BatchRunnerOptions batched_opt;
  batched_opt.stream.window_length = params.window_length;
  batched_opt.stream.stride = params.window_length / 2;
  batched_opt.stream.batch_size = 32;
  batched_opt.appliance_avg_power_w = 700.0f;
  serve::BatchRunnerOptions single_opt = batched_opt;
  single_opt.stream.batch_size = 1;
  serve::BatchRunner batched_runner(&ensemble, batched_opt);
  serve::BatchRunner single_runner(&ensemble, single_opt);

  TablePrinter serve_table(
      {"Serving mode", "#Households", "Windows/sec", "Households/sec"});
  std::vector<std::vector<std::string>> serve_csv{
      {"mode", "households", "windows_per_sec", "households_per_sec"}};
  for (int h : household_counts) {
    Rng series_rng(17);
    std::vector<std::vector<float>> cohort;
    cohort.reserve(static_cast<size_t>(h));
    for (int i = 0; i < h; ++i) {
      std::vector<float> series(static_cast<size_t>(series_length));
      for (auto& v : series) {
        v = static_cast<float>(series_rng.Uniform(0.0, 3000.0));
      }
      cohort.push_back(std::move(series));
    }
    for (bool batched : {false, true}) {
      serve::BatchRunner& runner = batched ? batched_runner : single_runner;
      runner.Scan(cohort.front());  // warm scratch + allocator
      Stopwatch watch;
      int64_t windows = 0;
      for (const auto& series : cohort) {
        windows += runner.Scan(series).windows;
      }
      const double seconds = watch.ElapsedSeconds();
      const double wps = seconds > 0.0 ? windows / seconds : 0.0;
      const double hps = seconds > 0.0 ? h / seconds : 0.0;
      serve_table.AddRow({batched ? "BatchRunner (batch 32)"
                                  : "BatchRunner (single-window)",
                          FmtInt(h), Fmt(wps, 1), Fmt(hps, 2)});
      serve_csv.push_back({batched ? "batched" : "single", FmtInt(h),
                           Fmt(wps, 2), Fmt(hps, 3)});
    }
  }
  std::printf("\nServing: end-to-end household scans (window=%lld, "
              "stride=%lld)\n",
              static_cast<long long>(batched_opt.stream.window_length),
              static_cast<long long>(batched_opt.stream.stride));
  serve_table.Print(stdout);
  bench::WriteCsv("fig7b_serving_households", serve_csv);

  // ------------------------------------------------------------------
  // Multi-core serving: households x worker-count scaling through the
  // async front-end. serve::Service feeds a worker pool (one BatchRunner +
  // ensemble replica per worker) from its admission queue; the thread
  // budget left over after the worker fan-out serves the conv GEMMs
  // inside each worker. Worker counts are capped by CAMAL_THREADS — rerun
  // with CAMAL_THREADS=4 (or more) to see the multi-core speedup.
  // ------------------------------------------------------------------
  std::vector<int> worker_counts;
  for (int s : {1, 2, 4, 8}) {
    if (s == 1 || s <= NumThreads()) worker_counts.push_back(s);
  }
  TablePrinter serve_scale_table({"#Households", "Workers", "Inner threads",
                                  "Seconds", "Windows/sec", "Speedup vs 1"});
  std::vector<std::vector<std::string>> serve_scale_csv{
      {"households", "workers", "inner_threads", "seconds",
       "windows_per_sec", "speedup_vs_1"}};
  for (int h : household_counts) {
    Rng series_rng(17);
    std::vector<std::vector<float>> cohort;
    cohort.reserve(static_cast<size_t>(h));
    for (int i = 0; i < h; ++i) {
      std::vector<float> series(static_cast<size_t>(series_length));
      for (auto& v : series) {
        v = static_cast<float>(series_rng.Uniform(0.0, 3000.0));
      }
      cohort.push_back(std::move(series));
    }
    double base_seconds = 0.0;
    for (int s : worker_counts) {
      serve::ServiceOptions service_opt;
      service_opt.workers = s;
      service_opt.queue_capacity = 0;  // whole cohort at once
      serve::Service service(service_opt);
      CAMAL_CHECK(
          service.RegisterAppliance("noise", &ensemble, batched_opt).ok());
      CAMAL_CHECK(service.Start().ok());
      auto scan_cohort = [&] {
        std::vector<std::future<Result<serve::ScanResult>>> futures;
        futures.reserve(cohort.size());
        for (size_t i = 0; i < cohort.size(); ++i) {
          serve::ScanRequest request;
          request.household_id = FmtInt(static_cast<int64_t>(i));
          request.appliance = "noise";
          request.series = data::SeriesView(cohort[i]);
          futures.push_back(service.Submit(std::move(request)));
        }
        int64_t windows = 0;
        for (auto& future : futures) {
          windows += future.get().value().windows;
        }
        return windows;
      };
      scan_cohort();  // warm replicas, scratch, allocator
      Stopwatch watch;
      const int64_t windows = scan_cohort();
      const double seconds = watch.ElapsedSeconds();
      if (s == worker_counts.front()) base_seconds = seconds;
      const double wps = seconds > 0.0 ? windows / seconds : 0.0;
      const double speedup =
          seconds > 0.0 ? base_seconds / seconds : 0.0;
      const int inner = service.inner_budget();
      serve_scale_table.AddRow({FmtInt(h), FmtInt(s), FmtInt(inner),
                                Fmt(seconds, 3), Fmt(wps, 1),
                                Fmt(speedup, 2)});
      serve_scale_csv.push_back({FmtInt(h), FmtInt(s), FmtInt(inner),
                                 Fmt(seconds, 4), Fmt(wps, 2),
                                 Fmt(speedup, 3)});
    }
  }
  std::printf("\nAsync sharded serving (serve::Service, CAMAL_THREADS=%d)\n",
              NumThreads());
  serve_scale_table.Print(stdout);
  bench::WriteCsv("fig7b_sharded_serving", serve_scale_csv);
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
