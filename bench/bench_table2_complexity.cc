// Reproduces Table II: theoretical complexity and trainable-parameter
// counts of CamAL and every baseline, instantiated at paper-scale widths —
// and measures each model's inference throughput on the training-kernel
// Forward (the pre-batched-runtime serving path, "before") against the
// batched ForwardInference path ("after"), writing the machine-readable
// BENCH_table2.json so CI tracks the per-baseline speedups per commit.

#include <cmath>
#include <map>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/resnet.h"

namespace camal {
namespace {

// Times `iters` calls of `forward` (each covering `windows_per_call`
// windows) and returns windows/second.
template <typename Fn>
double Throughput(Fn&& forward, int iters, int64_t windows_per_call) {
  Stopwatch watch;
  for (int i = 0; i < iters; ++i) forward();
  const double elapsed = watch.ElapsedSeconds();
  return elapsed > 0.0
             ? static_cast<double>(iters) * windows_per_call / elapsed
             : 0.0;
}

double MaxAbsDiff(const nn::Tensor& a, const nn::Tensor& b) {
  double max_diff = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    max_diff =
        std::max(max_diff, std::abs(static_cast<double>(a.at(i)) - b.at(i)));
  }
  return max_diff;
}

int Run() {
  bench::PrintHeader("Table II — model complexity and trainable parameters",
                     "Table II (complexity analysis, §V-C)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  Rng rng(1);
  TablePrinter table({"Model", "Theoretical complexity", "#Params (ours)",
                      "#Params (paper)"});
  std::vector<std::vector<std::string>> csv_rows{
      {"model", "complexity", "params_ours", "params_paper"}};

  // CamAL: n ResNets at 64 base filters (paper: n x 570K).
  core::ResNetConfig rc;
  rc.base_filters = 64;
  rc.kernel_size = 7;
  core::ResNetClassifier resnet(rc, &rng);
  const int64_t per_resnet = resnet.NumParameters();
  table.AddRow({"CamAL (n ResNets)", "O(n * L * C^2 * K)",
                "n x " + FmtInt(per_resnet), "n x 570K"});
  csv_rows.push_back({"CamAL", "O(n*L*C^2*K)",
                      std::to_string(per_resnet), "570000"});

  const std::vector<std::pair<baselines::BaselineKind, std::string>> rows = {
      {baselines::BaselineKind::kCrnnStrong,
       "O(L * C^2 * K * (I*H + H^2))"},
      {baselines::BaselineKind::kBiGru, "O(L * C^2 * K * (I*H + H^2))"},
      {baselines::BaselineKind::kUnetNilm, "O(L * C^2 * K)"},
      {baselines::BaselineKind::kTpnilm, "O(L * C^2 * K)"},
      {baselines::BaselineKind::kTransNilm,
       "O(L^2 * D + L * C^2 * K)"},
  };
  const std::map<baselines::BaselineKind, std::string> paper_counts = {
      {baselines::BaselineKind::kCrnnStrong, "1049K"},
      {baselines::BaselineKind::kBiGru, "244K"},
      {baselines::BaselineKind::kUnetNilm, "3197K"},
      {baselines::BaselineKind::kTpnilm, "328K"},
      {baselines::BaselineKind::kTransNilm, "12418K"},
  };
  baselines::BaselineScale full;  // width = 1.0
  for (const auto& [kind, complexity] : rows) {
    auto model = baselines::MakeBaseline(kind, full, &rng);
    table.AddRow({baselines::BaselineName(kind), complexity,
                  FmtInt(model->NumParameters()),
                  paper_counts.at(kind)});
    csv_rows.push_back({baselines::BaselineName(kind), complexity,
                        std::to_string(model->NumParameters()),
                        paper_counts.at(kind)});
  }
  table.Print(stdout);
  bench::WriteCsv("table2_complexity", csv_rows);

  // ----------------------------------------------------------------------
  // Empirical inference cost behind the complexity column: every model on
  // the training-kernel Forward (eval mode — what the comparison benches
  // used to time) vs the batched ForwardInference path they now run.
  // ----------------------------------------------------------------------
  std::printf("\nInference throughput — training Forward (before) vs "
              "batched ForwardInference (after)\n");

  // Batch 32 in every mode: serving batches are what the runtime is
  // sized for, and smaller batches under-amortize per-batch costs on the
  // tiny smoke models.
  const int64_t batch = 32;
  int64_t len = params.window_length;
  int iters = 5;
  if (params.mode == eval::BenchMode::kSmoke) {
    len = 64;
    iters = 10;  // tiny models: calls are microseconds, noise needs reps
  } else if (params.mode == eval::BenchMode::kFull) {
    iters = 20;
  }

  Rng data_rng(3);
  nn::Tensor inputs({batch, 1, len});
  for (int64_t i = 0; i < inputs.numel(); ++i) {
    inputs.at(i) = static_cast<float>(data_rng.Uniform(0.0, 1.0));
  }

  baselines::BaselineScale bench_scale;
  bench_scale.width = params.baseline_width;

  TablePrinter tput_table({"Model", "Fwd w/s (before)", "Inf w/s (after)",
                           "Speedup", "Max |diff|"});
  std::string json_rows;
  bool parity_ok = true;
  auto measure = [&](const std::string& name, nn::Module* model) {
    model->SetTraining(false);
    // Warm both paths: first calls pay page faults and scratch growth.
    model->Forward(inputs);
    model->ForwardInference(inputs);
    const double before =
        Throughput([&] { model->Forward(inputs); }, iters, batch);
    const double after =
        Throughput([&] { model->ForwardInference(inputs); }, iters, batch);
    // Parity gate: the fast path must agree with the training kernels.
    const double diff =
        MaxAbsDiff(model->Forward(inputs), model->ForwardInference(inputs));
    const double speedup = before > 0.0 ? after / before : 0.0;
    tput_table.AddRow({name, Fmt(before, 1), Fmt(after, 1),
                       Fmt(speedup, 2) + "x", Fmt(diff, 6)});
    if (!json_rows.empty()) json_rows += ",";
    json_rows += "\n    {\"model\": \"" + name +
                 "\", \"forward_windows_per_sec\": " + Fmt(before, 2) +
                 ", \"inference_windows_per_sec\": " + Fmt(after, 2) +
                 ", \"speedup\": " + Fmt(speedup, 3) +
                 ", \"max_abs_diff\": " + Fmt(diff, 6) + "}";
    if (diff > 1e-4) {
      parity_ok = false;
      std::printf("FAIL: %s Forward/ForwardInference disagree (%g > 1e-4)\n",
                  name.c_str(), diff);
    }
  };

  for (const auto& [kind, complexity] : rows) {
    (void)complexity;
    Rng model_rng(7);
    auto model = baselines::MakeBaseline(kind, bench_scale, &model_rng);
    measure(baselines::BaselineName(kind), model.get());
  }
  {
    Rng model_rng(7);
    core::ResNetConfig bench_rc;
    bench_rc.base_filters = params.base_filters;
    bench_rc.kernel_size = 7;
    core::ResNetClassifier bench_resnet(bench_rc, &model_rng);
    measure("CamAL-ResNet", &bench_resnet);
  }
  tput_table.Print(stdout);

  bench::WriteTextFile(
      "BENCH_table2.json",
      std::string("{\n  \"bench\": \"table2_complexity\",\n") +
          "  \"mode\": \"" + eval::BenchModeName(params.mode) + "\"," +
          "\n  \"batch\": " + FmtInt(batch) +
          ",\n  \"window_length\": " + FmtInt(len) +
          ",\n  \"rows\": [" + json_rows + "\n  ]\n}\n");
  std::printf("\nWrote bench_results/BENCH_table2.json (per-model "
              "before/after inference throughput).\n");

  std::printf(
      "\nNote: our widths follow the published architectures; parameter\n"
      "counts are the same order of magnitude but not identical to the\n"
      "authors' exact configurations (see DESIGN.md substitutions).\n");
  if (!parity_ok) {
    std::printf("\nFAIL: at least one model's batched inference diverged "
                "from its training forward (see lines above).\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace camal

int main() { return camal::Run(); }
