// Reproduces Table II: theoretical complexity and trainable-parameter
// counts of CamAL and every baseline, instantiated at paper-scale widths.

#include <map>

#include "bench_common.h"
#include "core/resnet.h"

namespace camal {
namespace {

void Run() {
  bench::PrintHeader("Table II — model complexity and trainable parameters",
                     "Table II (complexity analysis, §V-C)");

  Rng rng(1);
  TablePrinter table({"Model", "Theoretical complexity", "#Params (ours)",
                      "#Params (paper)"});
  std::vector<std::vector<std::string>> csv_rows{
      {"model", "complexity", "params_ours", "params_paper"}};

  // CamAL: n ResNets at 64 base filters (paper: n x 570K).
  core::ResNetConfig rc;
  rc.base_filters = 64;
  rc.kernel_size = 7;
  core::ResNetClassifier resnet(rc, &rng);
  const int64_t per_resnet = resnet.NumParameters();
  table.AddRow({"CamAL (n ResNets)", "O(n * L * C^2 * K)",
                "n x " + FmtInt(per_resnet), "n x 570K"});
  csv_rows.push_back({"CamAL", "O(n*L*C^2*K)",
                      std::to_string(per_resnet), "570000"});

  const std::vector<std::pair<baselines::BaselineKind, std::string>> rows = {
      {baselines::BaselineKind::kCrnnStrong,
       "O(L * C^2 * K * (I*H + H^2))"},
      {baselines::BaselineKind::kBiGru, "O(L * C^2 * K * (I*H + H^2))"},
      {baselines::BaselineKind::kUnetNilm, "O(L * C^2 * K)"},
      {baselines::BaselineKind::kTpnilm, "O(L * C^2 * K)"},
      {baselines::BaselineKind::kTransNilm,
       "O(L^2 * D + L * C^2 * K)"},
  };
  const std::map<baselines::BaselineKind, std::string> paper_counts = {
      {baselines::BaselineKind::kCrnnStrong, "1049K"},
      {baselines::BaselineKind::kBiGru, "244K"},
      {baselines::BaselineKind::kUnetNilm, "3197K"},
      {baselines::BaselineKind::kTpnilm, "328K"},
      {baselines::BaselineKind::kTransNilm, "12418K"},
  };
  baselines::BaselineScale full;  // width = 1.0
  for (const auto& [kind, complexity] : rows) {
    auto model = baselines::MakeBaseline(kind, full, &rng);
    table.AddRow({baselines::BaselineName(kind), complexity,
                  FmtInt(model->NumParameters()),
                  paper_counts.at(kind)});
    csv_rows.push_back({baselines::BaselineName(kind), complexity,
                        std::to_string(model->NumParameters()),
                        paper_counts.at(kind)});
  }
  table.Print(stdout);
  bench::WriteCsv("table2_complexity", csv_rows);
  std::printf(
      "\nNote: our widths follow the published architectures; parameter\n"
      "counts are the same order of magnitude but not identical to the\n"
      "authors' exact configurations (see DESIGN.md substitutions).\n");
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
