// Reproduces Fig. 7(c): inference throughput (windows/second) as a
// function of the input window length, for CamAL's ensemble and every
// baseline.

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/resnet.h"
#include "nn/loss.h"

namespace camal {
namespace {

// Times `iters` single-window forward passes and returns windows/second.
template <typename Fn>
double Throughput(Fn&& forward, int iters) {
  Stopwatch watch;
  for (int i = 0; i < iters; ++i) forward();
  const double elapsed = watch.ElapsedSeconds();
  return elapsed > 0.0 ? iters / elapsed : 0.0;
}

void Run() {
  bench::PrintHeader("Fig. 7(c) — inference throughput vs input length",
                     "Fig. 7(c) (windows/second per method)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  std::vector<int64_t> lengths = {128, 256, 512};
  int iters = 20;
  if (params.mode == eval::BenchMode::kSmoke) {
    lengths = {64, 128};
    iters = 5;
  } else if (params.mode == eval::BenchMode::kFull) {
    lengths = {128, 256, 512, 1024, 2048};
    iters = 50;
  }

  baselines::BaselineScale scale;
  scale.width = params.baseline_width;
  const int ensemble_n = params.ensemble.ensemble_size;

  TablePrinter table({"Method", "Input length", "Windows/sec"});
  std::vector<std::vector<std::string>> csv_rows{
      {"method", "length", "windows_per_sec"}};

  for (int64_t len : lengths) {
    Rng rng(3);
    nn::Tensor x({1, 1, len});
    for (int64_t i = 0; i < x.numel(); ++i) {
      x.at(i) = static_cast<float>(rng.Uniform(0.0, 1.0));
    }
    // CamAL: n ResNet forwards + CAM arithmetic per window.
    std::vector<std::unique_ptr<core::ResNetClassifier>> members;
    for (int m = 0; m < ensemble_n; ++m) {
      core::ResNetConfig rc;
      rc.base_filters = params.base_filters;
      rc.kernel_size = 7;
      members.push_back(std::make_unique<core::ResNetClassifier>(rc, &rng));
      members.back()->SetTraining(false);
    }
    const double camal_tput = Throughput(
        [&] {
          for (auto& m : members) m->Forward(x);
        },
        iters);
    table.AddRow({"CamAL (ensemble)", FmtInt(len), Fmt(camal_tput, 1)});
    csv_rows.push_back({"CamAL", FmtInt(len), Fmt(camal_tput, 2)});

    for (baselines::BaselineKind kind : baselines::AllBaselines()) {
      if (kind == baselines::BaselineKind::kCrnnStrong) continue;  // same net
      if ((len % 4) != 0 || len < 32) continue;
      auto model = baselines::MakeBaseline(kind, scale, &rng);
      model->SetTraining(false);
      const double tput = Throughput([&] { model->Forward(x); }, iters);
      table.AddRow({baselines::BaselineName(kind), FmtInt(len),
                    Fmt(tput, 1)});
      csv_rows.push_back({baselines::BaselineName(kind), FmtInt(len),
                          Fmt(tput, 2)});
    }
  }
  table.Print(stdout);
  bench::WriteCsv("fig7c_throughput", csv_rows);
  std::printf("\nShape check vs paper: CamAL's throughput sits between the\n"
              "light convolutional baselines (TPNILM, Unet-NILM — faster)\n"
              "and the recurrent/transformer baselines (CRNN Weak,\n"
              "TransNILM — much slower, BPTT-free but serial or quadratic).\n");
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
