// Reproduces Fig. 7(c): inference throughput (windows/second) as a
// function of the input window length, for CamAL's ensemble and every
// baseline — and measures the batched inference runtime directly against
// the single-window loop it replaces (same ensemble, same windows,
// outputs checked to agree within 1e-4).

#include <cmath>
#include <limits>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/resnet.h"
#include "nn/loss.h"

namespace camal {
namespace {

// Times `iters` calls of `forward` (each covering `windows_per_call`
// windows) and returns windows/second.
template <typename Fn>
double Throughput(Fn&& forward, int iters, int64_t windows_per_call) {
  Stopwatch watch;
  for (int i = 0; i < iters; ++i) forward();
  const double elapsed = watch.ElapsedSeconds();
  return elapsed > 0.0 ? static_cast<double>(iters) * windows_per_call /
                             elapsed
                       : 0.0;
}

void Run() {
  bench::PrintHeader("Fig. 7(c) — inference throughput vs input length",
                     "Fig. 7(c) (windows/second per method)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  std::vector<int64_t> lengths = {128, 256, 512};
  int iters = 20;
  if (params.mode == eval::BenchMode::kSmoke) {
    lengths = {64, 128};
    iters = 8;
  } else if (params.mode == eval::BenchMode::kFull) {
    lengths = {128, 256, 512, 1024, 2048};
    iters = 50;
  }
  constexpr int64_t kBatch = 32;

  baselines::BaselineScale scale;
  scale.width = params.baseline_width;
  const int ensemble_n = params.ensemble.ensemble_size;

  TablePrinter table({"Method", "Input length", "Windows/sec"});
  std::vector<std::vector<std::string>> csv_rows{
      {"method", "length", "windows_per_sec"}};
  // Machine-readable mirror of the CamAL rows (BENCH_fig7c.json) so CI
  // can track the serving-throughput trajectory across PRs.
  std::string json_rows;
  auto add_json_row = [&json_rows](const std::string& method, int64_t length,
                                   double windows_per_sec) {
    if (!json_rows.empty()) json_rows += ",";
    json_rows += "\n    {\"method\": \"" + method +
                 "\", \"length\": " + FmtInt(length) +
                 ", \"windows_per_sec\": " + Fmt(windows_per_sec, 2) + "}";
  };

  bool agreement_ok = true;
  double worst_ratio = std::numeric_limits<double>::infinity();
  for (int64_t len : lengths) {
    Rng rng(3);
    // A batch of windows, plus per-window (1, 1, len) views of it.
    nn::Tensor batch({kBatch, 1, len});
    for (int64_t i = 0; i < batch.numel(); ++i) {
      batch.at(i) = static_cast<float>(rng.Uniform(0.0, 1.0));
    }
    std::vector<nn::Tensor> windows;
    windows.reserve(kBatch);
    for (int64_t i = 0; i < kBatch; ++i) {
      nn::Tensor w({1, 1, len});
      for (int64_t t = 0; t < len; ++t) w.at3(0, 0, t) = batch.at3(i, 0, t);
      windows.push_back(std::move(w));
    }

    core::CamalEnsemble ensemble = bench::MakeBenchEnsemble(
        std::vector<int64_t>(static_cast<size_t>(ensemble_n), 7),
        params.base_filters, &rng);

    // Warm both paths before timing: first calls pay page faults, scratch
    // growth, and glibc's mmap-threshold adaptation for batch-sized
    // allocations — steady-state serving never sees any of that.
    for (int warm = 0; warm < 3; ++warm) {
      ensemble.DetectProbability(windows.front());
      ensemble.DetectProbabilityBatched(batch);
    }

    // Single-window loop (the pre-runtime serving path): one forward pass
    // per window per ensemble member.
    const double single_tput = Throughput(
        [&] {
          for (const nn::Tensor& w : windows) ensemble.DetectProbability(w);
        },
        iters, kBatch);
    // Batched runtime: all windows through every member in one pass.
    const double batched_tput = Throughput(
        [&] { ensemble.DetectProbabilityBatched(batch); }, iters, kBatch);

    // Correctness gate: both paths must produce the same probabilities.
    nn::Tensor batched_prob = ensemble.DetectProbabilityBatched(batch);
    for (int64_t i = 0; i < kBatch; ++i) {
      const float single_prob = ensemble.DetectProbability(windows[i]).at(0);
      if (std::abs(single_prob - batched_prob.at(i)) > 1e-4f) {
        agreement_ok = false;
      }
    }
    const double ratio =
        single_tput > 0.0 ? batched_tput / single_tput : 0.0;
    worst_ratio = std::min(worst_ratio, ratio);

    table.AddRow({"CamAL (single-window loop)", FmtInt(len),
                  Fmt(single_tput, 1)});
    table.AddRow({"CamAL (batched runtime)", FmtInt(len),
                  Fmt(batched_tput, 1)});
    csv_rows.push_back({"CamAL-single", FmtInt(len), Fmt(single_tput, 2)});
    csv_rows.push_back({"CamAL-batched", FmtInt(len), Fmt(batched_tput, 2)});
    csv_rows.push_back({"CamAL-batched-speedup", FmtInt(len), Fmt(ratio, 2)});
    add_json_row("CamAL-single", len, single_tput);
    add_json_row("CamAL-batched", len, batched_tput);

    for (baselines::BaselineKind kind : baselines::AllBaselines()) {
      if (kind == baselines::BaselineKind::kCrnnStrong) continue;  // same net
      if ((len % 4) != 0 || len < 32) continue;
      auto model = baselines::MakeBaseline(kind, scale, &rng);
      model->SetTraining(false);
      const double tput = Throughput(
          [&] { model->Forward(windows.front()); }, iters, 1);
      table.AddRow({baselines::BaselineName(kind), FmtInt(len),
                    Fmt(tput, 1)});
      csv_rows.push_back({baselines::BaselineName(kind), FmtInt(len),
                          Fmt(tput, 2)});
    }
  }
  table.Print(stdout);
  bench::WriteCsv("fig7c_throughput", csv_rows);
  bench::WriteTextFile(
      "BENCH_fig7c.json",
      std::string("{\n  \"bench\": \"fig7c_throughput\",\n") +
          "  \"mode\": \"" + eval::BenchModeName(params.mode) + "\",\n" +
          "  \"batch_size\": " + FmtInt(kBatch) + ",\n" +
          "  \"worst_batched_speedup\": " + Fmt(worst_ratio, 3) + ",\n" +
          "  \"agreement_ok\": " + (agreement_ok ? "true" : "false") +
          ",\n  \"rows\": [" + json_rows + "\n  ]\n}\n");
  std::printf("\nBatched runtime vs single-window loop at batch %lld: "
              "worst speedup %.2fx (target >= 3x), outputs %s (1e-4).\n",
              static_cast<long long>(kBatch), worst_ratio,
              agreement_ok ? "AGREE" : "DISAGREE");
  // Correctness gate: a disagreement between the two paths must fail the
  // CI smoke-bench step, not just print.
  CAMAL_CHECK_MSG(agreement_ok,
                  "batched and single-window outputs disagree beyond 1e-4");
  std::printf("\nShape check vs paper: CamAL's throughput sits between the\n"
              "light convolutional baselines (TPNILM, Unet-NILM — faster)\n"
              "and the recurrent/transformer baselines (CRNN Weak,\n"
              "TransNILM — much slower, serial or quadratic).\n");
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
