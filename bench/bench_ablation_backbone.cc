// Ablation of a §IV-A design choice: the paper argues a simple ResNet
// backbone beats deeper general-purpose classifiers (InceptionTime) for
// CamAL — comparable detection with better efficiency and cleaner CAMs.
// This bench trains both backbones through Algorithm 1 and compares
// detection, localization, parameters, and training time.

#include "bench_common.h"

namespace camal {
namespace {

void Run() {
  bench::PrintHeader("Ablation — ResNet vs InceptionTime backbone",
                     "design choice discussed in §IV-A (not a paper table)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  std::vector<bench::EvalCase> cases = {
      {simulate::RefitProfile(), simulate::ApplianceType::kKettle},
      {simulate::RefitProfile(), simulate::ApplianceType::kDishwasher}};
  if (params.mode == eval::BenchMode::kSmoke) cases.resize(1);

  TablePrinter table({"Case", "Backbone", "Bal.Acc.", "F1", "#Params",
                      "Train s"});
  std::vector<std::vector<std::string>> csv_rows{
      {"case", "backbone", "balanced_accuracy", "f1", "params",
       "train_seconds"}};
  int idx = 0;
  for (const auto& eval_case : cases) {
    bench::CaseData data;
    if (!bench::MakeCaseData(eval_case, params, 1100 + idx, &data)) {
      ++idx;
      continue;
    }
    for (core::BackboneKind backbone :
         {core::BackboneKind::kResNet, core::BackboneKind::kInception}) {
      core::EnsembleConfig config = params.ensemble;
      config.backbone = backbone;
      auto run = eval::RunCamalExperiment(data.train, data.valid, data.test,
                                          config, core::LocalizerOptions{},
                                          7);
      if (!run.ok()) continue;
      table.AddRow({eval_case.Name(), core::BackboneKindName(backbone),
                    Fmt(run.value().detection_balanced_accuracy, 3),
                    Fmt(run.value().scores.f1, 3),
                    FmtInt(run.value().num_parameters),
                    Fmt(run.value().train_seconds, 1)});
      csv_rows.push_back({eval_case.Name(),
                          core::BackboneKindName(backbone),
                          Fmt(run.value().detection_balanced_accuracy, 4),
                          Fmt(run.value().scores.f1, 4),
                          FmtInt(run.value().num_parameters),
                          Fmt(run.value().train_seconds, 2)});
    }
    ++idx;
  }
  table.Print(stdout);
  bench::WriteCsv("ablation_backbone", csv_rows);
  std::printf("\nShape check vs paper's argument: both backbones detect\n"
              "comparably, but the ResNet reaches it with a shallower,\n"
              "cheaper network whose kernel size is directly tunable per\n"
              "member — the reason §IV-A picks it over InceptionTime.\n");
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
