// Reproduces Table IV: CamAL design ablations on REFIT — removing the
// attention-sigmoid module, and removing kernel diversity (all members use
// k_p = 7 as in the original TSC ResNet).

#include "bench_common.h"
#include "metrics/classification.h"

namespace camal {
namespace {

struct Accumulator {
  double f1 = 0, pr = 0, rc = 0, mae = 0, mr = 0;
  int n = 0;
  void Add(const eval::LocalizationScores& s) {
    f1 += s.f1;
    pr += s.precision;
    rc += s.recall;
    mae += s.mae;
    mr += s.matching_ratio;
    ++n;
  }
};

void Run() {
  bench::PrintHeader("Table IV — CamAL design ablations (REFIT)",
                     "Table IV (attention module, kernel diversity)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  std::vector<bench::EvalCase> cases = {
      {simulate::RefitProfile(), simulate::ApplianceType::kDishwasher},
      {simulate::RefitProfile(), simulate::ApplianceType::kKettle},
      {simulate::RefitProfile(), simulate::ApplianceType::kMicrowave},
      {simulate::RefitProfile(), simulate::ApplianceType::kWashingMachine}};
  if (params.mode == eval::BenchMode::kSmoke) cases.resize(2);

  Accumulator base, no_attention, fixed_kernel;
  int idx = 0;
  for (const auto& eval_case : cases) {
    bench::CaseData data;
    if (!bench::MakeCaseData(eval_case, params, 800 + idx, &data)) {
      ++idx;
      continue;
    }
    // Full CamAL and the attention ablation share one trained ensemble.
    auto full_run = eval::RunCamalExperiment(
        data.train, data.valid, data.test, params.ensemble,
        core::LocalizerOptions{}, 7);
    core::LocalizerOptions no_attn;
    no_attn.use_attention = false;
    auto no_attn_run = eval::RunCamalExperiment(
        data.train, data.valid, data.test, params.ensemble, no_attn, 7);
    // Kernel-diversity ablation: every member uses k_p = 7.
    core::EnsembleConfig fixed = params.ensemble;
    fixed.kernel_sizes.assign(fixed.kernel_sizes.size(), 7);
    auto fixed_run = eval::RunCamalExperiment(
        data.train, data.valid, data.test, fixed,
        core::LocalizerOptions{}, 7);
    if (full_run.ok()) base.Add(full_run.value().scores);
    if (no_attn_run.ok()) no_attention.Add(no_attn_run.value().scores);
    if (fixed_run.ok()) fixed_kernel.Add(fixed_run.value().scores);
    ++idx;
  }

  TablePrinter table(
      {"Metric", "CamAL", "w/o Attention module", "w/o kernel diversity"});
  std::vector<std::vector<std::string>> csv_rows{
      {"metric", "camal", "no_attention", "fixed_kernel"}};
  auto add_metric = [&](const char* name, double a, double b, double c) {
    table.AddRow({name, Fmt(a, 3), Fmt(b, 3), Fmt(c, 3)});
    csv_rows.push_back({name, Fmt(a, 4), Fmt(b, 4), Fmt(c, 4)});
  };
  if (base.n > 0 && no_attention.n > 0 && fixed_kernel.n > 0) {
    add_metric("F1 (higher better)", base.f1 / base.n,
               no_attention.f1 / no_attention.n,
               fixed_kernel.f1 / fixed_kernel.n);
    add_metric("Precision", base.pr / base.n,
               no_attention.pr / no_attention.n,
               fixed_kernel.pr / fixed_kernel.n);
    add_metric("Recall", base.rc / base.n, no_attention.rc / no_attention.n,
               fixed_kernel.rc / fixed_kernel.n);
    add_metric("MAE (lower better)", base.mae / base.n,
               no_attention.mae / no_attention.n,
               fixed_kernel.mae / fixed_kernel.n);
    add_metric("MR", base.mr / base.n, no_attention.mr / no_attention.n,
               fixed_kernel.mr / fixed_kernel.n);
  }
  table.Print(stdout);
  bench::WriteCsv("table4_ablation", csv_rows);
  std::printf("\nShape check vs paper: removing the attention module\n"
              "collapses precision (paper: -68.9%%) with slightly higher\n"
              "recall; removing kernel diversity costs a few F1 points\n"
              "(paper: -5.6%%).\n");
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
