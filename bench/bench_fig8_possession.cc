// Reproduces Fig. 8 (RQ4): training with one possession label per
// household. IDEAL: train on the possession-only cohort, evaluate on the
// submetered subset. EDF: train on EDF-Weak possession labels, evaluate on
// the per-timestamp EDF-EV houses. Compared against the same methods
// trained with one label per subsequence and per timestamp.

#include "bench_common.h"

namespace camal {
namespace {

struct PossessionSetup {
  data::WindowDataset train;  // possession labels, balanced
  data::WindowDataset valid;  // possession labels
  data::WindowDataset test;   // per-timestamp ground truth
};

// Builds the possession-only pipeline of §V-H.1 from two cohorts: a
// possession-labelled training cohort and a submetered test cohort.
bool MakePossessionSetup(const std::vector<data::HouseRecord>& possession,
                         const std::vector<data::HouseRecord>& submetered,
                         const data::ApplianceSpec& spec, int64_t window,
                         uint64_t seed, PossessionSetup* out) {
  data::BuildOptions popt;
  popt.window_length = window;
  popt.possession_labels = true;
  auto all = data::BuildWindowDataset(possession, spec, popt);
  if (!all.ok()) return false;
  Rng rng(seed);
  data::WindowDataset balanced =
      data::BalanceByWeakLabel(all.value(), &rng);
  if (balanced.PositiveCount() == 0 ||
      balanced.PositiveCount() == balanced.size()) {
    return false;
  }
  std::vector<int64_t> train_idx, valid_idx;
  for (int64_t i = 0; i < balanced.size(); ++i) {
    (i % 5 == 0 ? valid_idx : train_idx).push_back(i);
  }
  data::BuildOptions topt;
  topt.window_length = window;
  auto test = data::BuildWindowDataset(submetered, spec, topt);
  if (!test.ok()) return false;
  out->train = balanced.Subset(train_idx);
  out->valid = balanced.Subset(valid_idx);
  out->test = std::move(test).value();
  return out->train.size() >= 8 && out->valid.size() > 0 &&
         out->test.size() > 0;
}

void RunCase(const char* label,
             const std::vector<data::HouseRecord>& possession,
             const std::vector<data::HouseRecord>& submetered,
             const data::ApplianceSpec& spec,
             const eval::BenchParams& params, TablePrinter* table,
             std::vector<std::vector<std::string>>* csv_rows) {
  // (1) One label per household (possession).
  PossessionSetup setup;
  if (MakePossessionSetup(possession, submetered, spec, params.window_length,
                          77, &setup)) {
    auto run = eval::RunCamalExperiment(setup.train, setup.valid, setup.test,
                                        params.ensemble,
                                        core::LocalizerOptions{}, 7);
    if (run.ok()) {
      table->AddRow({label, "CamAL", "per household",
                     FmtInt(run.value().labels_used),
                     Fmt(run.value().scores.f1, 3)});
      csv_rows->push_back({label, "CamAL", "per_household",
                           FmtInt(run.value().labels_used),
                           Fmt(run.value().scores.f1, 4)});
    }
    baselines::BaselineScale scale;
    scale.width = params.baseline_width;
    auto crnn = eval::RunBaselineExperiment(
        baselines::BaselineKind::kCrnnWeak, scale, params.train, setup.train,
        setup.valid, setup.test, 7);
    if (crnn.ok()) {
      table->AddRow({label, "CRNN Weak", "per household",
                     FmtInt(crnn.value().labels_used),
                     Fmt(crnn.value().scores.f1, 3)});
      csv_rows->push_back({label, "CRNN Weak", "per_household",
                           FmtInt(crnn.value().labels_used),
                           Fmt(crnn.value().scores.f1, 4)});
    }
  } else {
    std::printf("%s: possession setup not buildable at this scale\n", label);
  }

  // (2) One label per subsequence / per timestamp, from the submetered
  // cohort (the standard pipeline), for comparison.
  if (submetered.size() >= 3) {
    Rng rng(78);
    const auto n = static_cast<int64_t>(submetered.size());
    auto split = data::SplitHouses(submetered, std::max<int64_t>(1, n / 5),
                                   std::max<int64_t>(1, n / 4), &rng);
    if (split.ok()) {
      data::BuildOptions opt;
      opt.window_length = params.window_length;
      auto train = data::BuildWindowDataset(split.value().train, spec, opt);
      auto valid = data::BuildWindowDataset(split.value().valid, spec, opt);
      auto test = data::BuildWindowDataset(split.value().test, spec, opt);
      if (train.ok() && valid.ok() && test.ok()) {
        data::WindowDataset btrain =
            data::BalanceByWeakLabel(train.value(), &rng);
        auto camal = eval::RunCamalExperiment(
            btrain, valid.value(), test.value(), params.ensemble,
            core::LocalizerOptions{}, 7);
        if (camal.ok()) {
          table->AddRow({label, "CamAL", "per subsequence",
                         FmtInt(camal.value().labels_used),
                         Fmt(camal.value().scores.f1, 3)});
          csv_rows->push_back({label, "CamAL", "per_subsequence",
                               FmtInt(camal.value().labels_used),
                               Fmt(camal.value().scores.f1, 4)});
        }
        baselines::BaselineScale scale;
        scale.width = params.baseline_width;
        auto strong = eval::RunBaselineExperiment(
            baselines::BaselineKind::kTpnilm, scale, params.train, btrain,
            valid.value(), test.value(), 7);
        if (strong.ok()) {
          table->AddRow({label, "TPNILM", "per timestamp",
                         FmtInt(strong.value().labels_used),
                         Fmt(strong.value().scores.f1, 3)});
          csv_rows->push_back({label, "TPNILM", "per_timestamp",
                               FmtInt(strong.value().labels_used),
                               Fmt(strong.value().scores.f1, 4)});
        }
      }
    }
  }
}

void Run() {
  bench::PrintHeader("Fig. 8 — one weak label per household (RQ4)",
                     "Fig. 8 (possession-only training)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  TablePrinter table({"Setting", "Method", "Label granularity", "#Labels",
                      "F1"});
  std::vector<std::vector<std::string>> csv_rows{
      {"setting", "method", "granularity", "labels", "f1"}};

  // IDEAL: 255-household possession cohort, 39 submetered for testing.
  {
    auto houses = simulate::SimulateDataset(simulate::IdealProfile(),
                                            params.dataset_scale, 21);
    std::vector<data::HouseRecord> possession, submetered;
    for (auto& h : houses) {
      (h.appliances.empty() ? possession : submetered)
          .push_back(std::move(h));
    }
    RunCase("IDEAL/dishwasher", possession, submetered,
            simulate::SpecFor(simulate::ApplianceType::kDishwasher), params,
            &table, &csv_rows);
  }

  // EDF: train on EDF-Weak possession labels, test on EDF-EV submeters.
  {
    auto weak_houses = simulate::SimulateDataset(simulate::EdfWeakProfile(),
                                                 params.dataset_scale, 22);
    auto ev_houses = simulate::SimulateDataset(simulate::EdfEvProfile(),
                                               params.dataset_scale, 23);
    RunCase("EDF Weak->EV", weak_houses, ev_houses,
            simulate::SpecFor(simulate::ApplianceType::kElectricVehicle),
            params, &table, &csv_rows);
  }

  table.Print(stdout);
  bench::WriteCsv("fig8_possession", csv_rows);
  std::printf("\nShape check vs paper: CamAL trained on household possession\n"
              "labels approaches its per-subsequence score and the strongly\n"
              "supervised baselines, while CRNN Weak degrades when moved to\n"
              "possession labels.\n");
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
