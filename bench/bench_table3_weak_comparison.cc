// Reproduces Table III: CamAL vs CRNN Weak under identical weak
// supervision (one label per window) on every (dataset, appliance) case —
// F1, MAE, RMSE, and Matching Ratio.

#include "bench_common.h"

namespace camal {
namespace {

void Run() {
  bench::PrintHeader("Table III — weakly supervised comparison",
                     "Table III (CamAL vs CRNN Weak, 11 cases)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  TablePrinter table({"Dataset", "Case", "CamAL F1", "CamAL MAE",
                      "CamAL RMSE", "CamAL MR", "CRNNw F1", "CRNNw MAE",
                      "CRNNw RMSE", "CRNNw MR"});
  std::vector<std::vector<std::string>> csv_rows{
      {"dataset", "case", "camal_f1", "camal_mae", "camal_rmse", "camal_mr",
       "crnnw_f1", "crnnw_mae", "crnnw_rmse", "crnnw_mr"}};

  double camal_f1_sum = 0, crnn_f1_sum = 0, camal_mr_sum = 0, crnn_mr_sum = 0;
  int n_cases = 0;
  for (const auto& eval_case : bench::AllCases()) {
    bench::CaseData data;
    if (!bench::MakeCaseData(eval_case, params, 1000 + n_cases, &data)) {
      std::printf("skipping %s (no usable simulated case at this scale)\n",
                  eval_case.Name().c_str());
      continue;
    }

    core::EnsembleConfig ec = params.ensemble;
    auto camal_run = eval::RunCamalExperiment(
        data.train, data.valid, data.test, ec, core::LocalizerOptions{}, 7);
    baselines::BaselineScale scale;
    scale.width = params.baseline_width;
    auto crnn_run = eval::RunBaselineExperiment(
        baselines::BaselineKind::kCrnnWeak, scale, params.train, data.train,
        data.valid, data.test, 7);
    if (!camal_run.ok() || !crnn_run.ok()) {
      std::printf("skipping %s (training failed)\n", eval_case.Name().c_str());
      continue;
    }
    const auto& c = camal_run.value().scores;
    const auto& w = crnn_run.value().scores;
    table.AddRow({eval_case.profile.name,
                  simulate::ApplianceName(eval_case.appliance), Fmt(c.f1, 2),
                  Fmt(c.mae, 1), Fmt(c.rmse, 1), Fmt(c.matching_ratio, 2),
                  Fmt(w.f1, 2), Fmt(w.mae, 1), Fmt(w.rmse, 1),
                  Fmt(w.matching_ratio, 2)});
    csv_rows.push_back({eval_case.profile.name,
                        simulate::ApplianceName(eval_case.appliance),
                        Fmt(c.f1, 4), Fmt(c.mae, 2), Fmt(c.rmse, 2),
                        Fmt(c.matching_ratio, 4), Fmt(w.f1, 4), Fmt(w.mae, 2),
                        Fmt(w.rmse, 2), Fmt(w.matching_ratio, 4)});
    camal_f1_sum += c.f1;
    crnn_f1_sum += w.f1;
    camal_mr_sum += c.matching_ratio;
    crnn_mr_sum += w.matching_ratio;
    ++n_cases;
  }
  if (n_cases > 0) {
    table.AddRow({"Avg.", "", Fmt(camal_f1_sum / n_cases, 2), "", "",
                  Fmt(camal_mr_sum / n_cases, 2), Fmt(crnn_f1_sum / n_cases, 2),
                  "", "", Fmt(crnn_mr_sum / n_cases, 2)});
  }
  table.Print(stdout);
  bench::WriteCsv("table3_weak_comparison", csv_rows);
  if (n_cases > 0) {
    std::printf("\nShape check vs paper: CamAL avg F1 %.2f vs CRNN Weak %.2f "
                "(paper: 0.38 vs 0.16, +135%%); CamAL avg MR %.2f vs %.2f "
                "(paper: 0.23 vs 0.07, +247%%).\n",
                camal_f1_sum / n_cases, crnn_f1_sum / n_cases,
                camal_mr_sum / n_cases, crnn_mr_sum / n_cases);
  }
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
