// Reproduces Fig. 6(c): CamAL's localization F1 and detection Balanced
// Accuracy as a function of the ensemble size n. One large candidate pool
// is trained once; sub-ensembles are evaluated by truncating the ranked
// member list (Algorithm 1 keeps the n best models).

#include "bench_common.h"
#include "metrics/classification.h"

namespace camal {
namespace {

void Run() {
  bench::PrintHeader("Fig. 6(c) — effect of the number of ResNets",
                     "Fig. 6(c) (ensemble-size ablation, REFIT)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  std::vector<bench::EvalCase> cases = {
      {simulate::RefitProfile(), simulate::ApplianceType::kKettle},
      {simulate::RefitProfile(), simulate::ApplianceType::kDishwasher}};
  if (params.mode == eval::BenchMode::kSmoke) cases.resize(1);

  std::vector<int> sizes = {1, 3, 5, 7, 9};
  // Train enough candidates for the largest sub-ensemble.
  int pool_trials = static_cast<int>(
      (sizes.back() + params.ensemble.kernel_sizes.size() - 1) /
      params.ensemble.kernel_sizes.size());
  if (params.mode == eval::BenchMode::kSmoke) {
    sizes = {1, 2};
    pool_trials = 1;
  }

  TablePrinter table({"Case", "n ResNets", "F1", "Balanced Accuracy"});
  std::vector<std::vector<std::string>> csv_rows{
      {"case", "n", "f1", "balanced_accuracy"}};
  int idx = 0;
  for (const auto& eval_case : cases) {
    bench::CaseData data;
    if (!bench::MakeCaseData(eval_case, params, 700 + idx, &data)) {
      ++idx;
      continue;
    }
    // Train one pool large enough for the biggest sub-ensemble.
    core::EnsembleConfig config = params.ensemble;
    config.trials_per_kernel = pool_trials;
    config.ensemble_size = sizes.back();
    auto pool = core::CamalEnsemble::Train(data.train, data.valid, config, 7);
    if (!pool.ok()) {
      ++idx;
      continue;
    }
    core::CamalEnsemble ensemble = std::move(pool).value();
    // Evaluate from the largest n downward by truncating the ranked list.
    for (auto it = sizes.rbegin(); it != sizes.rend(); ++it) {
      const int n = *it;
      if (static_cast<size_t>(n) > ensemble.members().size()) continue;
      ensemble.members().resize(static_cast<size_t>(n));
      core::CamalLocalizer localizer(&ensemble);
      core::LocalizationResult res = localizer.Localize(data.test.inputs);
      const eval::LocalizationScores scores =
          eval::ScoreLocalization(res.status, data.test);
      // Detection BA on weak labels.
      std::vector<float> pred, truth;
      for (int64_t i = 0; i < data.test.size(); ++i) {
        pred.push_back(res.probabilities.at(i) > 0.5f ? 1.0f : 0.0f);
        truth.push_back(static_cast<float>(
            data.test.weak_labels[static_cast<size_t>(i)]));
      }
      const double ba =
          metrics::BalancedAccuracy(metrics::CountBinary(pred, truth));
      table.AddRow({eval_case.Name(), FmtInt(n), Fmt(scores.f1, 3),
                    Fmt(ba, 3)});
      csv_rows.push_back({eval_case.Name(), FmtInt(n), Fmt(scores.f1, 4),
                          Fmt(ba, 4)});
    }
    ++idx;
  }
  table.Print(stdout);
  bench::WriteCsv("fig6c_ensemble_size", csv_rows);
  std::printf("\nShape check vs paper: Balanced Accuracy is stable in n;\n"
              "localization F1 is lowest at n=1, peaks around n=4-5, and\n"
              "declines slightly for large ensembles.\n");
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
