// Reproduces Fig. 7(a): training time per method (left: averaged over a
// representative case; right: as a function of the number of training
// instances on IDEAL).

#include "bench_common.h"
#include "eval/label_budget.h"

namespace camal {
namespace {

void Run() {
  bench::PrintHeader("Fig. 7(a) — training time per method",
                     "Fig. 7(a) (training-time comparison)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  bench::EvalCase eval_case{simulate::RefitProfile(),
                            simulate::ApplianceType::kDishwasher};
  bench::CaseData data;
  if (!bench::MakeCaseData(eval_case, params, 900, &data)) {
    std::printf("no usable case at this scale\n");
    return;
  }
  baselines::BaselineScale scale;
  scale.width = params.baseline_width;

  TablePrinter table({"Method", "Supervision", "Train seconds"});
  std::vector<std::vector<std::string>> csv_rows{
      {"method", "supervision", "train_seconds"}};

  auto camal_run = eval::RunCamalExperiment(
      data.train, data.valid, data.test, params.ensemble,
      core::LocalizerOptions{}, 7);
  if (camal_run.ok()) {
    table.AddRow({"CamAL", "weak", Fmt(camal_run.value().train_seconds, 2)});
    csv_rows.push_back(
        {"CamAL", "weak", Fmt(camal_run.value().train_seconds, 3)});
  }
  for (baselines::BaselineKind kind : baselines::AllBaselines()) {
    auto run = eval::RunBaselineExperiment(kind, scale, params.train,
                                           data.train, data.valid, data.test,
                                           7);
    if (!run.ok()) continue;
    table.AddRow({baselines::BaselineName(kind),
                  baselines::IsWeaklySupervised(kind) ? "weak" : "strong",
                  Fmt(run.value().train_seconds, 2)});
    csv_rows.push_back({baselines::BaselineName(kind),
                        baselines::IsWeaklySupervised(kind) ? "weak"
                                                            : "strong",
                        Fmt(run.value().train_seconds, 3)});
  }
  table.Print(stdout);
  bench::WriteCsv("fig7a_training_time", csv_rows);

  // Right panel: training time vs number of training instances.
  std::printf("\nTraining time vs #instances (IDEAL-style sweep):\n");
  TablePrinter sweep({"#Windows", "CamAL s", "CRNN Weak s"});
  std::vector<std::vector<std::string>> csv2{
      {"windows", "camal_seconds", "crnn_weak_seconds"}};
  Rng rng(5);
  const auto budgets = eval::GeometricBudgets(
      std::min<int64_t>(16, data.train.size()), data.train.size(),
      params.mode == eval::BenchMode::kSmoke ? 2 : 3);
  for (int64_t budget : budgets) {
    data::WindowDataset sub = eval::SubsetByBudget(data.train, budget, &rng);
    auto c = eval::RunCamalExperiment(sub, data.valid, data.test,
                                      params.ensemble,
                                      core::LocalizerOptions{}, 7);
    auto w = eval::RunBaselineExperiment(baselines::BaselineKind::kCrnnWeak,
                                         scale, params.train, sub, data.valid,
                                         data.test, 7);
    sweep.AddRow({FmtInt(budget),
                  c.ok() ? Fmt(c.value().train_seconds, 2) : "-",
                  w.ok() ? Fmt(w.value().train_seconds, 2) : "-"});
    csv2.push_back({FmtInt(budget),
                    c.ok() ? Fmt(c.value().train_seconds, 3) : "",
                    w.ok() ? Fmt(w.value().train_seconds, 3) : ""});
  }
  sweep.Print(stdout);
  bench::WriteCsv("fig7a_training_time_sweep", csv2);
  std::printf("\nShape check vs paper: CamAL is among the fastest methods\n"
              "and much faster than CRNN Weak despite being an ensemble\n"
              "(recurrent backprop-through-time dominates CRNN's cost).\n");
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
