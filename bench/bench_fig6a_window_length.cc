// Reproduces Fig. 6(a): effect of the training window length ("how weak can
// the labels be?") on CamAL's localization F1. The test set keeps a fixed
// window; only training windows change. Small appliances should favour
// short windows (class balance), large ones longer windows.

#include "bench_common.h"

namespace camal {
namespace {

void Run() {
  bench::PrintHeader("Fig. 6(a) — training window length ablation",
                     "Fig. 6(a) (how weak can the labels be?)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  std::vector<bench::EvalCase> cases = {
      {simulate::RefitProfile(), simulate::ApplianceType::kKettle},
      {simulate::RefitProfile(), simulate::ApplianceType::kDishwasher}};
  if (params.mode == eval::BenchMode::kFull) {
    cases = {{simulate::UkdaleProfile(), simulate::ApplianceType::kKettle},
             {simulate::UkdaleProfile(),
              simulate::ApplianceType::kDishwasher},
             {simulate::UkdaleProfile(), simulate::ApplianceType::kMicrowave},
             {simulate::RefitProfile(), simulate::ApplianceType::kKettle},
             {simulate::RefitProfile(), simulate::ApplianceType::kDishwasher},
             {simulate::RefitProfile(),
              simulate::ApplianceType::kWashingMachine},
             {simulate::RefitProfile(), simulate::ApplianceType::kMicrowave}};
  }
  std::vector<int64_t> train_windows;
  if (params.mode == eval::BenchMode::kSmoke) {
    train_windows = {params.window_length / 2, params.window_length};
  } else {
    train_windows = {params.window_length / 2, params.window_length,
                     params.window_length * 2, params.window_length * 4};
  }

  TablePrinter table({"Case", "Train window", "Balanced?", "F1"});
  std::vector<std::vector<std::string>> csv_rows{
      {"case", "train_window", "balanceable", "f1"}};
  int case_idx = 0;
  for (const auto& eval_case : cases) {
    // Fixed test split at the standard window length.
    bench::CaseData fixed;
    if (!bench::MakeCaseData(eval_case, params, 300 + case_idx, &fixed)) {
      std::printf("skipping %s\n", eval_case.Name().c_str());
      ++case_idx;
      continue;
    }
    for (int64_t w : train_windows) {
      // Rebuild the training windows at length w from the same cohort.
      eval::BenchParams p2 = params;
      p2.window_length = w;
      bench::CaseData varied;
      if (!bench::MakeCaseData(eval_case, p2, 300 + case_idx, &varied)) {
        table.AddRow({eval_case.Name(), FmtInt(w), "no negatives", "-"});
        csv_rows.push_back({eval_case.Name(), FmtInt(w), "0", ""});
        continue;
      }
      const bool balanceable = data::IsBalanceable(varied.train);
      auto run = eval::RunCamalExperiment(varied.train, varied.valid,
                                          fixed.test, params.ensemble,
                                          core::LocalizerOptions{}, 7);
      if (!run.ok()) {
        table.AddRow({eval_case.Name(), FmtInt(w), balanceable ? "yes" : "no",
                      "-"});
        continue;
      }
      table.AddRow({eval_case.Name(), FmtInt(w), balanceable ? "yes" : "no",
                    Fmt(run.value().scores.f1, 3)});
      csv_rows.push_back({eval_case.Name(), FmtInt(w),
                          balanceable ? "1" : "0",
                          Fmt(run.value().scores.f1, 4)});
    }
    ++case_idx;
  }
  table.Print(stdout);
  bench::WriteCsv("fig6a_window_length", csv_rows);
  std::printf("\nShape check vs paper: frequently used appliances (kettle)\n"
              "degrade at long windows (class imbalance leaves few negative\n"
              "windows), while long-cycle appliances tolerate them.\n");
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
