// Ablation of the §IV-C energy-estimation post-processing, plus the §V-I
// future-work refinement: constant-P_a pricing vs segment-wise step
// estimation, and the no-training Combinatorial Optimization reference
// (Hart 1992) that motivated learned NILM in the first place.

#include "baselines/combinatorial.h"
#include "baselines/fhmm.h"
#include "bench_common.h"
#include "core/power_estimation.h"
#include "metrics/classification.h"
#include "metrics/energy.h"

namespace camal {
namespace {

struct EnergyRow {
  double mae = 0.0;
  double mr = 0.0;
};

EnergyRow ScoreEnergy(const nn::Tensor& estimate,
                      const data::WindowDataset& test) {
  std::vector<float> est(estimate.data(), estimate.data() + estimate.numel());
  std::vector<float> truth(
      test.appliance_power.data(),
      test.appliance_power.data() + test.appliance_power.numel());
  return {metrics::MeanAbsoluteError(est, truth),
          metrics::MatchingRatio(est, truth)};
}

void Run() {
  bench::PrintHeader(
      "Ablation — power estimation post-processing & CO reference",
      "§IV-C vs §V-I estimators; CO [1] and FHMM [21] references");
  const eval::BenchParams params = eval::CurrentBenchParams();

  std::vector<bench::EvalCase> cases = {
      {simulate::UkdaleProfile(), simulate::ApplianceType::kKettle},
      {simulate::RefitProfile(), simulate::ApplianceType::kDishwasher},
      {simulate::EdfEvProfile(), simulate::ApplianceType::kElectricVehicle}};
  if (params.mode == eval::BenchMode::kSmoke) cases.resize(1);

  TablePrinter table({"Case", "Status source", "Estimator", "F1", "MAE",
                      "MR"});
  std::vector<std::vector<std::string>> csv_rows{
      {"case", "status_source", "estimator", "f1", "mae", "mr"}};
  int idx = 0;
  for (const auto& eval_case : cases) {
    bench::CaseData data;
    if (!bench::MakeCaseData(eval_case, params, 1200 + idx, &data)) {
      ++idx;
      continue;
    }
    // CamAL status.
    auto ens = core::CamalEnsemble::Train(data.train, data.valid,
                                          params.ensemble, 7);
    if (!ens.ok()) {
      ++idx;
      continue;
    }
    core::CamalEnsemble ensemble = std::move(ens).value();
    core::CamalLocalizer localizer(&ensemble);
    nn::Tensor camal_status = localizer.Localize(data.test.inputs).status;
    // CO and FHMM status (no training, no labels).
    nn::Tensor co_status = baselines::PredictCoStatus(data.test);
    nn::Tensor fhmm_status = baselines::PredictFhmmStatus(data.test);

    nn::Tensor watts =
        data.test.inputs.Reshape({data.test.size(), data.test.window_length});
    watts.ScaleInPlace(1000.0f);
    const float pa = data.test.appliance.avg_power_w;

    for (const auto& [source, status] :
         std::vector<std::pair<std::string, const nn::Tensor*>>{
             {"CamAL", &camal_status},
             {"CO (Hart 1992)", &co_status},
             {"FHMM (Kim 2011)", &fhmm_status}}) {
      std::vector<float> pred(status->data(),
                              status->data() + status->numel());
      std::vector<float> truth(
          data.test.status.data(),
          data.test.status.data() + data.test.status.numel());
      const double f1 =
          metrics::F1Score(metrics::CountBinary(pred, truth));
      const EnergyRow simple =
          ScoreEnergy(core::EstimatePower(*status, watts, pa), data.test);
      const EnergyRow refined = ScoreEnergy(
          core::EstimatePowerRefined(*status, watts, pa), data.test);
      table.AddRow({eval_case.Name(), source, "constant P_a (paper IV-C)",
                    Fmt(f1, 3), Fmt(simple.mae, 1), Fmt(simple.mr, 3)});
      table.AddRow({eval_case.Name(), source, "segment step (refined)",
                    Fmt(f1, 3), Fmt(refined.mae, 1), Fmt(refined.mr, 3)});
      csv_rows.push_back({eval_case.Name(), source, "constant",
                          Fmt(f1, 4), Fmt(simple.mae, 2),
                          Fmt(simple.mr, 4)});
      csv_rows.push_back({eval_case.Name(), source, "refined", Fmt(f1, 4),
                          Fmt(refined.mae, 2), Fmt(refined.mr, 4)});
    }
    ++idx;
  }
  table.Print(stdout);
  bench::WriteCsv("ablation_power", csv_rows);
  std::printf("\nReading: the refined estimator prices each detected\n"
              "segment at its observed power step, improving MAE/MR when\n"
              "the true draw differs from the Table-I average (the paper's\n"
              "§V-I future-work direction). CO detects crude steps without\n"
              "any labels but cannot separate same-power appliances.\n");
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
