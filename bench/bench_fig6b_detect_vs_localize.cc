// Reproduces Fig. 6(b): the scatter of detection score (Balanced Accuracy,
// Problem 1) vs localization score (F1, Problem 2) across all cases —
// detection quality is a proxy for localization quality (RQ2).

#include "bench_common.h"

namespace camal {
namespace {

void Run() {
  bench::PrintHeader("Fig. 6(b) — detection vs localization correlation",
                     "Fig. 6(b) (RQ2: classification vs localization)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  TablePrinter table(
      {"Dataset", "Case", "Balanced Accuracy", "Localization F1"});
  std::vector<std::vector<std::string>> csv_rows{
      {"dataset", "case", "balanced_accuracy", "f1"}};
  std::vector<std::pair<double, double>> points;
  int idx = 0;
  for (const auto& eval_case : bench::AllCases()) {
    if (params.mode == eval::BenchMode::kSmoke && idx >= 3) break;
    bench::CaseData data;
    if (!bench::MakeCaseData(eval_case, params, 600 + idx, &data)) {
      ++idx;
      continue;
    }
    auto run = eval::RunCamalExperiment(data.train, data.valid, data.test,
                                        params.ensemble,
                                        core::LocalizerOptions{}, 7);
    if (run.ok()) {
      const double ba = run.value().detection_balanced_accuracy;
      const double f1 = run.value().scores.f1;
      table.AddRow({eval_case.profile.name,
                    simulate::ApplianceName(eval_case.appliance), Fmt(ba, 3),
                    Fmt(f1, 3)});
      csv_rows.push_back({eval_case.profile.name,
                          simulate::ApplianceName(eval_case.appliance),
                          Fmt(ba, 4), Fmt(f1, 4)});
      points.emplace_back(ba, f1);
    }
    ++idx;
  }
  table.Print(stdout);
  bench::WriteCsv("fig6b_detect_vs_localize", csv_rows);

  // Rank correlation between the two scores (the figure's visual claim).
  if (points.size() >= 3) {
    int concordant = 0, discordant = 0;
    for (size_t i = 0; i < points.size(); ++i) {
      for (size_t j = i + 1; j < points.size(); ++j) {
        const double d =
            (points[i].first - points[j].first) *
            (points[i].second - points[j].second);
        if (d > 0) ++concordant;
        if (d < 0) ++discordant;
      }
    }
    const double tau =
        static_cast<double>(concordant - discordant) /
        static_cast<double>(concordant + discordant + 1e-9);
    std::printf("\nKendall tau(BA, F1) = %.2f — paper's claim: good detection"
                " (BA > 0.9) implies good localization, and detection is a\n"
                "usable proxy when localization labels are unavailable.\n",
                tau);
  }
}

}  // namespace
}  // namespace camal

int main() {
  camal::Run();
  return 0;
}
