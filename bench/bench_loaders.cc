// Loader bench — CSV text parsing vs the mmap'd column store on the
// serving cold-start path. One synthetic household (>= 1M samples with
// meter dropouts and two submeter channels) is written both ways; the
// table reports the time from file to scannable aggregate for each
// format, plus scan throughput over the same samples. Two gates run
// in-binary and fail the process:
//   1. every sample (and the scan of it) is bitwise-identical across
//      formats — the store is a faster container, not a lossier one;
//   2. the binary cold load (map + validate + fault every aggregate
//      page) is >= 10x faster than the CSV parse.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "data/column_store.h"
#include "data/csv_loader.h"
#include "serve/batch_runner.h"

namespace camal {
namespace {

/// A household the size the paper's serving scenario cares about: months
/// of 10s-sampled readings, periodic kettle/dishwasher activations, and
/// a dropout (missing cell) every 997 samples so NaN handling is on the
/// measured path.
data::HouseRecord MakeSyntheticHouse(int64_t samples, Rng* rng) {
  data::HouseRecord house;
  house.house_id = 1;
  house.interval_seconds = 10.0;
  house.aggregate.reserve(static_cast<size_t>(samples));
  house.appliances.resize(2);
  house.appliances[0].name = "kettle";
  house.appliances[1].name = "dishwasher";
  for (auto& trace : house.appliances) {
    trace.power.reserve(static_cast<size_t>(samples));
  }
  for (int64_t i = 0; i < samples; ++i) {
    if (i % 997 == 0) {
      house.aggregate.push_back(data::kMissingValue);
      house.appliances[0].power.push_back(data::kMissingValue);
      house.appliances[1].power.push_back(data::kMissingValue);
      continue;
    }
    const float kettle = i % 360 < 12 ? 2000.0f : 0.0f;
    const float dish = i % 5000 < 400 ? 1200.0f : 0.0f;
    const float base = static_cast<float>(rng->Uniform(50.0, 300.0));
    house.appliances[0].power.push_back(kettle);
    house.appliances[1].power.push_back(dish);
    house.aggregate.push_back(base + kettle + dish);
  }
  return house;
}

/// Bitwise comparison that treats NaN cells as equal when their bit
/// patterns match (float == would fail on every missing reading).
bool BitsEqual(const float* a, const float* b, int64_t n) {
  return std::memcmp(a, b, static_cast<size_t>(n) * sizeof(float)) == 0;
}

bool ScansIdentical(const serve::ScanResult& a, const serve::ScanResult& b) {
  if (a.detection.numel() != b.detection.numel() ||
      a.status.numel() != b.status.numel() ||
      a.power.numel() != b.power.numel()) {
    return false;
  }
  return BitsEqual(a.detection.data(), b.detection.data(),
                   a.detection.numel()) &&
         BitsEqual(a.status.data(), b.status.data(), a.status.numel()) &&
         BitsEqual(a.power.data(), b.power.data(), a.power.numel());
}

int Run() {
  bench::PrintHeader("Loader bench — CSV parse vs mmap'd column store",
                     "zero-copy data plane (cold load + scan)");
  const eval::BenchParams params = eval::CurrentBenchParams();

  // The >= 10x load gate is part of the acceptance bar, so even smoke
  // mode measures a full-size household (1M+ samples). Only the scan
  // phase shrinks to a prefix outside full mode — scanning a million
  // samples through the ensemble would dominate the bench without
  // telling us anything new about the loaders.
  const int64_t samples =
      params.mode == eval::BenchMode::kFull ? int64_t{1} << 22
                                            : int64_t{1} << 20;
  const int64_t scan_samples =
      params.mode == eval::BenchMode::kFull ? samples : int64_t{1} << 16;

  Rng rng(29);
  std::printf("\nbuilding synthetic household: %lld samples, 2 submeters\n",
              static_cast<long long>(samples));
  const data::HouseRecord house = MakeSyntheticHouse(samples, &rng);
  const std::string csv_path = "/tmp/camal_bench_loaders.csv";
  const std::string store_path = "/tmp/camal_bench_loaders.cstore";
  CAMAL_CHECK(data::WriteHouseCsv(house, csv_path).ok());
  // The store is converted FROM the CSV (the real migration pipeline),
  // so both loaders below read descendants of the same text file.
  CAMAL_CHECK(data::ConvertCsvToStore(csv_path, store_path, 1).ok());

  // CSV cold load: read the text, parse every cell, build owned vectors.
  Stopwatch csv_watch;
  auto csv_house = data::LoadHouseCsv(csv_path, 1);
  const double csv_load_s = csv_watch.ElapsedSeconds();
  CAMAL_CHECK(csv_house.ok());

  // Store cold load, honestly accounted: Open maps and validates the
  // metadata (no sample is read), then the first touch faults every
  // aggregate page in — the cost the first scan actually pays.
  Stopwatch open_watch;
  auto store_result = data::ColumnStore::Open(store_path);
  const double store_open_s = open_watch.ElapsedSeconds();
  CAMAL_CHECK(store_result.ok());
  const data::ColumnStore& store = store_result.value();
  // First touch in 64K-sample slices, each timed into the shared latency
  // histogram: the total is the honest cold-load cost, and the slice
  // percentiles show whether page-fault latency is uniform or has a
  // heavy tail (readahead misses, write-back stalls) that a single total
  // would hide.
  loadgen::LatencyHistogram touch_hist;
  const data::SeriesView aggregate = store.aggregate();
  constexpr int64_t kTouchSlice = int64_t{1} << 16;
  Stopwatch touch_watch;
  double checksum = 0.0;
  for (int64_t start = 0; start < aggregate.size(); start += kTouchSlice) {
    const int64_t count = std::min(kTouchSlice, aggregate.size() - start);
    Stopwatch slice_watch;
    for (const float v : aggregate.subview(start, count)) {
      checksum += std::isnan(v) ? 0.0 : static_cast<double>(v);
    }
    touch_hist.Record(slice_watch.ElapsedSeconds());
  }
  const double store_touch_s = touch_watch.ElapsedSeconds();
  const double store_load_s = store_open_s + store_touch_s;
  const loadgen::LatencySummary touch_latency = touch_hist.Summary();

  // Gate 1a: every channel bitwise-identical across formats (NaN payload
  // bits included — memcmp, not float compare).
  CAMAL_CHECK_EQ(static_cast<int64_t>(csv_house.value().aggregate.size()),
                 store.num_samples());
  CAMAL_CHECK_EQ(store.num_channels(), int64_t{3});
  bool samples_identical = BitsEqual(csv_house.value().aggregate.data(),
                                     store.aggregate().data(), samples);
  for (int64_t c = 1; c < store.num_channels(); ++c) {
    samples_identical =
        samples_identical &&
        store.channel_name(c) ==
            csv_house.value().appliances[static_cast<size_t>(c - 1)].name &&
        BitsEqual(
            csv_house.value().appliances[static_cast<size_t>(c - 1)]
                .power.data(),
            store.Channel(c).data(), samples);
  }

  // Gate 1b: a serving scan over the mapped view is bitwise-identical to
  // the same scan over the CSV-loaded vector.
  core::CamalEnsemble ensemble =
      bench::MakeBenchEnsemble({5, 9}, params.base_filters, &rng);
  serve::BatchRunnerOptions runner;
  runner.stream.window_length = params.window_length;
  runner.stream.stride = params.window_length / 2;
  runner.stream.batch_size = 32;
  runner.appliance_avg_power_w = 800.0f;
  serve::BatchRunner csv_runner(&ensemble, runner);
  serve::BatchRunner store_runner(&ensemble, runner);
  const data::SeriesView csv_series =
      data::SeriesView(csv_house.value().aggregate).subview(0, scan_samples);
  const data::SeriesView store_series =
      store.aggregate().subview(0, scan_samples);
  Stopwatch csv_scan_watch;
  const serve::ScanResult csv_scan = csv_runner.Scan(csv_series);
  const double csv_scan_s = csv_scan_watch.ElapsedSeconds();
  Stopwatch store_scan_watch;
  const serve::ScanResult store_scan = store_runner.Scan(store_series);
  const double store_scan_s = store_scan_watch.ElapsedSeconds();
  const bool scan_identical = ScansIdentical(csv_scan, store_scan);

  const int64_t csv_bytes = [&] {
    std::FILE* f = std::fopen(csv_path.c_str(), "rb");
    if (f == nullptr) return int64_t{0};
    std::fseek(f, 0, SEEK_END);
    const long bytes = std::ftell(f);
    std::fclose(f);
    return static_cast<int64_t>(bytes);
  }();
  const double load_speedup =
      store_load_s > 0.0 ? csv_load_s / store_load_s : 0.0;

  TablePrinter table({"Format", "File bytes", "Load s", "Samples/s",
                      "Scan s", "Windows"});
  std::vector<std::vector<std::string>> csv_rows{
      {"format", "file_bytes", "load_seconds", "samples_per_sec",
       "scan_seconds", "windows"}};
  auto add = [&](const char* format, int64_t bytes, double load_s,
                 double scan_s, int64_t windows) {
    const double sps =
        load_s > 0.0 ? static_cast<double>(samples) / load_s : 0.0;
    table.AddRow({format, FmtInt(bytes), Fmt(load_s, 4), Fmt(sps, 0),
                  Fmt(scan_s, 4), FmtInt(windows)});
    csv_rows.push_back({format, FmtInt(bytes), Fmt(load_s, 5), Fmt(sps, 1),
                        Fmt(scan_s, 5), FmtInt(windows)});
  };
  add("csv", csv_bytes, csv_load_s, csv_scan_s, csv_scan.windows);
  add("cstore", store.file_bytes(), store_load_s, store_scan_s,
      store_scan.windows);
  table.Print(stdout);
  bench::WriteCsv("loaders", csv_rows);

  std::printf("\nstore open %.6fs + first touch %.6fs (checksum %.1f); "
              "scan prefix %lld samples\n",
              store_open_s, store_touch_s, checksum,
              static_cast<long long>(scan_samples));
  std::printf("first-touch latency per %lld-sample slice: p50 %.3f ms, "
              "p99 %.3f ms, max %.3f ms over %lld slices\n",
              static_cast<long long>(kTouchSlice), touch_latency.p50_ms,
              touch_latency.p99_ms, touch_latency.max_ms,
              static_cast<long long>(touch_latency.count));
  std::printf("[gate] samples bitwise-identical across formats: %s\n",
              samples_identical ? "PASS" : "FAIL");
  std::printf("[gate] scans bitwise-identical across formats: %s\n",
              scan_identical ? "PASS" : "FAIL");
  std::printf("[gate] binary cold load %.1fx faster than CSV (>= 10x): %s\n",
              load_speedup, load_speedup >= 10.0 ? "PASS" : "FAIL");

  std::string json = "{\n";
  json += "  \"bench\": \"loaders\",\n";
  json += "  \"samples\": " + FmtInt(samples) + ",\n";
  json += "  \"channels\": " + FmtInt(store.num_channels()) + ",\n";
  json += "  \"scan_samples\": " + FmtInt(scan_samples) + ",\n";
  json += "  \"csv_bytes\": " + FmtInt(csv_bytes) + ",\n";
  json += "  \"store_bytes\": " + FmtInt(store.file_bytes()) + ",\n";
  json += "  \"csv_load_seconds\": " + Fmt(csv_load_s, 5) + ",\n";
  json += "  \"store_open_seconds\": " + Fmt(store_open_s, 6) + ",\n";
  json += "  \"store_touch_seconds\": " + Fmt(store_touch_s, 6) + ",\n";
  json += "  \"touch_slice_p50_ms\": " + Fmt(touch_latency.p50_ms, 4) + ",\n";
  json += "  \"touch_slice_p99_ms\": " + Fmt(touch_latency.p99_ms, 4) + ",\n";
  json += "  \"load_speedup\": " + Fmt(load_speedup, 2) + ",\n";
  json += "  \"csv_scan_seconds\": " + Fmt(csv_scan_s, 5) + ",\n";
  json += "  \"store_scan_seconds\": " + Fmt(store_scan_s, 5) + ",\n";
  json += "  \"windows\": " + FmtInt(store_scan.windows) + ",\n";
  json += std::string("  \"samples_identical\": ") +
          (samples_identical ? "true" : "false") + ",\n";
  json += std::string("  \"scan_identical\": ") +
          (scan_identical ? "true" : "false") + "\n";
  json += "}\n";
  bench::WriteTextFile("BENCH_loaders.json", json);

  std::remove(csv_path.c_str());
  std::remove(store_path.c_str());
  if (!samples_identical || !scan_identical || load_speedup < 10.0) {
    std::fprintf(stderr, "bench_loaders: gate failed\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace camal

int main() { return camal::Run(); }
