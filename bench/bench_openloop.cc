// Open-loop serving bench: offered-load sweep + QoS scenarios against
// serve::Service, driven by loadgen::OpenLoopDriver (Poisson arrivals
// scheduled up front, latency charged from the intended arrival — no
// coordinated omission). Three parts:
//   1. Sweep: calibrate a closed-loop capacity estimate, walk an
//      offered-load ladder around it, report p50/p95/p99 vs load and the
//      throughput knee (loadgen::RunLoadSweep).
//   2. Deadline shedding: overload a service whose per-request cost is
//      pinned by a pre-scan sleep, with a deadline the backlog must blow
//      through — most requests are shed with kDeadlineExceeded BEFORE
//      any scan runs, and the survivors' latency stays bounded.
//   3. Priorities: a high-priority trickle submitted concurrently with a
//      low-priority flood; the trickle's percentiles ride over the
//      backlog.
// Gates run in-binary and fail the process: the offered-load axis is
// monotone, a knee is detected, and overload+deadline actually sheds.
// Emits BENCH_openloop.json.

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/fault_injection.h"
#include "common/parallel_for.h"
#include "common/stopwatch.h"
#include "loadgen/open_loop.h"
#include "loadgen/sweep.h"
#include "serve/service.h"

namespace camal {
namespace {

std::vector<std::vector<float>> MakeCohort(int households,
                                           int64_t series_length, Rng* rng) {
  std::vector<std::vector<float>> cohort;
  cohort.reserve(static_cast<size_t>(households));
  for (int i = 0; i < households; ++i) {
    std::vector<float> series(static_cast<size_t>(series_length));
    for (auto& v : series) v = static_cast<float>(rng->Uniform(0.0, 3000.0));
    cohort.push_back(std::move(series));
  }
  return cohort;
}

std::vector<data::SeriesView> MakeViews(
    const std::vector<std::vector<float>>& cohort) {
  std::vector<data::SeriesView> views;
  views.reserve(cohort.size());
  for (const auto& series : cohort) views.emplace_back(series);
  return views;
}

std::string PointJson(const loadgen::LoadSweepPoint& point) {
  std::string json = "    {\"offered_rps\": " + Fmt(point.offered_rps, 1);
  json += ", \"achieved_rps\": " + Fmt(point.achieved_rps, 1);
  json += ", \"utilization\": " + Fmt(point.utilization, 3);
  json += ", \"requests\": " + FmtInt(point.requests);
  json += ", \"completed\": " + FmtInt(point.completed);
  json += ", \"shed_deadline\": " + FmtInt(point.shed_deadline);
  json += ", \"p50_ms\": " + Fmt(point.latency.p50_ms, 3);
  json += ", \"p95_ms\": " + Fmt(point.latency.p95_ms, 3);
  json += ", \"p99_ms\": " + Fmt(point.latency.p99_ms, 3);
  json += ", \"max_submit_lag_s\": " + Fmt(point.max_submit_lag_seconds, 4);
  json += "}";
  return json;
}

int Run() {
  bench::PrintHeader("Open-loop serving — offered-load sweep + QoS",
                     "serving extension (latency vs offered load, knee)");
  const eval::BenchParams params = eval::CurrentBenchParams();
  const int workers = std::min(2, NumThreads());

  double seconds_per_point = 1.0;
  int64_t max_requests_per_point = 2000;
  std::vector<double> multipliers{0.25, 0.5, 0.75, 1.0, 1.5};
  if (params.mode == eval::BenchMode::kSmoke) {
    seconds_per_point = 0.4;
    max_requests_per_point = 600;
    multipliers = {0.25, 0.5, 1.0, 1.5};
  } else if (params.mode == eval::BenchMode::kFull) {
    seconds_per_point = 2.5;
    max_requests_per_point = 4000;
    multipliers = {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0};
  }

  Rng rng(31);
  core::CamalEnsemble ensemble =
      bench::MakeBenchEnsemble({5, 9}, params.base_filters, &rng);
  serve::BatchRunnerOptions runner;
  runner.stream.window_length = params.window_length;
  runner.stream.stride = params.window_length / 2;
  runner.stream.batch_size = 32;
  runner.appliance_avg_power_w = 700.0f;
  // One-window households: the latency-sensitive request shape (a big
  // cohort of short series), where queueing — not scan time — dominates
  // the tail and coalescing earns its keep.
  const std::vector<std::vector<float>> cohort =
      MakeCohort(64, params.window_length, &rng);
  const std::vector<data::SeriesView> views = MakeViews(cohort);

  // Closed-loop calibration: per-request service time on one worker,
  // scaled by the pool. The ladder brackets this estimate; the knee the
  // sweep finds is the measured answer.
  double per_scan_s;
  {
    serve::BatchRunner calibration(&ensemble, runner);
    calibration.Scan(views[0]);  // warm scratch + replicas
    const int reps = params.mode == eval::BenchMode::kSmoke ? 8 : 32;
    Stopwatch watch;
    for (int r = 0; r < reps; ++r) {
      calibration.Scan(views[static_cast<size_t>(r) % views.size()]);
    }
    per_scan_s = watch.ElapsedSeconds() / reps;
  }
  const double capacity_rps =
      static_cast<double>(workers) / std::max(per_scan_s, 1e-6);
  std::printf("\ncalibration: %.3f ms per one-window scan -> ~%.0f req/s "
              "across %d workers\n",
              per_scan_s * 1e3, capacity_rps, workers);

  serve::ServiceOptions service_opt;
  service_opt.workers = workers;
  service_opt.queue_capacity = 0;  // overload shows as latency, not drops
  service_opt.coalesce_budget = 8;
  serve::Service service(service_opt);
  CAMAL_CHECK(service.RegisterAppliance("appliance", &ensemble, runner).ok());
  CAMAL_CHECK(service.Start().ok());
  for (size_t i = 0; i < 8; ++i) {  // warm every worker's replicas
    serve::ScanRequest request;
    request.appliance = "appliance";
    request.series = views[i % views.size()];
    CAMAL_CHECK(service.Submit(std::move(request)).get().ok());
  }

  loadgen::LoadSweepOptions sweep_opt;
  for (const double m : multipliers) {
    sweep_opt.offered_rps.push_back(m * capacity_rps);
  }
  sweep_opt.seconds_per_point = seconds_per_point;
  sweep_opt.max_requests_per_point = max_requests_per_point;
  sweep_opt.base.process = loadgen::ArrivalProcess::kPoisson;
  sweep_opt.base.seed = 17;
  sweep_opt.base.appliance = "appliance";
  const loadgen::LoadSweepResult sweep =
      loadgen::RunLoadSweep(&service, views, sweep_opt);
  service.Shutdown();

  TablePrinter table({"Offered/s", "Achieved/s", "Util", "p50 ms", "p95 ms",
                      "p99 ms", "Requests", "Max lag ms"});
  std::vector<std::vector<std::string>> csv_rows{
      {"offered_rps", "achieved_rps", "utilization", "p50_ms", "p95_ms",
       "p99_ms", "requests", "max_submit_lag_ms"}};
  for (const loadgen::LoadSweepPoint& point : sweep.points) {
    table.AddRow({Fmt(point.offered_rps, 0), Fmt(point.achieved_rps, 0),
                  Fmt(point.utilization, 2), Fmt(point.latency.p50_ms, 2),
                  Fmt(point.latency.p95_ms, 2), Fmt(point.latency.p99_ms, 2),
                  FmtInt(point.requests),
                  Fmt(point.max_submit_lag_seconds * 1e3, 2)});
    csv_rows.push_back(
        {Fmt(point.offered_rps, 1), Fmt(point.achieved_rps, 1),
         Fmt(point.utilization, 3), Fmt(point.latency.p50_ms, 3),
         Fmt(point.latency.p95_ms, 3), Fmt(point.latency.p99_ms, 3),
         FmtInt(point.requests), Fmt(point.max_submit_lag_seconds * 1e3, 3)});
  }
  table.Print(stdout);
  bench::WriteCsv("openloop", csv_rows);
  std::printf("\nknee: ~%.0f offered req/s (%s) — below it the service "
              "keeps up,\nabove it achieved throughput flattens and the "
              "tail explodes.\n",
              sweep.knee_rps, sweep.knee_basis.c_str());

  // ---- QoS scenarios on a pinned-cost service: a pre-scan sleep fixes
  // the per-request service time, so overload (and therefore shedding
  // and priority inversionless-ness) is deterministic enough to gate.
  const double kPinnedScanSeconds = 2e-3;
  FaultInjector pinned_cost;
  pinned_cost.set_scan_hook([&](const std::string&) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kPinnedScanSeconds));
  });
  serve::ServiceOptions qos_opt;
  qos_opt.workers = workers;
  qos_opt.queue_capacity = 0;
  qos_opt.coalesce_budget = 1;  // per-request cost stays exactly pinned
  qos_opt.fault_injector = &pinned_cost;
  serve::Service qos_service(qos_opt);
  CAMAL_CHECK(
      qos_service.RegisterAppliance("appliance", &ensemble, runner).ok());
  CAMAL_CHECK(qos_service.Start().ok());
  const double qos_capacity =
      static_cast<double>(workers) / kPinnedScanSeconds;

  // Deadline shedding at 4x the pinned capacity: the backlog grows ~3x
  // capacity per second, so queue waits blow through the deadline within
  // the first tenth of the run and most of the flood is shed pre-scan.
  const double deadline_seconds = 10.0 * kPinnedScanSeconds;
  loadgen::OpenLoopOptions flood;
  flood.offered_rps = 4.0 * qos_capacity;
  flood.requests = params.mode == eval::BenchMode::kSmoke ? 400 : 1200;
  flood.seed = 41;
  flood.appliance = "appliance";
  flood.deadline_seconds = deadline_seconds;
  loadgen::OpenLoopDriver deadline_driver(&qos_service, views, flood);
  const loadgen::OpenLoopResult deadline_run = deadline_driver.Run();
  const double shed_fraction =
      deadline_run.intended > 0
          ? static_cast<double>(deadline_run.shed_deadline) /
                static_cast<double>(deadline_run.intended)
          : 0.0;
  const loadgen::LatencySummary survivor = deadline_run.latency.Summary();
  std::printf("\ndeadline shedding at %.0fx capacity, %.0f ms deadline: "
              "%lld/%lld shed pre-scan (%.0f%%),\nsurvivor p99 %.1f ms "
              "(the backlog died in the queue, not in the scanners)\n",
              4.0, deadline_seconds * 1e3,
              static_cast<long long>(deadline_run.shed_deadline),
              static_cast<long long>(deadline_run.intended),
              shed_fraction * 100.0, survivor.p99_ms);

  // Priorities: a high-priority trickle against a low-priority flood,
  // concurrently, mildly overloaded in total. High requests overtake the
  // low backlog at every dequeue, so their tail tracks the service time
  // while the flood absorbs the queueing.
  loadgen::OpenLoopOptions high;
  high.offered_rps = 0.1 * qos_capacity;
  high.requests = params.mode == eval::BenchMode::kSmoke ? 40 : 120;
  high.seed = 43;
  high.appliance = "appliance";
  high.priority = serve::RequestPriority::kHigh;
  loadgen::OpenLoopOptions low = high;
  low.offered_rps = 1.1 * qos_capacity;
  low.requests = params.mode == eval::BenchMode::kSmoke ? 300 : 900;
  low.seed = 44;
  low.priority = serve::RequestPriority::kLow;
  loadgen::OpenLoopDriver high_driver(&qos_service, views, high);
  loadgen::OpenLoopDriver low_driver(&qos_service, views, low);
  loadgen::OpenLoopResult high_run, low_run;
  std::thread low_thread([&] { low_run = low_driver.Run(); });
  high_run = high_driver.Run();
  low_thread.join();
  qos_service.Shutdown();
  const loadgen::LatencySummary high_latency = high_run.latency.Summary();
  const loadgen::LatencySummary low_latency = low_run.latency.Summary();
  const serve::ServiceStats qos_stats = qos_service.stats();
  std::printf("\npriorities under a low-priority flood (%.0f + %.0f "
              "offered req/s):\n  high p95 %.1f ms over %lld requests, "
              "low p95 %.1f ms over %lld requests\n  served by class: "
              "%lld high / %lld normal / %lld low, %lld shed\n",
              high.offered_rps, low.offered_rps, high_latency.p95_ms,
              static_cast<long long>(high_run.completed), low_latency.p95_ms,
              static_cast<long long>(low_run.completed),
              static_cast<long long>(qos_stats.completed_high),
              static_cast<long long>(qos_stats.completed_normal),
              static_cast<long long>(qos_stats.completed_low),
              static_cast<long long>(qos_stats.shed_deadline));

  // ---- Gates.
  bool axis_monotone = true;
  for (size_t i = 1; i < sweep.points.size(); ++i) {
    axis_monotone = axis_monotone && sweep.points[i].offered_rps >
                                         sweep.points[i - 1].offered_rps;
  }
  const bool knee_detected =
      sweep.knee_index >= 0 &&
      sweep.knee_index < static_cast<int>(sweep.points.size()) &&
      sweep.knee_rps > 0.0;
  const bool shedding_works = deadline_run.shed_deadline > 0 &&
                              deadline_run.completed > 0 &&
                              deadline_run.failed == 0;
  std::printf("\n[gate] offered-load axis monotone: %s\n",
              axis_monotone ? "PASS" : "FAIL");
  std::printf("[gate] knee detected: %s (~%.0f req/s, basis %s)\n",
              knee_detected ? "PASS" : "FAIL", sweep.knee_rps,
              sweep.knee_basis.c_str());
  std::printf("[gate] deadline shedding under overload: %s "
              "(%lld shed, %lld served, 0 failed)\n",
              shedding_works ? "PASS" : "FAIL",
              static_cast<long long>(deadline_run.shed_deadline),
              static_cast<long long>(deadline_run.completed));

  std::string json = "{\n";
  json += "  \"bench\": \"openloop\",\n";
  json += "  \"mode\": \"" +
          std::string(eval::BenchModeName(params.mode)) + "\",\n";
  json += "  \"workers\": " + FmtInt(workers) + ",\n";
  json += "  \"process\": \"poisson\",\n";
  json += "  \"calibrated_capacity_rps\": " + Fmt(capacity_rps, 1) + ",\n";
  json += "  \"points\": [\n";
  for (size_t i = 0; i < sweep.points.size(); ++i) {
    json += PointJson(sweep.points[i]);
    json += i + 1 < sweep.points.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"knee_rps\": " + Fmt(sweep.knee_rps, 1) + ",\n";
  json += "  \"knee_index\": " + FmtInt(sweep.knee_index) + ",\n";
  json += "  \"knee_basis\": \"" + sweep.knee_basis + "\",\n";
  json += "  \"qos\": {\n";
  json += "    \"pinned_scan_ms\": " + Fmt(kPinnedScanSeconds * 1e3, 1) +
          ",\n";
  json += "    \"deadline_ms\": " + Fmt(deadline_seconds * 1e3, 1) + ",\n";
  json += "    \"deadline_offered_rps\": " + Fmt(flood.offered_rps, 1) +
          ",\n";
  json += "    \"deadline_requests\": " + FmtInt(deadline_run.intended) +
          ",\n";
  json += "    \"shed_deadline\": " + FmtInt(deadline_run.shed_deadline) +
          ",\n";
  json += "    \"shed_fraction\": " + Fmt(shed_fraction, 3) + ",\n";
  json += "    \"survivor_p99_ms\": " + Fmt(survivor.p99_ms, 3) + ",\n";
  json += "    \"high_p95_ms\": " + Fmt(high_latency.p95_ms, 3) + ",\n";
  json += "    \"low_p95_ms\": " + Fmt(low_latency.p95_ms, 3) + ",\n";
  json += "    \"completed_high\": " + FmtInt(qos_stats.completed_high) +
          ",\n";
  json += "    \"completed_low\": " + FmtInt(qos_stats.completed_low) + "\n";
  json += "  }\n";
  json += "}\n";
  bench::WriteTextFile("BENCH_openloop.json", json);

  if (!axis_monotone || !knee_detected || !shedding_works) {
    std::fprintf(stderr, "bench_openloop: gate failed\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace camal

int main() { return camal::Run(); }
