// Tests for the extension modules: CSV dataset loading, ensemble
// persistence, the InceptionTime backbone, the Combinatorial Optimization
// baseline, and refined power estimation.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baselines/combinatorial.h"
#include "baselines/fhmm.h"
#include "core/inception.h"
#include "core/localizer.h"
#include "core/model_io.h"
#include "core/power_estimation.h"
#include "data/csv_loader.h"
#include "gradcheck.h"
#include "nn/pooling.h"

namespace camal {
namespace {

using camal::testing::CheckModuleGradients;
using camal::testing::RandomInput;

// ---------------------------------------------------------------------------
// CSV loader.
// ---------------------------------------------------------------------------

constexpr char kCsv[] =
    "timestamp,aggregate,dishwasher\n"
    "0,100,0\n"
    "60,150,0\n"
    "120,900,800\n"
    "180,950,820\n"
    "300,120,0\n";  // note the 240s gap -> one missing row

TEST(CsvLoaderTest, ParsesHeaderAndValues) {
  auto house = data::ParseHouseCsv(kCsv, 7);
  ASSERT_TRUE(house.ok()) << house.status().ToString();
  const data::HouseRecord& h = house.value();
  EXPECT_EQ(h.house_id, 7);
  EXPECT_DOUBLE_EQ(h.interval_seconds, 60.0);
  ASSERT_EQ(h.aggregate.size(), 6u);  // 5 rows + 1 gap expansion
  EXPECT_FLOAT_EQ(h.aggregate[0], 100.0f);
  EXPECT_FLOAT_EQ(h.aggregate[2], 900.0f);
  EXPECT_TRUE(data::IsMissing(h.aggregate[4]));  // the gap at t=240
  EXPECT_FLOAT_EQ(h.aggregate[5], 120.0f);
  ASSERT_EQ(h.appliances.size(), 1u);
  EXPECT_EQ(h.appliances[0].name, "dishwasher");
  EXPECT_FLOAT_EQ(h.appliances[0].power[3], 820.0f);
  EXPECT_TRUE(h.Owns("dishwasher"));
}

TEST(CsvLoaderTest, EmptyCellsAreMissing) {
  auto house = data::ParseHouseCsv(
      "timestamp,aggregate\n0,\n60,200\n120,300\n", 1);
  ASSERT_TRUE(house.ok());
  EXPECT_TRUE(data::IsMissing(house.value().aggregate[0]));
  EXPECT_FLOAT_EQ(house.value().aggregate[1], 200.0f);
}

TEST(CsvLoaderTest, RejectsBadHeader) {
  EXPECT_FALSE(data::ParseHouseCsv("time,power\n0,1\n1,2\n", 1).ok());
  EXPECT_FALSE(data::ParseHouseCsv("timestamp,aggregate\n0,1\n", 1).ok());
}

TEST(CsvLoaderTest, RejectsNonMonotonicTimestamps) {
  EXPECT_FALSE(data::ParseHouseCsv(
                   "timestamp,aggregate\n0,1\n60,2\n30,3\n", 1)
                   .ok());
}

TEST(CsvLoaderTest, RejectsMalformedNumbers) {
  EXPECT_FALSE(
      data::ParseHouseCsv("timestamp,aggregate\n0,abc\n60,2\n120,1\n", 1)
          .ok());
}

TEST(CsvLoaderTest, WriteThenLoadRoundTrip) {
  const std::string path = "/tmp/camal_house_roundtrip.csv";
  auto original = data::ParseHouseCsv(kCsv, 3).value();
  ASSERT_TRUE(data::WriteHouseCsv(original, path).ok());
  auto loaded = data::LoadHouseCsv(path, 3);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().aggregate.size(), original.aggregate.size());
  for (size_t i = 0; i < original.aggregate.size(); ++i) {
    if (data::IsMissing(original.aggregate[i])) {
      EXPECT_TRUE(data::IsMissing(loaded.value().aggregate[i]));
    } else {
      EXPECT_FLOAT_EQ(loaded.value().aggregate[i], original.aggregate[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, LoadDatasetDirReadsSortedHouses) {
  const std::string dir = "/tmp/camal_dataset_dir";
  std::filesystem::create_directories(dir);
  auto h1 = data::ParseHouseCsv(kCsv, 1).value();
  ASSERT_TRUE(data::WriteHouseCsv(h1, dir + "/house_01.csv").ok());
  ASSERT_TRUE(data::WriteHouseCsv(h1, dir + "/house_02.csv").ok());
  auto cohort = data::LoadDatasetDir(dir);
  ASSERT_TRUE(cohort.ok()) << cohort.status().ToString();
  ASSERT_EQ(cohort.value().size(), 2u);
  EXPECT_EQ(cohort.value()[0].house_id, 1);
  EXPECT_EQ(cohort.value()[1].house_id, 2);
  std::filesystem::remove_all(dir);
}

TEST(CsvLoaderTest, LoadDatasetDirFailsOnMissingDir) {
  EXPECT_FALSE(data::LoadDatasetDir("/tmp/does_not_exist_camal_dir").ok());
}

TEST(CsvLoaderTest, ReadErrorIsIoErrorNotShortParse) {
  // On Linux, fopen("rb") on a directory succeeds and the first fread
  // fails with EISDIR — exactly the fread-loop-without-ferror case that
  // used to parse an empty "file" instead of reporting the I/O failure.
  const std::string dir = "/tmp/camal_read_error_dir";
  std::filesystem::create_directories(dir);
  auto house = data::LoadHouseCsv(dir, 1);
  ASSERT_FALSE(house.ok());
  EXPECT_EQ(house.status().code(), StatusCode::kIoError)
      << house.status().ToString();
  std::filesystem::remove_all(dir);
}

TEST(CsvLoaderTest, PossessionSurveyRejectsMalformedHouseId) {
  // atoi would map "kitchen" to 0 and "12x" to 12, silently attributing
  // survey rows to the wrong household; both must be rejected instead.
  const std::string path = "/tmp/camal_survey_malformed.csv";
  std::vector<data::HouseRecord> houses(1);
  houses[0].house_id = 12;
  for (const char* bad_id : {"kitchen", "12x", "", "12.5"}) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "house_id,appliance,owned\n%s,kettle,1\n", bad_id);
    std::fclose(f);
    Status st = data::ApplyPossessionSurvey(path, &houses);
    ASSERT_FALSE(st.ok()) << "id '" << bad_id << "' was accepted";
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument)
        << st.ToString() << " for id '" << bad_id << "'";
  }
  EXPECT_FALSE(houses[0].Owns("kettle"));
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, PossessionSurveyTogglesOwnership) {
  const std::string path = "/tmp/camal_survey.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("house_id,appliance,owned\n1,kettle,1\n1,dishwasher,0\n", f);
  std::fclose(f);
  std::vector<data::HouseRecord> houses(1);
  houses[0].house_id = 1;
  houses[0].owned_appliances = {"dishwasher"};
  ASSERT_TRUE(data::ApplyPossessionSurvey(path, &houses).ok());
  EXPECT_TRUE(houses[0].Owns("kettle"));
  EXPECT_FALSE(houses[0].Owns("dishwasher"));
  // Unknown house id fails.
  houses[0].house_id = 99;
  EXPECT_FALSE(data::ApplyPossessionSurvey(path, &houses).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// MaxPool padding (needed by the Inception block).
// ---------------------------------------------------------------------------

TEST(MaxPoolPaddingTest, SameLengthPooling) {
  nn::MaxPool1d pool(3, 1, 1);
  nn::Tensor x({1, 1, 5});
  float vals[] = {1, 5, 2, 9, 3};
  for (int64_t i = 0; i < 5; ++i) x.at3(0, 0, i) = vals[i];
  nn::Tensor y = pool.Forward(x);
  ASSERT_EQ(y.dim(2), 5);
  EXPECT_EQ(y.at3(0, 0, 0), 5.0f);  // max(pad, 1, 5)
  EXPECT_EQ(y.at3(0, 0, 1), 5.0f);
  EXPECT_EQ(y.at3(0, 0, 3), 9.0f);
  EXPECT_EQ(y.at3(0, 0, 4), 9.0f);  // max(9, 3, pad)
  nn::Tensor g = pool.Backward(nn::Tensor::Full({1, 1, 5}, 1.0f));
  EXPECT_EQ(g.dim(2), 5);
  // All gradient mass lands on real (non-pad) positions.
  EXPECT_DOUBLE_EQ(g.Sum(), 5.0);
}

// ---------------------------------------------------------------------------
// Inception backbone.
// ---------------------------------------------------------------------------

core::InceptionConfig TinyInception() {
  core::InceptionConfig config;
  config.kernel_size = 3;
  config.base_filters = 2;
  config.depth = 2;
  return config;
}

TEST(InceptionTest, ForwardShapesAndCamInterface) {
  Rng rng(1);
  core::InceptionClassifier net(TinyInception(), &rng);
  nn::Tensor x = RandomInput({2, 1, 16}, 2);
  nn::Tensor logits = net.Forward(x);
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 2);
  EXPECT_EQ(net.feature_maps().dim(1), 8);  // 4f
  EXPECT_EQ(net.feature_maps().dim(2), 16);
  EXPECT_EQ(net.head_weights().dim(1), 8);
  EXPECT_EQ(net.kind(), core::BackboneKind::kInception);
}

TEST(InceptionTest, GradCheck) {
  Rng rng(1);
  core::InceptionClassifier net(TinyInception(), &rng);
  net.SetTraining(true);
  nn::Tensor x = RandomInput({2, 1, 12}, 3, -0.5, 0.5);
  auto result = CheckModuleGradients(&net, x, 5, 1e-3);
  EXPECT_TRUE(result.ok(3e-2)) << "abs=" << result.max_abs_err
                               << " rel=" << result.max_rel_err;
}

TEST(InceptionTest, TrainsInsideEnsemble) {
  // Reuse the pulse task: the Inception backbone must be trainable through
  // Algorithm 1 via the backbone switch.
  Rng rng(5);
  data::WindowDataset train;
  train.window_length = 24;
  train.appliance = {"pulse", 300.0f, 800.0f};
  const int64_t n = 48;
  train.inputs = nn::Tensor({n, 1, 24});
  train.status = nn::Tensor({n, 24});
  train.appliance_power = nn::Tensor({n, 24});
  for (int64_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    for (int64_t t = 0; t < 24; ++t) {
      train.inputs.at3(i, 0, t) =
          0.1f + static_cast<float>(rng.Gaussian(0.0, 0.02));
    }
    if (positive) {
      for (int64_t t = 6; t < 12; ++t) train.inputs.at3(i, 0, t) += 0.8f;
    }
    train.weak_labels.push_back(positive ? 1 : 0);
    train.house_ids.push_back(0);
  }
  core::EnsembleConfig config;
  config.backbone = core::BackboneKind::kInception;
  config.kernel_sizes = {3};
  config.trials_per_kernel = 1;
  config.ensemble_size = 1;
  config.base_filters = 4;
  config.train.max_epochs = 5;
  auto ens = core::CamalEnsemble::Train(train, train, config, 7);
  ASSERT_TRUE(ens.ok()) << ens.status().ToString();
  EXPECT_EQ(ens.value().members()[0].model->kind(),
            core::BackboneKind::kInception);
  nn::Tensor prob =
      const_cast<core::CamalEnsemble&>(ens.value()).DetectProbability(
          train.inputs);
  int correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    const int label = train.weak_labels[static_cast<size_t>(i)];
    if ((prob.at(i) > 0.5f) == (label == 1)) {
      ++correct;
    }
  }
  EXPECT_GE(correct, n * 3 / 4);
}

// ---------------------------------------------------------------------------
// Ensemble persistence.
// ---------------------------------------------------------------------------

data::WindowDataset SmallPulseSet(int64_t n, uint64_t seed) {
  Rng rng(seed);
  data::WindowDataset ds;
  ds.window_length = 24;
  ds.appliance = {"pulse", 300.0f, 800.0f};
  ds.inputs = nn::Tensor({n, 1, 24});
  ds.status = nn::Tensor({n, 24});
  ds.appliance_power = nn::Tensor({n, 24});
  for (int64_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    for (int64_t t = 0; t < 24; ++t) {
      ds.inputs.at3(i, 0, t) =
          0.1f + static_cast<float>(rng.Gaussian(0.0, 0.02));
    }
    if (positive) {
      const int64_t start = rng.UniformInt(0, 17);
      for (int64_t t = start; t < start + 6; ++t) {
        ds.inputs.at3(i, 0, t) += 0.8f;
        ds.status.at2(i, t) = 1.0f;
        ds.appliance_power.at2(i, t) = 800.0f;
      }
    }
    ds.weak_labels.push_back(positive ? 1 : 0);
    ds.house_ids.push_back(0);
  }
  return ds;
}

TEST(ModelIoTest, SaveLoadEnsemblePreservesInference) {
  const std::string dir = "/tmp/camal_ensemble_io";
  data::WindowDataset train = SmallPulseSet(48, 1);
  data::WindowDataset valid = SmallPulseSet(16, 2);
  core::EnsembleConfig config;
  config.kernel_sizes = {5, 9};
  config.trials_per_kernel = 1;
  config.ensemble_size = 2;
  config.base_filters = 4;
  config.train.max_epochs = 4;
  auto trained = core::CamalEnsemble::Train(train, valid, config, 7);
  ASSERT_TRUE(trained.ok());
  core::CamalEnsemble ensemble = std::move(trained).value();
  ASSERT_TRUE(core::SaveEnsemble(ensemble, dir).ok());

  auto loaded = core::LoadEnsemble(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  core::CamalEnsemble restored = std::move(loaded).value();
  ASSERT_EQ(restored.members().size(), ensemble.members().size());
  EXPECT_EQ(restored.members()[0].kernel_size,
            ensemble.members()[0].kernel_size);

  data::WindowDataset test = SmallPulseSet(12, 3);
  nn::Tensor p1 = ensemble.DetectProbability(test.inputs);
  nn::Tensor p2 = restored.DetectProbability(test.inputs);
  for (int64_t i = 0; i < p1.numel(); ++i) {
    EXPECT_NEAR(p1.at(i), p2.at(i), 1e-5);
  }
  // Localization must also be identical (BN buffers round-tripped).
  core::CamalLocalizer l1(&ensemble), l2(&restored);
  nn::Tensor s1 = l1.Localize(test.inputs).status;
  nn::Tensor s2 = l2.Localize(test.inputs).status;
  for (int64_t i = 0; i < s1.numel(); ++i) EXPECT_EQ(s1.at(i), s2.at(i));
  std::filesystem::remove_all(dir);
}

TEST(ModelIoTest, LoadFailsOnMissingDirectory) {
  EXPECT_FALSE(core::LoadEnsemble("/tmp/no_such_camal_ensemble").ok());
}

// ---------------------------------------------------------------------------
// Combinatorial Optimization baseline.
// ---------------------------------------------------------------------------

TEST(CoBaselineTest, DetectsStepAbovePa2) {
  data::WindowDataset ds = SmallPulseSet(16, 4);
  // Pulse is 800 W over a ~100 W base -> residual 0.8 kW > P_a/2 = 0.4 kW.
  nn::Tensor status = baselines::PredictCoStatus(ds);
  int64_t tp = 0, fn = 0, fp = 0;
  for (int64_t i = 0; i < ds.size(); ++i) {
    for (int64_t t = 0; t < ds.window_length; ++t) {
      const bool p = status.at2(i, t) > 0.5f;
      const bool g = ds.status.at2(i, t) > 0.5f;
      tp += p && g;
      fn += !p && g;
      fp += p && !g;
    }
  }
  // On this clean task CO is near-perfect (that is exactly why the paper
  // notes CO fails on *real* aggregates with concurrent appliances).
  EXPECT_GT(tp, 0);
  EXPECT_EQ(fn, 0);
  EXPECT_LT(fp, ds.size());
}

TEST(CoBaselineTest, ConfusedByDistractorsOfSimilarPower) {
  // Add an 800 W distractor to negative windows: CO cannot tell them apart,
  // CamAL's learned classifier can (the paper's motivation for learning).
  data::WindowDataset ds = SmallPulseSet(16, 5);
  for (int64_t i = 1; i < ds.size(); i += 2) {  // negatives
    for (int64_t t = 2; t < 8; ++t) ds.inputs.at3(i, 0, t) += 0.8f;
  }
  nn::Tensor status = baselines::PredictCoStatus(ds);
  int64_t fp = 0;
  for (int64_t i = 1; i < ds.size(); i += 2) {
    for (int64_t t = 0; t < ds.window_length; ++t) {
      fp += status.at2(i, t) > 0.5f && ds.status.at2(i, t) < 0.5f;
    }
  }
  EXPECT_GT(fp, 0) << "CO should false-positive on same-power distractors";
}

// ---------------------------------------------------------------------------
// FHMM baseline (Kim et al. 2011).
// ---------------------------------------------------------------------------

TEST(FhmmBaselineTest, DecodesCleanPulse) {
  data::WindowDataset ds = SmallPulseSet(16, 6);
  nn::Tensor status = baselines::PredictFhmmStatus(ds);
  int64_t tp = 0, fn = 0, fp = 0;
  for (int64_t i = 0; i < ds.size(); ++i) {
    for (int64_t t = 0; t < ds.window_length; ++t) {
      const bool p = status.at2(i, t) > 0.5f;
      const bool g = ds.status.at2(i, t) > 0.5f;
      tp += p && g;
      fn += !p && g;
      fp += p && !g;
    }
  }
  const double f1 = tp > 0 ? 2.0 * tp / (2.0 * tp + fp + fn) : 0.0;
  EXPECT_GT(f1, 0.8) << "tp=" << tp << " fp=" << fp << " fn=" << fn;
}

TEST(FhmmBaselineTest, AllOffWindowStaysOff) {
  data::WindowDataset ds = SmallPulseSet(16, 6);
  // Flatten every window: constant base load, no pulses.
  for (int64_t i = 0; i < ds.size(); ++i) {
    for (int64_t t = 0; t < ds.window_length; ++t) {
      ds.inputs.at3(i, 0, t) = 0.1f;
    }
  }
  nn::Tensor status = baselines::PredictFhmmStatus(ds);
  EXPECT_DOUBLE_EQ(status.Sum(), 0.0);
}

TEST(FhmmBaselineTest, ViterbiSmoothsIsolatedSpikes) {
  // A single-sample glitch well below P_a should not open an ON segment
  // thanks to the sticky transition prior.
  data::WindowDataset ds = SmallPulseSet(4, 7);
  for (int64_t i = 0; i < ds.size(); ++i) {
    for (int64_t t = 0; t < ds.window_length; ++t) {
      ds.inputs.at3(i, 0, t) = 0.1f;
    }
    ds.inputs.at3(i, 0, 10) = 0.25f;  // 150 W blip << P_a = 800 W
  }
  nn::Tensor status = baselines::PredictFhmmStatus(ds);
  EXPECT_DOUBLE_EQ(status.Sum(), 0.0);
}

TEST(FhmmBaselineTest, EmRefinementHelpsMiscalibratedPa) {
  // Appliance truly draws 1.6 kW but Table I says 0.8 kW: EM should pull
  // the ON mean toward the data and keep detections intact.
  data::WindowDataset ds = SmallPulseSet(8, 8);
  for (int64_t i = 0; i < ds.size(); ++i) {
    for (int64_t t = 0; t < ds.window_length; ++t) {
      if (ds.status.at2(i, t) > 0.5f) ds.inputs.at3(i, 0, t) += 0.8f;  // 2x
    }
  }
  baselines::FhmmOptions with_em;
  with_em.em_iterations = 4;
  baselines::FhmmOptions no_em;
  no_em.em_iterations = 0;
  auto f1_of = [&](const nn::Tensor& status) {
    int64_t tp = 0, fn = 0, fp = 0;
    for (int64_t i = 0; i < ds.size(); ++i) {
      for (int64_t t = 0; t < ds.window_length; ++t) {
        const bool p = status.at2(i, t) > 0.5f;
        const bool g = ds.status.at2(i, t) > 0.5f;
        tp += p && g;
        fn += !p && g;
        fp += p && !g;
      }
    }
    return tp > 0 ? 2.0 * tp / (2.0 * tp + fp + fn) : 0.0;
  };
  const double with_f1 = f1_of(baselines::PredictFhmmStatus(ds, with_em));
  const double without_f1 = f1_of(baselines::PredictFhmmStatus(ds, no_em));
  EXPECT_GE(with_f1, without_f1);
  EXPECT_GT(with_f1, 0.7);
}

// ---------------------------------------------------------------------------
// Refined power estimation.
// ---------------------------------------------------------------------------

TEST(RefinedPowerTest, RecoversTrueStepBetterThanConstantModel) {
  // Appliance truly draws 600 W but Table I says P_a = 800 W: the refined
  // estimator should price the segment at the observed ~600 W step.
  const int64_t l = 32;
  nn::Tensor status({1, l});
  nn::Tensor watts({1, l});
  nn::Tensor truth({1, l});
  for (int64_t t = 0; t < l; ++t) {
    watts.at2(0, t) = 100.0f;  // base load
  }
  for (int64_t t = 10; t < 16; ++t) {
    status.at2(0, t) = 1.0f;
    watts.at2(0, t) = 700.0f;  // base + 600 W appliance
    truth.at2(0, t) = 600.0f;
  }
  nn::Tensor simple = core::EstimatePower(status, watts, 800.0f);
  nn::Tensor refined = core::EstimatePowerRefined(status, watts, 800.0f, 8);
  double err_simple = 0.0, err_refined = 0.0;
  for (int64_t t = 0; t < l; ++t) {
    err_simple += std::fabs(simple.at2(0, t) - truth.at2(0, t));
    err_refined += std::fabs(refined.at2(0, t) - truth.at2(0, t));
  }
  EXPECT_LT(err_refined, err_simple);
  EXPECT_NEAR(refined.at2(0, 12), 600.0f, 1.0f);
}

TEST(RefinedPowerTest, FallsBackWithoutOffContext) {
  // All-ON status: no OFF samples anywhere -> constant-model fallback.
  nn::Tensor status = nn::Tensor::Full({1, 8}, 1.0f);
  nn::Tensor watts = nn::Tensor::Full({1, 8}, 700.0f);
  nn::Tensor refined = core::EstimatePowerRefined(status, watts, 800.0f, 4);
  for (int64_t t = 0; t < 8; ++t) {
    EXPECT_FLOAT_EQ(refined.at2(0, t), 700.0f);  // min(P_a, x)
  }
}

TEST(RefinedPowerTest, OffTimestampsStayZero) {
  nn::Tensor status({1, 8});
  nn::Tensor watts = nn::Tensor::Full({1, 8}, 500.0f);
  nn::Tensor refined = core::EstimatePowerRefined(status, watts, 800.0f);
  EXPECT_DOUBLE_EQ(refined.Sum(), 0.0);
}

}  // namespace
}  // namespace camal
