#include <gtest/gtest.h>

#include "data/balance.h"
#include "data/dataset.h"
#include "data/resample.h"
#include "data/split.h"
#include "data/time_series.h"
#include "data/window.h"

namespace camal::data {
namespace {

TEST(TimeSeriesTest, MissingCount) {
  TimeSeries s;
  s.values = {1.0f, kMissingValue, 2.0f, kMissingValue};
  EXPECT_EQ(s.MissingCount(), 2);
  EXPECT_TRUE(IsMissing(kMissingValue));
  EXPECT_FALSE(IsMissing(0.0f));
}

TEST(ResampleTest, AveragesBuckets) {
  TimeSeries s;
  s.interval_seconds = 60.0;
  s.values = {1, 3, 5, 7, 9, 11};
  auto out = ResampleAverage(s, 120.0);
  ASSERT_TRUE(out.ok());
  const TimeSeries& r = out.value();
  EXPECT_EQ(r.interval_seconds, 120.0);
  ASSERT_EQ(r.size(), 3);
  EXPECT_FLOAT_EQ(r.values[0], 2.0f);
  EXPECT_FLOAT_EQ(r.values[1], 6.0f);
  EXPECT_FLOAT_EQ(r.values[2], 10.0f);
}

TEST(ResampleTest, SkipsMissingInAverage) {
  TimeSeries s;
  s.interval_seconds = 60.0;
  s.values = {2.0f, kMissingValue, kMissingValue, kMissingValue};
  auto out = ResampleAverage(s, 120.0);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out.value().values[0], 2.0f);      // one valid reading
  EXPECT_TRUE(IsMissing(out.value().values[1]));     // none valid
}

TEST(ResampleTest, RejectsNonIntegerRatio) {
  TimeSeries s;
  s.interval_seconds = 60.0;
  s.values = {1, 2, 3};
  EXPECT_FALSE(ResampleAverage(s, 90.0).ok());
  EXPECT_FALSE(ResampleAverage(s, -60.0).ok());
}

TEST(ForwardFillTest, FillsWithinMaxGap) {
  TimeSeries s;
  s.interval_seconds = 60.0;
  s.values = {1.0f, kMissingValue, kMissingValue, 4.0f};
  TimeSeries filled = ForwardFill(s, 120.0);  // max 2 samples
  EXPECT_FLOAT_EQ(filled.values[1], 1.0f);
  EXPECT_FLOAT_EQ(filled.values[2], 1.0f);
  EXPECT_FLOAT_EQ(filled.values[3], 4.0f);
}

TEST(ForwardFillTest, LeavesLongGapsMissing) {
  TimeSeries s;
  s.interval_seconds = 60.0;
  s.values = {1.0f, kMissingValue, kMissingValue, kMissingValue, 5.0f};
  TimeSeries filled = ForwardFill(s, 120.0);
  EXPECT_FLOAT_EQ(filled.values[1], 1.0f);
  EXPECT_FLOAT_EQ(filled.values[2], 1.0f);
  EXPECT_TRUE(IsMissing(filled.values[3]));  // third consecutive gap sample
}

TEST(ForwardFillTest, NeverFillsLeadingMissing) {
  TimeSeries s;
  s.interval_seconds = 60.0;
  s.values = {kMissingValue, 2.0f};
  TimeSeries filled = ForwardFill(s, 600.0);
  EXPECT_TRUE(IsMissing(filled.values[0]));
}

TEST(WindowTest, TumblingOffsets) {
  auto offsets = TumblingWindowOffsets(10, 3);
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_EQ(offsets[0], 0);
  EXPECT_EQ(offsets[1], 3);
  EXPECT_EQ(offsets[2], 6);  // remainder [9,10) dropped
}

TEST(WindowTest, CompletenessCheck) {
  std::vector<float> v{1, 2, kMissingValue, 4};
  EXPECT_TRUE(WindowIsComplete(v, 0, 2));
  EXPECT_FALSE(WindowIsComplete(v, 1, 2));
  EXPECT_FALSE(WindowIsComplete(v, 2, 2));
}

// ---- Dataset building ----

HouseRecord MakeHouse(int id, int64_t n, float appliance_power_at,
                      int64_t on_start, int64_t on_len) {
  HouseRecord h;
  h.house_id = id;
  h.interval_seconds = 60.0;
  h.aggregate.assign(static_cast<size_t>(n), 100.0f);
  ApplianceTrace trace;
  trace.name = "dishwasher";
  trace.power.assign(static_cast<size_t>(n), 0.0f);
  for (int64_t t = on_start; t < on_start + on_len && t < n; ++t) {
    trace.power[static_cast<size_t>(t)] = appliance_power_at;
    h.aggregate[static_cast<size_t>(t)] += appliance_power_at;
  }
  h.appliances.push_back(trace);
  h.owned_appliances.push_back("dishwasher");
  return h;
}

TEST(DatasetTest, BuildsWindowsWithWeakLabels) {
  // 2 windows of 8; appliance ON inside the second window only.
  HouseRecord house = MakeHouse(1, 16, 900.0f, 10, 3);
  BuildOptions opt;
  opt.window_length = 8;
  ApplianceSpec spec{"dishwasher", 300.0f, 800.0f};
  auto result = BuildWindowDataset({house}, spec, opt);
  ASSERT_TRUE(result.ok());
  const WindowDataset& ds = result.value();
  ASSERT_EQ(ds.size(), 2);
  EXPECT_EQ(ds.weak_labels[0], 0);
  EXPECT_EQ(ds.weak_labels[1], 1);
  EXPECT_EQ(ds.PositiveCount(), 1);
  // Status thresholded at ON power.
  EXPECT_EQ(ds.status.at2(1, 2), 1.0f);  // t=10 -> window 1, offset 2
  EXPECT_EQ(ds.status.at2(1, 1), 0.0f);
  // Inputs scaled by 1/1000.
  EXPECT_NEAR(ds.inputs.at3(0, 0, 0), 0.1f, 1e-5);
  EXPECT_NEAR(ds.inputs.at3(1, 0, 2), 1.0f, 1e-5);
}

TEST(DatasetTest, LabelCountStrongVsWeak) {
  HouseRecord house = MakeHouse(1, 32, 900.0f, 4, 2);
  BuildOptions opt;
  opt.window_length = 8;
  ApplianceSpec spec{"dishwasher", 300.0f, 800.0f};
  auto ds = BuildWindowDataset({house}, spec, opt).value();
  EXPECT_EQ(ds.LabelCount(false), 4);       // one weak label per window
  EXPECT_EQ(ds.LabelCount(true), 4 * 8);    // one strong label per timestamp
}

TEST(DatasetTest, DropsIncompleteWindows) {
  HouseRecord house = MakeHouse(1, 16, 900.0f, 10, 3);
  house.aggregate[2] = kMissingValue;
  BuildOptions opt;
  opt.window_length = 8;
  ApplianceSpec spec{"dishwasher", 300.0f, 800.0f};
  auto ds = BuildWindowDataset({house}, spec, opt).value();
  EXPECT_EQ(ds.size(), 1);  // first window dropped
  EXPECT_EQ(ds.weak_labels[0], 1);
}

TEST(DatasetTest, PossessionLabelsReplicateOwnership) {
  HouseRecord owner;
  owner.house_id = 1;
  owner.aggregate.assign(16, 500.0f);
  owner.owned_appliances.push_back("dishwasher");
  HouseRecord non_owner;
  non_owner.house_id = 2;
  non_owner.aggregate.assign(16, 500.0f);

  BuildOptions opt;
  opt.window_length = 8;
  opt.possession_labels = true;
  ApplianceSpec spec{"dishwasher", 300.0f, 800.0f};
  auto ds = BuildWindowDataset({owner, non_owner}, spec, opt).value();
  ASSERT_EQ(ds.size(), 4);
  for (int64_t i = 0; i < ds.size(); ++i) {
    const bool from_owner = ds.house_ids[static_cast<size_t>(i)] == 1;
    EXPECT_EQ(ds.weak_labels[static_cast<size_t>(i)], from_owner ? 1 : 0);
  }
}

TEST(DatasetTest, SkipsNonSubmeteredHousesWithoutPossessionMode) {
  HouseRecord no_trace;
  no_trace.house_id = 3;
  no_trace.aggregate.assign(16, 500.0f);
  BuildOptions opt;
  opt.window_length = 8;
  ApplianceSpec spec{"dishwasher", 300.0f, 800.0f};
  EXPECT_FALSE(BuildWindowDataset({no_trace}, spec, opt).ok());
}

TEST(DatasetTest, RejectsBadOptions) {
  HouseRecord house = MakeHouse(1, 16, 900.0f, 10, 3);
  ApplianceSpec spec{"dishwasher", 300.0f, 800.0f};
  BuildOptions bad;
  bad.window_length = 0;
  EXPECT_FALSE(BuildWindowDataset({house}, spec, bad).ok());
}

TEST(DatasetTest, SubsetPreservesContent) {
  HouseRecord house = MakeHouse(1, 32, 900.0f, 4, 2);
  BuildOptions opt;
  opt.window_length = 8;
  ApplianceSpec spec{"dishwasher", 300.0f, 800.0f};
  auto ds = BuildWindowDataset({house}, spec, opt).value();
  auto sub = ds.Subset({2, 0});
  ASSERT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.weak_labels[0], ds.weak_labels[2]);
  EXPECT_EQ(sub.inputs.at3(1, 0, 3), ds.inputs.at3(0, 0, 3));
}

TEST(DatasetTest, ConcatMergesAndValidates) {
  HouseRecord h1 = MakeHouse(1, 16, 900.0f, 10, 3);
  HouseRecord h2 = MakeHouse(2, 16, 900.0f, 2, 3);
  BuildOptions opt;
  opt.window_length = 8;
  ApplianceSpec spec{"dishwasher", 300.0f, 800.0f};
  auto a = BuildWindowDataset({h1}, spec, opt).value();
  auto b = BuildWindowDataset({h2}, spec, opt).value();
  auto cat = ConcatDatasets({a, b});
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ(cat.value().size(), a.size() + b.size());

  auto bad = b;
  bad.window_length = 4;
  EXPECT_FALSE(ConcatDatasets({a, bad}).ok());
}

TEST(BalanceTest, EqualizesClasses) {
  HouseRecord house = MakeHouse(1, 80, 900.0f, 4, 2);  // 1 pos, 9 neg windows
  BuildOptions opt;
  opt.window_length = 8;
  ApplianceSpec spec{"dishwasher", 300.0f, 800.0f};
  auto ds = BuildWindowDataset({house}, spec, opt).value();
  ASSERT_TRUE(IsBalanceable(ds));
  Rng rng(1);
  auto balanced = BalanceByWeakLabel(ds, &rng);
  EXPECT_EQ(balanced.size(), 2);
  EXPECT_EQ(balanced.PositiveCount(), 1);
}

TEST(BalanceTest, SingleClassReturnsUnchanged) {
  HouseRecord house = MakeHouse(1, 16, 0.0f, 0, 0);  // never ON
  BuildOptions opt;
  opt.window_length = 8;
  ApplianceSpec spec{"dishwasher", 300.0f, 800.0f};
  auto ds = BuildWindowDataset({house}, spec, opt).value();
  EXPECT_FALSE(IsBalanceable(ds));
  Rng rng(1);
  auto balanced = BalanceByWeakLabel(ds, &rng);
  EXPECT_EQ(balanced.size(), ds.size());
}

TEST(ShuffleTest, PreservesMultiset) {
  HouseRecord house = MakeHouse(1, 80, 900.0f, 4, 2);
  BuildOptions opt;
  opt.window_length = 8;
  ApplianceSpec spec{"dishwasher", 300.0f, 800.0f};
  auto ds = BuildWindowDataset({house}, spec, opt).value();
  Rng rng(7);
  auto shuffled = ShuffleDataset(ds, &rng);
  EXPECT_EQ(shuffled.size(), ds.size());
  EXPECT_EQ(shuffled.PositiveCount(), ds.PositiveCount());
}

TEST(SplitTest, HouseLevelSplitIsDisjoint) {
  std::vector<HouseRecord> houses;
  for (int i = 0; i < 10; ++i) houses.push_back(MakeHouse(i, 16, 900.0f, 4, 2));
  Rng rng(5);
  auto split = SplitHouses(houses, 2, 3, &rng);
  ASSERT_TRUE(split.ok());
  const HouseSplit& s = split.value();
  EXPECT_EQ(s.valid.size(), 2u);
  EXPECT_EQ(s.test.size(), 3u);
  EXPECT_EQ(s.train.size(), 5u);
  std::set<int> ids;
  for (const auto& h : s.train) ids.insert(h.house_id);
  for (const auto& h : s.valid) ids.insert(h.house_id);
  for (const auto& h : s.test) ids.insert(h.house_id);
  EXPECT_EQ(ids.size(), 10u);
}

TEST(SplitTest, RejectsImpossibleCounts) {
  std::vector<HouseRecord> houses{MakeHouse(1, 16, 900.0f, 4, 2)};
  Rng rng(1);
  EXPECT_FALSE(SplitHouses(houses, 1, 1, &rng).ok());
  EXPECT_FALSE(SplitHouses(houses, -1, 0, &rng).ok());
}

TEST(SplitTest, FractionalSplit) {
  std::vector<HouseRecord> houses;
  for (int i = 0; i < 20; ++i) houses.push_back(MakeHouse(i, 16, 900.0f, 4, 2));
  Rng rng(5);
  auto split = SplitHousesFraction(houses, 0.1, 0.2, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split.value().valid.size(), 2u);
  EXPECT_EQ(split.value().test.size(), 4u);
  EXPECT_EQ(split.value().train.size(), 14u);
  EXPECT_FALSE(SplitHousesFraction(houses, 0.6, 0.5, &rng).ok());
}

}  // namespace
}  // namespace camal::data
