#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace camal::nn {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.ndim(), 0);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full({4}, 2.5f);
  EXPECT_EQ(t.at(3), 2.5f);
  t.Fill(-1.0f);
  EXPECT_EQ(t.at(0), -1.0f);
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::FromVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.ndim(), 1);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.at(1), 2.0f);
}

TEST(TensorTest, IndexedAccess3d) {
  Tensor t({2, 3, 4});
  t.at3(1, 2, 3) = 7.0f;
  EXPECT_EQ(t.at(1 * 12 + 2 * 4 + 3), 7.0f);
}

TEST(TensorTest, IndexedAccess2d) {
  Tensor t({3, 5});
  t.at2(2, 4) = 9.0f;
  EXPECT_EQ(t.at(14), 9.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({2, 3});
  EXPECT_EQ(r.at2(1, 2), 6.0f);
  EXPECT_EQ(r.ndim(), 2);
}

TEST(TensorTest, ShapeString) {
  Tensor t({2, 64, 510});
  EXPECT_EQ(t.ShapeString(), "(2, 64, 510)");
}

TEST(TensorTest, AddSubMulScale) {
  Tensor a = Tensor::FromVector({1, 2, 3});
  Tensor b = Tensor::FromVector({4, 5, 6});
  Tensor sum = Add(a, b);
  Tensor diff = Sub(b, a);
  Tensor prod = Mul(a, b);
  Tensor scaled = Scale(a, 2.0f);
  EXPECT_EQ(sum.at(2), 9.0f);
  EXPECT_EQ(diff.at(0), 3.0f);
  EXPECT_EQ(prod.at(1), 10.0f);
  EXPECT_EQ(scaled.at(2), 6.0f);
}

TEST(TensorTest, SumMaxMean) {
  Tensor t = Tensor::FromVector({1, -2, 4});
  EXPECT_DOUBLE_EQ(t.Sum(), 3.0);
  EXPECT_EQ(t.Max(), 4.0f);
  EXPECT_DOUBLE_EQ(t.Mean(), 1.0);
}

TEST(TensorTest, MatMulKnownValues) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}).Reshape({2, 2});
  Tensor b = Tensor::FromVector({5, 6, 7, 8}).Reshape({2, 2});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at2(0, 0), 19.0f);
  EXPECT_EQ(c.at2(0, 1), 22.0f);
  EXPECT_EQ(c.at2(1, 0), 43.0f);
  EXPECT_EQ(c.at2(1, 1), 50.0f);
}

TEST(TensorTest, MatMulTransposeBMatchesExplicit) {
  // a (2,3) x b^T where b is (4,3) -> (2,4).
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}).Reshape({2, 3});
  Tensor b = Tensor::FromVector({1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1})
                 .Reshape({4, 3});
  Tensor c = MatMulTransposeB(a, b);
  EXPECT_EQ(c.at2(0, 0), 1.0f);
  EXPECT_EQ(c.at2(0, 1), 2.0f);
  EXPECT_EQ(c.at2(0, 2), 3.0f);
  EXPECT_EQ(c.at2(0, 3), 6.0f);
  EXPECT_EQ(c.at2(1, 3), 15.0f);
}

TEST(TensorTest, MatMulTransposeAMatchesExplicit) {
  // a^T (3,2)^T x b (3,2): a is (3,2), result (2,2).
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}).Reshape({3, 2});
  Tensor b = Tensor::FromVector({1, 1, 1, 1, 1, 1}).Reshape({3, 2});
  Tensor c = MatMulTransposeA(a, b);
  EXPECT_EQ(c.at2(0, 0), 9.0f);   // 1+3+5
  EXPECT_EQ(c.at2(1, 0), 12.0f);  // 2+4+6
}

TEST(TensorTest, MatMulConsistency) {
  // (A B)^T identities across the three kernels on random data.
  Tensor a({3, 4}), b({4, 5});
  for (int64_t i = 0; i < a.numel(); ++i) {
    a.at(i) = static_cast<float>(i % 7) - 3;
  }
  for (int64_t i = 0; i < b.numel(); ++i) {
    b.at(i) = static_cast<float>(i % 5) - 2;
  }
  Tensor c1 = MatMul(a, b);
  // b_t: (5,4) with b_t[j,k] = b[k,j]
  Tensor bt({5, 4});
  for (int64_t k = 0; k < 4; ++k)
    for (int64_t j = 0; j < 5; ++j) bt.at2(j, k) = b.at2(k, j);
  Tensor c2 = MatMulTransposeB(a, bt);
  ASSERT_TRUE(c1.SameShape(c2));
  for (int64_t i = 0; i < c1.numel(); ++i) EXPECT_FLOAT_EQ(c1.at(i), c2.at(i));
}

TEST(TensorTest, AddInPlaceAndScaleInPlace) {
  Tensor a = Tensor::FromVector({1, 2});
  Tensor b = Tensor::FromVector({3, 4});
  a.AddInPlace(b);
  a.ScaleInPlace(0.5f);
  EXPECT_EQ(a.at(0), 2.0f);
  EXPECT_EQ(a.at(1), 3.0f);
}

TEST(TensorTest, ConcatAndSplitChannelsRoundTrip) {
  Tensor a({2, 3, 4}), b({2, 2, 4});
  for (int64_t i = 0; i < a.numel(); ++i) a.at(i) = static_cast<float>(i);
  for (int64_t i = 0; i < b.numel(); ++i) b.at(i) = static_cast<float>(-i);
  Tensor cat = ConcatChannels({a, b});
  EXPECT_EQ(cat.dim(1), 5);
  EXPECT_EQ(cat.at3(1, 0, 0), a.at3(1, 0, 0));
  EXPECT_EQ(cat.at3(1, 3, 2), b.at3(1, 0, 2));
  auto parts = SplitChannels(cat, {3, 2});
  ASSERT_EQ(parts.size(), 2u);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(parts[0].at(i), a.at(i));
  for (int64_t i = 0; i < b.numel(); ++i) EXPECT_EQ(parts[1].at(i), b.at(i));
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a = Tensor::FromVector({1, 2, 3});
  Tensor b = a;
  b.at(0) = 99.0f;
  EXPECT_EQ(a.at(0), 1.0f);
}

}  // namespace
}  // namespace camal::nn
