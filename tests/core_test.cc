#include <gtest/gtest.h>

#include "core/cam.h"
#include "core/ensemble.h"
#include "core/localizer.h"
#include "core/power_estimation.h"
#include "core/resnet.h"
#include "gradcheck.h"
#include "nn/loss.h"

namespace camal::core {
namespace {

using camal::testing::CheckModuleGradients;
using camal::testing::RandomInput;

ResNetConfig TinyConfig(int64_t kernel = 5) {
  ResNetConfig c;
  c.kernel_size = kernel;
  c.base_filters = 4;
  return c;
}

TEST(ResNetTest, OutputShapeAndFeatureMaps) {
  Rng rng(1);
  ResNetClassifier net(TinyConfig(), &rng);
  nn::Tensor x = RandomInput({3, 1, 16}, 2);
  nn::Tensor logits = net.Forward(x);
  EXPECT_EQ(logits.dim(0), 3);
  EXPECT_EQ(logits.dim(1), 2);
  // Feature maps: (N, 2f, L) before GAP.
  EXPECT_EQ(net.feature_maps().dim(0), 3);
  EXPECT_EQ(net.feature_maps().dim(1), 8);
  EXPECT_EQ(net.feature_maps().dim(2), 16);
  EXPECT_EQ(net.head_weights().dim(0), 2);
  EXPECT_EQ(net.head_weights().dim(1), 8);
}

TEST(ResNetTest, PaperScaleParameterCountNear570k) {
  // Table II reports ~570K trainable parameters per ResNet member at
  // base_filters = 64.
  Rng rng(1);
  ResNetConfig c;
  c.kernel_size = 7;
  c.base_filters = 64;
  ResNetClassifier net(c, &rng);
  const int64_t params = net.NumParameters();
  EXPECT_GT(params, 350'000);
  EXPECT_LT(params, 800'000);
}

TEST(ResNetTest, KernelSizeChangesParameterCount) {
  Rng rng(1);
  ResNetClassifier small(TinyConfig(5), &rng);
  ResNetClassifier large(TinyConfig(25), &rng);
  EXPECT_GT(large.NumParameters(), small.NumParameters());
}

TEST(ResNetTest, GradCheck) {
  Rng rng(1);
  ResNetClassifier net(TinyConfig(), &rng);
  net.SetTraining(true);
  nn::Tensor x = RandomInput({2, 1, 12}, 3, -0.5, 0.5);
  auto result = CheckModuleGradients(&net, x, 5);
  EXPECT_TRUE(result.ok(3e-2)) << "abs=" << result.max_abs_err
                               << " rel=" << result.max_rel_err;
}

TEST(CamTest, MatchesDefinition) {
  // CAM_c(t) = sum_k w[c,k] f[k,t].
  nn::Tensor features({1, 2, 3});
  features.at3(0, 0, 0) = 1;
  features.at3(0, 0, 1) = 2;
  features.at3(0, 0, 2) = 3;
  features.at3(0, 1, 0) = 4;
  features.at3(0, 1, 1) = 5;
  features.at3(0, 1, 2) = 6;
  nn::Tensor weights({2, 2});
  weights.at2(1, 0) = 2.0f;
  weights.at2(1, 1) = -1.0f;
  nn::Tensor cam = ComputeCam(features, weights, 1);
  EXPECT_FLOAT_EQ(cam.at2(0, 0), 2 * 1 - 4);
  EXPECT_FLOAT_EQ(cam.at2(0, 1), 2 * 2 - 5);
  EXPECT_FLOAT_EQ(cam.at2(0, 2), 2 * 3 - 6);
}

TEST(CamTest, NormalizeByMaxKeepsSign) {
  nn::Tensor cam({1, 4});
  cam.at2(0, 0) = -2.0f;
  cam.at2(0, 1) = 0.0f;
  cam.at2(0, 2) = 4.0f;
  cam.at2(0, 3) = 2.0f;
  nn::Tensor norm = NormalizeCamByMax(cam);
  EXPECT_FLOAT_EQ(norm.at2(0, 0), -0.5f);
  EXPECT_FLOAT_EQ(norm.at2(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(norm.at2(0, 3), 0.5f);
}

TEST(CamTest, NormalizeZeroesNonPositiveRows) {
  nn::Tensor cam({1, 3});
  cam.at2(0, 0) = -1.0f;
  cam.at2(0, 1) = -5.0f;
  cam.at2(0, 2) = 0.0f;
  nn::Tensor norm = NormalizeCamByMax(cam);
  for (int64_t t = 0; t < 3; ++t) EXPECT_FLOAT_EQ(norm.at2(0, t), 0.0f);
}

TEST(CamTest, AverageCams) {
  nn::Tensor a = nn::Tensor::Full({1, 2}, 1.0f);
  nn::Tensor b = nn::Tensor::Full({1, 2}, 3.0f);
  nn::Tensor avg = AverageCams({a, b});
  EXPECT_FLOAT_EQ(avg.at2(0, 0), 2.0f);
}

// Builds a trivially separable weak-label dataset: positives contain a
// strong rectangular pulse.
data::WindowDataset MakePulseDataset(int64_t n, int64_t l, uint64_t seed) {
  Rng rng(seed);
  data::WindowDataset ds;
  ds.window_length = l;
  ds.appliance = {"pulse", 300.0f, 800.0f};
  ds.inputs = nn::Tensor({n, 1, l});
  ds.status = nn::Tensor({n, l});
  ds.appliance_power = nn::Tensor({n, l});
  for (int64_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    for (int64_t t = 0; t < l; ++t) {
      ds.inputs.at3(i, 0, t) =
          0.1f + static_cast<float>(rng.Gaussian(0.0, 0.02));
    }
    if (positive) {
      const int64_t start = rng.UniformInt(0, l - 7);
      for (int64_t t = start; t < start + 6; ++t) {
        ds.inputs.at3(i, 0, t) += 0.8f;  // scaled 800 W pulse
        ds.status.at2(i, t) = 1.0f;
        ds.appliance_power.at2(i, t) = 800.0f;
      }
    }
    ds.weak_labels.push_back(positive ? 1 : 0);
    ds.house_ids.push_back(static_cast<int>(i % 3));
  }
  return ds;
}

TEST(EnsembleTest, TrainRejectsDegenerateInputs) {
  data::WindowDataset tiny = MakePulseDataset(3, 16, 1);
  data::WindowDataset valid = MakePulseDataset(4, 16, 2);
  EnsembleConfig config;
  EXPECT_FALSE(CamalEnsemble::Train(tiny, valid, config, 1).ok());

  data::WindowDataset train = MakePulseDataset(16, 16, 1);
  data::WindowDataset empty;
  empty.window_length = 16;
  EXPECT_FALSE(CamalEnsemble::Train(train, empty, config, 1).ok());

  EnsembleConfig bad;
  bad.kernel_sizes.clear();
  EXPECT_FALSE(CamalEnsemble::Train(train, valid, bad, 1).ok());
}

EnsembleConfig TinyEnsembleConfig() {
  EnsembleConfig config;
  config.kernel_sizes = {5, 9};
  config.trials_per_kernel = 1;
  config.ensemble_size = 2;
  config.base_filters = 4;
  config.train.max_epochs = 6;
  config.train.batch_size = 16;
  config.train.patience = 3;
  return config;
}

TEST(EnsembleTest, LearnsEasyDetectionTask) {
  data::WindowDataset train = MakePulseDataset(60, 24, 1);
  data::WindowDataset valid = MakePulseDataset(20, 24, 2);
  data::WindowDataset test = MakePulseDataset(20, 24, 3);
  auto result = CamalEnsemble::Train(train, valid, TinyEnsembleConfig(), 7);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  CamalEnsemble ensemble = std::move(result).value();
  EXPECT_EQ(ensemble.members().size(), 2u);

  nn::Tensor prob = ensemble.DetectProbability(test.inputs);
  int correct = 0;
  for (int64_t i = 0; i < test.size(); ++i) {
    const bool predicted = prob.at(i) > 0.5f;
    if (predicted == (test.weak_labels[static_cast<size_t>(i)] == 1)) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 16) << "detection accuracy too low on separable task";
}

TEST(EnsembleTest, MembersSortedByValidationLoss) {
  data::WindowDataset train = MakePulseDataset(40, 24, 1);
  data::WindowDataset valid = MakePulseDataset(16, 24, 2);
  auto result = CamalEnsemble::Train(train, valid, TinyEnsembleConfig(), 7);
  ASSERT_TRUE(result.ok());
  const auto& members = result.value().members();
  for (size_t i = 1; i < members.size(); ++i) {
    EXPECT_LE(members[i - 1].validation_loss, members[i].validation_loss);
  }
}

TEST(EnsembleTest, EvaluateClassifierLossMatchesTrainingForwardPath) {
  // EvaluateClassifierLoss routes through ForwardInference (fused conv
  // GEMMs, no backward caches); the loss it reports must match the
  // training-kernel computation, otherwise early stopping would pick
  // different epochs after the switch.
  data::WindowDataset data = MakePulseDataset(24, 16, 5);
  Rng rng(3);
  ResNetClassifier model(TinyConfig(), &rng);
  const double fast = EvaluateClassifierLoss(&model, data);

  model.SetTraining(false);
  std::vector<int> labels(data.weak_labels.begin(), data.weak_labels.end());
  nn::Tensor logits = model.Forward(data.inputs);
  const double slow = nn::SoftmaxCrossEntropy(logits, labels).value;
  EXPECT_NEAR(fast, slow, 1e-5);
}

TEST(EnsembleTest, EarlyStoppingSelectionIsReproducible) {
  // The ROADMAP gate for evaluating with ForwardInference: on a
  // fixed-seed run, classifier training must pick the same best epoch —
  // pinned by requiring the identical best validation loss and bitwise
  // identical restored weights across two runs.
  data::WindowDataset train = MakePulseDataset(40, 16, 1);
  data::WindowDataset valid = MakePulseDataset(12, 16, 2);
  ClassifierTrainConfig config;
  config.max_epochs = 4;
  config.batch_size = 8;
  config.patience = 2;

  auto run = [&](std::vector<float>* flat_params) {
    Rng init_rng(11);
    ResNetClassifier model(TinyConfig(), &init_rng);
    Rng train_rng(13);
    const double best =
        TrainClassifier(&model, train, valid, config, &train_rng);
    for (auto* p : model.Parameters()) {
      for (int64_t i = 0; i < p->value.numel(); ++i) {
        flat_params->push_back(p->value.at(i));
      }
    }
    return best;
  };
  std::vector<float> params_a, params_b;
  const double best_a = run(&params_a);
  const double best_b = run(&params_b);
  EXPECT_EQ(best_a, best_b);
  ASSERT_EQ(params_a.size(), params_b.size());
  for (size_t i = 0; i < params_a.size(); ++i) {
    ASSERT_EQ(params_a[i], params_b[i]) << "parameter scalar " << i;
  }
}

TEST(LocalizerTest, UndetectedWindowsAreAllOff) {
  data::WindowDataset train = MakePulseDataset(60, 24, 1);
  data::WindowDataset valid = MakePulseDataset(20, 24, 2);
  auto result = CamalEnsemble::Train(train, valid, TinyEnsembleConfig(), 7);
  ASSERT_TRUE(result.ok());
  CamalEnsemble ensemble = std::move(result).value();
  CamalLocalizer localizer(&ensemble);

  data::WindowDataset test = MakePulseDataset(20, 24, 3);
  LocalizationResult res = localizer.Localize(test.inputs);
  for (int64_t i = 0; i < test.size(); ++i) {
    if (res.probabilities.at(i) <= 0.5f) {
      for (int64_t t = 0; t < 24; ++t) {
        EXPECT_EQ(res.status.at2(i, t), 0.0f);
      }
    }
  }
}

TEST(LocalizerTest, LocalizesPulsesBetterThanChance) {
  data::WindowDataset train = MakePulseDataset(80, 24, 1);
  data::WindowDataset valid = MakePulseDataset(24, 24, 2);
  auto result = CamalEnsemble::Train(train, valid, TinyEnsembleConfig(), 7);
  ASSERT_TRUE(result.ok());
  CamalEnsemble ensemble = std::move(result).value();
  CamalLocalizer localizer(&ensemble);

  data::WindowDataset test = MakePulseDataset(30, 24, 5);
  LocalizationResult res = localizer.Localize(test.inputs);
  int64_t tp = 0, fp = 0, fn = 0;
  for (int64_t i = 0; i < test.size(); ++i) {
    for (int64_t t = 0; t < 24; ++t) {
      const bool p = res.status.at2(i, t) > 0.5f;
      const bool g = test.status.at2(i, t) > 0.5f;
      tp += p && g;
      fp += p && !g;
      fn += !p && g;
    }
  }
  const double f1 = tp > 0 ? 2.0 * tp / (2.0 * tp + fp + fn) : 0.0;
  EXPECT_GT(f1, 0.3) << "tp=" << tp << " fp=" << fp << " fn=" << fn;
}

TEST(LocalizerTest, AblationWithoutAttentionFloodsPositives) {
  data::WindowDataset train = MakePulseDataset(60, 24, 1);
  data::WindowDataset valid = MakePulseDataset(20, 24, 2);
  auto result = CamalEnsemble::Train(train, valid, TinyEnsembleConfig(), 7);
  ASSERT_TRUE(result.ok());
  CamalEnsemble ensemble = std::move(result).value();

  data::WindowDataset test = MakePulseDataset(20, 24, 3);
  LocalizerOptions with;
  LocalizerOptions without;
  without.use_attention = false;
  CamalLocalizer loc_with(&ensemble, with);
  LocalizationResult a = loc_with.Localize(test.inputs);
  CamalLocalizer loc_without(&ensemble, without);
  LocalizationResult b = loc_without.Localize(test.inputs);
  // The ablated variant predicts at least as many positive timestamps
  // (sigmoid(CAM) >= 0.5 includes every zero/positive-CAM timestep).
  EXPECT_GE(b.status.Sum(), a.status.Sum());
}

TEST(PowerEstimationTest, ScalesAndClips) {
  nn::Tensor status({1, 4});
  status.at2(0, 0) = 1;
  status.at2(0, 1) = 1;
  status.at2(0, 3) = 1;
  nn::Tensor watts({1, 4});
  watts.at2(0, 0) = 1000.0f;  // above P_a: estimate = P_a
  watts.at2(0, 1) = 300.0f;   // below P_a: clipped to aggregate
  watts.at2(0, 2) = 1000.0f;  // OFF: zero
  watts.at2(0, 3) = -5.0f;    // negative aggregate clamps to 0
  nn::Tensor est = EstimatePower(status, watts, 800.0f);
  EXPECT_FLOAT_EQ(est.at2(0, 0), 800.0f);
  EXPECT_FLOAT_EQ(est.at2(0, 1), 300.0f);
  EXPECT_FLOAT_EQ(est.at2(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(est.at2(0, 3), 0.0f);
}

}  // namespace
}  // namespace camal::core
