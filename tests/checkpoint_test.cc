#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/atomic_file.h"
#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/ensemble.h"
#include "core/resnet.h"
#include "serve/batch_runner.h"
#include "serve/checkpoint.h"
#include "serve/service.h"
#include "serve/window_stream.h"

namespace camal {
namespace {

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string TestDir(const std::string& name) {
  const std::string dir = TestPath(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void WriteRawBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::string ReadRawBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string bytes;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.append(buffer, n);
  }
  std::fclose(f);
  return bytes;
}

// ---------------------------------------------------------------------
// CRC-32: the checksum every checkpoint read trusts before parsing.
// ---------------------------------------------------------------------

TEST(Crc32Test, KnownAnswerAndStreamingEquivalence) {
  // The classic IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);

  // Streaming over chunks must equal one shot over the concatenation.
  uint32_t crc = kCrc32Initial;
  crc = Crc32Update(crc, "1234", 4);
  crc = Crc32Update(crc, "", 0);
  crc = Crc32Update(crc, "56789", 5);
  EXPECT_EQ(Crc32Finalize(crc), 0xCBF43926u);

  // A single flipped bit changes the checksum.
  EXPECT_NE(Crc32("123456789", 9), Crc32("123456788", 9));
}

// ---------------------------------------------------------------------
// AtomicFileWriter: old-or-new, never torn.
// ---------------------------------------------------------------------

TEST(AtomicFileTest, WriteFileAtomicReplacesAndFailurePreservesOld) {
  const std::string path = TestPath("atomic_replace.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "old content", 11).ok());
  EXPECT_EQ(ReadRawBytes(path), "old content");
  ASSERT_TRUE(WriteFileAtomic(path, "new", 3).ok());
  EXPECT_EQ(ReadRawBytes(path), "new");

  // A failed write aborts the replacement: the destination keeps its
  // previous content and the temp file is cleaned up.
  FaultPlan plan;
  plan.fail_write_at = 1;
  FaultInjector faults(plan);
  Status failed = WriteFileAtomic(path, "doomed", 6, &faults);
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_EQ(ReadRawBytes(path), "new");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(faults.faults_injected(), 1);
}

TEST(AtomicFileTest, AbandonedWriterLeavesDestinationUntouched) {
  const std::string path = TestPath("atomic_abandon.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "intact", 6).ok());
  {
    AtomicFileWriter writer(path);
    ASSERT_TRUE(writer.Write("partial", 7).ok());
    // Destroyed without Commit: simulates a crash mid-write.
  }
  EXPECT_EQ(ReadRawBytes(path), "intact");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// ---------------------------------------------------------------------
// Checkpoint format: round trips and the crash matrix.
// ---------------------------------------------------------------------

serve::SessionSnapshot MakeSnapshot(const std::string& id, uint64_t seed,
                                    int64_t readings) {
  Rng rng(seed);
  serve::SessionSnapshot snapshot;
  snapshot.id = id;
  snapshot.appliance = "fridge";
  snapshot.max_pending_appends = 16;
  snapshot.state.grid_windows = readings / 4;
  for (int64_t i = 0; i < readings; ++i) {
    snapshot.state.series.push_back(
        static_cast<float>(rng.Uniform(0.0, 3000.0)));
    snapshot.state.prob_sum.push_back(
        static_cast<float>(rng.Uniform(0.0, 8.0)));
    snapshot.state.cover.push_back(static_cast<int32_t>(i % 7));
    snapshot.state.on_votes.push_back(static_cast<int32_t>(i % 3));
  }
  return snapshot;
}

void ExpectSnapshotEqual(const serve::SessionSnapshot& got,
                         const serve::SessionSnapshot& want) {
  EXPECT_EQ(got.id, want.id);
  EXPECT_EQ(got.appliance, want.appliance);
  EXPECT_EQ(got.max_pending_appends, want.max_pending_appends);
  EXPECT_EQ(got.state.grid_windows, want.state.grid_windows);
  EXPECT_EQ(got.state.series, want.state.series);
  EXPECT_EQ(got.state.prob_sum, want.state.prob_sum);
  EXPECT_EQ(got.state.cover, want.state.cover);
  EXPECT_EQ(got.state.on_votes, want.state.on_votes);
}

TEST(CheckpointFormatTest, RoundTripsSessionsBitwise) {
  const std::string path = TestPath("roundtrip.ckpt");
  std::vector<serve::SessionSnapshot> sessions;
  sessions.push_back(MakeSnapshot("house-1", 11, 37));
  sessions.push_back(MakeSnapshot("house-2", 13, 0));  // empty state is legal
  sessions.push_back(MakeSnapshot("house-3", 17, 120));

  ASSERT_TRUE(serve::WriteSessionCheckpoint(path, sessions).ok());
  auto restored = serve::ReadSessionCheckpoint(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value().size(), sessions.size());
  for (size_t i = 0; i < sessions.size(); ++i) {
    ExpectSnapshotEqual(restored.value()[i], sessions[i]);
  }
}

TEST(CheckpointFormatTest, ZeroSessionsIsAValidSnapshot) {
  const std::string path = TestPath("empty.ckpt");
  ASSERT_TRUE(serve::WriteSessionCheckpoint(path, {}).ok());
  auto restored = serve::ReadSessionCheckpoint(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored.value().empty());
  EXPECT_EQ(std::filesystem::file_size(path),
            serve::SessionCheckpointFormat::kHeaderBytes);
}

TEST(CheckpointFormatTest, MissingFileIsAStatusNotACrash) {
  auto restored = serve::ReadSessionCheckpoint(TestPath("no_such.ckpt"));
  ASSERT_FALSE(restored.ok());
}

TEST(CheckpointFormatTest, TruncatedHeaderIsRejected) {
  const std::string path = TestPath("short_header.ckpt");
  WriteRawBytes(path, std::string(10, 'x'));
  auto restored = serve::ReadSessionCheckpoint(path);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().ToString().find("truncated"),
            std::string::npos);
}

TEST(CheckpointFormatTest, BadMagicIsRejected) {
  const std::string path = TestPath("bad_magic.ckpt");
  WriteRawBytes(path, std::string(256, 'x'));
  auto restored = serve::ReadSessionCheckpoint(path);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().ToString().find("magic"), std::string::npos);
}

TEST(CheckpointFormatTest, VersionSkewIsRejected) {
  const std::string path = TestPath("version_skew.ckpt");
  ASSERT_TRUE(
      serve::WriteSessionCheckpoint(path, {MakeSnapshot("h", 19, 8)}).ok());
  std::string bytes = ReadRawBytes(path);
  bytes[4] = static_cast<char>(
      serve::SessionCheckpointFormat::kVersion + 1);  // version field
  WriteRawBytes(path, bytes);
  auto restored = serve::ReadSessionCheckpoint(path);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().ToString().find("version"), std::string::npos);
}

TEST(CheckpointFormatTest, TornPayloadIsRejected) {
  const std::string path = TestPath("torn.ckpt");
  ASSERT_TRUE(
      serve::WriteSessionCheckpoint(path, {MakeSnapshot("h", 23, 64)}).ok());
  const std::string bytes = ReadRawBytes(path);
  ASSERT_GT(bytes.size(), serve::SessionCheckpointFormat::kHeaderBytes + 8);
  WriteRawBytes(path, bytes.substr(0, bytes.size() - 8));
  auto restored = serve::ReadSessionCheckpoint(path);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().ToString().find("torn"), std::string::npos);
}

TEST(CheckpointFormatTest, TrailingBytesAreRejected) {
  const std::string path = TestPath("trailing.ckpt");
  ASSERT_TRUE(
      serve::WriteSessionCheckpoint(path, {MakeSnapshot("h", 29, 16)}).ok());
  WriteRawBytes(path, ReadRawBytes(path) + "junk");
  ASSERT_FALSE(serve::ReadSessionCheckpoint(path).ok());
}

TEST(CheckpointFormatTest, PayloadBitFlipFailsTheCrc) {
  const std::string path = TestPath("bitflip.ckpt");
  ASSERT_TRUE(
      serve::WriteSessionCheckpoint(path, {MakeSnapshot("h", 31, 64)}).ok());
  std::string bytes = ReadRawBytes(path);
  // Flip one bit deep inside the payload.
  bytes[serve::SessionCheckpointFormat::kHeaderBytes + 40] ^= 0x10;
  WriteRawBytes(path, bytes);
  auto restored = serve::ReadSessionCheckpoint(path);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().ToString().find("CRC"), std::string::npos);
}

TEST(CheckpointFormatTest, TornCommitFaultIsCaughtOnRead) {
  // The injector tears the file AFTER the rename — the crash window
  // atomic replacement alone cannot close — and the reader must reject
  // the torn snapshot instead of trusting it.
  const std::string path = TestPath("torn_commit.ckpt");
  FaultPlan plan;
  plan.truncate_commit_at = 1;
  plan.truncate_to_bytes = 56;  // header + a sliver of payload
  FaultInjector faults(plan);
  ASSERT_TRUE(
      serve::WriteSessionCheckpoint(path, {MakeSnapshot("h", 37, 32)},
                                    &faults)
          .ok());
  ASSERT_EQ(std::filesystem::file_size(path), 56u);
  ASSERT_FALSE(serve::ReadSessionCheckpoint(path).ok());
}

TEST(CheckpointFormatTest, FailedWritePreservesThePreviousSnapshot) {
  const std::string path = TestPath("write_fault.ckpt");
  ASSERT_TRUE(
      serve::WriteSessionCheckpoint(path, {MakeSnapshot("old", 41, 12)})
          .ok());
  FaultPlan plan;
  plan.fail_write_at = 2;
  FaultInjector faults(plan);
  Status failed = serve::WriteSessionCheckpoint(
      path, {MakeSnapshot("new", 43, 12)}, &faults);
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  auto restored = serve::ReadSessionCheckpoint(path);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored.value().size(), 1u);
  EXPECT_EQ(restored.value()[0].id, "old");
}

// ---------------------------------------------------------------------
// Service-level crash safety: checkpoint, kill, restore, resume.
// ---------------------------------------------------------------------

serve::WindowStreamOptions SmallStream(int64_t window, int64_t stride,
                                       int64_t batch) {
  serve::WindowStreamOptions opt;
  opt.window_length = window;
  opt.stride = stride;
  opt.batch_size = batch;
  return opt;
}

serve::BatchRunnerOptions SmallRunner(int64_t window, int64_t stride,
                                      int64_t batch, float avg_power_w) {
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(window, stride, batch);
  opt.appliance_avg_power_w = avg_power_w;
  return opt;
}

core::CamalEnsemble RandomEnsemble(uint64_t seed) {
  Rng rng(seed);
  std::vector<core::EnsembleMember> members;
  for (int64_t k : {5, 9}) {
    core::ResNetConfig config;
    config.base_filters = 4;
    config.kernel_size = k;
    core::EnsembleMember member;
    member.model = std::make_unique<core::ResNetClassifier>(config, &rng);
    member.kernel_size = k;
    members.push_back(std::move(member));
  }
  return core::CamalEnsemble::FromMembers(std::move(members));
}

void ExpectBitwiseEqual(const serve::ScanResult& got,
                        const serve::ScanResult& want,
                        const std::string& label) {
  ASSERT_EQ(got.detection.numel(), want.detection.numel()) << label;
  for (int64_t t = 0; t < want.detection.numel(); ++t) {
    ASSERT_EQ(got.detection.at(t), want.detection.at(t))
        << label << " detection t=" << t;
    ASSERT_EQ(got.status.at(t), want.status.at(t))
        << label << " status t=" << t;
    ASSERT_EQ(got.power.at(t), want.power.at(t))
        << label << " power t=" << t;
  }
}

std::vector<float> RandomChunk(Rng* rng, int64_t count) {
  std::vector<float> chunk(static_cast<size_t>(count));
  for (auto& v : chunk) v = static_cast<float>(rng->Uniform(0.0, 3000.0));
  return chunk;
}

TEST(ServiceCheckpointTest, RestoredSessionResumesBitwiseIdentical) {
  const std::string dir = TestDir("restore_bitwise");
  core::CamalEnsemble ensemble = RandomEnsemble(81);
  Rng rng(82);
  std::vector<float> concatenated;

  // Phase 1: stream two chunks, checkpoint, and "crash" (destroy the
  // service without a shutdown flush by checkpointing explicitly first).
  {
    serve::Service service;
    ASSERT_TRUE(service
                    .RegisterAppliance("fridge", &ensemble,
                                       SmallRunner(16, 8, 4, 600.0f))
                    .ok());
    ASSERT_TRUE(service.Start().ok());
    serve::SessionOptions session_opt;
    session_opt.household_id = "house-ckpt";
    auto created = service.CreateSession("fridge", session_opt);
    ASSERT_TRUE(created.ok());
    std::shared_ptr<serve::Session> session = created.value();
    for (int64_t chunk_len : {21, 18}) {
      std::vector<float> chunk = RandomChunk(&rng, chunk_len);
      concatenated.insert(concatenated.end(), chunk.begin(), chunk.end());
      ASSERT_TRUE(session->AppendReadings(std::move(chunk)).get().ok());
    }
    ASSERT_TRUE(service.CheckpointSessions(dir).ok());
    EXPECT_EQ(service.stats().checkpoints_written, 1);
    // The service dies here with the session still live — the crash.
  }

  // Phase 2: a fresh service restores the session and keeps streaming.
  // Every post-restore append must be bitwise-identical to a one-shot
  // scan of the full series — i.e. to an uninterrupted session (which
  // the serving contract already pins to the one-shot result).
  serve::Service service;
  ASSERT_TRUE(service
                  .RegisterAppliance("fridge", &ensemble,
                                     SmallRunner(16, 8, 4, 600.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());
  auto restored = service.RestoreSessions(dir);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value(), 1);
  EXPECT_EQ(service.stats().sessions_restored, 1);
  EXPECT_EQ(service.stats().live_sessions, 1);

  auto revived = service.GetSession("house-ckpt");
  ASSERT_TRUE(revived.ok());
  std::shared_ptr<serve::Session> session = revived.value();
  EXPECT_EQ(session->appliance(), "fridge");
  EXPECT_EQ(session->readings(),
            static_cast<int64_t>(concatenated.size()));

  for (int64_t chunk_len : {9, 30, 14}) {
    std::vector<float> chunk = RandomChunk(&rng, chunk_len);
    concatenated.insert(concatenated.end(), chunk.begin(), chunk.end());
    Result<serve::ScanResult> result =
        session->AppendReadings(std::move(chunk)).get();
    ASSERT_TRUE(result.ok());
    Result<serve::ScanResult> reference =
        service.Submit("fridge", concatenated).get();
    ASSERT_TRUE(reference.ok());
    ExpectBitwiseEqual(result.value(), reference.value(),
                       "post-restore prefix " +
                           std::to_string(concatenated.size()));
  }
  EXPECT_TRUE(session->Close().ok());
}

TEST(ServiceCheckpointTest, RestoreDegradesGracefully) {
  const std::string dir = TestDir("restore_degrade");
  core::CamalEnsemble ensemble = RandomEnsemble(83);

  // Snapshot three sessions: one restorable, one for an appliance the
  // new service does not register, one whose id collides with a live
  // session in the new service.
  std::vector<serve::SessionSnapshot> sessions;
  sessions.push_back(MakeSnapshot("house-ok", 51, 24));
  serve::SessionSnapshot unknown = MakeSnapshot("house-toaster", 53, 24);
  unknown.appliance = "toaster";
  sessions.push_back(std::move(unknown));
  sessions.push_back(MakeSnapshot("house-live", 55, 24));
  ASSERT_TRUE(serve::WriteSessionCheckpoint(serve::Service::CheckpointFile(dir),
                                            sessions)
                  .ok());

  serve::Service service;
  ASSERT_TRUE(service
                  .RegisterAppliance("fridge", &ensemble,
                                     SmallRunner(16, 8, 4, 500.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());
  serve::SessionOptions live_opt;
  live_opt.household_id = "house-live";
  auto live = service.CreateSession("fridge", live_opt);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(live.value()->AppendReadings(std::vector<float>(20, 42.0f))
                  .get()
                  .ok());

  // Only house-ok restores: the unknown appliance is skipped and the
  // live session wins over its snapshot.
  auto restored = service.RestoreSessions(dir);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), 1);
  EXPECT_EQ(service.stats().sessions_restored, 1);
  ASSERT_TRUE(service.GetSession("house-ok").ok());
  EXPECT_FALSE(service.GetSession("house-toaster").ok());
  EXPECT_EQ(service.GetSession("house-live").value()->readings(), 20);

  // Restoring from a directory with no checkpoint is a fresh boot.
  EXPECT_EQ(service.RestoreSessions(TestDir("restore_fresh")).value(), 0);
}

TEST(ServiceCheckpointTest, CorruptCheckpointKeepsTheServiceServing) {
  const std::string dir = TestDir("restore_corrupt");
  core::CamalEnsemble ensemble = RandomEnsemble(85);
  WriteRawBytes(serve::Service::CheckpointFile(dir), std::string(300, 'z'));

  serve::Service service;
  ASSERT_TRUE(service
                  .RegisterAppliance("fridge", &ensemble,
                                     SmallRunner(16, 8, 4, 500.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());
  auto restored = service.RestoreSessions(dir);
  ASSERT_FALSE(restored.ok());  // a Status, never a crash
  EXPECT_EQ(service.stats().sessions_restored, 0);

  // Degraded to fresh sessions: the service still serves.
  std::vector<float> series(40, 800.0f);
  EXPECT_TRUE(service.Submit("fridge", series).get().ok());
  serve::SessionOptions session_opt;
  session_opt.household_id = "fresh";
  auto session = service.CreateSession("fridge", session_opt);
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session.value()
                  ->AppendReadings(std::vector<float>(24, 700.0f))
                  .get()
                  .ok());
}

TEST(ServiceCheckpointTest, ShutdownFlushesARestorableSnapshot) {
  const std::string dir = TestDir("shutdown_flush");
  core::CamalEnsemble ensemble = RandomEnsemble(87);
  {
    serve::ServiceOptions opt;
    opt.checkpoint_dir = dir;
    serve::Service service(opt);
    ASSERT_TRUE(service
                    .RegisterAppliance("fridge", &ensemble,
                                       SmallRunner(16, 8, 4, 500.0f))
                    .ok());
    ASSERT_TRUE(service.Start().ok());
    serve::SessionOptions session_opt;
    session_opt.household_id = "house-flush";
    auto session = service.CreateSession("fridge", session_opt);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session.value()
                    ->AppendReadings(std::vector<float>(33, 900.0f))
                    .get()
                    .ok());
    service.Shutdown();  // flushes every live session to the checkpoint
  }
  auto restored =
      serve::ReadSessionCheckpoint(serve::Service::CheckpointFile(dir));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value().size(), 1u);
  EXPECT_EQ(restored.value()[0].id, "house-flush");
  EXPECT_EQ(restored.value()[0].state.readings(), 33);
}

TEST(ServiceCheckpointTest, PeriodicSweepWritesWithoutExplicitCalls) {
  const std::string dir = TestDir("periodic_sweep");
  core::CamalEnsemble ensemble = RandomEnsemble(89);
  serve::ServiceOptions opt;
  opt.checkpoint_dir = dir;
  opt.checkpoint_interval_seconds = 0.01;
  serve::Service service(opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("fridge", &ensemble,
                                     SmallRunner(16, 8, 4, 500.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());
  serve::SessionOptions session_opt;
  session_opt.household_id = "house-sweep";
  auto session = service.CreateSession("fridge", session_opt);
  ASSERT_TRUE(session.ok());
  // Keep workers busy past the interval so a sweep triggers.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(session.value()
                    ->AppendReadings(std::vector<float>(12, 650.0f))
                    .get()
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(service.stats().checkpoints_written, 1);
  EXPECT_TRUE(
      std::filesystem::exists(serve::Service::CheckpointFile(dir)));
  service.Shutdown();
}

TEST(ServiceCheckpointTest, CheckpointWriteFaultIsAStatusAndServiceServes) {
  const std::string dir = TestDir("checkpoint_write_fault");
  core::CamalEnsemble ensemble = RandomEnsemble(91);
  FaultPlan plan;
  plan.fail_write_at = 1;
  FaultInjector faults(plan);
  serve::ServiceOptions opt;
  opt.fault_injector = &faults;
  serve::Service service(opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("fridge", &ensemble,
                                     SmallRunner(16, 8, 4, 500.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());
  serve::SessionOptions session_opt;
  session_opt.household_id = "house-io";
  auto session = service.CreateSession("fridge", session_opt);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()
                  ->AppendReadings(std::vector<float>(16, 500.0f))
                  .get()
                  .ok());

  EXPECT_EQ(service.CheckpointSessions(dir).code(), StatusCode::kIoError);
  EXPECT_FALSE(
      std::filesystem::exists(serve::Service::CheckpointFile(dir)));
  // The failed sweep did not poison serving.
  EXPECT_TRUE(session.value()
                  ->AppendReadings(std::vector<float>(8, 450.0f))
                  .get()
                  .ok());
}

// ---------------------------------------------------------------------
// Retry with graceful degradation.
// ---------------------------------------------------------------------

TEST(RetryTest, TransientScanFaultIsRetriedToSuccess) {
  core::CamalEnsemble ensemble = RandomEnsemble(93);
  FaultPlan plan;
  plan.scan_label = "retry-house";
  plan.fail_scan_at = 1;
  plan.fail_scan_count = 2;  // first two attempts fault, third succeeds
  FaultInjector faults(plan);
  serve::ServiceOptions opt;
  opt.workers = 1;
  opt.fault_injector = &faults;
  opt.retry.max_attempts = 3;
  opt.retry.initial_backoff_seconds = 1e-4;
  serve::Service service(opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("fridge", &ensemble,
                                     SmallRunner(16, 8, 4, 500.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  std::vector<float> series(40, 1200.0f);
  serve::ScanRequest request;
  request.household_id = "retry-house";
  request.appliance = "fridge";
  request.owned_series = series;
  Result<serve::ScanResult> result = service.Submit(std::move(request)).get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.retries_attempted, 2);
  EXPECT_EQ(stats.retries_exhausted, 0);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(faults.faults_injected(), 2);

  // The retried result is the same scan: bitwise equal to a fault-free
  // one-shot of the same series.
  Result<serve::ScanResult> reference = service.Submit("fridge", series).get();
  ASSERT_TRUE(reference.ok());
  ExpectBitwiseEqual(result.value(), reference.value(), "retried scan");
}

TEST(RetryTest, PersistentFaultExhaustsRetriesWithInternal) {
  core::CamalEnsemble ensemble = RandomEnsemble(95);
  FaultPlan plan;
  plan.scan_label = "poison";  // no window, no rate: every scan faults
  FaultInjector faults(plan);
  serve::ServiceOptions opt;
  opt.workers = 1;
  opt.fault_injector = &faults;
  opt.retry.max_attempts = 3;
  opt.retry.initial_backoff_seconds = 1e-4;
  serve::Service service(opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("fridge", &ensemble,
                                     SmallRunner(16, 8, 4, 500.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  serve::ScanRequest request;
  request.household_id = "poison";
  request.appliance = "fridge";
  request.owned_series = std::vector<float>(32, 100.0f);
  Result<serve::ScanResult> result = service.Submit(std::move(request)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().ToString().find("injected scan fault"),
            std::string::npos);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.retries_attempted, 2);   // two extra attempts consumed
  EXPECT_EQ(stats.retries_exhausted, 1);   // and the request still failed
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(faults.faults_injected(), 3);

  // Other households are untouched by the poison label.
  EXPECT_TRUE(
      service.Submit("fridge", std::vector<float>(24, 200.0f)).get().ok());
}

TEST(RetryTest, SessionAppendsAreNeverRetried) {
  // A faulted append leaves the stitch state suspect, so it must fail
  // the session instead of retrying — even with retries enabled.
  core::CamalEnsemble ensemble = RandomEnsemble(97);
  FaultPlan plan;
  plan.scan_label = "doomed-session";
  FaultInjector faults(plan);
  serve::ServiceOptions opt;
  opt.workers = 1;
  opt.fault_injector = &faults;
  opt.retry.max_attempts = 3;
  serve::Service service(opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("fridge", &ensemble,
                                     SmallRunner(16, 8, 4, 500.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  serve::SessionOptions session_opt;
  session_opt.household_id = "doomed-session";
  auto created = service.CreateSession("fridge", session_opt);
  ASSERT_TRUE(created.ok());
  Result<serve::ScanResult> result =
      created.value()->AppendReadings(std::vector<float>(20, 300.0f)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_TRUE(created.value()->closed());

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.retries_attempted, 0);  // exactly one attempt was made
  EXPECT_EQ(faults.faults_injected(), 1);
  EXPECT_EQ(stats.sessions_closed, 1);
}

}  // namespace
}  // namespace camal
