// Property tests: every layer's analytic Backward is validated against
// central-difference numerical gradients of a random scalar projection loss.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "gradcheck.h"
#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/batchnorm1d.h"
#include "nn/conv1d.h"
#include "nn/gru.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "nn/upsample.h"

namespace camal::nn {
namespace {

using camal::testing::CheckModuleGradients;
using camal::testing::RandomInput;

constexpr double kTol = 2e-2;

struct LayerCase {
  std::string name;
  std::function<std::unique_ptr<Module>(Rng*)> make;
  std::vector<int64_t> input_shape;
};

class LayerGradCheck : public ::testing::TestWithParam<LayerCase> {};

TEST_P(LayerGradCheck, AnalyticMatchesNumeric) {
  const LayerCase& layer_case = GetParam();
  Rng rng(99);
  std::unique_ptr<Module> module = layer_case.make(&rng);
  module->SetTraining(true);
  Tensor x = RandomInput(layer_case.input_shape, 1234, -0.9, 0.9);
  auto result = CheckModuleGradients(module.get(), x, 777);
  EXPECT_TRUE(result.ok(kTol))
      << layer_case.name << ": max_abs_err=" << result.max_abs_err
      << " max_rel_err=" << result.max_rel_err;
}

std::vector<LayerCase> AllLayerCases() {
  std::vector<LayerCase> cases;
  cases.push_back({"conv1d_same",
                   [](Rng* rng) {
                     Conv1dOptions opt;
                     opt.in_channels = 2;
                     opt.out_channels = 3;
                     opt.kernel_size = 3;
                     opt.padding = 1;
                     return std::make_unique<Conv1d>(opt, rng);
                   },
                   {2, 2, 9}});
  cases.push_back({"conv1d_strided_dilated",
                   [](Rng* rng) {
                     Conv1dOptions opt;
                     opt.in_channels = 2;
                     opt.out_channels = 2;
                     opt.kernel_size = 3;
                     opt.stride = 2;
                     opt.dilation = 2;
                     opt.padding = 2;
                     return std::make_unique<Conv1d>(opt, rng);
                   },
                   {2, 2, 12}});
  cases.push_back({"conv1d_stride3",
                   [](Rng* rng) {
                     Conv1dOptions opt;
                     opt.in_channels = 2;
                     opt.out_channels = 3;
                     opt.kernel_size = 3;
                     opt.stride = 3;
                     return std::make_unique<Conv1d>(opt, rng);
                   },
                   {2, 2, 11}});
  cases.push_back({"conv1d_dilation3",
                   [](Rng* rng) {
                     Conv1dOptions opt;
                     opt.in_channels = 2;
                     opt.out_channels = 3;
                     opt.kernel_size = 3;
                     opt.dilation = 3;
                     opt.padding = 3;
                     return std::make_unique<Conv1d>(opt, rng);
                   },
                   {2, 2, 10}});
  cases.push_back({"conv1d_stride2_dil2_nopad",
                   [](Rng* rng) {
                     Conv1dOptions opt;
                     opt.in_channels = 3;
                     opt.out_channels = 2;
                     opt.kernel_size = 4;
                     opt.stride = 2;
                     opt.dilation = 2;
                     opt.bias = false;
                     return std::make_unique<Conv1d>(opt, rng);
                   },
                   {2, 3, 13}});
  cases.push_back({"conv1d_no_bias",
                   [](Rng* rng) {
                     Conv1dOptions opt;
                     opt.in_channels = 1;
                     opt.out_channels = 4;
                     opt.kernel_size = 5;
                     opt.padding = 2;
                     opt.bias = false;
                     return std::make_unique<Conv1d>(opt, rng);
                   },
                   {2, 1, 10}});
  cases.push_back({"linear",
                   [](Rng* rng) {
                     return std::make_unique<Linear>(5, 3, true, rng);
                   },
                   {4, 5}});
  cases.push_back({"relu",
                   [](Rng*) { return std::make_unique<ReLU>(); },
                   {2, 3, 7}});
  cases.push_back({"sigmoid",
                   [](Rng*) { return std::make_unique<Sigmoid>(); },
                   {2, 3, 7}});
  cases.push_back({"tanh",
                   [](Rng*) { return std::make_unique<Tanh>(); },
                   {2, 3, 7}});
  cases.push_back({"gelu",
                   [](Rng*) { return std::make_unique<Gelu>(); },
                   {2, 3, 7}});
  cases.push_back({"maxpool",
                   [](Rng*) { return std::make_unique<MaxPool1d>(2, 2); },
                   {2, 2, 8}});
  cases.push_back({"avgpool",
                   [](Rng*) { return std::make_unique<AvgPool1d>(3, 3); },
                   {2, 2, 9}});
  cases.push_back({"gap",
                   [](Rng*) { return std::make_unique<GlobalAvgPool1d>(); },
                   {2, 3, 6}});
  cases.push_back({"batchnorm_train",
                   [](Rng*) { return std::make_unique<BatchNorm1d>(3); },
                   {3, 3, 5}});
  cases.push_back({"layernorm",
                   [](Rng*) { return std::make_unique<LayerNorm>(4); },
                   {2, 4, 5}});
  cases.push_back({"upsample",
                   [](Rng*) { return std::make_unique<UpsampleNearest1d>(2); },
                   {2, 2, 5}});
  cases.push_back({"resize",
                   [](Rng*) { return std::make_unique<ResizeNearest1d>(9); },
                   {2, 2, 5}});
  cases.push_back({"gru_forward",
                   [](Rng* rng) {
                     return std::make_unique<Gru>(2, 3, false, rng);
                   },
                   {2, 2, 5}});
  cases.push_back({"gru_reverse",
                   [](Rng* rng) {
                     return std::make_unique<Gru>(2, 3, true, rng);
                   },
                   {2, 2, 5}});
  cases.push_back({"bigru",
                   [](Rng* rng) {
                     return std::make_unique<BiGru>(2, 2, rng);
                   },
                   {2, 2, 4}});
  cases.push_back({"mhsa",
                   [](Rng* rng) {
                     return std::make_unique<MultiHeadSelfAttention>(4, 2,
                                                                     rng);
                   },
                   {2, 4, 5}});
  cases.push_back({"sequential_conv_relu",
                   [](Rng* rng) {
                     auto seq = std::make_unique<Sequential>();
                     Conv1dOptions opt;
                     opt.in_channels = 2;
                     opt.out_channels = 2;
                     opt.kernel_size = 3;
                     opt.padding = 1;
                     seq->Add(std::make_unique<Conv1d>(opt, rng));
                     seq->Add(std::make_unique<Tanh>());
                     return seq;
                   },
                   {2, 2, 6}});
  cases.push_back({"residual_projection",
                   [](Rng* rng) {
                     auto body = std::make_unique<Sequential>();
                     Conv1dOptions opt;
                     opt.in_channels = 2;
                     opt.out_channels = 3;
                     opt.kernel_size = 3;
                     opt.padding = 1;
                     body->Add(std::make_unique<Conv1d>(opt, rng));
                     Conv1dOptions proj;
                     proj.in_channels = 2;
                     proj.out_channels = 3;
                     proj.kernel_size = 1;
                     auto shortcut = std::make_unique<Conv1d>(proj, rng);
                     return std::make_unique<Residual>(std::move(body),
                                                       std::move(shortcut));
                   },
                   {2, 2, 6}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllLayers, LayerGradCheck, ::testing::ValuesIn(AllLayerCases()),
    [](const ::testing::TestParamInfo<LayerCase>& info) {
      return info.param.name;
    });

// Loss gradient checks (losses are functions, not Modules).

TEST(LossGradCheck, BceWithLogits) {
  Rng rng(5);
  Tensor logits = RandomInput({3, 7}, 21);
  Tensor targets({3, 7});
  for (int64_t i = 0; i < targets.numel(); ++i) {
    targets.at(i) = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  LossResult res = BceWithLogits(logits, targets);
  const double eps = 1e-3;
  for (int64_t i = 0; i < logits.numel(); i += 3) {
    Tensor lp = logits, lm = logits;
    lp.at(i) += static_cast<float>(eps);
    lm.at(i) -= static_cast<float>(eps);
    const double numeric =
        (BceWithLogits(lp, targets).value - BceWithLogits(lm, targets).value) /
        (2 * eps);
    EXPECT_NEAR(res.grad.at(i), numeric, 1e-3);
  }
}

TEST(LossGradCheck, SoftmaxCrossEntropy) {
  Tensor logits = RandomInput({4, 2}, 31);
  std::vector<int> labels{0, 1, 1, 0};
  LossResult res = SoftmaxCrossEntropy(logits, labels);
  const double eps = 1e-3;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp.at(i) += static_cast<float>(eps);
    lm.at(i) -= static_cast<float>(eps);
    const double numeric = (SoftmaxCrossEntropy(lp, labels).value -
                            SoftmaxCrossEntropy(lm, labels).value) /
                           (2 * eps);
    EXPECT_NEAR(res.grad.at(i), numeric, 1e-3);
  }
}

TEST(LossGradCheck, MeanSquaredError) {
  Tensor pred = RandomInput({2, 5}, 41);
  Tensor target = RandomInput({2, 5}, 43);
  LossResult res = MeanSquaredError(pred, target);
  const double eps = 1e-3;
  for (int64_t i = 0; i < pred.numel(); ++i) {
    Tensor pp = pred, pm = pred;
    pp.at(i) += static_cast<float>(eps);
    pm.at(i) -= static_cast<float>(eps);
    const double numeric = (MeanSquaredError(pp, target).value -
                            MeanSquaredError(pm, target).value) /
                           (2 * eps);
    EXPECT_NEAR(res.grad.at(i), numeric, 1e-3);
  }
}

TEST(LossTest, SoftmaxRowsSumToOne) {
  Tensor logits = RandomInput({5, 3}, 51, -4, 4);
  Tensor p = Softmax(logits);
  for (int64_t i = 0; i < 5; ++i) {
    double row = 0.0;
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_GE(p.at2(i, j), 0.0f);
      row += p.at2(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(LossTest, BceMatchesClosedFormAtZeroLogit) {
  Tensor logits = Tensor::Zeros({1, 1});
  Tensor targets = Tensor::Full({1, 1}, 1.0f);
  LossResult res = BceWithLogits(logits, targets);
  EXPECT_NEAR(res.value, std::log(2.0), 1e-6);
}

}  // namespace
}  // namespace camal::nn
