// End-to-end pipeline tests: simulator -> preprocessing -> CamAL ->
// localization scores, exercising exactly the path the benches use.

#include <gtest/gtest.h>

#include "data/balance.h"
#include "data/split.h"
#include "eval/experiment.h"
#include "simulate/profiles.h"

namespace camal {
namespace {

// Builds tiny train/valid/test WindowDatasets from a simulated cohort.
struct Splits {
  data::WindowDataset train, valid, test;
};

Splits MakeSplits(const simulate::DatasetProfile& profile, double scale,
                  const data::ApplianceSpec& spec, int64_t window,
                  uint64_t seed) {
  auto houses = simulate::SimulateDataset(profile, scale, seed);
  Rng rng(seed + 1);
  auto split = data::SplitHouses(
      houses, std::max<int64_t>(1, static_cast<int64_t>(houses.size()) / 5),
      std::max<int64_t>(1, static_cast<int64_t>(houses.size()) / 5), &rng);
  CAMAL_CHECK(split.ok());
  data::BuildOptions opt;
  opt.window_length = window;
  Splits out;
  out.train = data::BuildWindowDataset(split.value().train, spec, opt).value();
  out.valid = data::BuildWindowDataset(split.value().valid, spec, opt).value();
  out.test = data::BuildWindowDataset(split.value().test, spec, opt).value();
  out.train = data::BalanceByWeakLabel(out.train, &rng);
  return out;
}

core::EnsembleConfig TinyEnsemble() {
  core::EnsembleConfig config;
  config.kernel_sizes = {5, 9};
  config.trials_per_kernel = 1;
  config.ensemble_size = 2;
  config.base_filters = 6;
  config.train.max_epochs = 5;
  config.train.batch_size = 32;
  config.train.patience = 2;
  return config;
}

TEST(IntegrationTest, CamalOnSimulatedKettleBeatsAllOffBaseline) {
  const data::ApplianceSpec spec = simulate::SpecFor(
      simulate::ApplianceType::kKettle);
  Splits s = MakeSplits(simulate::UkdaleProfile(), 0.6, spec, 64, 42);
  ASSERT_GT(s.train.size(), 10);
  ASSERT_GT(s.test.size(), 0);

  auto run = eval::RunCamalExperiment(s.train, s.valid, s.test, TinyEnsemble(),
                                      core::LocalizerOptions{}, 42);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const auto& r = run.value();
  // Detection must beat coin-flipping and localization must find something.
  EXPECT_GT(r.detection_balanced_accuracy, 0.6);
  EXPECT_GT(r.scores.f1, 0.05);
  EXPECT_GT(r.scores.recall, 0.0);
  EXPECT_GT(r.labels_used, 0);
  EXPECT_GT(r.train_seconds, 0.0);
}

TEST(IntegrationTest, PossessionOnlyPipelineTrains) {
  // §V-H: train from possession labels of non-submetered houses, evaluate
  // on the submetered subset's ground truth.
  const data::ApplianceSpec spec = simulate::SpecFor(
      simulate::ApplianceType::kWashingMachine);
  auto houses = simulate::SimulateDataset(simulate::IdealProfile(), 0.08, 7);

  std::vector<data::HouseRecord> possession_houses, submetered_houses;
  for (const auto& h : houses) {
    if (h.appliances.empty()) {
      possession_houses.push_back(h);
    } else {
      submetered_houses.push_back(h);
    }
  }
  ASSERT_GE(possession_houses.size(), 2u);
  ASSERT_GE(submetered_houses.size(), 2u);

  data::BuildOptions poss_opt;
  poss_opt.window_length = 64;
  poss_opt.possession_labels = true;
  auto train_all =
      data::BuildWindowDataset(possession_houses, spec, poss_opt).value();
  Rng rng(7);
  train_all = data::BalanceByWeakLabel(train_all, &rng);
  ASSERT_GT(train_all.PositiveCount(), 0);

  // 80/20 split of the possession windows for train/valid.
  std::vector<int64_t> idx_train, idx_valid;
  for (int64_t i = 0; i < train_all.size(); ++i) {
    (i % 5 == 0 ? idx_valid : idx_train).push_back(i);
  }
  data::BuildOptions test_opt;
  test_opt.window_length = 64;
  auto test =
      data::BuildWindowDataset(submetered_houses, spec, test_opt).value();

  auto run = eval::RunCamalExperiment(train_all.Subset(idx_train),
                                      train_all.Subset(idx_valid), test,
                                      TinyEnsemble(),
                                      core::LocalizerOptions{}, 7);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // The pipeline must produce finite scores; quality is asserted loosely
  // (possession supervision is the hardest regime).
  EXPECT_GE(run.value().scores.f1, 0.0);
  EXPECT_LE(run.value().scores.f1, 1.0);
  EXPECT_GT(run.value().labels_used, 0);
}

TEST(IntegrationTest, WeakBeatsCrnnWeakOnSeparableCase) {
  // The headline qualitative claim (Table III): CamAL > CRNN Weak under
  // identical weak supervision. Asserted on an easy kettle task.
  const data::ApplianceSpec spec = simulate::SpecFor(
      simulate::ApplianceType::kKettle);
  Splits s = MakeSplits(simulate::UkdaleProfile(), 0.6, spec, 64, 11);

  auto camal_run = eval::RunCamalExperiment(
      s.train, s.valid, s.test, TinyEnsemble(), core::LocalizerOptions{}, 11);
  ASSERT_TRUE(camal_run.ok());

  baselines::BaselineScale scale;
  scale.width = 0.125;
  eval::TrainConfig tc;
  tc.max_epochs = 5;
  tc.batch_size = 32;
  tc.patience = 2;
  auto crnn_run =
      eval::RunBaselineExperiment(baselines::BaselineKind::kCrnnWeak, scale,
                                  tc, s.train, s.valid, s.test, 11);
  ASSERT_TRUE(crnn_run.ok());
  EXPECT_GE(camal_run.value().scores.f1, crnn_run.value().scores.f1)
      << "CamAL F1=" << camal_run.value().scores.f1
      << " CRNN-Weak F1=" << crnn_run.value().scores.f1;
}

TEST(IntegrationTest, EndToEndDeterminism) {
  const data::ApplianceSpec spec = simulate::SpecFor(
      simulate::ApplianceType::kKettle);
  Splits s = MakeSplits(simulate::UkdaleProfile(), 0.8, spec, 64, 21);
  auto a = eval::RunCamalExperiment(s.train, s.valid, s.test, TinyEnsemble(),
                                    core::LocalizerOptions{}, 13);
  auto b = eval::RunCamalExperiment(s.train, s.valid, s.test, TinyEnsemble(),
                                    core::LocalizerOptions{}, 13);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().scores.f1, b.value().scores.f1);
  EXPECT_DOUBLE_EQ(a.value().detection_balanced_accuracy,
                   b.value().detection_balanced_accuracy);
}

}  // namespace
}  // namespace camal
