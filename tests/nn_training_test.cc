// End-to-end substrate checks: optimizers reduce loss on toy problems,
// parameter serialization round-trips, checkpoints restore.

#include <gtest/gtest.h>

#include <cstdio>

#include "gradcheck.h"
#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "nn/serialize.h"

namespace camal::nn {
namespace {

using camal::testing::RandomInput;

// Fits y = 2x + 1 with a single linear unit.
double FitLinearRegression(Optimizer* opt, Linear* lin, int steps) {
  Rng rng(3);
  double last_loss = 0.0;
  for (int s = 0; s < steps; ++s) {
    Tensor x({16, 1});
    Tensor y({16, 1});
    for (int64_t i = 0; i < 16; ++i) {
      const float xv = static_cast<float>(rng.Uniform(-1, 1));
      x.at2(i, 0) = xv;
      y.at2(i, 0) = 2.0f * xv + 1.0f;
    }
    Tensor pred = lin->Forward(x);
    LossResult loss = MeanSquaredError(pred, y);
    opt->ZeroGrad();
    lin->Backward(loss.grad);
    opt->Step();
    last_loss = loss.value;
  }
  return last_loss;
}

TEST(OptimizerTest, SgdFitsLinearRegression) {
  Rng rng(1);
  Linear lin(1, 1, true, &rng);
  Sgd sgd(lin.Parameters(), 0.1f, 0.9f);
  const double final_loss = FitLinearRegression(&sgd, &lin, 200);
  EXPECT_LT(final_loss, 1e-3);
  EXPECT_NEAR(lin.weight().value.at(0), 2.0f, 0.1f);
  EXPECT_NEAR(lin.bias_param().value.at(0), 1.0f, 0.1f);
}

TEST(OptimizerTest, AdamFitsLinearRegression) {
  Rng rng(1);
  Linear lin(1, 1, true, &rng);
  Adam adam(lin.Parameters(), 0.05f);
  const double final_loss = FitLinearRegression(&adam, &lin, 300);
  EXPECT_LT(final_loss, 1e-3);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Rng rng(1);
  Linear lin(4, 4, false, &rng);
  lin.weight().value.Fill(1.0f);
  Sgd sgd(lin.Parameters(), 0.1f, 0.0f, /*weight_decay=*/0.5f);
  // Zero gradient: only decay acts.
  lin.ZeroGrad();
  sgd.Step();
  for (int64_t i = 0; i < lin.weight().value.numel(); ++i) {
    EXPECT_NEAR(lin.weight().value.at(i), 0.95f, 1e-5);
  }
}

TEST(OptimizerTest, AdamStepChangesAllParameters) {
  Rng rng(2);
  Linear lin(3, 2, true, &rng);
  auto before = SnapshotParameters(&lin);
  Tensor x = RandomInput({4, 3}, 7);
  Tensor pred = lin.Forward(x);
  LossResult loss = MeanSquaredError(pred, Tensor::Full({4, 2}, 1.0f));
  Adam adam(lin.Parameters(), 0.01f);
  adam.ZeroGrad();
  lin.Backward(loss.grad);
  adam.Step();
  auto after = SnapshotParameters(&lin);
  bool changed = false;
  for (size_t p = 0; p < before.size(); ++p) {
    for (int64_t i = 0; i < before[p].numel(); ++i) {
      if (before[p].at(i) != after[p].at(i)) changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(TrainingTest, SmallCnnLearnsToSeparatePulses) {
  // Binary classification: windows with a rectangular pulse vs without.
  Rng rng(5);
  Sequential net;
  Conv1dOptions opt;
  opt.in_channels = 1;
  opt.out_channels = 4;
  opt.kernel_size = 5;
  opt.padding = 2;
  net.Add(std::make_unique<Conv1d>(opt, &rng));
  net.Add(std::make_unique<ReLU>());
  net.Add(std::make_unique<GlobalAvgPool1d>());
  net.Add(std::make_unique<Linear>(4, 2, true, &rng));

  Adam adam(net.Parameters(), 1e-2f);
  auto make_batch = [&](Tensor* x, std::vector<int>* labels) {
    *x = Tensor({16, 1, 32});
    labels->clear();
    for (int64_t i = 0; i < 16; ++i) {
      const bool positive = rng.Bernoulli(0.5);
      for (int64_t t = 0; t < 32; ++t) {
        x->at3(i, 0, t) = static_cast<float>(rng.Gaussian(0.0, 0.05));
      }
      if (positive) {
        const int64_t start = rng.UniformInt(0, 24);
        for (int64_t t = start; t < start + 8; ++t) x->at3(i, 0, t) += 1.0f;
      }
      labels->push_back(positive ? 1 : 0);
    }
  };

  double first_loss = 0.0, tail_loss = 0.0;
  constexpr int kSteps = 400;
  constexpr int kTail = 20;
  for (int step = 0; step < kSteps; ++step) {
    Tensor x;
    std::vector<int> labels;
    make_batch(&x, &labels);
    Tensor logits = net.Forward(x);
    LossResult loss = SoftmaxCrossEntropy(logits, labels);
    if (step == 0) first_loss = loss.value;
    if (step >= kSteps - kTail) tail_loss += loss.value / kTail;
    adam.ZeroGrad();
    net.Backward(loss.grad);
    adam.Step();
  }
  EXPECT_LT(tail_loss, first_loss * 0.7);
  EXPECT_LT(tail_loss, 0.4);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  const char* path = "/tmp/camal_params_test.bin";
  Rng rng(9);
  Linear a(6, 3, true, &rng);
  ASSERT_TRUE(SaveParameters(&a, path).ok());

  Rng rng2(1234);  // different init
  Linear b(6, 3, true, &rng2);
  ASSERT_TRUE(LoadParameters(&b, path).ok());
  for (size_t p = 0; p < a.Parameters().size(); ++p) {
    const Tensor& av = a.Parameters()[p]->value;
    const Tensor& bv = b.Parameters()[p]->value;
    for (int64_t i = 0; i < av.numel(); ++i) EXPECT_EQ(av.at(i), bv.at(i));
  }
  std::remove(path);
}

TEST(SerializeTest, LoadRejectsShapeMismatch) {
  const char* path = "/tmp/camal_params_mismatch.bin";
  Rng rng(9);
  Linear a(6, 3, true, &rng);
  ASSERT_TRUE(SaveParameters(&a, path).ok());
  Linear wrong(5, 3, true, &rng);
  Status st = LoadParameters(&wrong, path);
  EXPECT_FALSE(st.ok());
  std::remove(path);
}

TEST(SerializeTest, LoadRejectsMissingFile) {
  Rng rng(9);
  Linear a(2, 2, true, &rng);
  EXPECT_EQ(LoadParameters(&a, "/tmp/does_not_exist_camal.bin").code(),
            StatusCode::kIoError);
}

TEST(SerializeTest, SnapshotRestore) {
  Rng rng(9);
  Linear lin(4, 2, true, &rng);
  auto snapshot = SnapshotParameters(&lin);
  lin.weight().value.Fill(123.0f);
  RestoreParameters(&lin, snapshot);
  EXPECT_NE(lin.weight().value.at(0), 123.0f);
  EXPECT_EQ(lin.weight().value.at(0), snapshot[0].at(0));
}

}  // namespace
}  // namespace camal::nn
