#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "common/csv.h"
#include "common/parallel_for.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace camal {
namespace {

// Force a multi-thread pool even on single-core machines so the pool's
// concurrency paths are exercised; an explicit CAMAL_THREADS (e.g. from
// CI) wins. Runs at static-init time, before the first NumThreads() call.
const bool kThreadsForced = [] {
  setenv("CAMAL_THREADS", "4", /*overwrite=*/0);
  return true;
}();

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad window");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad window");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(StatusTest, StatusCodeNameRoundTripsAllCodes) {
  // Exhaustive over the enum: all 8 codes carry unique, stable names
  // (never the "Unknown" fallback), and every non-OK code round-trips
  // code -> Status -> ToString with its name as the prefix. A StatusCode
  // added without a StatusCodeName entry fails the uniqueness count here
  // even if the switch's -Wswitch warning is missed.
  const std::pair<StatusCode, const char*> kCodes[] = {
      {StatusCode::kOk, "OK"},
      {StatusCode::kInvalidArgument, "InvalidArgument"},
      {StatusCode::kOutOfRange, "OutOfRange"},
      {StatusCode::kNotFound, "NotFound"},
      {StatusCode::kIoError, "IoError"},
      {StatusCode::kFailedPrecondition, "FailedPrecondition"},
      {StatusCode::kInternal, "Internal"},
      {StatusCode::kDeadlineExceeded, "DeadlineExceeded"},
  };
  constexpr size_t kNumCodes = sizeof(kCodes) / sizeof(kCodes[0]);
  static_assert(kNumCodes == 8, "keep this table exhaustive");
  std::set<std::string> names;
  for (const auto& [code, expected] : kCodes) {
    EXPECT_STREQ(StatusCodeName(code), expected);
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
    names.insert(StatusCodeName(code));
    if (code != StatusCode::kOk) {
      Status st(code, "detail");
      EXPECT_EQ(st.code(), code);
      EXPECT_EQ(st.ToString(), std::string(expected) + ": detail");
    }
  }
  EXPECT_EQ(names.size(), kNumCodes);  // names are pairwise distinct
}

TEST(StatusTest, DeadlineExceededHelper) {
  Status st = Status::DeadlineExceeded("request expired in queue");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(st.message(), "request expired in queue");
  EXPECT_EQ(st.ToString(), "DeadlineExceeded: request expired in queue");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.UniformInt(0, 1'000'000) != b.UniformInt(0, 1'000'000)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0) == 1 && seen.count(3) == 1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kTrials;
  const double var = sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  // The fork advanced the parent; both continue to produce values.
  EXPECT_NO_FATAL_FAILURE(child.Uniform(0, 1));
  EXPECT_NO_FATAL_FAILURE(a.Uniform(0, 1));
}

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, [&](int64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, [&](int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, ChunkedCoversRange) {
  std::atomic<int64_t> total{0};
  ParallelForChunked(0, 10000, [&](int64_t b, int64_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 10000);
}

TEST(ParallelForTest, NestedCallsStaySerial) {
  std::atomic<int64_t> total{0};
  ParallelFor(0, 8, [&](int64_t) {
    ParallelFor(0, 100, [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ParallelForTest, ConcurrentTopLevelCallsAreSafe) {
  // Four independent threads each issue repeated top-level ParallelFor
  // calls against the shared pool; every call must see exactly its own
  // iterations (per-job completion tracking, no cross-talk).
  constexpr int kCallers = 4;
  constexpr int kReps = 20;
  constexpr int64_t kIters = 500;
  std::vector<std::atomic<int64_t>> totals(kCallers);
  for (auto& t : totals) t.store(0);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&totals, c] {
      for (int rep = 0; rep < kReps; ++rep) {
        ParallelFor(0, kIters,
                    [&totals, c](int64_t) { totals[c].fetch_add(1); });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& t : totals) EXPECT_EQ(t.load(), kReps * kIters);
}

TEST(ParallelForTest, PlanOuterShardsSplitsBudget) {
  const int threads = NumThreads();
  const ShardPlan many = PlanOuterShards(1000, 0);
  EXPECT_EQ(many.shards, threads);  // plenty of items: all budget outer
  EXPECT_EQ(many.inner, 1);
  const ShardPlan capped = PlanOuterShards(1000, 2);
  EXPECT_EQ(capped.shards, std::min(2, threads));
  EXPECT_EQ(capped.inner, std::max(1, threads / capped.shards));
  const ShardPlan single = PlanOuterShards(1, 0);
  EXPECT_EQ(single.shards, 1);  // one item: whole budget goes inner
  EXPECT_EQ(single.inner, threads);
  const ShardPlan empty = PlanOuterShards(0, 0);
  EXPECT_EQ(empty.shards, 1);
  EXPECT_EQ(empty.chunk, 0);
}

TEST(ParallelForTest, PlanOuterShardsMatchesRunnableChunks) {
  // Ceil division can produce fewer chunks than the requested shard count
  // (items=9, cap=6 -> chunk=2 -> 5 chunks); the plan must report the
  // shard count that actually runs, since callers size per-shard state
  // (model replicas) off it.
  for (int64_t items = 1; items <= 40; ++items) {
    for (int cap : {0, 2, 3, 6}) {
      const ShardPlan plan = PlanOuterShards(items, cap);
      ASSERT_GT(plan.chunk, 0);
      EXPECT_EQ(plan.shards, (items + plan.chunk - 1) / plan.chunk)
          << "items=" << items << " cap=" << cap;
    }
  }
}

TEST(ParallelForTest, OuterShardsCoverRangeWithStableShardIds) {
  const ShardPlan plan = PlanOuterShards(23, 0);
  std::vector<std::atomic<int>> hits(23);
  for (auto& h : hits) h.store(0);
  std::vector<std::atomic<int>> active(static_cast<size_t>(plan.shards));
  for (auto& a : active) a.store(0);
  std::atomic<bool> overlap{false};
  ParallelForOuter(0, 23, 0, [&](int shard, int64_t b, int64_t e) {
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, plan.shards);
    // At most one chunk per shard id may run at any time — that is what
    // lets shards own per-shard state (model replicas).
    if (active[static_cast<size_t>(shard)].fetch_add(1) != 0) {
      overlap.store(true);
    }
    for (int64_t i = b; i < e; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
    active[static_cast<size_t>(shard)].fetch_sub(1);
  });
  EXPECT_FALSE(overlap.load());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, InnerLoopsInsideOuterShardsStayCorrect) {
  std::atomic<int64_t> total{0};
  ParallelForOuter(0, 6, 2, [&](int, int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      ParallelFor(0, 250, [&](int64_t) { total.fetch_add(1); });
    }
  });
  EXPECT_EQ(total.load(), 6 * 250);
}

TEST(ParallelForTest, NestedOuterRunsInlineAsOneShard) {
  std::atomic<int> calls{0};
  std::atomic<int64_t> covered{0};
  ParallelForOuter(0, 4, 0, [&](int, int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      ParallelForOuter(0, 8, 0, [&](int shard, int64_t ib, int64_t ie) {
        EXPECT_EQ(shard, 0);  // nested: one inline shard, whole range
        EXPECT_EQ(ib, 0);
        EXPECT_EQ(ie, 8);
        calls.fetch_add(1);
        covered.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(calls.load(), 4);
  EXPECT_EQ(covered.load(), 4 * 8);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch w;
  double t1 = w.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  w.Restart();
  EXPECT_LT(w.ElapsedSeconds(), 1.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"A", "LongHeader"});
  t.AddRow({"xx", "1"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| A  | LongHeader |"), std::string::npos);
  EXPECT_NE(out.find("| xx | 1          |"), std::string::npos);
}

TEST(TablePrinterTest, FmtHelpers) {
  EXPECT_EQ(Fmt(0.5444, 2), "0.54");
  EXPECT_EQ(Fmt(1.0, 0), "1");
  EXPECT_EQ(FmtInt(123456), "123456");
}

TEST(CsvTest, RoundTripWithQuoting) {
  CsvWriter w("/tmp/camal_csv_test.csv");
  w.AddRow({"a", "b,with,commas", "c\"quoted\""});
  w.AddRow({"1", "2", "3"});
  ASSERT_TRUE(w.Write().ok());
  const std::string text = w.ToString();
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  const auto& rows = parsed.value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b,with,commas");
  EXPECT_EQ(rows[0][2], "c\"quoted\"");
  EXPECT_EQ(rows[1][2], "3");
}

TEST(CsvTest, ParseRejectsUnterminatedQuote) {
  auto parsed = ParseCsv("\"abc");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, WriteFailsForBadPath) {
  CsvWriter w("/nonexistent_dir/x.csv");
  w.AddRow({"a"});
  EXPECT_EQ(w.Write().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace camal
