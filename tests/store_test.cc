// Column store tests: format round trips (NaN payload bits included),
// corrupt-file rejection (every malformed input must come back as a
// Status, never a fault — these run under ASan/TSan in CI), and the
// zero-copy guarantee: scans over the mapped store are bitwise-identical
// to scans over the CSV-loaded vectors, at both the BatchRunner and the
// Service level.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/ensemble.h"
#include "core/resnet.h"
#include "data/column_store.h"
#include "data/csv_loader.h"
#include "serve/batch_runner.h"
#include "serve/service.h"

namespace camal {
namespace {

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteRawBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::string ReadRawBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string bytes;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

data::HouseRecord MakeHouse(int id, int64_t n, uint64_t seed) {
  Rng rng(seed);
  data::HouseRecord house;
  house.house_id = id;
  house.interval_seconds = 60.0;
  house.appliances.resize(2);
  house.appliances[0].name = "kettle";
  house.appliances[1].name = "dishwasher";
  for (int64_t i = 0; i < n; ++i) {
    if (i % 17 == 3) {
      house.aggregate.push_back(data::kMissingValue);
      house.appliances[0].power.push_back(data::kMissingValue);
      house.appliances[1].power.push_back(data::kMissingValue);
      continue;
    }
    house.aggregate.push_back(static_cast<float>(rng.Uniform(0.0, 3000.0)));
    house.appliances[0].power.push_back(
        static_cast<float>(rng.Uniform(0.0, 2000.0)));
    house.appliances[1].power.push_back(
        static_cast<float>(rng.Uniform(0.0, 1200.0)));
  }
  return house;
}

bool BitsEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

bool BitsEqual(const std::vector<float>& a, data::SeriesView b) {
  return static_cast<int64_t>(a.size()) == b.size() &&
         std::memcmp(a.data(), b.data(),
                     a.size() * sizeof(float)) == 0;
}

TEST(ColumnStoreTest, RoundTripsRecordAndMetadata) {
  const data::HouseRecord house = MakeHouse(42, 100, 1);
  const std::string path = TestPath("roundtrip.cstore");
  data::ColumnStoreWriteOptions options;
  options.chunk_samples = 32;  // 100 samples -> chunks of 32,32,32,4
  ASSERT_TRUE(data::WriteColumnStore(house, path, options).ok());

  auto store_result = data::ColumnStore::Open(path);
  ASSERT_TRUE(store_result.ok()) << store_result.status().ToString();
  const data::ColumnStore& store = store_result.value();
  EXPECT_EQ(store.house_id(), 42);
  EXPECT_EQ(store.interval_seconds(), 60.0);
  EXPECT_EQ(store.num_samples(), 100);
  EXPECT_EQ(store.num_channels(), 3);
  EXPECT_EQ(store.num_chunks(), 4);
  EXPECT_EQ(store.channel_name(0), "aggregate");
  EXPECT_EQ(store.channel_name(1), "kettle");
  EXPECT_EQ(store.channel_name(2), "dishwasher");

  EXPECT_TRUE(BitsEqual(house.aggregate, store.aggregate()));
  EXPECT_TRUE(BitsEqual(house.appliances[0].power, store.Channel(1)));
  EXPECT_TRUE(BitsEqual(house.appliances[1].power, store.Channel(2)));

  const data::HouseRecord copy = store.ToHouseRecord();
  EXPECT_EQ(copy.house_id, 42);
  EXPECT_TRUE(BitsEqual(house.aggregate, copy.aggregate));
  ASSERT_EQ(copy.appliances.size(), 2u);
  EXPECT_EQ(copy.appliances[0].name, "kettle");
  EXPECT_TRUE(BitsEqual(house.appliances[0].power,
                        copy.appliances[0].power));
  EXPECT_TRUE(BitsEqual(house.appliances[1].power,
                        copy.appliances[1].power));
  // The loader convention: every stored submeter is an owned appliance.
  ASSERT_EQ(copy.owned_appliances.size(), 2u);
  EXPECT_EQ(copy.owned_appliances[0], "kettle");
}

TEST(ColumnStoreTest, PreservesNanPayloadBits) {
  // A custom NaN payload (not kMissingValue) must survive the write/read
  // cycle bit-exactly: the store treats samples as opaque 32-bit words.
  data::HouseRecord house;
  house.house_id = 1;
  house.interval_seconds = 10.0;
  uint32_t weird_nan_bits = 0x7FC0BEEF;
  float weird_nan = 0.0f;
  std::memcpy(&weird_nan, &weird_nan_bits, sizeof(weird_nan));
  house.aggregate = {1.0f, weird_nan, data::kMissingValue, -0.0f};

  const std::string path = TestPath("nan_payload.cstore");
  ASSERT_TRUE(data::WriteColumnStore(house, path).ok());
  auto store = data::ColumnStore::Open(path);
  ASSERT_TRUE(store.ok());
  const data::SeriesView agg = store.value().aggregate();
  ASSERT_EQ(agg.size(), 4);
  for (size_t i = 0; i < house.aggregate.size(); ++i) {
    uint32_t expect = 0, got = 0;
    std::memcpy(&expect, &house.aggregate[i], sizeof(expect));
    std::memcpy(&got, agg.data() + i, sizeof(got));
    EXPECT_EQ(expect, got) << "sample " << i;
  }
}

TEST(ColumnStoreTest, ChunkColumnsTileTheChannel) {
  const data::HouseRecord house = MakeHouse(7, 10, 2);
  const std::string path = TestPath("chunks.cstore");
  data::ColumnStoreWriteOptions options;
  options.chunk_samples = 4;
  ASSERT_TRUE(data::WriteColumnStore(house, path, options).ok());
  auto store_result = data::ColumnStore::Open(path);
  ASSERT_TRUE(store_result.ok());
  const data::ColumnStore& store = store_result.value();
  ASSERT_EQ(store.num_chunks(), 3);
  EXPECT_EQ(store.chunk_start(0), 0);
  EXPECT_EQ(store.chunk_start(1), 4);
  EXPECT_EQ(store.chunk_start(2), 8);
  EXPECT_EQ(store.chunk_samples(2), 2);
  for (int64_t c = 0; c < store.num_channels(); ++c) {
    const data::SeriesView channel = store.Channel(c);
    int64_t covered = 0;
    for (int64_t k = 0; k < store.num_chunks(); ++k) {
      const data::SeriesView chunk = store.ChunkColumn(k, c);
      // A chunk is a slice of the channel mapping, not a copy.
      EXPECT_EQ(chunk.data(), channel.data() + store.chunk_start(k));
      covered += chunk.size();
    }
    EXPECT_EQ(covered, store.num_samples());
  }
}

TEST(ColumnStoreTest, CsvBinaryCsvRoundTripIsExact) {
  // The full migration cycle: CSV -> binary -> CSV must reproduce the
  // original text byte for byte (missing cells stay missing, values
  // reparse to identical floats), and the intermediate binary must carry
  // the CSV-parsed samples bit-exactly.
  for (uint64_t seed : {3u, 4u, 5u}) {
    const data::HouseRecord house =
        MakeHouse(static_cast<int>(seed), 200, seed);
    const std::string csv_path = TestPath("cycle.csv");
    const std::string store_path = TestPath("cycle.cstore");
    const std::string back_path = TestPath("cycle_back.csv");
    ASSERT_TRUE(data::WriteHouseCsv(house, csv_path).ok());
    ASSERT_TRUE(data::ConvertCsvToStore(csv_path, store_path,
                                        static_cast<int>(seed))
                    .ok());

    auto loaded = data::LoadHouseCsv(csv_path, static_cast<int>(seed));
    ASSERT_TRUE(loaded.ok());
    auto store = data::ColumnStore::Open(store_path);
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE(BitsEqual(loaded.value().aggregate,
                          store.value().aggregate()));
    for (size_t a = 0; a < loaded.value().appliances.size(); ++a) {
      EXPECT_TRUE(BitsEqual(
          loaded.value().appliances[a].power,
          store.value().Channel(static_cast<int64_t>(a) + 1)));
    }

    ASSERT_TRUE(data::ConvertStoreToCsv(store_path, back_path).ok());
    EXPECT_EQ(ReadRawBytes(csv_path), ReadRawBytes(back_path))
        << "seed " << seed;
  }
}

TEST(ColumnStoreTest, WriterRejectsMalformedRecords) {
  data::HouseRecord house = MakeHouse(1, 10, 6);
  house.appliances[0].power.pop_back();  // trace shorter than aggregate
  EXPECT_FALSE(
      data::WriteColumnStore(house, TestPath("bad.cstore")).ok());

  data::HouseRecord no_interval = MakeHouse(1, 10, 6);
  no_interval.interval_seconds = 0.0;
  EXPECT_FALSE(
      data::WriteColumnStore(no_interval, TestPath("bad.cstore")).ok());
}

// ---- Corrupt-file rejection: Status out, never a crash ----

TEST(ColumnStoreCorruptionTest, EmptyFile) {
  const std::string path = TestPath("empty.cstore");
  WriteRawBytes(path, "");
  auto store = data::ColumnStore::Open(path);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
}

TEST(ColumnStoreCorruptionTest, BadMagic) {
  // A plausible-size file that is not a column store (e.g. a CSV fed to
  // the wrong loader).
  const std::string path = TestPath("notastore.cstore");
  WriteRawBytes(path, std::string(256, 'x'));
  auto store = data::ColumnStore::Open(path);
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.status().ToString().find("magic"), std::string::npos);
}

TEST(ColumnStoreCorruptionTest, VersionMismatch) {
  const std::string path = TestPath("version.cstore");
  ASSERT_TRUE(data::WriteColumnStore(MakeHouse(1, 20, 8), path).ok());
  std::string bytes = ReadRawBytes(path);
  bytes[4] = 99;  // version field lives at offset 4
  WriteRawBytes(path, bytes);
  auto store = data::ColumnStore::Open(path);
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.status().ToString().find("version"), std::string::npos);
}

TEST(ColumnStoreCorruptionTest, TruncatedChunkData) {
  const std::string path = TestPath("truncated.cstore");
  ASSERT_TRUE(data::WriteColumnStore(MakeHouse(1, 64, 9), path).ok());
  const std::string bytes = ReadRawBytes(path);
  // Drop the tail of the data section: the header still promises
  // 64 samples x 3 channels, so Open must notice the shortfall.
  WriteRawBytes(path, bytes.substr(0, bytes.size() - 100));
  auto store = data::ColumnStore::Open(path);
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.status().ToString().find("truncated"), std::string::npos);
}

TEST(ColumnStoreCorruptionTest, TruncatedMetadata) {
  const std::string path = TestPath("meta.cstore");
  ASSERT_TRUE(data::WriteColumnStore(MakeHouse(1, 20, 10), path).ok());
  const std::string bytes = ReadRawBytes(path);
  // Keep only the header: the name table and chunk directory it points
  // at are gone.
  WriteRawBytes(path, bytes.substr(0, data::ColumnStoreFormat::kHeaderBytes));
  EXPECT_FALSE(data::ColumnStore::Open(path).ok());
}

TEST(ColumnStoreCorruptionTest, CorruptChunkDirectory) {
  const std::string path = TestPath("chunkdir.cstore");
  data::ColumnStoreWriteOptions options;
  options.chunk_samples = 8;
  ASSERT_TRUE(data::WriteColumnStore(MakeHouse(1, 24, 11), path, options)
                  .ok());
  std::string bytes = ReadRawBytes(path);
  // The chunk directory follows the header and name table; corrupt the
  // second entry's start so the chunks no longer tile the series.
  const size_t name_table =
      3 * sizeof(uint32_t) +
      std::strlen("aggregate") + std::strlen("kettle") +
      std::strlen("dishwasher");
  const size_t second_entry =
      data::ColumnStoreFormat::kHeaderBytes + name_table + 16;
  int64_t bogus_start = 100;
  std::memcpy(&bytes[second_entry], &bogus_start, sizeof(bogus_start));
  WriteRawBytes(path, bytes);
  auto store = data::ColumnStore::Open(path);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
}

TEST(ColumnStoreCorruptionTest, MissingFile) {
  EXPECT_FALSE(data::ColumnStore::Open(TestPath("does_not_exist")).ok());
}

TEST(OpenStoreDirTest, OpensSortedCohort) {
  const std::string dir = TestPath("cohort");
  (void)std::system(("mkdir -p " + dir).c_str());
  ASSERT_TRUE(
      data::WriteColumnStore(MakeHouse(2, 30, 12), dir + "/house_002.cstore")
          .ok());
  ASSERT_TRUE(
      data::WriteColumnStore(MakeHouse(1, 40, 13), dir + "/house_001.cstore")
          .ok());
  auto stores = data::OpenStoreDir(dir);
  ASSERT_TRUE(stores.ok()) << stores.status().ToString();
  ASSERT_EQ(stores.value().size(), 2u);
  EXPECT_EQ(stores.value()[0].house_id(), 1);
  EXPECT_EQ(stores.value()[1].house_id(), 2);

  const std::string empty_dir = TestPath("no_cohort");
  (void)std::system(("mkdir -p " + empty_dir).c_str());
  EXPECT_EQ(data::OpenStoreDir(empty_dir).status().code(),
            StatusCode::kNotFound);
}

// ---- The zero-copy guarantee, asserted end to end ----

core::CamalEnsemble RandomEnsemble(uint64_t seed) {
  Rng rng(seed);
  std::vector<core::EnsembleMember> members;
  for (int64_t k : {5, 9}) {
    core::ResNetConfig config;
    config.base_filters = 4;
    config.kernel_size = k;
    core::EnsembleMember member;
    member.model = std::make_unique<core::ResNetClassifier>(config, &rng);
    member.kernel_size = k;
    members.push_back(std::move(member));
  }
  return core::CamalEnsemble::FromMembers(std::move(members));
}

bool ScansIdentical(const serve::ScanResult& a, const serve::ScanResult& b) {
  if (a.detection.numel() != b.detection.numel() ||
      a.status.numel() != b.status.numel() ||
      a.power.numel() != b.power.numel()) {
    return false;
  }
  auto bits = [](const float* x, const float* y, int64_t n) {
    return std::memcmp(x, y, static_cast<size_t>(n) * sizeof(float)) == 0;
  };
  return bits(a.detection.data(), b.detection.data(), a.detection.numel()) &&
         bits(a.status.data(), b.status.data(), a.status.numel()) &&
         bits(a.power.data(), b.power.data(), a.power.numel());
}

TEST(ColumnStoreServingTest, BatchRunnerScanMatchesCsvBitwise) {
  // CSV pipeline: write text, parse it back (what serving loaded before
  // the store existed). Store pipeline: convert that text, map it, and
  // scan the borrowed view. Same model, same windows — the results must
  // be bitwise-identical.
  const data::HouseRecord house = MakeHouse(1, 300, 20);
  const std::string csv_path = TestPath("scan.csv");
  const std::string store_path = TestPath("scan.cstore");
  ASSERT_TRUE(data::WriteHouseCsv(house, csv_path).ok());
  ASSERT_TRUE(data::ConvertCsvToStore(csv_path, store_path, 1).ok());
  auto loaded = data::LoadHouseCsv(csv_path, 1);
  ASSERT_TRUE(loaded.ok());
  auto store = data::ColumnStore::Open(store_path);
  ASSERT_TRUE(store.ok());

  core::CamalEnsemble ensemble = RandomEnsemble(21);
  serve::BatchRunnerOptions opt;
  opt.stream.window_length = 16;
  opt.stream.stride = 8;
  opt.stream.batch_size = 4;
  opt.appliance_avg_power_w = 700.0f;
  serve::BatchRunner runner(&ensemble, opt);

  const serve::ScanResult from_csv = runner.Scan(loaded.value().aggregate);
  const serve::ScanResult from_store = runner.Scan(store.value().aggregate());
  EXPECT_TRUE(ScansIdentical(from_csv, from_store));
}

TEST(ColumnStoreServingTest, ServiceScanMatchesCsvBitwise) {
  const data::HouseRecord house = MakeHouse(1, 300, 22);
  const std::string csv_path = TestPath("serve.csv");
  const std::string store_path = TestPath("serve.cstore");
  ASSERT_TRUE(data::WriteHouseCsv(house, csv_path).ok());
  ASSERT_TRUE(data::ConvertCsvToStore(csv_path, store_path, 1).ok());
  auto loaded = data::LoadHouseCsv(csv_path, 1);
  ASSERT_TRUE(loaded.ok());
  auto store = data::ColumnStore::Open(store_path);
  ASSERT_TRUE(store.ok());

  core::CamalEnsemble ensemble = RandomEnsemble(23);
  serve::BatchRunnerOptions opt;
  opt.stream.window_length = 16;
  opt.stream.stride = 8;
  opt.stream.batch_size = 4;
  opt.appliance_avg_power_w = 700.0f;
  serve::ServiceOptions service_opt;
  service_opt.workers = 2;
  serve::Service service(service_opt);
  ASSERT_TRUE(service.RegisterAppliance("kettle", &ensemble, opt).ok());
  ASSERT_TRUE(service.Start().ok());

  // The CSV request owns its samples (the pre-store serving idiom); the
  // store request borrows the mapping.
  serve::ScanRequest csv_request;
  csv_request.household_id = "csv";
  csv_request.appliance = "kettle";
  csv_request.owned_series = loaded.value().aggregate;
  serve::ScanRequest store_request;
  store_request.household_id = "store";
  store_request.appliance = "kettle";
  store_request.series = store.value().aggregate();
  auto csv_future = service.Submit(std::move(csv_request));
  auto store_future = service.Submit(std::move(store_request));
  Result<serve::ScanResult> from_csv = csv_future.get();
  Result<serve::ScanResult> from_store = store_future.get();
  ASSERT_TRUE(from_csv.ok());
  ASSERT_TRUE(from_store.ok());
  EXPECT_TRUE(ScansIdentical(from_csv.value(), from_store.value()));
  service.Shutdown();
}

}  // namespace
}  // namespace camal
