// Cross-module property tests: invariants that must hold over randomized
// inputs and parameter sweeps (TEST_P), plus failure-injection cases.

#include <gtest/gtest.h>

#include <cmath>

#include "core/cam.h"
#include "core/ensemble.h"
#include "core/localizer.h"
#include "core/power_estimation.h"
#include "data/resample.h"
#include "eval/label_budget.h"
#include "gradcheck.h"
#include "metrics/energy.h"
#include "nn/conv1d.h"
#include "nn/serialize.h"

namespace camal {
namespace {

using camal::testing::RandomInput;

// ---------------------------------------------------------------------------
// Conv1d geometry sweep: OutputLength must agree with the actual forward
// output for every (kernel, stride, dilation, padding) combination.
// ---------------------------------------------------------------------------

struct ConvGeometry {
  int64_t kernel, stride, dilation, padding;
};

class ConvGeometrySweep : public ::testing::TestWithParam<ConvGeometry> {};

TEST_P(ConvGeometrySweep, OutputLengthMatchesForward) {
  const ConvGeometry g = GetParam();
  Rng rng(1);
  nn::Conv1dOptions opt;
  opt.in_channels = 2;
  opt.out_channels = 3;
  opt.kernel_size = g.kernel;
  opt.stride = g.stride;
  opt.dilation = g.dilation;
  opt.padding = g.padding;
  nn::Conv1d conv(opt, &rng);
  for (int64_t len : {17, 32, 63}) {
    if (conv.OutputLength(len) <= 0) continue;
    nn::Tensor y = conv.Forward(nn::Tensor({1, 2, len}));
    EXPECT_EQ(y.dim(2), conv.OutputLength(len))
        << "k=" << g.kernel << " s=" << g.stride << " d=" << g.dilation
        << " p=" << g.padding << " L=" << len;
    // Backward must return an input-shaped gradient for every geometry.
    nn::Tensor gi = conv.Backward(nn::Tensor(y.shape()));
    EXPECT_EQ(gi.dim(2), len);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometrySweep,
    ::testing::Values(ConvGeometry{1, 1, 1, 0}, ConvGeometry{3, 1, 1, 1},
                      ConvGeometry{3, 2, 1, 1}, ConvGeometry{5, 1, 2, 4},
                      ConvGeometry{7, 3, 1, 3}, ConvGeometry{25, 1, 1, 12},
                      ConvGeometry{2, 2, 1, 0}, ConvGeometry{9, 1, 3, 12}),
    [](const ::testing::TestParamInfo<ConvGeometry>& info) {
      const ConvGeometry& g = info.param;
      return "k" + std::to_string(g.kernel) + "_s" + std::to_string(g.stride) +
             "_d" + std::to_string(g.dilation) + "_p" +
             std::to_string(g.padding);
    });

// ---------------------------------------------------------------------------
// CAM invariants.
// ---------------------------------------------------------------------------

TEST(CamProperties, NormalizationIsScaleInvariant) {
  nn::Tensor cam = RandomInput({3, 16}, 5, -2.0, 3.0);
  nn::Tensor scaled = nn::Scale(cam, 7.5f);
  nn::Tensor a = core::NormalizeCamByMax(cam);
  nn::Tensor b = core::NormalizeCamByMax(scaled);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.at(i), b.at(i), 1e-5);
  }
}

TEST(CamProperties, NormalizedMaxIsOneWhenPositive) {
  nn::Tensor cam = RandomInput({4, 20}, 9, -1.0, 2.0);
  nn::Tensor norm = core::NormalizeCamByMax(cam);
  for (int64_t n = 0; n < 4; ++n) {
    float raw_max = cam.at2(n, 0), norm_max = norm.at2(n, 0);
    for (int64_t t = 1; t < 20; ++t) {
      raw_max = std::max(raw_max, cam.at2(n, t));
      norm_max = std::max(norm_max, norm.at2(n, t));
    }
    if (raw_max > 0.0f) {
      EXPECT_NEAR(norm_max, 1.0f, 1e-5);
    }
  }
}

TEST(CamProperties, CamIsLinearInFeatures) {
  // CAM(a*f1 + b*f2) = a*CAM(f1) + b*CAM(f2).
  nn::Tensor f1 = RandomInput({2, 3, 8}, 11);
  nn::Tensor f2 = RandomInput({2, 3, 8}, 13);
  nn::Tensor w = RandomInput({2, 3}, 15);
  nn::Tensor combo = nn::Add(nn::Scale(f1, 2.0f), nn::Scale(f2, -0.5f));
  nn::Tensor cam_combo = core::ComputeCam(combo, w, 1);
  nn::Tensor expected = nn::Add(
      nn::Scale(core::ComputeCam(f1, w, 1), 2.0f),
      nn::Scale(core::ComputeCam(f2, w, 1), -0.5f));
  for (int64_t i = 0; i < cam_combo.numel(); ++i) {
    EXPECT_NEAR(cam_combo.at(i), expected.at(i), 1e-4);
  }
}

// ---------------------------------------------------------------------------
// Power estimation invariants.
// ---------------------------------------------------------------------------

TEST(PowerEstimationProperties, NeverExceedsAggregateNorAvgPower) {
  Rng rng(3);
  nn::Tensor status({4, 32});
  nn::Tensor watts({4, 32});
  for (int64_t i = 0; i < status.numel(); ++i) {
    status.at(i) = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
    watts.at(i) = static_cast<float>(rng.Uniform(-10.0, 3000.0));
  }
  const float pa = 800.0f;
  nn::Tensor est = core::EstimatePower(status, watts, pa);
  for (int64_t i = 0; i < est.numel(); ++i) {
    EXPECT_GE(est.at(i), 0.0f);
    EXPECT_LE(est.at(i), pa);
    EXPECT_LE(est.at(i), std::max(0.0f, watts.at(i)) + 1e-4f);
    if (status.at(i) < 0.5f) {
      EXPECT_EQ(est.at(i), 0.0f);
    }
  }
}

// ---------------------------------------------------------------------------
// Matching ratio invariants.
// ---------------------------------------------------------------------------

TEST(MatchingRatioProperties, BoundedAndSymmetric) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> a(64), b(64);
    for (size_t i = 0; i < 64; ++i) {
      a[i] = static_cast<float>(rng.Uniform(0.0, 1000.0));
      b[i] = static_cast<float>(rng.Uniform(0.0, 1000.0));
    }
    const double mr = metrics::MatchingRatio(a, b);
    EXPECT_GE(mr, 0.0);
    EXPECT_LE(mr, 1.0);
    EXPECT_DOUBLE_EQ(mr, metrics::MatchingRatio(b, a));
  }
}

TEST(MatchingRatioProperties, OneOnlyForIdenticalSeries) {
  std::vector<float> a{10, 20, 30};
  std::vector<float> b{10, 20, 30.5f};
  EXPECT_DOUBLE_EQ(metrics::MatchingRatio(a, a), 1.0);
  EXPECT_LT(metrics::MatchingRatio(a, b), 1.0);
}

// ---------------------------------------------------------------------------
// Resampling conserves energy (up to missing handling).
// ---------------------------------------------------------------------------

TEST(ResampleProperties, AverageConservesEnergy) {
  Rng rng(9);
  data::TimeSeries s;
  s.interval_seconds = 60.0;
  for (int i = 0; i < 120; ++i) {
    s.values.push_back(static_cast<float>(rng.Uniform(0.0, 3000.0)));
  }
  auto coarse = data::ResampleAverage(s, 600.0).value();
  // Energy = mean power * duration; both series cover the same time span.
  double fine_energy = 0.0, coarse_energy = 0.0;
  for (float v : s.values) fine_energy += v * 60.0;
  for (float v : coarse.values) coarse_energy += v * 600.0;
  EXPECT_NEAR(fine_energy, coarse_energy, fine_energy * 1e-5);
}

// ---------------------------------------------------------------------------
// Localizer invariants: gate monotonicity and detection gating.
// ---------------------------------------------------------------------------

data::WindowDataset PulseDataset(int64_t n, int64_t l, uint64_t seed) {
  Rng rng(seed);
  data::WindowDataset ds;
  ds.window_length = l;
  ds.appliance = {"pulse", 300.0f, 800.0f};
  ds.inputs = nn::Tensor({n, 1, l});
  ds.status = nn::Tensor({n, l});
  ds.appliance_power = nn::Tensor({n, l});
  for (int64_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    for (int64_t t = 0; t < l; ++t) {
      ds.inputs.at3(i, 0, t) =
          0.1f + static_cast<float>(rng.Gaussian(0.0, 0.02));
    }
    if (positive) {
      const int64_t start = rng.UniformInt(0, l - 7);
      for (int64_t t = start; t < start + 6; ++t) {
        ds.inputs.at3(i, 0, t) += 0.8f;
        ds.status.at2(i, t) = 1.0f;
        ds.appliance_power.at2(i, t) = 800.0f;
      }
    }
    ds.weak_labels.push_back(positive ? 1 : 0);
    ds.house_ids.push_back(0);
  }
  return ds;
}

TEST(LocalizerProperties, HigherZGatePredictsFewerPositives) {
  data::WindowDataset train = PulseDataset(48, 24, 1);
  data::WindowDataset valid = PulseDataset(16, 24, 2);
  core::EnsembleConfig config;
  config.kernel_sizes = {5};
  config.trials_per_kernel = 1;
  config.ensemble_size = 1;
  config.base_filters = 4;
  config.train.max_epochs = 4;
  auto ens = core::CamalEnsemble::Train(train, valid, config, 3);
  ASSERT_TRUE(ens.ok());
  core::CamalEnsemble ensemble = std::move(ens).value();
  data::WindowDataset test = PulseDataset(16, 24, 4);
  double prev = 1e18;
  for (float gate : {0.0f, 1.0f, 2.0f, 4.0f}) {
    core::LocalizerOptions lo;
    lo.activation_z_gate = gate;
    core::CamalLocalizer localizer(&ensemble, lo);
    const double positives =
        localizer.Localize(test.inputs).status.Sum();
    EXPECT_LE(positives, prev) << "gate " << gate;
    prev = positives;
  }
}

TEST(LocalizerProperties, DetectionThresholdOneSilencesEverything) {
  data::WindowDataset train = PulseDataset(48, 24, 1);
  data::WindowDataset valid = PulseDataset(16, 24, 2);
  core::EnsembleConfig config;
  config.kernel_sizes = {5};
  config.trials_per_kernel = 1;
  config.ensemble_size = 1;
  config.base_filters = 4;
  config.train.max_epochs = 4;
  auto ens = core::CamalEnsemble::Train(train, valid, config, 3);
  ASSERT_TRUE(ens.ok());
  core::CamalEnsemble ensemble = std::move(ens).value();
  core::LocalizerOptions lo;
  lo.detection_threshold = 1.0f;  // probability can never exceed 1
  core::CamalLocalizer localizer(&ensemble, lo);
  data::WindowDataset test = PulseDataset(16, 24, 4);
  EXPECT_DOUBLE_EQ(localizer.Localize(test.inputs).status.Sum(), 0.0);
}

// ---------------------------------------------------------------------------
// Serialization of a full ResNet classifier round-trips bit-exactly and the
// restored model produces identical predictions.
// ---------------------------------------------------------------------------

TEST(SerializationProperties, ResNetRoundTripPreservesPredictions) {
  const char* path = "/tmp/camal_resnet_roundtrip.bin";
  Rng rng(5);
  core::ResNetConfig config;
  config.base_filters = 4;
  config.kernel_size = 9;
  core::ResNetClassifier original(config, &rng);
  original.SetTraining(false);
  nn::Tensor x = RandomInput({3, 1, 32}, 6, 0.0, 2.0);
  nn::Tensor before = original.Forward(x);
  ASSERT_TRUE(nn::SaveParameters(&original, path).ok());

  Rng rng2(999);
  core::ResNetClassifier restored(config, &rng2);
  restored.SetTraining(false);
  ASSERT_TRUE(nn::LoadParameters(&restored, path).ok());
  // BatchNorm running statistics are parameters of inference too — but they
  // are not Parameters (not trained). Fresh stats differ, so compare in
  // training mode where batch stats are used.
  original.SetTraining(true);
  restored.SetTraining(true);
  nn::Tensor a = original.Forward(x);
  nn::Tensor b = restored.Forward(x);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.at(i), b.at(i), 1e-5);
  }
  (void)before;
  std::remove(path);
}

// ---------------------------------------------------------------------------
// Label budget: determinism for equal seeds, variation across seeds.
// ---------------------------------------------------------------------------

TEST(LabelBudgetProperties, DeterministicPerSeed) {
  data::WindowDataset ds = PulseDataset(40, 16, 1);
  Rng a(5), b(5), c(6);
  auto s1 = eval::SubsetByBudget(ds, 10, &a);
  auto s2 = eval::SubsetByBudget(ds, 10, &b);
  auto s3 = eval::SubsetByBudget(ds, 10, &c);
  ASSERT_EQ(s1.size(), s2.size());
  bool same = true, same_other = true;
  for (int64_t i = 0; i < s1.size(); ++i) {
    same = same && s1.house_ids[static_cast<size_t>(i)] ==
                       s2.house_ids[static_cast<size_t>(i)] &&
           s1.weak_labels[static_cast<size_t>(i)] ==
               s2.weak_labels[static_cast<size_t>(i)] &&
           s1.inputs.at3(i, 0, 0) == s2.inputs.at3(i, 0, 0);
    same_other =
        same_other && s1.inputs.at3(i, 0, 0) == s3.inputs.at3(i, 0, 0);
  }
  EXPECT_TRUE(same);
  EXPECT_FALSE(same_other);
}

// ---------------------------------------------------------------------------
// Failure injection: datasets with heavy missing data still produce usable
// (smaller) window sets, and fully-missing data fails cleanly.
// ---------------------------------------------------------------------------

TEST(FailureInjection, HeavyMissingDataShrinksButWorks) {
  data::HouseRecord house;
  house.house_id = 1;
  house.interval_seconds = 60.0;
  house.aggregate.assign(256, 200.0f);
  Rng rng(3);
  for (size_t i = 0; i < house.aggregate.size(); ++i) {
    if (rng.Bernoulli(0.3)) house.aggregate[i] = data::kMissingValue;
  }
  data::ApplianceTrace trace;
  trace.name = "dishwasher";
  trace.power.assign(256, 0.0f);
  for (size_t t = 100; t < 110; ++t) trace.power[t] = 900.0f;
  house.appliances.push_back(trace);

  data::BuildOptions opt;
  opt.window_length = 16;
  auto ds = data::BuildWindowDataset({house},
                                     {"dishwasher", 300.0f, 800.0f}, opt);
  // With 30% missing most 16-sample windows are dropped; whatever remains
  // must be complete.
  if (ds.ok()) {
    EXPECT_LT(ds.value().size(), 16);
    for (int64_t i = 0; i < ds.value().inputs.numel(); ++i) {
      EXPECT_FALSE(std::isnan(ds.value().inputs.at(i)));
    }
  }
}

TEST(FailureInjection, AllMissingFailsCleanly) {
  data::HouseRecord house;
  house.house_id = 1;
  house.aggregate.assign(64, data::kMissingValue);
  data::ApplianceTrace trace;
  trace.name = "dishwasher";
  trace.power.assign(64, 0.0f);
  house.appliances.push_back(trace);
  data::BuildOptions opt;
  opt.window_length = 16;
  auto ds = data::BuildWindowDataset({house},
                                     {"dishwasher", 300.0f, 800.0f}, opt);
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FailureInjection, ForwardFillThenDropRecoversMostWindows) {
  // Short gaps are recoverable by ffill (Table I pipeline), long ones not.
  data::TimeSeries s;
  s.interval_seconds = 60.0;
  s.values.assign(128, 150.0f);
  for (size_t i = 40; i < 42; ++i) s.values[i] = data::kMissingValue;  // short
  for (size_t i = 80; i < 100; ++i) s.values[i] = data::kMissingValue;  // long
  data::TimeSeries filled = data::ForwardFill(s, 180.0);  // 3-sample cap
  EXPECT_EQ(filled.MissingCount(), 20 - 3);  // short gap gone, long capped
}

}  // namespace
}  // namespace camal
