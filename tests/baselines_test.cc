#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/crnn.h"
#include "baselines/registry.h"
#include "baselines/unet_nilm.h"
#include "gradcheck.h"
#include "nn/activations.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace camal::baselines {
namespace {

using camal::testing::CheckModuleGradients;
using camal::testing::RandomInput;

BaselineScale TinyScale() {
  BaselineScale s;
  s.width = 0.125;
  return s;
}

class BaselineShapes : public ::testing::TestWithParam<BaselineKind> {};

TEST_P(BaselineShapes, ForwardProducesFrameLogits) {
  Rng rng(1);
  auto model = MakeBaseline(GetParam(), TinyScale(), &rng);
  nn::Tensor x = RandomInput({3, 1, 32}, 2, -0.5, 1.5);
  nn::Tensor y = model->Forward(x);
  EXPECT_EQ(y.ndim(), 2);
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_EQ(y.dim(1), 32);
}

TEST_P(BaselineShapes, BackwardReturnsInputShapedGradient) {
  Rng rng(1);
  auto model = MakeBaseline(GetParam(), TinyScale(), &rng);
  model->SetTraining(true);
  nn::Tensor x = RandomInput({2, 1, 32}, 3, -0.5, 1.5);
  nn::Tensor y = model->Forward(x);
  nn::Tensor g = model->Backward(nn::Tensor::Full(y.shape(), 0.1f));
  EXPECT_EQ(g.ndim(), 3);
  EXPECT_EQ(g.dim(0), 2);
  EXPECT_EQ(g.dim(1), 1);
  EXPECT_EQ(g.dim(2), 32);
}

TEST_P(BaselineShapes, HasTrainableParameters) {
  Rng rng(1);
  auto model = MakeBaseline(GetParam(), TinyScale(), &rng);
  EXPECT_GT(model->NumParameters(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselineKinds, BaselineShapes, ::testing::ValuesIn(AllBaselines()),
    [](const ::testing::TestParamInfo<BaselineKind>& info) {
      std::string name = BaselineName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

class BaselineInferenceParity : public ::testing::TestWithParam<BaselineKind> {
};

TEST_P(BaselineInferenceParity, ForwardInferenceMatchesForward) {
  // Every baseline must serve through the batched inference path with the
  // same numbers the training kernels produce: sweep batch sizes
  // {1, 7, 32} and two window lengths (the pooling baselines need
  // multiples of 4; the others take genuinely odd lengths).
  const BaselineKind kind = GetParam();
  Rng rng(21);
  auto model = MakeBaseline(kind, TinyScale(), &rng);
  const bool pooled = kind == BaselineKind::kTpnilm ||
                      kind == BaselineKind::kUnetNilm;
  const std::vector<int64_t> lengths =
      pooled ? std::vector<int64_t>{32, 36} : std::vector<int64_t>{32, 33};
  // Drive BatchNorm running statistics off the identity first so the
  // fused affine actually does something.
  model->SetTraining(true);
  for (int step = 0; step < 3; ++step) {
    model->Forward(RandomInput({4, 1, lengths[0]}, 50 + step, -0.5, 1.5));
  }
  model->SetTraining(false);
  for (int64_t n : {1, 7, 32}) {
    for (int64_t l : lengths) {
      nn::Tensor x = RandomInput({n, 1, l}, 7 * n + l, -0.5, 1.5);
      nn::Tensor slow = model->Forward(x);
      nn::Tensor fast = model->ForwardInference(x);
      ASSERT_TRUE(slow.SameShape(fast)) << "n=" << n << " l=" << l;
      double max_diff = 0.0;
      for (int64_t i = 0; i < slow.numel(); ++i) {
        max_diff = std::max(
            max_diff, std::abs(static_cast<double>(slow.at(i)) - fast.at(i)));
      }
      EXPECT_LT(max_diff, 1e-4)
          << BaselineName(kind) << " n=" << n << " l=" << l;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselineKinds, BaselineInferenceParity,
    ::testing::ValuesIn(AllBaselines()),
    [](const ::testing::TestParamInfo<BaselineKind>& info) {
      std::string name = BaselineName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

class BaselineGradCheck : public ::testing::TestWithParam<BaselineKind> {};

TEST_P(BaselineGradCheck, AnalyticMatchesNumeric) {
  Rng rng(4);
  auto model = MakeBaseline(GetParam(), TinyScale(), &rng);
  // BatchNorm batch statistics couple samples; gradcheck still holds since
  // the check perturbs inputs and replays the full forward.
  model->SetTraining(true);
  nn::Tensor x = RandomInput({2, 1, 32}, 5, -0.5, 0.5);
  // Deep ReLU stacks make central differences land on kinks; a small eps
  // keeps the crossing probability low (the 90% probe criterion absorbs
  // the rest).
  auto result = CheckModuleGradients(model.get(), x, 6, 3e-4);
  EXPECT_TRUE(result.ok(3e-2))
      << BaselineName(GetParam()) << ": abs=" << result.max_abs_err
      << " rel=" << result.max_rel_err;
}

// UNet-NILM is excluded from the pointwise gradcheck: its max-pools sit on
// smoothly varying conv features, so central-difference probes constantly
// flip argmax choices and measure adjacent linear pieces (~10% deviations
// that shrink with eps). Its backward pass is validated functionally by
// DescentDirection and Overfit below instead.
INSTANTIATE_TEST_SUITE_P(
    AllBaselineKinds, BaselineGradCheck,
    ::testing::Values(BaselineKind::kBiGru, BaselineKind::kCrnnStrong,
                      BaselineKind::kTpnilm, BaselineKind::kTransNilm),
    [](const ::testing::TestParamInfo<BaselineKind>& info) {
      std::string name = BaselineName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(UnetGradientTest, AnalyticGradientIsDescentDirection) {
  // Functional gradient validation: stepping against the analytic gradient
  // must reduce the loss for a small step size.
  Rng rng(4);
  BaselineScale scale;
  scale.width = 0.125;
  UnetNilm model(scale, &rng);
  model.SetTraining(true);
  nn::Tensor x = RandomInput({2, 1, 32}, 5, -0.5, 1.0);
  nn::Tensor target({2, 32});
  for (int64_t i = 0; i < target.numel(); ++i) {
    target.at(i) = rng.Bernoulli(0.3) ? 1.0f : 0.0f;
  }
  auto loss_of = [&] {
    return nn::BceWithLogits(model.Forward(x), target).value;
  };
  const double before = loss_of();
  model.ZeroGrad();
  nn::LossResult loss = nn::BceWithLogits(model.Forward(x), target);
  model.Backward(loss.grad);
  constexpr float kStep = 0.05f;
  for (auto* p : model.Parameters()) {
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      p->value.at(i) -= kStep * p->grad.at(i);
    }
  }
  EXPECT_LT(loss_of(), before);
}

TEST(UnetGradientTest, OverfitsTinyBatch) {
  Rng rng(4);
  BaselineScale scale;
  scale.width = 0.125;
  UnetNilm model(scale, &rng);
  model.SetTraining(true);
  nn::Tensor x = RandomInput({4, 1, 32}, 5, -0.5, 1.0);
  nn::Tensor target({4, 32});
  for (int64_t i = 0; i < target.numel(); ++i) {
    target.at(i) = rng.Bernoulli(0.3) ? 1.0f : 0.0f;
  }
  nn::Adam adam(model.Parameters(), 5e-3f);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 60; ++step) {
    nn::LossResult loss = nn::BceWithLogits(model.Forward(x), target);
    if (step == 0) first = loss.value;
    last = loss.value;
    adam.ZeroGrad();
    model.Backward(loss.grad);
    adam.Step();
  }
  EXPECT_LT(last, first * 0.6);
}

TEST(RegistryTest, NamesMatchPaper) {
  EXPECT_STREQ(BaselineName(BaselineKind::kUnetNilm), "Unet-NILM");
  EXPECT_STREQ(BaselineName(BaselineKind::kTpnilm), "TPNILM");
  EXPECT_STREQ(BaselineName(BaselineKind::kBiGru), "BiGRU");
  EXPECT_STREQ(BaselineName(BaselineKind::kTransNilm), "TransNILM");
  EXPECT_STREQ(BaselineName(BaselineKind::kCrnnStrong), "CRNN");
  EXPECT_STREQ(BaselineName(BaselineKind::kCrnnWeak), "CRNN Weak");
}

TEST(RegistryTest, OnlyCrnnWeakIsWeaklySupervised) {
  for (BaselineKind kind : AllBaselines()) {
    EXPECT_EQ(IsWeaklySupervised(kind), kind == BaselineKind::kCrnnWeak);
  }
}

TEST(RegistryTest, ScaleChannelsClampsAtTwo) {
  BaselineScale s;
  s.width = 0.01;
  EXPECT_EQ(s.Channels(64), 2);
  s.width = 1.0;
  EXPECT_EQ(s.Channels(64), 64);
  s.width = 0.5;
  EXPECT_EQ(s.Channels(64), 32);
}

TEST(MilTest, SequenceProbabilityPoolsTowardActiveFrames) {
  // All-low logits -> low pooled probability; one strong frame raises it.
  nn::Tensor quiet = nn::Tensor::Full({1, 10}, -4.0f);
  nn::Tensor active = quiet;
  for (int64_t t = 0; t < 5; ++t) active.at2(0, t) = 4.0f;
  const float p_quiet = MilSequenceProbability(quiet).at(0);
  const float p_active = MilSequenceProbability(active).at(0);
  EXPECT_LT(p_quiet, 0.1f);
  EXPECT_GT(p_active, 0.6f);
}

TEST(MilTest, PoolingIsBoundedByMaxFrameProbability) {
  Rng rng(3);
  nn::Tensor logits = camal::testing::RandomInput({4, 12}, 9, -3, 3);
  nn::Tensor pooled = MilSequenceProbability(logits);
  for (int64_t i = 0; i < 4; ++i) {
    float max_p = 0.0f;
    for (int64_t t = 0; t < 12; ++t) {
      max_p = std::max(max_p, nn::SigmoidScalar(logits.at2(i, t)));
    }
    EXPECT_LE(pooled.at(i), max_p + 1e-5f);
    EXPECT_GE(pooled.at(i), 0.0f);
  }
}

TEST(MilTest, WeakLossGradientMatchesNumeric) {
  nn::Tensor logits = RandomInput({3, 8}, 11, -2, 2);
  std::vector<int> labels{1, 0, 1};
  nn::LossResult res = WeakMilLoss(logits, labels);
  const double eps = 1e-3;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    nn::Tensor lp = logits, lm = logits;
    lp.at(i) += static_cast<float>(eps);
    lm.at(i) -= static_cast<float>(eps);
    const double numeric =
        (WeakMilLoss(lp, labels).value - WeakMilLoss(lm, labels).value) /
        (2 * eps);
    EXPECT_NEAR(res.grad.at(i), numeric, 2e-3);
  }
}

TEST(MilTest, LossDecreasesWhenPredictionMatchesLabel) {
  nn::Tensor positive_logits = nn::Tensor::Full({1, 8}, 3.0f);
  nn::Tensor negative_logits = nn::Tensor::Full({1, 8}, -3.0f);
  EXPECT_LT(WeakMilLoss(positive_logits, {1}).value,
            WeakMilLoss(negative_logits, {1}).value);
  EXPECT_LT(WeakMilLoss(negative_logits, {0}).value,
            WeakMilLoss(positive_logits, {0}).value);
}

TEST(ParamCountTest, FullScaleOrderingMatchesTable2) {
  // Table II ordering of trainable parameters:
  // TransNILM > Unet-NILM > CRNN > TPNILM > BiGRU.
  Rng rng(1);
  BaselineScale full;
  auto trans = MakeBaseline(BaselineKind::kTransNilm, full, &rng);
  auto unet = MakeBaseline(BaselineKind::kUnetNilm, full, &rng);
  auto crnn = MakeBaseline(BaselineKind::kCrnnStrong, full, &rng);
  auto tpnilm = MakeBaseline(BaselineKind::kTpnilm, full, &rng);
  auto bigru = MakeBaseline(BaselineKind::kBiGru, full, &rng);
  EXPECT_GT(trans->NumParameters(), unet->NumParameters());
  EXPECT_GT(unet->NumParameters(), crnn->NumParameters());
  EXPECT_GT(crnn->NumParameters(), tpnilm->NumParameters());
  EXPECT_GT(tpnilm->NumParameters(), bigru->NumParameters());
}

}  // namespace
}  // namespace camal::baselines
