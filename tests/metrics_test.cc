#include <gtest/gtest.h>

#include <cmath>

#include "metrics/classification.h"
#include "metrics/energy.h"

namespace camal::metrics {
namespace {

TEST(ClassificationTest, CountsConfusionMatrix) {
  std::vector<float> pred{1, 1, 0, 0, 1};
  std::vector<float> truth{1, 0, 0, 1, 1};
  BinaryCounts c = CountBinary(pred, truth);
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.total(), 5);
}

TEST(ClassificationTest, ThresholdAtHalf) {
  std::vector<float> pred{0.49f, 0.5f, 0.51f};
  std::vector<float> truth{0, 1, 1};
  BinaryCounts c = CountBinary(pred, truth);
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.tn, 1);
}

TEST(ClassificationTest, PerfectPrediction) {
  std::vector<float> v{1, 0, 1, 0};
  BinaryCounts c = CountBinary(v, v);
  EXPECT_DOUBLE_EQ(F1Score(c), 1.0);
  EXPECT_DOUBLE_EQ(Precision(c), 1.0);
  EXPECT_DOUBLE_EQ(Recall(c), 1.0);
  EXPECT_DOUBLE_EQ(BalancedAccuracy(c), 1.0);
}

TEST(ClassificationTest, AllWrongGivesZero) {
  std::vector<float> pred{1, 0};
  std::vector<float> truth{0, 1};
  BinaryCounts c = CountBinary(pred, truth);
  EXPECT_DOUBLE_EQ(F1Score(c), 0.0);
  EXPECT_DOUBLE_EQ(BalancedAccuracy(c), 0.0);
}

TEST(ClassificationTest, DegenerateDenominatorsAreZeroNotNan) {
  BinaryCounts c;  // all zero
  EXPECT_DOUBLE_EQ(Precision(c), 0.0);
  EXPECT_DOUBLE_EQ(Recall(c), 0.0);
  EXPECT_DOUBLE_EQ(F1Score(c), 0.0);
  EXPECT_DOUBLE_EQ(BalancedAccuracy(c), 0.0);
}

TEST(ClassificationTest, KnownF1Value) {
  BinaryCounts c;
  c.tp = 6;
  c.fp = 2;
  c.fn = 2;
  c.tn = 10;
  // Pr = Rc = 0.75 -> F1 = 0.75
  EXPECT_DOUBLE_EQ(F1Score(c), 0.75);
}

TEST(ClassificationTest, BalancedAccuracyHandlesImbalance) {
  // Majority-negative data: predicting all negative gives BA = 0.5.
  std::vector<float> pred(100, 0.0f);
  std::vector<float> truth(100, 0.0f);
  truth[0] = truth[1] = 1.0f;
  BinaryCounts c = CountBinary(pred, truth);
  EXPECT_DOUBLE_EQ(BalancedAccuracy(c), 0.5);
}

TEST(ClassificationTest, MergeAddsCounts) {
  BinaryCounts a{1, 2, 3, 4};
  BinaryCounts b{10, 20, 30, 40};
  a.Merge(b);
  EXPECT_EQ(a.tp, 11);
  EXPECT_EQ(a.fp, 22);
  EXPECT_EQ(a.tn, 33);
  EXPECT_EQ(a.fn, 44);
}

TEST(EnergyTest, MaeAndRmseKnownValues) {
  std::vector<float> pred{1, 2, 3};
  std::vector<float> truth{2, 2, 5};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(pred, truth), 1.0);
  EXPECT_NEAR(RootMeanSquareError(pred, truth), std::sqrt(5.0 / 3.0), 1e-9);
}

TEST(EnergyTest, PerfectEstimateGivesZeroErrorAndUnitMr) {
  std::vector<float> v{100, 0, 800, 800, 0};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(v, v), 0.0);
  EXPECT_DOUBLE_EQ(RootMeanSquareError(v, v), 0.0);
  EXPECT_DOUBLE_EQ(MatchingRatio(v, v), 1.0);
}

TEST(EnergyTest, MatchingRatioDefinition) {
  std::vector<float> pred{100, 0};
  std::vector<float> truth{50, 50};
  // min: 50 + 0 = 50; max: 100 + 50 = 150.
  EXPECT_NEAR(MatchingRatio(pred, truth), 50.0 / 150.0, 1e-9);
}

TEST(EnergyTest, MatchingRatioAllZeroIsZero) {
  std::vector<float> z{0, 0, 0};
  EXPECT_DOUBLE_EQ(MatchingRatio(z, z), 0.0);
}

TEST(EnergyTest, NoOverlapGivesZeroMr) {
  std::vector<float> pred{100, 0};
  std::vector<float> truth{0, 100};
  EXPECT_DOUBLE_EQ(MatchingRatio(pred, truth), 0.0);
}

}  // namespace
}  // namespace camal::metrics
