#include <gtest/gtest.h>

#include <cmath>

#include "simulate/base_load.h"
#include "simulate/household.h"
#include "simulate/profiles.h"
#include "simulate/signature.h"

namespace camal::simulate {
namespace {

TEST(SignatureTest, SpecsMatchPaperTable1) {
  EXPECT_EQ(SpecFor(ApplianceType::kDishwasher).on_threshold_w, 300.0f);
  EXPECT_EQ(SpecFor(ApplianceType::kDishwasher).avg_power_w, 800.0f);
  EXPECT_EQ(SpecFor(ApplianceType::kKettle).on_threshold_w, 500.0f);
  EXPECT_EQ(SpecFor(ApplianceType::kKettle).avg_power_w, 2000.0f);
  EXPECT_EQ(SpecFor(ApplianceType::kMicrowave).on_threshold_w, 200.0f);
  EXPECT_EQ(SpecFor(ApplianceType::kShower).avg_power_w, 8000.0f);
  EXPECT_EQ(SpecFor(ApplianceType::kElectricVehicle).on_threshold_w, 1000.0f);
}

TEST(SignatureTest, NamesAreStable) {
  EXPECT_STREQ(ApplianceName(ApplianceType::kWashingMachine),
               "washing_machine");
  EXPECT_STREQ(ApplianceName(ApplianceType::kElectricVehicle),
               "electric_vehicle");
}

class SignatureShapes : public ::testing::TestWithParam<ApplianceType> {};

TEST_P(SignatureShapes, ActivationExceedsOnThresholdSomewhere) {
  Rng rng(11);
  const ApplianceType type = GetParam();
  const data::ApplianceSpec spec = SpecFor(type);
  for (int trial = 0; trial < 10; ++trial) {
    auto profile = GenerateActivation(type, 60.0, &rng);
    ASSERT_FALSE(profile.empty());
    float peak = 0.0f;
    for (float v : profile) {
      EXPECT_GE(v, 0.0f);
      peak = std::max(peak, v);
    }
    EXPECT_GT(peak, spec.on_threshold_w)
        << "activation never crosses its ON threshold";
  }
}

TEST_P(SignatureShapes, DurationScalesWithInterval) {
  Rng rng1(3), rng2(3);
  const ApplianceType type = GetParam();
  auto fine = GenerateActivation(type, 60.0, &rng1);
  auto coarse = GenerateActivation(type, 600.0, &rng2);
  EXPECT_GE(fine.size(), coarse.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllAppliances, SignatureShapes,
    ::testing::Values(ApplianceType::kDishwasher, ApplianceType::kKettle,
                      ApplianceType::kMicrowave,
                      ApplianceType::kWashingMachine, ApplianceType::kShower,
                      ApplianceType::kElectricVehicle),
    [](const ::testing::TestParamInfo<ApplianceType>& info) {
      return ApplianceName(info.param);
    });

TEST(SignatureTest, KettleIsShortAndHot) {
  Rng rng(5);
  auto profile = GenerateActivation(ApplianceType::kKettle, 60.0, &rng);
  EXPECT_LE(profile.size(), 6u);  // at most ~5 minutes
  EXPECT_GT(profile[0], 1500.0f);
}

TEST(SignatureTest, EvChargeIsLong) {
  Rng rng(5);
  auto profile =
      GenerateActivation(ApplianceType::kElectricVehicle, 1800.0, &rng);
  EXPECT_GE(profile.size(), 2u);  // at least an hour at 30-min sampling
}

TEST(SignatureTest, UsageWeightsArePositiveAndDiurnal) {
  for (ApplianceType type :
       {ApplianceType::kKettle, ApplianceType::kElectricVehicle}) {
    for (double h = 0.0; h < 24.0; h += 1.0) {
      EXPECT_GT(UsageWeightAtHour(type, h), 0.0);
    }
  }
  // Kettle peaks at breakfast relative to 3am.
  EXPECT_GT(UsageWeightAtHour(ApplianceType::kKettle, 7.5),
            UsageWeightAtHour(ApplianceType::kKettle, 3.0));
  // EV peaks at night relative to noon.
  EXPECT_GT(UsageWeightAtHour(ApplianceType::kElectricVehicle, 23.0),
            UsageWeightAtHour(ApplianceType::kElectricVehicle, 12.0));
}

TEST(BaseLoadTest, NonNegativeAndRoughlyCalibrated) {
  Rng rng(7);
  BaseLoadConfig config;
  config.distractor_rate_per_day = 0.0;  // isolate the deterministic parts
  auto load = GenerateBaseLoad(1440, 60.0, config, &rng);
  ASSERT_EQ(load.size(), 1440u);
  double mean = 0.0;
  for (float v : load) {
    EXPECT_GE(v, 0.0f);
    mean += v;
  }
  mean /= 1440.0;
  // standby + fridge duty + some lighting: order of 100 W.
  EXPECT_GT(mean, 50.0);
  EXPECT_LT(mean, 400.0);
}

TEST(BaseLoadTest, DistractorsAddPower) {
  Rng rng1(7), rng2(7);
  BaseLoadConfig quiet;
  quiet.distractor_rate_per_day = 0.0;
  BaseLoadConfig busy;
  busy.distractor_rate_per_day = 40.0;
  auto a = GenerateBaseLoad(1440, 60.0, quiet, &rng1);
  auto b = GenerateBaseLoad(1440, 60.0, busy, &rng2);
  double sum_a = 0.0, sum_b = 0.0;
  for (float v : a) sum_a += v;
  for (float v : b) sum_b += v;
  EXPECT_GT(sum_b, sum_a);
}

TEST(HouseholdTest, AggregateContainsApplianceTrace) {
  HouseholdConfig config;
  config.house_id = 42;
  config.interval_seconds = 60.0;
  config.days = 3.0;
  config.appliances.push_back({ApplianceType::kKettle, 4.0, true});
  Rng rng(13);
  data::HouseRecord house = SimulateHousehold(config, &rng);
  EXPECT_EQ(house.house_id, 42);
  EXPECT_EQ(house.aggregate.size(), static_cast<size_t>(3 * 1440));
  ASSERT_EQ(house.appliances.size(), 1u);
  const auto& trace = house.appliances[0];
  EXPECT_EQ(trace.name, "kettle");
  // Appliance power is part of the aggregate: aggregate >= trace wherever
  // no reading is missing.
  double trace_energy = 0.0;
  for (size_t t = 0; t < trace.power.size(); ++t) {
    trace_energy += trace.power[t];
    if (!data::IsMissing(house.aggregate[t])) {
      EXPECT_GE(house.aggregate[t] + 1e-3f, trace.power[t]);
    }
  }
  EXPECT_GT(trace_energy, 0.0);
  EXPECT_TRUE(house.Owns("kettle"));
  EXPECT_FALSE(house.Owns("shower"));
}

TEST(HouseholdTest, PossessionOnlyHouseHasNoTrace) {
  HouseholdConfig config;
  config.days = 2.0;
  config.appliances.push_back({ApplianceType::kDishwasher, 1.0, false});
  Rng rng(3);
  data::HouseRecord house = SimulateHousehold(config, &rng);
  EXPECT_TRUE(house.appliances.empty());
  EXPECT_TRUE(house.Owns("dishwasher"));
  EXPECT_EQ(house.FindAppliance("dishwasher"), nullptr);
}

TEST(HouseholdTest, MissingFractionInjectsGaps) {
  HouseholdConfig config;
  config.days = 2.0;
  config.missing_fraction = 0.05;
  Rng rng(3);
  data::HouseRecord house = SimulateHousehold(config, &rng);
  int64_t missing = 0;
  for (float v : house.aggregate) missing += data::IsMissing(v) ? 1 : 0;
  const double frac = static_cast<double>(missing) /
                      static_cast<double>(house.aggregate.size());
  EXPECT_NEAR(frac, 0.05, 0.01);
}

TEST(HouseholdTest, DeterministicGivenSeed) {
  HouseholdConfig config;
  config.days = 1.0;
  config.appliances.push_back({ApplianceType::kMicrowave, 2.0, true});
  Rng rng1(77), rng2(77);
  auto a = SimulateHousehold(config, &rng1);
  auto b = SimulateHousehold(config, &rng2);
  ASSERT_EQ(a.aggregate.size(), b.aggregate.size());
  for (size_t i = 0; i < a.aggregate.size(); ++i) {
    if (data::IsMissing(a.aggregate[i])) {
      EXPECT_TRUE(data::IsMissing(b.aggregate[i]));
    } else {
      EXPECT_FLOAT_EQ(a.aggregate[i], b.aggregate[i]);
    }
  }
}

TEST(ProfilesTest, TableOneStructure) {
  EXPECT_EQ(UkdaleProfile().num_submetered_houses, 5);
  EXPECT_EQ(RefitProfile().num_submetered_houses, 20);
  EXPECT_EQ(IdealProfile().num_submetered_houses, 39);
  EXPECT_EQ(IdealProfile().num_possession_only, 216);
  EXPECT_EQ(EdfEvProfile().interval_seconds, 1800.0);
  EXPECT_EQ(EdfWeakProfile().num_possession_only, 558);
  EXPECT_EQ(AllEvaluationProfiles().size(), 4u);
}

TEST(ProfilesTest, ScaleShrinksCohort) {
  auto small = SimulateDataset(RefitProfile(), 0.1, 42);
  EXPECT_GE(small.size(), 2u);
  EXPECT_LE(small.size(), 20u);
}

TEST(ProfilesTest, PossessionOnlyHousesLackTraces) {
  auto houses = SimulateDataset(IdealProfile(), 0.05, 42);
  int with_trace = 0, possession_only = 0;
  for (const auto& h : houses) {
    if (h.appliances.empty()) {
      ++possession_only;
    } else {
      ++with_trace;
    }
  }
  EXPECT_GT(with_trace, 0);
  EXPECT_GT(possession_only, 0);
}

TEST(ProfilesTest, DeterministicForSeed) {
  auto a = SimulateDataset(UkdaleProfile(), 0.5, 9);
  auto b = SimulateDataset(UkdaleProfile(), 0.5, 9);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].aggregate.size(), b[i].aggregate.size());
    EXPECT_EQ(a[i].owned_appliances, b[i].owned_appliances);
  }
}

}  // namespace
}  // namespace camal::simulate
