#ifndef CAMAL_TESTS_GRADCHECK_H_
#define CAMAL_TESTS_GRADCHECK_H_

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"

namespace camal::testing {

/// Result of a gradient check over many probed coordinates.
///
/// ok(tol) passes when at least 90% of probes agree within `tol` (absolute
/// OR relative): piecewise-linear layers (ReLU, max-pool) make isolated
/// central-difference probes land on kinks where the numeric estimate is
/// legitimately wrong, so a strict max over probes would reject correct
/// backward passes. A genuine backward bug fails the majority of probes.
struct GradCheckResult {
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  std::vector<double> probe_errors;  ///< min(abs, rel) per probe

  bool ok(double tol) const {
    if (probe_errors.empty()) return true;
    size_t within = 0;
    for (double e : probe_errors) {
      if (e < tol) ++within;
    }
    return within * 10 >= probe_errors.size() * 9;
  }
};

/// Checks a module's input gradient and all parameter gradients against
/// central differences of the scalar projection loss
///   L = sum_i w_i * Forward(x)_i
/// for fixed random projection weights w. The module must be in a
/// deterministic mode (no dropout randomness between calls).
inline GradCheckResult CheckModuleGradients(nn::Module* module,
                                            const nn::Tensor& input,
                                            uint64_t seed,
                                            double eps = 1e-3) {
  Rng rng(seed);
  nn::Tensor x = input;

  // Fixed projection weights define the scalar loss.
  nn::Tensor first_out = module->Forward(x);
  nn::Tensor proj(first_out.shape());
  for (int64_t i = 0; i < proj.numel(); ++i) {
    proj.at(i) = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  auto loss_of = [&](const nn::Tensor& in) {
    nn::Tensor out = module->Forward(in);
    double total = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i) {
      total += static_cast<double>(out.at(i)) * proj.at(i);
    }
    return total;
  };

  // Analytic gradients.
  module->ZeroGrad();
  module->Forward(x);
  nn::Tensor grad_input = module->Backward(proj);

  GradCheckResult result;
  auto compare = [&](double analytic, double numeric) {
    const double abs_err = std::fabs(analytic - numeric);
    const double denom =
        std::max(1.0, std::max(std::fabs(analytic), std::fabs(numeric)));
    result.max_abs_err = std::max(result.max_abs_err, abs_err);
    result.max_rel_err = std::max(result.max_rel_err, abs_err / denom);
    result.probe_errors.push_back(std::min(abs_err, abs_err / denom));
  };

  // Input gradient: probe a bounded number of coordinates.
  const int64_t input_probes = std::min<int64_t>(x.numel(), 24);
  for (int64_t p = 0; p < input_probes; ++p) {
    const int64_t i = x.numel() <= 24
                          ? p
                          : rng.UniformInt(0, x.numel() - 1);
    nn::Tensor xp = x, xm = x;
    xp.at(i) += static_cast<float>(eps);
    xm.at(i) -= static_cast<float>(eps);
    const double numeric = (loss_of(xp) - loss_of(xm)) / (2.0 * eps);
    compare(grad_input.at(i), numeric);
  }

  // Parameter gradients: probe a few coordinates of every parameter.
  for (nn::Parameter* param : module->Parameters()) {
    const int64_t probes = std::min<int64_t>(param->value.numel(), 8);
    for (int64_t p = 0; p < probes; ++p) {
      const int64_t i = param->value.numel() <= 8
                            ? p
                            : rng.UniformInt(0, param->value.numel() - 1);
      const float saved = param->value.at(i);
      param->value.at(i) = saved + static_cast<float>(eps);
      const double lp = loss_of(x);
      param->value.at(i) = saved - static_cast<float>(eps);
      const double lm = loss_of(x);
      param->value.at(i) = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      compare(param->grad.at(i), numeric);
    }
  }
  return result;
}

/// Random (N, C, L) input tensor with values in [lo, hi).
inline nn::Tensor RandomInput(std::vector<int64_t> shape, uint64_t seed,
                              double lo = -1.0, double hi = 1.0) {
  Rng rng(seed);
  nn::Tensor x(std::move(shape));
  for (int64_t i = 0; i < x.numel(); ++i) {
    x.at(i) = static_cast<float>(rng.Uniform(lo, hi));
  }
  return x;
}

}  // namespace camal::testing

#endif  // CAMAL_TESTS_GRADCHECK_H_
