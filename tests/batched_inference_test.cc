#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/ensemble.h"
#include "core/resnet.h"
#include "nn/activations.h"
#include "nn/batchnorm1d.h"
#include "nn/conv1d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "nn/tensor.h"

namespace camal {
namespace {

nn::Tensor RandomTensor(std::vector<int64_t> shape, Rng* rng) {
  nn::Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng->Uniform(-1.0, 1.0));
  }
  return t;
}

double MaxAbsDiff(const nn::Tensor& a, const nn::Tensor& b) {
  EXPECT_TRUE(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  double max_diff = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(a.at(i)) - b.at(i)));
  }
  return max_diff;
}

TEST(GemmTest, MatchesNaiveProduct) {
  Rng rng(11);
  for (auto [m, k, n] : {std::tuple<int64_t, int64_t, int64_t>{1, 1, 1},
                         {3, 5, 7},
                         {4, 8, 8},
                         {9, 17, 23},
                         {32, 112, 128}}) {
    nn::Tensor a = RandomTensor({m, k}, &rng);
    nn::Tensor b = RandomTensor({k, n}, &rng);
    nn::Tensor fast = nn::MatMul(a, b);
    nn::Tensor naive({m, n});
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        for (int64_t j = 0; j < n; ++j) {
          naive.at2(i, j) += a.at2(i, p) * b.at2(p, j);
        }
      }
    }
    EXPECT_LT(MaxAbsDiff(fast, naive), 1e-4)
        << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(Conv1dInferenceTest, AgreesWithForwardAcrossGeometries) {
  Rng rng(5);
  struct Geometry {
    int64_t cin, cout, k, stride, padding, dilation;
  };
  for (const Geometry& g : {Geometry{1, 4, 7, 1, 3, 1},
                            Geometry{3, 8, 5, 1, 2, 1},
                            Geometry{4, 6, 3, 2, 1, 1},
                            Geometry{2, 5, 3, 1, 2, 2},
                            Geometry{8, 16, 1, 1, 0, 1}}) {
    nn::Conv1dOptions opt;
    opt.in_channels = g.cin;
    opt.out_channels = g.cout;
    opt.kernel_size = g.k;
    opt.stride = g.stride;
    opt.padding = g.padding;
    opt.dilation = g.dilation;
    nn::Conv1d conv(opt, &rng);
    nn::Tensor x = RandomTensor({3, g.cin, 40}, &rng);
    nn::Tensor slow = conv.Forward(x);
    nn::Tensor fast = conv.ForwardInference(x);
    EXPECT_LT(MaxAbsDiff(slow, fast), 1e-5)
        << "cin=" << g.cin << " k=" << g.k << " stride=" << g.stride
        << " dil=" << g.dilation;
  }
}

TEST(Conv1dInferenceTest, StridedDilatedParityAcrossBatchesAndLengths) {
  // The generalized implicit-im2col kernel serves every geometry; sweep
  // stride/dilation combinations over batch sizes {1, 7, 32} and odd
  // input lengths (partial tiles, short outputs, output tails).
  Rng rng(17);
  struct Geometry {
    int64_t cin, cout, k, stride, padding, dilation;
  };
  for (const Geometry& g : {Geometry{2, 5, 3, 2, 1, 1},
                            Geometry{3, 4, 3, 3, 0, 1},
                            Geometry{2, 6, 3, 1, 3, 3},
                            Geometry{4, 7, 5, 2, 4, 2},
                            Geometry{1, 3, 4, 3, 2, 2},
                            Geometry{5, 2, 1, 2, 0, 1}}) {
    nn::Conv1dOptions opt;
    opt.in_channels = g.cin;
    opt.out_channels = g.cout;
    opt.kernel_size = g.k;
    opt.stride = g.stride;
    opt.padding = g.padding;
    opt.dilation = g.dilation;
    nn::Conv1d conv(opt, &rng);
    for (int64_t n : {1, 7, 32}) {
      for (int64_t lin : {17, 33, 41}) {
        if (conv.OutputLength(lin) <= 0) continue;
        nn::Tensor x = RandomTensor({n, g.cin, lin}, &rng);
        nn::Tensor slow = conv.Forward(x);
        nn::Tensor fast = conv.ForwardInference(x);
        EXPECT_LT(MaxAbsDiff(slow, fast), 1e-4)
            << "n=" << n << " lin=" << lin << " k=" << g.k
            << " stride=" << g.stride << " dil=" << g.dilation;
      }
    }
  }
}

TEST(Conv1dInferenceTest, StridedResultsAreBatchCompositionInvariant) {
  // Serving coalesces windows from different requests into shared
  // batches; per-sample outputs must be bitwise-independent of what else
  // rides in the batch — now also for strided/dilated geometries.
  Rng rng(19);
  nn::Conv1dOptions opt;
  opt.in_channels = 3;
  opt.out_channels = 6;
  opt.kernel_size = 3;
  opt.stride = 2;
  opt.padding = 2;
  opt.dilation = 2;
  nn::Conv1d conv(opt, &rng);
  const int64_t n = 5, lin = 39;
  nn::Tensor batch = RandomTensor({n, 3, lin}, &rng);
  nn::Tensor batched = conv.ForwardInference(batch);
  for (int64_t i = 0; i < n; ++i) {
    nn::Tensor one({1, 3, lin});
    for (int64_t c = 0; c < 3; ++c) {
      for (int64_t t = 0; t < lin; ++t) one.at3(0, c, t) = batch.at3(i, c, t);
    }
    nn::Tensor single = conv.ForwardInference(one);
    for (int64_t j = 0; j < single.numel(); ++j) {
      EXPECT_EQ(single.at(j), batched.at(i * single.numel() + j))
          << "sample " << i << " flat index " << j;
    }
  }
}

// Drives BatchNorm running statistics away from the identity so the
// fused affine is non-trivial.
void WarmBatchNorm(nn::BatchNorm1d* bn, int64_t channels, Rng* rng) {
  bn->SetTraining(true);
  for (int step = 0; step < 4; ++step) {
    bn->Forward(RandomTensor({5, channels, 12}, rng));
  }
  bn->SetTraining(false);
}

TEST(FusedPoolTest, MaxPoolEpilogueMatchesSeparatePoolBitwise) {
  // Conv+BN+ReLU+MaxPool(2,2) through Sequential::ForwardInference (one
  // fused GEMM-with-pool pass) vs the same fused conv followed by a
  // separate pool layer: identical to the last ULP, for even and odd
  // (remainder-dropping) input lengths.
  Rng rng(23);
  auto seq = std::make_unique<nn::Sequential>();
  nn::Conv1dOptions opt;
  opt.in_channels = 3;
  opt.out_channels = 9;
  opt.kernel_size = 3;
  opt.padding = opt.SamePadding();
  opt.bias = false;
  auto* conv = seq->Add(std::make_unique<nn::Conv1d>(opt, &rng));
  auto* bn = seq->Add(std::make_unique<nn::BatchNorm1d>(9));
  seq->Add(std::make_unique<nn::ReLU>());
  auto* pool = seq->Add(std::make_unique<nn::MaxPool1d>(2, 2));
  WarmBatchNorm(bn, 9, &rng);
  seq->SetTraining(false);
  for (int64_t lin : {40, 37}) {
    nn::Tensor x = RandomTensor({4, 3, lin}, &rng);
    nn::Tensor fused = seq->ForwardInference(x);
    std::vector<float> scale, shift;
    bn->FusedAffine(&scale, &shift);
    nn::Tensor unpooled = conv->ForwardInferenceFused(
        x, scale.data(), shift.data(), /*fuse_relu=*/true);
    nn::Tensor separate = pool->ForwardInference(unpooled);
    ASSERT_TRUE(fused.SameShape(separate)) << "lin=" << lin;
    EXPECT_EQ(MaxAbsDiff(fused, separate), 0.0) << "lin=" << lin;
    // Anchor against the unfused training path too (eval mode).
    EXPECT_LT(MaxAbsDiff(fused, seq->Forward(x)), 1e-4) << "lin=" << lin;
  }
}

TEST(FusedPoolTest, AvgPoolEpilogueMatchesSeparatePoolBitwise) {
  // Conv(bias)+ReLU+AvgPool(w, w) across the tile-dividing windows the
  // fusion admits (odd input length exercises the dropped remainder).
  Rng rng(29);
  for (int64_t pw : {2, 4, 8}) {
    auto seq = std::make_unique<nn::Sequential>();
    nn::Conv1dOptions opt;
    opt.in_channels = 2;
    opt.out_channels = 5;
    opt.kernel_size = 5;
    opt.padding = opt.SamePadding();
    auto* conv = seq->Add(std::make_unique<nn::Conv1d>(opt, &rng));
    seq->Add(std::make_unique<nn::ReLU>());
    auto* pool =
        seq->Add(std::make_unique<nn::AvgPool1d>(pw, pw));
    seq->SetTraining(false);
    nn::Tensor x = RandomTensor({3, 2, 38}, &rng);
    nn::Tensor fused = seq->ForwardInference(x);
    nn::Tensor unpooled = conv->ForwardInferenceFused(
        x, /*channel_scale=*/nullptr, /*channel_shift=*/nullptr,
        /*fuse_relu=*/true);
    nn::Tensor separate = pool->ForwardInference(unpooled);
    ASSERT_TRUE(fused.SameShape(separate)) << "pw=" << pw;
    EXPECT_EQ(MaxAbsDiff(fused, separate), 0.0) << "pw=" << pw;
    EXPECT_LT(MaxAbsDiff(fused, seq->Forward(x)), 1e-4) << "pw=" << pw;
  }
}

TEST(FusedPoolTest, SupportedPoolWindowsDivideEveryTileTier) {
  EXPECT_FALSE(nn::ConvGemmSupportsPool(1));
  EXPECT_TRUE(nn::ConvGemmSupportsPool(2));
  EXPECT_FALSE(nn::ConvGemmSupportsPool(3));  // correct, but not bitwise
  EXPECT_TRUE(nn::ConvGemmSupportsPool(4));
  EXPECT_TRUE(nn::ConvGemmSupportsPool(8));
  EXPECT_TRUE(nn::ConvGemmSupportsPool(16));
  EXPECT_FALSE(nn::ConvGemmSupportsPool(17));
}

TEST(FusedPoolTest, KernelHandlesNonDividingWindowsToRounding) {
  // Pool windows that do not divide the tile width are not offered to
  // the layer fusion (no bitwise guarantee), but the kernel itself must
  // still produce the right values: check a 3-wide average pool against
  // a manual conv-then-pool reference.
  Rng rng(31);
  const int64_t cin = 2, cout = 5, kernel = 5, lpad = 42, pw = 3;
  nn::Tensor w = RandomTensor({cout, cin * kernel}, &rng);
  nn::Tensor xpad = RandomTensor({cin, lpad}, &rng);
  const int64_t lout = lpad - kernel + 1;
  nn::Tensor conv = nn::Tensor::Uninitialized({cout, lout});
  nn::ConvGemmParams p;
  p.cout = cout;
  p.cin = cin;
  p.kernel = kernel;
  p.lpad = lpad;
  p.relu = true;
  nn::ConvGemmEpilogue(w.data(), xpad.data(), conv.data(), p);
  const int64_t lpool = lout / pw;
  nn::Tensor fused = nn::Tensor::Uninitialized({cout, lpool});
  p.pool = nn::ConvPool::kAvg;
  p.pool_size = pw;
  nn::ConvGemmEpilogue(w.data(), xpad.data(), fused.data(), p);
  const float inv = 1.0f / static_cast<float>(pw);
  for (int64_t c = 0; c < cout; ++c) {
    for (int64_t g = 0; g < lpool; ++g) {
      float acc = 0.0f;
      for (int64_t r = 0; r < pw; ++r) acc += conv.at2(c, g * pw + r);
      EXPECT_NEAR(fused.at2(c, g), acc * inv, 1e-5)
          << "row " << c << " group " << g;
    }
  }
}

TEST(Conv1dInferenceTest, NoBiasAndSingleSample) {
  Rng rng(6);
  nn::Conv1dOptions opt;
  opt.in_channels = 2;
  opt.out_channels = 3;
  opt.kernel_size = 5;
  opt.padding = opt.SamePadding();
  opt.bias = false;
  nn::Conv1d conv(opt, &rng);
  nn::Tensor x = RandomTensor({1, 2, 17}, &rng);
  EXPECT_LT(MaxAbsDiff(conv.Forward(x), conv.ForwardInference(x)), 1e-5);
}

TEST(BatchNormInferenceTest, EvalModeAgreesWithForward) {
  Rng rng(7);
  nn::BatchNorm1d bn(4);
  // Drive the running statistics away from the identity first.
  bn.SetTraining(true);
  for (int step = 0; step < 5; ++step) {
    bn.Forward(RandomTensor({6, 4, 10}, &rng));
  }
  bn.SetTraining(false);
  nn::Tensor x = RandomTensor({3, 4, 10}, &rng);
  EXPECT_LT(MaxAbsDiff(bn.Forward(x), bn.ForwardInference(x)), 1e-5);
}

TEST(BatchNormInferenceTest, TrainingModeFallsBackToForward) {
  Rng rng(8);
  nn::BatchNorm1d reference(2);
  nn::BatchNorm1d inference(2);
  nn::Tensor x = RandomTensor({4, 2, 8}, &rng);
  reference.SetTraining(true);
  inference.SetTraining(true);
  nn::Tensor a = reference.Forward(x);
  nn::Tensor b = inference.ForwardInference(x);
  EXPECT_LT(MaxAbsDiff(a, b), 1e-6);
  // Running statistics must update on the fallback path too.
  EXPECT_LT(MaxAbsDiff(reference.running_mean(), inference.running_mean()),
            1e-6);
}

TEST(LinearInferenceTest, AgreesWithForward) {
  Rng rng(9);
  nn::Linear linear(6, 3, /*bias=*/true, &rng);
  nn::Tensor x = RandomTensor({5, 6}, &rng);
  EXPECT_LT(MaxAbsDiff(linear.Forward(x), linear.ForwardInference(x)), 1e-6);
}

TEST(ResNetInferenceTest, LogitsAgreeWithTrainingForward) {
  Rng rng(10);
  core::ResNetConfig config;
  config.base_filters = 8;
  config.kernel_size = 7;
  core::ResNetClassifier model(config, &rng);
  model.SetTraining(false);
  nn::Tensor x = RandomTensor({4, 1, 32}, &rng);
  nn::Tensor slow = model.Forward(x);
  nn::Tensor slow_features = model.feature_maps();
  nn::Tensor fast = model.ForwardInference(x);
  EXPECT_LT(MaxAbsDiff(slow, fast), 1e-4);
  // CAM extraction depends on the cached feature maps matching too.
  EXPECT_LT(MaxAbsDiff(slow_features, model.feature_maps()), 1e-4);
}

TEST(ResNetInferenceTest, BatchedMatchesSingleWindowLoop) {
  Rng rng(12);
  core::ResNetConfig config;
  config.base_filters = 8;
  core::ResNetClassifier model(config, &rng);
  model.SetTraining(false);
  const int64_t n = 6, l = 32;
  nn::Tensor batch = RandomTensor({n, 1, l}, &rng);
  nn::Tensor batched = model.ForwardInference(batch);
  for (int64_t i = 0; i < n; ++i) {
    nn::Tensor window({1, 1, l});
    for (int64_t t = 0; t < l; ++t) window.at3(0, 0, t) = batch.at3(i, 0, t);
    nn::Tensor single = model.Forward(window);
    for (int64_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(single.at2(0, c), batched.at2(i, c), 1e-4)
          << "window " << i << " class " << c;
    }
  }
}

TEST(EnsembleInferenceTest, BatchedProbabilityMatchesTrainingPath) {
  Rng rng(13);
  std::vector<core::EnsembleMember> members;
  for (int64_t k : {5, 9}) {
    core::ResNetConfig config;
    config.base_filters = 4;
    config.kernel_size = k;
    core::EnsembleMember member;
    member.model = std::make_unique<core::ResNetClassifier>(config, &rng);
    member.kernel_size = k;
    members.push_back(std::move(member));
  }
  core::CamalEnsemble ensemble =
      core::CamalEnsemble::FromMembers(std::move(members));
  nn::Tensor x = RandomTensor({8, 1, 24}, &rng);
  nn::Tensor reference = ensemble.DetectProbability(x);
  nn::Tensor batched = ensemble.DetectProbabilityBatched(x);
  EXPECT_LT(MaxAbsDiff(reference, batched), 1e-4);
}

}  // namespace
}  // namespace camal
