#include <gtest/gtest.h>

#include <cstdlib>

#include "baselines/crnn.h"
#include "eval/bench_mode.h"
#include "eval/cost_model.h"
#include "eval/experiment.h"
#include "eval/label_budget.h"
#include "eval/trainer.h"

namespace camal::eval {
namespace {

// Easy separable dataset shared by the trainer tests.
data::WindowDataset MakePulseDataset(int64_t n, int64_t l, uint64_t seed) {
  Rng rng(seed);
  data::WindowDataset ds;
  ds.window_length = l;
  ds.appliance = {"pulse", 300.0f, 800.0f};
  ds.inputs = nn::Tensor({n, 1, l});
  ds.status = nn::Tensor({n, l});
  ds.appliance_power = nn::Tensor({n, l});
  for (int64_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    for (int64_t t = 0; t < l; ++t) {
      ds.inputs.at3(i, 0, t) =
          0.1f + static_cast<float>(rng.Gaussian(0.0, 0.02));
    }
    if (positive) {
      const int64_t start = rng.UniformInt(0, l - 9);
      for (int64_t t = start; t < start + 8; ++t) {
        ds.inputs.at3(i, 0, t) += 0.8f;
        ds.status.at2(i, t) = 1.0f;
        ds.appliance_power.at2(i, t) = 800.0f;
      }
    }
    ds.weak_labels.push_back(positive ? 1 : 0);
    ds.house_ids.push_back(static_cast<int>(i % 4));
  }
  return ds;
}

TrainConfig TinyTrain() {
  TrainConfig c;
  c.max_epochs = 6;
  c.batch_size = 16;
  c.patience = 3;
  return c;
}

TEST(TrainerTest, StrongTrainingReducesFrameLoss) {
  data::WindowDataset train = MakePulseDataset(48, 32, 1);
  data::WindowDataset valid = MakePulseDataset(16, 32, 2);
  Rng rng(1);
  baselines::BaselineScale scale;
  scale.width = 0.125;
  auto model = baselines::MakeBaseline(baselines::BaselineKind::kTpnilm,
                                       scale, &rng);
  const double before = EvaluateFrameLoss(model.get(), valid);
  TrainStats stats = TrainStrongModel(model.get(), train, valid, TinyTrain());
  const double after = EvaluateFrameLoss(model.get(), valid);
  EXPECT_LT(after, before);
  EXPECT_GT(stats.epochs_run, 0);
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_NEAR(stats.seconds_per_epoch * stats.epochs_run, stats.total_seconds,
              stats.total_seconds * 0.5);
}

TEST(TrainerTest, WeakMilTrainingImprovesDetection) {
  data::WindowDataset train = MakePulseDataset(48, 32, 1);
  data::WindowDataset valid = MakePulseDataset(16, 32, 2);
  data::WindowDataset test = MakePulseDataset(16, 32, 3);
  Rng rng(1);
  baselines::BaselineScale scale;
  scale.width = 0.125;
  auto model = baselines::MakeBaseline(baselines::BaselineKind::kCrnnWeak,
                                       scale, &rng);
  TrainWeakMilModel(model.get(), train, valid, TinyTrain());
  nn::Tensor frame = PredictFrameProbabilities(model.get(), test);
  nn::Tensor pooled = baselines::MilSequenceProbability(
      frame.Reshape({test.size(), test.window_length}));
  // Pooled probability of positives should exceed negatives on average.
  double pos = 0.0, neg = 0.0;
  int64_t n_pos = 0, n_neg = 0;
  for (int64_t i = 0; i < test.size(); ++i) {
    // PredictFrameProbabilities returns probabilities, so re-pool manually:
    double sum_p = 0.0, sum_p2 = 0.0;
    for (int64_t t = 0; t < test.window_length; ++t) {
      const double p = frame.at2(i, t);
      sum_p += p;
      sum_p2 += p * p;
    }
    const double seq = sum_p > 1e-9 ? sum_p2 / sum_p : 0.0;
    if (test.weak_labels[static_cast<size_t>(i)] == 1) {
      pos += seq;
      ++n_pos;
    } else {
      neg += seq;
      ++n_neg;
    }
  }
  (void)pooled;
  EXPECT_GT(pos / n_pos, neg / n_neg);
}

TEST(TrainerTest, SoftTargetTrainingMatchesTargets) {
  data::WindowDataset train = MakePulseDataset(32, 32, 1);
  data::WindowDataset valid = MakePulseDataset(16, 32, 2);
  // Use the ground truth itself as "soft" targets; training should fit it.
  Rng rng(1);
  baselines::BaselineScale scale;
  scale.width = 0.125;
  auto model = baselines::MakeBaseline(baselines::BaselineKind::kBiGru,
                                       scale, &rng);
  const double before = EvaluateFrameLoss(model.get(), valid);
  TrainWithSoftTargets(model.get(), train, train.status, valid, TinyTrain());
  const double after = EvaluateFrameLoss(model.get(), valid);
  EXPECT_LT(after, before);
}

TEST(TrainerTest, PredictFrameProbabilitiesInUnitInterval) {
  data::WindowDataset test = MakePulseDataset(8, 32, 3);
  Rng rng(1);
  baselines::BaselineScale scale;
  scale.width = 0.125;
  auto model = baselines::MakeBaseline(baselines::BaselineKind::kCrnnStrong,
                                       scale, &rng);
  nn::Tensor probs = PredictFrameProbabilities(model.get(), test);
  EXPECT_EQ(probs.dim(0), 8);
  EXPECT_EQ(probs.dim(1), 32);
  for (int64_t i = 0; i < probs.numel(); ++i) {
    EXPECT_GE(probs.at(i), 0.0f);
    EXPECT_LE(probs.at(i), 1.0f);
  }
}

TEST(LabelBudgetTest, GeometricGridIsIncreasing) {
  auto budgets = GeometricBudgets(10, 1000, 5);
  ASSERT_GE(budgets.size(), 3u);
  EXPECT_EQ(budgets.front(), 10);
  EXPECT_EQ(budgets.back(), 1000);
  for (size_t i = 1; i < budgets.size(); ++i) {
    EXPECT_GT(budgets[i], budgets[i - 1]);
  }
}

TEST(LabelBudgetTest, SingleStep) {
  auto budgets = GeometricBudgets(10, 10, 4);
  ASSERT_EQ(budgets.size(), 1u);
  EXPECT_EQ(budgets[0], 10);
}

TEST(LabelBudgetTest, SubsetKeepsBothClassesWhenPossible) {
  data::WindowDataset ds = MakePulseDataset(40, 16, 1);
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    auto sub = SubsetByBudget(ds, 3, &rng);
    EXPECT_EQ(sub.size(), 3);
    EXPECT_GT(sub.PositiveCount(), 0);
    EXPECT_LT(sub.PositiveCount(), 3);
  }
}

TEST(LabelBudgetTest, SubsetCapsAtDatasetSize) {
  data::WindowDataset ds = MakePulseDataset(10, 16, 1);
  Rng rng(3);
  auto sub = SubsetByBudget(ds, 100, &rng);
  EXPECT_EQ(sub.size(), 10);
}

TEST(ScoreTest, PerfectPredictionScoresPerfectly) {
  data::WindowDataset test = MakePulseDataset(10, 32, 3);
  LocalizationScores s = ScoreLocalization(test.status, test);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  // Power estimate: P_a = 800 exactly matches the simulated pulse.
  EXPECT_NEAR(s.mae, 0.0, 1e-3);
  EXPECT_NEAR(s.matching_ratio, 1.0, 1e-3);
}

TEST(ScoreTest, AllOffPredictionHasZeroRecall) {
  data::WindowDataset test = MakePulseDataset(10, 32, 3);
  nn::Tensor zeros({test.size(), test.window_length});
  LocalizationScores s = ScoreLocalization(zeros, test);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
  EXPECT_GT(s.mae, 0.0);
}

TEST(ScoreTest, ThresholdStatusRounds) {
  nn::Tensor probs({1, 3});
  probs.at2(0, 0) = 0.49f;
  probs.at2(0, 1) = 0.5f;
  probs.at2(0, 2) = 0.99f;
  nn::Tensor status = ThresholdStatus(probs);
  EXPECT_EQ(status.at2(0, 0), 0.0f);
  EXPECT_EQ(status.at2(0, 1), 1.0f);
  EXPECT_EQ(status.at2(0, 2), 1.0f);
}

TEST(CostModelTest, PaperConstants) {
  CostModel m;
  // Fig. 9(a): strong labels cost >= $1000 + $1500/yr; possession is $10.
  EXPECT_DOUBLE_EQ(
      CostUsdPerHousehold(m, LabelRegime::kPerTimestamp, 1.0), 2500.0);
  EXPECT_DOUBLE_EQ(
      CostUsdPerHousehold(m, LabelRegime::kPerHousehold, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(
      CostGco2PerHousehold(m, LabelRegime::kPerTimestamp, 1.0), 2134.0);
  EXPECT_DOUBLE_EQ(
      CostGco2PerHousehold(m, LabelRegime::kPerHousehold, 1.0), 4.62);
}

TEST(CostModelTest, OrdersOfMagnitudeMatchPaper) {
  CostModel m;
  const double strong = CostUsdPerHousehold(m, LabelRegime::kPerTimestamp, 1);
  const double subseq =
      CostUsdPerHousehold(m, LabelRegime::kPerSubsequence, 1);
  const double possession =
      CostUsdPerHousehold(m, LabelRegime::kPerHousehold, 1);
  // Each regime is at least an order of magnitude cheaper than the last.
  EXPECT_GT(strong / subseq, 10.0);
  EXPECT_GT(subseq / possession, 1.0);
  EXPECT_GT(strong / possession, 100.0);
}

TEST(CostModelTest, StorageStrongIsSixStreams) {
  CostModel m;
  // 1M households, 5 appliances, 1-minute sampling (the Fig. 9(b) setting).
  const double strong = StorageTbPerYearStrong(m, 1'000'000, 5, 60.0);
  const double weak = StorageTbPerYearWeak(m, 1'000'000, 5, 60.0);
  EXPECT_NEAR(strong / weak, 6.0, 0.01);  // 6 streams vs aggregate only
  EXPECT_GT(strong, 10.0);                // tens of TB
  EXPECT_LT(strong, 50.0);
}

TEST(BenchModeTest, EnvSelection) {
  // Note: GetBenchMode caches nothing, so setenv works per call.
  setenv("CAMAL_BENCH_MODE", "smoke", 1);
  EXPECT_EQ(GetBenchMode(), BenchMode::kSmoke);
  setenv("CAMAL_BENCH_MODE", "full", 1);
  EXPECT_EQ(GetBenchMode(), BenchMode::kFull);
  setenv("CAMAL_BENCH_MODE", "garbage", 1);
  EXPECT_EQ(GetBenchMode(), BenchMode::kFast);
  unsetenv("CAMAL_BENCH_MODE");
  EXPECT_EQ(GetBenchMode(), BenchMode::kFast);
}

TEST(BenchModeTest, ParamsScaleMonotonically) {
  BenchParams smoke = ParamsForMode(BenchMode::kSmoke);
  BenchParams fast = ParamsForMode(BenchMode::kFast);
  BenchParams full = ParamsForMode(BenchMode::kFull);
  EXPECT_LT(smoke.dataset_scale, fast.dataset_scale);
  EXPECT_LT(fast.dataset_scale, full.dataset_scale);
  EXPECT_LT(smoke.window_length, full.window_length);
  EXPECT_EQ(full.base_filters, 64);
  EXPECT_EQ(full.ensemble.kernel_sizes.size(), 5u);
  EXPECT_EQ(full.ensemble.ensemble_size, 5);
  // Window lengths stay divisible by 4 (pooling baselines).
  EXPECT_EQ(smoke.window_length % 4, 0);
  EXPECT_EQ(fast.window_length % 4, 0);
  EXPECT_EQ(full.window_length % 4, 0);
}

TEST(ExperimentTest, BaselineRunProducesScores) {
  data::WindowDataset train = MakePulseDataset(32, 32, 1);
  data::WindowDataset valid = MakePulseDataset(12, 32, 2);
  data::WindowDataset test = MakePulseDataset(12, 32, 3);
  baselines::BaselineScale scale;
  scale.width = 0.125;
  auto result = RunBaselineExperiment(baselines::BaselineKind::kBiGru, scale,
                                      TinyTrain(), train, valid, test, 7);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().train_seconds, 0.0);
  EXPECT_EQ(result.value().labels_used, 32 * 32);  // strong labels
  EXPECT_GT(result.value().num_parameters, 0);
}

TEST(ExperimentTest, WeakBaselineUsesOneLabelPerWindow) {
  data::WindowDataset train = MakePulseDataset(32, 32, 1);
  data::WindowDataset valid = MakePulseDataset(12, 32, 2);
  data::WindowDataset test = MakePulseDataset(12, 32, 3);
  baselines::BaselineScale scale;
  scale.width = 0.125;
  auto result =
      RunBaselineExperiment(baselines::BaselineKind::kCrnnWeak, scale,
                            TinyTrain(), train, valid, test, 7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().labels_used, 32);
}

TEST(ExperimentTest, RejectsEmptySplits) {
  data::WindowDataset train = MakePulseDataset(16, 32, 1);
  data::WindowDataset empty;
  empty.window_length = 32;
  baselines::BaselineScale scale;
  EXPECT_FALSE(RunBaselineExperiment(baselines::BaselineKind::kBiGru, scale,
                                     TinyTrain(), train, empty, train, 7)
                   .ok());
}

}  // namespace
}  // namespace camal::eval
