#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/ensemble.h"
#include "core/resnet.h"
#include "data/series_view.h"
#include "loadgen/latency_histogram.h"
#include "loadgen/open_loop.h"
#include "loadgen/sweep.h"
#include "serve/batch_runner.h"
#include "serve/service.h"
#include "serve/window_stream.h"

namespace camal {
namespace {

// Force a multi-thread pool even on single-core machines so service
// workers really run concurrently; an explicit CAMAL_THREADS (e.g. from
// CI) wins.
const bool kThreadsForced = [] {
  setenv("CAMAL_THREADS", "4", /*overwrite=*/0);
  return true;
}();

using loadgen::LatencyHistogram;

// ---------------------------------------------------------------------
// LatencyHistogram: the shared percentile machinery.
// ---------------------------------------------------------------------

TEST(LatencyHistogramTest, EmptyThenSingleSample) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
  EXPECT_EQ(hist.Summary().count, 0);
  EXPECT_EQ(hist.max_seconds(), 0.0);

  hist.Record(0.010);
  EXPECT_EQ(hist.count(), 1);
  EXPECT_NEAR(hist.max_seconds(), 0.010, 1e-9);  // max is exact
  // Every percentile of a 1-sample distribution is that sample, up to
  // the ~5% bucket width (and never beyond the exact max).
  for (double p : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_NEAR(hist.Percentile(p), 0.010, 0.010 * 0.05) << "p=" << p;
    EXPECT_LE(hist.Percentile(p), hist.max_seconds());
  }
  const loadgen::LatencySummary summary = hist.Summary();
  EXPECT_EQ(summary.count, 1);
  EXPECT_NEAR(summary.mean_ms, 10.0, 0.01);
  EXPECT_NEAR(summary.max_ms, 10.0, 1e-6);
}

TEST(LatencyHistogramTest, PercentilesTrackAKnownDistribution) {
  // 1..1000 ms uniformly: the p-quantile is ~p seconds.
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) {
    hist.Record(static_cast<double>(i) * 1e-3);
  }
  EXPECT_EQ(hist.count(), 1000);
  EXPECT_NEAR(hist.Percentile(0.50), 0.500, 0.500 * 0.05);
  EXPECT_NEAR(hist.Percentile(0.95), 0.950, 0.950 * 0.05);
  EXPECT_NEAR(hist.Percentile(0.99), 0.990, 0.990 * 0.05);
  EXPECT_NEAR(hist.max_seconds(), 1.000, 1e-9);
  EXPECT_NEAR(hist.total_seconds(), 500.5, 0.5);
  // Percentiles are nondecreasing in p.
  EXPECT_LE(hist.Percentile(0.50), hist.Percentile(0.95));
  EXPECT_LE(hist.Percentile(0.95), hist.Percentile(0.99));
  EXPECT_LE(hist.Percentile(0.99), hist.max_seconds());
}

TEST(LatencyHistogramTest, DegenerateSamplesClampInsteadOfCrashing) {
  LatencyHistogram hist;
  hist.Record(-0.5);  // open-loop latency can round below zero
  hist.Record(std::numeric_limits<double>::quiet_NaN());
  hist.Record(std::numeric_limits<double>::infinity());
  hist.Record(0.0);
  hist.Record(1e-12);  // below range: lowest bucket
  hist.Record(1e6);    // above range: highest bucket, exact max kept
  EXPECT_EQ(hist.count(), 6);
  EXPECT_NEAR(hist.max_seconds(), 1e6, 1.0);
  EXPECT_LE(hist.Percentile(0.5), LatencyHistogram::kMinSeconds * 2.0);
}

TEST(LatencyHistogramTest, MergeAndCopyPreserveEverySample) {
  LatencyHistogram fast, slow;
  for (int i = 0; i < 100; ++i) fast.Record(0.001);
  for (int i = 0; i < 100; ++i) slow.Record(0.100);
  fast.Merge(slow);
  EXPECT_EQ(fast.count(), 200);
  EXPECT_NEAR(fast.max_seconds(), 0.100, 1e-9);
  EXPECT_NEAR(fast.Percentile(0.25), 0.001, 0.001 * 0.05);
  EXPECT_NEAR(fast.Percentile(0.75), 0.100, 0.100 * 0.05);

  const LatencyHistogram copy = fast;  // snapshot
  EXPECT_EQ(copy.count(), fast.count());
  EXPECT_EQ(copy.max_seconds(), fast.max_seconds());
  EXPECT_EQ(copy.Percentile(0.75), fast.Percentile(0.75));

  fast.Reset();
  EXPECT_EQ(fast.count(), 0);
  EXPECT_EQ(copy.count(), 200);  // the copy is independent
}

TEST(LatencyHistogramTest, ConcurrentRecordDropsNothing) {
  // Harvest threads record while the driver submits; every sample must
  // land exactly once.
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(1e-3 * static_cast<double>(1 + (i + t) % 50));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  EXPECT_NEAR(hist.max_seconds(), 0.050, 1e-9);
}

// ---------------------------------------------------------------------
// Arrival schedules: deterministic, monotone, correctly spaced.
// ---------------------------------------------------------------------

TEST(ArrivalScheduleTest, FixedRateIsExact) {
  loadgen::OpenLoopOptions options;
  options.process = loadgen::ArrivalProcess::kFixedRate;
  options.offered_rps = 100.0;
  options.requests = 10;
  const std::vector<double> offsets =
      loadgen::IntendedArrivalOffsets(options);
  ASSERT_EQ(offsets.size(), 10u);
  for (size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_DOUBLE_EQ(offsets[i], static_cast<double>(i) / 100.0);
  }
}

TEST(ArrivalScheduleTest, PoissonIsSeededMonotoneWithMatchingMeanGap) {
  loadgen::OpenLoopOptions options;
  options.process = loadgen::ArrivalProcess::kPoisson;
  options.offered_rps = 1000.0;
  options.requests = 4000;
  options.seed = 123;
  const std::vector<double> a = loadgen::IntendedArrivalOffsets(options);
  const std::vector<double> b = loadgen::IntendedArrivalOffsets(options);
  ASSERT_EQ(a.size(), 4000u);
  // Same seed: the identical schedule, sample for sample.
  EXPECT_EQ(a, b);
  EXPECT_GT(a.front(), 0.0);  // the first arrival also waits a gap
  for (size_t i = 1; i < a.size(); ++i) {
    ASSERT_LE(a[i - 1], a[i]) << "arrival " << i << " moved backwards";
  }
  // Mean inter-arrival gap ~ 1/rate (4000 draws: well within 10%).
  const double mean_gap = a.back() / static_cast<double>(a.size());
  EXPECT_NEAR(mean_gap, 1e-3, 1e-4);

  options.seed = 124;
  EXPECT_NE(loadgen::IntendedArrivalOffsets(options), a);
}

// ---------------------------------------------------------------------
// OpenLoopDriver / RunLoadSweep against a real service.
// ---------------------------------------------------------------------

core::CamalEnsemble TinyEnsemble(uint64_t seed) {
  Rng rng(seed);
  std::vector<core::EnsembleMember> members;
  for (int64_t k : {5, 9}) {
    core::ResNetConfig config;
    config.base_filters = 4;
    config.kernel_size = k;
    core::EnsembleMember member;
    member.model = std::make_unique<core::ResNetClassifier>(config, &rng);
    member.kernel_size = k;
    members.push_back(std::move(member));
  }
  return core::CamalEnsemble::FromMembers(std::move(members));
}

serve::BatchRunnerOptions TinyRunner() {
  serve::BatchRunnerOptions opt;
  opt.stream.window_length = 16;
  opt.stream.stride = 8;
  opt.stream.batch_size = 4;
  opt.appliance_avg_power_w = 700.0f;
  return opt;
}

std::vector<std::vector<float>> TinyCohort(int households, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> cohort;
  for (int h = 0; h < households; ++h) {
    std::vector<float> series(64);
    for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
    cohort.push_back(std::move(series));
  }
  return cohort;
}

std::vector<data::SeriesView> Views(
    const std::vector<std::vector<float>>& cohort) {
  std::vector<data::SeriesView> views;
  for (const auto& series : cohort) views.emplace_back(series);
  return views;
}

TEST(OpenLoopDriverTest, BelowCapacityEveryRequestCompletes) {
  core::CamalEnsemble ensemble = TinyEnsemble(71);
  serve::ServiceOptions service_opt;
  service_opt.workers = 2;
  serve::Service service(service_opt);
  ASSERT_TRUE(
      service.RegisterAppliance("appliance", &ensemble, TinyRunner()).ok());
  ASSERT_TRUE(service.Start().ok());
  const std::vector<std::vector<float>> cohort = TinyCohort(3, 72);

  loadgen::OpenLoopOptions options;
  options.offered_rps = 200.0;
  options.requests = 40;
  options.seed = 7;
  loadgen::OpenLoopDriver driver(&service, Views(cohort), options);
  const loadgen::OpenLoopResult result = driver.Run();
  EXPECT_EQ(result.intended, 40);
  EXPECT_EQ(result.submitted, 40);
  EXPECT_EQ(result.completed, 40);
  EXPECT_EQ(result.rejected_backpressure, 0);
  EXPECT_EQ(result.shed_deadline, 0);
  EXPECT_EQ(result.failed, 0);
  EXPECT_EQ(result.latency.count(), 40);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.achieved_rps, 0.0);
  EXPECT_GT(result.latency.Summary().p99_ms, 0.0);
  service.Shutdown();
  EXPECT_EQ(service.stats().completed, 40);
}

TEST(OpenLoopDriverTest, OverloadWithDeadlinesShedsInsteadOfFailing) {
  // Pin the per-request cost with a sleeping hook so overload is a
  // property of the test, not of the machine: 1 worker x 5ms = 200 rps
  // capacity, offered 2000 rps, 20ms deadline. The early arrivals find a
  // short queue and complete; deeper ones expire waiting and must come
  // back as shed_deadline — never as generic failures.
  core::CamalEnsemble ensemble = TinyEnsemble(73);
  FaultInjector injector;
  injector.set_scan_hook([](const std::string&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  serve::ServiceOptions service_opt;
  service_opt.workers = 1;
  service_opt.queue_capacity = 0;
  service_opt.coalesce_budget = 1;
  service_opt.fault_injector = &injector;
  serve::Service service(service_opt);
  ASSERT_TRUE(
      service.RegisterAppliance("appliance", &ensemble, TinyRunner()).ok());
  ASSERT_TRUE(service.Start().ok());
  const std::vector<std::vector<float>> cohort = TinyCohort(2, 74);

  loadgen::OpenLoopOptions options;
  options.offered_rps = 2000.0;
  options.requests = 60;
  options.seed = 9;
  options.deadline_seconds = 0.020;
  loadgen::OpenLoopDriver driver(&service, Views(cohort), options);
  const loadgen::OpenLoopResult result = driver.Run();
  EXPECT_EQ(result.submitted, 60);
  EXPECT_GT(result.completed, 0);
  EXPECT_GT(result.shed_deadline, 0);
  EXPECT_EQ(result.failed, 0);
  EXPECT_EQ(result.completed + result.shed_deadline +
                result.rejected_backpressure,
            60);
  EXPECT_EQ(result.latency.count(), result.completed);
  service.Shutdown();
  EXPECT_EQ(service.stats().shed_deadline, result.shed_deadline);
}

TEST(LoadSweepTest, FindsTheKneeOnAPinnedCostService) {
  // 2ms pinned cost, 1 worker: capacity is a few hundred rps whatever
  // the machine (or sanitizer) underneath. A 20 rps point keeps up; a
  // 1000 rps point cannot — the knee lands on the former.
  core::CamalEnsemble ensemble = TinyEnsemble(75);
  FaultInjector injector;
  injector.set_scan_hook([](const std::string&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  serve::ServiceOptions service_opt;
  service_opt.workers = 1;
  service_opt.queue_capacity = 0;
  service_opt.coalesce_budget = 1;
  service_opt.fault_injector = &injector;
  serve::Service service(service_opt);
  ASSERT_TRUE(
      service.RegisterAppliance("appliance", &ensemble, TinyRunner()).ok());
  ASSERT_TRUE(service.Start().ok());
  const std::vector<std::vector<float>> cohort = TinyCohort(2, 76);
  const std::vector<data::SeriesView> views = Views(cohort);

  loadgen::LoadSweepOptions sweep;
  sweep.offered_rps = {20.0, 1000.0};
  sweep.seconds_per_point = 0.2;
  sweep.min_requests_per_point = 8;
  sweep.max_requests_per_point = 60;
  sweep.base.seed = 11;
  sweep.base.appliance = "appliance";
  const loadgen::LoadSweepResult result =
      loadgen::RunLoadSweep(&service, views, sweep);

  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_LT(result.points[0].offered_rps, result.points[1].offered_rps);
  EXPECT_GE(result.points[0].utilization, 0.9);  // 50ms gaps vs 2ms cost
  EXPECT_LT(result.points[1].utilization, 0.9);  // 2x capacity at best
  EXPECT_EQ(result.knee_index, 0);
  EXPECT_EQ(result.knee_basis, "utilization");
  EXPECT_DOUBLE_EQ(result.knee_rps, 20.0);
  for (const loadgen::LoadSweepPoint& point : result.points) {
    EXPECT_GT(point.completed, 0);
    EXPECT_EQ(point.latency.count, point.completed);
    EXPECT_GT(point.latency.p99_ms, 0.0);
  }

  // An all-overloaded ladder still anchors a knee: the peak-achieved
  // fallback reports the capacity estimate instead of giving up.
  loadgen::LoadSweepOptions overloaded = sweep;
  overloaded.offered_rps = {1500.0, 3000.0};
  overloaded.base.seed = 12;
  const loadgen::LoadSweepResult fallback =
      loadgen::RunLoadSweep(&service, views, overloaded);
  ASSERT_EQ(fallback.points.size(), 2u);
  EXPECT_EQ(fallback.knee_basis, "peak_achieved");
  EXPECT_GE(fallback.knee_index, 0);
  EXPECT_GT(fallback.knee_rps, 0.0);
  service.Shutdown();
}

}  // namespace
}  // namespace camal
