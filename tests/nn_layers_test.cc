#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/batchnorm1d.h"
#include "nn/conv1d.h"
#include "nn/dropout.h"
#include "nn/gru.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "nn/upsample.h"

namespace camal::nn {
namespace {

TEST(Conv1dTest, SamePaddingPreservesLength) {
  Rng rng(1);
  Conv1dOptions opt;
  opt.in_channels = 2;
  opt.out_channels = 3;
  opt.kernel_size = 5;
  opt.padding = opt.SamePadding();
  Conv1d conv(opt, &rng);
  Tensor x({4, 2, 17});
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.dim(0), 4);
  EXPECT_EQ(y.dim(1), 3);
  EXPECT_EQ(y.dim(2), 17);
}

TEST(Conv1dTest, IdentityKernelReproducesInput) {
  Rng rng(1);
  Conv1dOptions opt;
  opt.in_channels = 1;
  opt.out_channels = 1;
  opt.kernel_size = 1;
  Conv1d conv(opt, &rng);
  conv.weight().value.Fill(1.0f);
  conv.bias_param().value.Fill(0.0f);
  Tensor x({1, 1, 5});
  for (int64_t i = 0; i < 5; ++i) x.at3(0, 0, i) = static_cast<float>(i);
  Tensor y = conv.Forward(x);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(y.at3(0, 0, i), x.at3(0, 0, i));
  }
}

TEST(Conv1dTest, KnownConvolutionValues) {
  Rng rng(1);
  Conv1dOptions opt;
  opt.in_channels = 1;
  opt.out_channels = 1;
  opt.kernel_size = 3;
  opt.padding = 1;
  Conv1d conv(opt, &rng);
  // Moving-sum kernel.
  conv.weight().value.Fill(1.0f);
  conv.bias_param().value.Fill(0.0f);
  Tensor x({1, 1, 4});
  x.at3(0, 0, 0) = 1;
  x.at3(0, 0, 1) = 2;
  x.at3(0, 0, 2) = 3;
  x.at3(0, 0, 3) = 4;
  Tensor y = conv.Forward(x);
  EXPECT_FLOAT_EQ(y.at3(0, 0, 0), 3.0f);   // 0+1+2
  EXPECT_FLOAT_EQ(y.at3(0, 0, 1), 6.0f);   // 1+2+3
  EXPECT_FLOAT_EQ(y.at3(0, 0, 2), 9.0f);   // 2+3+4
  EXPECT_FLOAT_EQ(y.at3(0, 0, 3), 7.0f);   // 3+4+0
}

TEST(Conv1dTest, StrideAndDilationOutputLength) {
  Rng rng(1);
  Conv1dOptions opt;
  opt.in_channels = 1;
  opt.out_channels = 1;
  opt.kernel_size = 3;
  opt.stride = 2;
  opt.dilation = 2;
  Conv1d conv(opt, &rng);
  // effective kernel = 5; L_out = (11 - 5)/2 + 1 = 4
  EXPECT_EQ(conv.OutputLength(11), 4);
  Tensor y = conv.Forward(Tensor({1, 1, 11}));
  EXPECT_EQ(y.dim(2), 4);
}

TEST(Conv1dTest, BiasAddsPerChannel) {
  Rng rng(1);
  Conv1dOptions opt;
  opt.in_channels = 1;
  opt.out_channels = 2;
  opt.kernel_size = 1;
  Conv1d conv(opt, &rng);
  conv.weight().value.Fill(0.0f);
  conv.bias_param().value.at(0) = 1.5f;
  conv.bias_param().value.at(1) = -2.0f;
  Tensor y = conv.Forward(Tensor({1, 1, 3}));
  EXPECT_FLOAT_EQ(y.at3(0, 0, 1), 1.5f);
  EXPECT_FLOAT_EQ(y.at3(0, 1, 2), -2.0f);
}

TEST(LinearTest, ComputesAffineMap) {
  Rng rng(1);
  Linear lin(2, 2, /*bias=*/true, &rng);
  lin.weight().value = Tensor::FromVector({1, 2, 3, 4}).Reshape({2, 2});
  lin.bias_param().value = Tensor::FromVector({10, 20});
  Tensor x = Tensor::FromVector({1, 1}).Reshape({1, 2});
  Tensor y = lin.Forward(x);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 13.0f);  // 1+2+10
  EXPECT_FLOAT_EQ(y.at2(0, 1), 27.0f);  // 3+4+20
}

TEST(ReluTest, ClampsNegativesForwardAndBackward) {
  ReLU relu;
  Tensor x = Tensor::FromVector({-1, 0, 2});
  Tensor y = relu.Forward(x);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(1), 0.0f);
  EXPECT_EQ(y.at(2), 2.0f);
  Tensor g = relu.Backward(Tensor::FromVector({1, 1, 1}));
  EXPECT_EQ(g.at(0), 0.0f);
  EXPECT_EQ(g.at(1), 0.0f);  // gradient at exactly 0 defined as 0
  EXPECT_EQ(g.at(2), 1.0f);
}

TEST(SigmoidTest, KnownValues) {
  Sigmoid sig;
  Tensor y = sig.Forward(Tensor::FromVector({0.0f}));
  EXPECT_FLOAT_EQ(y.at(0), 0.5f);
  EXPECT_NEAR(SigmoidScalar(2.0f), 0.880797f, 1e-5);
  EXPECT_NEAR(SigmoidScalar(-2.0f), 0.119203f, 1e-5);
}

TEST(TanhGeluTest, ForwardShapesAndRanges) {
  Tanh tanh_layer;
  Gelu gelu;
  Tensor x = Tensor::FromVector({-3, -1, 0, 1, 3});
  Tensor ty = tanh_layer.Forward(x);
  Tensor gy = gelu.Forward(x);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_LE(std::fabs(ty.at(i)), 1.0f);
  }
  EXPECT_FLOAT_EQ(gy.at(2), 0.0f);
  EXPECT_NEAR(gy.at(3), 0.8412f, 1e-3);  // GELU(1)
}

TEST(MaxPoolTest, SelectsMaximaAndRoutesGradient) {
  MaxPool1d pool(2, 2);
  Tensor x({1, 1, 6});
  float vals[] = {1, 5, 2, 2, 9, 3};
  for (int64_t i = 0; i < 6; ++i) x.at3(0, 0, i) = vals[i];
  Tensor y = pool.Forward(x);
  EXPECT_EQ(y.dim(2), 3);
  EXPECT_EQ(y.at3(0, 0, 0), 5.0f);
  EXPECT_EQ(y.at3(0, 0, 1), 2.0f);
  EXPECT_EQ(y.at3(0, 0, 2), 9.0f);
  Tensor g = pool.Backward(Tensor::Full({1, 1, 3}, 1.0f));
  EXPECT_EQ(g.at3(0, 0, 1), 1.0f);  // argmax of first window
  EXPECT_EQ(g.at3(0, 0, 0), 0.0f);
  EXPECT_EQ(g.at3(0, 0, 4), 1.0f);
}

TEST(AvgPoolTest, AveragesWindows) {
  AvgPool1d pool(3, 3);
  Tensor x({1, 1, 6});
  for (int64_t i = 0; i < 6; ++i) x.at3(0, 0, i) = static_cast<float>(i + 1);
  Tensor y = pool.Forward(x);
  EXPECT_FLOAT_EQ(y.at3(0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at3(0, 0, 1), 5.0f);
  Tensor g = pool.Backward(Tensor::Full({1, 1, 2}, 3.0f));
  EXPECT_FLOAT_EQ(g.at3(0, 0, 0), 1.0f);
}

TEST(GlobalAvgPoolTest, ReducesTemporalAxis) {
  GlobalAvgPool1d gap;
  Tensor x({2, 3, 4});
  x.Fill(2.0f);
  Tensor y = gap.Forward(x);
  EXPECT_EQ(y.ndim(), 2);
  EXPECT_EQ(y.dim(1), 3);
  EXPECT_FLOAT_EQ(y.at2(1, 2), 2.0f);
  Tensor g = gap.Backward(Tensor::Full({2, 3}, 4.0f));
  EXPECT_FLOAT_EQ(g.at3(0, 0, 0), 1.0f);  // 4 / L
}

TEST(BatchNormTest, NormalizesBatchStatistics) {
  BatchNorm1d bn(1);
  bn.SetTraining(true);
  Tensor x({2, 1, 2});
  x.at3(0, 0, 0) = 1;
  x.at3(0, 0, 1) = 2;
  x.at3(1, 0, 0) = 3;
  x.at3(1, 0, 1) = 4;
  Tensor y = bn.Forward(x);
  double mean = 0.0, var = 0.0;
  for (int64_t i = 0; i < 4; ++i) mean += y.at(i);
  mean /= 4;
  for (int64_t i = 0; i < 4; ++i) var += (y.at(i) - mean) * (y.at(i) - mean);
  var /= 4;
  EXPECT_NEAR(mean, 0.0, 1e-5);
  EXPECT_NEAR(var, 1.0, 1e-3);
}

TEST(BatchNormTest, EvalModeUsesRunningStats) {
  BatchNorm1d bn(1, 1e-5f, /*momentum=*/1.0f);  // running <- batch exactly
  bn.SetTraining(true);
  Tensor x({1, 1, 4});
  for (int64_t i = 0; i < 4; ++i) x.at3(0, 0, i) = static_cast<float>(i);
  bn.Forward(x);
  EXPECT_NEAR(bn.running_mean().at(0), 1.5f, 1e-5);
  bn.SetTraining(false);
  Tensor y = bn.Forward(Tensor::Full({1, 1, 2}, 1.5f));
  EXPECT_NEAR(y.at3(0, 0, 0), 0.0f, 1e-4);
}

TEST(LayerNormTest, NormalizesAcrossFeatures) {
  LayerNorm ln(4);
  Tensor x({1, 4, 1});
  for (int64_t j = 0; j < 4; ++j) x.at3(0, j, 0) = static_cast<float>(j);
  Tensor y = ln.Forward(x);
  double mean = 0.0;
  for (int64_t j = 0; j < 4; ++j) mean += y.at3(0, j, 0);
  EXPECT_NEAR(mean / 4.0, 0.0, 1e-5);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(1);
  Dropout drop(0.5f, &rng);
  drop.SetTraining(false);
  Tensor x = Tensor::FromVector({1, 2, 3});
  Tensor y = drop.Forward(x);
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(y.at(i), x.at(i));
}

TEST(DropoutTest, TrainingZeroesApproxFraction) {
  Rng rng(2);
  Dropout drop(0.4f, &rng);
  drop.SetTraining(true);
  Tensor x = Tensor::Full({10000}, 1.0f);
  Tensor y = drop.Forward(x);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y.at(i) == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.at(i), 1.0f / 0.6f, 1e-5);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.4, 0.03);
}

TEST(UpsampleTest, NearestRepeatsValues) {
  UpsampleNearest1d up(3);
  Tensor x({1, 1, 2});
  x.at3(0, 0, 0) = 1.0f;
  x.at3(0, 0, 1) = 2.0f;
  Tensor y = up.Forward(x);
  EXPECT_EQ(y.dim(2), 6);
  EXPECT_EQ(y.at3(0, 0, 2), 1.0f);
  EXPECT_EQ(y.at3(0, 0, 3), 2.0f);
  Tensor g = up.Backward(Tensor::Full({1, 1, 6}, 1.0f));
  EXPECT_EQ(g.at3(0, 0, 0), 3.0f);
}

TEST(ResizeTest, RestoresTargetLength) {
  ResizeNearest1d resize(7);
  Tensor x({1, 2, 3});
  for (int64_t i = 0; i < x.numel(); ++i) x.at(i) = static_cast<float>(i);
  Tensor y = resize.Forward(x);
  EXPECT_EQ(y.dim(2), 7);
  Tensor g = resize.Backward(Tensor::Full({1, 2, 7}, 1.0f));
  EXPECT_EQ(g.dim(2), 3);
  // Total gradient mass is conserved.
  EXPECT_DOUBLE_EQ(g.Sum(), 14.0);
}

TEST(SequentialTest, ChainsLayers) {
  Rng rng(1);
  Sequential seq;
  Conv1dOptions opt;
  opt.in_channels = 1;
  opt.out_channels = 2;
  opt.kernel_size = 3;
  opt.padding = 1;
  seq.Add(std::make_unique<Conv1d>(opt, &rng));
  seq.Add(std::make_unique<ReLU>());
  Tensor y = seq.Forward(Tensor({2, 1, 8}));
  EXPECT_EQ(y.dim(1), 2);
  EXPECT_EQ(y.dim(2), 8);
  EXPECT_EQ(seq.size(), 2u);
}

TEST(ResidualTest, IdentityShortcutAdds) {
  Rng rng(1);
  auto body = std::make_unique<Sequential>();
  Conv1dOptions opt;
  opt.in_channels = 2;
  opt.out_channels = 2;
  opt.kernel_size = 1;
  auto conv = std::make_unique<Conv1d>(opt, &rng);
  conv->weight().value.Fill(0.0f);
  conv->bias_param().value.Fill(0.0f);
  body->Add(std::move(conv));
  Residual res(std::move(body), nullptr);
  Tensor x = Tensor::Full({1, 2, 3}, 5.0f);
  Tensor y = res.Forward(x);
  // Zero body + identity shortcut = input.
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y.at(i), 5.0f);
}

TEST(GruTest, OutputShapeAndBoundedness) {
  Rng rng(3);
  Gru gru(2, 4, /*reverse=*/false, &rng);
  Tensor x({3, 2, 7});
  for (int64_t i = 0; i < x.numel(); ++i) {
    x.at(i) = static_cast<float>(i % 5) - 2;
  }
  Tensor y = gru.Forward(x);
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_EQ(y.dim(1), 4);
  EXPECT_EQ(y.dim(2), 7);
  // GRU hidden state is a convex-ish combination of tanh outputs: |h| <= 1.
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_LE(std::fabs(y.at(i)), 1.0f);
}

TEST(GruTest, ReverseDirectionDiffersFromForward) {
  Rng rng(3);
  Gru fwd(1, 2, false, &rng);
  Rng rng2(3);
  Gru bwd(1, 2, true, &rng2);  // identical weights, reversed scan
  Tensor x({1, 1, 5});
  for (int64_t i = 0; i < 5; ++i) x.at3(0, 0, i) = static_cast<float>(i);
  Tensor yf = fwd.Forward(x);
  Tensor yb = bwd.Forward(x);
  bool differ = false;
  for (int64_t i = 0; i < yf.numel(); ++i) {
    if (std::fabs(yf.at(i) - yb.at(i)) > 1e-6) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(BiGruTest, ConcatenatesDirections) {
  Rng rng(4);
  BiGru bigru(2, 3, &rng);
  Tensor x({2, 2, 5});
  Tensor y = bigru.Forward(x);
  EXPECT_EQ(y.dim(1), 6);
  EXPECT_EQ(y.dim(2), 5);
}

TEST(ModuleTest, NumParametersCounts) {
  Rng rng(1);
  Linear lin(10, 4, /*bias=*/true, &rng);
  EXPECT_EQ(lin.NumParameters(), 44);
  Linear no_bias(10, 4, /*bias=*/false, &rng);
  EXPECT_EQ(no_bias.NumParameters(), 40);
}

TEST(ModuleTest, ZeroGradClearsGradients) {
  Rng rng(1);
  Linear lin(3, 2, true, &rng);
  Tensor x({2, 3});
  lin.Forward(x);
  lin.Backward(Tensor::Full({2, 2}, 1.0f));
  lin.ZeroGrad();
  for (auto* p : lin.Parameters()) {
    for (int64_t i = 0; i < p->grad.numel(); ++i) {
      EXPECT_EQ(p->grad.at(i), 0.0f);
    }
  }
}

}  // namespace
}  // namespace camal::nn
