#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/parallel_for.h"
#include "common/rng.h"
#include "core/ensemble.h"
#include "core/inception.h"
#include "core/resnet.h"
#include "data/window.h"
#include "serve/batch_runner.h"
#include "serve/request_queue.h"
#include "serve/service.h"
#include "serve/sharded_scanner.h"
#include "serve/window_stream.h"

namespace camal {
namespace {

// Force a multi-thread pool even on single-core machines so sharded scans
// really run concurrently; an explicit CAMAL_THREADS (e.g. from CI) wins.
const bool kThreadsForced = [] {
  setenv("CAMAL_THREADS", "4", /*overwrite=*/0);
  return true;
}();

serve::WindowStreamOptions SmallStream(int64_t window, int64_t stride,
                                       int64_t batch) {
  serve::WindowStreamOptions opt;
  opt.window_length = window;
  opt.stride = stride;
  opt.batch_size = batch;
  return opt;
}

TEST(WindowStreamTest, CoversEveryTimestamp) {
  std::vector<float> series(100, 1.0f);
  serve::WindowStream stream(series, SmallStream(16, 8, 4));
  std::vector<int> covered(series.size(), 0);
  for (int64_t off : stream.offsets()) {
    ASSERT_GE(off, 0);
    ASSERT_LE(off + 16, static_cast<int64_t>(series.size()));
    for (int64_t t = off; t < off + 16; ++t) ++covered[static_cast<size_t>(t)];
  }
  for (size_t t = 0; t < series.size(); ++t) {
    EXPECT_GT(covered[t], 0) << "timestamp " << t << " uncovered";
  }
}

TEST(WindowStreamTest, TailWindowAlignsToSeriesEnd) {
  // 20 samples, window 8, stride 8: grid covers [0,8) and [8,16); the tail
  // window [12,20) must be added for the last 4 samples.
  std::vector<float> series(20, 1.0f);
  serve::WindowStream stream(series, SmallStream(8, 8, 4));
  ASSERT_EQ(stream.NumWindows(), 3);
  EXPECT_EQ(stream.offsets().back(), 12);
}

TEST(WindowStreamTest, TailWindowExactFitIsNotDuplicated) {
  // 32 samples, window 16, stride 8: offsets {0, 8, 16}; the last grid
  // window already ends at the series end (offsets.back() + L == len), so
  // no extra tail window may be added.
  std::vector<float> series(32, 1.0f);
  serve::WindowStream stream(series, SmallStream(16, 8, 4));
  ASSERT_EQ(stream.NumWindows(), 3);
  EXPECT_EQ(stream.offsets().back() + 16,
            static_cast<int64_t>(series.size()));
}

TEST(WindowStreamTest, AllMissingWindowsAreZeroFilled) {
  std::vector<float> series(24, std::nanf(""));
  serve::WindowStream stream(series, SmallStream(16, 8, 4));
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  ASSERT_EQ(stream.NextBatch(&batch, &offsets), 2);
  for (int64_t i = 0; i < batch.numel(); ++i) {
    EXPECT_EQ(batch.at(i), 0.0f) << "element " << i;
  }
}

TEST(WindowStreamTest, NextBatchReusesCallerTensor) {
  std::vector<float> series(80, 1.0f);  // 5 windows of 16 at stride 16
  serve::WindowStream stream(series, SmallStream(16, 16, 2));
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  ASSERT_EQ(stream.NextBatch(&batch, &offsets), 2);
  const float* storage = batch.data();
  ASSERT_EQ(stream.NextBatch(&batch, &offsets), 2);
  EXPECT_EQ(batch.data(), storage);  // same shape: storage reused in place
  ASSERT_EQ(stream.NextBatch(&batch, &offsets), 1);
  EXPECT_EQ(batch.ShapeString(), "(1, 1, 16)");  // short batch reshapes
}

TEST(WindowStreamTest, ShortSeriesYieldsNothing) {
  std::vector<float> series(5, 1.0f);
  serve::WindowStream stream(series, SmallStream(8, 4, 2));
  EXPECT_EQ(stream.NumWindows(), 0);
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 0);
}

TEST(WindowStreamTest, BatchesScaleAndZeroFillMissing) {
  std::vector<float> series(32, 2000.0f);
  series[3] = std::nanf("");
  serve::WindowStreamOptions opt = SmallStream(16, 16, 8);
  opt.input_scale = 1000.0f;
  serve::WindowStream stream(series, opt);
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  ASSERT_EQ(stream.NextBatch(&batch, &offsets), 2);
  EXPECT_EQ(batch.ShapeString(), "(2, 1, 16)");
  EXPECT_EQ(offsets[0], 0);
  EXPECT_EQ(offsets[1], 16);
  EXPECT_FLOAT_EQ(batch.at3(0, 0, 0), 2.0f);   // 2000 W / 1000
  EXPECT_FLOAT_EQ(batch.at3(0, 0, 3), 0.0f);   // missing reading
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 0);
  stream.Reset();
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 2);
}

TEST(WindowStreamTest, SmallFinalBatchIsEmitted) {
  std::vector<float> series(80, 1.0f);
  serve::WindowStream stream(series, SmallStream(16, 16, 4));
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  ASSERT_EQ(stream.NumWindows(), 5);
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 4);
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 1);
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 0);
}

TEST(WindowStreamTest, ComputeWindowOffsetsGridAndTail) {
  serve::WindowStreamOptions opt = SmallStream(16, 8, 4);
  // Exact grid fit, (len - L) % stride == 0: no duplicate tail offset.
  EXPECT_EQ(serve::ComputeWindowOffsets(32, opt),
            (std::vector<int64_t>{0, 8, 16}));
  // Trailing samples: tail window aligned to the series end is appended.
  EXPECT_EQ(serve::ComputeWindowOffsets(35, opt),
            (std::vector<int64_t>{0, 8, 16, 19}));
  // Shorter than one window: nothing.
  EXPECT_TRUE(serve::ComputeWindowOffsets(15, opt).empty());
  // Exactly one window.
  EXPECT_EQ(serve::ComputeWindowOffsets(16, opt),
            (std::vector<int64_t>{0}));
}

TEST(WindowStreamTest, ResetThenRescanReusesTensorAndRepeatsBatches) {
  // Reset() + re-scan with the same tensor must reproduce the first
  // pass's batches exactly, without reallocating equal-shaped batches.
  Rng rng(41);
  std::vector<float> series(72);
  for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
  series[5] = std::nanf("");
  serve::WindowStream stream(series, SmallStream(16, 8, 4));

  nn::Tensor batch;
  std::vector<int64_t> offsets;
  std::vector<std::vector<float>> first_pass;
  std::vector<int64_t> first_offsets;
  int64_t b = 0;
  while ((b = stream.NextBatch(&batch, &offsets)) > 0) {
    first_pass.emplace_back(batch.data(), batch.data() + batch.numel());
    first_offsets.insert(first_offsets.end(), offsets.begin(), offsets.end());
  }
  ASSERT_EQ(static_cast<int64_t>(first_offsets.size()), stream.NumWindows());

  stream.Reset();
  const float* storage = batch.data();
  size_t batch_index = 0;
  std::vector<int64_t> second_offsets;
  while ((b = stream.NextBatch(&batch, &offsets)) > 0) {
    ASSERT_LT(batch_index, first_pass.size());
    const std::vector<float>& expected = first_pass[batch_index++];
    ASSERT_EQ(batch.numel(), static_cast<int64_t>(expected.size()));
    for (int64_t i = 0; i < batch.numel(); ++i) {
      EXPECT_EQ(batch.at(i), expected[static_cast<size_t>(i)]);
    }
    if (batch.numel() == static_cast<int64_t>(first_pass.front().size())) {
      // Full-size batches keep reusing the caller's storage in place.
      EXPECT_EQ(batch.data(), storage);
    }
    second_offsets.insert(second_offsets.end(), offsets.begin(),
                          offsets.end());
  }
  EXPECT_EQ(batch_index, first_pass.size());
  EXPECT_EQ(second_offsets, first_offsets);
}

TEST(MultiWindowStreamTest, MergesSeriesWindowsAcrossBatchBoundaries) {
  // Series 0 has 3 windows (len 32, window 16, stride 8), series 1 has 5
  // (len 48): one shared stream of 8 windows. With batch_size 4 the second
  // batch spans the series boundary — the coalescing the per-series
  // WindowStream cannot do.
  Rng rng(43);
  std::vector<float> a(32), c(48);
  for (auto& v : a) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
  for (auto& v : c) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
  serve::WindowStreamOptions opt = SmallStream(16, 8, 4);
  serve::MultiWindowStream stream({data::SeriesView(a), data::SeriesView(c)},
                                  opt);
  ASSERT_EQ(stream.NumWindows(), 8);
  EXPECT_EQ(stream.NumWindowsOf(0), 3);
  EXPECT_EQ(stream.NumWindowsOf(1), 5);

  // Reference rows from the single-series streams.
  auto single_rows = [&](const std::vector<float>& series) {
    serve::WindowStream s(series, opt);
    nn::Tensor batch;
    std::vector<int64_t> offsets;
    std::vector<std::vector<float>> rows;
    int64_t b = 0;
    while ((b = s.NextBatch(&batch, &offsets)) > 0) {
      for (int64_t i = 0; i < b; ++i) {
        rows.emplace_back(batch.data() + i * 16, batch.data() + (i + 1) * 16);
      }
    }
    return rows;
  };
  std::vector<std::vector<float>> expected = single_rows(a);
  std::vector<std::vector<float>> rows_c = single_rows(c);
  expected.insert(expected.end(), rows_c.begin(), rows_c.end());

  nn::Tensor batch;
  std::vector<serve::WindowRef> refs;
  std::vector<serve::WindowRef> all_refs;
  size_t row = 0;
  int64_t b = 0;
  while ((b = stream.NextBatch(&batch, &refs)) > 0) {
    for (int64_t i = 0; i < b; ++i, ++row) {
      ASSERT_LT(row, expected.size());
      for (int64_t t = 0; t < 16; ++t) {
        // Coalesced rows are bit-for-bit the single-stream rows.
        EXPECT_EQ(batch.at(i * 16 + t), expected[row][static_cast<size_t>(t)]);
      }
    }
    all_refs.insert(all_refs.end(), refs.begin(), refs.end());
  }
  ASSERT_EQ(all_refs.size(), 8u);
  // Series-major order: series 0's offsets first, then series 1's.
  const std::vector<std::pair<int32_t, int64_t>> want = {
      {0, 0}, {0, 8}, {0, 16}, {1, 0}, {1, 8}, {1, 16}, {1, 24}, {1, 32}};
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(all_refs[i].series, want[i].first) << "ref " << i;
    EXPECT_EQ(all_refs[i].offset, want[i].second) << "ref " << i;
  }
}

core::CamalEnsemble RandomEnsemble(uint64_t seed) {
  Rng rng(seed);
  std::vector<core::EnsembleMember> members;
  for (int64_t k : {5, 9}) {
    core::ResNetConfig config;
    config.base_filters = 4;
    config.kernel_size = k;
    core::EnsembleMember member;
    member.model = std::make_unique<core::ResNetClassifier>(config, &rng);
    member.kernel_size = k;
    members.push_back(std::move(member));
  }
  return core::CamalEnsemble::FromMembers(std::move(members));
}

TEST(BatchRunnerTest, ScanShapesAndRanges) {
  core::CamalEnsemble ensemble = RandomEnsemble(3);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(16, 8, 4);
  opt.appliance_avg_power_w = 700.0f;
  serve::BatchRunner runner(&ensemble, opt);

  Rng rng(4);
  std::vector<float> series(120);
  for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
  serve::ScanResult result = runner.Scan(series);

  ASSERT_EQ(result.detection.numel(), static_cast<int64_t>(series.size()));
  ASSERT_EQ(result.status.numel(), static_cast<int64_t>(series.size()));
  ASSERT_EQ(result.power.numel(), static_cast<int64_t>(series.size()));
  EXPECT_GT(result.windows, 0);
  for (int64_t t = 0; t < result.detection.numel(); ++t) {
    EXPECT_GE(result.detection.at(t), 0.0f);
    EXPECT_LE(result.detection.at(t), 1.0f);
    EXPECT_TRUE(result.status.at(t) == 0.0f || result.status.at(t) == 1.0f);
    // §IV-C: estimated power never exceeds P_a or the aggregate.
    EXPECT_LE(result.power.at(t), 700.0f);
    EXPECT_LE(result.power.at(t),
              std::max(0.0f, series[static_cast<size_t>(t)]));
  }
}

TEST(BatchRunnerTest, BatchSizeDoesNotChangeResults) {
  core::CamalEnsemble ensemble = RandomEnsemble(5);
  Rng rng(6);
  std::vector<float> series(96);
  for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 2500.0));

  serve::BatchRunnerOptions small;
  small.stream = SmallStream(16, 8, 1);
  small.appliance_avg_power_w = 500.0f;
  serve::BatchRunnerOptions large = small;
  large.stream.batch_size = 32;

  serve::BatchRunner runner_small(&ensemble, small);
  serve::BatchRunner runner_large(&ensemble, large);
  serve::ScanResult a = runner_small.Scan(series);
  serve::ScanResult b = runner_large.Scan(series);
  ASSERT_EQ(a.windows, b.windows);
  for (int64_t t = 0; t < a.detection.numel(); ++t) {
    EXPECT_NEAR(a.detection.at(t), b.detection.at(t), 1e-4);
    EXPECT_EQ(a.status.at(t), b.status.at(t));
    EXPECT_NEAR(a.power.at(t), b.power.at(t), 1e-2);
  }
}

TEST(BatchRunnerTest, EmptySeriesReturnsZeros) {
  core::CamalEnsemble ensemble = RandomEnsemble(7);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(32, 16, 4);
  serve::BatchRunner runner(&ensemble, opt);
  serve::ScanResult result = runner.Scan(std::vector<float>());
  EXPECT_EQ(result.windows, 0);
  EXPECT_EQ(result.detection.numel(), 0);
  EXPECT_EQ(result.status.numel(), 0);
  EXPECT_EQ(result.power.numel(), 0);
}

TEST(BatchRunnerTest, ShortSeriesIsLeftPaddedAndScanned) {
  // Regression: series shorter than one window used to return all-zero
  // detection/status/power without ever consulting the model. They are now
  // left-padded with zeros to a single window and scanned for real.
  core::CamalEnsemble ensemble = RandomEnsemble(7);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(32, 16, 4);
  opt.appliance_avg_power_w = 700.0f;
  serve::BatchRunner runner(&ensemble, opt);

  Rng rng(9);
  std::vector<float> series(10);
  for (auto& v : series) v = static_cast<float>(rng.Uniform(500.0, 3000.0));
  serve::ScanResult result = runner.Scan(series);
  ASSERT_EQ(result.detection.numel(), 10);
  EXPECT_EQ(result.windows, 1);  // exactly one left-padded window
  // The ensemble's softmax probability is strictly positive, so a scan
  // that actually consulted the model cannot report zero detection.
  EXPECT_GT(result.detection.at(0), 0.0f);

  // The same window, padded by hand, must produce identical predictions
  // on the real samples (the pad occupies the first 22 positions).
  std::vector<float> padded(32, 0.0f);
  std::copy(series.begin(), series.end(), padded.begin() + 22);
  serve::ScanResult reference = runner.Scan(padded);
  ASSERT_EQ(reference.windows, 1);
  for (int64_t t = 0; t < 10; ++t) {
    EXPECT_EQ(result.detection.at(t), reference.detection.at(t + 22));
    EXPECT_EQ(result.status.at(t), reference.status.at(t + 22));
    EXPECT_EQ(result.power.at(t), reference.power.at(t + 22));
  }
}

TEST(BatchRunnerTest, ExactFitTailStitchesWithoutDuplicateWindows) {
  // (len - L) % stride == 0: the last grid window already touches the
  // series end, so no tail window may be added — a duplicate offset would
  // double the last window's stitch votes (and its weight in the
  // detection mean).
  core::CamalEnsemble ensemble = RandomEnsemble(45);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(16, 8, 4);
  opt.appliance_avg_power_w = 700.0f;
  serve::BatchRunner runner(&ensemble, opt);

  Rng rng(46);
  std::vector<float> series(32);
  for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
  serve::ScanResult result = runner.Scan(series);
  EXPECT_EQ(result.windows, 3);  // offsets {0, 8, 16}, no tail duplicate

  // One extra sample breaks the exact fit; the tail window appears.
  series.push_back(1500.0f);
  serve::ScanResult longer = runner.Scan(series);
  EXPECT_EQ(longer.windows, 4);  // offsets {0, 8, 16, 17}
}

TEST(BatchRunnerTest, EntirelyMissingSeriesReportsZeroPower) {
  // A series that is all NaN still scans (zero-filled windows are real
  // model input), but whatever the ensemble votes, no timestamp may
  // report appliance power: there is no observed aggregate to assign.
  core::CamalEnsemble ensemble = RandomEnsemble(47);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(16, 8, 4);
  opt.appliance_avg_power_w = 900.0f;
  serve::BatchRunner runner(&ensemble, opt);

  std::vector<float> series(40, std::nanf(""));
  serve::ScanResult result = runner.Scan(series);
  ASSERT_EQ(result.detection.numel(), 40);
  EXPECT_GT(result.windows, 0);
  for (int64_t t = 0; t < 40; ++t) {
    EXPECT_GE(result.detection.at(t), 0.0f);
    EXPECT_LE(result.detection.at(t), 1.0f);
    EXPECT_TRUE(result.status.at(t) == 0.0f || result.status.at(t) == 1.0f);
    EXPECT_EQ(result.power.at(t), 0.0f) << "phantom power at " << t;
  }
}

TEST(BatchRunnerTest, MissingTimestampsNeverReportPower) {
  // Mixed series: NaN readings scattered through a strong activation.
  // Even when overlapping-window votes turn a missing timestamp ON, its
  // estimated power must be exactly 0 — the §IV-C estimate needs an
  // observed aggregate to price the activation.
  core::CamalEnsemble ensemble = RandomEnsemble(49);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(16, 8, 4);
  opt.appliance_avg_power_w = 700.0f;
  serve::BatchRunner runner(&ensemble, opt);

  Rng rng(50);
  std::vector<float> series(96);
  for (auto& v : series) v = static_cast<float>(rng.Uniform(1000.0, 3000.0));
  for (size_t t = 7; t < series.size(); t += 9) series[t] = std::nanf("");
  serve::ScanResult result = runner.Scan(series);
  int64_t on_count = 0;
  for (int64_t t = 0; t < result.status.numel(); ++t) {
    on_count += result.status.at(t) > 0.5f ? 1 : 0;
    if (std::isnan(series[static_cast<size_t>(t)])) {
      EXPECT_EQ(result.power.at(t), 0.0f) << "phantom power at " << t;
    }
  }
  // The high-power series should produce some activations, so the
  // assertion above is not vacuous for every seed drift.
  EXPECT_GT(on_count, 0);
}

TEST(BatchRunnerTest, ScanManyMatchesLoneScansBitwise) {
  // The coalescing contract: one shared feed phase over several series —
  // batches filling across series boundaries — must reproduce every lone
  // Scan bit for bit. Covers regular, short (left-padded), empty, and
  // all-NaN series in one group.
  core::CamalEnsemble ensemble = RandomEnsemble(51);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(16, 8, 4);
  opt.appliance_avg_power_w = 650.0f;
  serve::BatchRunner coalesced(&ensemble, opt);
  serve::BatchRunner sequential(&ensemble, opt);

  Rng rng(52);
  std::vector<std::vector<float>> cohort;
  for (int64_t len : {70, 9, 0, 41, 33, 120}) {
    std::vector<float> series(static_cast<size_t>(len));
    for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
    if (len == 41) series.assign(series.size(), std::nanf(""));
    cohort.push_back(std::move(series));
  }
  std::vector<data::SeriesView> views(cohort.begin(), cohort.end());

  std::vector<serve::ScanResult> group = coalesced.ScanMany(views);
  ASSERT_EQ(group.size(), cohort.size());
  for (size_t i = 0; i < cohort.size(); ++i) {
    serve::ScanResult expected = sequential.Scan(cohort[i]);
    ASSERT_EQ(group[i].windows, expected.windows) << "series " << i;
    ASSERT_EQ(group[i].detection.numel(), expected.detection.numel());
    for (int64_t t = 0; t < expected.detection.numel(); ++t) {
      EXPECT_EQ(group[i].detection.at(t), expected.detection.at(t))
          << "series " << i << " t " << t;
      EXPECT_EQ(group[i].status.at(t), expected.status.at(t));
      EXPECT_EQ(group[i].power.at(t), expected.power.at(t));
    }
  }

  // Scratch reuse across calls must not leak one group's votes into the
  // next: a second ScanMany over a permuted group stays bitwise-equal.
  std::vector<data::SeriesView> reversed(views.rbegin(), views.rend());
  std::vector<serve::ScanResult> second = coalesced.ScanMany(reversed);
  for (size_t i = 0; i < reversed.size(); ++i) {
    serve::ScanResult expected = sequential.Scan(reversed[i]);
    ASSERT_EQ(second[i].windows, expected.windows) << "series " << i;
    for (int64_t t = 0; t < expected.detection.numel(); ++t) {
      EXPECT_EQ(second[i].detection.at(t), expected.detection.at(t));
      EXPECT_EQ(second[i].status.at(t), expected.status.at(t));
      EXPECT_EQ(second[i].power.at(t), expected.power.at(t));
    }
  }
}

std::vector<std::vector<float>> SyntheticCohort(int households,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> cohort;
  cohort.reserve(static_cast<size_t>(households));
  for (int h = 0; h < households; ++h) {
    // Mixed lengths, including one shorter than the 16-sample window so
    // the padding path runs inside a shard too.
    const int64_t len = h == 4 ? 9 : 80 + 13 * h;
    std::vector<float> series(static_cast<size_t>(len));
    for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
    cohort.push_back(std::move(series));
  }
  return cohort;
}

TEST(ShardedScannerTest, MatchesSequentialScansBitwise) {
  core::CamalEnsemble ensemble = RandomEnsemble(11);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(16, 8, 4);
  opt.appliance_avg_power_w = 600.0f;
  const std::vector<std::vector<float>> cohort = SyntheticCohort(9, 12);

  serve::ShardedScannerOptions sharded_opt;
  sharded_opt.runner = opt;
  serve::ShardedScanner scanner(&ensemble, sharded_opt);
  std::vector<serve::ScanResult> sharded = scanner.ScanAll(cohort).value();

  serve::BatchRunner sequential(&ensemble, opt);
  ASSERT_EQ(sharded.size(), cohort.size());
  for (size_t h = 0; h < cohort.size(); ++h) {
    serve::ScanResult expected = sequential.Scan(cohort[h]);
    ASSERT_EQ(sharded[h].windows, expected.windows) << "household " << h;
    ASSERT_EQ(sharded[h].detection.numel(), expected.detection.numel());
    for (int64_t t = 0; t < expected.detection.numel(); ++t) {
      // Bitwise equality: shards run the same per-household code over
      // exact weight replicas, so thread count must not change a single
      // ULP of the stitched outputs.
      EXPECT_EQ(sharded[h].detection.at(t), expected.detection.at(t));
      EXPECT_EQ(sharded[h].status.at(t), expected.status.at(t));
      EXPECT_EQ(sharded[h].power.at(t), expected.power.at(t));
    }
  }
}

TEST(ShardedScannerTest, ShardCapDoesNotChangeResults) {
  // Serial (max_shards=1, inline, no pool) vs unrestricted sharding must
  // merge to bitwise-identical outputs — the single-thread vs multi-thread
  // equivalence of the stitching pipeline.
  core::CamalEnsemble ensemble = RandomEnsemble(13);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(16, 8, 8);
  opt.appliance_avg_power_w = 450.0f;
  const std::vector<std::vector<float>> cohort = SyntheticCohort(8, 21);

  serve::ShardedScannerOptions serial_opt;
  serial_opt.runner = opt;
  serial_opt.max_shards = 1;
  serve::ShardedScanner serial(&ensemble, serial_opt);
  serve::ShardedScannerOptions wide_opt;
  wide_opt.runner = opt;
  serve::ShardedScanner wide(&ensemble, wide_opt);

  std::vector<serve::ScanResult> a = serial.ScanAll(cohort).value();
  std::vector<serve::ScanResult> b = wide.ScanAll(cohort).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t h = 0; h < a.size(); ++h) {
    ASSERT_EQ(a[h].windows, b[h].windows);
    for (int64_t t = 0; t < a[h].detection.numel(); ++t) {
      EXPECT_EQ(a[h].detection.at(t), b[h].detection.at(t));
      EXPECT_EQ(a[h].status.at(t), b[h].status.at(t));
      EXPECT_EQ(a[h].power.at(t), b[h].power.at(t));
    }
  }
}

TEST(ShardedScannerTest, ClonesNonDefaultBackboneConfigs) {
  // Regression: shard replicas are rebuilt from the member's full config.
  // An Inception member with non-default depth used to make Clone abort
  // on a parameter-count mismatch inside EnsureShards.
  Rng rng(17);
  core::InceptionConfig config;
  config.kernel_size = 5;
  config.base_filters = 4;
  config.depth = 2;  // non-default (default is 3)
  std::vector<core::EnsembleMember> members;
  core::EnsembleMember member;
  member.model = std::make_unique<core::InceptionClassifier>(config, &rng);
  member.kernel_size = config.kernel_size;
  members.push_back(std::move(member));
  core::CamalEnsemble ensemble =
      core::CamalEnsemble::FromMembers(std::move(members));

  serve::ShardedScannerOptions opt;
  opt.runner.stream = SmallStream(16, 8, 4);
  opt.runner.appliance_avg_power_w = 500.0f;
  serve::ShardedScanner scanner(&ensemble, opt);
  const std::vector<std::vector<float>> cohort = SyntheticCohort(8, 23);
  std::vector<serve::ScanResult> scans = scanner.ScanAll(cohort).value();

  serve::BatchRunner sequential(&ensemble, opt.runner);
  for (size_t h = 0; h < cohort.size(); ++h) {
    serve::ScanResult expected = sequential.Scan(cohort[h]);
    for (int64_t t = 0; t < expected.detection.numel(); ++t) {
      EXPECT_EQ(scans[h].detection.at(t), expected.detection.at(t));
    }
  }
}

TEST(ShardedScannerTest, EmptyCohortYieldsNoResults) {
  core::CamalEnsemble ensemble = RandomEnsemble(15);
  serve::ShardedScannerOptions opt;
  opt.runner.stream = SmallStream(16, 8, 4);
  serve::ShardedScanner scanner(&ensemble, opt);
  EXPECT_TRUE(
      scanner.ScanAll(std::vector<std::vector<float>>()).value().empty());
}

TEST(ShardedScannerTest, GrowsWorkerPoolForLargerCohorts) {
  // Regression: the internal service used to be sized by the FIRST cohort
  // and frozen, silently serializing every later, larger cohort. A small
  // warm-up scan must not pin the pool at one worker.
  core::CamalEnsemble ensemble = RandomEnsemble(37);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(16, 8, 4);
  opt.appliance_avg_power_w = 500.0f;
  serve::ShardedScannerOptions sharded_opt;
  sharded_opt.runner = opt;
  serve::ShardedScanner scanner(&ensemble, sharded_opt);

  const std::vector<std::vector<float>> warmup = SyntheticCohort(1, 38);
  ASSERT_EQ(scanner.ScanAll(warmup).value().size(), 1u);

  const std::vector<std::vector<float>> cohort = SyntheticCohort(9, 39);
  std::vector<serve::ScanResult> scans = scanner.ScanAll(cohort).value();
  serve::BatchRunner sequential(&ensemble, opt);
  ASSERT_EQ(scans.size(), cohort.size());
  for (size_t h = 0; h < cohort.size(); ++h) {
    serve::ScanResult expected = sequential.Scan(cohort[h]);
    ASSERT_EQ(scans[h].windows, expected.windows) << "household " << h;
    for (int64_t t = 0; t < expected.detection.numel(); ++t) {
      EXPECT_EQ(scans[h].detection.at(t), expected.detection.at(t));
      EXPECT_EQ(scans[h].status.at(t), expected.status.at(t));
      EXPECT_EQ(scans[h].power.at(t), expected.power.at(t));
    }
  }
}

TEST(ShardedScannerTest, CoalesceBudgetPassesThroughForDeepCohorts) {
  // ROADMAP "adaptive coalescing" first step: when households outnumber
  // the shard cap, each worker serves a deep queue, so the configured
  // coalesce budget flows into the internal service; a cohort that fits
  // the pool keeps the budget pinned at 1. Results stay bitwise-identical
  // to sequential scans either way.
  core::CamalEnsemble ensemble = RandomEnsemble(41);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(16, 8, 4);
  opt.appliance_avg_power_w = 700.0f;
  serve::ShardedScannerOptions sharded_opt;
  sharded_opt.runner = opt;
  sharded_opt.max_shards = 2;
  sharded_opt.coalesce_budget = 4;
  serve::ShardedScanner scanner(&ensemble, sharded_opt);

  // One household can never outnumber the (>= 1 worker) pool: pinned off.
  const std::vector<std::vector<float>> one = SyntheticCohort(1, 42);
  ASSERT_EQ(scanner.ScanAll(one).value().size(), 1u);
  ASSERT_NE(scanner.service(), nullptr);
  EXPECT_EQ(scanner.service()->coalesce_budget(), 1);

  // Nine households over at most two workers: deep queues, the configured
  // budget flows into the (possibly rebuilt) service.
  const std::vector<std::vector<float>> cohort = SyntheticCohort(9, 43);
  std::vector<serve::ScanResult> scans = scanner.ScanAll(cohort).value();
  EXPECT_EQ(scanner.service()->coalesce_budget(), 4);
  serve::BatchRunner sequential(&ensemble, opt);
  ASSERT_EQ(scans.size(), cohort.size());
  for (size_t h = 0; h < cohort.size(); ++h) {
    serve::ScanResult expected = sequential.Scan(cohort[h]);
    ASSERT_EQ(scans[h].windows, expected.windows) << "household " << h;
    for (int64_t t = 0; t < expected.detection.numel(); ++t) {
      EXPECT_EQ(scans[h].detection.at(t), expected.detection.at(t));
      EXPECT_EQ(scans[h].status.at(t), expected.status.at(t));
      EXPECT_EQ(scans[h].power.at(t), expected.power.at(t));
    }
  }

  // A later small cohort reuses the wider pool but re-pins the budget to
  // 1 (runtime-adjustable — no rebuild): a cohort that fits the pool
  // must not have one worker drain its siblings' households.
  ASSERT_EQ(scanner.ScanAll(one).value().size(), 1u);
  EXPECT_EQ(scanner.service()->coalesce_budget(), 1);
}

// ---------------------------------------------------------------------
// RequestQueue: the bounded MPMC admission queue under the service.
// ---------------------------------------------------------------------

serve::QueuedScan MakeTask(const std::vector<float>* series) {
  serve::QueuedScan task;
  task.request.appliance = "appliance";
  task.request.series = data::SeriesView(*series);
  task.admitted = std::chrono::steady_clock::now();
  return task;
}

TEST(RequestQueueTest, PushPopIsFifo) {
  std::vector<float> series(4, 1.0f);
  serve::RequestQueue queue(/*capacity=*/4);
  for (int i = 0; i < 3; ++i) {
    serve::QueuedScan task = MakeTask(&series);
    task.request.household_id = std::to_string(i);
    ASSERT_TRUE(queue.Push(&task).ok());
  }
  EXPECT_EQ(queue.size(), 3);
  serve::QueuedScan out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out.request.household_id, std::to_string(i));
  }
  EXPECT_EQ(queue.size(), 0);
}

TEST(RequestQueueTest, RejectsWhenFullAndLeavesTaskIntact) {
  std::vector<float> series(4, 1.0f);
  serve::RequestQueue queue(/*capacity=*/2);
  serve::QueuedScan a = MakeTask(&series);
  serve::QueuedScan b = MakeTask(&series);
  ASSERT_TRUE(queue.Push(&a).ok());
  ASSERT_TRUE(queue.Push(&b).ok());

  serve::QueuedScan c = MakeTask(&series);
  std::future<Result<serve::ScanResult>> future = c.promise.get_future();
  Status rejected = queue.Push(&c);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  // The rejected task still owns its promise: the caller can fail it.
  c.promise.set_value(Result<serve::ScanResult>(rejected));
  EXPECT_FALSE(future.get().ok());

  // Popping one admits one again.
  serve::QueuedScan out;
  ASSERT_TRUE(queue.Pop(&out));
  serve::QueuedScan d = MakeTask(&series);
  EXPECT_TRUE(queue.Push(&d).ok());
}

TEST(RequestQueueTest, CloseStopsAdmissionButDrainsBacklog) {
  std::vector<float> series(4, 1.0f);
  serve::RequestQueue queue(/*capacity=*/4);
  serve::QueuedScan a = MakeTask(&series);
  serve::QueuedScan b = MakeTask(&series);
  ASSERT_TRUE(queue.Push(&a).ok());
  ASSERT_TRUE(queue.Push(&b).ok());
  queue.Close();
  EXPECT_TRUE(queue.closed());

  serve::QueuedScan late = MakeTask(&series);
  EXPECT_EQ(queue.Push(&late).code(), StatusCode::kFailedPrecondition);

  // Graceful shutdown contract: admitted tasks are still poppable, then
  // Pop reports exhaustion.
  serve::QueuedScan out;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_FALSE(queue.Pop(&out));  // stays drained
}

TEST(RequestQueueTest, PopBlocksUntilPushOrClose) {
  std::vector<float> series(4, 1.0f);
  serve::RequestQueue queue(/*capacity=*/0);  // unbounded
  std::atomic<int> popped{0};
  std::thread consumer([&] {
    serve::QueuedScan out;
    while (queue.Pop(&out)) popped.fetch_add(1);
  });
  for (int i = 0; i < 5; ++i) {
    serve::QueuedScan task = MakeTask(&series);
    ASSERT_TRUE(queue.Push(&task).ok());
  }
  queue.Close();
  consumer.join();
  EXPECT_EQ(popped.load(), 5);
}

serve::QueuedScan MakeApplianceTask(const std::vector<float>* series,
                                    const std::string& appliance,
                                    const std::string& id) {
  serve::QueuedScan task = MakeTask(series);
  task.request.appliance = appliance;
  task.request.household_id = id;
  return task;
}

TEST(RequestQueueTest, PopGroupDrainsSameApplianceKeepingOthersInOrder) {
  std::vector<float> series(4, 1.0f);
  serve::RequestQueue queue(/*capacity=*/0);
  for (const auto& [appliance, id] :
       std::vector<std::pair<std::string, std::string>>{{"a", "a1"},
                                                        {"b", "b1"},
                                                        {"a", "a2"},
                                                        {"c", "c1"},
                                                        {"a", "a3"},
                                                        {"a", "a4"}}) {
    serve::QueuedScan task = MakeApplianceTask(&series, appliance, id);
    ASSERT_TRUE(queue.Push(&task).ok());
  }

  // Head is a1; budget 2 drains a2 and a3 (admission order), skipping b1
  // and c1; a4 is beyond the budget and stays queued behind them.
  serve::QueuedScan first;
  std::vector<serve::QueuedScan> extras;
  ASSERT_TRUE(queue.PopGroup(&first, &extras, 2));
  EXPECT_EQ(first.request.household_id, "a1");
  ASSERT_EQ(extras.size(), 2u);
  EXPECT_EQ(extras[0].request.household_id, "a2");
  EXPECT_EQ(extras[1].request.household_id, "a3");
  EXPECT_EQ(queue.size(), 3);

  // The bypassed appliances kept their relative order: b1, c1, then a4.
  serve::QueuedScan out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.request.household_id, "b1");
  ASSERT_TRUE(queue.PopGroup(&first, &extras, 4));
  EXPECT_EQ(first.request.household_id, "c1");
  EXPECT_TRUE(extras.empty());  // no other 'c' request waits
  ASSERT_TRUE(queue.PopGroup(&first, &extras, 4));
  EXPECT_EQ(first.request.household_id, "a4");
  EXPECT_TRUE(extras.empty());
  EXPECT_EQ(queue.size(), 0);
}

TEST(RequestQueueTest, PopGroupWithZeroBudgetBehavesLikePop) {
  std::vector<float> series(4, 1.0f);
  serve::RequestQueue queue(/*capacity=*/0);
  serve::QueuedScan a = MakeApplianceTask(&series, "a", "a1");
  serve::QueuedScan b = MakeApplianceTask(&series, "a", "a2");
  ASSERT_TRUE(queue.Push(&a).ok());
  ASSERT_TRUE(queue.Push(&b).ok());

  serve::QueuedScan first;
  std::vector<serve::QueuedScan> extras;
  ASSERT_TRUE(queue.PopGroup(&first, &extras, 0));
  EXPECT_EQ(first.request.household_id, "a1");
  EXPECT_TRUE(extras.empty());
  EXPECT_EQ(queue.size(), 1);

  // Closed-and-drained reports exhaustion just like Pop.
  ASSERT_TRUE(queue.PopGroup(&first, &extras, 8));
  EXPECT_EQ(first.request.household_id, "a2");
  queue.Close();
  EXPECT_FALSE(queue.PopGroup(&first, &extras, 8));
}

TEST(RequestQueueTest, PushReportsBackpressureDistinctFromShutdown) {
  std::vector<float> series(4, 1.0f);
  serve::RequestQueue queue(/*capacity=*/1);
  serve::QueuedScan a = MakeTask(&series);
  ASSERT_TRUE(queue.Push(&a).ok());

  // Full queue: rejection flagged as backpressure.
  serve::QueuedScan b = MakeTask(&series);
  bool rejected_full = false;
  EXPECT_EQ(queue.Push(&b, &rejected_full).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(rejected_full);

  // Closed queue: same code, but not backpressure.
  queue.Close();
  serve::QueuedScan c = MakeTask(&series);
  rejected_full = true;
  EXPECT_EQ(queue.Push(&c, &rejected_full).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(rejected_full);
}

TEST(RequestQueueTest, AnnotatedLockPathKeepsAllNormalTrafficBitwiseFifo) {
  // PR 9 moved RequestQueue onto the annotated camal::Mutex/CondVar so
  // clang's thread-safety analysis proves the locking discipline at
  // compile time; the migration must be behavior-neutral. All-kNormal
  // traffic is the PR 8 degenerate case in which the priority scheduler
  // must reproduce plain FIFO bit for bit — asserted here as exact
  // admission-order service across both blocking dequeue paths
  // (Pop and PopGroup, i.e. MutexLock scopes plus the CondVar wait loop)
  // while a concurrent producer races the consumer in and out of waits.
  std::vector<float> series(4, 1.0f);
  serve::RequestQueue queue(/*capacity=*/0);
  constexpr int kTasks = 96;
  std::vector<std::string> served;  // written by consumer, read after join
  std::thread consumer([&] {
    serve::QueuedScan first;
    std::vector<serve::QueuedScan> extras;
    bool use_group = false;
    for (;;) {
      if (use_group) {
        if (!queue.PopGroup(&first, &extras, /*budget=*/4)) break;
        served.push_back(first.request.household_id);
        for (const auto& extra : extras) {
          served.push_back(extra.request.household_id);
        }
      } else {
        if (!queue.Pop(&first)) break;
        served.push_back(first.request.household_id);
      }
      use_group = !use_group;
    }
  });
  for (int i = 0; i < kTasks; ++i) {
    // One appliance, one (default) priority: every PopGroup drain is
    // eligible for every queued task, so any reordering the new lock
    // path introduced would surface as an out-of-place id below.
    serve::QueuedScan task =
        MakeApplianceTask(&series, "fridge", std::to_string(i));
    ASSERT_TRUE(queue.Push(&task).ok());
    if (i % 7 == 0) {
      // Let the consumer drain dry periodically so it re-enters the
      // CondVar wait path instead of always finding a backlog.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  queue.Close();
  consumer.join();
  ASSERT_EQ(served.size(), static_cast<size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(served[i], std::to_string(i)) << "position " << i;
  }
}

serve::QueuedScan MakePriorityTask(const std::vector<float>* series,
                                   serve::RequestPriority priority,
                                   const std::string& id) {
  serve::QueuedScan task = MakeTask(series);
  task.request.priority = priority;
  task.request.household_id = id;
  return task;
}

TEST(RequestQueueTest, PopPrefersHigherPriorityKeepingFifoWithinClass) {
  std::vector<float> series(4, 1.0f);
  serve::RequestQueue queue(/*capacity=*/0);
  using serve::RequestPriority;
  for (const auto& [priority, id] :
       std::vector<std::pair<RequestPriority, std::string>>{
           {RequestPriority::kNormal, "n1"},
           {RequestPriority::kLow, "l1"},
           {RequestPriority::kHigh, "h1"},
           {RequestPriority::kNormal, "n2"},
           {RequestPriority::kHigh, "h2"}}) {
    serve::QueuedScan task = MakePriorityTask(&series, priority, id);
    ASSERT_TRUE(queue.Push(&task).ok());
  }

  // Most-urgent class first; admission (FIFO) order within each class.
  serve::QueuedScan out;
  for (const char* expected : {"h1", "h2", "n1", "n2", "l1"}) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out.request.household_id, expected);
  }
  EXPECT_EQ(queue.size(), 0);
}

TEST(RequestQueueTest, PopGroupGroupsOnlySamePriority) {
  std::vector<float> series(4, 1.0f);
  serve::RequestQueue queue(/*capacity=*/0);
  using serve::RequestPriority;
  serve::QueuedScan n1 = MakePriorityTask(&series, RequestPriority::kNormal,
                                          "n1");
  serve::QueuedScan h1 = MakePriorityTask(&series, RequestPriority::kHigh,
                                          "h1");
  serve::QueuedScan n2 = MakePriorityTask(&series, RequestPriority::kNormal,
                                          "n2");
  serve::QueuedScan h2 = MakePriorityTask(&series, RequestPriority::kHigh,
                                          "h2");
  serve::QueuedScan hb = MakePriorityTask(&series, RequestPriority::kHigh,
                                          "hb");
  hb.request.appliance = "boiler";
  for (serve::QueuedScan* task : {&n1, &h1, &n2, &h2, &hb}) {
    ASSERT_TRUE(queue.Push(task).ok());
  }

  // The head jumps to h1 (highest class). Extras may only be same
  // appliance AND same priority: h2 joins, but n1/n2 (lower class, same
  // appliance) and hb (same class, other appliance) must not ride along
  // in a group whose batching order ignores their own class boundaries.
  serve::QueuedScan first;
  std::vector<serve::QueuedScan> extras;
  ASSERT_TRUE(queue.PopGroup(&first, &extras, 8));
  EXPECT_EQ(first.request.household_id, "h1");
  ASSERT_EQ(extras.size(), 1u);
  EXPECT_EQ(extras[0].request.household_id, "h2");

  // hb is now the most urgent; the normals follow in admission order.
  serve::QueuedScan out;
  for (const char* expected : {"hb", "n1", "n2"}) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out.request.household_id, expected);
  }
}

TEST(RequestQueueTest, AdaptiveDrainBudgetPolicy) {
  using serve::RequestQueue;
  // Deep backlog, no idle siblings: coalesce at full configured budget.
  EXPECT_EQ(RequestQueue::AdaptiveDrainBudget(8, 100, 0), 8);
  // Backlog smaller than the budget: never drain more than is waiting.
  EXPECT_EQ(RequestQueue::AdaptiveDrainBudget(8, 4, 0), 4);
  // Idle siblings carve their share out of the backlog first.
  EXPECT_EQ(RequestQueue::AdaptiveDrainBudget(8, 4, 3), 1);
  EXPECT_EQ(RequestQueue::AdaptiveDrainBudget(8, 4, 4), 0);
  // More idle workers than backlog: no coalescing at all, floor at 0.
  EXPECT_EQ(RequestQueue::AdaptiveDrainBudget(8, 2, 100), 0);
  // Degenerate inputs stay sane.
  EXPECT_EQ(RequestQueue::AdaptiveDrainBudget(0, 100, 0), 0);
  EXPECT_EQ(RequestQueue::AdaptiveDrainBudget(8, 0, 0), 0);
  EXPECT_EQ(RequestQueue::AdaptiveDrainBudget(8, 100, -3), 8);
}

TEST(RequestQueueTest, PopGroupLeavesWorkForIdleSiblings) {
  std::vector<float> series(4, 1.0f);
  serve::RequestQueue queue(/*capacity=*/0);

  // Control: with no idle sibling, a 2-deep same-appliance backlog
  // coalesces into one group under a generous budget.
  serve::QueuedScan a1 = MakeApplianceTask(&series, "a", "a1");
  serve::QueuedScan a2 = MakeApplianceTask(&series, "a", "a2");
  ASSERT_TRUE(queue.Push(&a1).ok());
  ASSERT_TRUE(queue.Push(&a2).ok());
  serve::QueuedScan first;
  std::vector<serve::QueuedScan> extras;
  ASSERT_TRUE(queue.PopGroup(&first, &extras, 8));
  EXPECT_EQ(extras.size(), 1u);
  EXPECT_EQ(queue.size(), 0);

  // Now park a sibling consumer in Pop on the empty queue...
  std::atomic<int> sibling_popped{0};
  std::thread sibling([&] {
    serve::QueuedScan out;
    if (queue.Pop(&out)) sibling_popped.fetch_add(1);
  });
  while (queue.waiting_consumers() != 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // ...and replay the same 2-deep backlog. Whatever the wakeup race, the
  // adaptive budget must keep this PopGroup from draining the sibling's
  // share: either the sibling grabs one first (backlog 1 when we pop), or
  // we pop first and see one idle consumer against a backlog of one
  // remaining task — budget 0 both ways. Each consumer serves exactly one.
  serve::QueuedScan b1 = MakeApplianceTask(&series, "a", "b1");
  serve::QueuedScan b2 = MakeApplianceTask(&series, "a", "b2");
  ASSERT_TRUE(queue.Push(&b1).ok());
  ASSERT_TRUE(queue.Push(&b2).ok());
  ASSERT_TRUE(queue.PopGroup(&first, &extras, 8));
  EXPECT_TRUE(extras.empty());
  sibling.join();
  EXPECT_EQ(sibling_popped.load(), 1);
  EXPECT_EQ(queue.size(), 0);
  queue.Close();
}

// ---------------------------------------------------------------------
// serve::Service: the asynchronous multi-appliance facade.
// ---------------------------------------------------------------------

serve::BatchRunnerOptions SmallRunner(int64_t window, int64_t stride,
                                      int64_t batch, float avg_power_w) {
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(window, stride, batch);
  opt.appliance_avg_power_w = avg_power_w;
  return opt;
}

TEST(ServiceTest, LifecycleAndRegistrationAreValidated) {
  core::CamalEnsemble ensemble = RandomEnsemble(19);
  const serve::BatchRunnerOptions runner = SmallRunner(16, 8, 4, 500.0f);
  serve::Service service;

  // Registration errors are Status, not aborts.
  EXPECT_EQ(service.RegisterAppliance("", &ensemble, runner).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.RegisterAppliance("fridge", nullptr, runner).code(),
            StatusCode::kInvalidArgument);
  // Starting with no appliances is refused.
  EXPECT_EQ(service.Start().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(service.RegisterAppliance("fridge", &ensemble, runner).ok());
  EXPECT_EQ(service.RegisterAppliance("fridge", &ensemble, runner).code(),
            StatusCode::kInvalidArgument);  // duplicate

  // Submitting before Start is refused through the future.
  std::vector<float> series(40, 1.0f);
  serve::ScanRequest request;
  request.appliance = "fridge";
  request.series = data::SeriesView(series);
  EXPECT_EQ(service.Submit(request).get().status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(service.Start().ok());
  EXPECT_TRUE(service.running());
  EXPECT_GE(service.workers(), 1);
  // Post-Start registration and double Start are refused.
  EXPECT_EQ(service.RegisterAppliance("kettle", &ensemble, runner).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Start().code(), StatusCode::kFailedPrecondition);
  service.Shutdown();
  EXPECT_FALSE(service.running());
}

TEST(ServiceTest, MalformedRequestsResolveWithStatusNotAborts) {
  core::CamalEnsemble ensemble = RandomEnsemble(21);
  serve::Service service;
  ASSERT_TRUE(service
                  .RegisterAppliance("dishwasher", &ensemble,
                                     SmallRunner(16, 8, 4, 700.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());
  std::vector<float> series(48, 1.0f);

  serve::ScanRequest empty_name;
  empty_name.series = data::SeriesView(series);
  EXPECT_EQ(service.Submit(empty_name).get().status().code(),
            StatusCode::kInvalidArgument);

  serve::ScanRequest null_series;
  null_series.appliance = "dishwasher";
  EXPECT_EQ(service.Submit(null_series).get().status().code(),
            StatusCode::kInvalidArgument);

  serve::ScanRequest unknown;
  unknown.appliance = "toaster";
  unknown.series = data::SeriesView(series);
  Result<serve::ScanResult> unknown_result = service.Submit(unknown).get();
  EXPECT_EQ(unknown_result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown_result.status().message().find("toaster"),
            std::string::npos);

  // All three rejections are validation failures, not backpressure — the
  // split telemetry must file them under rejected_invalid.
  EXPECT_EQ(service.stats().rejected_invalid, 3);
  EXPECT_EQ(service.stats().rejected_backpressure, 0);
  EXPECT_EQ(service.stats().rejected_total(), 3);
  EXPECT_EQ(service.stats().accepted, 0);

  // The service still serves valid requests after rejecting garbage.
  serve::ScanRequest valid;
  valid.appliance = "dishwasher";
  valid.series = data::SeriesView(series);
  EXPECT_TRUE(service.Submit(valid).get().ok());
}

TEST(ServiceTest, EmptySeriesReturnsEmptyResultThroughAsyncPath) {
  core::CamalEnsemble ensemble = RandomEnsemble(23);
  serve::Service service;
  ASSERT_TRUE(service
                  .RegisterAppliance("kettle", &ensemble,
                                     SmallRunner(16, 8, 4, 900.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());
  const std::vector<float> empty;
  serve::ScanRequest request;
  request.appliance = "kettle";
  request.series = data::SeriesView(empty);
  Result<serve::ScanResult> result = service.Submit(request).get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().windows, 0);
  EXPECT_EQ(result.value().detection.numel(), 0);
  EXPECT_EQ(result.value().status.numel(), 0);
  EXPECT_EQ(result.value().power.numel(), 0);
}

TEST(ServiceTest, ShortSeriesLeftPadMatchesSequentialThroughAsyncPath) {
  // The PR 2 left-pad path, exercised through the async route: a series
  // shorter than one window must come back identical to a direct
  // BatchRunner scan (which pads to a single window internally).
  core::CamalEnsemble ensemble = RandomEnsemble(25);
  const serve::BatchRunnerOptions runner = SmallRunner(32, 16, 4, 700.0f);
  serve::Service service;
  ASSERT_TRUE(service.RegisterAppliance("oven", &ensemble, runner).ok());
  ASSERT_TRUE(service.Start().ok());

  Rng rng(26);
  std::vector<float> series(11);
  for (auto& v : series) v = static_cast<float>(rng.Uniform(500.0, 3000.0));
  serve::ScanRequest request;
  request.appliance = "oven";
  request.series = data::SeriesView(series);
  Result<serve::ScanResult> result = service.Submit(request).get();
  ASSERT_TRUE(result.ok());
  const serve::ScanResult& async_scan = result.value();
  EXPECT_EQ(async_scan.windows, 1);  // one left-padded window
  EXPECT_GT(async_scan.latency_seconds, 0.0);

  serve::BatchRunner sequential(&ensemble, runner);
  serve::ScanResult expected = sequential.Scan(series);
  ASSERT_EQ(async_scan.detection.numel(), expected.detection.numel());
  for (int64_t t = 0; t < expected.detection.numel(); ++t) {
    EXPECT_EQ(async_scan.detection.at(t), expected.detection.at(t));
    EXPECT_EQ(async_scan.status.at(t), expected.status.at(t));
    EXPECT_EQ(async_scan.power.at(t), expected.power.at(t));
  }
}

TEST(ServiceTest, AsyncResultsMatchSequentialBitwiseAcrossAppliances) {
  // Two appliances with different scan options, interleaved submissions,
  // several workers: whatever worker serves a request, its replica must
  // produce bit-for-bit the result of a sequential BatchRunner::Scan.
  core::CamalEnsemble dishwasher = RandomEnsemble(27);
  core::CamalEnsemble kettle = RandomEnsemble(28);
  const serve::BatchRunnerOptions dish_opt = SmallRunner(16, 8, 4, 600.0f);
  const serve::BatchRunnerOptions kettle_opt = SmallRunner(16, 4, 8, 900.0f);

  serve::ServiceOptions service_opt;
  service_opt.workers = 3;
  serve::Service service(service_opt);
  ASSERT_TRUE(
      service.RegisterAppliance("dishwasher", &dishwasher, dish_opt).ok());
  ASSERT_TRUE(service.RegisterAppliance("kettle", &kettle, kettle_opt).ok());
  ASSERT_TRUE(service.Start().ok());
  EXPECT_EQ(service.workers(), 3);

  const std::vector<std::vector<float>> cohort = SyntheticCohort(6, 29);
  std::vector<std::future<Result<serve::ScanResult>>> dish_futures;
  std::vector<std::future<Result<serve::ScanResult>>> kettle_futures;
  for (const auto& series : cohort) {
    serve::ScanRequest dish_request;
    dish_request.appliance = "dishwasher";
    dish_request.series = data::SeriesView(series);
    dish_futures.push_back(service.Submit(std::move(dish_request)));
    serve::ScanRequest kettle_request;
    kettle_request.appliance = "kettle";
    kettle_request.series = data::SeriesView(series);
    kettle_futures.push_back(service.Submit(std::move(kettle_request)));
  }

  // Harvest every future BEFORE scanning sequentially: worker 0 borrows
  // the original ensembles, so a sequential scan that overlapped the
  // in-flight requests would race on their per-forward caches.
  std::vector<serve::ScanResult> dish_async, kettle_async;
  for (size_t h = 0; h < cohort.size(); ++h) {
    Result<serve::ScanResult> dish_result = dish_futures[h].get();
    ASSERT_TRUE(dish_result.ok()) << dish_result.status().ToString();
    dish_async.push_back(std::move(dish_result).value());
    Result<serve::ScanResult> kettle_result = kettle_futures[h].get();
    ASSERT_TRUE(kettle_result.ok()) << kettle_result.status().ToString();
    kettle_async.push_back(std::move(kettle_result).value());
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, 12);
  EXPECT_EQ(stats.rejected_total(), 0);
  service.Shutdown();

  serve::BatchRunner dish_sequential(&dishwasher, dish_opt);
  serve::BatchRunner kettle_sequential(&kettle, kettle_opt);
  for (size_t h = 0; h < cohort.size(); ++h) {
    for (bool dish : {true, false}) {
      const serve::ScanResult& async_scan =
          dish ? dish_async[h] : kettle_async[h];
      serve::ScanResult expected = dish ? dish_sequential.Scan(cohort[h])
                                        : kettle_sequential.Scan(cohort[h]);
      ASSERT_EQ(async_scan.windows, expected.windows) << "household " << h;
      for (int64_t t = 0; t < expected.detection.numel(); ++t) {
        EXPECT_EQ(async_scan.detection.at(t), expected.detection.at(t));
        EXPECT_EQ(async_scan.status.at(t), expected.status.at(t));
        EXPECT_EQ(async_scan.power.at(t), expected.power.at(t));
      }
    }
  }
}

TEST(ServiceTest, ShutdownDrainsAdmittedThenRejectsSubmissions) {
  core::CamalEnsemble ensemble = RandomEnsemble(33);
  serve::ServiceOptions service_opt;
  service_opt.workers = 2;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("heater", &ensemble,
                                     SmallRunner(16, 8, 4, 1200.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  const std::vector<std::vector<float>> cohort = SyntheticCohort(6, 34);
  std::vector<std::future<Result<serve::ScanResult>>> futures;
  for (const auto& series : cohort) {
    serve::ScanRequest request;
    request.appliance = "heater";
    request.series = data::SeriesView(series);
    futures.push_back(service.Submit(std::move(request)));
  }
  // Graceful: every admitted request is served before workers exit.
  service.Shutdown();
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  EXPECT_EQ(service.stats().completed, 6);

  // Post-shutdown submissions resolve with kFailedPrecondition.
  serve::ScanRequest late;
  late.appliance = "heater";
  late.series = data::SeriesView(cohort.front());
  Result<serve::ScanResult> rejected = service.Submit(late).get();
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  // Shutdown stays idempotent.
  service.Shutdown();
}

TEST(ServiceTest, FullQueueRejectsWithBackpressure) {
  core::CamalEnsemble ensemble = RandomEnsemble(35);
  serve::ServiceOptions service_opt;
  service_opt.workers = 1;
  service_opt.queue_capacity = 1;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("ev", &ensemble,
                                     SmallRunner(16, 8, 4, 7000.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  // A long series keeps the single worker busy while quick submissions
  // pile into the capacity-1 queue: at most one can wait, the rest must
  // be rejected with kFailedPrecondition instead of queuing unboundedly.
  std::vector<float> long_series(60000, 100.0f);
  std::vector<float> short_series(64, 100.0f);
  std::vector<std::future<Result<serve::ScanResult>>> futures;
  serve::ScanRequest slow;
  slow.appliance = "ev";
  slow.series = data::SeriesView(long_series);
  futures.push_back(service.Submit(std::move(slow)));
  // Wait for the worker to pick the slow scan up, so the queue slot is
  // free and the burst below races only against a busy worker.
  while (service.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 8; ++i) {
    serve::ScanRequest request;
    request.appliance = "ev";
    request.series = data::SeriesView(short_series);
    futures.push_back(service.Submit(std::move(request)));
  }

  int64_t ok_count = 0, backpressure = 0;
  for (auto& future : futures) {
    Result<serve::ScanResult> result = future.get();
    if (result.ok()) {
      ++ok_count;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
      ++backpressure;
    }
  }
  // The slow request and at least the one queued behind it succeed; with
  // 8 rapid submissions against a busy worker and one slot, at least one
  // must bounce.
  EXPECT_GE(ok_count, 2);
  EXPECT_GE(backpressure, 1);
  EXPECT_EQ(ok_count + backpressure, 9);
  const serve::ServiceStats stats = service.stats();
  // Queue-full rejections are backpressure, not invalid requests — the
  // split that makes overload visible in telemetry.
  EXPECT_EQ(stats.rejected_backpressure, backpressure);
  EXPECT_EQ(stats.rejected_invalid, 0);
  EXPECT_EQ(stats.accepted, ok_count);
}

TEST(ServiceTest, CoalescedScansMatchSequentialBitwise) {
  // Deep queue, one worker: while the worker chews a long scan, a burst
  // of small same-appliance requests piles up; the worker then drains
  // them in coalesced groups (budget 4) through shared GEMM batches.
  // Every result — however it was grouped — must equal a lone sequential
  // BatchRunner scan bit for bit.
  core::CamalEnsemble ensemble = RandomEnsemble(53);
  const serve::BatchRunnerOptions runner = SmallRunner(16, 8, 8, 600.0f);
  serve::ServiceOptions service_opt;
  service_opt.workers = 1;
  service_opt.queue_capacity = 0;
  service_opt.coalesce_budget = 4;
  serve::Service service(service_opt);
  ASSERT_TRUE(service.RegisterAppliance("fridge", &ensemble, runner).ok());
  ASSERT_TRUE(service.Start().ok());

  Rng rng(54);
  std::vector<float> slow_series(60000);
  for (auto& v : slow_series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
  std::vector<std::vector<float>> small = SyntheticCohort(8, 55);

  std::vector<std::future<Result<serve::ScanResult>>> futures;
  serve::ScanRequest slow;
  slow.household_id = "slow";
  slow.appliance = "fridge";
  slow.series = data::SeriesView(slow_series);
  futures.push_back(service.Submit(std::move(slow)));
  // Wait until the worker has the slow scan in flight, so the burst below
  // queues up behind it and coalesced groups actually form.
  while (service.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (size_t i = 0; i < small.size(); ++i) {
    serve::ScanRequest request;
    request.household_id = "small_" + std::to_string(i);
    request.appliance = "fridge";
    request.series = data::SeriesView(small[i]);
    futures.push_back(service.Submit(std::move(request)));
  }

  std::vector<serve::ScanResult> async_results;
  for (auto& future : futures) {
    Result<serve::ScanResult> result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    async_results.push_back(std::move(result).value());
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 9);
  // The burst was fully queued while the worker scanned the slow series,
  // so at least the first drained group must have coalesced.
  EXPECT_GE(stats.coalesced_groups, 1);
  EXPECT_GE(stats.coalesced_requests, 2);
  service.Shutdown();

  serve::BatchRunner sequential(&ensemble, runner);
  serve::ScanResult expected_slow = sequential.Scan(slow_series);
  ASSERT_EQ(async_results[0].windows, expected_slow.windows);
  for (int64_t t = 0; t < expected_slow.detection.numel(); ++t) {
    ASSERT_EQ(async_results[0].detection.at(t), expected_slow.detection.at(t));
    ASSERT_EQ(async_results[0].status.at(t), expected_slow.status.at(t));
    ASSERT_EQ(async_results[0].power.at(t), expected_slow.power.at(t));
  }
  for (size_t i = 0; i < small.size(); ++i) {
    const serve::ScanResult& got = async_results[i + 1];
    serve::ScanResult expected = sequential.Scan(small[i]);
    ASSERT_EQ(got.windows, expected.windows) << "household " << i;
    ASSERT_EQ(got.detection.numel(), expected.detection.numel());
    for (int64_t t = 0; t < expected.detection.numel(); ++t) {
      EXPECT_EQ(got.detection.at(t), expected.detection.at(t))
          << "household " << i << " t " << t;
      EXPECT_EQ(got.status.at(t), expected.status.at(t));
      EXPECT_EQ(got.power.at(t), expected.power.at(t));
    }
  }
}

TEST(ServiceTest, HighPriorityOvertakesQueuedBacklog) {
  // One worker, busy with a long scan; behind it queue three kLow
  // requests and then one kHigh. The worker must serve the late kHigh
  // before any of the earlier kLow ones — observed through the fault
  // injector's scan hook, which fires in serving order.
  core::CamalEnsemble ensemble = RandomEnsemble(61);
  std::mutex served_mu;
  std::vector<std::string> served;
  FaultInjector injector;
  injector.set_scan_hook([&](const std::string& household) {
    std::lock_guard<std::mutex> lock(served_mu);
    served.push_back(household);
  });
  serve::ServiceOptions service_opt;
  service_opt.workers = 1;
  service_opt.queue_capacity = 0;
  service_opt.coalesce_budget = 1;
  service_opt.fault_injector = &injector;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("oven", &ensemble,
                                     SmallRunner(16, 8, 4, 2000.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  std::vector<float> slow_series(60000, 800.0f);
  std::vector<float> short_series(64, 800.0f);
  std::vector<std::future<Result<serve::ScanResult>>> futures;
  serve::ScanRequest slow;
  slow.household_id = "slow";
  slow.appliance = "oven";
  slow.series = data::SeriesView(slow_series);
  futures.push_back(service.Submit(std::move(slow)));
  while (service.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 3; ++i) {
    serve::ScanRequest low;
    low.household_id = "low_" + std::to_string(i);
    low.appliance = "oven";
    low.series = data::SeriesView(short_series);
    low.priority = serve::RequestPriority::kLow;
    futures.push_back(service.Submit(std::move(low)));
  }
  serve::ScanRequest high;
  high.household_id = "high";
  high.appliance = "oven";
  high.series = data::SeriesView(short_series);
  high.priority = serve::RequestPriority::kHigh;
  futures.push_back(service.Submit(std::move(high)));

  for (auto& future : futures) {
    ASSERT_TRUE(future.get().ok());
  }
  service.Shutdown();
  ASSERT_EQ(served.size(), 5u);
  EXPECT_EQ(served[0], "slow");
  // The kHigh submission was last in but first out of the backlog.
  EXPECT_EQ(served[1], "high");
  EXPECT_EQ(served[2], "low_0");
  EXPECT_EQ(served[3], "low_1");
  EXPECT_EQ(served[4], "low_2");
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed_high, 1);
  EXPECT_EQ(stats.completed_normal, 1);
  EXPECT_EQ(stats.completed_low, 3);
  EXPECT_EQ(stats.completed_high + stats.completed_normal +
                stats.completed_low,
            stats.completed);
}

TEST(ServiceTest, ExpiredRequestsAreShedBeforeScanning) {
  // While the worker is held inside a gate request, one queued request's
  // deadline lapses. On release, the worker must shed it — distinct
  // kDeadlineExceeded status, no scan (the scan hook never sees it) —
  // and still serve its unexpired neighbor.
  core::CamalEnsemble ensemble = RandomEnsemble(63);
  std::atomic<bool> release{false};
  std::mutex served_mu;
  std::vector<std::string> served;
  FaultInjector injector;
  injector.set_scan_hook([&](const std::string& household) {
    {
      std::lock_guard<std::mutex> lock(served_mu);
      served.push_back(household);
    }
    if (household == "gate") {
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  serve::ServiceOptions service_opt;
  service_opt.workers = 1;
  service_opt.queue_capacity = 0;
  service_opt.coalesce_budget = 1;
  service_opt.fault_injector = &injector;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("kettle", &ensemble,
                                     SmallRunner(16, 8, 4, 900.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  std::vector<float> series(64, 500.0f);
  serve::ScanRequest gate;
  gate.household_id = "gate";
  gate.appliance = "kettle";
  gate.series = data::SeriesView(series);
  std::future<Result<serve::ScanResult>> gate_future =
      service.Submit(std::move(gate));
  while (service.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  serve::ScanRequest doomed;
  doomed.household_id = "doomed";
  doomed.appliance = "kettle";
  doomed.series = data::SeriesView(series);
  doomed.deadline_seconds = 0.02;
  std::future<Result<serve::ScanResult>> doomed_future =
      service.Submit(std::move(doomed));
  serve::ScanRequest patient;
  patient.household_id = "patient";
  patient.appliance = "kettle";
  patient.series = data::SeriesView(series);
  std::future<Result<serve::ScanResult>> patient_future =
      service.Submit(std::move(patient));

  // Let the 20ms deadline lapse while the worker is still gated, then
  // release it onto the backlog.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  release.store(true);

  ASSERT_TRUE(gate_future.get().ok());
  Result<serve::ScanResult> shed = doomed_future.get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(shed.status().message().find("shed without scanning"),
            std::string::npos);
  ASSERT_TRUE(patient_future.get().ok());
  service.Shutdown();

  // The shed request never reached the scan path: the hook saw only the
  // gate and the patient request.
  ASSERT_EQ(served.size(), 2u);
  EXPECT_EQ(served[0], "gate");
  EXPECT_EQ(served[1], "patient");
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed_deadline, 1);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.accepted, 3);
}

TEST(ServiceTest, NegativeDeadlineIsRejectedAsInvalid) {
  core::CamalEnsemble ensemble = RandomEnsemble(65);
  serve::Service service;
  ASSERT_TRUE(service
                  .RegisterAppliance("fridge", &ensemble,
                                     SmallRunner(16, 8, 4, 150.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());
  std::vector<float> series(32, 100.0f);
  serve::ScanRequest request;
  request.appliance = "fridge";
  request.series = data::SeriesView(series);
  request.deadline_seconds = -0.5;
  Result<serve::ScanResult> rejected = service.Submit(std::move(request)).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.stats().rejected_invalid, 1);
}

TEST(ServiceTest, MixedPrioritiesWithSlackDeadlinesStayBitwiseIdentical) {
  // The QoS knobs reorder and (under load) shed, but for requests that DO
  // get served the results policy is untouched: a burst with mixed
  // priorities and generous deadlines must reproduce lone sequential
  // BatchRunner scans bit for bit, exactly like the plain coalescing test.
  core::CamalEnsemble ensemble = RandomEnsemble(67);
  const serve::BatchRunnerOptions runner = SmallRunner(16, 8, 8, 600.0f);
  serve::ServiceOptions service_opt;
  service_opt.workers = 1;
  service_opt.queue_capacity = 0;
  service_opt.coalesce_budget = 4;
  serve::Service service(service_opt);
  ASSERT_TRUE(service.RegisterAppliance("fridge", &ensemble, runner).ok());
  ASSERT_TRUE(service.Start().ok());

  std::vector<float> slow_series(60000, 350.0f);
  std::vector<std::vector<float>> small = SyntheticCohort(8, 69);
  const serve::RequestPriority priorities[] = {serve::RequestPriority::kHigh,
                                               serve::RequestPriority::kNormal,
                                               serve::RequestPriority::kLow};

  serve::ScanRequest slow;
  slow.household_id = "slow";
  slow.appliance = "fridge";
  slow.series = data::SeriesView(slow_series);
  std::future<Result<serve::ScanResult>> slow_future =
      service.Submit(std::move(slow));
  while (service.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<std::future<Result<serve::ScanResult>>> futures;
  for (size_t i = 0; i < small.size(); ++i) {
    serve::ScanRequest request;
    request.household_id = "small_" + std::to_string(i);
    request.appliance = "fridge";
    request.series = data::SeriesView(small[i]);
    request.priority = priorities[i % 3];
    request.deadline_seconds = 30.0;  // generous: never sheds in-test
    futures.push_back(service.Submit(std::move(request)));
  }

  ASSERT_TRUE(slow_future.get().ok());
  std::vector<serve::ScanResult> async_results;
  for (auto& future : futures) {
    Result<serve::ScanResult> result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    async_results.push_back(std::move(result).value());
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 9);
  EXPECT_EQ(stats.shed_deadline, 0);
  EXPECT_EQ(stats.completed_high + stats.completed_normal +
                stats.completed_low,
            stats.completed);
  service.Shutdown();

  // futures[i] corresponds to small[i] regardless of the order the
  // scheduler served them in — reordering moves time, never bits.
  serve::BatchRunner sequential(&ensemble, runner);
  for (size_t i = 0; i < small.size(); ++i) {
    const serve::ScanResult& got = async_results[i];
    serve::ScanResult expected = sequential.Scan(small[i]);
    ASSERT_EQ(got.windows, expected.windows) << "household " << i;
    ASSERT_EQ(got.detection.numel(), expected.detection.numel());
    for (int64_t t = 0; t < expected.detection.numel(); ++t) {
      ASSERT_EQ(got.detection.at(t), expected.detection.at(t))
          << "household " << i << " t " << t;
      ASSERT_EQ(got.status.at(t), expected.status.at(t));
      ASSERT_EQ(got.power.at(t), expected.power.at(t));
    }
  }
}

TEST(ServiceTest, ThrowingScanResolvesFutureWithInternal) {
  // Regression: a scan that threw used to leave the request's promise
  // unfulfilled — the submitter blocked forever on the future — and
  // unwound the worker thread. It must resolve the future with kInternal
  // and keep the worker alive for the next request.
  core::CamalEnsemble ensemble = RandomEnsemble(57);
  FaultPlan plan;
  plan.scan_label = "poison";  // every scan of this household throws
  FaultInjector injector(plan);
  serve::ServiceOptions service_opt;
  service_opt.workers = 1;
  service_opt.coalesce_budget = 1;
  service_opt.fault_injector = &injector;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("kettle", &ensemble,
                                     SmallRunner(16, 8, 4, 900.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  std::vector<float> series(48, 500.0f);
  serve::ScanRequest poison;
  poison.household_id = "poison";
  poison.appliance = "kettle";
  poison.series = data::SeriesView(series);
  Result<serve::ScanResult> poisoned = service.Submit(std::move(poison)).get();
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), StatusCode::kInternal);
  EXPECT_NE(poisoned.status().message().find("injected scan fault"),
            std::string::npos);

  // The worker survived: the next request is served normally.
  serve::ScanRequest healthy;
  healthy.household_id = "healthy";
  healthy.appliance = "kettle";
  healthy.series = data::SeriesView(series);
  EXPECT_TRUE(service.Submit(std::move(healthy)).get().ok());
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.accepted, 2);
}

TEST(ServiceTest, ThrowingCoalescedGroupFailsEveryMemberOnce) {
  // When a coalesced group's shared scan throws, every request of the
  // group resolves with kInternal (exactly once — no hung futures), and
  // the worker lives on to serve later requests.
  core::CamalEnsemble ensemble = RandomEnsemble(59);
  FaultPlan plan;
  plan.scan_label = "poison";
  FaultInjector injector(plan);
  serve::ServiceOptions service_opt;
  service_opt.workers = 1;
  service_opt.queue_capacity = 0;
  service_opt.coalesce_budget = 8;
  service_opt.fault_injector = &injector;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("oven", &ensemble,
                                     SmallRunner(16, 8, 4, 1100.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  Rng rng(60);
  std::vector<float> slow_series(60000);
  for (auto& v : slow_series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
  std::vector<float> series(48, 800.0f);

  serve::ScanRequest slow;
  slow.household_id = "slow";
  slow.appliance = "oven";
  slow.series = data::SeriesView(slow_series);
  std::future<Result<serve::ScanResult>> slow_future =
      service.Submit(std::move(slow));
  while (service.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Both queue behind the slow scan, so they drain as one group whose
  // head throws.
  serve::ScanRequest poison;
  poison.household_id = "poison";
  poison.appliance = "oven";
  poison.series = data::SeriesView(series);
  std::future<Result<serve::ScanResult>> poison_future =
      service.Submit(std::move(poison));
  serve::ScanRequest bystander;
  bystander.household_id = "bystander";
  bystander.appliance = "oven";
  bystander.series = data::SeriesView(series);
  std::future<Result<serve::ScanResult>> bystander_future =
      service.Submit(std::move(bystander));

  EXPECT_TRUE(slow_future.get().ok());
  Result<serve::ScanResult> poisoned = poison_future.get();
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), StatusCode::kInternal);
  Result<serve::ScanResult> bystood = bystander_future.get();
  ASSERT_FALSE(bystood.ok());
  EXPECT_EQ(bystood.status().code(), StatusCode::kInternal);

  // A fresh request is still served: the worker outlived the fault.
  serve::ScanRequest after;
  after.household_id = "after";
  after.appliance = "oven";
  after.series = data::SeriesView(series);
  EXPECT_TRUE(service.Submit(std::move(after)).get().ok());
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 2);
  EXPECT_EQ(stats.completed, 2);
}

// ---------------------------------------------------------------------
// Streaming sessions: incremental append-and-rescan (tentpole PR 6).
// ---------------------------------------------------------------------

void ExpectBitwiseEqual(const serve::ScanResult& got,
                        const serve::ScanResult& want,
                        const std::string& label) {
  ASSERT_EQ(got.detection.numel(), want.detection.numel()) << label;
  for (int64_t t = 0; t < want.detection.numel(); ++t) {
    // Bitwise equality: the incremental path must reproduce the exact
    // float accumulation order of a from-scratch stitch, so not a single
    // ULP may move.
    ASSERT_EQ(got.detection.at(t), want.detection.at(t))
        << label << " detection t=" << t;
    ASSERT_EQ(got.status.at(t), want.status.at(t))
        << label << " status t=" << t;
    ASSERT_EQ(got.power.at(t), want.power.at(t))
        << label << " power t=" << t;
  }
}

TEST(WindowMathTest, GridHelpersAgreeWithComputedOffsets) {
  // The session math and the one-shot window plan must share one source
  // of truth: grid count + tail predicate fully determine the offsets.
  for (int64_t len = 0; len <= 70; ++len) {
    for (int64_t stride : {3, 8, 16}) {
      const serve::WindowStreamOptions opt = SmallStream(16, stride, 4);
      const std::vector<int64_t> offsets =
          serve::ComputeWindowOffsets(len, opt);
      const int64_t grid = data::GridWindowCount(len, 16, stride);
      const bool tail = data::GridLeavesTail(len, 16, stride);
      ASSERT_EQ(static_cast<int64_t>(offsets.size()), grid + (tail ? 1 : 0))
          << "len=" << len << " stride=" << stride;
      if (tail) {
        ASSERT_EQ(offsets.back(), len - 16);
        ASSERT_NE((len - 16) % stride, 0);  // never collides with the grid
      }
      for (int64_t k = 0; k < grid; ++k) {
        ASSERT_EQ(offsets[static_cast<size_t>(k)], k * stride);
      }
    }
  }
}

TEST(BatchRunnerTest, AppendScanMatchesFromScratchBitwise) {
  // The tentpole gate at the runner level: every append's full-series
  // result must be bitwise-identical to a from-scratch scan of the
  // concatenated series. Chunks cross every edge on purpose: a start
  // shorter than one window (pad overlay), growth past the window
  // boundary, a zero-length delta, an all-NaN delta, and tail-sized
  // nibbles that leave/remove an end-aligned tail window.
  core::CamalEnsemble ensemble = RandomEnsemble(61);
  const serve::BatchRunnerOptions opt = SmallRunner(16, 8, 4, 650.0f);
  serve::BatchRunner incremental(&ensemble, opt);
  serve::BatchRunner reference(&ensemble, opt);

  Rng rng(62);
  serve::SessionScanState state;
  std::vector<float> concatenated;
  int64_t step = 0;
  for (int64_t chunk_len : {5, 7, 10, 0, 13, 40, 3, 8}) {
    std::vector<float> chunk(static_cast<size_t>(chunk_len));
    for (auto& v : chunk) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
    if (step == 4) {  // the 13-sample chunk arrives all-missing
      for (auto& v : chunk) v = std::nanf("");
    }
    concatenated.insert(concatenated.end(), chunk.begin(), chunk.end());

    serve::ScanResult got = incremental.AppendScan(&state, chunk);
    serve::ScanResult want = reference.Scan(concatenated);
    ASSERT_EQ(state.readings(),
              static_cast<int64_t>(concatenated.size()));
    // windows_full mirrors what the from-scratch scan really fed.
    ASSERT_EQ(got.windows_full, want.windows)
        << "step " << step << " len " << concatenated.size();
    ASSERT_LE(got.windows, got.windows_full);
    ExpectBitwiseEqual(got, want, "step " + std::to_string(step));
    ++step;
  }
  // By the end the series is long enough that persistence must have paid:
  // the last append fed strictly fewer windows than a full rescan.
  ASSERT_GT(state.readings(), 64);
  serve::ScanResult last =
      incremental.AppendScan(&state, std::vector<float>{1200.0f});
  concatenated.push_back(1200.0f);
  EXPECT_LT(last.windows, last.windows_full);
  ExpectBitwiseEqual(last, reference.Scan(concatenated), "final");
}

TEST(BatchRunnerTest, AppendScanManyCoalescesDistinctSessionsBitwise) {
  // Distinct sessions' appends share one feed phase (the GEMM batches the
  // service coalesces across households); each must still finalize to the
  // exact from-scratch result, whatever its neighbors contributed.
  core::CamalEnsemble ensemble = RandomEnsemble(63);
  const serve::BatchRunnerOptions opt = SmallRunner(16, 8, 4, 800.0f);
  serve::BatchRunner incremental(&ensemble, opt);
  serve::BatchRunner reference(&ensemble, opt);

  Rng rng(64);
  constexpr int kSessions = 3;
  serve::SessionScanState states[kSessions];
  std::vector<float> concatenated[kSessions];
  const int64_t chunk_lens[kSessions] = {21, 9, 33};
  for (int round = 0; round < 3; ++round) {
    std::vector<std::vector<float>> chunks(kSessions);
    std::vector<serve::SessionScanState*> state_ptrs;
    std::vector<data::SeriesView> deltas;
    for (int s = 0; s < kSessions; ++s) {
      chunks[s].resize(static_cast<size_t>(chunk_lens[s] + 2 * round));
      for (auto& v : chunks[s]) {
        v = static_cast<float>(rng.Uniform(0.0, 2500.0));
      }
      concatenated[s].insert(concatenated[s].end(), chunks[s].begin(),
                             chunks[s].end());
      state_ptrs.push_back(&states[s]);
      deltas.push_back(data::SeriesView(chunks[s]));
    }
    std::vector<serve::ScanResult> got =
        incremental.AppendScanMany(state_ptrs, deltas);
    ASSERT_EQ(got.size(), static_cast<size_t>(kSessions));
    for (int s = 0; s < kSessions; ++s) {
      serve::ScanResult want = reference.Scan(concatenated[s]);
      ASSERT_EQ(got[s].windows_full, want.windows);
      ExpectBitwiseEqual(got[s], want,
                         "round " + std::to_string(round) + " session " +
                             std::to_string(s));
    }
  }
}

TEST(ServiceTest, SessionAppendsMatchFromScratchSubmitsBitwise) {
  // The tentpole gate at the service level: appends served through the
  // queue/worker/coalescing machinery must equal one-shot Submits of the
  // concatenated series, bit for bit. Futures are harvested before the
  // reference Submits — worker 0 borrows the original ensemble.
  core::CamalEnsemble ensemble = RandomEnsemble(65);
  serve::ServiceOptions service_opt;
  service_opt.workers = 2;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("fridge", &ensemble,
                                     SmallRunner(16, 8, 4, 550.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  serve::SessionOptions session_opt;
  session_opt.household_id = "house-7";
  Result<std::shared_ptr<serve::Session>> created =
      service.CreateSession("fridge", session_opt);
  ASSERT_TRUE(created.ok());
  std::shared_ptr<serve::Session> session = created.value();
  EXPECT_EQ(session->id(), "house-7");
  EXPECT_EQ(session->appliance(), "fridge");

  Rng rng(66);
  std::vector<float> concatenated;
  std::vector<serve::ScanResult> incremental;
  for (int64_t chunk_len : {11, 30, 0, 8, 26}) {
    std::vector<float> chunk(static_cast<size_t>(chunk_len));
    for (auto& v : chunk) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
    concatenated.insert(concatenated.end(), chunk.begin(), chunk.end());
    Result<serve::ScanResult> result =
        session->AppendReadings(std::move(chunk)).get();
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result.value().latency_seconds, 0.0);
    incremental.push_back(std::move(result).value());
    EXPECT_EQ(session->readings(),
              static_cast<int64_t>(concatenated.size()));

    // Every prefix gets its reference one-shot scan via the owning
    // Submit overload (the request carries the buffer).
    Result<serve::ScanResult> reference =
        service.Submit("fridge", concatenated).get();
    ASSERT_TRUE(reference.ok());
    ExpectBitwiseEqual(incremental.back(), reference.value(),
                       "prefix " + std::to_string(concatenated.size()));
  }

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_created, 1);
  EXPECT_EQ(stats.live_sessions, 1);
  EXPECT_EQ(stats.session_appends, 5);
  EXPECT_EQ(stats.appended_readings,
            static_cast<int64_t>(concatenated.size()));
  // The series outgrew one window several appends ago, so persistence
  // must have saved real feed work.
  EXPECT_GT(stats.incremental_windows_saved, 0);

  EXPECT_TRUE(session->Close().ok());
  EXPECT_TRUE(session->closed());
  EXPECT_EQ(service.stats().live_sessions, 0);
  EXPECT_EQ(service.stats().sessions_closed, 1);
}

TEST(ServiceTest, ConcurrentSessionAppendsSerializePerSession) {
  // Appends to one session must serialize in submission order even when
  // fired without waiting, while distinct sessions proceed concurrently.
  // Result lengths prove the order: the k-th append of a session resolves
  // to the k-th cumulative prefix length.
  core::CamalEnsemble ensemble = RandomEnsemble(67);
  serve::ServiceOptions service_opt;
  service_opt.workers = 2;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("washer", &ensemble,
                                     SmallRunner(16, 8, 4, 420.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  constexpr int kSessions = 3;
  constexpr int kAppends = 6;
  const int64_t chunk_len = 12;
  std::vector<std::shared_ptr<serve::Session>> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(service.CreateSession("washer").value());
  }
  Rng rng(68);
  std::vector<std::vector<float>> concatenated(kSessions);
  std::vector<std::vector<std::future<Result<serve::ScanResult>>>> futures(
      kSessions);
  for (int k = 0; k < kAppends; ++k) {
    for (int s = 0; s < kSessions; ++s) {
      std::vector<float> chunk(static_cast<size_t>(chunk_len));
      for (auto& v : chunk) v = static_cast<float>(rng.Uniform(0.0, 2000.0));
      concatenated[static_cast<size_t>(s)].insert(
          concatenated[static_cast<size_t>(s)].end(), chunk.begin(),
          chunk.end());
      futures[static_cast<size_t>(s)].push_back(
          sessions[static_cast<size_t>(s)]->AppendReadings(
              std::move(chunk)));
    }
  }
  // Harvest everything before the reference Submits (worker 0 borrows the
  // original ensemble). The k-th future's length proves in-order serving.
  std::vector<serve::ScanResult> finals;
  for (int s = 0; s < kSessions; ++s) {
    for (int k = 0; k < kAppends; ++k) {
      Result<serve::ScanResult> result =
          futures[static_cast<size_t>(s)][static_cast<size_t>(k)].get();
      ASSERT_TRUE(result.ok()) << "session " << s << " append " << k;
      ASSERT_EQ(result.value().detection.numel(), (k + 1) * chunk_len)
          << "session " << s << " append " << k << " served out of order";
      if (k == kAppends - 1) finals.push_back(std::move(result).value());
    }
  }
  for (int s = 0; s < kSessions; ++s) {
    Result<serve::ScanResult> reference =
        service.Submit("washer", concatenated[static_cast<size_t>(s)]).get();
    ASSERT_TRUE(reference.ok());
    ExpectBitwiseEqual(finals[static_cast<size_t>(s)], reference.value(),
                       "session " + std::to_string(s));
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.session_appends, kSessions * kAppends);
  EXPECT_EQ(stats.failed, 0);
}

TEST(ServiceTest, DistinctSessionAppendsCoalesceIntoSharedBatches) {
  // One worker, deep queue: appends of distinct sessions drained together
  // must serve through one shared AppendScanMany pass (coalescing
  // telemetry ticks) and still match from-scratch Submits bitwise.
  core::CamalEnsemble ensemble = RandomEnsemble(69);
  serve::ServiceOptions service_opt;
  service_opt.workers = 1;
  service_opt.coalesce_budget = 8;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("heater", &ensemble,
                                     SmallRunner(16, 8, 4, 1200.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  // Park the lone worker on a long one-shot scan so the session appends
  // pile up behind it and dequeue as one group.
  Rng rng(70);
  std::vector<float> long_series(4096);
  for (auto& v : long_series) {
    v = static_cast<float>(rng.Uniform(0.0, 3000.0));
  }
  std::future<Result<serve::ScanResult>> plug =
      service.Submit("heater", long_series);

  constexpr int kSessions = 5;
  std::vector<std::shared_ptr<serve::Session>> sessions;
  std::vector<std::vector<float>> chunks(kSessions);
  std::vector<std::future<Result<serve::ScanResult>>> futures;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(service.CreateSession("heater").value());
    chunks[static_cast<size_t>(s)].resize(20 + 3 * static_cast<size_t>(s));
    for (auto& v : chunks[static_cast<size_t>(s)]) {
      v = static_cast<float>(rng.Uniform(0.0, 2500.0));
    }
    futures.push_back(sessions[static_cast<size_t>(s)]->AppendReadings(
        chunks[static_cast<size_t>(s)]));
  }

  ASSERT_TRUE(plug.get().ok());
  std::vector<serve::ScanResult> results;
  for (auto& future : futures) {
    Result<serve::ScanResult> result = future.get();
    ASSERT_TRUE(result.ok());
    results.push_back(std::move(result).value());
  }
  // The appends piled up behind the plug, so at least one group formed.
  const serve::ServiceStats stats = service.stats();
  EXPECT_GE(stats.coalesced_groups, 1);
  for (int s = 0; s < kSessions; ++s) {
    Result<serve::ScanResult> reference =
        service.Submit("heater", chunks[static_cast<size_t>(s)]).get();
    ASSERT_TRUE(reference.ok());
    ExpectBitwiseEqual(results[static_cast<size_t>(s)], reference.value(),
                       "session " + std::to_string(s));
  }
}

TEST(ServiceTest, AppendAfterCloseFailsWithFailedPrecondition) {
  core::CamalEnsemble ensemble = RandomEnsemble(71);
  serve::Service service;
  ASSERT_TRUE(service
                  .RegisterAppliance("dryer", &ensemble,
                                     SmallRunner(16, 8, 4, 2000.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());
  std::shared_ptr<serve::Session> session =
      service.CreateSession("dryer").value();
  ASSERT_TRUE(
      session->AppendReadings(std::vector<float>(24, 900.0f)).get().ok());

  ASSERT_TRUE(session->Close().ok());
  EXPECT_TRUE(session->closed());
  Result<serve::ScanResult> late =
      session->AppendReadings(std::vector<float>(8, 100.0f)).get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(late.status().message().find("closed"), std::string::npos);

  // Close is idempotent, and closing doesn't disturb the gauges twice.
  EXPECT_TRUE(session->Close().ok());
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_closed, 1);
  EXPECT_EQ(stats.live_sessions, 0);
  // Committed readings survive close for observability.
  EXPECT_EQ(session->readings(), 24);
}

TEST(ServiceTest, ShutdownWithLiveSessionsResolvesEveryFuture) {
  // ASan doubles as the leak gate here: every parked append's promise
  // must resolve (kFailedPrecondition), every session close, no worker
  // left joined-less, no QueuedScan leaked.
  core::CamalEnsemble ensemble = RandomEnsemble(73);
  serve::ServiceOptions service_opt;
  service_opt.workers = 1;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("pump", &ensemble,
                                     SmallRunner(16, 8, 4, 300.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  std::vector<std::shared_ptr<serve::Session>> sessions;
  std::vector<std::future<Result<serve::ScanResult>>> futures;
  for (int s = 0; s < 3; ++s) {
    sessions.push_back(service.CreateSession("pump").value());
    // Several appends per session: the first goes in flight, the rest
    // park on the session and meet Shutdown there.
    for (int k = 0; k < 4; ++k) {
      futures.push_back(sessions.back()->AppendReadings(
          std::vector<float>(40, static_cast<float>(100 * (k + 1)))));
    }
  }
  service.Shutdown();

  int ok = 0;
  int failed_precondition = 0;
  for (auto& future : futures) {
    Result<serve::ScanResult> result = future.get();  // must not hang
    if (result.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
      ++failed_precondition;
    }
  }
  EXPECT_EQ(ok + failed_precondition, 12);
  EXPECT_EQ(service.stats().live_sessions, 0);
  for (const auto& session : sessions) EXPECT_TRUE(session->closed());
  // Appends after shutdown reject immediately.
  EXPECT_EQ(sessions[0]
                ->AppendReadings(std::vector<float>(4, 1.0f))
                .get()
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServiceTest, SessionBackpressureBoundsParkedAppends) {
  // A session's park is bounded by max_pending_appends; the overflow
  // append rejects as backpressure without touching the global queue.
  core::CamalEnsemble ensemble = RandomEnsemble(75);
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::atomic<bool> gate_armed{true};
  FaultInjector injector;
  injector.set_scan_hook([&](const std::string& household) {
    if (gate_armed.load() && household == "slow-house") {
      gate_future.wait();
    }
  });
  serve::ServiceOptions service_opt;
  service_opt.workers = 1;
  service_opt.fault_injector = &injector;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("boiler", &ensemble,
                                     SmallRunner(16, 8, 4, 800.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  serve::SessionOptions session_opt;
  session_opt.household_id = "slow-house";
  session_opt.max_pending_appends = 2;
  std::shared_ptr<serve::Session> session =
      service.CreateSession("boiler", session_opt).value();

  // First append blocks on the gate; two park; the fourth overflows.
  std::vector<std::future<Result<serve::ScanResult>>> futures;
  for (int k = 0; k < 3; ++k) {
    futures.push_back(
        session->AppendReadings(std::vector<float>(10, 500.0f)));
  }
  Result<serve::ScanResult> overflow =
      session->AppendReadings(std::vector<float>(10, 500.0f)).get();
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(overflow.status().message().find("backpressure"),
            std::string::npos);
  EXPECT_GE(service.stats().rejected_backpressure, 1);

  gate_armed.store(false);
  gate.set_value();
  for (auto& future : futures) ASSERT_TRUE(future.get().ok());
  EXPECT_EQ(session->readings(), 30);
}

TEST(ServiceTest, EvictIdleSessionsSkipsBusyAndReclaimsQuiescent) {
  // Eviction takes only truly idle sessions: one session is held busy by
  // a gated append while the sweep runs, so it must survive; the idle one
  // goes. The busy session keeps working afterwards.
  core::CamalEnsemble ensemble = RandomEnsemble(77);
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::atomic<bool> gate_armed{true};
  FaultInjector injector;
  injector.set_scan_hook([&](const std::string& household) {
    if (gate_armed.load() && household == "busy-house") {
      gate_future.wait();
    }
  });
  serve::ServiceOptions service_opt;
  service_opt.workers = 1;
  service_opt.fault_injector = &injector;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("fan", &ensemble,
                                     SmallRunner(16, 8, 4, 60.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  serve::SessionOptions idle_opt;
  idle_opt.household_id = "idle-house";
  std::shared_ptr<serve::Session> idle =
      service.CreateSession("fan", idle_opt).value();
  ASSERT_TRUE(idle->AppendReadings(std::vector<float>(20, 40.0f)).get().ok());

  serve::SessionOptions busy_opt;
  busy_opt.household_id = "busy-house";
  std::shared_ptr<serve::Session> busy =
      service.CreateSession("fan", busy_opt).value();
  std::future<Result<serve::ScanResult>> in_flight =
      busy->AppendReadings(std::vector<float>(20, 50.0f));

  // Idle threshold 0: anything quiescent goes, anything busy stays.
  EXPECT_EQ(service.EvictIdleSessions(0.0), 1);
  EXPECT_TRUE(idle->closed());
  EXPECT_FALSE(busy->closed());
  EXPECT_EQ(service.stats().sessions_evicted, 1);
  EXPECT_EQ(service.stats().live_sessions, 1);

  gate_armed.store(false);
  gate.set_value();
  ASSERT_TRUE(in_flight.get().ok());
  // The survivor still serves appends after the sweep.
  ASSERT_TRUE(busy->AppendReadings(std::vector<float>(12, 55.0f)).get().ok());
  EXPECT_EQ(busy->readings(), 32);
  // The evicted handle rejects like a closed one.
  EXPECT_EQ(idle->AppendReadings(std::vector<float>(4, 1.0f))
                .get()
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServiceTest, EvictionRacesAppendsWithoutCorruption) {
  // TSan gate: appends and eviction sweeps hammer the same small session
  // fleet from two threads. Every future must resolve, every reading
  // either commits or fails cleanly, and the bookkeeping must balance.
  core::CamalEnsemble ensemble = RandomEnsemble(79);
  serve::ServiceOptions service_opt;
  service_opt.workers = 2;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("ac", &ensemble,
                                     SmallRunner(16, 8, 4, 1500.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  constexpr int kRounds = 40;
  std::atomic<bool> stop{false};
  std::thread evictor([&] {
    while (!stop.load()) service.EvictIdleSessions(0.0);
  });

  int64_t appends_ok = 0;
  int64_t appends_rejected = 0;
  for (int round = 0; round < kRounds; ++round) {
    Result<std::shared_ptr<serve::Session>> created =
        service.CreateSession("ac");
    ASSERT_TRUE(created.ok());
    std::shared_ptr<serve::Session> session = created.value();
    std::vector<std::future<Result<serve::ScanResult>>> futures;
    for (int k = 0; k < 3; ++k) {
      futures.push_back(
          session->AppendReadings(std::vector<float>(18, 700.0f)));
    }
    for (auto& future : futures) {
      Result<serve::ScanResult> result = future.get();
      if (result.ok()) {
        ++appends_ok;
      } else {
        // The sweep got between two appends: a clean closed-session
        // rejection, never a crash or a corrupt result.
        ASSERT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
        ++appends_rejected;
      }
    }
  }
  stop.store(true);
  evictor.join();

  EXPECT_EQ(appends_ok + appends_rejected, kRounds * 3);
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_created, kRounds);
  EXPECT_EQ(stats.sessions_created,
            stats.sessions_closed + stats.sessions_evicted +
                stats.live_sessions);
}

TEST(ServiceTest, ZeroLengthAndNaNTailAppendsStayBitwiseExact) {
  // Session lifecycle edges from the satellite list: an empty delta must
  // re-finalize without feeding anything, and an all-NaN tail must
  // zero-fill its windows and clamp power to 0 at the missing readings —
  // both bitwise-equal to the from-scratch scan.
  core::CamalEnsemble ensemble = RandomEnsemble(81);
  serve::ServiceOptions service_opt;
  service_opt.workers = 2;
  serve::Service service(service_opt);
  ASSERT_TRUE(service
                  .RegisterAppliance("tv", &ensemble,
                                     SmallRunner(16, 8, 4, 150.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());
  std::shared_ptr<serve::Session> session =
      service.CreateSession("tv").value();

  Rng rng(82);
  std::vector<float> concatenated;
  std::vector<float> normal(30);
  for (auto& v : normal) v = static_cast<float>(rng.Uniform(0.0, 1000.0));
  concatenated.insert(concatenated.end(), normal.begin(), normal.end());
  ASSERT_TRUE(session->AppendReadings(normal).get().ok());

  // Zero-length append: result covers the unchanged series.
  Result<serve::ScanResult> empty_append =
      session->AppendReadings(std::vector<float>()).get();
  ASSERT_TRUE(empty_append.ok());
  ASSERT_EQ(empty_append.value().detection.numel(), 30);
  Result<serve::ScanResult> reference =
      service.Submit("tv", concatenated).get();
  ASSERT_TRUE(reference.ok());
  ExpectBitwiseEqual(empty_append.value(), reference.value(), "empty");

  // NaN tail: missing readings vote through zero-filled windows and the
  // power estimate is forced to 0 there.
  std::vector<float> nan_tail(12, std::nanf(""));
  concatenated.insert(concatenated.end(), nan_tail.begin(), nan_tail.end());
  Result<serve::ScanResult> nan_append =
      session->AppendReadings(nan_tail).get();
  ASSERT_TRUE(nan_append.ok());
  for (int64_t t = 30; t < 42; ++t) {
    EXPECT_EQ(nan_append.value().power.at(t), 0.0f) << "t=" << t;
  }
  reference = service.Submit("tv", concatenated).get();
  ASSERT_TRUE(reference.ok());
  ExpectBitwiseEqual(nan_append.value(), reference.value(), "nan-tail");
}

TEST(ServiceTest, SessionAndSubmitValidationShareOneErrorContract) {
  core::CamalEnsemble ensemble = RandomEnsemble(83);
  serve::Service service;

  // CreateSession before Start is a lifecycle error, like Submit.
  EXPECT_EQ(service.CreateSession("fridge").status().code(),
            StatusCode::kFailedPrecondition);

  // Bad runner options are rejected at registration through Status — the
  // old path aborted inside the worker's BatchRunner constructor.
  serve::BatchRunnerOptions bad = SmallRunner(0, 8, 4, 500.0f);
  EXPECT_EQ(service.RegisterAppliance("fridge", &ensemble, bad).code(),
            StatusCode::kInvalidArgument);
  bad = SmallRunner(16, 0, 4, 500.0f);
  EXPECT_EQ(service.RegisterAppliance("fridge", &ensemble, bad).code(),
            StatusCode::kInvalidArgument);
  bad = SmallRunner(16, 8, 4, -1.0f);
  EXPECT_EQ(service.RegisterAppliance("fridge", &ensemble, bad).code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(service
                  .RegisterAppliance("fridge", &ensemble,
                                     SmallRunner(16, 8, 4, 500.0f))
                  .ok());
  ASSERT_TRUE(service.Start().ok());

  // Unknown appliance and duplicate ids surface as Status.
  EXPECT_EQ(service.CreateSession("toaster").status().code(),
            StatusCode::kNotFound);
  serve::SessionOptions opt;
  opt.household_id = "dup";
  ASSERT_TRUE(service.CreateSession("fridge", opt).ok());
  EXPECT_EQ(service.CreateSession("fridge", opt).status().code(),
            StatusCode::kInvalidArgument);
  opt.household_id.clear();
  opt.max_pending_appends = -1;
  EXPECT_EQ(service.CreateSession("fridge", opt).status().code(),
            StatusCode::kInvalidArgument);

  // A request that sets both series forms is ambiguous and rejected.
  std::vector<float> series(20, 1.0f);
  serve::ScanRequest both;
  both.appliance = "fridge";
  both.series = data::SeriesView(series);
  both.owned_series = series;
  EXPECT_EQ(service.Submit(std::move(both)).get().status().code(),
            StatusCode::kInvalidArgument);

  // The owning Submit overload serves from a buffer the caller dropped.
  std::future<Result<serve::ScanResult>> owned;
  {
    std::vector<float> ephemeral(40);
    Rng rng(84);
    for (auto& v : ephemeral) {
      v = static_cast<float>(rng.Uniform(0.0, 2000.0));
    }
    series = ephemeral;  // keep a copy for the reference scan
    owned = service.Submit("fridge", std::move(ephemeral));
  }
  Result<serve::ScanResult> owned_result = owned.get();
  ASSERT_TRUE(owned_result.ok());
  Result<serve::ScanResult> borrowed_result =
      service.Submit("fridge", series).get();
  ASSERT_TRUE(borrowed_result.ok());
  ExpectBitwiseEqual(owned_result.value(), borrowed_result.value(),
                     "owned-vs-copy");
}

}  // namespace
}  // namespace camal
