#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <set>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "core/ensemble.h"
#include "core/inception.h"
#include "core/resnet.h"
#include "serve/batch_runner.h"
#include "serve/sharded_scanner.h"
#include "serve/window_stream.h"

namespace camal {
namespace {

// Force a multi-thread pool even on single-core machines so sharded scans
// really run concurrently; an explicit CAMAL_THREADS (e.g. from CI) wins.
const bool kThreadsForced = [] {
  setenv("CAMAL_THREADS", "4", /*overwrite=*/0);
  return true;
}();

serve::WindowStreamOptions SmallStream(int64_t window, int64_t stride,
                                       int64_t batch) {
  serve::WindowStreamOptions opt;
  opt.window_length = window;
  opt.stride = stride;
  opt.batch_size = batch;
  return opt;
}

TEST(WindowStreamTest, CoversEveryTimestamp) {
  std::vector<float> series(100, 1.0f);
  serve::WindowStream stream(&series, SmallStream(16, 8, 4));
  std::vector<int> covered(series.size(), 0);
  for (int64_t off : stream.offsets()) {
    ASSERT_GE(off, 0);
    ASSERT_LE(off + 16, static_cast<int64_t>(series.size()));
    for (int64_t t = off; t < off + 16; ++t) ++covered[static_cast<size_t>(t)];
  }
  for (size_t t = 0; t < series.size(); ++t) {
    EXPECT_GT(covered[t], 0) << "timestamp " << t << " uncovered";
  }
}

TEST(WindowStreamTest, TailWindowAlignsToSeriesEnd) {
  // 20 samples, window 8, stride 8: grid covers [0,8) and [8,16); the tail
  // window [12,20) must be added for the last 4 samples.
  std::vector<float> series(20, 1.0f);
  serve::WindowStream stream(&series, SmallStream(8, 8, 4));
  ASSERT_EQ(stream.NumWindows(), 3);
  EXPECT_EQ(stream.offsets().back(), 12);
}

TEST(WindowStreamTest, TailWindowExactFitIsNotDuplicated) {
  // 32 samples, window 16, stride 8: offsets {0, 8, 16}; the last grid
  // window already ends at the series end (offsets.back() + L == len), so
  // no extra tail window may be added.
  std::vector<float> series(32, 1.0f);
  serve::WindowStream stream(&series, SmallStream(16, 8, 4));
  ASSERT_EQ(stream.NumWindows(), 3);
  EXPECT_EQ(stream.offsets().back() + 16,
            static_cast<int64_t>(series.size()));
}

TEST(WindowStreamTest, AllMissingWindowsAreZeroFilled) {
  std::vector<float> series(24, std::nanf(""));
  serve::WindowStream stream(&series, SmallStream(16, 8, 4));
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  ASSERT_EQ(stream.NextBatch(&batch, &offsets), 2);
  for (int64_t i = 0; i < batch.numel(); ++i) {
    EXPECT_EQ(batch.at(i), 0.0f) << "element " << i;
  }
}

TEST(WindowStreamTest, NextBatchReusesCallerTensor) {
  std::vector<float> series(80, 1.0f);  // 5 windows of 16 at stride 16
  serve::WindowStream stream(&series, SmallStream(16, 16, 2));
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  ASSERT_EQ(stream.NextBatch(&batch, &offsets), 2);
  const float* storage = batch.data();
  ASSERT_EQ(stream.NextBatch(&batch, &offsets), 2);
  EXPECT_EQ(batch.data(), storage);  // same shape: storage reused in place
  ASSERT_EQ(stream.NextBatch(&batch, &offsets), 1);
  EXPECT_EQ(batch.ShapeString(), "(1, 1, 16)");  // short batch reshapes
}

TEST(WindowStreamTest, ShortSeriesYieldsNothing) {
  std::vector<float> series(5, 1.0f);
  serve::WindowStream stream(&series, SmallStream(8, 4, 2));
  EXPECT_EQ(stream.NumWindows(), 0);
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 0);
}

TEST(WindowStreamTest, BatchesScaleAndZeroFillMissing) {
  std::vector<float> series(32, 2000.0f);
  series[3] = std::nanf("");
  serve::WindowStreamOptions opt = SmallStream(16, 16, 8);
  opt.input_scale = 1000.0f;
  serve::WindowStream stream(&series, opt);
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  ASSERT_EQ(stream.NextBatch(&batch, &offsets), 2);
  EXPECT_EQ(batch.ShapeString(), "(2, 1, 16)");
  EXPECT_EQ(offsets[0], 0);
  EXPECT_EQ(offsets[1], 16);
  EXPECT_FLOAT_EQ(batch.at3(0, 0, 0), 2.0f);   // 2000 W / 1000
  EXPECT_FLOAT_EQ(batch.at3(0, 0, 3), 0.0f);   // missing reading
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 0);
  stream.Reset();
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 2);
}

TEST(WindowStreamTest, SmallFinalBatchIsEmitted) {
  std::vector<float> series(80, 1.0f);
  serve::WindowStream stream(&series, SmallStream(16, 16, 4));
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  ASSERT_EQ(stream.NumWindows(), 5);
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 4);
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 1);
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 0);
}

core::CamalEnsemble RandomEnsemble(uint64_t seed) {
  Rng rng(seed);
  std::vector<core::EnsembleMember> members;
  for (int64_t k : {5, 9}) {
    core::ResNetConfig config;
    config.base_filters = 4;
    config.kernel_size = k;
    core::EnsembleMember member;
    member.model = std::make_unique<core::ResNetClassifier>(config, &rng);
    member.kernel_size = k;
    members.push_back(std::move(member));
  }
  return core::CamalEnsemble::FromMembers(std::move(members));
}

TEST(BatchRunnerTest, ScanShapesAndRanges) {
  core::CamalEnsemble ensemble = RandomEnsemble(3);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(16, 8, 4);
  opt.appliance_avg_power_w = 700.0f;
  serve::BatchRunner runner(&ensemble, opt);

  Rng rng(4);
  std::vector<float> series(120);
  for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
  serve::ScanResult result = runner.Scan(series);

  ASSERT_EQ(result.detection.numel(), static_cast<int64_t>(series.size()));
  ASSERT_EQ(result.status.numel(), static_cast<int64_t>(series.size()));
  ASSERT_EQ(result.power.numel(), static_cast<int64_t>(series.size()));
  EXPECT_GT(result.windows, 0);
  for (int64_t t = 0; t < result.detection.numel(); ++t) {
    EXPECT_GE(result.detection.at(t), 0.0f);
    EXPECT_LE(result.detection.at(t), 1.0f);
    EXPECT_TRUE(result.status.at(t) == 0.0f || result.status.at(t) == 1.0f);
    // §IV-C: estimated power never exceeds P_a or the aggregate.
    EXPECT_LE(result.power.at(t), 700.0f);
    EXPECT_LE(result.power.at(t),
              std::max(0.0f, series[static_cast<size_t>(t)]));
  }
}

TEST(BatchRunnerTest, BatchSizeDoesNotChangeResults) {
  core::CamalEnsemble ensemble = RandomEnsemble(5);
  Rng rng(6);
  std::vector<float> series(96);
  for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 2500.0));

  serve::BatchRunnerOptions small;
  small.stream = SmallStream(16, 8, 1);
  small.appliance_avg_power_w = 500.0f;
  serve::BatchRunnerOptions large = small;
  large.stream.batch_size = 32;

  serve::BatchRunner runner_small(&ensemble, small);
  serve::BatchRunner runner_large(&ensemble, large);
  serve::ScanResult a = runner_small.Scan(series);
  serve::ScanResult b = runner_large.Scan(series);
  ASSERT_EQ(a.windows, b.windows);
  for (int64_t t = 0; t < a.detection.numel(); ++t) {
    EXPECT_NEAR(a.detection.at(t), b.detection.at(t), 1e-4);
    EXPECT_EQ(a.status.at(t), b.status.at(t));
    EXPECT_NEAR(a.power.at(t), b.power.at(t), 1e-2);
  }
}

TEST(BatchRunnerTest, EmptySeriesReturnsZeros) {
  core::CamalEnsemble ensemble = RandomEnsemble(7);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(32, 16, 4);
  serve::BatchRunner runner(&ensemble, opt);
  serve::ScanResult result = runner.Scan(std::vector<float>());
  EXPECT_EQ(result.windows, 0);
  EXPECT_EQ(result.detection.numel(), 0);
  EXPECT_EQ(result.status.numel(), 0);
  EXPECT_EQ(result.power.numel(), 0);
}

TEST(BatchRunnerTest, ShortSeriesIsLeftPaddedAndScanned) {
  // Regression: series shorter than one window used to return all-zero
  // detection/status/power without ever consulting the model. They are now
  // left-padded with zeros to a single window and scanned for real.
  core::CamalEnsemble ensemble = RandomEnsemble(7);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(32, 16, 4);
  opt.appliance_avg_power_w = 700.0f;
  serve::BatchRunner runner(&ensemble, opt);

  Rng rng(9);
  std::vector<float> series(10);
  for (auto& v : series) v = static_cast<float>(rng.Uniform(500.0, 3000.0));
  serve::ScanResult result = runner.Scan(series);
  ASSERT_EQ(result.detection.numel(), 10);
  EXPECT_EQ(result.windows, 1);  // exactly one left-padded window
  // The ensemble's softmax probability is strictly positive, so a scan
  // that actually consulted the model cannot report zero detection.
  EXPECT_GT(result.detection.at(0), 0.0f);

  // The same window, padded by hand, must produce identical predictions
  // on the real samples (the pad occupies the first 22 positions).
  std::vector<float> padded(32, 0.0f);
  std::copy(series.begin(), series.end(), padded.begin() + 22);
  serve::ScanResult reference = runner.Scan(padded);
  ASSERT_EQ(reference.windows, 1);
  for (int64_t t = 0; t < 10; ++t) {
    EXPECT_EQ(result.detection.at(t), reference.detection.at(t + 22));
    EXPECT_EQ(result.status.at(t), reference.status.at(t + 22));
    EXPECT_EQ(result.power.at(t), reference.power.at(t + 22));
  }
}

std::vector<std::vector<float>> SyntheticCohort(int households,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> cohort;
  cohort.reserve(static_cast<size_t>(households));
  for (int h = 0; h < households; ++h) {
    // Mixed lengths, including one shorter than the 16-sample window so
    // the padding path runs inside a shard too.
    const int64_t len = h == 4 ? 9 : 80 + 13 * h;
    std::vector<float> series(static_cast<size_t>(len));
    for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
    cohort.push_back(std::move(series));
  }
  return cohort;
}

TEST(ShardedScannerTest, MatchesSequentialScansBitwise) {
  core::CamalEnsemble ensemble = RandomEnsemble(11);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(16, 8, 4);
  opt.appliance_avg_power_w = 600.0f;
  const std::vector<std::vector<float>> cohort = SyntheticCohort(9, 12);

  serve::ShardedScannerOptions sharded_opt;
  sharded_opt.runner = opt;
  serve::ShardedScanner scanner(&ensemble, sharded_opt);
  std::vector<serve::ScanResult> sharded = scanner.ScanAll(cohort);

  serve::BatchRunner sequential(&ensemble, opt);
  ASSERT_EQ(sharded.size(), cohort.size());
  for (size_t h = 0; h < cohort.size(); ++h) {
    serve::ScanResult expected = sequential.Scan(cohort[h]);
    ASSERT_EQ(sharded[h].windows, expected.windows) << "household " << h;
    ASSERT_EQ(sharded[h].detection.numel(), expected.detection.numel());
    for (int64_t t = 0; t < expected.detection.numel(); ++t) {
      // Bitwise equality: shards run the same per-household code over
      // exact weight replicas, so thread count must not change a single
      // ULP of the stitched outputs.
      EXPECT_EQ(sharded[h].detection.at(t), expected.detection.at(t));
      EXPECT_EQ(sharded[h].status.at(t), expected.status.at(t));
      EXPECT_EQ(sharded[h].power.at(t), expected.power.at(t));
    }
  }
}

TEST(ShardedScannerTest, ShardCapDoesNotChangeResults) {
  // Serial (max_shards=1, inline, no pool) vs unrestricted sharding must
  // merge to bitwise-identical outputs — the single-thread vs multi-thread
  // equivalence of the stitching pipeline.
  core::CamalEnsemble ensemble = RandomEnsemble(13);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(16, 8, 8);
  opt.appliance_avg_power_w = 450.0f;
  const std::vector<std::vector<float>> cohort = SyntheticCohort(8, 21);

  serve::ShardedScannerOptions serial_opt;
  serial_opt.runner = opt;
  serial_opt.max_shards = 1;
  serve::ShardedScanner serial(&ensemble, serial_opt);
  serve::ShardedScannerOptions wide_opt;
  wide_opt.runner = opt;
  serve::ShardedScanner wide(&ensemble, wide_opt);

  std::vector<serve::ScanResult> a = serial.ScanAll(cohort);
  std::vector<serve::ScanResult> b = wide.ScanAll(cohort);
  ASSERT_EQ(a.size(), b.size());
  for (size_t h = 0; h < a.size(); ++h) {
    ASSERT_EQ(a[h].windows, b[h].windows);
    for (int64_t t = 0; t < a[h].detection.numel(); ++t) {
      EXPECT_EQ(a[h].detection.at(t), b[h].detection.at(t));
      EXPECT_EQ(a[h].status.at(t), b[h].status.at(t));
      EXPECT_EQ(a[h].power.at(t), b[h].power.at(t));
    }
  }
}

TEST(ShardedScannerTest, ClonesNonDefaultBackboneConfigs) {
  // Regression: shard replicas are rebuilt from the member's full config.
  // An Inception member with non-default depth used to make Clone abort
  // on a parameter-count mismatch inside EnsureShards.
  Rng rng(17);
  core::InceptionConfig config;
  config.kernel_size = 5;
  config.base_filters = 4;
  config.depth = 2;  // non-default (default is 3)
  std::vector<core::EnsembleMember> members;
  core::EnsembleMember member;
  member.model = std::make_unique<core::InceptionClassifier>(config, &rng);
  member.kernel_size = config.kernel_size;
  members.push_back(std::move(member));
  core::CamalEnsemble ensemble =
      core::CamalEnsemble::FromMembers(std::move(members));

  serve::ShardedScannerOptions opt;
  opt.runner.stream = SmallStream(16, 8, 4);
  opt.runner.appliance_avg_power_w = 500.0f;
  serve::ShardedScanner scanner(&ensemble, opt);
  const std::vector<std::vector<float>> cohort = SyntheticCohort(8, 23);
  std::vector<serve::ScanResult> scans = scanner.ScanAll(cohort);

  serve::BatchRunner sequential(&ensemble, opt.runner);
  for (size_t h = 0; h < cohort.size(); ++h) {
    serve::ScanResult expected = sequential.Scan(cohort[h]);
    for (int64_t t = 0; t < expected.detection.numel(); ++t) {
      EXPECT_EQ(scans[h].detection.at(t), expected.detection.at(t));
    }
  }
}

TEST(ShardedScannerTest, EmptyCohortYieldsNoResults) {
  core::CamalEnsemble ensemble = RandomEnsemble(15);
  serve::ShardedScannerOptions opt;
  opt.runner.stream = SmallStream(16, 8, 4);
  serve::ShardedScanner scanner(&ensemble, opt);
  EXPECT_TRUE(scanner.ScanAll(std::vector<std::vector<float>>()).empty());
}

}  // namespace
}  // namespace camal
