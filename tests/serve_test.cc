#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "common/rng.h"
#include "core/ensemble.h"
#include "core/resnet.h"
#include "serve/batch_runner.h"
#include "serve/window_stream.h"

namespace camal {
namespace {

serve::WindowStreamOptions SmallStream(int64_t window, int64_t stride,
                                       int64_t batch) {
  serve::WindowStreamOptions opt;
  opt.window_length = window;
  opt.stride = stride;
  opt.batch_size = batch;
  return opt;
}

TEST(WindowStreamTest, CoversEveryTimestamp) {
  std::vector<float> series(100, 1.0f);
  serve::WindowStream stream(&series, SmallStream(16, 8, 4));
  std::vector<int> covered(series.size(), 0);
  for (int64_t off : stream.offsets()) {
    ASSERT_GE(off, 0);
    ASSERT_LE(off + 16, static_cast<int64_t>(series.size()));
    for (int64_t t = off; t < off + 16; ++t) ++covered[static_cast<size_t>(t)];
  }
  for (size_t t = 0; t < series.size(); ++t) {
    EXPECT_GT(covered[t], 0) << "timestamp " << t << " uncovered";
  }
}

TEST(WindowStreamTest, TailWindowAlignsToSeriesEnd) {
  // 20 samples, window 8, stride 8: grid covers [0,8) and [8,16); the tail
  // window [12,20) must be added for the last 4 samples.
  std::vector<float> series(20, 1.0f);
  serve::WindowStream stream(&series, SmallStream(8, 8, 4));
  ASSERT_EQ(stream.NumWindows(), 3);
  EXPECT_EQ(stream.offsets().back(), 12);
}

TEST(WindowStreamTest, ShortSeriesYieldsNothing) {
  std::vector<float> series(5, 1.0f);
  serve::WindowStream stream(&series, SmallStream(8, 4, 2));
  EXPECT_EQ(stream.NumWindows(), 0);
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 0);
}

TEST(WindowStreamTest, BatchesScaleAndZeroFillMissing) {
  std::vector<float> series(32, 2000.0f);
  series[3] = std::nanf("");
  serve::WindowStreamOptions opt = SmallStream(16, 16, 8);
  opt.input_scale = 1000.0f;
  serve::WindowStream stream(&series, opt);
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  ASSERT_EQ(stream.NextBatch(&batch, &offsets), 2);
  EXPECT_EQ(batch.ShapeString(), "(2, 1, 16)");
  EXPECT_EQ(offsets[0], 0);
  EXPECT_EQ(offsets[1], 16);
  EXPECT_FLOAT_EQ(batch.at3(0, 0, 0), 2.0f);   // 2000 W / 1000
  EXPECT_FLOAT_EQ(batch.at3(0, 0, 3), 0.0f);   // missing reading
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 0);
  stream.Reset();
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 2);
}

TEST(WindowStreamTest, SmallFinalBatchIsEmitted) {
  std::vector<float> series(80, 1.0f);
  serve::WindowStream stream(&series, SmallStream(16, 16, 4));
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  ASSERT_EQ(stream.NumWindows(), 5);
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 4);
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 1);
  EXPECT_EQ(stream.NextBatch(&batch, &offsets), 0);
}

core::CamalEnsemble RandomEnsemble(uint64_t seed) {
  Rng rng(seed);
  std::vector<core::EnsembleMember> members;
  for (int64_t k : {5, 9}) {
    core::ResNetConfig config;
    config.base_filters = 4;
    config.kernel_size = k;
    core::EnsembleMember member;
    member.model = std::make_unique<core::ResNetClassifier>(config, &rng);
    member.kernel_size = k;
    members.push_back(std::move(member));
  }
  return core::CamalEnsemble::FromMembers(std::move(members));
}

TEST(BatchRunnerTest, ScanShapesAndRanges) {
  core::CamalEnsemble ensemble = RandomEnsemble(3);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(16, 8, 4);
  opt.appliance_avg_power_w = 700.0f;
  serve::BatchRunner runner(&ensemble, opt);

  Rng rng(4);
  std::vector<float> series(120);
  for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 3000.0));
  serve::ScanResult result = runner.Scan(series);

  ASSERT_EQ(result.detection.numel(), static_cast<int64_t>(series.size()));
  ASSERT_EQ(result.status.numel(), static_cast<int64_t>(series.size()));
  ASSERT_EQ(result.power.numel(), static_cast<int64_t>(series.size()));
  EXPECT_GT(result.windows, 0);
  for (int64_t t = 0; t < result.detection.numel(); ++t) {
    EXPECT_GE(result.detection.at(t), 0.0f);
    EXPECT_LE(result.detection.at(t), 1.0f);
    EXPECT_TRUE(result.status.at(t) == 0.0f || result.status.at(t) == 1.0f);
    // §IV-C: estimated power never exceeds P_a or the aggregate.
    EXPECT_LE(result.power.at(t), 700.0f);
    EXPECT_LE(result.power.at(t), std::max(0.0f, series[static_cast<size_t>(t)]));
  }
}

TEST(BatchRunnerTest, BatchSizeDoesNotChangeResults) {
  core::CamalEnsemble ensemble = RandomEnsemble(5);
  Rng rng(6);
  std::vector<float> series(96);
  for (auto& v : series) v = static_cast<float>(rng.Uniform(0.0, 2500.0));

  serve::BatchRunnerOptions small;
  small.stream = SmallStream(16, 8, 1);
  small.appliance_avg_power_w = 500.0f;
  serve::BatchRunnerOptions large = small;
  large.stream.batch_size = 32;

  serve::BatchRunner runner_small(&ensemble, small);
  serve::BatchRunner runner_large(&ensemble, large);
  serve::ScanResult a = runner_small.Scan(series);
  serve::ScanResult b = runner_large.Scan(series);
  ASSERT_EQ(a.windows, b.windows);
  for (int64_t t = 0; t < a.detection.numel(); ++t) {
    EXPECT_NEAR(a.detection.at(t), b.detection.at(t), 1e-4);
    EXPECT_EQ(a.status.at(t), b.status.at(t));
    EXPECT_NEAR(a.power.at(t), b.power.at(t), 1e-2);
  }
}

TEST(BatchRunnerTest, ShortSeriesReturnsZeros) {
  core::CamalEnsemble ensemble = RandomEnsemble(7);
  serve::BatchRunnerOptions opt;
  opt.stream = SmallStream(32, 16, 4);
  serve::BatchRunner runner(&ensemble, opt);
  serve::ScanResult result = runner.Scan(std::vector<float>(10, 100.0f));
  EXPECT_EQ(result.windows, 0);
  EXPECT_DOUBLE_EQ(result.detection.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(result.status.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(result.power.Sum(), 0.0);
}

}  // namespace
}  // namespace camal
