#include "eval/label_budget.h"

#include <algorithm>
#include <cmath>

namespace camal::eval {

std::vector<int64_t> GeometricBudgets(int64_t min_windows,
                                      int64_t max_windows, int steps) {
  CAMAL_CHECK_GT(min_windows, 0);
  CAMAL_CHECK_GE(max_windows, min_windows);
  CAMAL_CHECK_GE(steps, 1);
  std::vector<int64_t> budgets;
  if (steps == 1 || min_windows == max_windows) {
    budgets.push_back(min_windows);
    if (max_windows != min_windows) budgets.push_back(max_windows);
    return budgets;
  }
  const double ratio =
      std::pow(static_cast<double>(max_windows) / min_windows,
               1.0 / (steps - 1));
  double value = static_cast<double>(min_windows);
  for (int i = 0; i < steps; ++i) {
    const auto b = static_cast<int64_t>(std::llround(value));
    if (budgets.empty() || b > budgets.back()) budgets.push_back(b);
    value *= ratio;
  }
  if (budgets.back() != max_windows) budgets.back() = max_windows;
  return budgets;
}

data::WindowDataset SubsetByBudget(const data::WindowDataset& dataset,
                                   int64_t num_windows, Rng* rng) {
  const int64_t n = dataset.size();
  num_windows = std::min(num_windows, n);
  CAMAL_CHECK_GT(num_windows, 0);
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  rng->Shuffle(&order);
  std::vector<int64_t> chosen(order.begin(),
                              order.begin() + static_cast<long>(num_windows));

  // Keep both weak classes represented when the source has both.
  auto has_class = [&](const std::vector<int64_t>& idx, int label) {
    for (int64_t i : idx) {
      if (dataset.weak_labels[static_cast<size_t>(i)] == label) return true;
    }
    return false;
  };
  const bool source_has_pos = dataset.PositiveCount() > 0;
  const bool source_has_neg = dataset.PositiveCount() < n;
  for (int label = 0; label <= 1; ++label) {
    const bool source_has = label == 1 ? source_has_pos : source_has_neg;
    if (!source_has || has_class(chosen, label)) continue;
    for (size_t i = static_cast<size_t>(num_windows); i < order.size(); ++i) {
      if (dataset.weak_labels[static_cast<size_t>(order[i])] == label) {
        chosen.back() = order[i];
        break;
      }
    }
  }
  return dataset.Subset(chosen);
}

}  // namespace camal::eval
