#ifndef CAMAL_EVAL_EXPERIMENT_H_
#define CAMAL_EVAL_EXPERIMENT_H_

#include "baselines/registry.h"
#include "core/ensemble.h"
#include "core/localizer.h"
#include "data/dataset.h"
#include "eval/trainer.h"

namespace camal::eval {

/// The §V-D localization + energy metrics for one evaluation.
struct LocalizationScores {
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double mae = 0.0;   ///< Watts
  double rmse = 0.0;  ///< Watts
  double matching_ratio = 0.0;
};

/// Scores a predicted (N, L) binary status against \p test: F1/Pr/Rc on the
/// per-timestamp status, and MAE/RMSE/MR on the §IV-C power estimate
/// min(s-hat * P_a, x) versus the true submeter power.
LocalizationScores ScoreLocalization(const nn::Tensor& predicted_status,
                                     const data::WindowDataset& test);

/// Thresholds frame probabilities at 0.5 into a binary status.
nn::Tensor ThresholdStatus(const nn::Tensor& frame_probabilities);

/// Result of one CamAL train+evaluate run.
struct CamalRunResult {
  LocalizationScores scores;
  double detection_balanced_accuracy = 0.0;  ///< Problem-1 score on test.
  double train_seconds = 0.0;
  int64_t labels_used = 0;  ///< weak labels: one per training window.
  int64_t num_parameters = 0;
};

/// Trains a CamAL ensemble on \p train (weak labels), selects members on
/// \p valid, and evaluates localization on \p test.
Result<CamalRunResult> RunCamalExperiment(const data::WindowDataset& train,
                                          const data::WindowDataset& valid,
                                          const data::WindowDataset& test,
                                          const core::EnsembleConfig& config,
                                          const core::LocalizerOptions& loc,
                                          uint64_t seed);

/// Result of one baseline train+evaluate run.
struct BaselineRunResult {
  LocalizationScores scores;
  double train_seconds = 0.0;
  int64_t labels_used = 0;  ///< strong: L per window; weak: 1 per window.
  int64_t num_parameters = 0;
};

/// Trains a §V-C baseline (strong per-timestamp BCE, or the MIL weak loss
/// for CRNN Weak) and evaluates localization on \p test.
Result<BaselineRunResult> RunBaselineExperiment(
    baselines::BaselineKind kind, const baselines::BaselineScale& scale,
    const TrainConfig& train_config, const data::WindowDataset& train,
    const data::WindowDataset& valid, const data::WindowDataset& test,
    uint64_t seed);

}  // namespace camal::eval

#endif  // CAMAL_EVAL_EXPERIMENT_H_
