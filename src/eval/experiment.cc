#include "eval/experiment.h"

#include "common/stopwatch.h"
#include "core/power_estimation.h"
#include "metrics/classification.h"
#include "metrics/energy.h"

namespace camal::eval {
namespace {

// Recovers the aggregate in Watts from the /1000-scaled model input.
nn::Tensor AggregateWatts(const data::WindowDataset& ds) {
  nn::Tensor watts = ds.inputs.Reshape({ds.size(), ds.window_length});
  watts.ScaleInPlace(1000.0f);
  return watts;
}

std::vector<float> Flatten(const nn::Tensor& t) {
  return std::vector<float>(t.data(), t.data() + t.numel());
}

}  // namespace

nn::Tensor ThresholdStatus(const nn::Tensor& frame_probabilities) {
  nn::Tensor status = frame_probabilities;
  float* d = status.data();
  for (int64_t i = 0; i < status.numel(); ++i) {
    d[i] = d[i] >= 0.5f ? 1.0f : 0.0f;
  }
  return status;
}

LocalizationScores ScoreLocalization(const nn::Tensor& predicted_status,
                                     const data::WindowDataset& test) {
  CAMAL_CHECK_EQ(predicted_status.dim(0), test.size());
  CAMAL_CHECK_EQ(predicted_status.dim(1), test.window_length);
  LocalizationScores scores;
  const metrics::BinaryCounts counts = metrics::CountBinary(
      Flatten(predicted_status), Flatten(test.status));
  scores.f1 = metrics::F1Score(counts);
  scores.precision = metrics::Precision(counts);
  scores.recall = metrics::Recall(counts);

  const nn::Tensor watts = AggregateWatts(test);
  const nn::Tensor est = core::EstimatePower(predicted_status, watts,
                                             test.appliance.avg_power_w);
  const std::vector<float> est_v = Flatten(est);
  const std::vector<float> truth_v = Flatten(test.appliance_power);
  scores.mae = metrics::MeanAbsoluteError(est_v, truth_v);
  scores.rmse = metrics::RootMeanSquareError(est_v, truth_v);
  scores.matching_ratio = metrics::MatchingRatio(est_v, truth_v);
  return scores;
}

Result<CamalRunResult> RunCamalExperiment(const data::WindowDataset& train,
                                          const data::WindowDataset& valid,
                                          const data::WindowDataset& test,
                                          const core::EnsembleConfig& config,
                                          const core::LocalizerOptions& loc,
                                          uint64_t seed) {
  Stopwatch watch;
  auto ensemble_result = core::CamalEnsemble::Train(train, valid, config, seed);
  if (!ensemble_result.ok()) return ensemble_result.status();
  core::CamalEnsemble ensemble = std::move(ensemble_result).value();

  CamalRunResult run;
  run.train_seconds = watch.ElapsedSeconds();
  run.labels_used = train.LabelCount(/*strong=*/false);
  run.num_parameters = ensemble.NumParameters();

  core::CamalLocalizer localizer(&ensemble, loc);
  // Localize in batches to bound memory.
  const int64_t n = test.size(), l = test.window_length;
  nn::Tensor status({n, l});
  nn::Tensor probabilities({n});
  constexpr int64_t kBatch = 64;
  for (int64_t begin = 0; begin < n; begin += kBatch) {
    const int64_t end = std::min(n, begin + kBatch);
    std::vector<int64_t> idx;
    for (int64_t i = begin; i < end; ++i) idx.push_back(i);
    data::WindowDataset chunk = test.Subset(idx);
    core::LocalizationResult res = localizer.Localize(chunk.inputs);
    for (int64_t i = begin; i < end; ++i) {
      probabilities.at(i) = res.probabilities.at(i - begin);
      for (int64_t t = 0; t < l; ++t) {
        status.at2(i, t) = res.status.at2(i - begin, t);
      }
    }
  }
  run.scores = ScoreLocalization(status, test);

  // Problem-1 detection score (Balanced Accuracy on weak labels).
  std::vector<float> det_pred, det_truth;
  det_pred.reserve(static_cast<size_t>(n));
  det_truth.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    det_pred.push_back(
        probabilities.at(i) > loc.detection_threshold ? 1.0f : 0.0f);
    det_truth.push_back(
        static_cast<float>(test.weak_labels[static_cast<size_t>(i)]));
  }
  run.detection_balanced_accuracy =
      metrics::BalancedAccuracy(metrics::CountBinary(det_pred, det_truth));
  return run;
}

Result<BaselineRunResult> RunBaselineExperiment(
    baselines::BaselineKind kind, const baselines::BaselineScale& scale,
    const TrainConfig& train_config, const data::WindowDataset& train,
    const data::WindowDataset& valid, const data::WindowDataset& test,
    uint64_t seed) {
  if (train.size() == 0 || valid.size() == 0 || test.size() == 0) {
    return Status::FailedPrecondition("empty split for baseline experiment");
  }
  Rng rng(seed);
  std::unique_ptr<nn::Module> model =
      baselines::MakeBaseline(kind, scale, &rng);

  BaselineRunResult run;
  run.num_parameters = model->NumParameters();
  TrainConfig cfg = train_config;
  cfg.seed = seed;
  TrainStats stats;
  if (baselines::IsWeaklySupervised(kind)) {
    stats = TrainWeakMilModel(model.get(), train, valid, cfg);
    run.labels_used = train.LabelCount(/*strong=*/false);
  } else {
    stats = TrainStrongModel(model.get(), train, valid, cfg);
    run.labels_used = train.LabelCount(/*strong=*/true);
  }
  run.train_seconds = stats.total_seconds;

  nn::Tensor probs = PredictFrameProbabilities(model.get(), test);
  run.scores = ScoreLocalization(ThresholdStatus(probs), test);
  return run;
}

}  // namespace camal::eval
