#include "eval/bench_mode.h"

#include <cstdlib>
#include <cstring>

namespace camal::eval {

BenchMode GetBenchMode() {
  const char* env = std::getenv("CAMAL_BENCH_MODE");
  if (env == nullptr) return BenchMode::kFast;
  if (std::strcmp(env, "smoke") == 0) return BenchMode::kSmoke;
  if (std::strcmp(env, "full") == 0) return BenchMode::kFull;
  return BenchMode::kFast;
}

const char* BenchModeName(BenchMode mode) {
  switch (mode) {
    case BenchMode::kSmoke:
      return "smoke";
    case BenchMode::kFast:
      return "fast";
    case BenchMode::kFull:
      return "full";
  }
  return "unknown";
}

BenchParams ParamsForMode(BenchMode mode) {
  BenchParams p;
  p.mode = mode;
  switch (mode) {
    case BenchMode::kSmoke:
      p.dataset_scale = 0.1;
      p.window_length = 64;
      p.base_filters = 8;
      p.baseline_width = 0.0625;
      p.ensemble.kernel_sizes = {5, 9};
      p.ensemble.trials_per_kernel = 1;
      p.ensemble.ensemble_size = 2;
      p.ensemble.base_filters = 8;
      p.ensemble.train.max_epochs = 3;
      p.ensemble.train.batch_size = 32;
      p.ensemble.train.patience = 2;
      p.train.max_epochs = 3;
      p.train.batch_size = 32;
      p.train.patience = 2;
      break;
    case BenchMode::kFast:
      p.dataset_scale = 0.25;
      p.window_length = 128;
      p.base_filters = 16;
      p.baseline_width = 0.125;
      p.ensemble.kernel_sizes = {5, 9, 15};
      p.ensemble.trials_per_kernel = 1;
      p.ensemble.ensemble_size = 3;
      p.ensemble.base_filters = 16;
      p.ensemble.train.max_epochs = 8;
      p.ensemble.train.batch_size = 32;
      p.ensemble.train.patience = 3;
      p.train.max_epochs = 8;
      p.train.batch_size = 32;
      p.train.patience = 3;
      break;
    case BenchMode::kFull:
      p.dataset_scale = 1.0;
      p.window_length = 512;  // paper uses 510; 512 keeps pooling exact
      p.base_filters = 64;
      p.baseline_width = 1.0;
      p.ensemble.kernel_sizes = {5, 7, 9, 15, 25};
      p.ensemble.trials_per_kernel = 3;
      p.ensemble.ensemble_size = 5;
      p.ensemble.base_filters = 64;
      p.ensemble.train.max_epochs = 30;
      p.ensemble.train.batch_size = 32;
      p.ensemble.train.patience = 5;
      p.train.max_epochs = 30;
      p.train.batch_size = 32;
      p.train.patience = 5;
      break;
  }
  return p;
}

BenchParams CurrentBenchParams() { return ParamsForMode(GetBenchMode()); }

}  // namespace camal::eval
