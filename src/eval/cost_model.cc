#include "eval/cost_model.h"

#include "common/check.h"

namespace camal::eval {
namespace {

constexpr double kSecondsPerYear = 365.0 * 86400.0;
constexpr double kBytesPerTb = 1e12;
// Surveys per year in the per-subsequence regime (weekly).
constexpr double kSurveysPerYear = 52.0;
// A recurring short survey is assumed far cheaper than the full entry
// questionnaire.
constexpr double kSurveyCostFraction = 0.02;

}  // namespace

double CostUsdPerHousehold(const CostModel& model, LabelRegime regime,
                           double years) {
  CAMAL_CHECK_GE(years, 0.0);
  switch (regime) {
    case LabelRegime::kPerTimestamp:
      return model.sensor_install_usd +
             model.sensor_maintenance_usd_per_year * years;
    case LabelRegime::kPerSubsequence:
      return model.questionnaire_usd * kSurveyCostFraction * kSurveysPerYear *
             years;
    case LabelRegime::kPerHousehold:
      return model.questionnaire_usd;
  }
  return 0.0;
}

double CostGco2PerHousehold(const CostModel& model, LabelRegime regime,
                            double years) {
  CAMAL_CHECK_GE(years, 0.0);
  switch (regime) {
    case LabelRegime::kPerTimestamp:
      return model.technician_visit_gco2;
    case LabelRegime::kPerSubsequence:
      return model.website_visit_gco2 * kSurveysPerYear * years;
    case LabelRegime::kPerHousehold:
      return model.website_visit_gco2;
  }
  return 0.0;
}

double StorageTbPerYearStrong(const CostModel& model, int64_t households,
                              int appliances, double interval_seconds) {
  CAMAL_CHECK_GT(interval_seconds, 0.0);
  const double readings_per_year = kSecondsPerYear / interval_seconds;
  // Aggregate stream + one submeter stream per appliance.
  const double streams = 1.0 + static_cast<double>(appliances);
  return static_cast<double>(households) * streams * readings_per_year *
         model.bytes_per_reading / kBytesPerTb;
}

double StorageTbPerYearWeak(const CostModel& model, int64_t households,
                            int appliances, double interval_seconds) {
  CAMAL_CHECK_GT(interval_seconds, 0.0);
  const double readings_per_year = kSecondsPerYear / interval_seconds;
  const double aggregate_bytes = readings_per_year * model.bytes_per_reading;
  const double possession_bytes =
      static_cast<double>(appliances) * model.bytes_per_possession;
  return static_cast<double>(households) *
         (aggregate_bytes + possession_bytes) / kBytesPerTb;
}

}  // namespace camal::eval
