#ifndef CAMAL_EVAL_COST_MODEL_H_
#define CAMAL_EVAL_COST_MODEL_H_

#include <cstdint>

namespace camal::eval {

/// The §V-H.2 label-acquisition cost model (Fig. 9): every constant comes
/// from the paper's text.
struct CostModel {
  // Strong labels (submeter sensors).
  double sensor_install_usd = 1000.0;          ///< per household
  double sensor_maintenance_usd_per_year = 1500.0;
  double technician_visit_gco2 = 2134.0;       ///< 97 g/km * 22 km commute

  // Weak labels (questionnaires / web surveys).
  double questionnaire_usd = 10.0;             ///< per household
  double website_visit_gco2 = 4.62;            ///< per questionnaire answer

  // Storage encoding.
  double bytes_per_reading = 8.0;    ///< BIGINT per recorded timestamp
  double bytes_per_possession = 10.0;  ///< VARCHAR per appliance ownership bit
};

/// Label regimes compared in Fig. 9(a).
enum class LabelRegime {
  kPerTimestamp,   ///< strong NILM labels: instrumented household
  kPerSubsequence, ///< periodic surveys (one answer per subsequence)
  kPerHousehold,   ///< possession questionnaire (what CamAL uses)
};

/// Dollar cost per household of acquiring labels for \p years under the
/// given regime. Per-subsequence assumes one (weekly) survey answer per
/// subsequence at 1/50 of the questionnaire cost each.
double CostUsdPerHousehold(const CostModel& model, LabelRegime regime,
                           double years);

/// gCO2 per household of acquiring labels under the regime (technician
/// visit for strong; website visits for surveys).
double CostGco2PerHousehold(const CostModel& model, LabelRegime regime,
                            double years);

/// Fig. 9(b): storage in terabytes per year. Strong labels store one
/// reading per appliance per sampling interval on top of the aggregate;
/// weak labels store the aggregate plus one possession string per
/// appliance.
double StorageTbPerYearStrong(const CostModel& model, int64_t households,
                              int appliances, double interval_seconds);
double StorageTbPerYearWeak(const CostModel& model, int64_t households,
                            int appliances, double interval_seconds);

}  // namespace camal::eval

#endif  // CAMAL_EVAL_COST_MODEL_H_
