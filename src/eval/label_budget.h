#ifndef CAMAL_EVAL_LABEL_BUDGET_H_
#define CAMAL_EVAL_LABEL_BUDGET_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace camal::eval {

/// Geometric grid of training-set sizes (in windows) between \p min_windows
/// and \p max_windows inclusive, with \p steps points — the x-axis sweep of
/// Figs. 1 and 5.
std::vector<int64_t> GeometricBudgets(int64_t min_windows,
                                      int64_t max_windows, int steps);

/// Random subset of \p num_windows windows (label budget). When the subset
/// would lose one weak class entirely while the source has both, one window
/// of the missing class is swapped in so weak training stays feasible.
data::WindowDataset SubsetByBudget(const data::WindowDataset& dataset,
                                   int64_t num_windows, Rng* rng);

}  // namespace camal::eval

#endif  // CAMAL_EVAL_LABEL_BUDGET_H_
