#ifndef CAMAL_EVAL_BENCH_MODE_H_
#define CAMAL_EVAL_BENCH_MODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "core/ensemble.h"
#include "eval/trainer.h"

namespace camal::eval {

/// Bench runtime tier, selected via CAMAL_BENCH_MODE={smoke,fast,full}.
/// smoke: seconds per bench (CI); fast: minutes (default); full: paper-scale
/// widths and windows (hours on CPU).
enum class BenchMode { kSmoke, kFast, kFull };

/// Reads CAMAL_BENCH_MODE (defaults to fast; unknown values fall back to
/// fast).
BenchMode GetBenchMode();

/// Human-readable mode name.
const char* BenchModeName(BenchMode mode);

/// Scaled experiment parameters for one tier.
struct BenchParams {
  BenchMode mode = BenchMode::kFast;
  /// Cohort scale passed to simulate::SimulateDataset.
  double dataset_scale = 0.15;
  /// Training/evaluation window length (paper: 510; must be divisible by 4
  /// for the pooling baselines, so full mode uses 512).
  int64_t window_length = 128;
  /// CamAL ResNet base filters (paper: 64).
  int64_t base_filters = 16;
  /// Baseline width multiplier (1.0 = paper widths).
  double baseline_width = 0.25;
  core::EnsembleConfig ensemble;
  TrainConfig train;
};

/// The parameter set for \p mode.
BenchParams ParamsForMode(BenchMode mode);

/// Convenience: parameters for the current CAMAL_BENCH_MODE.
BenchParams CurrentBenchParams();

}  // namespace camal::eval

#endif  // CAMAL_EVAL_BENCH_MODE_H_
