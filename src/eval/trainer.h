#ifndef CAMAL_EVAL_TRAINER_H_
#define CAMAL_EVAL_TRAINER_H_

#include "data/dataset.h"
#include "nn/module.h"

namespace camal::eval {

/// Hyper-parameters for training a sequence-to-sequence baseline.
struct TrainConfig {
  int max_epochs = 10;
  int batch_size = 32;
  float lr = 1e-3f;
  float weight_decay = 0.0f;
  /// Early-stopping patience in epochs (monitored on the validation loss);
  /// best-epoch weights are restored.
  int patience = 3;
  uint64_t seed = 42;
};

/// Wall-clock and convergence statistics of a training run (Fig. 7 data).
struct TrainStats {
  double total_seconds = 0.0;
  double seconds_per_epoch = 0.0;
  int epochs_run = 0;
  double best_val_loss = 0.0;
};

/// Strong supervision (§V-C): per-timestamp binary cross-entropy between
/// the model's (N, L) frame logits and the ground-truth status. Uses one
/// label per timestamp — window_length labels per window.
TrainStats TrainStrongModel(nn::Module* model,
                            const data::WindowDataset& train,
                            const data::WindowDataset& valid,
                            const TrainConfig& config);

/// Weak supervision for CRNN Weak: the MIL linear-softmax pooling loss of
/// Tanoni et al. over frame probabilities, one label per window.
TrainStats TrainWeakMilModel(nn::Module* model,
                             const data::WindowDataset& train,
                             const data::WindowDataset& valid,
                             const TrainConfig& config);

/// Soft-target training (Fig. 10): per-timestamp BCE against an arbitrary
/// (N, L) target in [0, 1] — e.g. CamAL's predicted status used as soft
/// labels. Validation monitors frame BCE against \p valid ground truth.
TrainStats TrainWithSoftTargets(nn::Module* model,
                                const data::WindowDataset& train_inputs,
                                const nn::Tensor& soft_targets,
                                const data::WindowDataset& valid,
                                const TrainConfig& config);

/// Batched inference: (N, L) per-timestamp activation probabilities
/// (sigmoid of the model's frame logits), eval mode.
nn::Tensor PredictFrameProbabilities(nn::Module* model,
                                     const data::WindowDataset& dataset,
                                     int batch_size = 64);

/// Mean per-timestamp BCE of the model on \p dataset (eval mode).
double EvaluateFrameLoss(nn::Module* model, const data::WindowDataset& dataset,
                         int batch_size = 64);

}  // namespace camal::eval

#endif  // CAMAL_EVAL_TRAINER_H_
