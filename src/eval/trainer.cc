#include "eval/trainer.h"

#include <algorithm>
#include <limits>

#include "baselines/crnn.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "nn/activations.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace camal::eval {
namespace {

// Copies rows `order[begin, end)` into a batch input tensor.
nn::Tensor MakeBatchInputs(const data::WindowDataset& ds,
                           const std::vector<int64_t>& order, size_t begin,
                           size_t end) {
  const int64_t b = static_cast<int64_t>(end - begin);
  const int64_t l = ds.window_length;
  nn::Tensor inputs({b, 1, l});
  for (size_t i = begin; i < end; ++i) {
    const int64_t src = order[i];
    for (int64_t t = 0; t < l; ++t) {
      inputs.at3(static_cast<int64_t>(i - begin), 0, t) =
          ds.inputs.at3(src, 0, t);
    }
  }
  return inputs;
}

nn::Tensor MakeBatchStatus(const data::WindowDataset& ds,
                           const std::vector<int64_t>& order, size_t begin,
                           size_t end) {
  const int64_t b = static_cast<int64_t>(end - begin);
  const int64_t l = ds.window_length;
  nn::Tensor status({b, l});
  for (size_t i = begin; i < end; ++i) {
    const int64_t src = order[i];
    for (int64_t t = 0; t < l; ++t) {
      status.at2(static_cast<int64_t>(i - begin), t) = ds.status.at2(src, t);
    }
  }
  return status;
}

nn::Tensor MakeBatchRows(const nn::Tensor& source,
                         const std::vector<int64_t>& order, size_t begin,
                         size_t end) {
  const int64_t b = static_cast<int64_t>(end - begin);
  const int64_t l = source.dim(1);
  nn::Tensor out({b, l});
  for (size_t i = begin; i < end; ++i) {
    const int64_t src = order[i];
    for (int64_t t = 0; t < l; ++t) {
      out.at2(static_cast<int64_t>(i - begin), t) = source.at2(src, t);
    }
  }
  return out;
}

std::vector<int> MakeBatchWeakLabels(const data::WindowDataset& ds,
                                     const std::vector<int64_t>& order,
                                     size_t begin, size_t end) {
  std::vector<int> labels;
  labels.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    labels.push_back(ds.weak_labels[static_cast<size_t>(order[i])]);
  }
  return labels;
}

double EvaluateWeakMilLoss(nn::Module* model,
                           const data::WindowDataset& dataset,
                           int batch_size) {
  model->SetTraining(false);
  std::vector<int64_t> order(static_cast<size_t>(dataset.size()));
  for (int64_t i = 0; i < dataset.size(); ++i) {
    order[static_cast<size_t>(i)] = i;
  }
  double total = 0.0;
  for (size_t begin = 0; begin < order.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(order.size(), begin + static_cast<size_t>(batch_size));
    nn::Tensor inputs = MakeBatchInputs(dataset, order, begin, end);
    std::vector<int> labels = MakeBatchWeakLabels(dataset, order, begin, end);
    nn::Tensor logits = model->ForwardInference(inputs);
    total += baselines::WeakMilLoss(logits, labels).value *
             static_cast<double>(end - begin);
  }
  return total / static_cast<double>(dataset.size());
}

// Shared epoch loop. `step` runs forward+loss+backward on one batch and
// returns the loss; `validate` returns the early-stopping criterion.
template <typename StepFn, typename ValidateFn>
TrainStats RunTrainingLoop(nn::Module* model, int64_t num_rows,
                           const TrainConfig& config, StepFn step,
                           ValidateFn validate) {
  CAMAL_CHECK_GT(num_rows, 0);
  Rng rng(config.seed);
  nn::Adam optimizer(model->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  std::vector<int64_t> order(static_cast<size_t>(num_rows));
  for (int64_t i = 0; i < num_rows; ++i) order[static_cast<size_t>(i)] = i;

  Stopwatch watch;
  TrainStats stats;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<nn::Tensor> best_params = nn::SnapshotParameters(model);
  int bad_epochs = 0;
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    model->SetTraining(true);
    rng.Shuffle(&order);
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(config.batch_size)) {
      const size_t end = std::min(
          order.size(), begin + static_cast<size_t>(config.batch_size));
      optimizer.ZeroGrad();
      step(order, begin, end);
      optimizer.Step();
    }
    ++stats.epochs_run;
    const double val_loss = validate();
    if (val_loss < best_val - 1e-6) {
      best_val = val_loss;
      best_params = nn::SnapshotParameters(model);
      bad_epochs = 0;
    } else if (++bad_epochs > config.patience) {
      break;
    }
  }
  nn::RestoreParameters(model, best_params);
  model->SetTraining(false);
  stats.total_seconds = watch.ElapsedSeconds();
  stats.seconds_per_epoch =
      stats.epochs_run > 0 ? stats.total_seconds / stats.epochs_run : 0.0;
  stats.best_val_loss = best_val;
  return stats;
}

}  // namespace

double EvaluateFrameLoss(nn::Module* model, const data::WindowDataset& dataset,
                         int batch_size) {
  CAMAL_CHECK_GT(dataset.size(), 0);
  model->SetTraining(false);
  std::vector<int64_t> order(static_cast<size_t>(dataset.size()));
  for (int64_t i = 0; i < dataset.size(); ++i) {
    order[static_cast<size_t>(i)] = i;
  }
  double total = 0.0;
  for (size_t begin = 0; begin < order.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(order.size(), begin + static_cast<size_t>(batch_size));
    nn::Tensor inputs = MakeBatchInputs(dataset, order, begin, end);
    nn::Tensor status = MakeBatchStatus(dataset, order, begin, end);
    nn::Tensor logits = model->ForwardInference(inputs);
    total += nn::BceWithLogits(logits, status).value *
             static_cast<double>(end - begin);
  }
  return total / static_cast<double>(dataset.size());
}

TrainStats TrainStrongModel(nn::Module* model,
                            const data::WindowDataset& train,
                            const data::WindowDataset& valid,
                            const TrainConfig& config) {
  return RunTrainingLoop(
      model, train.size(), config,
      [&](const std::vector<int64_t>& order, size_t begin, size_t end) {
        nn::Tensor inputs = MakeBatchInputs(train, order, begin, end);
        nn::Tensor status = MakeBatchStatus(train, order, begin, end);
        nn::Tensor logits = model->Forward(inputs);
        nn::LossResult loss = nn::BceWithLogits(logits, status);
        model->Backward(loss.grad);
      },
      [&] { return EvaluateFrameLoss(model, valid, 64); });
}

TrainStats TrainWeakMilModel(nn::Module* model,
                             const data::WindowDataset& train,
                             const data::WindowDataset& valid,
                             const TrainConfig& config) {
  return RunTrainingLoop(
      model, train.size(), config,
      [&](const std::vector<int64_t>& order, size_t begin, size_t end) {
        nn::Tensor inputs = MakeBatchInputs(train, order, begin, end);
        std::vector<int> labels = MakeBatchWeakLabels(train, order, begin, end);
        nn::Tensor logits = model->Forward(inputs);
        nn::LossResult loss = baselines::WeakMilLoss(logits, labels);
        model->Backward(loss.grad);
      },
      [&] { return EvaluateWeakMilLoss(model, valid, 64); });
}

TrainStats TrainWithSoftTargets(nn::Module* model,
                                const data::WindowDataset& train_inputs,
                                const nn::Tensor& soft_targets,
                                const data::WindowDataset& valid,
                                const TrainConfig& config) {
  CAMAL_CHECK_EQ(soft_targets.dim(0), train_inputs.size());
  CAMAL_CHECK_EQ(soft_targets.dim(1), train_inputs.window_length);
  return RunTrainingLoop(
      model, train_inputs.size(), config,
      [&](const std::vector<int64_t>& order, size_t begin, size_t end) {
        nn::Tensor inputs = MakeBatchInputs(train_inputs, order, begin, end);
        nn::Tensor targets = MakeBatchRows(soft_targets, order, begin, end);
        nn::Tensor logits = model->Forward(inputs);
        nn::LossResult loss = nn::BceWithLogits(logits, targets);
        model->Backward(loss.grad);
      },
      [&] { return EvaluateFrameLoss(model, valid, 64); });
}

nn::Tensor PredictFrameProbabilities(nn::Module* model,
                                     const data::WindowDataset& dataset,
                                     int batch_size) {
  model->SetTraining(false);
  const int64_t n = dataset.size(), l = dataset.window_length;
  nn::Tensor probs({n, l});
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  for (size_t begin = 0; begin < order.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(order.size(), begin + static_cast<size_t>(batch_size));
    nn::Tensor inputs = MakeBatchInputs(dataset, order, begin, end);
    nn::Tensor logits = model->ForwardInference(inputs);
    for (size_t i = begin; i < end; ++i) {
      for (int64_t t = 0; t < l; ++t) {
        probs.at2(static_cast<int64_t>(i), t) = nn::SigmoidScalar(
            logits.at2(static_cast<int64_t>(i - begin), t));
      }
    }
  }
  return probs;
}

}  // namespace camal::eval
