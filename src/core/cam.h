#ifndef CAMAL_CORE_CAM_H_
#define CAMAL_CORE_CAM_H_

#include "nn/tensor.h"

namespace camal::core {

/// Class Activation Map (Definition II.1): for feature maps (N, K, L) and
/// head weights (num_classes, K), returns (N, L) with
///   CAM_c(n, t) = sum_k w[c, k] * f[n, k, t].
nn::Tensor ComputeCam(const nn::Tensor& feature_maps,
                      const nn::Tensor& head_weights, int64_t class_index);

/// ComputeCam into a caller-owned tensor: \p out is reshaped only when its
/// shape differs from (N, L), so a scan loop that localizes batch after
/// batch reuses the same storage (serve::BatchRunner's hot path).
void ComputeCamInto(const nn::Tensor& feature_maps,
                    const nn::Tensor& head_weights, int64_t class_index,
                    nn::Tensor* out);

/// Per-sample max normalization (step 4 of §IV-B): each row of \p cam is
/// divided by its maximum value. Negative evidence stays negative — the
/// sign carries "appliance absent here" information that the attention
/// step relies on. Rows whose maximum is not positive are zeroed.
nn::Tensor NormalizeCamByMax(const nn::Tensor& cam);

/// In-place variant of NormalizeCamByMax for reused scratch tensors.
void NormalizeCamByMaxInPlace(nn::Tensor* cam);

/// Mean of \p cams (all (N, L), same shape): the ensemble CAM of step 4.
nn::Tensor AverageCams(const std::vector<nn::Tensor>& cams);

}  // namespace camal::core

#endif  // CAMAL_CORE_CAM_H_
