#include "core/power_estimation.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/parallel_for.h"

namespace camal::core {

nn::Tensor EstimatePower(const nn::Tensor& status,
                         const nn::Tensor& aggregate_watts,
                         float avg_power_w) {
  CAMAL_CHECK_EQ(status.ndim(), 2);
  const int64_t n = status.dim(0), l = status.dim(1);
  CAMAL_CHECK_EQ(aggregate_watts.numel(), n * l);
  CAMAL_CHECK_GE(avg_power_w, 0.0f);
  nn::Tensor power({n, l});
  const float* agg = aggregate_watts.data();
  ParallelForChunked(0, n * l, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float initial = status.at(i) >= 0.5f ? avg_power_w : 0.0f;
      power.at(i) = std::min(initial, std::max(0.0f, agg[i]));
    }
  });
  return power;
}

nn::Tensor EstimatePowerRefined(const nn::Tensor& status,
                                const nn::Tensor& aggregate_watts,
                                float avg_power_w, int64_t context) {
  CAMAL_CHECK_EQ(status.ndim(), 2);
  CAMAL_CHECK_GT(context, 0);
  const int64_t n = status.dim(0), l = status.dim(1);
  CAMAL_CHECK_EQ(aggregate_watts.numel(), n * l);
  nn::Tensor power({n, l});
  const nn::Tensor watts = aggregate_watts.Reshape({n, l});

  ParallelFor(0, n, [&](int64_t i) {
    int64_t t = 0;
    while (t < l) {
      if (status.at2(i, t) < 0.5f) {
        ++t;
        continue;
      }
      // Contiguous ON segment [seg_begin, seg_end).
      const int64_t seg_begin = t;
      while (t < l && status.at2(i, t) >= 0.5f) ++t;
      const int64_t seg_end = t;
      // Local OFF baseline: median of OFF samples in the context around
      // the segment.
      std::vector<float> off_samples;
      for (int64_t u = std::max<int64_t>(0, seg_begin - context);
           u < std::min(l, seg_end + context); ++u) {
        if (status.at2(i, u) < 0.5f) off_samples.push_back(watts.at2(i, u));
      }
      for (int64_t u = seg_begin; u < seg_end; ++u) {
        const float x = std::max(0.0f, watts.at2(i, u));
        float estimate = 0.0f;
        if (off_samples.empty()) {
          estimate = std::min(avg_power_w, x);  // constant-model fallback
        } else {
          std::nth_element(off_samples.begin(),
                           off_samples.begin() +
                               static_cast<long>(off_samples.size() / 2),
                           off_samples.end());
          const float baseline = off_samples[off_samples.size() / 2];
          estimate = std::clamp(x - baseline, 0.0f,
                                std::min(2.0f * avg_power_w, x));
        }
        power.at2(i, u) = estimate;
      }
    }
  });
  return power;
}

}  // namespace camal::core
