#ifndef CAMAL_CORE_MODEL_IO_H_
#define CAMAL_CORE_MODEL_IO_H_

#include <string>

#include "core/ensemble.h"

namespace camal::core {

/// Persists a trained CamAL ensemble to \p directory (created if needed):
/// a `manifest.csv` describing each member (kernel size, base filters,
/// validation loss, weight file) plus one binary weight file per member.
/// Weights include BatchNorm running statistics, so a reloaded ensemble
/// reproduces inference exactly.
Status SaveEnsemble(const CamalEnsemble& ensemble,
                    const std::string& directory);

/// Loads an ensemble saved by SaveEnsemble.
Result<CamalEnsemble> LoadEnsemble(const std::string& directory);

}  // namespace camal::core

#endif  // CAMAL_CORE_MODEL_IO_H_
