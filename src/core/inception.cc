#include "core/inception.h"

#include "nn/activations.h"

namespace camal::core {

const char* BackboneKindName(BackboneKind kind) {
  switch (kind) {
    case BackboneKind::kResNet:
      return "resnet";
    case BackboneKind::kInception:
      return "inception";
  }
  return "unknown";
}

InceptionClassifier::InceptionClassifier(const InceptionConfig& config,
                                         Rng* rng)
    : config_(config) {
  CAMAL_CHECK_GT(config.base_filters, 0);
  CAMAL_CHECK_GT(config.depth, 0);
  const int64_t f = config.base_filters;
  const int64_t out_ch = 4 * f;
  const std::vector<int64_t> kernels = {config.kernel_size,
                                        2 * config.kernel_size + 1,
                                        4 * config.kernel_size + 3};

  int64_t in_ch = config.input_channels;
  for (int64_t d = 0; d < config.depth; ++d) {
    Block block;
    int64_t branch_in = in_ch;
    if (in_ch > 1) {
      nn::Conv1dOptions bottleneck;
      bottleneck.in_channels = in_ch;
      bottleneck.out_channels = f;
      bottleneck.kernel_size = 1;
      bottleneck.bias = false;
      block.bottleneck = std::make_unique<nn::Conv1d>(bottleneck, rng);
      branch_in = f;
    }
    for (int64_t k : kernels) {
      nn::Conv1dOptions conv;
      conv.in_channels = branch_in;
      conv.out_channels = f;
      conv.kernel_size = k;
      conv.padding = conv.SamePadding();
      conv.bias = false;
      block.branches.push_back(std::make_unique<nn::Conv1d>(conv, rng));
    }
    block.pool = std::make_unique<nn::MaxPool1d>(3, 1, 1);
    nn::Conv1dOptions proj;
    proj.in_channels = in_ch;
    proj.out_channels = f;
    proj.kernel_size = 1;
    proj.bias = false;
    block.pool_proj = std::make_unique<nn::Conv1d>(proj, rng);
    block.bn = std::make_unique<nn::BatchNorm1d>(out_ch);
    block.relu = std::make_unique<nn::ReLU>();
    block.concat_channels.assign(4, f);
    blocks_.push_back(std::move(block));
    in_ch = out_ch;
  }

  // Projection residual from the network input across the whole stack.
  shortcut_ = std::make_unique<nn::Sequential>();
  nn::Conv1dOptions sc;
  sc.in_channels = config.input_channels;
  sc.out_channels = out_ch;
  sc.kernel_size = 1;
  sc.bias = false;
  shortcut_->Add(std::make_unique<nn::Conv1d>(sc, rng));
  shortcut_->Add(std::make_unique<nn::BatchNorm1d>(out_ch));
  final_relu_ = std::make_unique<nn::ReLU>();

  gap_ = std::make_unique<nn::GlobalAvgPool1d>();
  head_seq_ = std::make_unique<nn::Sequential>();
  head_ = head_seq_->Add(std::make_unique<nn::Linear>(
      out_ch, config.num_classes, /*bias=*/true, rng));
}

nn::Tensor InceptionClassifier::ForwardBlock(Block* block,
                                             const nn::Tensor& x) {
  nn::Tensor branch_in = x;
  if (block->bottleneck) {
    branch_in = block->bottleneck->Forward(x);
  }
  block->bottleneck_out = branch_in;
  std::vector<nn::Tensor> parts;
  for (auto& conv : block->branches) {
    parts.push_back(conv->Forward(branch_in));
  }
  parts.push_back(block->pool_proj->Forward(block->pool->Forward(x)));
  nn::Tensor concat = nn::ConcatChannels(parts);
  return block->relu->Forward(block->bn->Forward(concat));
}

nn::Tensor InceptionClassifier::BackwardBlock(Block* block,
                                              const nn::Tensor& grad) {
  nn::Tensor g = block->bn->Backward(block->relu->Backward(grad));
  std::vector<nn::Tensor> grads =
      nn::SplitChannels(g, block->concat_channels);
  nn::Tensor g_branch_in;
  for (size_t b = 0; b < block->branches.size(); ++b) {
    nn::Tensor gb = block->branches[b]->Backward(grads[b]);
    if (b == 0) {
      g_branch_in = std::move(gb);
    } else {
      g_branch_in.AddInPlace(gb);
    }
  }
  nn::Tensor g_input =
      block->pool->Backward(block->pool_proj->Backward(grads.back()));
  if (block->bottleneck) {
    g_input.AddInPlace(block->bottleneck->Backward(g_branch_in));
  } else {
    g_input.AddInPlace(g_branch_in);
  }
  return g_input;
}

nn::Tensor InceptionClassifier::Forward(const nn::Tensor& x) {
  residual_input_ = x;
  nn::Tensor h = x;
  for (auto& block : blocks_) h = ForwardBlock(&block, h);
  nn::Tensor skip = shortcut_->Forward(x);
  feature_maps_ = final_relu_->Forward(nn::Add(h, skip));
  nn::Tensor pooled = gap_->Forward(feature_maps_);
  return head_seq_->Forward(pooled);
}

nn::Tensor InceptionClassifier::Backward(const nn::Tensor& grad_output) {
  nn::Tensor g = head_seq_->Backward(grad_output);
  g = gap_->Backward(g);
  g = final_relu_->Backward(g);
  nn::Tensor g_skip = shortcut_->Backward(g);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    g = BackwardBlock(&*it, g);
  }
  g.AddInPlace(g_skip);
  return g;
}

void InceptionClassifier::CollectParameters(
    std::vector<nn::Parameter*>* out) {
  for (auto& block : blocks_) {
    if (block.bottleneck) block.bottleneck->CollectParameters(out);
    for (auto& conv : block.branches) conv->CollectParameters(out);
    block.pool_proj->CollectParameters(out);
    block.bn->CollectParameters(out);
  }
  shortcut_->CollectParameters(out);
  head_seq_->CollectParameters(out);
}

void InceptionClassifier::CollectBuffers(std::vector<nn::Tensor*>* out) {
  for (auto& block : blocks_) block.bn->CollectBuffers(out);
  shortcut_->CollectBuffers(out);
}

void InceptionClassifier::SetTraining(bool training) {
  Module::SetTraining(training);
  for (auto& block : blocks_) {
    if (block.bottleneck) block.bottleneck->SetTraining(training);
    for (auto& conv : block.branches) conv->SetTraining(training);
    block.pool->SetTraining(training);
    block.pool_proj->SetTraining(training);
    block.bn->SetTraining(training);
    block.relu->SetTraining(training);
  }
  shortcut_->SetTraining(training);
  final_relu_->SetTraining(training);
  gap_->SetTraining(training);
  head_seq_->SetTraining(training);
}

const nn::Tensor& InceptionClassifier::head_weights() const {
  return head_->weight().value;
}

}  // namespace camal::core
