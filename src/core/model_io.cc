#include "core/model_io.h"

#include <cstdio>
#include <filesystem>

#include "common/csv.h"
#include "nn/serialize.h"

namespace camal::core {
namespace {

constexpr char kManifestName[] = "manifest.csv";

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string text;
  char buf[1 << 14];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

}  // namespace

Status SaveEnsemble(const CamalEnsemble& ensemble,
                    const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return Status::IoError("cannot create " + directory);

  CsvWriter manifest(directory + "/" + kManifestName);
  manifest.AddRow(
      {"backbone", "kernel_size", "base_filters", "validation_loss", "file"});
  int index = 0;
  for (const auto& member : ensemble.members()) {
    const std::string file = "member_" + std::to_string(index) + ".bin";
    manifest.AddRow({BackboneKindName(member.model->kind()),
                     std::to_string(member.kernel_size),
                     std::to_string(member.model->base_filters()),
                     std::to_string(member.validation_loss), file});
    CAMAL_RETURN_NOT_OK(
        nn::SaveParameters(member.model.get(), directory + "/" + file));
    ++index;
  }
  return manifest.Write();
}

Result<CamalEnsemble> LoadEnsemble(const std::string& directory) {
  CAMAL_ASSIGN_OR_RETURN(std::string text,
                         ReadFile(directory + "/" + kManifestName));
  CAMAL_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  if (rows.empty()) return Status::InvalidArgument("empty manifest");
  std::vector<EnsembleMember> members;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 5) {
      return Status::InvalidArgument("malformed manifest row " +
                                     std::to_string(r));
    }
    const int64_t kernel_size = std::atoll(row[1].c_str());
    const int64_t base_filters = std::atoll(row[2].c_str());
    if (kernel_size <= 0 || base_filters <= 0) {
      return Status::InvalidArgument("invalid member config in manifest");
    }
    Rng rng(0);  // weights are overwritten by LoadParameters
    EnsembleMember member;
    member.kernel_size = kernel_size;
    member.validation_loss = std::atof(row[3].c_str());
    if (row[0] == "inception") {
      InceptionConfig config;
      config.kernel_size = kernel_size;
      config.base_filters = base_filters;
      member.model = std::make_unique<InceptionClassifier>(config, &rng);
    } else if (row[0] == "resnet") {
      ResNetConfig config;
      config.kernel_size = kernel_size;
      config.base_filters = base_filters;
      member.model = std::make_unique<ResNetClassifier>(config, &rng);
    } else {
      return Status::InvalidArgument("unknown backbone '" + row[0] + "'");
    }
    CAMAL_RETURN_NOT_OK(
        nn::LoadParameters(member.model.get(), directory + "/" + row[4]));
    member.model->SetTraining(false);
    members.push_back(std::move(member));
  }
  if (members.empty()) {
    return Status::InvalidArgument("manifest lists no members");
  }
  return CamalEnsemble::FromMembers(std::move(members));
}

}  // namespace camal::core
