#ifndef CAMAL_CORE_RESNET_H_
#define CAMAL_CORE_RESNET_H_

#include <memory>

#include "common/rng.h"
#include "core/backbone.h"
#include "nn/conv1d.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace camal::core {

/// Configuration of one CamAL ResNet member (Fig. 4 of the paper).
struct ResNetConfig {
  /// The per-member kernel size k_p; the first conv block of every residual
  /// unit uses this kernel, the remaining two use 5 and 3.
  int64_t kernel_size = 7;
  /// Filters of the first residual unit; units use {f, 2f, 2f}. The paper
  /// uses f = 64 (570K parameters); benches shrink this in fast modes.
  int64_t base_filters = 64;
  int64_t input_channels = 1;
  int64_t num_classes = 2;
};

/// The time-series ResNet classifier of Wang et al. adapted per Fig. 4:
/// three residual units (filters {f, 2f, 2f}), each made of three
/// Conv-BN-ReLU blocks with kernels {k_p, 5, 3} (the last block's ReLU is
/// applied after the shortcut addition), followed by Global Average Pooling
/// and a linear softmax head.
///
/// The layer keeps the post-GAP feature maps of the most recent Forward so
/// the CAM can be extracted (Definition II.1): CAM_c(t) = sum_k w_kc f_k(t).
class ResNetClassifier : public CamBackbone {
 public:
  ResNetClassifier(const ResNetConfig& config, Rng* rng);

  /// (N, C_in, L) -> (N, num_classes) logits.
  nn::Tensor Forward(const nn::Tensor& x) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;

  /// Batched inference path: im2col+GEMM convolutions and fused BatchNorm,
  /// no backward caches. Still updates feature_maps() so CAM extraction
  /// works after it.
  nn::Tensor ForwardInference(const nn::Tensor& x) override;
  void CollectParameters(std::vector<nn::Parameter*>* out) override;
  void CollectBuffers(std::vector<nn::Tensor*>* out) override;
  void SetTraining(bool training) override;

  const ResNetConfig& config() const { return config_; }

  /// Feature maps (N, 2f, L) that fed the GAP in the last Forward call.
  const nn::Tensor& feature_maps() const override { return feature_maps_; }

  /// Linear head weights (num_classes, 2f) — the w_kc of the CAM.
  const nn::Tensor& head_weights() const override;

  BackboneKind kind() const override { return BackboneKind::kResNet; }
  int64_t base_filters() const override { return config_.base_filters; }

 private:
  ResNetConfig config_;
  std::unique_ptr<nn::Sequential> body_;  // residual units + ReLUs
  std::unique_ptr<nn::GlobalAvgPool1d> gap_;
  nn::Linear* head_ = nullptr;            // owned by head_seq_
  std::unique_ptr<nn::Sequential> head_seq_;
  nn::Tensor feature_maps_;
};

}  // namespace camal::core

#endif  // CAMAL_CORE_RESNET_H_
