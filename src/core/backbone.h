#ifndef CAMAL_CORE_BACKBONE_H_
#define CAMAL_CORE_BACKBONE_H_

#include "nn/module.h"

namespace camal::core {

/// Classifier backbones usable inside the CamAL ensemble.
enum class BackboneKind {
  kResNet,     ///< the paper's choice (Fig. 4)
  kInception,  ///< InceptionTime, discussed and rejected in §IV-A
};

/// Stable name for manifests ("resnet" / "inception").
const char* BackboneKindName(BackboneKind kind);

/// A CAM-compatible classifier: any network ending in Global Average
/// Pooling followed by a linear softmax head (the structural requirement
/// of Definition II.1). It must cache the pre-GAP feature maps of its most
/// recent Forward and expose the head weights so the localizer can form
/// CAM_c(t) = sum_k w_kc f_k(t).
class CamBackbone : public nn::Module {
 public:
  /// Feature maps (N, K, L) that fed the GAP in the last Forward call.
  virtual const nn::Tensor& feature_maps() const = 0;

  /// Linear head weights (num_classes, K).
  virtual const nn::Tensor& head_weights() const = 0;

  /// Which architecture this is (for ensemble manifests).
  virtual BackboneKind kind() const = 0;

  /// Width parameter used to reconstruct the architecture at load time.
  virtual int64_t base_filters() const = 0;
};

}  // namespace camal::core

#endif  // CAMAL_CORE_BACKBONE_H_
