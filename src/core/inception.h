#ifndef CAMAL_CORE_INCEPTION_H_
#define CAMAL_CORE_INCEPTION_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/backbone.h"
#include "nn/activations.h"
#include "nn/batchnorm1d.h"
#include "nn/conv1d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace camal::core {

/// Configuration of the InceptionTime classifier.
struct InceptionConfig {
  /// Base kernel size k; each inception block runs parallel convolutions
  /// with kernels {k, 2k+1, 4k+3} (InceptionTime uses {10, 20, 40}).
  int64_t kernel_size = 9;
  /// Filters per branch; blocks output 4f channels (3 conv branches plus
  /// the maxpool-projection branch).
  int64_t base_filters = 8;
  int64_t input_channels = 1;
  int64_t num_classes = 2;
  int64_t depth = 3;  ///< inception blocks (one residual across all three)
};

/// InceptionTime (Fawaz et al. [37]) adapted as a CAM-compatible backbone:
/// `depth` inception blocks (bottleneck 1x1, three parallel convolutions
/// with multi-scale kernels, a maxpool+1x1 branch, concat, BN, ReLU) with a
/// projection residual across the stack, then GAP + linear head.
///
/// The paper's §IV-A argues ResNet is preferable (shallower, cheaper,
/// kernel-tunable); this class exists to test that design choice
/// empirically (bench_ablation_backbone).
class InceptionClassifier : public CamBackbone {
 public:
  InceptionClassifier(const InceptionConfig& config, Rng* rng);

  nn::Tensor Forward(const nn::Tensor& x) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;
  void CollectParameters(std::vector<nn::Parameter*>* out) override;
  void CollectBuffers(std::vector<nn::Tensor*>* out) override;
  void SetTraining(bool training) override;

  const nn::Tensor& feature_maps() const override { return feature_maps_; }
  const nn::Tensor& head_weights() const override;
  BackboneKind kind() const override { return BackboneKind::kInception; }
  int64_t base_filters() const override { return config_.base_filters; }

  const InceptionConfig& config() const { return config_; }

 private:
  struct Block {
    std::unique_ptr<nn::Conv1d> bottleneck;  // null for the first block
    std::vector<std::unique_ptr<nn::Conv1d>> branches;
    std::unique_ptr<nn::MaxPool1d> pool;
    std::unique_ptr<nn::Conv1d> pool_proj;
    std::unique_ptr<nn::BatchNorm1d> bn;
    std::unique_ptr<nn::ReLU> relu;
    // Cached branch inputs/outputs for backward routing.
    nn::Tensor bottleneck_out;
    std::vector<int64_t> concat_channels;
  };

  nn::Tensor ForwardBlock(Block* block, const nn::Tensor& x);
  nn::Tensor BackwardBlock(Block* block, const nn::Tensor& grad);

  InceptionConfig config_;
  std::vector<Block> blocks_;
  std::unique_ptr<nn::Sequential> shortcut_;  // conv1x1 + BN residual
  std::unique_ptr<nn::ReLU> final_relu_;
  std::unique_ptr<nn::GlobalAvgPool1d> gap_;
  nn::Linear* head_ = nullptr;
  std::unique_ptr<nn::Sequential> head_seq_;
  nn::Tensor feature_maps_;
  nn::Tensor residual_input_;
};

}  // namespace camal::core

#endif  // CAMAL_CORE_INCEPTION_H_
