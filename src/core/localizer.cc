#include "core/localizer.h"

#include <cmath>

#include "common/parallel_for.h"
#include "core/cam.h"
#include "nn/activations.h"

namespace camal::core {

CamalLocalizer::CamalLocalizer(CamalEnsemble* ensemble,
                               LocalizerOptions options)
    : ensemble_(ensemble), options_(options) {
  CAMAL_CHECK(ensemble != nullptr);
}

LocalizationResult CamalLocalizer::Localize(const nn::Tensor& inputs) {
  CAMAL_CHECK_EQ(inputs.ndim(), 3);
  const int64_t n = inputs.dim(0), l = inputs.dim(2);

  LocalizationResult result;
  // Step 1-2: ensemble probability through the batched inference runtime
  // (this also caches member feature maps).
  result.probabilities = ensemble_->DetectProbabilityBatched(inputs);

  // Step 3-4: per-member class-1 CAMs, max-normalized, averaged. The CAM
  // tensors are member scratch reused across calls: batches of one scan
  // share a shape, so steady state allocates nothing here.
  cam_scratch_.resize(ensemble_->members().size());
  size_t m = 0;
  for (auto& member : ensemble_->members()) {
    nn::Tensor* cam = &cam_scratch_[m++];
    ComputeCamInto(member.model->feature_maps(),
                   member.model->head_weights(), /*class_index=*/1, cam);
    NormalizeCamByMaxInPlace(cam);
  }
  result.ensemble_cam = AverageCams(cam_scratch_);

  // Steps 5-6: attention-sigmoid and rounding, gated by detection. The
  // attention mask multiplies the CAM with the *standardized* window (the
  // paper's "considering the shape of the aggregate signal"): a timestamp
  // is ON when positive CAM evidence coincides with above-average power.
  // Without standardization the sigmoid rounding would degenerate to
  // sign(CAM) because raw power is always positive.
  result.status = nn::Tensor({n, l});
  ParallelFor(0, n, [&](int64_t i) {
    if (result.probabilities.at(i) <= options_.detection_threshold) {
      return;  // undetected: all timestamps stay 0 (step 2).
    }
    // Per-window standardization of the aggregate.
    double mean = 0.0, sq = 0.0;
    for (int64_t t = 0; t < l; ++t) {
      const double v = inputs.at3(i, 0, t);
      mean += v;
      sq += v * v;
    }
    mean /= static_cast<double>(l);
    double var = sq / static_cast<double>(l) - mean * mean;
    if (var < 0.0) var = 0.0;
    const float inv_std =
        var > 1e-12 ? static_cast<float>(1.0 / std::sqrt(var)) : 0.0f;

    for (int64_t t = 0; t < l; ++t) {
      const float cam = result.ensemble_cam.at2(i, t);
      float s = 0.0f;
      if (options_.use_attention) {
        const float x_std =
            (inputs.at3(i, 0, t) - static_cast<float>(mean)) * inv_std -
            options_.activation_z_gate;
        s = nn::SigmoidScalar(cam * x_std);
        // Rounding at >= 0.5 would mark zero-evidence timestamps ON;
        // require positive CAM evidence coinciding with gated power
        // (cam > 0 and x_std > 0 <=> s > 0.5 with cam > 0).
        result.status.at2(i, t) = (cam > 0.0f && s > 0.5f) ? 1.0f : 0.0f;
      } else {
        // Ablation: no input gating; sigmoid(CAM) >= 0.5 <=> CAM >= 0.
        s = nn::SigmoidScalar(cam);
        result.status.at2(i, t) = s >= 0.5f ? 1.0f : 0.0f;
      }
    }
  });
  return result;
}

}  // namespace camal::core
