#include "core/cam.h"

#include <algorithm>

#include "common/check.h"
#include "common/parallel_for.h"

namespace camal::core {

void ComputeCamInto(const nn::Tensor& feature_maps,
                    const nn::Tensor& head_weights, int64_t class_index,
                    nn::Tensor* out) {
  CAMAL_CHECK(out != nullptr);
  CAMAL_CHECK_EQ(feature_maps.ndim(), 3);
  CAMAL_CHECK_EQ(head_weights.ndim(), 2);
  CAMAL_CHECK_EQ(feature_maps.dim(1), head_weights.dim(1));
  CAMAL_CHECK_GE(class_index, 0);
  CAMAL_CHECK_LT(class_index, head_weights.dim(0));
  const int64_t n = feature_maps.dim(0), k = feature_maps.dim(1),
                l = feature_maps.dim(2);
  if (out->ndim() == 2 && out->dim(0) == n && out->dim(1) == l) {
    out->Zero();  // the accumulation below needs a clean slate
  } else {
    *out = nn::Tensor({n, l});
  }
  nn::Tensor& cam = *out;
  ParallelFor(0, n, [&](int64_t ni) {
    for (int64_t ki = 0; ki < k; ++ki) {
      const float w = head_weights.at2(class_index, ki);
      if (w == 0.0f) continue;
      const float* row = feature_maps.data() + (ni * k + ki) * l;
      float* dst = cam.data() + ni * l;
      for (int64_t t = 0; t < l; ++t) dst[t] += w * row[t];
    }
  });
}

nn::Tensor ComputeCam(const nn::Tensor& feature_maps,
                      const nn::Tensor& head_weights, int64_t class_index) {
  nn::Tensor cam;
  ComputeCamInto(feature_maps, head_weights, class_index, &cam);
  return cam;
}

nn::Tensor NormalizeCamByMax(const nn::Tensor& cam) {
  nn::Tensor out = cam;
  NormalizeCamByMaxInPlace(&out);
  return out;
}

void NormalizeCamByMaxInPlace(nn::Tensor* cam) {
  CAMAL_CHECK(cam != nullptr);
  CAMAL_CHECK_EQ(cam->ndim(), 2);
  const int64_t n = cam->dim(0), l = cam->dim(1);
  for (int64_t ni = 0; ni < n; ++ni) {
    float* row = cam->data() + ni * l;
    float max_v = row[0];
    for (int64_t t = 1; t < l; ++t) max_v = std::max(max_v, row[t]);
    if (max_v > 0.0f) {
      const float inv = 1.0f / max_v;
      for (int64_t t = 0; t < l; ++t) row[t] *= inv;
    } else {
      // No positive evidence anywhere in the window.
      for (int64_t t = 0; t < l; ++t) row[t] = 0.0f;
    }
  }
}

nn::Tensor AverageCams(const std::vector<nn::Tensor>& cams) {
  CAMAL_CHECK(!cams.empty());
  nn::Tensor out = cams[0];
  for (size_t i = 1; i < cams.size(); ++i) {
    CAMAL_CHECK(cams[i].SameShape(out));
    out.AddInPlace(cams[i]);
  }
  out.ScaleInPlace(1.0f / static_cast<float>(cams.size()));
  return out;
}

}  // namespace camal::core
