#ifndef CAMAL_CORE_LOCALIZER_H_
#define CAMAL_CORE_LOCALIZER_H_

#include "core/ensemble.h"

namespace camal::core {

/// Output of the CamAL localization pipeline for a batch of windows.
struct LocalizationResult {
  nn::Tensor probabilities;  ///< (N) ensemble detection probability.
  nn::Tensor ensemble_cam;   ///< (N, L) averaged normalized CAM.
  nn::Tensor status;         ///< (N, L) predicted activation s-hat in {0,1}.
};

/// Knobs for §IV-B step 5/6 and the Table IV ablations.
struct LocalizerOptions {
  /// Detection threshold of step 2 (paper: 0.5).
  float detection_threshold = 0.5f;
  /// When false, the attention-sigmoid module is ablated ("w/o Attention
  /// module" in Table IV): the averaged CAM is rounded directly through the
  /// sigmoid, without gating by the input signal.
  bool use_attention = true;
  /// Power gate of the attention mask, in per-window z-score units: a
  /// timestamp can only be ON when the aggregate is more than this many
  /// standard deviations above the window mean. 0 reduces to plain
  /// above-average gating; ~1 rejects base-load oscillation (fridge
  /// cycling) while keeping genuine appliance activations, which sit far
  /// above the window mean.
  float activation_z_gate = 1.0f;
};

/// The appliance-pattern localization module of §IV-B.
///
/// Steps: (1) ensemble prediction, (2) detection gate at the threshold,
/// (3) per-member class-1 CAM extraction, (4) max-normalization and
/// averaging, (5) attention: s(t) = sigmoid(CAM_ens(t) * x(t)), (6)
/// rounding to a binary status. Windows whose detection probability is
/// below the threshold output all-zero status.
///
/// Interpretation note: the CAM is kept signed after max-normalization and
/// the attention mask multiplies it with the per-window *standardized*
/// aggregate, so rounding sigmoid(CAM * x_std) at 0.5 marks a timestamp ON
/// exactly when positive CAM evidence coincides with above-average power —
/// this is how "the shape of the aggregate signal" sharpens localization
/// (§IV-B step 5). The ablated variant rounds sigmoid(CAM) instead, which
/// floods zero/positive-CAM timestamps regardless of the signal —
/// reproducing the precision collapse the paper reports for "w/o Attention
/// module" (Table IV).
class CamalLocalizer {
 public:
  /// \p ensemble is borrowed and must outlive the localizer.
  explicit CamalLocalizer(CamalEnsemble* ensemble,
                          LocalizerOptions options = {});

  /// Runs the full pipeline on (N, 1, L) scaled inputs.
  LocalizationResult Localize(const nn::Tensor& inputs);

  const LocalizerOptions& options() const { return options_; }

 private:
  CamalEnsemble* ensemble_;
  LocalizerOptions options_;
  /// Per-member CAM scratch reused across Localize calls (a household scan
  /// localizes hundreds of equally-shaped batches; reallocating every CAM
  /// per batch dominated small-batch scans). One localizer instance is
  /// therefore single-threaded state — sharded serving gives each shard
  /// its own localizer over its own ensemble replica.
  std::vector<nn::Tensor> cam_scratch_;
};

}  // namespace camal::core

#endif  // CAMAL_CORE_LOCALIZER_H_
