#ifndef CAMAL_CORE_POWER_ESTIMATION_H_
#define CAMAL_CORE_POWER_ESTIMATION_H_

#include "nn/tensor.h"

namespace camal::core {

/// §IV-C: converts a binary status signal into estimated per-appliance
/// power:  p_hat(t) = min(s_hat(t) * P_a, x(t)).
///
/// \p status is (N, L) in {0,1}; \p aggregate_watts is (N, 1, L) or (N, L)
/// in Watts (unscaled); \p avg_power_w is the appliance's P_a (Table I).
/// Returns (N, L) estimated Watts. Applied to every baseline before energy
/// metrics are computed (§V-B).
nn::Tensor EstimatePower(const nn::Tensor& status,
                         const nn::Tensor& aggregate_watts,
                         float avg_power_w);

/// Refined segment-wise power estimation — the post-processing the paper's
/// §V-I names as future work ("more advanced post-processing methods are
/// needed to refine the estimated consumption").
///
/// Instead of assigning the constant P_a to every ON timestamp, each
/// contiguous ON segment is priced at the *observed step* over the local
/// baseline: baseline = median of the aggregate over nearby OFF timestamps
/// (context of \p context samples on each side of the segment), and
///   p_hat(t) = clamp(x(t) - baseline, 0, min(P_a * 2, x(t))).
/// Falls back to EstimatePower's constant model when a segment has no OFF
/// context. Compared against the simple model in bench_ablation_power.
nn::Tensor EstimatePowerRefined(const nn::Tensor& status,
                                const nn::Tensor& aggregate_watts,
                                float avg_power_w, int64_t context = 16);

}  // namespace camal::core

#endif  // CAMAL_CORE_POWER_ESTIMATION_H_
