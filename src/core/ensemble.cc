#include "core/ensemble.h"

#include <algorithm>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace camal::core {
namespace {

// Builds the (B, C, L) batch tensor and label vector for rows
// [begin, end) of `order`.
void MakeBatch(const data::WindowDataset& ds,
               const std::vector<int64_t>& order, size_t begin, size_t end,
               nn::Tensor* inputs, std::vector<int>* labels) {
  const int64_t b = static_cast<int64_t>(end - begin);
  const int64_t l = ds.window_length;
  *inputs = nn::Tensor({b, 1, l});
  labels->clear();
  labels->reserve(static_cast<size_t>(b));
  for (size_t i = begin; i < end; ++i) {
    const int64_t src = order[i];
    for (int64_t t = 0; t < l; ++t) {
      inputs->at3(static_cast<int64_t>(i - begin), 0, t) =
          ds.inputs.at3(src, 0, t);
    }
    labels->push_back(ds.weak_labels[static_cast<size_t>(src)]);
  }
}

}  // namespace

double EvaluateClassifierLoss(CamBackbone* model,
                              const data::WindowDataset& dataset) {
  CAMAL_CHECK_GT(dataset.size(), 0);
  model->SetTraining(false);
  constexpr int64_t kEvalBatch = 64;
  double total = 0.0;
  std::vector<int64_t> order(static_cast<size_t>(dataset.size()));
  for (int64_t i = 0; i < dataset.size(); ++i) {
    order[static_cast<size_t>(i)] = i;
  }
  int64_t done = 0;
  while (done < dataset.size()) {
    const int64_t b = std::min<int64_t>(kEvalBatch, dataset.size() - done);
    nn::Tensor inputs;
    std::vector<int> labels;
    MakeBatch(dataset, order, static_cast<size_t>(done),
              static_cast<size_t>(done + b), &inputs, &labels);
    // Inference-only forward (fused conv GEMM, no backward caches):
    // agrees with eval-mode Forward to float rounding, so the epoch a
    // fixed-seed training run early-stops on is unchanged (pinned by
    // EnsembleTest.EarlyStoppingSelectionIsReproducible).
    nn::Tensor logits = model->ForwardInference(inputs);
    total += nn::SoftmaxCrossEntropy(logits, labels).value *
             static_cast<double>(b);
    done += b;
  }
  return total / static_cast<double>(dataset.size());
}

double TrainClassifier(CamBackbone* model,
                       const data::WindowDataset& train_sub,
                       const data::WindowDataset& val_sub,
                       const ClassifierTrainConfig& config, Rng* rng) {
  CAMAL_CHECK_GT(train_sub.size(), 0);
  CAMAL_CHECK_GT(val_sub.size(), 0);
  nn::Adam optimizer(model->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  std::vector<int64_t> order(static_cast<size_t>(train_sub.size()));
  for (int64_t i = 0; i < train_sub.size(); ++i) {
    order[static_cast<size_t>(i)] = i;
  }

  double best_val = std::numeric_limits<double>::infinity();
  std::vector<nn::Tensor> best_params = nn::SnapshotParameters(model);
  int bad_epochs = 0;
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    model->SetTraining(true);
    rng->Shuffle(&order);
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(config.batch_size)) {
      const size_t end = std::min(
          order.size(), begin + static_cast<size_t>(config.batch_size));
      nn::Tensor inputs;
      std::vector<int> labels;
      MakeBatch(train_sub, order, begin, end, &inputs, &labels);
      nn::Tensor logits = model->Forward(inputs);
      nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
      optimizer.ZeroGrad();
      model->Backward(loss.grad);
      optimizer.Step();
    }
    const double val_loss = EvaluateClassifierLoss(model, val_sub);
    if (val_loss < best_val - 1e-6) {
      best_val = val_loss;
      best_params = nn::SnapshotParameters(model);
      bad_epochs = 0;
    } else if (++bad_epochs > config.patience) {
      break;
    }
  }
  nn::RestoreParameters(model, best_params);
  model->SetTraining(false);
  return best_val;
}

Result<CamalEnsemble> CamalEnsemble::Train(
    const data::WindowDataset& train, const data::WindowDataset& validation,
    const EnsembleConfig& config, uint64_t seed) {
  if (train.size() < 5) {
    return Status::FailedPrecondition("too few training windows");
  }
  if (validation.size() == 0) {
    return Status::FailedPrecondition("empty validation set");
  }
  if (config.kernel_sizes.empty() || config.trials_per_kernel < 1 ||
      config.ensemble_size < 1) {
    return Status::InvalidArgument("invalid ensemble configuration");
  }

  Rng rng(seed);
  // Algorithm 1 line 1: split D_train into 80% train-sub / 20% val-sub.
  std::vector<int64_t> order(static_cast<size_t>(train.size()));
  for (int64_t i = 0; i < train.size(); ++i) order[static_cast<size_t>(i)] = i;
  rng.Shuffle(&order);
  const size_t n_val_sub =
      std::max<size_t>(1, order.size() / 5);
  std::vector<int64_t> val_idx(order.begin(),
                               order.begin() + static_cast<long>(n_val_sub));
  std::vector<int64_t> train_idx(order.begin() + static_cast<long>(n_val_sub),
                                 order.end());
  const data::WindowDataset train_sub = train.Subset(train_idx);
  const data::WindowDataset val_sub = train.Subset(val_idx);

  // Algorithm 1 lines 2-8: train trials_per_kernel models per kernel size
  // and score each on D_validation.
  std::vector<EnsembleMember> candidates;
  for (int64_t kp : config.kernel_sizes) {
    for (int trial = 0; trial < config.trials_per_kernel; ++trial) {
      Rng init_rng = rng.Fork();
      std::unique_ptr<CamBackbone> model;
      if (config.backbone == BackboneKind::kInception) {
        InceptionConfig ic;
        ic.kernel_size = kp;
        // 4f output channels vs the ResNet's 2f: halve the per-branch
        // width so both backbones feed comparable heads.
        ic.base_filters = std::max<int64_t>(2, config.base_filters / 2);
        model = std::make_unique<InceptionClassifier>(ic, &init_rng);
      } else {
        ResNetConfig rc;
        rc.kernel_size = kp;
        rc.base_filters = config.base_filters;
        model = std::make_unique<ResNetClassifier>(rc, &init_rng);
      }
      Rng train_rng = rng.Fork();
      TrainClassifier(model.get(), train_sub, val_sub, config.train,
                      &train_rng);
      EnsembleMember member;
      member.kernel_size = kp;
      member.validation_loss =
          EvaluateClassifierLoss(model.get(), validation);
      member.model = std::move(model);
      candidates.push_back(std::move(member));
    }
  }

  // Algorithm 1 line 9: keep the ensemble_size models with the lowest
  // validation loss.
  std::sort(candidates.begin(), candidates.end(),
            [](const EnsembleMember& a, const EnsembleMember& b) {
              return a.validation_loss < b.validation_loss;
            });
  const size_t keep = std::min<size_t>(
      candidates.size(), static_cast<size_t>(config.ensemble_size));
  candidates.resize(keep);
  return CamalEnsemble(std::move(candidates));
}

CamalEnsemble CamalEnsemble::Clone() {
  std::vector<EnsembleMember> members;
  members.reserve(members_.size());
  for (auto& m : members_) {
    Rng rng(0);  // weights are overwritten below
    EnsembleMember copy;
    copy.kernel_size = m.kernel_size;
    copy.validation_loss = m.validation_loss;
    // Copy the member's full config (depth, channels, classes — not just
    // the manifest fields) so replicas match structurally.
    if (m.model->kind() == BackboneKind::kInception) {
      const auto* src = static_cast<const InceptionClassifier*>(m.model.get());
      copy.model = std::make_unique<InceptionClassifier>(src->config(), &rng);
    } else {
      const auto* src = static_cast<const ResNetClassifier*>(m.model.get());
      copy.model = std::make_unique<ResNetClassifier>(src->config(), &rng);
    }
    const auto src_params = m.model->Parameters();
    const auto dst_params = copy.model->Parameters();
    CAMAL_CHECK_EQ(src_params.size(), dst_params.size());
    for (size_t i = 0; i < src_params.size(); ++i) {
      CAMAL_CHECK(dst_params[i]->value.SameShape(src_params[i]->value));
      dst_params[i]->value = src_params[i]->value;
    }
    const auto src_buffers = m.model->Buffers();
    const auto dst_buffers = copy.model->Buffers();
    CAMAL_CHECK_EQ(src_buffers.size(), dst_buffers.size());
    for (size_t i = 0; i < src_buffers.size(); ++i) {
      CAMAL_CHECK(dst_buffers[i]->SameShape(*src_buffers[i]));
      *dst_buffers[i] = *src_buffers[i];
    }
    copy.model->SetTraining(false);
    members.push_back(std::move(copy));
  }
  return CamalEnsemble(std::move(members));
}

std::vector<std::unique_ptr<CamalEnsemble>> CamalEnsemble::CloneReplicas(
    int count) {
  CAMAL_CHECK_GE(count, 0);
  std::vector<std::unique_ptr<CamalEnsemble>> replicas;
  replicas.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    replicas.push_back(std::make_unique<CamalEnsemble>(Clone()));
  }
  return replicas;
}

nn::Tensor CamalEnsemble::MeanClassOneProbability(const nn::Tensor& inputs,
                                                  bool use_inference_path) {
  CAMAL_CHECK(!members_.empty());
  const int64_t n = inputs.dim(0);
  nn::Tensor prob({n});
  for (auto& member : members_) {
    member.model->SetTraining(false);
    nn::Tensor logits = use_inference_path
                            ? member.model->ForwardInference(inputs)
                            : member.model->Forward(inputs);
    nn::Tensor p = nn::Softmax(logits);
    for (int64_t i = 0; i < n; ++i) prob.at(i) += p.at2(i, 1);
  }
  prob.ScaleInPlace(1.0f / static_cast<float>(members_.size()));
  return prob;
}

nn::Tensor CamalEnsemble::DetectProbability(const nn::Tensor& inputs) {
  return MeanClassOneProbability(inputs, /*use_inference_path=*/false);
}

nn::Tensor CamalEnsemble::DetectProbabilityBatched(const nn::Tensor& inputs) {
  return MeanClassOneProbability(inputs, /*use_inference_path=*/true);
}

int64_t CamalEnsemble::NumParameters() const {
  int64_t total = 0;
  for (const auto& m : members_) total += m.model->NumParameters();
  return total;
}

}  // namespace camal::core
