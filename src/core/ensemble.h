#ifndef CAMAL_CORE_ENSEMBLE_H_
#define CAMAL_CORE_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/backbone.h"
#include "core/inception.h"
#include "core/resnet.h"
#include "data/dataset.h"

namespace camal::core {

/// Training hyper-parameters for one ResNet classifier (Problem 1).
struct ClassifierTrainConfig {
  int max_epochs = 12;
  int batch_size = 32;
  float lr = 1e-3f;
  float weight_decay = 0.0f;
  /// Early-stopping patience (epochs without val-sub improvement).
  int patience = 3;
};

/// Configuration of Algorithm 1 (CamAL ResNet ensemble training).
struct EnsembleConfig {
  /// Kernel grid K_p; the paper uses {5, 7, 9, 15, 25}.
  std::vector<int64_t> kernel_sizes = {5, 7, 9, 15, 25};
  /// Trials per kernel size (Algorithm 1 uses 3).
  int trials_per_kernel = 3;
  /// Ensemble size n: the n models with the lowest validation loss are kept.
  int ensemble_size = 5;
  /// Base filter count of each ResNet (paper: 64).
  int64_t base_filters = 64;
  /// Classifier architecture: the paper's ResNet by default; Inception is
  /// provided to test the §IV-A design choice (bench_ablation_backbone).
  BackboneKind backbone = BackboneKind::kResNet;
  ClassifierTrainConfig train;
};

/// One selected ensemble member with its selection score.
struct EnsembleMember {
  std::unique_ptr<CamBackbone> model;
  int64_t kernel_size = 0;
  double validation_loss = 0.0;
};

/// Trains one ResNet classifier on weak labels with softmax cross-entropy,
/// Adam, and early stopping monitored on \p val_sub (best-epoch weights are
/// restored). Returns the best val_sub loss.
double TrainClassifier(CamBackbone* model,
                       const data::WindowDataset& train_sub,
                       const data::WindowDataset& val_sub,
                       const ClassifierTrainConfig& config, Rng* rng);

/// Mean softmax cross-entropy of \p model on \p dataset (eval mode).
double EvaluateClassifierLoss(CamBackbone* model,
                              const data::WindowDataset& dataset);

/// The detection half of CamAL: an ensemble of ResNets with diverse
/// receptive fields, trained with Algorithm 1.
class CamalEnsemble {
 public:
  /// Algorithm 1: splits \p train 80/20 into train-sub/val-sub, trains
  /// trials_per_kernel ResNets per kernel size, scores every trained model
  /// on \p validation, and keeps the ensemble_size best.
  static Result<CamalEnsemble> Train(const data::WindowDataset& train,
                                     const data::WindowDataset& validation,
                                     const EnsembleConfig& config,
                                     uint64_t seed);

  /// Assembles an ensemble from already-trained members (used by
  /// LoadEnsemble and by ablation benches that subset a candidate pool).
  static CamalEnsemble FromMembers(std::vector<EnsembleMember> members) {
    return CamalEnsemble(std::move(members));
  }

  CamalEnsemble(CamalEnsemble&&) = default;
  CamalEnsemble& operator=(CamalEnsemble&&) = default;

  /// Deep copy: fresh backbone instances with identical weights and
  /// buffers (BatchNorm running statistics), in eval mode. Members cache
  /// per-forward state (the feature maps CAM extraction reads), so
  /// concurrent scans need one replica per thread — this is what
  /// serve::Service clones for each request worker.
  CamalEnsemble Clone();

  /// Replica plumbing for multi-worker serving: \p count independent deep
  /// copies (heap-allocated so their addresses stay stable while
  /// BatchRunners hold pointers to them). Must be called from one thread
  /// while no forward pass runs on this ensemble — Clone reads weights,
  /// buffers, and per-member state that forwards mutate.
  std::vector<std::unique_ptr<CamalEnsemble>> CloneReplicas(int count);

  /// Ensemble detection probability (step 1 of §IV-B): the mean of member
  /// class-1 softmax probabilities, shape (N) for inputs (N, C, L).
  /// Member forward passes also cache the feature maps used for CAMs.
  nn::Tensor DetectProbability(const nn::Tensor& inputs);

  /// Same probability through the batched inference runtime: every member
  /// runs its inference-only forward (im2col+GEMM convolutions, fused
  /// BatchNorm, no backward caches) over the whole batch in one pass.
  /// Feature maps are cached for CAM extraction exactly like
  /// DetectProbability. Agrees with DetectProbability to float rounding.
  nn::Tensor DetectProbabilityBatched(const nn::Tensor& inputs);

  std::vector<EnsembleMember>& members() { return members_; }
  const std::vector<EnsembleMember>& members() const { return members_; }

  /// Total trainable parameters across members (Table II row).
  int64_t NumParameters() const;

 private:
  explicit CamalEnsemble(std::vector<EnsembleMember> members)
      : members_(std::move(members)) {}

  /// Shared body of DetectProbability / DetectProbabilityBatched.
  nn::Tensor MeanClassOneProbability(const nn::Tensor& inputs,
                                     bool use_inference_path);

  std::vector<EnsembleMember> members_;
};

}  // namespace camal::core

#endif  // CAMAL_CORE_ENSEMBLE_H_
