#include "core/resnet.h"

#include "nn/activations.h"
#include "nn/batchnorm1d.h"

namespace camal::core {
namespace {

// One Conv-BN(-ReLU) block.
std::unique_ptr<nn::Sequential> ConvBlock(int64_t in_ch, int64_t out_ch,
                                          int64_t kernel, bool relu,
                                          Rng* rng) {
  auto seq = std::make_unique<nn::Sequential>();
  nn::Conv1dOptions opt;
  opt.in_channels = in_ch;
  opt.out_channels = out_ch;
  opt.kernel_size = kernel;
  opt.padding = opt.SamePadding();
  opt.bias = false;  // BN makes the conv bias redundant
  seq->Add(std::make_unique<nn::Conv1d>(opt, rng));
  seq->Add(std::make_unique<nn::BatchNorm1d>(out_ch));
  if (relu) seq->Add(std::make_unique<nn::ReLU>());
  return seq;
}

// One residual unit: three conv blocks with kernels {k_p, 5, 3}; the ReLU
// of the last block happens after the shortcut addition (added by caller).
std::unique_ptr<nn::Residual> ResUnit(int64_t in_ch, int64_t out_ch,
                                      int64_t kernel_p, Rng* rng) {
  auto body = std::make_unique<nn::Sequential>();
  body->Add(ConvBlock(in_ch, out_ch, kernel_p, /*relu=*/true, rng));
  body->Add(ConvBlock(out_ch, out_ch, 5, /*relu=*/true, rng));
  body->Add(ConvBlock(out_ch, out_ch, 3, /*relu=*/false, rng));
  std::unique_ptr<nn::Module> shortcut;
  if (in_ch != out_ch) {
    shortcut = ConvBlock(in_ch, out_ch, 1, /*relu=*/false, rng);
  }
  return std::make_unique<nn::Residual>(std::move(body), std::move(shortcut));
}

}  // namespace

ResNetClassifier::ResNetClassifier(const ResNetConfig& config, Rng* rng)
    : config_(config) {
  CAMAL_CHECK_GT(config.base_filters, 0);
  const int64_t f = config.base_filters;
  body_ = std::make_unique<nn::Sequential>();
  body_->Add(ResUnit(config.input_channels, f, config.kernel_size, rng));
  body_->Add(std::make_unique<nn::ReLU>());
  body_->Add(ResUnit(f, 2 * f, config.kernel_size, rng));
  body_->Add(std::make_unique<nn::ReLU>());
  body_->Add(ResUnit(2 * f, 2 * f, config.kernel_size, rng));
  body_->Add(std::make_unique<nn::ReLU>());
  gap_ = std::make_unique<nn::GlobalAvgPool1d>();
  head_seq_ = std::make_unique<nn::Sequential>();
  head_ = head_seq_->Add(std::make_unique<nn::Linear>(
      2 * f, config.num_classes, /*bias=*/true, rng));
}

nn::Tensor ResNetClassifier::Forward(const nn::Tensor& x) {
  feature_maps_ = body_->Forward(x);
  nn::Tensor pooled = gap_->Forward(feature_maps_);
  return head_seq_->Forward(pooled);
}

nn::Tensor ResNetClassifier::ForwardInference(const nn::Tensor& x) {
  feature_maps_ = body_->ForwardInference(x);
  nn::Tensor pooled = gap_->ForwardInference(feature_maps_);
  return head_seq_->ForwardInference(pooled);
}

nn::Tensor ResNetClassifier::Backward(const nn::Tensor& grad_output) {
  nn::Tensor g = head_seq_->Backward(grad_output);
  g = gap_->Backward(g);
  return body_->Backward(g);
}

void ResNetClassifier::CollectParameters(std::vector<nn::Parameter*>* out) {
  body_->CollectParameters(out);
  head_seq_->CollectParameters(out);
}

void ResNetClassifier::CollectBuffers(std::vector<nn::Tensor*>* out) {
  body_->CollectBuffers(out);
  head_seq_->CollectBuffers(out);
}

void ResNetClassifier::SetTraining(bool training) {
  Module::SetTraining(training);
  body_->SetTraining(training);
  head_seq_->SetTraining(training);
}

const nn::Tensor& ResNetClassifier::head_weights() const {
  return head_->weight().value;
}

}  // namespace camal::core
