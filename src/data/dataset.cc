#include "data/dataset.h"

#include <algorithm>

#include "data/window.h"

namespace camal::data {

int64_t WindowDataset::PositiveCount() const {
  int64_t n = 0;
  for (int w : weak_labels) n += w;
  return n;
}

int64_t WindowDataset::LabelCount(bool strong) const {
  return strong ? size() * window_length : size();
}

WindowDataset WindowDataset::Subset(const std::vector<int64_t>& indices) const {
  WindowDataset out;
  out.window_length = window_length;
  out.appliance = appliance;
  const int64_t n = static_cast<int64_t>(indices.size());
  out.inputs = nn::Tensor({n, 1, window_length});
  out.status = nn::Tensor({n, window_length});
  out.appliance_power = nn::Tensor({n, window_length});
  out.weak_labels.reserve(static_cast<size_t>(n));
  out.house_ids.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t src = indices[static_cast<size_t>(i)];
    CAMAL_CHECK_GE(src, 0);
    CAMAL_CHECK_LT(src, size());
    for (int64_t t = 0; t < window_length; ++t) {
      out.inputs.at3(i, 0, t) = inputs.at3(src, 0, t);
      out.status.at2(i, t) = status.at2(src, t);
      out.appliance_power.at2(i, t) = appliance_power.at2(src, t);
    }
    out.weak_labels.push_back(weak_labels[static_cast<size_t>(src)]);
    out.house_ids.push_back(house_ids[static_cast<size_t>(src)]);
  }
  return out;
}

Result<WindowDataset> BuildWindowDataset(
    const std::vector<HouseRecord>& houses, const ApplianceSpec& appliance,
    const BuildOptions& options) {
  if (options.window_length <= 0) {
    return Status::InvalidArgument("window_length must be positive");
  }
  if (options.input_scale <= 0.0f) {
    return Status::InvalidArgument("input_scale must be positive");
  }

  struct Slice {
    const HouseRecord* house;
    const ApplianceTrace* trace;  // may be null (possession-only house)
    int64_t offset = 0;
    bool owned = false;
  };
  std::vector<Slice> slices;
  for (const auto& house : houses) {
    const ApplianceTrace* trace = house.FindAppliance(appliance.name);
    if (trace == nullptr && !options.possession_labels) continue;
    if (trace != nullptr &&
        trace->power.size() != house.aggregate.size()) {
      return Status::InvalidArgument(
          "appliance trace length mismatch in house " +
          std::to_string(house.house_id));
    }
    const auto offsets = TumblingWindowOffsets(
        static_cast<int64_t>(house.aggregate.size()), options.window_length);
    for (int64_t off : offsets) {
      if (options.drop_incomplete &&
          !WindowIsComplete(house.aggregate, off, options.window_length)) {
        continue;
      }
      slices.push_back(
          {&house, trace, off, house.Owns(appliance.name)});
    }
  }
  if (slices.empty()) {
    return Status::FailedPrecondition("no usable window for appliance " +
                                      appliance.name);
  }

  WindowDataset ds;
  ds.window_length = options.window_length;
  ds.appliance = appliance;
  const int64_t n = static_cast<int64_t>(slices.size());
  const int64_t l = options.window_length;
  ds.inputs = nn::Tensor({n, 1, l});
  ds.status = nn::Tensor({n, l});
  ds.appliance_power = nn::Tensor({n, l});
  ds.weak_labels.reserve(static_cast<size_t>(n));
  ds.house_ids.reserve(static_cast<size_t>(n));
  const float inv_scale = 1.0f / options.input_scale;

  for (int64_t i = 0; i < n; ++i) {
    const Slice& s = slices[static_cast<size_t>(i)];
    bool any_on = false;
    for (int64_t t = 0; t < l; ++t) {
      float agg = s.house->aggregate[static_cast<size_t>(s.offset + t)];
      if (IsMissing(agg)) agg = 0.0f;  // reachable with drop_incomplete=false
      ds.inputs.at3(i, 0, t) = agg * inv_scale;
      float power = 0.0f;
      float on = 0.0f;
      if (s.trace != nullptr) {
        power = s.trace->power[static_cast<size_t>(s.offset + t)];
        if (IsMissing(power)) power = 0.0f;
        on = power >= appliance.on_threshold_w ? 1.0f : 0.0f;
      }
      ds.status.at2(i, t) = on;
      ds.appliance_power.at2(i, t) = power;
      any_on = any_on || on > 0.5f;
    }
    int weak = 0;
    if (s.trace != nullptr) {
      weak = any_on ? 1 : 0;
    } else {
      // Possession-only pipeline (§V-H): the household ownership bit is
      // replicated onto every sliced subsequence.
      weak = s.owned ? 1 : 0;
    }
    ds.weak_labels.push_back(weak);
    ds.house_ids.push_back(s.house->house_id);
  }
  return ds;
}

Result<WindowDataset> ConcatDatasets(const std::vector<WindowDataset>& parts) {
  if (parts.empty()) return Status::InvalidArgument("no datasets to concat");
  int64_t total = 0;
  for (const auto& p : parts) {
    if (p.window_length != parts[0].window_length) {
      return Status::InvalidArgument("window length mismatch in concat");
    }
    if (p.appliance.name != parts[0].appliance.name) {
      return Status::InvalidArgument("appliance mismatch in concat");
    }
    total += p.size();
  }
  WindowDataset out;
  out.window_length = parts[0].window_length;
  out.appliance = parts[0].appliance;
  const int64_t l = out.window_length;
  out.inputs = nn::Tensor({total, 1, l});
  out.status = nn::Tensor({total, l});
  out.appliance_power = nn::Tensor({total, l});
  int64_t row = 0;
  for (const auto& p : parts) {
    for (int64_t i = 0; i < p.size(); ++i, ++row) {
      for (int64_t t = 0; t < l; ++t) {
        out.inputs.at3(row, 0, t) = p.inputs.at3(i, 0, t);
        out.status.at2(row, t) = p.status.at2(i, t);
        out.appliance_power.at2(row, t) = p.appliance_power.at2(i, t);
      }
      out.weak_labels.push_back(p.weak_labels[static_cast<size_t>(i)]);
      out.house_ids.push_back(p.house_ids[static_cast<size_t>(i)]);
    }
  }
  return out;
}

}  // namespace camal::data
