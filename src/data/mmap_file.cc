#include "data/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace camal::data {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " + std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError(path + " is not a regular file");
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* mapped =
        ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IoError("cannot mmap " + path + ": " +
                             std::strerror(err));
    }
    file.data_ = static_cast<const uint8_t*>(mapped);
  }
  // The mapping holds its own reference to the file; the descriptor is
  // only needed to create it.
  ::close(fd);
  return file;
}

void MmapFile::Unmap() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace camal::data
