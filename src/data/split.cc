#include "data/split.h"

#include <cmath>

namespace camal::data {

Result<HouseSplit> SplitHouses(const std::vector<HouseRecord>& houses,
                               int64_t n_valid, int64_t n_test, Rng* rng) {
  const int64_t n = static_cast<int64_t>(houses.size());
  if (n_valid < 0 || n_test < 0) {
    return Status::InvalidArgument("split counts must be non-negative");
  }
  if (n_valid + n_test >= n) {
    return Status::InvalidArgument(
        "valid + test houses must leave at least one training house");
  }
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  rng->Shuffle(&order);
  HouseSplit split;
  for (int64_t i = 0; i < n; ++i) {
    const HouseRecord& h =
        houses[static_cast<size_t>(order[static_cast<size_t>(i)])];
    if (i < n_valid) {
      split.valid.push_back(h);
    } else if (i < n_valid + n_test) {
      split.test.push_back(h);
    } else {
      split.train.push_back(h);
    }
  }
  return split;
}

Result<HouseSplit> SplitHousesFraction(const std::vector<HouseRecord>& houses,
                                       double valid_fraction,
                                       double test_fraction, Rng* rng) {
  if (valid_fraction < 0.0 || test_fraction < 0.0 ||
      valid_fraction + test_fraction >= 1.0) {
    return Status::InvalidArgument("invalid split fractions");
  }
  const int64_t n = static_cast<int64_t>(houses.size());
  const int64_t n_valid = static_cast<int64_t>(std::floor(n * valid_fraction));
  const int64_t n_test = static_cast<int64_t>(std::floor(n * test_fraction));
  return SplitHouses(houses, n_valid, n_test, rng);
}

}  // namespace camal::data
