#ifndef CAMAL_DATA_CSV_LOADER_H_
#define CAMAL_DATA_CSV_LOADER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/time_series.h"

namespace camal::data {

/// Loads one household recording from a CSV file so the library can run on
/// real smart-meter exports (UK-DALE/REFIT-style per-house dumps) instead
/// of the built-in simulator.
///
/// Expected format (header row required):
///   timestamp,aggregate[,appliance_1[,appliance_2...]]
/// - `timestamp`: integer seconds (unix or relative). Rows must be sorted;
///   the sampling interval is inferred from the first two rows and gaps are
///   expanded into missing readings.
/// - `aggregate` and appliance columns: Watts; empty cells are missing.
/// Appliance column names become ApplianceTrace names.
Result<HouseRecord> LoadHouseCsv(const std::string& path, int house_id);

/// Parses the same format from an in-memory string (for tests and pipes).
Result<HouseRecord> ParseHouseCsv(const std::string& text, int house_id);

/// Loads every `house_*.csv` file in \p directory (sorted by name) as one
/// cohort. House ids are assigned from the file order (1-based).
Result<std::vector<HouseRecord>> LoadDatasetDir(const std::string& directory);

/// Writes a HouseRecord back to CSV (inverse of LoadHouseCsv); useful for
/// exporting simulated cohorts to disk for external tools.
Status WriteHouseCsv(const HouseRecord& house, const std::string& path);

/// Possession survey file: one `house_id,appliance,owned` row per answer
/// (owned in {0,1}). Applies the answers to the matching houses in
/// \p houses (by house_id); unknown ids are reported as errors.
Status ApplyPossessionSurvey(const std::string& path,
                             std::vector<HouseRecord>* houses);

}  // namespace camal::data

#endif  // CAMAL_DATA_CSV_LOADER_H_
