#include "data/csv_loader.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/csv.h"

namespace camal::data {
namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string text;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  // fread returns 0 for EOF and for a read error alike; only ferror tells
  // them apart. A silently-truncated read must not parse as a shorter
  // (but well-formed) household.
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read error on " + path);
  return text;
}

Result<double> ParseNumber(const std::string& cell, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str() || *end != '\0') {
    return Status::InvalidArgument(std::string("malformed ") + what + ": '" +
                                   cell + "'");
  }
  return v;
}

}  // namespace

Result<HouseRecord> ParseHouseCsv(const std::string& text, int house_id) {
  CAMAL_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  if (rows.size() < 3) {
    return Status::InvalidArgument("need a header plus at least two rows");
  }
  const auto& header = rows[0];
  if (header.size() < 2 || header[0] != "timestamp" ||
      header[1] != "aggregate") {
    return Status::InvalidArgument(
        "header must start with 'timestamp,aggregate'");
  }
  const size_t n_appliances = header.size() - 2;

  // Infer the interval from the first two data rows.
  CAMAL_ASSIGN_OR_RETURN(double t0, ParseNumber(rows[1][0], "timestamp"));
  CAMAL_ASSIGN_OR_RETURN(double t1, ParseNumber(rows[2][0], "timestamp"));
  const double interval = t1 - t0;
  if (interval <= 0.0) {
    return Status::InvalidArgument("timestamps must be strictly increasing");
  }

  HouseRecord house;
  house.house_id = house_id;
  house.interval_seconds = interval;
  for (size_t a = 0; a < n_appliances; ++a) {
    ApplianceTrace trace;
    trace.name = header[2 + a];
    house.appliances.push_back(std::move(trace));
    house.owned_appliances.push_back(header[2 + a]);
  }

  double expected_t = t0;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != header.size()) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     " has wrong arity");
    }
    CAMAL_ASSIGN_OR_RETURN(double ts, ParseNumber(row[0], "timestamp"));
    if (r > 1 && ts <= expected_t - interval + 1e-9) {
      return Status::InvalidArgument("timestamps must be strictly increasing");
    }
    // Expand gaps into missing readings.
    while (ts > expected_t + interval / 2.0) {
      house.aggregate.push_back(kMissingValue);
      for (auto& trace : house.appliances) {
        trace.power.push_back(kMissingValue);
      }
      expected_t += interval;
    }
    if (row[1].empty()) {
      house.aggregate.push_back(kMissingValue);
    } else {
      CAMAL_ASSIGN_OR_RETURN(double agg, ParseNumber(row[1], "aggregate"));
      house.aggregate.push_back(static_cast<float>(agg));
    }
    for (size_t a = 0; a < n_appliances; ++a) {
      if (row[2 + a].empty()) {
        house.appliances[a].power.push_back(kMissingValue);
      } else {
        CAMAL_ASSIGN_OR_RETURN(double w,
                               ParseNumber(row[2 + a], "appliance power"));
        house.appliances[a].power.push_back(static_cast<float>(w));
      }
    }
    expected_t += interval;
  }
  return house;
}

Result<HouseRecord> LoadHouseCsv(const std::string& path, int house_id) {
  CAMAL_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseHouseCsv(text, house_id);
}

Result<std::vector<HouseRecord>> LoadDatasetDir(
    const std::string& directory) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return Status::NotFound("not a directory: " + directory);
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("house_", 0) == 0 && name.size() > 4 &&
        name.substr(name.size() - 4) == ".csv") {
      files.push_back(entry.path().string());
    }
  }
  if (files.empty()) {
    return Status::NotFound("no house_*.csv files in " + directory);
  }
  std::sort(files.begin(), files.end());
  std::vector<HouseRecord> houses;
  int next_id = 1;
  for (const std::string& file : files) {
    CAMAL_ASSIGN_OR_RETURN(HouseRecord house, LoadHouseCsv(file, next_id));
    houses.push_back(std::move(house));
    ++next_id;
  }
  return houses;
}

Status WriteHouseCsv(const HouseRecord& house, const std::string& path) {
  CsvWriter writer(path);
  std::vector<std::string> header{"timestamp", "aggregate"};
  for (const auto& trace : house.appliances) header.push_back(trace.name);
  writer.AddRow(header);
  for (size_t i = 0; i < house.aggregate.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(std::to_string(
        static_cast<int64_t>(i * house.interval_seconds)));
    const float agg = house.aggregate[i];
    row.push_back(IsMissing(agg) ? "" : std::to_string(agg));
    for (const auto& trace : house.appliances) {
      const float v = trace.power[i];
      row.push_back(IsMissing(v) ? "" : std::to_string(v));
    }
    writer.AddRow(row);
  }
  return writer.Write();
}

Status ApplyPossessionSurvey(const std::string& path,
                             std::vector<HouseRecord>* houses) {
  CAMAL_CHECK(houses != nullptr);
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  auto rows = ParseCsv(text.value());
  if (!rows.ok()) return rows.status();
  for (size_t r = 0; r < rows.value().size(); ++r) {
    const auto& row = rows.value()[r];
    if (r == 0 && !row.empty() && row[0] == "house_id") continue;  // header
    if (row.size() != 3) {
      return Status::InvalidArgument("survey row " + std::to_string(r) +
                                     " must be house_id,appliance,owned");
    }
    // Not atoi: "12x" or "kitchen" would silently map to an id (12 / 0)
    // and mis-attribute the answer to the wrong house.
    CAMAL_ASSIGN_OR_RETURN(const double id_value,
                           ParseNumber(row[0], "survey house_id"));
    const int id = static_cast<int>(id_value);
    if (static_cast<double>(id) != id_value) {
      return Status::InvalidArgument("malformed survey house_id: '" + row[0] +
                                     "'");
    }
    HouseRecord* house = nullptr;
    for (auto& h : *houses) {
      if (h.house_id == id) house = &h;
    }
    if (house == nullptr) {
      return Status::NotFound("survey references unknown house " + row[0]);
    }
    const bool owned = row[2] == "1" || row[2] == "true";
    auto& owned_list = house->owned_appliances;
    const auto it =
        std::find(owned_list.begin(), owned_list.end(), row[1]);
    if (owned && it == owned_list.end()) {
      owned_list.push_back(row[1]);
    } else if (!owned && it != owned_list.end()) {
      owned_list.erase(it);
    }
  }
  return Status::OK();
}

}  // namespace camal::data
