#ifndef CAMAL_DATA_SERIES_VIEW_H_
#define CAMAL_DATA_SERIES_VIEW_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace camal::data {

/// Non-owning view of a contiguous float series — the currency of the
/// zero-copy data plane. A view is a (pointer, length) pair over readings
/// someone else owns: a std::vector<float>, a mapped ColumnStore channel,
/// or a slice of either. Copying a view never copies readings, which is
/// what lets a serving scan run straight off a memory-mapped household
/// file. The backing storage must outlive every view of it.
class SeriesView {
 public:
  constexpr SeriesView() = default;

  /// Views \p size readings starting at \p data. \p data may be null only
  /// when \p size is 0 (the empty series).
  SeriesView(const float* data, int64_t size) : data_(data), size_(size) {
    CAMAL_CHECK_GE(size, 0);
    CAMAL_CHECK(data != nullptr || size == 0);
  }

  /// Implicit borrow of a vector's readings, so every call site that held
  /// a std::vector<float> keeps working unchanged. The vector must not
  /// reallocate or die while the view is in use.
  SeriesView(const std::vector<float>& values)  // NOLINT(runtime/explicit)
      : data_(values.data()), size_(static_cast<int64_t>(values.size())) {}

  const float* data() const { return data_; }
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  float operator[](int64_t i) const { return data_[i]; }

  /// Iterator pair for range-for and std algorithms.
  const float* begin() const { return data_; }
  const float* end() const { return data_ + size_; }

  /// The sub-series [offset, offset + count); bounds-checked.
  SeriesView subview(int64_t offset, int64_t count) const {
    CAMAL_CHECK_GE(offset, 0);
    CAMAL_CHECK_GE(count, 0);
    CAMAL_CHECK_LE(offset + count, size_);
    return SeriesView(count == 0 ? nullptr : data_ + offset, count);
  }

 private:
  const float* data_ = nullptr;
  int64_t size_ = 0;
};

}  // namespace camal::data

#endif  // CAMAL_DATA_SERIES_VIEW_H_
