#ifndef CAMAL_DATA_WINDOW_H_
#define CAMAL_DATA_WINDOW_H_

#include <cstdint>
#include <vector>

#include "data/time_series.h"

namespace camal::data {

/// Offsets of non-overlapping (tumbling) windows of \p window_length in a
/// series of \p series_length samples, skipping the trailing remainder.
std::vector<int64_t> TumblingWindowOffsets(int64_t series_length,
                                           int64_t window_length);

/// True when values[offset, offset + length) contains no missing reading.
/// Windows with remaining missing values after preprocessing are discarded
/// (§V-B).
bool WindowIsComplete(const std::vector<float>& values, int64_t offset,
                      int64_t length);

}  // namespace camal::data

#endif  // CAMAL_DATA_WINDOW_H_
