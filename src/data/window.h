#ifndef CAMAL_DATA_WINDOW_H_
#define CAMAL_DATA_WINDOW_H_

#include <cstdint>
#include <vector>

#include "data/time_series.h"

namespace camal::data {

/// Offsets of non-overlapping (tumbling) windows of \p window_length in a
/// series of \p series_length samples, skipping the trailing remainder.
std::vector<int64_t> TumblingWindowOffsets(int64_t series_length,
                                           int64_t window_length);

/// True when values[offset, offset + length) contains no missing reading.
/// Windows with remaining missing values after preprocessing are discarded
/// (§V-B).
bool WindowIsComplete(const std::vector<float>& values, int64_t offset,
                      int64_t length);

/// Number of stride-grid windows (offsets 0, stride, 2*stride, ...) of
/// \p window_length that fit a series of \p series_length samples. The
/// grid is append-only: growing the series never moves or removes an
/// existing grid window, which is what lets a streaming session keep its
/// committed windows' stitch votes across appends.
int64_t GridWindowCount(int64_t series_length, int64_t window_length,
                        int64_t stride);

/// True when the stride grid leaves trailing samples uncovered, i.e. the
/// serving window plan adds an end-aligned tail window at
/// series_length - window_length on top of the grid. False for series
/// shorter than one window (no grid) and for series the grid covers
/// exactly — a duplicate tail there would double the last window's votes.
/// Unlike grid windows the tail moves with the series end, so streaming
/// sessions recompute it on every append instead of persisting its votes.
bool GridLeavesTail(int64_t series_length, int64_t window_length,
                    int64_t stride);

}  // namespace camal::data

#endif  // CAMAL_DATA_WINDOW_H_
