#ifndef CAMAL_DATA_COLUMN_STORE_H_
#define CAMAL_DATA_COLUMN_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/mmap_file.h"
#include "data/series_view.h"
#include "data/time_series.h"

namespace camal::data {

/// Binary columnar household store — the at-scale ingestion format of the
/// serving stack, replacing CSV text parsing on the cold-start path.
///
/// One file holds one household. Layout (all integers little-endian
/// native, floats IEEE-754 binary32, missing readings stored as NaN with
/// their payload bits preserved):
///
///   header   magic "CAML", version, house_id, channel/chunk counts,
///            interval_seconds, total_samples, data_offset
///   names    per channel: uint32 length + bytes (channel 0 is the
///            aggregate; the rest are appliance submeter traces)
///   chunks   per chunk: int64 start sample + int64 sample count — the
///            chunk's timestamp offset is start * interval_seconds.
///            Chunks are contiguous and ascending.
///   data     64-byte aligned, channel-major: each channel's
///            total_samples floats are contiguous, and chunk k of channel
///            c is the [start_k, start_k + count_k) slice of that region.
///
/// Channel-major data is the zero-copy contract: a whole channel is one
/// contiguous SeriesView straight into the mapping, so a serving scan
/// reads model inputs directly off the file — no parse, no copy. The
/// chunk directory carves the same bytes into bounded slices for
/// streaming readers that want to touch one chunk at a time.
struct ColumnStoreFormat {
  static constexpr uint32_t kMagic = 0x4C4D4143;  // "CAML" little-endian
  static constexpr uint32_t kVersion = 1;
  static constexpr int64_t kDataAlignment = 64;
  static constexpr size_t kHeaderBytes = 48;
  /// Sanity bound on a channel name; real appliance names are tiny.
  static constexpr uint32_t kMaxNameBytes = 4096;
};

/// Writer knobs.
struct ColumnStoreWriteOptions {
  /// Samples per chunk-directory entry. The default keeps chunks around
  /// 1 MiB of floats — small enough for bounded-memory streaming readers,
  /// large enough that the directory stays negligible.
  int64_t chunk_samples = 1 << 18;
};

/// Writes \p house as a column store file at \p path (overwriting).
/// Appliance traces must be aligned with the aggregate (same length);
/// missing readings (NaN) round-trip bit-exactly.
Status WriteColumnStore(const HouseRecord& house, const std::string& path,
                        const ColumnStoreWriteOptions& options = {});

/// Memory-mapped reader. Open validates the whole file shape up front —
/// magic, version, name table and chunk directory bounds, chunk
/// invariants, and that every channel's data region lies inside the file
/// — and returns a Status for anything malformed (empty file, bad magic,
/// version mismatch, truncated chunk), so readers never fault on a
/// corrupt store. After Open, every accessor is a bounds-checked view
/// into the mapping: nothing is parsed or copied again.
class ColumnStore {
 public:
  static Result<ColumnStore> Open(const std::string& path);

  int house_id() const { return house_id_; }
  double interval_seconds() const { return interval_seconds_; }
  int64_t num_samples() const { return total_samples_; }
  int64_t num_channels() const {
    return static_cast<int64_t>(names_.size());
  }
  int64_t num_chunks() const {
    return static_cast<int64_t>(chunk_starts_.size());
  }
  /// Bytes of the backing file (for loader benches).
  int64_t file_bytes() const { return static_cast<int64_t>(file_.size()); }

  /// Channel 0 is always "aggregate"; 1.. are appliance traces.
  const std::string& channel_name(int64_t c) const {
    return names_[static_cast<size_t>(c)];
  }

  /// Zero-copy view of channel \p c's full series, straight into the
  /// mapping. Valid only while this store is alive.
  SeriesView Channel(int64_t c) const;

  /// The household aggregate (channel 0) — what a serving scan feeds.
  SeriesView aggregate() const { return Channel(0); }

  /// Chunk directory: chunk \p k covers samples
  /// [chunk_start(k), chunk_start(k) + chunk_samples(k)), i.e. timestamps
  /// from chunk_start(k) * interval_seconds.
  int64_t chunk_start(int64_t k) const {
    return chunk_starts_[static_cast<size_t>(k)];
  }
  int64_t chunk_samples(int64_t k) const {
    return chunk_counts_[static_cast<size_t>(k)];
  }

  /// Zero-copy view of chunk \p k of channel \p c (a slice of Channel(c)).
  SeriesView ChunkColumn(int64_t k, int64_t c) const;

  /// Materializes the household (copies out of the mapping) for training
  /// and evaluation paths that mutate or outlive the store. Appliance
  /// channels become owned_appliances, mirroring the CSV loader.
  HouseRecord ToHouseRecord() const;

 private:
  MmapFile file_;
  int house_id_ = 0;
  double interval_seconds_ = 0.0;
  int64_t total_samples_ = 0;
  int64_t data_offset_ = 0;
  std::vector<std::string> names_;
  std::vector<int64_t> chunk_starts_;
  std::vector<int64_t> chunk_counts_;
};

/// CSV -> binary converter: LoadHouseCsv + WriteColumnStore.
Status ConvertCsvToStore(const std::string& csv_path,
                         const std::string& store_path, int house_id,
                         const ColumnStoreWriteOptions& options = {});

/// Binary -> CSV converter (inverse; NaN cells become empty cells).
Status ConvertStoreToCsv(const std::string& store_path,
                         const std::string& csv_path);

/// Opens every `house_*.cstore` file in \p directory (sorted by name) as
/// one mapped cohort — the binary counterpart of LoadDatasetDir.
Result<std::vector<ColumnStore>> OpenStoreDir(const std::string& directory);

}  // namespace camal::data

#endif  // CAMAL_DATA_COLUMN_STORE_H_
