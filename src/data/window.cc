#include "data/window.h"

namespace camal::data {

std::vector<int64_t> TumblingWindowOffsets(int64_t series_length,
                                           int64_t window_length) {
  std::vector<int64_t> offsets;
  if (window_length <= 0) return offsets;
  for (int64_t off = 0; off + window_length <= series_length;
       off += window_length) {
    offsets.push_back(off);
  }
  return offsets;
}

bool WindowIsComplete(const std::vector<float>& values, int64_t offset,
                      int64_t length) {
  for (int64_t i = offset; i < offset + length; ++i) {
    if (IsMissing(values[static_cast<size_t>(i)])) return false;
  }
  return true;
}

int64_t GridWindowCount(int64_t series_length, int64_t window_length,
                        int64_t stride) {
  if (window_length <= 0 || stride <= 0 || series_length < window_length) {
    return 0;
  }
  return (series_length - window_length) / stride + 1;
}

bool GridLeavesTail(int64_t series_length, int64_t window_length,
                    int64_t stride) {
  if (window_length <= 0 || stride <= 0 || series_length < window_length) {
    return false;
  }
  return (series_length - window_length) % stride != 0;
}

}  // namespace camal::data
