#include "data/column_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>

#include "common/atomic_file.h"
#include "data/csv_loader.h"

namespace camal::data {
namespace {

/// Fixed 48-byte file header. Serialized field by field (memcpy through a
/// byte buffer), so the on-disk layout is the spec below, not whatever a
/// compiler pads a struct to.
struct Header {
  uint32_t magic = ColumnStoreFormat::kMagic;  // offset 0
  uint32_t version = ColumnStoreFormat::kVersion;  // offset 4
  int32_t house_id = 0;                            // offset 8
  uint32_t n_channels = 0;                         // offset 12
  uint32_t n_chunks = 0;                           // offset 16
  uint32_t name_bytes = 0;                         // offset 20
  double interval_seconds = 0.0;                   // offset 24
  int64_t total_samples = 0;                       // offset 32
  int64_t data_offset = 0;                         // offset 40
};

void EncodeHeader(const Header& header,
                  uint8_t out[ColumnStoreFormat::kHeaderBytes]) {
  std::memcpy(out + 0, &header.magic, 4);
  std::memcpy(out + 4, &header.version, 4);
  std::memcpy(out + 8, &header.house_id, 4);
  std::memcpy(out + 12, &header.n_channels, 4);
  std::memcpy(out + 16, &header.n_chunks, 4);
  std::memcpy(out + 20, &header.name_bytes, 4);
  std::memcpy(out + 24, &header.interval_seconds, 8);
  std::memcpy(out + 32, &header.total_samples, 8);
  std::memcpy(out + 40, &header.data_offset, 8);
}

Header DecodeHeader(const uint8_t* in) {
  Header header;
  std::memcpy(&header.magic, in + 0, 4);
  std::memcpy(&header.version, in + 4, 4);
  std::memcpy(&header.house_id, in + 8, 4);
  std::memcpy(&header.n_channels, in + 12, 4);
  std::memcpy(&header.n_chunks, in + 16, 4);
  std::memcpy(&header.name_bytes, in + 20, 4);
  std::memcpy(&header.interval_seconds, in + 24, 8);
  std::memcpy(&header.total_samples, in + 32, 8);
  std::memcpy(&header.data_offset, in + 40, 8);
  return header;
}

int64_t AlignUp(int64_t offset, int64_t alignment) {
  return (offset + alignment - 1) / alignment * alignment;
}

}  // namespace

Status WriteColumnStore(const HouseRecord& house, const std::string& path,
                        const ColumnStoreWriteOptions& options) {
  if (options.chunk_samples <= 0) {
    return Status::InvalidArgument("chunk_samples must be positive");
  }
  if (!(house.interval_seconds > 0.0)) {
    return Status::InvalidArgument("interval_seconds must be positive");
  }
  const int64_t total = static_cast<int64_t>(house.aggregate.size());
  for (const ApplianceTrace& trace : house.appliances) {
    if (static_cast<int64_t>(trace.power.size()) != total) {
      return Status::InvalidArgument(
          "appliance trace '" + trace.name +
          "' is not aligned with the aggregate");
    }
    if (trace.name.empty()) {
      return Status::InvalidArgument("appliance trace has an empty name");
    }
  }

  // Channel 0 is always the aggregate; submeter traces follow.
  std::vector<std::string> names;
  names.reserve(house.appliances.size() + 1);
  names.push_back("aggregate");
  for (const ApplianceTrace& trace : house.appliances) {
    names.push_back(trace.name);
  }
  uint32_t name_bytes = 0;
  for (const std::string& name : names) {
    if (name.size() > ColumnStoreFormat::kMaxNameBytes) {
      return Status::InvalidArgument("channel name too long: " + name);
    }
    name_bytes += 4 + static_cast<uint32_t>(name.size());
  }

  // Chunk directory: contiguous, ascending, last chunk possibly short.
  std::vector<int64_t> chunk_starts;
  std::vector<int64_t> chunk_counts;
  for (int64_t start = 0; start < total; start += options.chunk_samples) {
    chunk_starts.push_back(start);
    chunk_counts.push_back(std::min(options.chunk_samples, total - start));
  }

  Header header;
  header.house_id = house.house_id;
  header.n_channels = static_cast<uint32_t>(names.size());
  header.n_chunks = static_cast<uint32_t>(chunk_starts.size());
  header.name_bytes = name_bytes;
  header.interval_seconds = house.interval_seconds;
  header.total_samples = total;
  const int64_t metadata_end =
      static_cast<int64_t>(ColumnStoreFormat::kHeaderBytes) + name_bytes +
      static_cast<int64_t>(chunk_starts.size()) * 16;
  header.data_offset =
      AlignUp(metadata_end, ColumnStoreFormat::kDataAlignment);

  // Atomic replace (temp + fsync + rename, invariant R6): a crash — or
  // an injected fault — mid-write leaves the previous store intact
  // instead of a partial file the mmap reader would reject on next boot.
  AtomicFileWriter writer(path);
  Status status = Status::OK();
  const auto write = [&](const void* bytes, size_t n) {
    if (status.ok()) status = writer.Write(bytes, n);
  };
  uint8_t encoded[ColumnStoreFormat::kHeaderBytes];
  EncodeHeader(header, encoded);
  write(encoded, sizeof(encoded));
  for (const std::string& name : names) {
    const uint32_t len = static_cast<uint32_t>(name.size());
    write(&len, 4);
    write(name.data(), name.size());
  }
  for (size_t k = 0; k < chunk_starts.size(); ++k) {
    write(&chunk_starts[k], 8);
    write(&chunk_counts[k], 8);
  }
  const std::string padding(
      static_cast<size_t>(header.data_offset - metadata_end), '\0');
  write(padding.data(), padding.size());
  // Channel-major data: each channel's samples contiguous (the zero-copy
  // contract), chunk slices addressed through the directory above. Floats
  // are written verbatim, so NaN missing-value payloads survive bit-exact.
  write(house.aggregate.data(), static_cast<size_t>(total) * 4);
  for (const ApplianceTrace& trace : house.appliances) {
    write(trace.power.data(), static_cast<size_t>(total) * 4);
  }
  CAMAL_RETURN_NOT_OK(status);
  return writer.Commit();
}

Result<ColumnStore> ColumnStore::Open(const std::string& path) {
  CAMAL_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  const int64_t file_size = static_cast<int64_t>(file.size());
  if (file_size < static_cast<int64_t>(ColumnStoreFormat::kHeaderBytes)) {
    return Status::InvalidArgument(
        path + ": truncated header (" + std::to_string(file_size) +
        " bytes" + (file_size == 0 ? ", empty file" : "") + ")");
  }
  const Header header = DecodeHeader(file.data());
  if (header.magic != ColumnStoreFormat::kMagic) {
    return Status::InvalidArgument(path + ": bad magic (not a column store)");
  }
  if (header.version != ColumnStoreFormat::kVersion) {
    return Status::InvalidArgument(
        path + ": unsupported version " + std::to_string(header.version) +
        " (reader supports " +
        std::to_string(ColumnStoreFormat::kVersion) + ")");
  }
  if (header.n_channels == 0 || header.n_channels > (1u << 16)) {
    return Status::InvalidArgument(
        path + ": invalid channel count " +
        std::to_string(header.n_channels));
  }
  if (!(header.interval_seconds > 0.0)) {
    return Status::InvalidArgument(path + ": invalid sampling interval");
  }
  if (header.total_samples < 0 ||
      header.total_samples >
          std::numeric_limits<int64_t>::max() /
              (4 * static_cast<int64_t>(header.n_channels))) {
    return Status::InvalidArgument(path + ": invalid sample count");
  }

  // Metadata bounds: names then chunk directory, all before data_offset.
  const int64_t names_begin =
      static_cast<int64_t>(ColumnStoreFormat::kHeaderBytes);
  const int64_t names_end = names_begin + header.name_bytes;
  const int64_t chunks_end =
      names_end + static_cast<int64_t>(header.n_chunks) * 16;
  if (header.name_bytes > file_size - names_begin ||
      chunks_end > file_size || chunks_end > header.data_offset) {
    return Status::InvalidArgument(path + ": truncated metadata");
  }
  if (header.data_offset % ColumnStoreFormat::kDataAlignment != 0) {
    return Status::InvalidArgument(path + ": misaligned data section");
  }
  const int64_t data_bytes =
      4 * static_cast<int64_t>(header.n_channels) * header.total_samples;
  if (header.data_offset > file_size - data_bytes) {
    return Status::InvalidArgument(path + ": truncated chunk data");
  }

  ColumnStore store;
  store.house_id_ = header.house_id;
  store.interval_seconds_ = header.interval_seconds;
  store.total_samples_ = header.total_samples;
  store.data_offset_ = header.data_offset;

  // Name table: uint32 length + bytes per channel, packed.
  int64_t cursor = names_begin;
  store.names_.reserve(header.n_channels);
  for (uint32_t c = 0; c < header.n_channels; ++c) {
    if (cursor + 4 > names_end) {
      return Status::InvalidArgument(path + ": truncated channel names");
    }
    uint32_t len = 0;
    std::memcpy(&len, file.data() + cursor, 4);
    cursor += 4;
    if (len > ColumnStoreFormat::kMaxNameBytes ||
        cursor + static_cast<int64_t>(len) > names_end) {
      return Status::InvalidArgument(path + ": corrupt channel name table");
    }
    store.names_.emplace_back(
        reinterpret_cast<const char*>(file.data() + cursor), len);
    cursor += len;
  }
  if (cursor != names_end) {
    return Status::InvalidArgument(path + ": corrupt channel name table");
  }

  // Chunk directory: contiguous ascending coverage of the whole series.
  store.chunk_starts_.reserve(header.n_chunks);
  store.chunk_counts_.reserve(header.n_chunks);
  int64_t expected_start = 0;
  for (uint32_t k = 0; k < header.n_chunks; ++k) {
    int64_t start = 0;
    int64_t count = 0;
    std::memcpy(&start, file.data() + names_end + 16 * k, 8);
    std::memcpy(&count, file.data() + names_end + 16 * k + 8, 8);
    if (start != expected_start || count <= 0 ||
        count > header.total_samples - start) {
      return Status::InvalidArgument(path + ": corrupt chunk directory");
    }
    store.chunk_starts_.push_back(start);
    store.chunk_counts_.push_back(count);
    expected_start = start + count;
  }
  if (expected_start != header.total_samples) {
    return Status::InvalidArgument(
        path + ": chunk directory does not cover the series");
  }

  store.file_ = std::move(file);
  return store;
}

SeriesView ColumnStore::Channel(int64_t c) const {
  CAMAL_CHECK_GE(c, 0);
  CAMAL_CHECK_LT(c, num_channels());
  if (total_samples_ == 0) return SeriesView();
  const uint8_t* base = file_.data() + data_offset_ + 4 * c * total_samples_;
  return SeriesView(reinterpret_cast<const float*>(base), total_samples_);
}

SeriesView ColumnStore::ChunkColumn(int64_t k, int64_t c) const {
  CAMAL_CHECK_GE(k, 0);
  CAMAL_CHECK_LT(k, num_chunks());
  return Channel(c).subview(chunk_start(k), chunk_samples(k));
}

HouseRecord ColumnStore::ToHouseRecord() const {
  HouseRecord house;
  house.house_id = house_id_;
  house.interval_seconds = interval_seconds_;
  const SeriesView aggregate_view = aggregate();
  house.aggregate.assign(aggregate_view.begin(), aggregate_view.end());
  for (int64_t c = 1; c < num_channels(); ++c) {
    ApplianceTrace trace;
    trace.name = channel_name(c);
    const SeriesView view = Channel(c);
    trace.power.assign(view.begin(), view.end());
    house.appliances.push_back(std::move(trace));
    // Mirror the CSV loader: a stored submeter channel implies possession.
    house.owned_appliances.push_back(channel_name(c));
  }
  return house;
}

Status ConvertCsvToStore(const std::string& csv_path,
                         const std::string& store_path, int house_id,
                         const ColumnStoreWriteOptions& options) {
  CAMAL_ASSIGN_OR_RETURN(HouseRecord house,
                         LoadHouseCsv(csv_path, house_id));
  return WriteColumnStore(house, store_path, options);
}

Status ConvertStoreToCsv(const std::string& store_path,
                         const std::string& csv_path) {
  CAMAL_ASSIGN_OR_RETURN(ColumnStore store, ColumnStore::Open(store_path));
  return WriteHouseCsv(store.ToHouseRecord(), csv_path);
}

Result<std::vector<ColumnStore>> OpenStoreDir(const std::string& directory) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return Status::NotFound("not a directory: " + directory);
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("house_", 0) == 0 && name.size() > 7 &&
        name.substr(name.size() - 7) == ".cstore") {
      files.push_back(entry.path().string());
    }
  }
  if (files.empty()) {
    return Status::NotFound("no house_*.cstore files in " + directory);
  }
  std::sort(files.begin(), files.end());
  std::vector<ColumnStore> stores;
  stores.reserve(files.size());
  for (const std::string& file : files) {
    CAMAL_ASSIGN_OR_RETURN(ColumnStore store, ColumnStore::Open(file));
    stores.push_back(std::move(store));
  }
  return stores;
}

}  // namespace camal::data
