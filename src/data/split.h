#ifndef CAMAL_DATA_SPLIT_H_
#define CAMAL_DATA_SPLIT_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/time_series.h"

namespace camal::data {

/// House-level split: distinct houses for train/valid/test (§V-B's
/// "unseen data from different houses" protocol).
struct HouseSplit {
  std::vector<HouseRecord> train;
  std::vector<HouseRecord> valid;
  std::vector<HouseRecord> test;
};

/// Randomly assigns \p n_valid and \p n_test houses to the validation and
/// test sets and the remainder to training. Fails when the counts exceed
/// the number of houses or leave the training set empty.
Result<HouseSplit> SplitHouses(const std::vector<HouseRecord>& houses,
                               int64_t n_valid, int64_t n_test, Rng* rng);

/// Fractional split (70/10/20-style, §V-H possession pipeline). Fractions
/// must sum to at most 1; the remainder goes to training.
Result<HouseSplit> SplitHousesFraction(const std::vector<HouseRecord>& houses,
                                       double valid_fraction,
                                       double test_fraction, Rng* rng);

}  // namespace camal::data

#endif  // CAMAL_DATA_SPLIT_H_
