#ifndef CAMAL_DATA_TIME_SERIES_H_
#define CAMAL_DATA_TIME_SERIES_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace camal::data {

/// Sentinel for a missing smart-meter reading.
inline constexpr float kMissingValue = std::numeric_limits<float>::quiet_NaN();

/// True when \p v is a missing reading.
inline bool IsMissing(float v) { return std::isnan(v); }

/// A regularly sampled univariate power series (the smart-meter signal of
/// Section II): values[i] is the average power (Watts) over interval i.
/// Missing readings are kMissingValue.
struct TimeSeries {
  double interval_seconds = 60.0;
  std::vector<float> values;

  int64_t size() const { return static_cast<int64_t>(values.size()); }

  /// Number of missing readings.
  int64_t MissingCount() const;
};

/// Per-appliance submeter trace plus its name ("dishwasher", "kettle", ...).
struct ApplianceTrace {
  std::string name;
  std::vector<float> power;  ///< Watts, aligned with the house aggregate.
};

/// One household's recording: the aggregate smart-meter series, optional
/// submetered appliance traces (strong ground truth), and possession flags
/// (the weak "does this house own appliance X" survey answer of §V-H).
struct HouseRecord {
  int house_id = 0;
  double interval_seconds = 60.0;
  std::vector<float> aggregate;             ///< Watts; may contain missing.
  std::vector<ApplianceTrace> appliances;   ///< empty when not submetered
  std::vector<std::string> owned_appliances;

  /// Returns the submeter trace for \p name, or nullptr when the house is
  /// not instrumented for that appliance.
  const ApplianceTrace* FindAppliance(const std::string& name) const;

  /// True when the possession questionnaire marks \p name as owned.
  bool Owns(const std::string& name) const;
};

}  // namespace camal::data

#endif  // CAMAL_DATA_TIME_SERIES_H_
