#ifndef CAMAL_DATA_RESAMPLE_H_
#define CAMAL_DATA_RESAMPLE_H_

#include "common/status.h"
#include "data/time_series.h"

namespace camal::data {

/// Resamples \p series to \p target_interval_seconds by averaging the power
/// consumed during each target interval (the "readjust recorded values to
/// round timestamps" step of §V-B). The target interval must be an integer
/// multiple of the source interval. Missing source readings are skipped in
/// the average; a target bucket with no valid source readings is missing.
Result<TimeSeries> ResampleAverage(const TimeSeries& series,
                                   double target_interval_seconds);

/// Forward-fills missing readings, copying the last valid value across gaps
/// of at most \p max_gap_seconds (the per-dataset "Max. ffill" of Table I).
/// Longer gaps stay missing (their windows are later discarded). Leading
/// missing values are never filled.
TimeSeries ForwardFill(const TimeSeries& series, double max_gap_seconds);

}  // namespace camal::data

#endif  // CAMAL_DATA_RESAMPLE_H_
