#ifndef CAMAL_DATA_MMAP_FILE_H_
#define CAMAL_DATA_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

namespace camal::data {

/// Read-only memory-mapped file (RAII): the OS pages bytes in on demand
/// and reclaims them under pressure, so opening a multi-gigabyte household
/// store costs a page-table setup, not a read. The mapping lives until the
/// object is destroyed or moved-from; views into data() must not outlive
/// it. POSIX-only (mmap), like the rest of the serving runtime's
/// platform-specific code.
class MmapFile {
 public:
  /// Maps \p path read-only. An empty file maps to data() == nullptr with
  /// size() == 0 (mmap rejects zero-length mappings). Fails with kIoError
  /// when the file cannot be opened, stat'ed, or mapped.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile() { Unmap(); }

  MmapFile(MmapFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Unmap();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// First mapped byte; page-aligned (null for an empty file).
  const uint8_t* data() const { return data_; }
  /// Mapped length in bytes.
  size_t size() const { return size_; }

 private:
  void Unmap();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace camal::data

#endif  // CAMAL_DATA_MMAP_FILE_H_
