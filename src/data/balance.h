#ifndef CAMAL_DATA_BALANCE_H_
#define CAMAL_DATA_BALANCE_H_

#include "common/rng.h"
#include "data/dataset.h"

namespace camal::data {

/// Random undersampling to equalize the weak-label class distribution
/// (the balancing step of §V-H's possession-only pipeline). Returns a new
/// dataset with min(#pos, #neg) windows of each class, shuffled.
/// When one class is empty the dataset is returned unchanged — this mirrors
/// the paper's "no negative sample for training" failure mode in Fig. 6(a),
/// which callers detect via IsBalanceable().
WindowDataset BalanceByWeakLabel(const WindowDataset& dataset, Rng* rng);

/// True when both weak classes are represented.
bool IsBalanceable(const WindowDataset& dataset);

/// Random shuffle of all windows.
WindowDataset ShuffleDataset(const WindowDataset& dataset, Rng* rng);

}  // namespace camal::data

#endif  // CAMAL_DATA_BALANCE_H_
