#include "data/time_series.h"

namespace camal::data {

int64_t TimeSeries::MissingCount() const {
  int64_t n = 0;
  for (float v : values) {
    if (IsMissing(v)) ++n;
  }
  return n;
}

const ApplianceTrace* HouseRecord::FindAppliance(
    const std::string& name) const {
  for (const auto& a : appliances) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

bool HouseRecord::Owns(const std::string& name) const {
  for (const auto& n : owned_appliances) {
    if (n == name) return true;
  }
  return false;
}

}  // namespace camal::data
