#include "data/balance.h"

#include <algorithm>

namespace camal::data {

bool IsBalanceable(const WindowDataset& dataset) {
  const int64_t pos = dataset.PositiveCount();
  return pos > 0 && pos < dataset.size();
}

WindowDataset BalanceByWeakLabel(const WindowDataset& dataset, Rng* rng) {
  std::vector<int64_t> pos, neg;
  for (int64_t i = 0; i < dataset.size(); ++i) {
    if (dataset.weak_labels[static_cast<size_t>(i)] == 1) {
      pos.push_back(i);
    } else {
      neg.push_back(i);
    }
  }
  if (pos.empty() || neg.empty()) return dataset;
  rng->Shuffle(&pos);
  rng->Shuffle(&neg);
  const size_t keep = std::min(pos.size(), neg.size());
  std::vector<int64_t> indices;
  indices.reserve(2 * keep);
  indices.insert(indices.end(), pos.begin(), pos.begin() + keep);
  indices.insert(indices.end(), neg.begin(), neg.begin() + keep);
  rng->Shuffle(&indices);
  return dataset.Subset(indices);
}

WindowDataset ShuffleDataset(const WindowDataset& dataset, Rng* rng) {
  std::vector<int64_t> indices(static_cast<size_t>(dataset.size()));
  for (int64_t i = 0; i < dataset.size(); ++i) {
    indices[static_cast<size_t>(i)] = i;
  }
  rng->Shuffle(&indices);
  return dataset.Subset(indices);
}

}  // namespace camal::data
