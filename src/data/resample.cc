#include "data/resample.h"

#include <cmath>

namespace camal::data {

Result<TimeSeries> ResampleAverage(const TimeSeries& series,
                                   double target_interval_seconds) {
  if (target_interval_seconds <= 0.0) {
    return Status::InvalidArgument("target interval must be positive");
  }
  const double ratio = target_interval_seconds / series.interval_seconds;
  const auto factor = static_cast<int64_t>(std::llround(ratio));
  if (factor < 1 || std::fabs(ratio - static_cast<double>(factor)) > 1e-9) {
    return Status::InvalidArgument(
        "target interval must be an integer multiple of the source interval");
  }
  TimeSeries out;
  out.interval_seconds = target_interval_seconds;
  const int64_t n_out = series.size() / factor;
  out.values.reserve(static_cast<size_t>(n_out));
  for (int64_t i = 0; i < n_out; ++i) {
    double sum = 0.0;
    int64_t valid = 0;
    for (int64_t j = 0; j < factor; ++j) {
      const float v = series.values[static_cast<size_t>(i * factor + j)];
      if (!IsMissing(v)) {
        sum += v;
        ++valid;
      }
    }
    out.values.push_back(valid > 0
                             ? static_cast<float>(sum / valid)
                             : kMissingValue);
  }
  return out;
}

TimeSeries ForwardFill(const TimeSeries& series, double max_gap_seconds) {
  TimeSeries out = series;
  const auto max_gap = static_cast<int64_t>(
      max_gap_seconds / series.interval_seconds);
  int64_t gap = 0;
  float last_valid = kMissingValue;
  for (size_t i = 0; i < out.values.size(); ++i) {
    if (!IsMissing(out.values[i])) {
      last_valid = out.values[i];
      gap = 0;
      continue;
    }
    ++gap;
    if (!IsMissing(last_valid) && gap <= max_gap) {
      out.values[i] = last_valid;
    }
  }
  return out;
}

}  // namespace camal::data
