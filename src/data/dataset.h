#ifndef CAMAL_DATA_DATASET_H_
#define CAMAL_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/time_series.h"
#include "nn/tensor.h"

namespace camal::data {

/// Per-appliance preprocessing parameters (Table I of the paper).
struct ApplianceSpec {
  std::string name;
  float on_threshold_w = 0.0f;  ///< "ON Power": status threshold in Watts.
  float avg_power_w = 0.0f;     ///< "Avg. Power" P_a for energy estimation.
};

/// Windowed training/evaluation set for one appliance.
///
/// Built from HouseRecords per §V-B: the aggregate is sliced into
/// non-overlapping windows, scaled by 1/1000 for training stability, and the
/// per-timestamp status is derived by thresholding the submeter trace at the
/// appliance's ON power. The weak label of a window is 1 iff any timestamp
/// in it is ON; the possession label replicates the household ownership bit.
struct WindowDataset {
  int64_t window_length = 0;
  ApplianceSpec appliance;
  nn::Tensor inputs;             ///< (N, 1, L) aggregate / 1000.
  nn::Tensor status;             ///< (N, L) per-timestamp 0/1 ground truth.
  nn::Tensor appliance_power;    ///< (N, L) submeter Watts (0 when unknown).
  std::vector<int> weak_labels;  ///< (N) per-window activation labels.
  std::vector<int> house_ids;    ///< (N) originating household.

  int64_t size() const { return static_cast<int64_t>(weak_labels.size()); }

  /// Number of windows with weak label 1.
  int64_t PositiveCount() const;

  /// Total number of *labels* this dataset represents under a supervision
  /// regime: strong = window_length per window, weak = 1 per window (the
  /// x-axis of Figs. 1 and 5).
  int64_t LabelCount(bool strong) const;

  /// Extracts the subset at \p indices (order preserved).
  WindowDataset Subset(const std::vector<int64_t>& indices) const;
};

/// Options for BuildWindowDataset.
struct BuildOptions {
  int64_t window_length = 128;
  /// When true, windows whose aggregate contains missing values are
  /// discarded (the paper's rule); when false they are zero-filled.
  bool drop_incomplete = true;
  /// Divide aggregate Watts by this for model input (paper uses 1000).
  float input_scale = 1000.0f;
  /// When true, houses without a submeter trace for the appliance get an
  /// all-OFF status derived from possession only (possession-only pipeline,
  /// §V-H): windows from owners get weak label 1, non-owners 0.
  bool possession_labels = false;
};

/// Builds a WindowDataset for \p appliance from \p houses.
/// Fails when no usable window exists.
Result<WindowDataset> BuildWindowDataset(
    const std::vector<HouseRecord>& houses, const ApplianceSpec& appliance,
    const BuildOptions& options);

/// Concatenates datasets with identical window length and appliance.
Result<WindowDataset> ConcatDatasets(const std::vector<WindowDataset>& parts);

}  // namespace camal::data

#endif  // CAMAL_DATA_DATASET_H_
