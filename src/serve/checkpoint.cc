#include "serve/checkpoint.h"

#include <cstring>
#include <limits>

#include "common/atomic_file.h"
#include "common/crc32.h"
#include "data/mmap_file.h"

namespace camal::serve {
namespace {

/// Fixed 48-byte file header. Serialized field by field (memcpy through a
/// byte buffer) like the column store, so the on-disk layout is the spec
/// in checkpoint.h, not whatever a compiler pads a struct to.
struct Header {
  uint32_t magic = SessionCheckpointFormat::kMagic;      // offset 0
  uint32_t version = SessionCheckpointFormat::kVersion;  // offset 4
  uint32_t session_count = 0;                            // offset 8
  uint32_t payload_crc = 0;                              // offset 12
  int64_t payload_bytes = 0;                             // offset 16
  // offsets 24..48 reserved, written as zeros.
};

void EncodeHeader(const Header& header,
                  uint8_t out[SessionCheckpointFormat::kHeaderBytes]) {
  std::memset(out, 0, SessionCheckpointFormat::kHeaderBytes);
  std::memcpy(out + 0, &header.magic, 4);
  std::memcpy(out + 4, &header.version, 4);
  std::memcpy(out + 8, &header.session_count, 4);
  std::memcpy(out + 12, &header.payload_crc, 4);
  std::memcpy(out + 16, &header.payload_bytes, 8);
}

Header DecodeHeader(const uint8_t* in) {
  Header header;
  std::memcpy(&header.magic, in + 0, 4);
  std::memcpy(&header.version, in + 4, 4);
  std::memcpy(&header.session_count, in + 8, 4);
  std::memcpy(&header.payload_crc, in + 12, 4);
  std::memcpy(&header.payload_bytes, in + 16, 8);
  return header;
}

void AppendBytes(std::vector<uint8_t>* out, const void* bytes, size_t n) {
  if (n == 0) return;  // an empty vector's data() may be null
  const uint8_t* p = static_cast<const uint8_t*>(bytes);
  out->insert(out->end(), p, p + n);
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  AppendBytes(out, &v, 4);
}

void AppendI64(std::vector<uint8_t>* out, int64_t v) {
  AppendBytes(out, &v, 8);
}

/// Bounds-checked payload reader: every Take validates against the
/// payload end before touching bytes, so a corrupt count can never walk
/// the cursor out of the mapping.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, int64_t size, std::string path)
      : data_(data), size_(size), path_(std::move(path)) {}

  Status TakeU32(uint32_t* out) { return Take(out, 4); }
  Status TakeI64(int64_t* out) { return Take(out, 8); }

  Status TakeString(uint32_t len, std::string* out) {
    if (len > SessionCheckpointFormat::kMaxNameBytes) {
      return Corrupt("oversized name");
    }
    if (size_ - cursor_ < static_cast<int64_t>(len)) {
      return Corrupt("truncated name");
    }
    out->assign(reinterpret_cast<const char*>(data_ + cursor_), len);
    cursor_ += len;
    return Status::OK();
  }

  template <typename T>
  Status TakeVector(int64_t count, std::vector<T>* out) {
    constexpr int64_t kElem = static_cast<int64_t>(sizeof(T));
    if (count < 0 || count > (size_ - cursor_) / kElem) {
      return Corrupt("vector length out of bounds");
    }
    out->resize(static_cast<size_t>(count));
    if (count == 0) return Status::OK();  // data() may be null
    std::memcpy(out->data(), data_ + cursor_,
                static_cast<size_t>(count) * sizeof(T));
    cursor_ += count * kElem;
    return Status::OK();
  }

  bool exhausted() const { return cursor_ == size_; }

  Status Corrupt(const std::string& what) const {
    return Status::InvalidArgument(path_ + ": corrupt session record (" +
                                   what + ")");
  }

 private:
  Status Take(void* out, int64_t n) {
    if (size_ - cursor_ < n) return Corrupt("truncated field");
    std::memcpy(out, data_ + cursor_, static_cast<size_t>(n));
    cursor_ += n;
    return Status::OK();
  }

  const uint8_t* data_;
  const int64_t size_;
  int64_t cursor_ = 0;
  const std::string path_;
};

}  // namespace

Status WriteSessionCheckpoint(const std::string& path,
                              const std::vector<SessionSnapshot>& sessions,
                              FaultInjector* faults) {
  if (sessions.size() >
      static_cast<size_t>(std::numeric_limits<uint32_t>::max())) {
    return Status::InvalidArgument("too many sessions to checkpoint");
  }
  std::vector<uint8_t> payload;
  for (const SessionSnapshot& snapshot : sessions) {
    if (snapshot.id.empty() ||
        snapshot.id.size() > SessionCheckpointFormat::kMaxNameBytes) {
      return Status::InvalidArgument("session id empty or too long: '" +
                                     snapshot.id + "'");
    }
    if (snapshot.appliance.empty() ||
        snapshot.appliance.size() > SessionCheckpointFormat::kMaxNameBytes) {
      return Status::InvalidArgument("appliance name empty or too long");
    }
    const SessionScanState& state = snapshot.state;
    AppendU32(&payload, static_cast<uint32_t>(snapshot.id.size()));
    AppendBytes(&payload, snapshot.id.data(), snapshot.id.size());
    AppendU32(&payload, static_cast<uint32_t>(snapshot.appliance.size()));
    AppendBytes(&payload, snapshot.appliance.data(),
                snapshot.appliance.size());
    AppendI64(&payload, snapshot.max_pending_appends);
    AppendI64(&payload, state.grid_windows);
    // Raw little-endian bytes of each accumulator: bit-exact round trip,
    // NaN payloads included — anything lossier would break the
    // bitwise-identity guarantee across a restart.
    AppendI64(&payload, static_cast<int64_t>(state.series.size()));
    AppendBytes(&payload, state.series.data(), state.series.size() * 4);
    AppendI64(&payload, static_cast<int64_t>(state.prob_sum.size()));
    AppendBytes(&payload, state.prob_sum.data(), state.prob_sum.size() * 4);
    AppendI64(&payload, static_cast<int64_t>(state.cover.size()));
    AppendBytes(&payload, state.cover.data(), state.cover.size() * 4);
    AppendI64(&payload, static_cast<int64_t>(state.on_votes.size()));
    AppendBytes(&payload, state.on_votes.data(), state.on_votes.size() * 4);
  }

  Header header;
  header.session_count = static_cast<uint32_t>(sessions.size());
  header.payload_bytes = static_cast<int64_t>(payload.size());
  header.payload_crc = Crc32(payload.data(), payload.size());

  AtomicFileWriter writer(path, faults);
  uint8_t encoded[SessionCheckpointFormat::kHeaderBytes];
  EncodeHeader(header, encoded);
  CAMAL_RETURN_NOT_OK(writer.Write(encoded, sizeof(encoded)));
  CAMAL_RETURN_NOT_OK(writer.Write(payload.data(), payload.size()));
  return writer.Commit();
}

Result<std::vector<SessionSnapshot>> ReadSessionCheckpoint(
    const std::string& path) {
  CAMAL_ASSIGN_OR_RETURN(data::MmapFile file, data::MmapFile::Open(path));
  const int64_t file_size = static_cast<int64_t>(file.size());
  if (file_size <
      static_cast<int64_t>(SessionCheckpointFormat::kHeaderBytes)) {
    return Status::InvalidArgument(
        path + ": truncated checkpoint header (" +
        std::to_string(file_size) + " bytes" +
        (file_size == 0 ? ", empty file" : "") + ")");
  }
  const Header header = DecodeHeader(file.data());
  if (header.magic != SessionCheckpointFormat::kMagic) {
    return Status::InvalidArgument(
        path + ": bad magic (not a session checkpoint)");
  }
  if (header.version != SessionCheckpointFormat::kVersion) {
    return Status::InvalidArgument(
        path + ": unsupported checkpoint version " +
        std::to_string(header.version) + " (reader supports " +
        std::to_string(SessionCheckpointFormat::kVersion) + ")");
  }
  const int64_t header_bytes =
      static_cast<int64_t>(SessionCheckpointFormat::kHeaderBytes);
  if (header.payload_bytes < 0 ||
      header.payload_bytes != file_size - header_bytes) {
    return Status::InvalidArgument(
        path + ": torn checkpoint payload (declared " +
        std::to_string(header.payload_bytes) + " bytes, file holds " +
        std::to_string(file_size - header_bytes) + ")");
  }
  // CRC over the whole payload BEFORE parsing any record: a bit flip
  // must be rejected outright, not parsed into plausible-looking state.
  const uint32_t crc =
      Crc32(file.data() + header_bytes,
            static_cast<size_t>(header.payload_bytes));
  if (crc != header.payload_crc) {
    return Status::InvalidArgument(path +
                                   ": checkpoint payload CRC mismatch");
  }

  PayloadReader reader(file.data() + header_bytes, header.payload_bytes,
                       path);
  std::vector<SessionSnapshot> sessions;
  sessions.reserve(header.session_count);
  for (uint32_t i = 0; i < header.session_count; ++i) {
    SessionSnapshot snapshot;
    uint32_t id_len = 0;
    CAMAL_RETURN_NOT_OK(reader.TakeU32(&id_len));
    CAMAL_RETURN_NOT_OK(reader.TakeString(id_len, &snapshot.id));
    uint32_t appliance_len = 0;
    CAMAL_RETURN_NOT_OK(reader.TakeU32(&appliance_len));
    CAMAL_RETURN_NOT_OK(
        reader.TakeString(appliance_len, &snapshot.appliance));
    CAMAL_RETURN_NOT_OK(reader.TakeI64(&snapshot.max_pending_appends));
    CAMAL_RETURN_NOT_OK(reader.TakeI64(&snapshot.state.grid_windows));
    int64_t count = 0;
    CAMAL_RETURN_NOT_OK(reader.TakeI64(&count));
    CAMAL_RETURN_NOT_OK(reader.TakeVector(count, &snapshot.state.series));
    CAMAL_RETURN_NOT_OK(reader.TakeI64(&count));
    CAMAL_RETURN_NOT_OK(reader.TakeVector(count, &snapshot.state.prob_sum));
    CAMAL_RETURN_NOT_OK(reader.TakeI64(&count));
    CAMAL_RETURN_NOT_OK(reader.TakeVector(count, &snapshot.state.cover));
    CAMAL_RETURN_NOT_OK(reader.TakeI64(&count));
    CAMAL_RETURN_NOT_OK(reader.TakeVector(count, &snapshot.state.on_votes));
    if (snapshot.id.empty() || snapshot.appliance.empty()) {
      return reader.Corrupt("empty session id or appliance");
    }
    if (snapshot.max_pending_appends < 0 ||
        snapshot.state.grid_windows < 0) {
      return reader.Corrupt("negative count");
    }
    sessions.push_back(std::move(snapshot));
  }
  if (!reader.exhausted()) {
    return reader.Corrupt("trailing bytes after the last record");
  }
  return sessions;
}

}  // namespace camal::serve
