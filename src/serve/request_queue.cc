#include "serve/request_queue.h"

namespace camal::serve {

RequestQueue::RequestQueue(int64_t capacity) : capacity_(capacity) {}

Status RequestQueue::Push(QueuedScan* task) {
  CAMAL_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return Status::FailedPrecondition("request queue is shut down");
    }
    if (capacity_ > 0 &&
        static_cast<int64_t>(tasks_.size()) >= capacity_) {
      return Status::FailedPrecondition(
          "request queue is full (backpressure, capacity " +
          std::to_string(capacity_) + ")");
    }
    tasks_.push_back(std::move(*task));
  }
  cv_.notify_one();
  return Status::OK();
}

bool RequestQueue::Pop(QueuedScan* out) {
  CAMAL_CHECK(out != nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !tasks_.empty(); });
  if (tasks_.empty()) return false;  // closed and drained
  *out = std::move(tasks_.front());
  tasks_.pop_front();
  return true;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

int64_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(tasks_.size());
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace camal::serve
