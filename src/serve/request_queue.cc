#include "serve/request_queue.h"

#include <algorithm>

namespace camal::serve {

const char* RequestPriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kHigh:
      return "high";
    case RequestPriority::kNormal:
      return "normal";
    case RequestPriority::kLow:
      return "low";
  }
  return "unknown";
}

RequestQueue::RequestQueue(int64_t capacity) : capacity_(capacity) {}

size_t RequestQueue::HeadIndexLocked() const {
  // Linear scan for the earliest task of the most urgent class. The queue
  // is FIFO within a class, so the first task seen of a class is that
  // class's head; an all-kNormal backlog (the default traffic) exits at
  // index 0 after one comparison short-circuits the scan.
  size_t head = 0;
  RequestPriority best = tasks_.front().request.priority;
  for (size_t i = 1; i < tasks_.size() && best != RequestPriority::kHigh;
       ++i) {
    if (tasks_[i].request.priority < best) {
      best = tasks_[i].request.priority;
      head = i;
    }
  }
  return head;
}

int64_t RequestQueue::AdaptiveDrainBudget(int64_t extra_budget,
                                          int64_t backlog,
                                          int64_t idle_consumers) {
  // Reserve one task per idle consumer: draining it into this group would
  // trade a whole concurrent worker for one more row of batch occupancy.
  // With nobody waiting this is the plain fixed budget (bounded by the
  // backlog, which the drain loop enforces anyway).
  return std::max<int64_t>(
      0, std::min(extra_budget, backlog - std::max<int64_t>(0,
                                                            idle_consumers)));
}

Status RequestQueue::Push(QueuedScan* task, bool* rejected_full,
                          bool force) {
  CAMAL_CHECK(task != nullptr);
  if (rejected_full != nullptr) *rejected_full = false;
  {
    MutexLock lock(&mu_);
    if (closed_) {
      return Status::FailedPrecondition("request queue is shut down");
    }
    if (!force && capacity_ > 0 &&
        static_cast<int64_t>(tasks_.size()) >= capacity_) {
      if (rejected_full != nullptr) *rejected_full = true;
      return Status::FailedPrecondition(
          "request queue is full (backpressure, capacity " +
          std::to_string(capacity_) + ")");
    }
    tasks_.push_back(std::move(*task));
  }
  cv_.NotifyOne();
  return Status::OK();
}

bool RequestQueue::Pop(QueuedScan* out) {
  CAMAL_CHECK(out != nullptr);
  MutexLock lock(&mu_);
  ++waiting_;
  while (!closed_ && tasks_.empty()) cv_.Wait(&mu_);
  --waiting_;
  if (tasks_.empty()) return false;  // closed and drained
  const size_t head = HeadIndexLocked();
  *out = std::move(tasks_[head]);
  tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(head));
  return true;
}

bool RequestQueue::PopGroup(QueuedScan* first, std::vector<QueuedScan>* extras,
                            int64_t extra_budget) {
  CAMAL_CHECK(first != nullptr);
  CAMAL_CHECK(extras != nullptr);
  extras->clear();
  MutexLock lock(&mu_);
  ++waiting_;
  while (!closed_ && tasks_.empty()) cv_.Wait(&mu_);
  --waiting_;
  if (tasks_.empty()) return false;  // closed and drained
  const size_t head = HeadIndexLocked();
  *first = std::move(tasks_[head]);
  tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(head));
  // Adaptive budget, decided under the same lock that tracks waiting
  // consumers: waiting_ counts the siblings blocked in cv_.wait right
  // now, and the backlog is what remains after the head left. Leaving
  // them work beats batching it — an idle worker is idle parallelism.
  const int64_t budget = AdaptiveDrainBudget(
      extra_budget, static_cast<int64_t>(tasks_.size()), waiting_);
  if (budget <= 0 || tasks_.empty()) return true;

  // Peel off up to `budget` tasks matching the head's appliance AND
  // priority, compacting the rest in place so everything else keeps its
  // admission order. FIFO within a class means no match can precede the
  // head's old position, but the head may have been taken from the
  // middle (priority overtaking), so the scan starts at index 0 — tasks
  // before the first match never move; a backlog holding nothing to
  // coalesce costs only the comparisons.
  const std::string& appliance = first->request.appliance;
  const RequestPriority priority = first->request.priority;
  const auto matches = [&](const QueuedScan& task) {
    return task.request.priority == priority &&
           task.request.appliance == appliance;
  };
  const size_t n = tasks_.size();
  size_t read = 0;
  while (read < n && !matches(tasks_[read])) ++read;
  if (read == n) return true;  // nothing to coalesce with
  int64_t remaining = budget;
  size_t write = read;
  for (; read < n; ++read) {
    QueuedScan& task = tasks_[read];
    if (remaining > 0 && matches(task)) {
      extras->push_back(std::move(task));
      --remaining;
    } else {
      tasks_[write++] = std::move(task);
    }
  }
  tasks_.resize(write);
  return true;
}

void RequestQueue::Close() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

int64_t RequestQueue::size() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(tasks_.size());
}

bool RequestQueue::closed() const {
  MutexLock lock(&mu_);
  return closed_;
}

int64_t RequestQueue::waiting_consumers() const {
  MutexLock lock(&mu_);
  return waiting_;
}

}  // namespace camal::serve
