#include "serve/request_queue.h"

namespace camal::serve {

RequestQueue::RequestQueue(int64_t capacity) : capacity_(capacity) {}

Status RequestQueue::Push(QueuedScan* task, bool* rejected_full,
                          bool force) {
  CAMAL_CHECK(task != nullptr);
  if (rejected_full != nullptr) *rejected_full = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return Status::FailedPrecondition("request queue is shut down");
    }
    if (!force && capacity_ > 0 &&
        static_cast<int64_t>(tasks_.size()) >= capacity_) {
      if (rejected_full != nullptr) *rejected_full = true;
      return Status::FailedPrecondition(
          "request queue is full (backpressure, capacity " +
          std::to_string(capacity_) + ")");
    }
    tasks_.push_back(std::move(*task));
  }
  cv_.notify_one();
  return Status::OK();
}

bool RequestQueue::Pop(QueuedScan* out) {
  CAMAL_CHECK(out != nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !tasks_.empty(); });
  if (tasks_.empty()) return false;  // closed and drained
  *out = std::move(tasks_.front());
  tasks_.pop_front();
  return true;
}

bool RequestQueue::PopGroup(QueuedScan* first, std::vector<QueuedScan>* extras,
                            int64_t extra_budget) {
  CAMAL_CHECK(first != nullptr);
  CAMAL_CHECK(extras != nullptr);
  extras->clear();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !tasks_.empty(); });
  if (tasks_.empty()) return false;  // closed and drained
  *first = std::move(tasks_.front());
  tasks_.pop_front();
  if (extra_budget <= 0 || tasks_.empty()) return true;

  // Peel off up to extra_budget tasks for the head task's appliance,
  // compacting the rest in place so every other appliance keeps its
  // admission order. Tasks before the first match never move: a backlog
  // holding nothing for this appliance costs only the comparisons, and a
  // match costs O(tasks behind it) moves under the lock — the elements
  // are a few pointers and strings each.
  const std::string& appliance = first->request.appliance;
  const size_t n = tasks_.size();
  size_t read = 0;
  while (read < n && tasks_[read].request.appliance != appliance) ++read;
  if (read == n) return true;  // nothing to coalesce with
  int64_t budget = extra_budget;
  size_t write = read;
  for (; read < n; ++read) {
    QueuedScan& task = tasks_[read];
    if (budget > 0 && task.request.appliance == appliance) {
      extras->push_back(std::move(task));
      --budget;
    } else {
      tasks_[write++] = std::move(task);
    }
  }
  tasks_.resize(write);
  return true;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

int64_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(tasks_.size());
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace camal::serve
