#ifndef CAMAL_SERVE_CHECKPOINT_H_
#define CAMAL_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/batch_runner.h"

namespace camal {
class FaultInjector;
}  // namespace camal

namespace camal::serve {

/// Binary session-checkpoint format — the crash-safety counterpart of the
/// column store. One file snapshots every quiescent live session of a
/// Service, written atomically (temp + fsync + rename, AtomicFileWriter),
/// so a reader only ever sees a complete old snapshot or a complete new
/// one.
///
/// Layout (integers little-endian native, floats IEEE-754 binary32 with
/// payload bits preserved — restored stitch state must be bit-exact for
/// the bitwise-identity guarantee to survive a restart):
///
///   header   48 bytes: magic "CKPT", version, session count,
///            payload_bytes, CRC-32 of the payload
///   payload  per session, packed:
///              uint32 id length + bytes
///              uint32 appliance length + bytes
///              int64  max_pending_appends (SessionOptions)
///              int64  grid_windows
///              int64  series count   + floats (committed readings)
///              int64  prob_sum count + floats
///              int64  cover count    + int32s
///              int64  on_votes count + int32s
///
/// Open-time validation is column_store style — size, magic, version,
/// declared payload length, then CRC over the whole payload before any
/// field is trusted — so a truncated header, torn payload, bit flip, or
/// version skew comes back as a Status, never a crash or a silently
/// wrong restore.
struct SessionCheckpointFormat {
  static constexpr uint32_t kMagic = 0x54504B43;  // "CKPT" little-endian
  static constexpr uint32_t kVersion = 1;
  static constexpr size_t kHeaderBytes = 48;
  /// Sanity bound on id/appliance names; real ids are tiny.
  static constexpr uint32_t kMaxNameBytes = 4096;
};

/// One live session's persisted state: identity plus the stitch
/// accumulators an incremental rescan resumes from (SessionScanState).
struct SessionSnapshot {
  std::string id;
  std::string appliance;
  int64_t max_pending_appends = 0;
  SessionScanState state;
};

/// Atomically replaces \p path with a checkpoint of \p sessions. An empty
/// snapshot (zero live sessions) is a valid file — restoring it is a
/// no-op, not an error. \p faults threads the fault-injection seams
/// through the IO (see AtomicFileWriter).
Status WriteSessionCheckpoint(const std::string& path,
                              const std::vector<SessionSnapshot>& sessions,
                              FaultInjector* faults = nullptr);

/// Reads and fully validates a checkpoint. Any malformed input — missing
/// file, truncated header, torn payload, CRC mismatch, version skew,
/// corrupt record — returns a Status; a caller degrades to fresh
/// sessions instead of crashing or trusting bad state.
Result<std::vector<SessionSnapshot>> ReadSessionCheckpoint(
    const std::string& path);

}  // namespace camal::serve

#endif  // CAMAL_SERVE_CHECKPOINT_H_
