#ifndef CAMAL_SERVE_SESSION_H_
#define CAMAL_SERVE_SESSION_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "serve/request_queue.h"

namespace camal::serve {

class Service;

/// Configuration of one streaming household session.
struct SessionOptions {
  /// Caller-chosen session id, echoed as ScanRequest::household_id on
  /// every append. Must be unique among the service's live sessions;
  /// empty picks "session-<n>".
  std::string household_id;
  /// Bound on appends parked behind the session's in-flight one
  /// (same-session appends serialize; see Session). An AppendReadings
  /// that finds this many already parked is rejected with
  /// kFailedPrecondition — the per-session backpressure mirror of the
  /// service queue's capacity bound.
  int64_t max_pending_appends = 64;
};

/// A long-lived streaming household: the incremental counterpart of a
/// one-shot Submit. Created by Service::CreateSession; each
/// AppendReadings delta extends the household's committed series and
/// returns the FULL-series result, bitwise-identical to a from-scratch
/// scan of everything appended so far — the service persists the
/// session's stitch state and rescans only the windows the new tail
/// touches.
///
/// Concurrency: AppendReadings is thread-safe, and appends to ONE session
/// serialize in submission order (at most one is ever queued or running;
/// later ones park on the session until the worker hands them off).
/// Appends to DISTINCT sessions flow through the service's normal
/// coalescing machinery and share GEMM batches.
///
/// Lifecycle: create -> append* -> Close. Close is idempotent; appends
/// after it (or after the service shuts down, which closes every live
/// session) fail with kFailedPrecondition, as do appends parked when it
/// happens — only the already-running append still completes. Sessions
/// idle past ServiceOptions::session_idle_seconds are evicted the same
/// way. A handle is only a handle: it must not outlive the Service that
/// created it, though it may outlive Shutdown.
class Session : public std::enable_shared_from_this<Session> {
 public:
  const std::string& id() const { return id_; }
  const std::string& appliance() const { return appliance_; }
  const SessionOptions& options() const { return options_; }

  /// Readings committed so far — appends still parked or in flight are
  /// not counted until their scan finishes.
  int64_t readings() const;

  /// True once Close / eviction / service shutdown has retired the
  /// session.
  bool closed() const;

  /// Appends \p readings (unscaled Watts, NaN = missing) to the household
  /// and rescans incrementally. Shorthand for
  /// Service::AppendReadings(session, readings); see it for the contract.
  /// [[nodiscard]] like Service::Submit: the future is the outcome.
  [[nodiscard]] std::future<Result<ScanResult>> AppendReadings(
      std::vector<float> readings);

  /// Copying overload for a borrowed delta (e.g. a mapped ColumnStore
  /// chunk): the readings are copied into the request, so the view only
  /// needs to live for this call — an append commits the delta into the
  /// session's own series either way.
  [[nodiscard]] std::future<Result<ScanResult>> AppendReadings(
      data::SeriesView readings);

  /// Copying overload for callers holding a raw buffer. \p readings may
  /// be null only when \p count is 0.
  [[nodiscard]] std::future<Result<ScanResult>> AppendReadings(
      const float* readings, int64_t count);

  /// Shorthand for Service::CloseSession(session).
  Status Close();

 private:
  friend class Service;

  Session(Service* service, std::string id, std::string appliance,
          SessionOptions options);

  Service* const service_;
  const std::string id_;
  const std::string appliance_;
  const SessionOptions options_;

  /// Guards every field below. Lock order: Service::sessions_mu_ before
  /// mu_ before RequestQueue::mu_ — never the reverse.
  mutable Mutex mu_;
  bool closed_ CAMAL_GUARDED_BY(mu_) = false;
  /// An append of this session is queued or running. The flag is the
  /// serializer: while set, new appends park in pending_ and the worker
  /// that finishes the in-flight append hands the head of pending_ to the
  /// queue (Service::FinishAppend).
  bool in_flight_ CAMAL_GUARDED_BY(mu_) = false;
  std::deque<QueuedScan> pending_ CAMAL_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point last_active_ CAMAL_GUARDED_BY(mu_);
  /// readings() snapshot, under mu_.
  int64_t committed_readings_ CAMAL_GUARDED_BY(mu_) = 0;

  /// Persisted stitch state (committed series + grid-window votes). NOT
  /// guarded by mu_: only the worker serving the session's single
  /// in-flight append touches it, and the in_flight_ handoff through the
  /// queue orders those accesses across workers.
  SessionScanState scan_state_;
};

}  // namespace camal::serve

#endif  // CAMAL_SERVE_SESSION_H_
