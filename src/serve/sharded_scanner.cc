#include "serve/sharded_scanner.h"

#include "common/parallel_for.h"

namespace camal::serve {

ShardedScanner::ShardedScanner(core::CamalEnsemble* ensemble,
                               ShardedScannerOptions options)
    : ensemble_(ensemble), options_(options) {
  CAMAL_CHECK(ensemble != nullptr);
  CAMAL_CHECK_GE(options_.max_shards, 0);
}

ShardedScanner::~ShardedScanner() = default;

void ShardedScanner::EnsureShards(int shards) {
  while (static_cast<int>(runners_.size()) < shards) {
    core::CamalEnsemble* shard_ensemble;
    if (runners_.empty()) {
      shard_ensemble = ensemble_;  // shard 0 borrows the original
    } else {
      replicas_.push_back(
          std::make_unique<core::CamalEnsemble>(ensemble_->Clone()));
      shard_ensemble = replicas_.back().get();
    }
    runners_.push_back(
        std::make_unique<BatchRunner>(shard_ensemble, options_.runner));
  }
}

std::vector<ScanResult> ShardedScanner::ScanAll(
    const std::vector<const std::vector<float>*>& households) {
  const int64_t n = static_cast<int64_t>(households.size());
  std::vector<ScanResult> results(static_cast<size_t>(n));
  if (n == 0) return results;
  for (const auto* series : households) CAMAL_CHECK(series != nullptr);

  const ShardPlan plan = PlanOuterShards(n, options_.max_shards);
  EnsureShards(plan.shards);  // replicate before entering the pool

  // Each shard id runs at most one chunk at a time (ParallelForOuter
  // contract), so runners_[shard] is exclusively ours while the body
  // runs. Writing results[i] by input index makes the merge order
  // deterministic regardless of which shard finishes first.
  ParallelForOuter(0, n, options_.max_shards,
                   [&](int shard, int64_t begin, int64_t end) {
                     BatchRunner* runner = runners_[shard].get();
                     for (int64_t i = begin; i < end; ++i) {
                       results[static_cast<size_t>(i)] =
                           runner->Scan(*households[static_cast<size_t>(i)]);
                     }
                   });
  return results;
}

std::vector<ScanResult> ShardedScanner::ScanAll(
    const std::vector<std::vector<float>>& households) {
  std::vector<const std::vector<float>*> pointers;
  pointers.reserve(households.size());
  for (const auto& series : households) pointers.push_back(&series);
  return ScanAll(pointers);
}

}  // namespace camal::serve
