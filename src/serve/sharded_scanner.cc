#include "serve/sharded_scanner.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/parallel_for.h"

namespace camal::serve {
namespace {

/// Name the internal single-appliance service registers its ensemble
/// under; never visible to callers.
constexpr char kApplianceName[] = "appliance";

}  // namespace

ShardedScanner::ShardedScanner(core::CamalEnsemble* ensemble,
                               ShardedScannerOptions options)
    : ensemble_(ensemble), options_(options) {
  CAMAL_CHECK(ensemble != nullptr);
  CAMAL_CHECK_GE(options_.max_shards, 0);
}

ShardedScanner::~ShardedScanner() = default;

Service* ShardedScanner::EnsureService(int64_t cohort_size) {
  // Size the pool like the pre-Service scanner sized its shards: one
  // worker per household up to the max_shards / NumThreads() cap. A later,
  // larger cohort that would plan more workers rebuilds the service (a
  // Service's pool is fixed at Start) — replicas are re-cloned exactly as
  // the old per-call EnsureShards grew them, and results are identical
  // for any worker count, so the swap is invisible to callers.
  const int workers =
      PlanOuterShards(std::max<int64_t>(cohort_size, 1), options_.max_shards)
          .shards;
  // Coalesce only when THIS cohort's households outnumber the pool: each
  // worker then drains a deep queue of sibling households into shared
  // GEMM batches (results are bitwise-identical, only batch occupancy
  // changes). With one worker per household, draining siblings would
  // serialize the very scans the shards parallelize, so the budget pins
  // back to 1 — the service's budget is runtime-adjustable, so re-pinning
  // per cohort needs no pool rebuild.
  const int coalesce = cohort_size > workers
                           ? std::max(1, options_.coalesce_budget)
                           : 1;
  if (service_ == nullptr || service_->workers() < workers) {
    ServiceOptions service_options;
    service_options.workers = workers;
    service_options.queue_capacity = 0;  // whole cohorts, no backpressure
    service_options.coalesce_budget = coalesce;
    auto service = std::make_unique<Service>(service_options);
    CAMAL_CHECK(service
                    ->RegisterAppliance(kApplianceName, ensemble_,
                                        options_.runner)
                    .ok());
    CAMAL_CHECK(service->Start().ok());
    // The old (smaller) service drains and joins in its destructor. Safe
    // because ScanAll is not concurrent on one scanner: no request can be
    // in flight on it here, and nothing else runs forwards on the shared
    // worker-0 ensemble while the new service's Start clones it.
    service_ = std::move(service);
  }
  // Re-pin every call (a reused pool may have served a cohort of a
  // different depth): no request is in flight here, so the next dequeues
  // all see this cohort's budget.
  service_->set_coalesce_budget(coalesce);
  return service_.get();
}

Result<std::vector<ScanResult>> ShardedScanner::ScanAll(
    const std::vector<data::SeriesView>& households) {
  const size_t n = households.size();
  std::vector<ScanResult> results(n);
  if (n == 0) return results;

  Service* service = EnsureService(static_cast<int64_t>(n));
  std::vector<std::future<Result<ScanResult>>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ScanRequest request;
    request.household_id = std::to_string(i);
    request.appliance = kApplianceName;
    // Borrowed on purpose: the cohort's backing storage (vectors or a
    // mapped store) outlives this call, and copying every household into
    // owning requests would double the scan's resident footprint.
    request.series = households[i];
    futures.push_back(service->Submit(std::move(request)));
  }
  for (size_t i = 0; i < n; ++i) {
    Result<ScanResult> result = futures[i].get();
    // Requests are pre-validated and the queue is unbounded, so a failure
    // here is a service-lifecycle bug; propagate instead of aborting.
    CAMAL_RETURN_NOT_OK(result.status());
    results[i] = std::move(result).value();
  }
  return results;
}

Result<std::vector<ScanResult>> ShardedScanner::ScanAll(
    const std::vector<std::vector<float>>& households) {
  std::vector<data::SeriesView> views(households.begin(), households.end());
  return ScanAll(views);
}

}  // namespace camal::serve
