#ifndef CAMAL_SERVE_BATCH_RUNNER_H_
#define CAMAL_SERVE_BATCH_RUNNER_H_

#include <cstdint>
#include <vector>

#include "core/localizer.h"
#include "serve/window_stream.h"

namespace camal::serve {

/// Configuration of a BatchRunner scan.
struct BatchRunnerOptions {
  WindowStreamOptions stream;
  core::LocalizerOptions localizer;
  /// Appliance average power P_a (Watts) for §IV-C power estimation.
  float appliance_avg_power_w = 0.0f;
};

/// Per-timestamp result of scanning one household series.
struct ScanResult {
  nn::Tensor detection;  ///< (T) mean detection prob of covering windows.
  nn::Tensor status;     ///< (T) 0/1 activation by majority vote of windows.
  nn::Tensor power;      ///< (T) estimated appliance Watts (§IV-C).
  int64_t windows = 0;   ///< windows processed.
  double seconds = 0.0;  ///< wall-clock inference time of the scan.
  /// End-to-end request latency when served through serve::Service:
  /// admission-queue wait plus the scan itself. 0 for direct
  /// BatchRunner::Scan calls, which never queue.
  double latency_seconds = 0.0;

  /// Windows per second of the scan (0 when timing was too fast to resolve).
  double WindowsPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(windows) / seconds : 0.0;
  }
};

/// End-to-end batched serving for one appliance: slices a household
/// aggregate into overlapping windows (WindowStream), pushes them through
/// the CamAL localization pipeline batch by batch via the inference-only
/// forward path, and stitches per-window detections and activation masks
/// back into per-timestamp series. Overlapping windows vote: detection is
/// the mean window probability covering a timestamp, status the majority
/// of window masks, and power the §IV-C estimate over the voted status.
class BatchRunner {
 public:
  /// \p ensemble is borrowed and must outlive the runner.
  BatchRunner(core::CamalEnsemble* ensemble, BatchRunnerOptions options);

  /// Scans \p aggregate_watts (unscaled Watts; NaN = missing reading).
  /// Series shorter than one window are left-padded with zeros (the
  /// stream's missing-value fill) to a single window and scanned, so even
  /// short households get real predictions; empty series return all-zero
  /// results. Not thread-safe: a runner owns reusable scan scratch, so
  /// concurrent scans need one runner each (see ShardedScanner).
  ScanResult Scan(const std::vector<float>& aggregate_watts);

  const BatchRunnerOptions& options() const { return options_; }

 private:
  core::CamalEnsemble* ensemble_;
  core::CamalLocalizer localizer_;
  BatchRunnerOptions options_;
  // Scan scratch reused across calls (one scan stitches hundreds of
  // batches; per-batch allocation churn showed up in serving profiles).
  std::vector<float> prob_sum_;
  std::vector<int32_t> cover_;
  std::vector<int32_t> on_votes_;
  std::vector<int64_t> batch_offsets_;
  nn::Tensor batch_;
};

}  // namespace camal::serve

#endif  // CAMAL_SERVE_BATCH_RUNNER_H_
