#ifndef CAMAL_SERVE_BATCH_RUNNER_H_
#define CAMAL_SERVE_BATCH_RUNNER_H_

#include <cstdint>
#include <vector>

#include "core/localizer.h"
#include "serve/window_stream.h"

namespace camal::serve {

/// Configuration of a BatchRunner scan.
struct BatchRunnerOptions {
  WindowStreamOptions stream;
  core::LocalizerOptions localizer;
  /// Appliance average power P_a (Watts) for §IV-C power estimation.
  float appliance_avg_power_w = 0.0f;
};

/// Per-timestamp result of scanning one household series.
struct ScanResult {
  nn::Tensor detection;  ///< (T) mean detection prob of covering windows.
  nn::Tensor status;     ///< (T) 0/1 activation by majority vote of windows.
  nn::Tensor power;      ///< (T) estimated appliance Watts (§IV-C).
  int64_t windows = 0;   ///< windows processed.
  /// Wall-clock inference time of the scan. For a series served inside a
  /// coalesced ScanMany group this is the shared pass's time (the group
  /// was inferred together, so its members are not separable).
  double seconds = 0.0;
  /// End-to-end request latency when served through serve::Service:
  /// admission-queue wait plus the scan itself. 0 for direct
  /// BatchRunner::Scan calls, which never queue.
  double latency_seconds = 0.0;

  /// Windows per second of the scan (0 when timing was too fast to resolve).
  double WindowsPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(windows) / seconds : 0.0;
  }
};

/// End-to-end batched serving for one appliance: slices a household
/// aggregate into overlapping windows (WindowStream), pushes them through
/// the CamAL localization pipeline batch by batch via the inference-only
/// forward path, and stitches per-window detections and activation masks
/// back into per-timestamp series. Overlapping windows vote: detection is
/// the mean window probability covering a timestamp, status the majority
/// of window masks, and power the §IV-C estimate over the voted status
/// (forced to 0 at missing readings, which have no observed aggregate).
///
/// The scan is two phases. Feed: windows stream through the model in
/// shared GEMM batches (MultiWindowStream). Stitch: each window's votes
/// accumulate into its own series' per-timestamp buffers, which finalize
/// independently. Because per-window forward results do not depend on
/// which other windows share a batch, ScanMany can coalesce windows from
/// several series into one forward pass and still return, for every
/// series, bitwise-identical results to a lone Scan of it.
class BatchRunner {
 public:
  /// \p ensemble is borrowed and must outlive the runner.
  BatchRunner(core::CamalEnsemble* ensemble, BatchRunnerOptions options);

  /// Scans \p aggregate_watts (unscaled Watts; NaN = missing reading).
  /// Series shorter than one window are left-padded with zeros (the
  /// stream's missing-value fill) to a single window and scanned, so even
  /// short households get real predictions; empty series return all-zero
  /// results. Not thread-safe: a runner owns reusable scan scratch, so
  /// concurrent scans need one runner each (see ShardedScanner).
  ScanResult Scan(const std::vector<float>& aggregate_watts);

  /// Coalesced scan of several series through shared GEMM batches: one
  /// feed phase carries every series' windows (batches fill across series
  /// boundaries, so small households no longer mean underfilled batches),
  /// then each series stitches and finalizes on its own. results[i] is
  /// bitwise-identical to Scan(*series[i]); entries must not be null but
  /// may repeat or be empty. Not thread-safe, like Scan.
  std::vector<ScanResult> ScanMany(
      const std::vector<const std::vector<float>*>& series);

  const BatchRunnerOptions& options() const { return options_; }

 private:
  /// Per-series stitch state of one scan (phase 2 accumulators).
  struct SeriesState {
    int64_t len = 0;  ///< original series length.
    int64_t pad = 0;  ///< synthetic left-pad of a short series.
    /// Left-padded copy of a short series; unused when len >= window.
    std::vector<float> padded;
    std::vector<float> prob_sum;     ///< per-timestamp probability sum.
    std::vector<int32_t> cover;      ///< windows covering each timestamp.
    std::vector<int32_t> on_votes;   ///< ON votes per timestamp.
  };

  /// Prepares states_[i] for \p series: result tensors, short-series pad,
  /// zeroed vote buffers. Returns the buffer the feed phase should window
  /// (the padded copy for short series), or nullptr when the series is
  /// empty and contributes no windows.
  const std::vector<float>* PrepareSeries(const std::vector<float>& series,
                                          SeriesState* state,
                                          ScanResult* result);

  /// Folds one localized batch into the owning series' vote buffers.
  /// \p feed_to_state maps MultiWindowStream series indices to states_.
  void StitchBatch(const core::LocalizationResult& loc,
                   const std::vector<WindowRef>& refs, int64_t batch,
                   const std::vector<int32_t>& feed_to_state,
                   std::vector<ScanResult>* results);

  /// Turns accumulated votes into the per-timestamp detection/status/power
  /// series of \p result, dropping any synthetic pad.
  void FinalizeSeries(const std::vector<float>& aggregate_watts,
                      const SeriesState& state, ScanResult* result);

  core::CamalEnsemble* ensemble_;
  core::CamalLocalizer localizer_;
  BatchRunnerOptions options_;
  // Scan scratch reused across calls (one scan stitches hundreds of
  // batches; per-batch allocation churn showed up in serving profiles).
  std::vector<SeriesState> states_;
  std::vector<WindowRef> batch_refs_;
  nn::Tensor batch_;
};

}  // namespace camal::serve

#endif  // CAMAL_SERVE_BATCH_RUNNER_H_
