#ifndef CAMAL_SERVE_BATCH_RUNNER_H_
#define CAMAL_SERVE_BATCH_RUNNER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/localizer.h"
#include "data/series_view.h"
#include "serve/window_stream.h"

namespace camal::serve {

/// Configuration of a BatchRunner scan.
struct BatchRunnerOptions {
  WindowStreamOptions stream;
  core::LocalizerOptions localizer;
  /// Appliance average power P_a (Watts) for §IV-C power estimation.
  float appliance_avg_power_w = 0.0f;
};

/// Per-timestamp result of scanning one household series.
struct ScanResult {
  nn::Tensor detection;  ///< (T) mean detection prob of covering windows.
  nn::Tensor status;     ///< (T) 0/1 activation by majority vote of windows.
  nn::Tensor power;      ///< (T) estimated appliance Watts (§IV-C).
  int64_t windows = 0;   ///< windows processed.
  /// Windows a from-scratch scan of the full series would process. Equal
  /// to `windows` for one-shot scans; for incremental session appends the
  /// gap windows_full - windows is the feed work the persisted stitch
  /// state saved.
  int64_t windows_full = 0;
  /// Wall-clock inference time of the scan. For a series served inside a
  /// coalesced ScanMany group this is the shared pass's time (the group
  /// was inferred together, so its members are not separable).
  double seconds = 0.0;
  /// End-to-end request latency when served through serve::Service:
  /// admission-queue wait plus the scan itself. 0 for direct
  /// BatchRunner::Scan calls, which never queue.
  double latency_seconds = 0.0;

  /// Windows per second of the scan (0 when timing was too fast to resolve).
  double WindowsPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(windows) / seconds : 0.0;
  }
};

/// Persisted stitch state of one streaming household: everything an
/// incremental rescan needs to extend the household's result without
/// re-feeding committed windows. Owned by serve::Session (or any caller
/// driving AppendScan directly); BatchRunner only reads and extends it,
/// so state created by one runner can be appended to by another — the
/// per-window forward results it caches votes from are replica- and
/// batch-composition-invariant.
///
/// The accumulators hold STRIDE-GRID window votes only. Grid windows
/// never move once committed (growing a series only appends offsets),
/// while the end-aligned tail window — and the zero-padded window of a
/// series still shorter than one window — depends on the current series
/// end, so every append recomputes it into a transient overlay that is
/// summed after the grid votes. That reproduces a from-scratch stitch's
/// accumulation order (grid windows ascending, tail last) bit for bit,
/// which is what makes incremental results bitwise-identical to a full
/// rescan of the concatenated series.
struct SessionScanState {
  std::vector<float> series;      ///< committed aggregate readings (owned).
  int64_t grid_windows = 0;       ///< grid windows already accumulated.
  std::vector<float> prob_sum;    ///< per-timestamp grid probability sum.
  std::vector<int32_t> cover;     ///< grid windows covering each timestamp.
  std::vector<int32_t> on_votes;  ///< grid ON votes per timestamp.

  /// Readings committed so far.
  int64_t readings() const { return static_cast<int64_t>(series.size()); }
};

/// End-to-end batched serving for one appliance: slices a household
/// aggregate into overlapping windows (WindowStream), pushes them through
/// the CamAL localization pipeline batch by batch via the inference-only
/// forward path, and stitches per-window detections and activation masks
/// back into per-timestamp series. Overlapping windows vote: detection is
/// the mean window probability covering a timestamp, status the majority
/// of window masks, and power the §IV-C estimate over the voted status
/// (forced to 0 at missing readings, which have no observed aggregate).
///
/// The scan is two phases. Feed: windows stream through the model in
/// shared GEMM batches (MultiWindowStream). Stitch: each window's votes
/// accumulate into its own series' per-timestamp buffers, which finalize
/// independently. Because per-window forward results do not depend on
/// which other windows share a batch, ScanMany can coalesce windows from
/// several series into one forward pass and still return, for every
/// series, bitwise-identical results to a lone Scan of it.
class BatchRunner {
 public:
  /// \p ensemble is borrowed and must outlive the runner.
  BatchRunner(core::CamalEnsemble* ensemble, BatchRunnerOptions options);

  /// Scans \p aggregate_watts (unscaled Watts; NaN = missing reading).
  /// The view is borrowed for the duration of the call only — it can sit
  /// over a vector or straight over a mapped ColumnStore channel; nothing
  /// is copied either way. Series shorter than one window are left-padded
  /// with zeros (the stream's missing-value fill) to a single window and
  /// scanned, so even short households get real predictions; empty series
  /// return all-zero results. Not thread-safe: a runner owns reusable scan
  /// scratch, so concurrent scans need one runner each (see
  /// ShardedScanner).
  ScanResult Scan(data::SeriesView aggregate_watts);

  /// Coalesced scan of several series through shared GEMM batches: one
  /// feed phase carries every series' windows (batches fill across series
  /// boundaries, so small households no longer mean underfilled batches),
  /// then each series stitches and finalizes on its own. results[i] is
  /// bitwise-identical to Scan(series[i]); entries may repeat or be
  /// empty. Not thread-safe, like Scan.
  std::vector<ScanResult> ScanMany(const std::vector<data::SeriesView>& series);

  /// Incremental rescan: appends \p delta to \p state's committed series
  /// and feeds ONLY the windows the new tail touches — grid windows not
  /// yet committed plus the end-aligned tail (or short-series pad) window
  /// — reusing the persisted votes for everything else. Returns the
  /// full-series result, bitwise-identical to Scan(state->series) after
  /// the append; its `windows` counts only the windows actually fed.
  /// Empty deltas are fine (they re-finalize without feeding anything).
  /// \p delta must not view \p state's own committed series (it is copied
  /// into it). Not thread-safe, like Scan; concurrent appends to one
  /// state are the caller's bug (serve::Service serializes per session).
  ScanResult AppendScan(SessionScanState* state, data::SeriesView delta);

  /// Coalesced incremental rescan of several sessions: one feed phase
  /// carries every session's new windows, so distinct households' appends
  /// share GEMM batches exactly like ScanMany coalesces one-shot scans.
  /// states[i] / deltas[i] pair up; states must not be null and must be
  /// distinct, and no delta may view its own state's committed series.
  /// results[i] is bitwise-identical to Scan(states[i]->series) after its
  /// append. Not thread-safe.
  std::vector<ScanResult> AppendScanMany(
      const std::vector<SessionScanState*>& states,
      const std::vector<data::SeriesView>& deltas);

  /// Validates scan options without constructing a runner — the Status
  /// mirror of the constructor's programmer-error CHECKs, for callers
  /// (serve::Service::RegisterAppliance) that take options from
  /// configuration and must reject bad ones instead of aborting.
  static Status ValidateOptions(const BatchRunnerOptions& options);

  const BatchRunnerOptions& options() const { return options_; }

 private:
  /// Per-series stitch state of one scan (phase 2 accumulators).
  struct SeriesState {
    int64_t len = 0;  ///< original series length.
    int64_t pad = 0;  ///< synthetic left-pad of a short series.
    /// Left-padded copy of a short series; unused when len >= window.
    std::vector<float> padded;
    std::vector<float> prob_sum;     ///< per-timestamp probability sum.
    std::vector<int32_t> cover;      ///< windows covering each timestamp.
    std::vector<int32_t> on_votes;   ///< ON votes per timestamp.
  };

  /// Prepares states_[i] for \p series: result tensors, short-series pad,
  /// zeroed vote buffers. Returns the view the feed phase should window
  /// (over the padded copy for short series, over the caller's backing
  /// otherwise), or an empty view when the series is empty and
  /// contributes no windows.
  data::SeriesView PrepareSeries(data::SeriesView series, SeriesState* state,
                                 ScanResult* result);

  /// Folds one localized batch into the owning series' vote buffers.
  /// \p feed_to_state maps MultiWindowStream series indices to states_.
  void StitchBatch(const core::LocalizationResult& loc,
                   const std::vector<WindowRef>& refs, int64_t batch,
                   const std::vector<int32_t>& feed_to_state,
                   std::vector<ScanResult>* results);

  /// Turns accumulated votes into the per-timestamp detection/status/power
  /// series of \p result, dropping any synthetic pad.
  void FinalizeSeries(data::SeriesView aggregate_watts,
                      const SeriesState& state, ScanResult* result);

  /// Transient accumulators for the end-dependent window of one append
  /// (the tail or short-series pad window), kept out of the persisted
  /// grid accumulators because the series end moves on every append.
  struct OverlayState {
    bool active = false;  ///< this append has a tail or pad window.
    /// Series coordinate of overlay index 0; negative for a pad window
    /// (the synthetic zeros occupy [offset, 0)).
    int64_t offset = 0;
    std::vector<float> padded;    ///< padded feed copy when len < window.
    std::vector<float> prob_sum;  ///< window-length vote buffers.
    std::vector<int32_t> cover;
    std::vector<int32_t> on_votes;
  };

  /// Folds one localized batch of an append into the owning session's
  /// persistent grid accumulators or its transient overlay.
  void StitchAppendBatch(const core::LocalizationResult& loc,
                         const std::vector<WindowRef>& refs, int64_t batch,
                         const std::vector<SessionScanState*>& states,
                         const std::vector<int32_t>& feed_state,
                         const std::vector<uint8_t>& feed_overlay,
                         std::vector<ScanResult>* results);

  /// Sums persistent grid votes and the overlay into \p result's
  /// detection/status series (overlay last, like a from-scratch stitch).
  void FinalizeAppend(const SessionScanState& state,
                      const OverlayState& overlay, ScanResult* result);

  /// §IV-C power estimation over \p result's stitched status — shared by
  /// one-shot and incremental finalization so both force power to 0 at
  /// missing readings the same way.
  void FinalizePower(data::SeriesView aggregate_watts, ScanResult* result);

  core::CamalEnsemble* ensemble_;
  core::CamalLocalizer localizer_;
  BatchRunnerOptions options_;
  // Scan scratch reused across calls (one scan stitches hundreds of
  // batches; per-batch allocation churn showed up in serving profiles).
  std::vector<SeriesState> states_;
  std::vector<OverlayState> overlays_;  ///< append scratch, like states_.
  std::vector<WindowRef> batch_refs_;
  nn::Tensor batch_;
};

}  // namespace camal::serve

#endif  // CAMAL_SERVE_BATCH_RUNNER_H_
