#ifndef CAMAL_SERVE_SERVICE_H_
#define CAMAL_SERVE_SERVICE_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "serve/request_queue.h"
#include "serve/session.h"

namespace camal {
class FaultInjector;
}  // namespace camal

namespace camal::serve {

/// Bounded retry of transiently-failed one-shot scans. A scan that
/// throws (kInternal) is re-enqueued — at its original priority, its
/// deadline still honored — after an exponential backoff, up to
/// max_attempts total attempts; only then does the caller's future see
/// the failure. Session appends NEVER retry: a faulted append may have
/// half-updated the session's stitch state, so rerunning it could serve
/// corrupt results — the session is closed instead (graceful
/// degradation, ServiceStats::retries_exhausted tells the operator).
struct RetryPolicy {
  /// Total scan attempts per request (first try included). 1 = no
  /// retry, the pre-retry behaviour exactly.
  int max_attempts = 1;
  /// Backoff before attempt k+1 is initial * 2^(k-1), capped at max —
  /// slept on the failing worker, so a flapping dependency is not
  /// hammered at queue speed.
  double initial_backoff_seconds = 0.001;
  double max_backoff_seconds = 0.1;
};

/// Configuration of a serve::Service worker pool.
struct ServiceOptions {
  /// Request worker threads; 0 means NumThreads(). Each worker owns one
  /// BatchRunner per registered appliance over its own ensemble replica
  /// (worker 0 borrows the originals), so memory scales with
  /// workers x appliances.
  int workers = 0;
  /// Admission-queue bound: a Submit that finds this many requests already
  /// waiting is rejected with kFailedPrecondition (backpressure). <= 0
  /// means unbounded — only sensible for batch clients that pre-size their
  /// work, like ShardedScanner.
  int64_t queue_capacity = 256;
  /// Cross-request window coalescing: a worker that dequeues a request
  /// also drains up to coalesce_budget - 1 more waiting requests for the
  /// same appliance and serves the whole group through one shared-GEMM
  /// scan (BatchRunner::ScanMany), stitching and fulfilling each request's
  /// future independently. Results are bitwise-identical to uncoalesced
  /// scans; what changes is batch occupancy — a deep queue of small
  /// households fills GEMM batches that per-request scans would run nearly
  /// empty (Fig. 7c: ~7x at batch 32). <= 1 disables. Trade-off: a
  /// drained request rides its group instead of a possibly idle other
  /// worker, so latency-critical shallow-queue deployments may prefer 1.
  int coalesce_budget = 8;
  /// Streaming sessions idle at least this long — no append queued,
  /// parked, or running since — become eligible for eviction, swept
  /// opportunistically on each CreateSession (no background thread to
  /// configure or leak). <= 0 disables the sweep; EvictIdleSessions
  /// evicts on demand either way.
  double session_idle_seconds = 0.0;
  /// Structured fault-injection seam (replaces the old bare
  /// pre_scan_hook): borrowed, must outlive the service. Each worker
  /// calls FaultInjector::OnScan(request.household_id) immediately
  /// before a request is scanned — the injector's plan decides whether
  /// to throw, and its observation hook replaces ad-hoc test lambdas.
  /// An exception thrown there — or anywhere in the scan — resolves the
  /// affected requests' futures with kInternal (after any retries; see
  /// `retry`) instead of leaving them hung and killing the worker. The
  /// same injector can be threaded through checkpoint IO to fault
  /// writes and tear committed files. Null disables the seam.
  FaultInjector* fault_injector = nullptr;
  /// Bounded retry of transient one-shot scan faults; see RetryPolicy.
  RetryPolicy retry;
  /// Crash safety: directory session checkpoints are written to (file
  /// Service::CheckpointFile(dir)). Empty disables checkpointing.
  /// With a directory set, Shutdown flushes a final checkpoint, and —
  /// when checkpoint_interval_seconds > 0 — workers sweep one
  /// opportunistically after serving, at most once per interval (no
  /// background thread to configure or leak, like the idle-session
  /// sweep). Restore is explicit: call RestoreSessions after Start.
  std::string checkpoint_dir;
  double checkpoint_interval_seconds = 0.0;
};

/// Monotonic request counters (totals since Start).
struct ServiceStats {
  int64_t accepted = 0;  ///< requests admitted to the queue.
  /// Requests refused by validation (malformed request, unknown appliance)
  /// or lifecycle (not started / shut down).
  int64_t rejected_invalid = 0;
  /// Requests refused because the bounded admission queue was full — the
  /// overload signal an operator alerts on, which lumping it with
  /// malformed requests used to hide.
  int64_t rejected_backpressure = 0;
  int64_t completed = 0;  ///< requests whose future holds a ScanResult.
  int64_t failed = 0;     ///< scans that threw; futures hold kInternal.
  /// Requests whose deadline passed while they queued: shed by a worker
  /// BEFORE any scan ran, futures hold kDeadlineExceeded. Under overload
  /// this is the load-shedding signal (capacity spent only on answers
  /// someone still wants); it is not failure and not backpressure.
  int64_t shed_deadline = 0;
  /// Completions by scheduling class (sum equals `completed`): the
  /// QoS split an operator checks to see whether priority inversion or
  /// starvation is happening under load.
  int64_t completed_high = 0;
  int64_t completed_normal = 0;
  int64_t completed_low = 0;
  /// Coalescing telemetry: groups of >= 2 requests served through one
  /// shared scan, and the requests inside them. Mean batch occupancy of
  /// coalesced scans = coalesced_requests / coalesced_groups.
  int64_t coalesced_groups = 0;
  int64_t coalesced_requests = 0;
  /// Streaming-session telemetry.
  int64_t sessions_created = 0;
  int64_t sessions_closed = 0;   ///< by CloseSession, faults, or Shutdown.
  int64_t sessions_evicted = 0;  ///< reclaimed by idle eviction.
  int64_t live_sessions = 0;     ///< gauge: sessions open right now.
  int64_t session_appends = 0;   ///< append scans completed.
  int64_t appended_readings = 0;  ///< samples committed through appends.
  /// Feed windows the persisted stitch state saved versus from-scratch
  /// rescans: sum over completed appends of windows_full - windows.
  int64_t incremental_windows_saved = 0;
  /// Degradation telemetry (crash safety + retry). A retried request
  /// that eventually completes counts under `completed` as usual;
  /// retries_attempted counts the extra scan attempts it consumed, and
  /// retries_exhausted the requests that failed even after retrying —
  /// the "the fault was not transient" signal.
  int64_t retries_attempted = 0;
  int64_t retries_exhausted = 0;
  /// Sessions revived from a checkpoint by RestoreSessions.
  int64_t sessions_restored = 0;
  /// Checkpoint files durably written (periodic sweeps, explicit calls,
  /// and the Shutdown flush) — and sweep writes that failed, which an
  /// operator alerts on: a service that cannot persist its sessions has
  /// silently lost crash safety.
  int64_t checkpoints_written = 0;
  int64_t checkpoint_failures = 0;

  /// All rejections, whatever the reason.
  int64_t rejected_total() const {
    return rejected_invalid + rejected_backpressure;
  }
};

/// Asynchronous multi-appliance serving facade — the request front-end of
/// the CamAL runtime.
///
/// Lifecycle: construct, RegisterAppliance one or more named ensembles,
/// Start, then Submit ScanRequests from any number of threads; each
/// returns a std::future<Result<ScanResult>>. Internally a bounded
/// RequestQueue feeds `workers` threads, each owning a private BatchRunner
/// per appliance over its own CamalEnsemble::Clone replica (members cache
/// per-forward feature maps, so runners are never shared). When the queue
/// runs deep, a worker coalesces same-appliance requests into one
/// shared-GEMM scan (see ServiceOptions::coalesce_budget). Results are
/// bitwise-identical to a sequential BatchRunner::Scan with the same
/// options, regardless of which worker served the request or which
/// requests shared its batches.
///
/// Error contract: malformed requests never abort the process. Submit
/// resolves the returned future immediately with kInvalidArgument (empty
/// appliance name, no series set, negative deadline), kNotFound
/// (unregistered appliance), or kFailedPrecondition (not started, shut
/// down, or queue full). Workers only ever see validated requests; a scan
/// that throws resolves the affected futures with kInternal and the
/// worker lives on.
///
/// QoS: every request carries a RequestPriority (default kNormal) — a
/// worker always serves the earliest request of the most urgent class,
/// FIFO within a class, and cross-request coalescing never groups across
/// classes. A request may also set ScanRequest::deadline_seconds; one
/// still queued when it expires is shed with kDeadlineExceeded before
/// any scan runs (ServiceStats::shed_deadline). Neither priority nor an
/// unexpired deadline changes results: a served request's ScanResult is
/// bitwise-identical whatever its class or the queue state.
///
/// Streaming households use sessions instead of one-shot Submits:
/// CreateSession opens a long-lived handle whose AppendReadings deltas
/// rescan incrementally against persisted stitch state — bitwise-
/// identical to a from-scratch scan of the concatenated series, at the
/// cost of only the windows the new tail touches. Session appends ride
/// the same queue, workers, and coalescing as one-shot requests.
///
/// Shutdown is graceful: admission stops at once, every request already
/// admitted is still served, then workers join and live sessions close.
/// The destructor calls Shutdown. A borrowed-series request
/// (ScanRequest::series) must keep the view's backing storage — a vector
/// or a mapped data::ColumnStore — alive until the request's future
/// resolves; owned-series requests and session appends carry their
/// buffers. Serving off a mapped store is the zero-copy path: the worker
/// windows the model inputs straight out of the mapping.
class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Registers \p ensemble (borrowed; must outlive the service) under
  /// \p name with per-request scan options. Only before Start:
  /// registration after Start returns kFailedPrecondition; an empty name,
  /// duplicate name, or null ensemble returns kInvalidArgument. Worker 0
  /// serves requests on \p ensemble itself (not a clone), so while any
  /// request may be in flight the caller must not run forwards on it —
  /// member forward passes cache per-call state.
  Status RegisterAppliance(std::string name, core::CamalEnsemble* ensemble,
                           BatchRunnerOptions runner);

  /// Clones per-worker replicas and launches the worker pool. Returns
  /// kFailedPrecondition when no appliance is registered, or when the
  /// service already started (including after Shutdown — a Service is
  /// single-use).
  Status Start();

  /// Validates and enqueues \p request. Always returns a future: on
  /// rejection it is already resolved with the non-OK Status (see the
  /// class contract for codes). Thread-safe. The request must set exactly
  /// one of `series` (borrowed view — its backing storage must outlive
  /// the future) and `owned_series` (the request carries the buffer).
  /// [[nodiscard]]: dropping the future loses the only handle on the
  /// request's outcome (including a rejection already resolved into it).
  [[nodiscard]] std::future<Result<ScanResult>> Submit(ScanRequest request);

  /// Owning one-shot convenience: the request carries \p series, so the
  /// caller has no buffer to keep alive — use this instead of a borrowed
  /// ScanRequest unless the series already outlives the call.
  [[nodiscard]] std::future<Result<ScanResult>> Submit(
      std::string appliance, std::vector<float> series);

  /// Opens a streaming session for \p appliance (see Session for the
  /// lifecycle and serialization contract). kFailedPrecondition before
  /// Start / after Shutdown, kNotFound for an unregistered appliance,
  /// kInvalidArgument for bad options or a duplicate live household_id.
  /// Thread-safe. When ServiceOptions::session_idle_seconds > 0 this also
  /// sweeps idle sessions first.
  Result<std::shared_ptr<Session>> CreateSession(const std::string& appliance,
                                                 SessionOptions options = {});

  /// Appends \p readings to \p session and rescans incrementally. Always
  /// returns a future; on success it resolves to the FULL-series result,
  /// bitwise-identical to a from-scratch scan of everything appended so
  /// far. Appends to one session serialize in submission order; at most
  /// max_pending_appends may park behind the in-flight one before
  /// kFailedPrecondition backpressure. A closed / evicted session or a
  /// shut-down service rejects with kFailedPrecondition. Thread-safe.
  [[nodiscard]] std::future<Result<ScanResult>> AppendReadings(
      const std::shared_ptr<Session>& session, std::vector<float> readings);

  /// Closes \p session: parked appends fail with kFailedPrecondition (an
  /// already-running one still completes), later appends are rejected,
  /// and the service drops its reference. Idempotent. Thread-safe.
  Status CloseSession(const std::shared_ptr<Session>& session);

  /// Looks up a live session by household id — the handle-recovery path
  /// after RestoreSessions, which revives sessions nobody holds a
  /// pointer to yet. kNotFound when no live session has \p id.
  /// Thread-safe.
  Result<std::shared_ptr<Session>> GetSession(const std::string& id) const;

  /// Snapshots every quiescent live session into
  /// CheckpointFile(\p dir), written atomically (temp + fsync + rename)
  /// so a crash mid-checkpoint leaves the previous snapshot intact.
  /// Sessions with an append queued, parked, or running are skipped —
  /// their stitch state may be mid-update on a worker — and are caught
  /// by the next sweep. Zero live sessions still write a (valid, empty)
  /// checkpoint: "nothing was live" is state worth persisting.
  /// Thread-safe; safe to race with appends and Close.
  Status CheckpointSessions(const std::string& dir);

  /// Revives sessions from CheckpointFile(\p dir) into this service and
  /// returns how many were restored. Appends to a restored session
  /// produce results bitwise-identical to a session that was never
  /// interrupted: the snapshot carries the exact stitch accumulators.
  /// Degrades, never crashes: a missing file restores 0 (a fresh boot
  /// is not an error); a corrupt, torn, or version-skewed file returns
  /// the reader's Status and the service keeps serving; records whose
  /// appliance is not registered, or whose id collides with a live
  /// session (the live one wins), are skipped. Requires a running
  /// service (kFailedPrecondition otherwise).
  Result<int64_t> RestoreSessions(const std::string& dir);

  /// The checkpoint file CheckpointSessions writes inside \p dir.
  static std::string CheckpointFile(const std::string& dir);

  /// Evicts every session whose last append activity is at least
  /// \p idle_seconds ago and that has nothing queued, parked, or running.
  /// Evicted sessions read as closed. Returns how many were evicted.
  /// Thread-safe; safe to race with appends — a session that becomes
  /// active between the check and the evict is skipped, never corrupted.
  int64_t EvictIdleSessions(double idle_seconds);

  /// Sessions currently open (the ServiceStats::live_sessions gauge).
  int64_t live_sessions() const;

  /// Stops admission, serves every admitted request, joins the workers,
  /// then closes every live session — parked appends admitted after the
  /// queue closed fail with kFailedPrecondition, so every future returned
  /// by Submit/AppendReadings resolves. Idempotent; safe to race with
  /// Submit (late submissions are rejected).
  void Shutdown();

  /// True between a successful Start and Shutdown.
  bool running() const { return state_.load() == State::kRunning; }

  /// Worker threads the pool runs (0 before Start).
  int workers() const { return static_cast<int>(workers_.size()); }

  /// Requests currently waiting for a worker (excludes in-flight scans) —
  /// the backpressure signal an operator would alert on.
  int64_t queue_depth() const { return queue_.size(); }

  /// Nested conv-GEMM chunk budget each worker runs with
  /// (NumThreads() / workers, at least 1). Meaningful after Start.
  int inner_budget() const { return inner_budget_; }

  /// The live cross-request coalescing budget (initially
  /// options().coalesce_budget). Runtime-adjustable: set_coalesce_budget
  /// takes effect at each worker's next dequeue — safe at any time from
  /// any thread, because coalescing is a batching policy, not a results
  /// policy (coalesced scans are bitwise-identical to lone scans).
  /// <= 1 disables draining. ShardedScanner re-pins this per cohort.
  int coalesce_budget() const { return coalesce_budget_.load(); }
  void set_coalesce_budget(int budget) { coalesce_budget_.store(budget); }

  ServiceStats stats() const;

  const ServiceOptions& options() const { return options_; }

 private:
  enum class State { kIdle, kRunning, kStopped };

  struct Appliance {
    core::CamalEnsemble* ensemble = nullptr;
    BatchRunnerOptions runner;
  };

  /// One request worker: a thread plus its private per-appliance runners
  /// (and the replicas backing them, for workers >= 1).
  struct Worker {
    std::vector<std::unique_ptr<core::CamalEnsemble>> replicas;
    std::map<std::string, std::unique_ptr<BatchRunner>> runners;
    std::thread thread;
  };

  void WorkerLoop(Worker* worker);

  /// Serves one dequeued group (head task plus same-appliance extras) on
  /// \p runner. Expired-deadline tasks are shed first — their promises
  /// resolve with kDeadlineExceeded and they never reach the fault-
  /// injection seam or a runner. The rest: one-shot tasks through one
  /// coalesced ScanMany pass, session appends through one coalesced
  /// AppendScanMany pass (a group never holds two appends of the same
  /// session — the session serializer admits one at a time). Every
  /// task's promise is resolved exactly once — with its ScanResult, or
  /// with kInternal if the scan threw and retries are exhausted. A
  /// throwing scan closes the affected sessions (their stitch state is
  /// suspect; appends never retry) and re-enqueues one-shot tasks still
  /// inside RetryPolicy::max_attempts after a bounded backoff.
  void ServeGroup(BatchRunner* runner, QueuedScan* first,
                  std::vector<QueuedScan>* extras);

  /// Opportunistic checkpoint sweep, run by workers between groups: at
  /// most one checkpoint per checkpoint_interval_seconds, claimed by
  /// atomic CAS so concurrent workers never write twice.
  void MaybeCheckpoint();

  /// Post-append session handoff, on the worker thread: commits the
  /// readings gauge, then either hands the next parked append to the
  /// queue (the session stays in flight) or clears the in-flight flag.
  void FinishAppend(const std::shared_ptr<Session>& session);

  /// Closes \p session after its append faulted: parked appends fail,
  /// the handle reads closed, the service drops its reference.
  void FailSession(const std::shared_ptr<Session>& session,
                   const Status& failure);

  /// Fails every parked append of \p session with \p status and counts
  /// them failed. Caller holds session->mu_.
  void DrainPendingLocked(Session* session, const Status& status)
      CAMAL_REQUIRES(session->mu_);

  /// Ready future carrying \p status; counts an invalid-request rejection.
  std::future<Result<ScanResult>> Reject(Status status);

  ServiceOptions options_;
  /// Live coalescing budget; see coalesce_budget().
  std::atomic<int> coalesce_budget_;
  /// Written under lifecycle_mu_ before Start publishes kRunning, frozen
  /// (read lock-free by Submit and the workers) after — a publish-then-
  /// freeze field, deliberately NOT CAMAL_GUARDED_BY: annotating it would
  /// force every reader through a lock the freeze makes unnecessary.
  std::map<std::string, Appliance> appliances_;
  RequestQueue queue_;
  /// Same publish-then-freeze discipline as appliances_ (and the same
  /// reason it carries no guard annotation).
  std::vector<std::unique_ptr<Worker>> workers_;
  int inner_budget_ = 1;  ///< nested-GEMM budget per worker (see Start).
  std::atomic<State> state_{State::kIdle};
  Mutex lifecycle_mu_;  ///< serializes Register/Start/Shutdown.
  /// Live sessions by id; guarded by sessions_mu_ (lock order: before any
  /// Session::mu_). Values are shared with caller handles, so erasing
  /// here never frees a session somebody still appends through.
  mutable Mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_
      CAMAL_GUARDED_BY(sessions_mu_);
  std::atomic<int64_t> session_seq_{0};  ///< auto-generated id counter.
  mutable std::atomic<int64_t> accepted_{0};
  mutable std::atomic<int64_t> rejected_invalid_{0};
  mutable std::atomic<int64_t> rejected_backpressure_{0};
  mutable std::atomic<int64_t> completed_{0};
  mutable std::atomic<int64_t> failed_{0};
  mutable std::atomic<int64_t> shed_deadline_{0};
  /// Completions indexed by RequestPriority (kHigh=0..kLow=2).
  mutable std::array<std::atomic<int64_t>, 3> completed_by_priority_{};
  mutable std::atomic<int64_t> coalesced_groups_{0};
  mutable std::atomic<int64_t> coalesced_requests_{0};
  mutable std::atomic<int64_t> sessions_created_{0};
  mutable std::atomic<int64_t> sessions_closed_{0};
  mutable std::atomic<int64_t> sessions_evicted_{0};
  mutable std::atomic<int64_t> session_appends_{0};
  mutable std::atomic<int64_t> appended_readings_{0};
  mutable std::atomic<int64_t> windows_saved_{0};
  mutable std::atomic<int64_t> retries_attempted_{0};
  mutable std::atomic<int64_t> retries_exhausted_{0};
  mutable std::atomic<int64_t> sessions_restored_{0};
  mutable std::atomic<int64_t> checkpoints_written_{0};
  mutable std::atomic<int64_t> checkpoint_failures_{0};
  /// steady_clock ticks of the last periodic sweep; CAS-claimed in
  /// MaybeCheckpoint.
  std::atomic<int64_t> last_checkpoint_ticks_{0};
};

}  // namespace camal::serve

#endif  // CAMAL_SERVE_SERVICE_H_
