#ifndef CAMAL_SERVE_SHARDED_SCANNER_H_
#define CAMAL_SERVE_SHARDED_SCANNER_H_

#include <memory>
#include <vector>

#include "serve/batch_runner.h"

namespace camal::serve {

/// Configuration of a sharded multi-household scan.
struct ShardedScannerOptions {
  /// Per-household scan configuration, shared by every shard.
  BatchRunnerOptions runner;
  /// Cap on concurrent household shards; 0 means NumThreads(). The thread
  /// budget left over after sharding (NumThreads() / shards) serves the
  /// conv GEMMs inside each shard — see PlanOuterShards.
  int max_shards = 0;
};

/// Multi-core serving for a cohort of households (the Fig. 7b scaling
/// axis): partitions the household series across outer worker shards, each
/// running an independent BatchRunner scan, and merges the ScanResults
/// back in input order.
///
/// Ensemble members cache per-forward state (the feature maps CAM
/// extraction reads) and each BatchRunner owns reusable scan scratch, so
/// every shard gets its own BatchRunner over its own CamalEnsemble::Clone
/// replica (shard 0 borrows the original). Replicas are created lazily on
/// the first ScanAll that needs them and reused afterwards. Results are
/// deterministic: results[i] always comes from the same per-shard
/// sequential scan of households[i], independent of thread count, so the
/// merged output is identical to sequential BatchRunner scans.
///
/// ScanAll itself must not be called concurrently on one scanner (shards
/// are the concurrency); use one scanner per calling thread instead.
class ShardedScanner {
 public:
  /// \p ensemble is borrowed and must outlive the scanner.
  ShardedScanner(core::CamalEnsemble* ensemble,
                 ShardedScannerOptions options);
  ~ShardedScanner();

  /// Scans every household; results[i] corresponds to households[i].
  std::vector<ScanResult> ScanAll(
      const std::vector<std::vector<float>>& households);

  /// Pointer variant for cohorts whose series live elsewhere (borrowed;
  /// every pointer must be non-null).
  std::vector<ScanResult> ScanAll(
      const std::vector<const std::vector<float>*>& households);

  const ShardedScannerOptions& options() const { return options_; }

 private:
  /// Ensures runner/replica slots [0, shards) exist.
  void EnsureShards(int shards);

  core::CamalEnsemble* ensemble_;
  ShardedScannerOptions options_;
  /// Ensemble replicas for shards >= 1 (unique_ptr: BatchRunner keeps a
  /// pointer to its ensemble, so replica addresses must be stable).
  std::vector<std::unique_ptr<core::CamalEnsemble>> replicas_;
  std::vector<std::unique_ptr<BatchRunner>> runners_;
};

}  // namespace camal::serve

#endif  // CAMAL_SERVE_SHARDED_SCANNER_H_
