#ifndef CAMAL_SERVE_SHARDED_SCANNER_H_
#define CAMAL_SERVE_SHARDED_SCANNER_H_

#include <memory>
#include <vector>

#include "serve/service.h"

namespace camal::serve {

/// Configuration of a sharded multi-household scan.
struct ShardedScannerOptions {
  /// Per-household scan configuration, shared by every worker.
  BatchRunnerOptions runner;
  /// Cap on concurrent scan workers; 0 means NumThreads(). The thread
  /// budget left over after the worker fan-out (NumThreads() / workers)
  /// serves the conv GEMMs inside each worker — see PlanOuterShards.
  int max_shards = 0;
  /// Cross-request window coalescing budget applied to the internal
  /// service WHEN a cohort's households outnumber the planned worker
  /// pool — with more households than workers each worker serves a deep
  /// queue, so draining same-appliance siblings into shared GEMM batches
  /// is pure occupancy win (first step of the ROADMAP's adaptive
  /// coalescing). The budget is re-pinned per ScanAll via the service's
  /// runtime-adjustable setter: a cohort that fits the pool (one worker
  /// per household) always runs with 1, since coalescing there would
  /// serialize the scans the shards parallelize. This budget is only the
  /// upper bound: per dequeue, RequestQueue::AdaptiveDrainBudget shrinks
  /// the actual drain so idle sibling workers keep work (adaptive
  /// coalescing, step 2), which makes a generous budget safe even near
  /// the cohort/pool crossover. Results are bitwise-identical either
  /// way. <= 1 always disables.
  int coalesce_budget = 8;
};

/// Synchronous whole-cohort scanning, as a thin wrapper over the
/// asynchronous serve::Service — there is exactly one scan path: ScanAll
/// submits every household to an internal single-appliance service and
/// blocks on the returned futures, so results[i] always corresponds to
/// households[i].
///
/// The service gives each worker its own BatchRunner over its own
/// CamalEnsemble::Clone replica (ensemble members cache per-forward
/// feature maps), so results are bitwise-identical to sequential
/// BatchRunner scans regardless of worker count or scheduling. The worker
/// pool is sized per cohort (households capped by max_shards) and reused;
/// a later cohort that plans more workers transparently rebuilds it.
///
/// ScanAll itself must not be called concurrently on one scanner (the
/// pool rebuild swaps the internal service); use one scanner per calling
/// thread, or serve::Service directly, for concurrent cohorts.
class ShardedScanner {
 public:
  /// \p ensemble is borrowed and must outlive the scanner.
  ShardedScanner(core::CamalEnsemble* ensemble,
                 ShardedScannerOptions options);
  ~ShardedScanner();

  /// Scans every household; results[i] corresponds to households[i]. The
  /// views are borrowed for the duration of the call — a cohort of mapped
  /// ColumnStore aggregates scans with zero copies. A lifecycle fault in
  /// the internal service surfaces as the Status — the one error contract
  /// shared with serve::Service.
  Result<std::vector<ScanResult>> ScanAll(
      const std::vector<data::SeriesView>& households);

  /// Owning-cohort convenience: borrows a view of each vector and runs
  /// the view overload above.
  Result<std::vector<ScanResult>> ScanAll(
      const std::vector<std::vector<float>>& households);

  const ShardedScannerOptions& options() const { return options_; }

  /// The internal service behind the last ScanAll (null before the first
  /// scan) — read-only observability for telemetry and tests (its
  /// coalesce_budget() / stats() show whether coalescing ran).
  const Service* service() const { return service_.get(); }

 private:
  /// Builds (or grows) and starts the internal service, sizing its worker
  /// pool for a cohort of \p cohort_size households.
  Service* EnsureService(int64_t cohort_size);

  core::CamalEnsemble* ensemble_;
  ShardedScannerOptions options_;
  std::unique_ptr<Service> service_;
};

}  // namespace camal::serve

#endif  // CAMAL_SERVE_SHARDED_SCANNER_H_
