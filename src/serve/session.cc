#include "serve/session.h"

#include <utility>

#include "serve/service.h"

namespace camal::serve {

Session::Session(Service* service, std::string id, std::string appliance,
                 SessionOptions options)
    : service_(service),
      id_(std::move(id)),
      appliance_(std::move(appliance)),
      options_(std::move(options)),
      last_active_(std::chrono::steady_clock::now()) {}

int64_t Session::readings() const {
  MutexLock lock(&mu_);
  return committed_readings_;
}

bool Session::closed() const {
  MutexLock lock(&mu_);
  return closed_;
}

std::future<Result<ScanResult>> Session::AppendReadings(
    std::vector<float> readings) {
  return service_->AppendReadings(shared_from_this(), std::move(readings));
}

std::future<Result<ScanResult>> Session::AppendReadings(
    data::SeriesView readings) {
  return AppendReadings(std::vector<float>(readings.begin(), readings.end()));
}

std::future<Result<ScanResult>> Session::AppendReadings(const float* readings,
                                                        int64_t count) {
  return AppendReadings(data::SeriesView(readings, count));
}

Status Session::Close() { return service_->CloseSession(shared_from_this()); }

}  // namespace camal::serve
