#include "serve/service.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/parallel_for.h"

namespace camal::serve {

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      coalesce_budget_(options_.coalesce_budget),
      queue_(options_.queue_capacity) {
  CAMAL_CHECK_GE(options_.workers, 0);
}

Service::~Service() { Shutdown(); }

Status Service::RegisterAppliance(std::string name,
                                  core::CamalEnsemble* ensemble,
                                  BatchRunnerOptions runner) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (state_.load() != State::kIdle) {
    return Status::FailedPrecondition(
        "appliances must be registered before Start");
  }
  if (name.empty()) {
    return Status::InvalidArgument("appliance name must not be empty");
  }
  if (ensemble == nullptr) {
    return Status::InvalidArgument("appliance ensemble must not be null");
  }
  if (ensemble->members().empty()) {
    return Status::InvalidArgument("appliance ensemble has no members");
  }
  Appliance appliance;
  appliance.ensemble = ensemble;
  appliance.runner = runner;
  if (!appliances_.emplace(std::move(name), appliance).second) {
    return Status::InvalidArgument("appliance is already registered");
  }
  return Status::OK();
}

Status Service::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (state_.load() != State::kIdle) {
    return Status::FailedPrecondition("service already started");
  }
  if (appliances_.empty()) {
    return Status::FailedPrecondition(
        "at least one appliance must be registered before Start");
  }
  const int workers =
      options_.workers > 0 ? options_.workers : NumThreads();
  // Same budget split as PlanOuterShards: whatever the worker fan-out does
  // not consume serves the conv GEMMs inside each worker's scans.
  inner_budget_ = std::max(1, NumThreads() / workers);

  // Replicate on this thread, before any request runs: Clone reads state
  // that forward passes mutate, so it must not race with scans. Worker 0
  // borrows the originals; workers 1..W-1 each own a replica set.
  workers_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (auto& [name, appliance] : appliances_) {
    std::vector<std::unique_ptr<core::CamalEnsemble>> replicas =
        appliance.ensemble->CloneReplicas(workers - 1);
    for (int w = 0; w < workers; ++w) {
      core::CamalEnsemble* replica_ensemble = appliance.ensemble;
      if (w > 0) {
        workers_[static_cast<size_t>(w)]->replicas.push_back(
            std::move(replicas[static_cast<size_t>(w - 1)]));
        replica_ensemble =
            workers_[static_cast<size_t>(w)]->replicas.back().get();
      }
      workers_[static_cast<size_t>(w)]->runners.emplace(
          name,
          std::make_unique<BatchRunner>(replica_ensemble, appliance.runner));
    }
  }
  // Publish the running state before the workers exist: WorkerLoop only
  // touches the queue and its own Worker, so late thread starts are safe.
  state_.store(State::kRunning);
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(w); });
  }
  return Status::OK();
}

void Service::WorkerLoop(Worker* worker) {
  // Pin this thread's nested-parallelism budget so W workers scanning
  // concurrently fan their conv GEMMs out to NumThreads()/W chunks each
  // instead of W times the whole pool.
  ParallelBudgetScope budget(inner_budget_);
  QueuedScan first;
  std::vector<QueuedScan> extras;
  // The coalescing budget re-reads per dequeue: it is runtime-adjustable
  // (see set_coalesce_budget) and only shapes batching, never results.
  while (queue_.PopGroup(
      &first, &extras,
      static_cast<int64_t>(coalesce_budget_.load()) - 1)) {
    BatchRunner* runner = worker->runners.at(first.request.appliance).get();
    ServeGroup(runner, &first, &extras);
  }
}

void Service::ServeGroup(BatchRunner* runner, QueuedScan* first,
                         std::vector<QueuedScan>* extras) {
  // The group: head task plus the same-appliance extras PopGroup drained,
  // in admission order.
  std::vector<QueuedScan*> tasks;
  tasks.reserve(1 + extras->size());
  tasks.push_back(first);
  for (QueuedScan& extra : *extras) tasks.push_back(&extra);

  // Scan inside try; fulfill promises outside, so each promise is resolved
  // exactly once whatever happens. Before this guard a throwing scan left
  // every promise of the group unfulfilled — the submitters blocked
  // forever on their futures — and unwound the worker thread for good.
  std::vector<ScanResult> results;
  Status failure = Status::OK();
  try {
    if (options_.pre_scan_hook) {
      for (const QueuedScan* task : tasks) {
        options_.pre_scan_hook(task->request);
      }
    }
    if (tasks.size() == 1) {
      results.push_back(runner->Scan(*first->request.series));
    } else {
      std::vector<const std::vector<float>*> series;
      series.reserve(tasks.size());
      for (const QueuedScan* task : tasks) {
        series.push_back(task->request.series);
      }
      // One shared feed phase for the whole group; per-request stitches
      // stay independent, so results match per-request scans bitwise.
      results = runner->ScanMany(series);
      coalesced_groups_.fetch_add(1, std::memory_order_relaxed);
      coalesced_requests_.fetch_add(static_cast<int64_t>(tasks.size()),
                                    std::memory_order_relaxed);
    }
  } catch (const std::exception& e) {
    failure = Status::Internal(std::string("scan failed: ") + e.what());
  } catch (...) {
    failure = Status::Internal("scan failed: unknown exception");
  }

  if (!failure.ok()) {
    failed_.fetch_add(static_cast<int64_t>(tasks.size()),
                      std::memory_order_relaxed);
    for (QueuedScan* task : tasks) {
      task->promise.set_value(Result<ScanResult>(failure));
    }
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < tasks.size(); ++i) {
    results[i].latency_seconds =
        std::chrono::duration<double>(now - tasks[i]->admitted).count();
    completed_.fetch_add(1, std::memory_order_relaxed);
    tasks[i]->promise.set_value(std::move(results[i]));
  }
}

std::future<Result<ScanResult>> Service::Reject(Status status) {
  rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
  std::promise<Result<ScanResult>> promise;
  std::future<Result<ScanResult>> future = promise.get_future();
  promise.set_value(Result<ScanResult>(std::move(status)));
  return future;
}

std::future<Result<ScanResult>> Service::Submit(ScanRequest request) {
  // Validate before touching the queue: malformed input must surface as a
  // Status, never reach a worker, and never abort.
  if (state_.load() != State::kRunning) {
    return Reject(Status::FailedPrecondition(
        state_.load() == State::kIdle ? "service is not started"
                                      : "service is shut down"));
  }
  if (request.appliance.empty()) {
    return Reject(
        Status::InvalidArgument("request has an empty appliance name"));
  }
  if (request.series == nullptr) {
    return Reject(Status::InvalidArgument("request series is null"));
  }
  // appliances_ is frozen once state_ is kRunning, so lock-free reads are
  // safe here.
  if (appliances_.find(request.appliance) == appliances_.end()) {
    return Reject(Status::NotFound("appliance '" + request.appliance +
                                   "' is not registered"));
  }

  QueuedScan task;
  task.request = std::move(request);
  task.admitted = std::chrono::steady_clock::now();
  std::future<Result<ScanResult>> future = task.promise.get_future();
  bool rejected_full = false;
  Status admitted = queue_.Push(&task, &rejected_full);
  if (!admitted.ok()) {
    // Push left the task (and its promise) with us; fail it in place. Not
    // routed through Reject: the future is already bound to this promise,
    // and a full queue is backpressure, not an invalid request.
    auto& counter = rejected_full ? rejected_backpressure_ : rejected_invalid_;
    counter.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_value(Result<ScanResult>(std::move(admitted)));
    return future;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

void Service::Shutdown() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (state_.load() != State::kRunning) {
    // Never started (or already stopped): just refuse future use.
    state_.store(State::kStopped);
    return;
  }
  state_.store(State::kStopped);
  // Closing the queue wakes every worker; they drain the admitted backlog
  // first (Pop only returns false once closed AND empty), then exit.
  queue_.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

ServiceStats Service::stats() const {
  ServiceStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  stats.rejected_backpressure =
      rejected_backpressure_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.coalesced_groups = coalesced_groups_.load(std::memory_order_relaxed);
  stats.coalesced_requests =
      coalesced_requests_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace camal::serve
