#include "serve/service.h"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/parallel_for.h"
#include "serve/checkpoint.h"

namespace camal::serve {

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      coalesce_budget_(options_.coalesce_budget),
      queue_(options_.queue_capacity) {
  CAMAL_CHECK_GE(options_.workers, 0);
}

Service::~Service() { Shutdown(); }

Status Service::RegisterAppliance(std::string name,
                                  core::CamalEnsemble* ensemble,
                                  BatchRunnerOptions runner) {
  MutexLock lock(&lifecycle_mu_);
  if (state_.load() != State::kIdle) {
    return Status::FailedPrecondition(
        "appliances must be registered before Start");
  }
  if (name.empty()) {
    return Status::InvalidArgument("appliance name must not be empty");
  }
  if (ensemble == nullptr) {
    return Status::InvalidArgument("appliance ensemble must not be null");
  }
  if (ensemble->members().empty()) {
    return Status::InvalidArgument("appliance ensemble has no members");
  }
  // Scan options come from configuration; bad ones must surface as a
  // Status here instead of aborting inside a worker's BatchRunner.
  CAMAL_RETURN_NOT_OK(BatchRunner::ValidateOptions(runner));
  Appliance appliance;
  appliance.ensemble = ensemble;
  appliance.runner = runner;
  if (!appliances_.emplace(std::move(name), appliance).second) {
    return Status::InvalidArgument("appliance is already registered");
  }
  return Status::OK();
}

Status Service::Start() {
  MutexLock lock(&lifecycle_mu_);
  if (state_.load() != State::kIdle) {
    return Status::FailedPrecondition("service already started");
  }
  if (appliances_.empty()) {
    return Status::FailedPrecondition(
        "at least one appliance must be registered before Start");
  }
  const int workers =
      options_.workers > 0 ? options_.workers : NumThreads();
  // Same budget split as PlanOuterShards: whatever the worker fan-out does
  // not consume serves the conv GEMMs inside each worker's scans.
  inner_budget_ = std::max(1, NumThreads() / workers);

  // Replicate on this thread, before any request runs: Clone reads state
  // that forward passes mutate, so it must not race with scans. Worker 0
  // borrows the originals; workers 1..W-1 each own a replica set.
  workers_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (auto& [name, appliance] : appliances_) {
    std::vector<std::unique_ptr<core::CamalEnsemble>> replicas =
        appliance.ensemble->CloneReplicas(workers - 1);
    for (int w = 0; w < workers; ++w) {
      core::CamalEnsemble* replica_ensemble = appliance.ensemble;
      if (w > 0) {
        workers_[static_cast<size_t>(w)]->replicas.push_back(
            std::move(replicas[static_cast<size_t>(w - 1)]));
        replica_ensemble =
            workers_[static_cast<size_t>(w)]->replicas.back().get();
      }
      workers_[static_cast<size_t>(w)]->runners.emplace(
          name,
          std::make_unique<BatchRunner>(replica_ensemble, appliance.runner));
    }
  }
  // Arm the periodic checkpoint sweep from "now": the first checkpoint
  // lands one interval after Start, not immediately.
  last_checkpoint_ticks_.store(
      std::chrono::steady_clock::now().time_since_epoch().count());
  // Publish the running state before the workers exist: WorkerLoop only
  // touches the queue and its own Worker, so late thread starts are safe.
  state_.store(State::kRunning);
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(w); });
  }
  return Status::OK();
}

void Service::WorkerLoop(Worker* worker) {
  // Pin this thread's nested-parallelism budget so W workers scanning
  // concurrently fan their conv GEMMs out to NumThreads()/W chunks each
  // instead of W times the whole pool.
  ParallelBudgetScope budget(inner_budget_);
  QueuedScan first;
  std::vector<QueuedScan> extras;
  // The coalescing budget re-reads per dequeue: it is runtime-adjustable
  // (see set_coalesce_budget) and only shapes batching, never results.
  while (queue_.PopGroup(
      &first, &extras,
      static_cast<int64_t>(coalesce_budget_.load()) - 1)) {
    BatchRunner* runner = worker->runners.at(first.request.appliance).get();
    ServeGroup(runner, &first, &extras);
    // Crash safety rides the worker loop like idle eviction rides
    // CreateSession: no background thread, just an opportunistic sweep
    // between groups, CAS-claimed so one worker writes per interval.
    MaybeCheckpoint();
  }
}

void Service::ServeGroup(BatchRunner* runner, QueuedScan* first,
                         std::vector<QueuedScan>* extras) {
  // The group: head task plus the same-appliance extras PopGroup drained,
  // in admission order. Split it by kind — one-shot scans run one
  // coalesced ScanMany pass, session appends one coalesced AppendScanMany
  // pass, so distinct households' appends share GEMM batches with each
  // other (two appends of ONE session can't meet here: the session
  // serializer admits one at a time).
  std::vector<QueuedScan*> tasks;
  tasks.reserve(1 + extras->size());
  tasks.push_back(first);
  for (QueuedScan& extra : *extras) tasks.push_back(&extra);

  // Shed expired requests first — before the pre-scan hook and before any
  // feed work, so a dead deadline costs nothing but this comparison. One
  // clock read covers the group. Only one-shot scans carry deadlines
  // (Submit stamps them; session appends never do — see ScanRequest), so
  // shedding can't hole a session's series.
  const auto shed_now = std::chrono::steady_clock::now();
  std::vector<QueuedScan*> live;
  live.reserve(tasks.size());
  for (QueuedScan* task : tasks) {
    if (task->session == nullptr && task->deadline.has_value() &&
        shed_now >= *task->deadline) {
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      task->promise.set_value(Result<ScanResult>(Status::DeadlineExceeded(
          "deadline of " +
          std::to_string(task->request.deadline_seconds) +
          "s passed while request '" + task->request.household_id +
          "' was queued; shed without scanning")));
    } else {
      live.push_back(task);
    }
  }
  if (live.empty()) return;
  tasks.swap(live);

  std::vector<QueuedScan*> scans;
  std::vector<QueuedScan*> appends;
  for (QueuedScan* task : tasks) {
    (task->session != nullptr ? appends : scans).push_back(task);
  }

  // Scan inside try; fulfill promises outside, so each promise is resolved
  // exactly once whatever happens. Before this guard a throwing scan left
  // every promise of the group unfulfilled — the submitters blocked
  // forever on their futures — and unwound the worker thread for good.
  std::vector<ScanResult> scan_results;
  std::vector<ScanResult> append_results;
  Status failure = Status::OK();
  try {
    if (options_.fault_injector != nullptr) {
      for (const QueuedScan* task : tasks) {
        options_.fault_injector->OnScan(task->request.household_id);
      }
    }
    if (!scans.empty()) {
      std::vector<data::SeriesView> series;
      series.reserve(scans.size());
      for (const QueuedScan* task : scans) {
        series.push_back(RequestSeries(task->request));
      }
      // One shared feed phase for the whole group; per-request stitches
      // stay independent, so results match per-request scans bitwise.
      scan_results = runner->ScanMany(series);
    }
    if (!appends.empty()) {
      std::vector<SessionScanState*> states;
      std::vector<data::SeriesView> deltas;
      states.reserve(appends.size());
      deltas.reserve(appends.size());
      for (QueuedScan* task : appends) {
        states.push_back(&task->session->scan_state_);
        deltas.push_back(RequestSeries(task->request));
      }
      append_results = runner->AppendScanMany(states, deltas);
    }
    if (tasks.size() > 1) {
      coalesced_groups_.fetch_add(1, std::memory_order_relaxed);
      coalesced_requests_.fetch_add(static_cast<int64_t>(tasks.size()),
                                    std::memory_order_relaxed);
    }
  } catch (const std::exception& e) {
    failure = Status::Internal(std::string("scan failed: ") + e.what());
  } catch (...) {
    failure = Status::Internal("scan failed: unknown exception");
  }

  if (!failure.ok()) {
    // Appends never retry: the throwing scan may have half-updated their
    // sessions' stitch state, so a rerun could serve corrupt results.
    // Fail them and close the sessions (graceful degradation — the
    // caller re-creates or restores the stream).
    failed_.fetch_add(static_cast<int64_t>(appends.size()),
                      std::memory_order_relaxed);
    for (QueuedScan* task : appends) {
      // Close the session BEFORE the promise resolves (mirroring the
      // success path): a caller that wakes on the failed future must
      // already see the session closed.
      FailSession(task->session, failure);
      task->promise.set_value(Result<ScanResult>(failure));
    }
    // One-shot scans: a transient kInternal fault is retried within
    // RetryPolicy — re-enqueued at original priority with its original
    // admission time and deadline (an expired one is shed like any
    // other; the deadline is still honored across retries).
    std::vector<QueuedScan*> retriable;
    for (QueuedScan* task : scans) {
      ++task->attempts;
      if (task->attempts < options_.retry.max_attempts) {
        retriable.push_back(task);
        continue;
      }
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (task->attempts > 1) {
        retries_exhausted_.fetch_add(1, std::memory_order_relaxed);
      }
      task->promise.set_value(Result<ScanResult>(failure));
    }
    if (!retriable.empty()) {
      // Bounded exponential backoff, slept on THIS worker (the one that
      // saw the fault) before the re-enqueue: siblings keep serving, and
      // a flapping fault is not hammered at queue speed. Exponent from
      // the group's most-retried task.
      int attempts = 1;
      for (const QueuedScan* task : retriable) {
        attempts = std::max(attempts, task->attempts);
      }
      double backoff = options_.retry.initial_backoff_seconds;
      for (int k = 1; k < attempts; ++k) backoff *= 2.0;
      backoff = std::min(
          std::max(backoff, 0.0), options_.retry.max_backoff_seconds);
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      for (QueuedScan* task : retriable) {
        QueuedScan requeue = std::move(*task);
        // force: the task was already admitted once; bouncing its retry
        // off the capacity bound would turn backpressure into failure.
        Status admitted = queue_.Push(&requeue, nullptr, /*force=*/true);
        if (admitted.ok()) {
          retries_attempted_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Queue closed (shutdown): no more attempts are coming.
        failed_.fetch_add(1, std::memory_order_relaxed);
        retries_exhausted_.fetch_add(1, std::memory_order_relaxed);
        requeue.promise.set_value(Result<ScanResult>(failure));
      }
    }
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  const auto fulfill = [&](QueuedScan* task, ScanResult result) {
    result.latency_seconds =
        std::chrono::duration<double>(now - task->admitted).count();
    completed_.fetch_add(1, std::memory_order_relaxed);
    completed_by_priority_[static_cast<size_t>(task->request.priority)]
        .fetch_add(1, std::memory_order_relaxed);
    task->promise.set_value(std::move(result));
  };
  for (size_t i = 0; i < scans.size(); ++i) {
    fulfill(scans[i], std::move(scan_results[i]));
  }
  for (size_t i = 0; i < appends.size(); ++i) {
    QueuedScan* task = appends[i];
    session_appends_.fetch_add(1, std::memory_order_relaxed);
    appended_readings_.fetch_add(RequestSeries(task->request).size(),
                                 std::memory_order_relaxed);
    windows_saved_.fetch_add(
        append_results[i].windows_full - append_results[i].windows,
        std::memory_order_relaxed);
    // Commit the session (readings gauge, next parked append) BEFORE the
    // promise resolves: a caller that wakes on the future must see
    // session->readings() reflect this append. The task dies with the
    // group, so pin the session first.
    std::shared_ptr<Session> session = std::move(task->session);
    FinishAppend(session);
    fulfill(task, std::move(append_results[i]));
  }
}

std::future<Result<ScanResult>> Service::Reject(Status status) {
  rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
  std::promise<Result<ScanResult>> promise;
  std::future<Result<ScanResult>> future = promise.get_future();
  promise.set_value(Result<ScanResult>(std::move(status)));
  return future;
}

std::future<Result<ScanResult>> Service::Submit(ScanRequest request) {
  // Validate before touching the queue: malformed input must surface as a
  // Status, never reach a worker, and never abort.
  if (state_.load() != State::kRunning) {
    return Reject(Status::FailedPrecondition(
        state_.load() == State::kIdle ? "service is not started"
                                      : "service is shut down"));
  }
  if (request.appliance.empty()) {
    return Reject(
        Status::InvalidArgument("request has an empty appliance name"));
  }
  if (request.owned_series.has_value() && request.series.has_value()) {
    return Reject(Status::InvalidArgument(
        "request sets both series (borrowed) and owned_series"));
  }
  if (!request.owned_series.has_value() && !request.series.has_value()) {
    return Reject(Status::InvalidArgument("request has no series"));
  }
  // appliances_ is frozen once state_ is kRunning, so lock-free reads are
  // safe here.
  if (appliances_.find(request.appliance) == appliances_.end()) {
    return Reject(Status::NotFound("appliance '" + request.appliance +
                                   "' is not registered"));
  }
  if (request.deadline_seconds < 0.0) {
    return Reject(
        Status::InvalidArgument("request deadline_seconds must be >= 0"));
  }

  QueuedScan task;
  task.request = std::move(request);
  task.admitted = std::chrono::steady_clock::now();
  if (task.request.deadline_seconds > 0.0) {
    // Stamp the absolute expiry once, here: workers compare against it
    // without re-deriving from the (relative) request field.
    task.deadline =
        task.admitted +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(task.request.deadline_seconds));
  }
  std::future<Result<ScanResult>> future = task.promise.get_future();
  bool rejected_full = false;
  Status admitted = queue_.Push(&task, &rejected_full);
  if (!admitted.ok()) {
    // Push left the task (and its promise) with us; fail it in place. Not
    // routed through Reject: the future is already bound to this promise,
    // and a full queue is backpressure, not an invalid request.
    auto& counter = rejected_full ? rejected_backpressure_ : rejected_invalid_;
    counter.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_value(Result<ScanResult>(std::move(admitted)));
    return future;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::future<Result<ScanResult>> Service::Submit(std::string appliance,
                                                std::vector<float> series) {
  ScanRequest request;
  request.appliance = std::move(appliance);
  request.owned_series = std::move(series);
  return Submit(std::move(request));
}

Result<std::shared_ptr<Session>> Service::CreateSession(
    const std::string& appliance, SessionOptions options) {
  if (state_.load() != State::kRunning) {
    return Status::FailedPrecondition(
        state_.load() == State::kIdle ? "service is not started"
                                      : "service is shut down");
  }
  if (appliance.empty()) {
    return Status::InvalidArgument("appliance name must not be empty");
  }
  if (appliances_.find(appliance) == appliances_.end()) {
    return Status::NotFound("appliance '" + appliance +
                            "' is not registered");
  }
  if (options.max_pending_appends < 0) {
    return Status::InvalidArgument("max_pending_appends must be >= 0");
  }
  // Opportunistic sweep: a fleet that only ever opens sessions still
  // reclaims the ones whose households went silent.
  if (options_.session_idle_seconds > 0.0) {
    EvictIdleSessions(options_.session_idle_seconds);
  }
  std::string id =
      options.household_id.empty()
          ? "session-" + std::to_string(session_seq_.fetch_add(1) + 1)
          : options.household_id;
  // Session's ctor is private to Service, so make_shared cannot reach it;
  // the pointer lands in the shared_ptr on the same expression.
  // lint: new-ok(private ctor; immediately owned by shared_ptr)
  std::shared_ptr<Session> session(
      new Session(this, std::move(id), appliance, std::move(options)));
  {
    MutexLock lock(&sessions_mu_);
    if (!sessions_.emplace(session->id(), session).second) {
      return Status::InvalidArgument("session '" + session->id() +
                                     "' already exists");
    }
  }
  sessions_created_.fetch_add(1, std::memory_order_relaxed);
  return session;
}

std::future<Result<ScanResult>> Service::AppendReadings(
    const std::shared_ptr<Session>& session, std::vector<float> readings) {
  if (session == nullptr || session->service_ != this) {
    return Reject(Status::InvalidArgument(
        "session does not belong to this service"));
  }
  if (state_.load() != State::kRunning) {
    return Reject(Status::FailedPrecondition(
        state_.load() == State::kIdle ? "service is not started"
                                      : "service is shut down"));
  }
  QueuedScan task;
  task.request.household_id = session->id();
  task.request.appliance = session->appliance();
  task.request.owned_series = std::move(readings);
  task.session = session;
  task.admitted = std::chrono::steady_clock::now();
  std::future<Result<ScanResult>> future = task.promise.get_future();

  Session* raw = session.get();
  MutexLock lock(&raw->mu_);
  if (raw->closed_) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_value(Result<ScanResult>(Status::FailedPrecondition(
        "session '" + session->id() + "' is closed")));
    return future;
  }
  raw->last_active_ = std::chrono::steady_clock::now();
  if (raw->in_flight_) {
    // Same-session appends serialize: park behind the in-flight one; the
    // worker that finishes it hands the head of the park to the queue.
    if (static_cast<int64_t>(raw->pending_.size()) >=
        raw->options_.max_pending_appends) {
      rejected_backpressure_.fetch_add(1, std::memory_order_relaxed);
      task.promise.set_value(Result<ScanResult>(Status::FailedPrecondition(
          "session '" + session->id() +
          "' append backlog is full (backpressure, max " +
          std::to_string(raw->options_.max_pending_appends) + ")")));
      return future;
    }
    raw->pending_.push_back(std::move(task));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return future;
  }
  raw->in_flight_ = true;
  Status admitted = queue_.Push(&task, nullptr, /*force=*/true);
  if (!admitted.ok()) {
    // Shutdown closed the queue between the state check and here.
    raw->in_flight_ = false;
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_value(Result<ScanResult>(std::move(admitted)));
    return future;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

void Service::DrainPendingLocked(Session* session, const Status& status) {
  while (!session->pending_.empty()) {
    QueuedScan parked = std::move(session->pending_.front());
    session->pending_.pop_front();
    failed_.fetch_add(1, std::memory_order_relaxed);
    parked.promise.set_value(Result<ScanResult>(status));
  }
}

Status Service::CloseSession(const std::shared_ptr<Session>& session) {
  if (session == nullptr || session->service_ != this) {
    return Status::InvalidArgument("session does not belong to this service");
  }
  {
    MutexLock lock(&sessions_mu_);
    sessions_.erase(session->id());
  }
  Session* raw = session.get();
  MutexLock lock(&raw->mu_);
  if (raw->closed_) return Status::OK();  // idempotent
  raw->closed_ = true;
  sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  // An already-running append still completes (it was admitted); parked
  // ones were promised to a household that no longer exists, so they fail
  // now instead of scanning a closed session.
  DrainPendingLocked(raw,
                     Status::FailedPrecondition("session '" + session->id() +
                                                "' is closed"));
  return Status::OK();
}

void Service::FailSession(const std::shared_ptr<Session>& session,
                          const Status& failure) {
  {
    MutexLock lock(&sessions_mu_);
    sessions_.erase(session->id());
  }
  Session* raw = session.get();
  MutexLock lock(&raw->mu_);
  if (!raw->closed_) {
    raw->closed_ = true;
    sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  }
  DrainPendingLocked(raw, failure);
  raw->in_flight_ = false;
}

int64_t Service::EvictIdleSessions(double idle_seconds) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<Session>> evicted;
  {
    MutexLock map_lock(&sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      Session* session = it->second.get();
      bool evict = false;
      {
        MutexLock lock(&session->mu_);
        // Only truly quiescent sessions go: anything queued, parked, or
        // running keeps the session alive, so eviction can never yank
        // stitch state out from under a worker.
        evict = !session->closed_ && !session->in_flight_ &&
                session->pending_.empty() &&
                std::chrono::duration<double>(now - session->last_active_)
                        .count() >= idle_seconds;
        if (evict) session->closed_ = true;
      }
      if (evict) {
        evicted.push_back(std::move(it->second));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  sessions_evicted_.fetch_add(static_cast<int64_t>(evicted.size()),
                              std::memory_order_relaxed);
  return static_cast<int64_t>(evicted.size());
}

int64_t Service::live_sessions() const {
  MutexLock lock(&sessions_mu_);
  return static_cast<int64_t>(sessions_.size());
}

Result<std::shared_ptr<Session>> Service::GetSession(
    const std::string& id) const {
  MutexLock lock(&sessions_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no live session '" + id + "'");
  }
  return it->second;
}

std::string Service::CheckpointFile(const std::string& dir) {
  return dir + "/sessions.ckpt";
}

Status Service::CheckpointSessions(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("checkpoint directory must not be empty");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // writer surfaces errors
  std::vector<SessionSnapshot> snapshots;
  {
    MutexLock map_lock(&sessions_mu_);
    snapshots.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) {
      Session* raw = session.get();
      MutexLock lock(&raw->mu_);
      // Quiescent sessions only: an in-flight append may be mutating
      // scan_state_ on a worker right now. Reading it here is safe
      // because the worker that last wrote it locked mu_ afterwards
      // (FinishAppend), so holding mu_ with in_flight_ == false
      // happens-after the state commit. Skipped sessions are caught by
      // the next sweep — and by the Shutdown flush, which runs with the
      // workers joined, when every session is quiescent.
      if (raw->closed_ || raw->in_flight_) continue;
      SessionSnapshot snapshot;
      snapshot.id = raw->id_;
      snapshot.appliance = raw->appliance_;
      snapshot.max_pending_appends = raw->options_.max_pending_appends;
      snapshot.state = raw->scan_state_;
      snapshots.push_back(std::move(snapshot));
    }
  }
  CAMAL_RETURN_NOT_OK(WriteSessionCheckpoint(CheckpointFile(dir), snapshots,
                                             options_.fault_injector));
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<int64_t> Service::RestoreSessions(const std::string& dir) {
  if (state_.load() != State::kRunning) {
    return Status::FailedPrecondition(
        "RestoreSessions needs a running service (call Start first)");
  }
  const std::string path = CheckpointFile(dir);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return static_cast<int64_t>(0);  // fresh boot: nothing to restore
  }
  // Any malformed file — truncated, torn, bit-flipped, version-skewed —
  // surfaces here as the reader's Status: the caller degrades to fresh
  // sessions and the service keeps serving.
  CAMAL_ASSIGN_OR_RETURN(std::vector<SessionSnapshot> snapshots,
                         ReadSessionCheckpoint(path));
  const auto now = std::chrono::steady_clock::now();
  int64_t restored = 0;
  for (SessionSnapshot& snapshot : snapshots) {
    // Degrade per record, never reject the whole restore: an appliance
    // this deployment no longer registers, or an id a live session
    // already owns (the live session wins — it is newer by definition),
    // skips the record.
    if (appliances_.find(snapshot.appliance) == appliances_.end()) continue;
    SessionOptions options;
    options.household_id = snapshot.id;
    options.max_pending_appends = snapshot.max_pending_appends;
    // lint: new-ok(private ctor; immediately owned by shared_ptr)
    std::shared_ptr<Session> session(new Session(
        this, snapshot.id, snapshot.appliance, std::move(options)));
    session->scan_state_ = std::move(snapshot.state);
    {
      // Not yet published, but the annotations (rightly) demand mu_.
      MutexLock lock(&session->mu_);
      session->committed_readings_ = session->scan_state_.readings();
      session->last_active_ = now;
    }
    {
      MutexLock map_lock(&sessions_mu_);
      if (!sessions_.emplace(session->id(), session).second) continue;
    }
    ++restored;
  }
  sessions_restored_.fetch_add(restored, std::memory_order_relaxed);
  return restored;
}

void Service::MaybeCheckpoint() {
  if (options_.checkpoint_dir.empty() ||
      options_.checkpoint_interval_seconds <= 0.0) {
    return;
  }
  const int64_t now =
      std::chrono::steady_clock::now().time_since_epoch().count();
  const int64_t interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              options_.checkpoint_interval_seconds))
          .count();
  int64_t last = last_checkpoint_ticks_.load(std::memory_order_relaxed);
  if (now - last < interval) return;
  // CAS claims the sweep: the losing workers see the fresh timestamp and
  // go back to serving.
  if (!last_checkpoint_ticks_.compare_exchange_strong(
          last, now, std::memory_order_relaxed)) {
    return;
  }
  Status written = CheckpointSessions(options_.checkpoint_dir);
  if (!written.ok()) {
    // Degrade, don't crash serving: the failure is telemetry
    // (checkpoint_failures) and the next sweep tries again.
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Service::FinishAppend(const std::shared_ptr<Session>& session) {
  Session* raw = session.get();
  MutexLock lock(&raw->mu_);
  raw->committed_readings_ = raw->scan_state_.readings();
  raw->last_active_ = std::chrono::steady_clock::now();
  while (!raw->pending_.empty()) {
    QueuedScan next = std::move(raw->pending_.front());
    raw->pending_.pop_front();
    Status admitted = queue_.Push(&next, nullptr, /*force=*/true);
    if (admitted.ok()) return;  // still in flight; the next worker continues
    // Queue closed mid-stream (shutdown): this parked append and every
    // one behind it fail — they were never admitted to the queue.
    failed_.fetch_add(1, std::memory_order_relaxed);
    next.promise.set_value(Result<ScanResult>(admitted));
  }
  raw->in_flight_ = false;
}

void Service::Shutdown() {
  MutexLock lock(&lifecycle_mu_);
  if (state_.load() != State::kRunning) {
    // Never started (or already stopped): just refuse future use.
    state_.store(State::kStopped);
    return;
  }
  state_.store(State::kStopped);
  // Closing the queue wakes every worker; they drain the admitted backlog
  // first (Pop only returns false once closed AND empty), then exit.
  queue_.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Flush a final checkpoint while the sessions still exist: with the
  // workers joined every session is quiescent, so this snapshot is the
  // complete pre-shutdown state a restart restores from. Best-effort —
  // shutdown must finish even on a full disk.
  if (!options_.checkpoint_dir.empty()) {
    Status flushed = CheckpointSessions(options_.checkpoint_dir);
    if (!flushed.ok()) {
      checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // With the workers joined, no append is in flight and (FinishAppend
  // drained against the closed queue) none is parked; close whatever
  // sessions remain so handles read closed and late appends fail fast.
  std::map<std::string, std::shared_ptr<Session>> sessions;
  {
    MutexLock sessions_lock(&sessions_mu_);
    sessions.swap(sessions_);
  }
  for (auto& [id, session] : sessions) {
    Session* raw = session.get();
    MutexLock session_lock(&raw->mu_);
    if (!raw->closed_) {
      raw->closed_ = true;
      sessions_closed_.fetch_add(1, std::memory_order_relaxed);
    }
    DrainPendingLocked(raw,
                       Status::FailedPrecondition("service is shut down"));
    raw->in_flight_ = false;
  }
}

ServiceStats Service::stats() const {
  ServiceStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  stats.rejected_backpressure =
      rejected_backpressure_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  stats.completed_high =
      completed_by_priority_[0].load(std::memory_order_relaxed);
  stats.completed_normal =
      completed_by_priority_[1].load(std::memory_order_relaxed);
  stats.completed_low =
      completed_by_priority_[2].load(std::memory_order_relaxed);
  stats.coalesced_groups = coalesced_groups_.load(std::memory_order_relaxed);
  stats.coalesced_requests =
      coalesced_requests_.load(std::memory_order_relaxed);
  stats.sessions_created = sessions_created_.load(std::memory_order_relaxed);
  stats.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  stats.sessions_evicted = sessions_evicted_.load(std::memory_order_relaxed);
  stats.live_sessions = live_sessions();
  stats.session_appends = session_appends_.load(std::memory_order_relaxed);
  stats.appended_readings =
      appended_readings_.load(std::memory_order_relaxed);
  stats.incremental_windows_saved =
      windows_saved_.load(std::memory_order_relaxed);
  stats.retries_attempted =
      retries_attempted_.load(std::memory_order_relaxed);
  stats.retries_exhausted =
      retries_exhausted_.load(std::memory_order_relaxed);
  stats.sessions_restored =
      sessions_restored_.load(std::memory_order_relaxed);
  stats.checkpoints_written =
      checkpoints_written_.load(std::memory_order_relaxed);
  stats.checkpoint_failures =
      checkpoint_failures_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace camal::serve
