#ifndef CAMAL_SERVE_WINDOW_STREAM_H_
#define CAMAL_SERVE_WINDOW_STREAM_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace camal::serve {

/// Slicing/batching policy of a household scan.
struct WindowStreamOptions {
  /// Model input length L (must match the ensemble's training window).
  int64_t window_length = 128;
  /// Hop between consecutive windows; stride < window_length overlaps them
  /// so every timestamp is voted on by several windows.
  int64_t stride = 64;
  /// Windows per emitted batch.
  int64_t batch_size = 32;
  /// Aggregate Watts are divided by this before entering the model; must
  /// match data::BuildOptions::input_scale used at training time.
  float input_scale = 1000.0f;
};

/// Streams a household's aggregate series as batches of overlapping,
/// scaled windows — the feeder of the batched inference runtime.
///
/// Offsets advance by `stride`; a final tail window aligned to the series
/// end is added when the regular grid would leave trailing samples
/// uncovered. Series shorter than one window yield nothing. Missing
/// readings (NaN) are zero-filled — serving cannot drop windows the way
/// training does.
class WindowStream {
 public:
  /// \p series is borrowed and must outlive the stream.
  WindowStream(const std::vector<float>* series, WindowStreamOptions options);

  /// Total windows this stream will emit.
  int64_t NumWindows() const {
    return static_cast<int64_t>(offsets_.size());
  }

  /// All window start offsets, in emission order.
  const std::vector<int64_t>& offsets() const { return offsets_; }

  /// Fills \p inputs with the next (B, 1, L) batch (B <= batch_size) and
  /// \p batch_offsets with the B series offsets. Returns B; 0 when
  /// exhausted. \p inputs is reused in place when it already has the
  /// batch's shape (only the final short batch reallocates), so callers
  /// should pass the same tensor every iteration.
  int64_t NextBatch(nn::Tensor* inputs, std::vector<int64_t>* batch_offsets);

  /// Rewinds to the first window.
  void Reset() { next_ = 0; }

  const WindowStreamOptions& options() const { return options_; }

 private:
  const std::vector<float>* series_;
  WindowStreamOptions options_;
  std::vector<int64_t> offsets_;
  size_t next_ = 0;
};

}  // namespace camal::serve

#endif  // CAMAL_SERVE_WINDOW_STREAM_H_
