#ifndef CAMAL_SERVE_WINDOW_STREAM_H_
#define CAMAL_SERVE_WINDOW_STREAM_H_

#include <cstdint>
#include <vector>

#include "data/series_view.h"
#include "nn/tensor.h"

namespace camal::serve {

/// Slicing/batching policy of a household scan.
struct WindowStreamOptions {
  /// Model input length L (must match the ensemble's training window).
  int64_t window_length = 128;
  /// Hop between consecutive windows; stride < window_length overlaps them
  /// so every timestamp is voted on by several windows.
  int64_t stride = 64;
  /// Windows per emitted batch.
  int64_t batch_size = 32;
  /// Aggregate Watts are divided by this before entering the model; must
  /// match data::BuildOptions::input_scale used at training time.
  float input_scale = 1000.0f;
};

/// Window start offsets for a series of \p len samples under \p options:
/// the stride grid, plus a tail window aligned to the series end when the
/// grid would leave trailing samples uncovered (and only then — a grid
/// whose last window already touches the end gets no duplicate). Series
/// shorter than one window yield no offsets.
std::vector<int64_t> ComputeWindowOffsets(int64_t len,
                                          const WindowStreamOptions& options);

/// Streams a household's aggregate series as batches of overlapping,
/// scaled windows — the feeder of the batched inference runtime.
///
/// Offsets advance by `stride`; a final tail window aligned to the series
/// end is added when the regular grid would leave trailing samples
/// uncovered. Series shorter than one window yield nothing. Missing
/// readings (NaN) are zero-filled — serving cannot drop windows the way
/// training does.
class WindowStream {
 public:
  /// \p series is a non-owning view; its backing storage (a vector, a
  /// mapped ColumnStore channel, ...) must outlive the stream.
  WindowStream(data::SeriesView series, WindowStreamOptions options);

  /// Total windows this stream will emit.
  int64_t NumWindows() const {
    return static_cast<int64_t>(offsets_.size());
  }

  /// All window start offsets, in emission order.
  const std::vector<int64_t>& offsets() const { return offsets_; }

  /// Fills \p inputs with the next (B, 1, L) batch (B <= batch_size) and
  /// \p batch_offsets with the B series offsets. Returns B; 0 when
  /// exhausted. \p inputs is reused in place when it already has the
  /// batch's shape (only the final short batch reallocates), so callers
  /// should pass the same tensor every iteration.
  int64_t NextBatch(nn::Tensor* inputs, std::vector<int64_t>* batch_offsets);

  /// Rewinds to the first window.
  void Reset() { next_ = 0; }

  const WindowStreamOptions& options() const { return options_; }

 private:
  data::SeriesView series_;
  WindowStreamOptions options_;
  std::vector<int64_t> offsets_;
  size_t next_ = 0;
};

/// Identifies one window inside a coalesced multi-series batch: which
/// series it was cut from and where it starts there.
struct WindowRef {
  int32_t series = 0;  ///< index into the stream's series list.
  int64_t offset = 0;  ///< window start offset within that series.
};

/// Multi-series counterpart of WindowStream: emits the windows of several
/// series as one stream of shared batches, so a single forward pass can
/// carry windows cut from different households. Windows are ordered
/// series-by-series (series 0's windows first, then series 1's, ...), each
/// series windowed exactly as WindowStream would window it alone — same
/// offsets, same zero-fill, same scaling — so per-window model inputs are
/// bit-for-bit what an uncoalesced scan feeds. Batches simply keep filling
/// across series boundaries instead of flushing short.
class MultiWindowStream {
 public:
  /// \p series entries are non-owning views whose backing storage must
  /// outlive the stream. All series share one slicing policy.
  MultiWindowStream(std::vector<data::SeriesView> series,
                    WindowStreamOptions options);

  /// Explicit-window variant, the feeder of incremental session rescans:
  /// emits exactly \p refs, in the given order, instead of every window
  /// of every series. Each ref must address a series in \p series and fit
  /// inside it (offset >= 0, offset + window_length <= size). Rows fill
  /// through the same path as the full streams, so a window's model input
  /// is bit-for-bit independent of which stream variant cut it.
  MultiWindowStream(std::vector<data::SeriesView> series,
                    WindowStreamOptions options, std::vector<WindowRef> refs);

  /// Total windows across every series.
  int64_t NumWindows() const { return static_cast<int64_t>(refs_.size()); }

  /// Windows contributed by series \p s.
  int64_t NumWindowsOf(int32_t s) const {
    return windows_per_series_[static_cast<size_t>(s)];
  }

  /// Fills \p inputs with the next (B, 1, L) batch (B <= batch_size) and
  /// \p refs with the B (series, offset) pairs. Returns B; 0 when
  /// exhausted. Same tensor-reuse contract as WindowStream::NextBatch.
  int64_t NextBatch(nn::Tensor* inputs, std::vector<WindowRef>* refs);

  /// Rewinds to the first window.
  void Reset() { next_ = 0; }

  const WindowStreamOptions& options() const { return options_; }

 private:
  std::vector<data::SeriesView> series_;
  WindowStreamOptions options_;
  std::vector<WindowRef> refs_;  ///< all windows, series-major order.
  std::vector<int64_t> windows_per_series_;
  size_t next_ = 0;
};

}  // namespace camal::serve

#endif  // CAMAL_SERVE_WINDOW_STREAM_H_
