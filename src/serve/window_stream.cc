#include "serve/window_stream.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "data/time_series.h"
#include "data/window.h"

namespace camal::serve {
namespace {

void CheckOptions(const WindowStreamOptions& options) {
  CAMAL_CHECK_GT(options.window_length, 0);
  CAMAL_CHECK_GT(options.stride, 0);
  CAMAL_CHECK_GT(options.batch_size, 0);
  CAMAL_CHECK_GT(options.input_scale, 0.0f);
}

/// Copies the window at \p off into \p dst, zero-filling missing readings
/// and dividing by the input scale — the one row-fill used by both the
/// single- and multi-series streams, so a window's model input is
/// bit-for-bit identical however it is batched.
void FillWindowRow(const float* series, int64_t off, int64_t l,
                   float inv_scale, float* dst) {
  for (int64_t t = 0; t < l; ++t) {
    const float v = series[off + t];
    dst[t] = data::IsMissing(v) ? 0.0f : v * inv_scale;
  }
}

/// Reuses the caller's tensor when its shape already matches (b, 1, l);
/// otherwise swaps in fresh uninitialized storage (every element is
/// written by the fill loops).
void EnsureBatchShape(nn::Tensor* inputs, int64_t b, int64_t l) {
  if (inputs->ndim() != 3 || inputs->dim(0) != b || inputs->dim(1) != 1 ||
      inputs->dim(2) != l) {
    *inputs = nn::Tensor::Uninitialized({b, 1, l});
  }
}

}  // namespace

std::vector<int64_t> ComputeWindowOffsets(
    int64_t len, const WindowStreamOptions& options) {
  const int64_t l = options.window_length;
  const int64_t grid = data::GridWindowCount(len, l, options.stride);
  std::vector<int64_t> offsets;
  offsets.reserve(static_cast<size_t>(grid) + 1);
  for (int64_t k = 0; k < grid; ++k) {
    offsets.push_back(k * options.stride);
  }
  // Tail window: align to the series end so trailing samples the stride
  // grid skipped still get covered. When the last grid window already
  // ends at the series end ((len - l) % stride == 0) no tail is added —
  // a duplicate offset would double that window's stitch votes. The same
  // data::GridLeavesTail predicate drives the incremental session plan,
  // so the streaming and one-shot window sets can never disagree.
  if (data::GridLeavesTail(len, l, options.stride)) {
    offsets.push_back(len - l);
  }
  return offsets;
}

WindowStream::WindowStream(data::SeriesView series,
                           WindowStreamOptions options)
    : series_(series), options_(options) {
  CheckOptions(options_);
  offsets_ = ComputeWindowOffsets(series_.size(), options_);
}

int64_t WindowStream::NextBatch(nn::Tensor* inputs,
                                std::vector<int64_t>* batch_offsets) {
  CAMAL_CHECK(inputs != nullptr);
  CAMAL_CHECK(batch_offsets != nullptr);
  batch_offsets->clear();
  const int64_t remaining = NumWindows() - static_cast<int64_t>(next_);
  const int64_t b = std::min<int64_t>(options_.batch_size, remaining);
  if (b <= 0) return 0;
  const int64_t l = options_.window_length;
  EnsureBatchShape(inputs, b, l);
  const float inv_scale = 1.0f / options_.input_scale;
  const float* series = series_.data();
  for (int64_t i = 0; i < b; ++i) {
    const int64_t off = offsets_[next_++];
    batch_offsets->push_back(off);
    FillWindowRow(series, off, l, inv_scale, inputs->data() + i * l);
  }
  return b;
}

MultiWindowStream::MultiWindowStream(std::vector<data::SeriesView> series,
                                     WindowStreamOptions options)
    : series_(std::move(series)), options_(options) {
  CheckOptions(options_);
  windows_per_series_.reserve(series_.size());
  for (size_t s = 0; s < series_.size(); ++s) {
    const std::vector<int64_t> offsets =
        ComputeWindowOffsets(series_[s].size(), options_);
    windows_per_series_.push_back(static_cast<int64_t>(offsets.size()));
    for (int64_t off : offsets) {
      refs_.push_back(WindowRef{static_cast<int32_t>(s), off});
    }
  }
}

MultiWindowStream::MultiWindowStream(std::vector<data::SeriesView> series,
                                     WindowStreamOptions options,
                                     std::vector<WindowRef> refs)
    : series_(std::move(series)), options_(options), refs_(std::move(refs)) {
  CheckOptions(options_);
  windows_per_series_.assign(series_.size(), 0);
  const int64_t l = options_.window_length;
  for (const WindowRef& ref : refs_) {
    CAMAL_CHECK_GE(ref.series, 0);
    CAMAL_CHECK_LT(static_cast<size_t>(ref.series), series_.size());
    CAMAL_CHECK_GE(ref.offset, 0);
    CAMAL_CHECK_LE(ref.offset + l,
                   series_[static_cast<size_t>(ref.series)].size());
    ++windows_per_series_[static_cast<size_t>(ref.series)];
  }
}

int64_t MultiWindowStream::NextBatch(nn::Tensor* inputs,
                                     std::vector<WindowRef>* refs) {
  CAMAL_CHECK(inputs != nullptr);
  CAMAL_CHECK(refs != nullptr);
  refs->clear();
  const int64_t remaining = NumWindows() - static_cast<int64_t>(next_);
  const int64_t b = std::min<int64_t>(options_.batch_size, remaining);
  if (b <= 0) return 0;
  const int64_t l = options_.window_length;
  EnsureBatchShape(inputs, b, l);
  const float inv_scale = 1.0f / options_.input_scale;
  for (int64_t i = 0; i < b; ++i) {
    const WindowRef ref = refs_[next_++];
    refs->push_back(ref);
    FillWindowRow(series_[static_cast<size_t>(ref.series)].data(), ref.offset,
                  l, inv_scale, inputs->data() + i * l);
  }
  return b;
}

}  // namespace camal::serve
