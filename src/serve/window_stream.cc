#include "serve/window_stream.h"

#include <algorithm>

#include "common/check.h"
#include "data/time_series.h"

namespace camal::serve {

WindowStream::WindowStream(const std::vector<float>* series,
                           WindowStreamOptions options)
    : series_(series), options_(options) {
  CAMAL_CHECK(series != nullptr);
  CAMAL_CHECK_GT(options_.window_length, 0);
  CAMAL_CHECK_GT(options_.stride, 0);
  CAMAL_CHECK_GT(options_.batch_size, 0);
  CAMAL_CHECK_GT(options_.input_scale, 0.0f);
  const int64_t len = static_cast<int64_t>(series->size());
  const int64_t l = options_.window_length;
  for (int64_t off = 0; off + l <= len; off += options_.stride) {
    offsets_.push_back(off);
  }
  // Tail window: align to the series end so trailing samples the stride
  // grid skipped still get covered.
  if (len >= l && (offsets_.empty() || offsets_.back() + l < len)) {
    offsets_.push_back(len - l);
  }
}

int64_t WindowStream::NextBatch(nn::Tensor* inputs,
                                std::vector<int64_t>* batch_offsets) {
  CAMAL_CHECK(inputs != nullptr);
  CAMAL_CHECK(batch_offsets != nullptr);
  batch_offsets->clear();
  const int64_t remaining = NumWindows() - static_cast<int64_t>(next_);
  const int64_t b = std::min<int64_t>(options_.batch_size, remaining);
  if (b <= 0) return 0;
  const int64_t l = options_.window_length;
  // Reuse the caller's tensor when the shape already matches — all batches
  // but the final short one are (batch_size, 1, L), so a scan loop touches
  // the allocator once. Every element is written below; skip the
  // zero-fill when fresh storage is needed.
  if (inputs->ndim() != 3 || inputs->dim(0) != b || inputs->dim(1) != 1 ||
      inputs->dim(2) != l) {
    *inputs = nn::Tensor::Uninitialized({b, 1, l});
  }
  const float inv_scale = 1.0f / options_.input_scale;
  const float* series = series_->data();
  for (int64_t i = 0; i < b; ++i) {
    const int64_t off = offsets_[next_++];
    batch_offsets->push_back(off);
    float* dst = inputs->data() + i * l;
    for (int64_t t = 0; t < l; ++t) {
      const float v = series[off + t];
      dst[t] = data::IsMissing(v) ? 0.0f : v * inv_scale;
    }
  }
  return b;
}

}  // namespace camal::serve
