#include "serve/batch_runner.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "core/power_estimation.h"
#include "data/time_series.h"

namespace camal::serve {

BatchRunner::BatchRunner(core::CamalEnsemble* ensemble,
                         BatchRunnerOptions options)
    : ensemble_(ensemble),
      localizer_(ensemble, options.localizer),
      options_(options) {
  CAMAL_CHECK(ensemble != nullptr);
  CAMAL_CHECK_GE(options_.appliance_avg_power_w, 0.0f);
}

ScanResult BatchRunner::Scan(const std::vector<float>& aggregate_watts) {
  const int64_t len = static_cast<int64_t>(aggregate_watts.size());
  const int64_t l = options_.stream.window_length;
  ScanResult result;
  result.detection = nn::Tensor({len});
  result.status = nn::Tensor({len});
  result.power = nn::Tensor({len});
  if (len == 0) return result;

  // A series shorter than one window is left-padded with zeros to a single
  // window (zero is the stream's missing-reading fill) so short households
  // still get real model predictions instead of all-zero output. The pad
  // occupies [0, pad) of the scanned series; stitched outputs are shifted
  // back by `pad` below.
  const std::vector<float>* scan_series = &aggregate_watts;
  std::vector<float> padded;
  int64_t pad = 0;
  if (len < l) {
    pad = l - len;
    padded.assign(static_cast<size_t>(l), 0.0f);
    std::copy(aggregate_watts.begin(), aggregate_watts.end(),
              padded.begin() + static_cast<size_t>(pad));
    scan_series = &padded;
  }
  const int64_t scan_len = len + pad;

  WindowStream stream(scan_series, options_.stream);
  prob_sum_.assign(static_cast<size_t>(scan_len), 0.0f);
  cover_.assign(static_cast<size_t>(scan_len), 0);
  on_votes_.assign(static_cast<size_t>(scan_len), 0);

  Stopwatch watch;
  int64_t b = 0;
  while ((b = stream.NextBatch(&batch_, &batch_offsets_)) > 0) {
    core::LocalizationResult loc = localizer_.Localize(batch_);
    for (int64_t i = 0; i < b; ++i) {
      const int64_t off = batch_offsets_[static_cast<size_t>(i)];
      const float p = loc.probabilities.at(i);
      for (int64_t t = 0; t < l; ++t) {
        prob_sum_[static_cast<size_t>(off + t)] += p;
        ++cover_[static_cast<size_t>(off + t)];
        if (loc.status.at2(i, t) > 0.5f) {
          ++on_votes_[static_cast<size_t>(off + t)];
        }
      }
    }
    result.windows += b;
  }
  result.seconds = watch.ElapsedSeconds();

  // Stitch votes into per-timestamp series, dropping the synthetic pad.
  for (int64_t t = 0; t < len; ++t) {
    const size_t s = static_cast<size_t>(t + pad);
    const int32_t c = cover_[s];
    if (c == 0) continue;
    result.detection.at(t) = prob_sum_[s] / static_cast<float>(c);
    result.status.at(t) = 2 * on_votes_[s] > c ? 1.0f : 0.0f;
  }

  // §IV-C power estimation over the stitched status (missing readings act
  // as zero aggregate, matching the stream's zero-fill).
  nn::Tensor watts({1, len});
  for (int64_t t = 0; t < len; ++t) {
    const float v = aggregate_watts[static_cast<size_t>(t)];
    watts.at(t) = data::IsMissing(v) ? 0.0f : v;
  }
  result.power =
      core::EstimatePower(result.status.Reshape({1, len}), watts,
                          options_.appliance_avg_power_w)
          .Reshape({len});
  return result;
}

}  // namespace camal::serve
