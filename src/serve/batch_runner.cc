#include "serve/batch_runner.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "core/power_estimation.h"
#include "data/time_series.h"

namespace camal::serve {

BatchRunner::BatchRunner(core::CamalEnsemble* ensemble,
                         BatchRunnerOptions options)
    : ensemble_(ensemble),
      localizer_(ensemble, options.localizer),
      options_(options) {
  CAMAL_CHECK(ensemble != nullptr);
  CAMAL_CHECK_GE(options_.appliance_avg_power_w, 0.0f);
}

const std::vector<float>* BatchRunner::PrepareSeries(
    const std::vector<float>& series, SeriesState* state, ScanResult* result) {
  const int64_t len = static_cast<int64_t>(series.size());
  const int64_t l = options_.stream.window_length;
  state->len = len;
  state->pad = 0;
  result->detection = nn::Tensor({len});
  result->status = nn::Tensor({len});
  result->power = nn::Tensor({len});
  if (len == 0) return nullptr;

  // A series shorter than one window is left-padded with zeros to a single
  // window (zero is the stream's missing-reading fill) so short households
  // still get real model predictions instead of all-zero output. The pad
  // occupies [0, pad) of the scanned series; stitched outputs are shifted
  // back by `pad` in FinalizeSeries.
  const std::vector<float>* scan_series = &series;
  if (len < l) {
    state->pad = l - len;
    state->padded.assign(static_cast<size_t>(l), 0.0f);
    std::copy(series.begin(), series.end(),
              state->padded.begin() + static_cast<size_t>(state->pad));
    scan_series = &state->padded;
  }
  const size_t scan_len = static_cast<size_t>(len + state->pad);
  state->prob_sum.assign(scan_len, 0.0f);
  state->cover.assign(scan_len, 0);
  state->on_votes.assign(scan_len, 0);
  return scan_series;
}

void BatchRunner::StitchBatch(const core::LocalizationResult& loc,
                              const std::vector<WindowRef>& refs,
                              int64_t batch,
                              const std::vector<int32_t>& feed_to_state,
                              std::vector<ScanResult>* results) {
  const int64_t l = options_.stream.window_length;
  for (int64_t i = 0; i < batch; ++i) {
    const WindowRef ref = refs[static_cast<size_t>(i)];
    const size_t si =
        static_cast<size_t>(feed_to_state[static_cast<size_t>(ref.series)]);
    SeriesState& state = states_[si];
    const float p = loc.probabilities.at(i);
    for (int64_t t = 0; t < l; ++t) {
      const size_t s = static_cast<size_t>(ref.offset + t);
      state.prob_sum[s] += p;
      ++state.cover[s];
      if (loc.status.at2(i, t) > 0.5f) ++state.on_votes[s];
    }
    ++(*results)[si].windows;
  }
}

void BatchRunner::FinalizeSeries(const std::vector<float>& aggregate_watts,
                                 const SeriesState& state,
                                 ScanResult* result) {
  const int64_t len = state.len;
  if (len == 0) return;

  // Stitch votes into per-timestamp series, dropping the synthetic pad.
  for (int64_t t = 0; t < len; ++t) {
    const size_t s = static_cast<size_t>(t + state.pad);
    const int32_t c = state.cover[s];
    if (c == 0) continue;
    result->detection.at(t) = state.prob_sum[s] / static_cast<float>(c);
    result->status.at(t) = 2 * state.on_votes[s] > c ? 1.0f : 0.0f;
  }

  // §IV-C power estimation over the stitched status. Missing readings
  // carry no observed aggregate: they enter EstimatePower zero-filled and
  // the estimate is forced to 0 afterwards, so a voted-ON status at a NaN
  // timestamp can never report P_a-scale phantom power, whatever clamp
  // the estimator applies.
  nn::Tensor watts({1, len});
  for (int64_t t = 0; t < len; ++t) {
    const float v = aggregate_watts[static_cast<size_t>(t)];
    watts.at(t) = data::IsMissing(v) ? 0.0f : v;
  }
  result->power =
      core::EstimatePower(result->status.Reshape({1, len}), watts,
                          options_.appliance_avg_power_w)
          .Reshape({len});
  for (int64_t t = 0; t < len; ++t) {
    if (data::IsMissing(aggregate_watts[static_cast<size_t>(t)])) {
      result->power.at(t) = 0.0f;
    }
  }
}

std::vector<ScanResult> BatchRunner::ScanMany(
    const std::vector<const std::vector<float>*>& series) {
  const size_t n = series.size();
  std::vector<ScanResult> results(n);
  // resize keeps existing elements, so their vote buffers' capacity is
  // reused across scans.
  states_.resize(std::max(states_.size(), n));

  // Phase 1 setup: per-series stitch state, plus the feed list of
  // non-empty (possibly padded) series for the shared window stream.
  std::vector<const std::vector<float>*> feed;
  std::vector<int32_t> feed_to_state;
  feed.reserve(n);
  feed_to_state.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    CAMAL_CHECK(series[i] != nullptr);
    const std::vector<float>* scan_series =
        PrepareSeries(*series[i], &states_[i], &results[i]);
    if (scan_series == nullptr) continue;  // empty: all-zero result
    feed.push_back(scan_series);
    feed_to_state.push_back(static_cast<int32_t>(i));
  }
  if (feed.empty()) return results;

  // Feed phase: every series' windows through shared GEMM batches —
  // batches fill across series boundaries, so the last windows of one
  // household share a forward pass with the first of the next.
  MultiWindowStream stream(std::move(feed), options_.stream);
  Stopwatch watch;
  int64_t b = 0;
  while ((b = stream.NextBatch(&batch_, &batch_refs_)) > 0) {
    core::LocalizationResult loc = localizer_.Localize(batch_);
    StitchBatch(loc, batch_refs_, b, feed_to_state, &results);
  }
  const double seconds = watch.ElapsedSeconds();

  // Stitch phase: each series finalizes independently. The pass was
  // shared, so each result reports its wall time (see ScanResult docs).
  for (size_t i = 0; i < n; ++i) {
    results[i].seconds = seconds;
    FinalizeSeries(*series[i], states_[i], &results[i]);
  }
  return results;
}

ScanResult BatchRunner::Scan(const std::vector<float>& aggregate_watts) {
  // A lone scan is the one-series coalesced scan: MultiWindowStream over a
  // single series batches exactly like WindowStream, so this is the same
  // computation Scan always did.
  std::vector<ScanResult> results = ScanMany({&aggregate_watts});
  return std::move(results.front());
}

}  // namespace camal::serve
