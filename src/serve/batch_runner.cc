#include "serve/batch_runner.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "core/power_estimation.h"
#include "data/time_series.h"

namespace camal::serve {

BatchRunner::BatchRunner(core::CamalEnsemble* ensemble,
                         BatchRunnerOptions options)
    : ensemble_(ensemble),
      localizer_(ensemble, options.localizer),
      options_(options) {
  CAMAL_CHECK(ensemble != nullptr);
  CAMAL_CHECK_GE(options_.appliance_avg_power_w, 0.0f);
}

ScanResult BatchRunner::Scan(const std::vector<float>& aggregate_watts) {
  const int64_t len = static_cast<int64_t>(aggregate_watts.size());
  const int64_t l = options_.stream.window_length;
  ScanResult result;
  result.detection = nn::Tensor({len});
  result.status = nn::Tensor({len});
  result.power = nn::Tensor({len});
  if (len < l) return result;

  WindowStream stream(&aggregate_watts, options_.stream);
  std::vector<float> prob_sum(static_cast<size_t>(len), 0.0f);
  std::vector<int32_t> cover(static_cast<size_t>(len), 0);
  std::vector<int32_t> on_votes(static_cast<size_t>(len), 0);

  Stopwatch watch;
  nn::Tensor batch;
  std::vector<int64_t> offsets;
  int64_t b = 0;
  while ((b = stream.NextBatch(&batch, &offsets)) > 0) {
    core::LocalizationResult loc = localizer_.Localize(batch);
    for (int64_t i = 0; i < b; ++i) {
      const int64_t off = offsets[static_cast<size_t>(i)];
      const float p = loc.probabilities.at(i);
      for (int64_t t = 0; t < l; ++t) {
        prob_sum[static_cast<size_t>(off + t)] += p;
        ++cover[static_cast<size_t>(off + t)];
        if (loc.status.at2(i, t) > 0.5f) {
          ++on_votes[static_cast<size_t>(off + t)];
        }
      }
    }
    result.windows += b;
  }
  result.seconds = watch.ElapsedSeconds();

  // Stitch votes into per-timestamp series. Timestamps no window covers
  // (possible only when len < window) stay zero.
  for (int64_t t = 0; t < len; ++t) {
    const int32_t c = cover[static_cast<size_t>(t)];
    if (c == 0) continue;
    result.detection.at(t) = prob_sum[static_cast<size_t>(t)] /
                             static_cast<float>(c);
    result.status.at(t) = 2 * on_votes[static_cast<size_t>(t)] > c ? 1.0f
                                                                   : 0.0f;
  }

  // §IV-C power estimation over the stitched status (missing readings act
  // as zero aggregate, matching the stream's zero-fill).
  nn::Tensor watts({1, len});
  for (int64_t t = 0; t < len; ++t) {
    const float v = aggregate_watts[static_cast<size_t>(t)];
    watts.at(t) = data::IsMissing(v) ? 0.0f : v;
  }
  result.power =
      core::EstimatePower(result.status.Reshape({1, len}), watts,
                          options_.appliance_avg_power_w)
          .Reshape({len});
  return result;
}

}  // namespace camal::serve
