#include "serve/batch_runner.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "core/power_estimation.h"
#include "data/time_series.h"
#include "data/window.h"

namespace camal::serve {

BatchRunner::BatchRunner(core::CamalEnsemble* ensemble,
                         BatchRunnerOptions options)
    : ensemble_(ensemble),
      localizer_(ensemble, options.localizer),
      options_(options) {
  CAMAL_CHECK(ensemble != nullptr);
  CAMAL_CHECK_GE(options_.appliance_avg_power_w, 0.0f);
}

Status BatchRunner::ValidateOptions(const BatchRunnerOptions& options) {
  if (options.stream.window_length <= 0) {
    return Status::InvalidArgument("window_length must be positive");
  }
  if (options.stream.stride <= 0) {
    return Status::InvalidArgument("stride must be positive");
  }
  if (options.stream.batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (!(options.stream.input_scale > 0.0f)) {
    return Status::InvalidArgument("input_scale must be positive");
  }
  if (options.appliance_avg_power_w < 0.0f) {
    return Status::InvalidArgument(
        "appliance_avg_power_w must be non-negative");
  }
  return Status::OK();
}

data::SeriesView BatchRunner::PrepareSeries(data::SeriesView series,
                                            SeriesState* state,
                                            ScanResult* result) {
  const int64_t len = series.size();
  const int64_t l = options_.stream.window_length;
  state->len = len;
  state->pad = 0;
  result->detection = nn::Tensor({len});
  result->status = nn::Tensor({len});
  result->power = nn::Tensor({len});
  if (len == 0) return data::SeriesView();

  // A series shorter than one window is left-padded with zeros to a single
  // window (zero is the stream's missing-reading fill) so short households
  // still get real model predictions instead of all-zero output. The pad
  // occupies [0, pad) of the scanned series; stitched outputs are shifted
  // back by `pad` in FinalizeSeries.
  data::SeriesView scan_series = series;
  if (len < l) {
    state->pad = l - len;
    state->padded.assign(static_cast<size_t>(l), 0.0f);
    std::copy(series.begin(), series.end(),
              state->padded.begin() + static_cast<size_t>(state->pad));
    scan_series = data::SeriesView(state->padded);
  }
  const size_t scan_len = static_cast<size_t>(len + state->pad);
  state->prob_sum.assign(scan_len, 0.0f);
  state->cover.assign(scan_len, 0);
  state->on_votes.assign(scan_len, 0);
  return scan_series;
}

void BatchRunner::StitchBatch(const core::LocalizationResult& loc,
                              const std::vector<WindowRef>& refs,
                              int64_t batch,
                              const std::vector<int32_t>& feed_to_state,
                              std::vector<ScanResult>* results) {
  const int64_t l = options_.stream.window_length;
  for (int64_t i = 0; i < batch; ++i) {
    const WindowRef ref = refs[static_cast<size_t>(i)];
    const size_t si =
        static_cast<size_t>(feed_to_state[static_cast<size_t>(ref.series)]);
    SeriesState& state = states_[si];
    const float p = loc.probabilities.at(i);
    for (int64_t t = 0; t < l; ++t) {
      const size_t s = static_cast<size_t>(ref.offset + t);
      state.prob_sum[s] += p;
      ++state.cover[s];
      if (loc.status.at2(i, t) > 0.5f) ++state.on_votes[s];
    }
    ++(*results)[si].windows;
  }
}

void BatchRunner::FinalizeSeries(data::SeriesView aggregate_watts,
                                 const SeriesState& state,
                                 ScanResult* result) {
  const int64_t len = state.len;
  if (len == 0) return;

  // Stitch votes into per-timestamp series, dropping the synthetic pad.
  for (int64_t t = 0; t < len; ++t) {
    const size_t s = static_cast<size_t>(t + state.pad);
    const int32_t c = state.cover[s];
    if (c == 0) continue;
    result->detection.at(t) = state.prob_sum[s] / static_cast<float>(c);
    result->status.at(t) = 2 * state.on_votes[s] > c ? 1.0f : 0.0f;
  }
  FinalizePower(aggregate_watts, result);
}

void BatchRunner::FinalizePower(data::SeriesView aggregate_watts,
                                ScanResult* result) {
  // §IV-C power estimation over the stitched status. Missing readings
  // carry no observed aggregate: they enter EstimatePower zero-filled and
  // the estimate is forced to 0 afterwards, so a voted-ON status at a NaN
  // timestamp can never report P_a-scale phantom power, whatever clamp
  // the estimator applies.
  const int64_t len = aggregate_watts.size();
  nn::Tensor watts({1, len});
  for (int64_t t = 0; t < len; ++t) {
    const float v = aggregate_watts[t];
    watts.at(t) = data::IsMissing(v) ? 0.0f : v;
  }
  result->power =
      core::EstimatePower(result->status.Reshape({1, len}), watts,
                          options_.appliance_avg_power_w)
          .Reshape({len});
  for (int64_t t = 0; t < len; ++t) {
    if (data::IsMissing(aggregate_watts[t])) {
      result->power.at(t) = 0.0f;
    }
  }
}

std::vector<ScanResult> BatchRunner::ScanMany(
    const std::vector<data::SeriesView>& series) {
  const size_t n = series.size();
  std::vector<ScanResult> results(n);
  // resize keeps existing elements, so their vote buffers' capacity is
  // reused across scans.
  states_.resize(std::max(states_.size(), n));

  // Phase 1 setup: per-series stitch state, plus the feed list of
  // non-empty (possibly padded) series for the shared window stream.
  std::vector<data::SeriesView> feed;
  std::vector<int32_t> feed_to_state;
  feed.reserve(n);
  feed_to_state.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const data::SeriesView scan_series =
        PrepareSeries(series[i], &states_[i], &results[i]);
    if (scan_series.empty()) continue;  // empty: all-zero result
    feed.push_back(scan_series);
    feed_to_state.push_back(static_cast<int32_t>(i));
  }
  if (feed.empty()) return results;

  // Feed phase: every series' windows through shared GEMM batches —
  // batches fill across series boundaries, so the last windows of one
  // household share a forward pass with the first of the next.
  MultiWindowStream stream(std::move(feed), options_.stream);
  Stopwatch watch;
  int64_t b = 0;
  while ((b = stream.NextBatch(&batch_, &batch_refs_)) > 0) {
    core::LocalizationResult loc = localizer_.Localize(batch_);
    StitchBatch(loc, batch_refs_, b, feed_to_state, &results);
  }
  const double seconds = watch.ElapsedSeconds();

  // Stitch phase: each series finalizes independently. The pass was
  // shared, so each result reports its wall time (see ScanResult docs).
  for (size_t i = 0; i < n; ++i) {
    results[i].seconds = seconds;
    results[i].windows_full = results[i].windows;
    FinalizeSeries(series[i], states_[i], &results[i]);
  }
  return results;
}

std::vector<ScanResult> BatchRunner::AppendScanMany(
    const std::vector<SessionScanState*>& states,
    const std::vector<data::SeriesView>& deltas) {
  CAMAL_CHECK_EQ(states.size(), deltas.size());
  const size_t n = states.size();
  const int64_t l = options_.stream.window_length;
  const int64_t stride = options_.stream.stride;
  std::vector<ScanResult> results(n);
  // resize keeps existing elements; overlays_ must not grow again below —
  // pad feed entries point at overlay members.
  overlays_.resize(std::max(overlays_.size(), n));

  // Phase 1: commit each delta, grow the persistent accumulators
  // (zero-extending preserves committed votes), and plan refs for exactly
  // the windows the new tail touches — not-yet-committed grid windows
  // into the persistent accumulators, in ascending offset like a
  // from-scratch stitch, then the end-dependent tail/pad window into the
  // transient overlay.
  std::vector<data::SeriesView> feed;
  std::vector<int32_t> feed_state;    // feed index -> states index
  std::vector<uint8_t> feed_overlay;  // feed entry is an overlay pad buffer
  std::vector<WindowRef> refs;
  for (size_t i = 0; i < n; ++i) {
    SessionScanState* state = states[i];
    CAMAL_CHECK(state != nullptr);
    state->series.insert(state->series.end(), deltas[i].begin(),
                         deltas[i].end());
    const int64_t len = state->readings();
    ScanResult& result = results[i];
    result.detection = nn::Tensor({len});
    result.status = nn::Tensor({len});
    result.power = nn::Tensor({len});
    state->prob_sum.resize(static_cast<size_t>(len), 0.0f);
    state->cover.resize(static_cast<size_t>(len), 0);
    state->on_votes.resize(static_cast<size_t>(len), 0);
    OverlayState& overlay = overlays_[i];
    overlay.active = false;
    if (len == 0) continue;  // nothing committed yet: all-zero result

    const int64_t grid = data::GridWindowCount(len, l, stride);
    const bool tail = data::GridLeavesTail(len, l, stride);
    result.windows_full = len < l ? 1 : grid + (tail ? 1 : 0);

    int32_t main_feed = -1;
    for (int64_t k = state->grid_windows; k < grid; ++k) {
      if (main_feed < 0) {
        main_feed = static_cast<int32_t>(feed.size());
        feed.push_back(data::SeriesView(state->series));
        feed_state.push_back(static_cast<int32_t>(i));
        feed_overlay.push_back(0);
      }
      refs.push_back(WindowRef{main_feed, k * stride});
    }
    state->grid_windows = grid;

    if (len < l) {
      // Still shorter than one window: the whole series rides a single
      // left-zero-padded overlay window, exactly as PrepareSeries pads a
      // short one-shot scan.
      overlay.active = true;
      overlay.offset = len - l;  // pad occupies series coords [offset, 0)
      overlay.padded.assign(static_cast<size_t>(l), 0.0f);
      std::copy(state->series.begin(), state->series.end(),
                overlay.padded.begin() + static_cast<size_t>(l - len));
      refs.push_back(WindowRef{static_cast<int32_t>(feed.size()), 0});
      feed.push_back(data::SeriesView(overlay.padded));
      feed_state.push_back(static_cast<int32_t>(i));
      feed_overlay.push_back(1);
    } else if (tail) {
      overlay.active = true;
      overlay.offset = len - l;
      if (main_feed < 0) {
        main_feed = static_cast<int32_t>(feed.size());
        feed.push_back(data::SeriesView(state->series));
        feed_state.push_back(static_cast<int32_t>(i));
        feed_overlay.push_back(0);
      }
      refs.push_back(WindowRef{main_feed, len - l});
    }
    if (overlay.active) {
      overlay.prob_sum.assign(static_cast<size_t>(l), 0.0f);
      overlay.cover.assign(static_cast<size_t>(l), 0);
      overlay.on_votes.assign(static_cast<size_t>(l), 0);
    }
  }

  // Feed phase: every session's new windows through shared GEMM batches.
  // A group of tail-sized appends runs a handful of windows per session,
  // so cross-session filling is what keeps the batches from running
  // nearly empty.
  double seconds = 0.0;
  if (!refs.empty()) {
    MultiWindowStream stream(std::move(feed), options_.stream,
                             std::move(refs));
    Stopwatch watch;
    int64_t b = 0;
    while ((b = stream.NextBatch(&batch_, &batch_refs_)) > 0) {
      core::LocalizationResult loc = localizer_.Localize(batch_);
      StitchAppendBatch(loc, batch_refs_, b, states, feed_state,
                        feed_overlay, &results);
    }
    seconds = watch.ElapsedSeconds();
  }

  for (size_t i = 0; i < n; ++i) {
    results[i].seconds = seconds;
    FinalizeAppend(*states[i], overlays_[i], &results[i]);
  }
  return results;
}

void BatchRunner::StitchAppendBatch(
    const core::LocalizationResult& loc, const std::vector<WindowRef>& refs,
    int64_t batch, const std::vector<SessionScanState*>& states,
    const std::vector<int32_t>& feed_state,
    const std::vector<uint8_t>& feed_overlay,
    std::vector<ScanResult>* results) {
  const int64_t l = options_.stream.window_length;
  for (int64_t i = 0; i < batch; ++i) {
    const WindowRef ref = refs[static_cast<size_t>(i)];
    const size_t si =
        static_cast<size_t>(feed_state[static_cast<size_t>(ref.series)]);
    SessionScanState& state = *states[si];
    OverlayState& overlay = overlays_[si];
    // A tail ref is distinguishable from every grid ref by offset alone:
    // the tail exists only when len - l is NOT a stride multiple, and
    // grid offsets always are. Pad windows feed from their own buffer.
    const bool to_overlay =
        feed_overlay[static_cast<size_t>(ref.series)] != 0 ||
        (overlay.active && overlay.offset >= 0 &&
         ref.offset == overlay.offset);
    const float p = loc.probabilities.at(i);
    if (to_overlay) {
      for (int64_t t = 0; t < l; ++t) {
        overlay.prob_sum[static_cast<size_t>(t)] += p;
        ++overlay.cover[static_cast<size_t>(t)];
        if (loc.status.at2(i, t) > 0.5f) {
          ++overlay.on_votes[static_cast<size_t>(t)];
        }
      }
    } else {
      for (int64_t t = 0; t < l; ++t) {
        const size_t s = static_cast<size_t>(ref.offset + t);
        state.prob_sum[s] += p;
        ++state.cover[s];
        if (loc.status.at2(i, t) > 0.5f) ++state.on_votes[s];
      }
    }
    ++(*results)[si].windows;
  }
}

void BatchRunner::FinalizeAppend(const SessionScanState& state,
                                 const OverlayState& overlay,
                                 ScanResult* result) {
  const int64_t len = state.readings();
  if (len == 0) return;
  const int64_t l = options_.stream.window_length;
  // Persistent grid votes first, overlay last — the order a from-scratch
  // stitch visits the same windows, so the float sums are bit-identical.
  for (int64_t t = 0; t < len; ++t) {
    float p = state.prob_sum[static_cast<size_t>(t)];
    int32_t c = state.cover[static_cast<size_t>(t)];
    int32_t on = state.on_votes[static_cast<size_t>(t)];
    if (overlay.active) {
      const int64_t j = t - overlay.offset;
      if (j >= 0 && j < l) {
        p += overlay.prob_sum[static_cast<size_t>(j)];
        c += overlay.cover[static_cast<size_t>(j)];
        on += overlay.on_votes[static_cast<size_t>(j)];
      }
    }
    if (c == 0) continue;
    result->detection.at(t) = p / static_cast<float>(c);
    result->status.at(t) = 2 * on > c ? 1.0f : 0.0f;
  }
  FinalizePower(state.series, result);
}

ScanResult BatchRunner::AppendScan(SessionScanState* state,
                                   data::SeriesView delta) {
  std::vector<ScanResult> results = AppendScanMany({state}, {delta});
  return std::move(results.front());
}

ScanResult BatchRunner::Scan(data::SeriesView aggregate_watts) {
  // A lone scan is the one-series coalesced scan: MultiWindowStream over a
  // single series batches exactly like WindowStream, so this is the same
  // computation Scan always did.
  std::vector<ScanResult> results = ScanMany({aggregate_watts});
  return std::move(results.front());
}

}  // namespace camal::serve
