#ifndef CAMAL_SERVE_REQUEST_QUEUE_H_
#define CAMAL_SERVE_REQUEST_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "data/series_view.h"
#include "serve/batch_runner.h"

namespace camal::serve {

class Session;

/// Scheduling class of a request. Lower value = more urgent: a worker
/// always takes the earliest-admitted task of the most urgent class
/// present, so high-priority requests overtake a backlog of normal ones
/// while FIFO order is preserved within each class (no reordering among
/// equals — the bitwise-identity guarantees are per-request and
/// unaffected either way).
enum class RequestPriority {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

/// Returns "high" / "normal" / "low".
const char* RequestPriorityName(RequestPriority priority);

/// One asynchronous scan request submitted to serve::Service.
///
/// The series travels one of two ways — set exactly one:
///  - `series`: BORROWED. A non-owning view; its backing storage (a
///    caller's vector, a mapped ColumnStore channel) must stay alive
///    until the request's future resolves. Right for batch clients that
///    own a cohort for the whole call (ShardedScanner) and for serving
///    straight off a mapped store with zero copies.
///  - `owned_series`: OWNED. The request carries the buffer itself, so
///    the caller may return immediately — the fire-and-forget shape the
///    borrowed view would make a lifetime footgun. Session appends always
///    use this form; Submit(appliance, series) builds it for one-shots.
struct ScanRequest {
  /// Caller-chosen identifier echoed through logs and benches; the service
  /// itself does not interpret it. Session appends carry the session id.
  std::string household_id;
  /// Name of a registered appliance (Service::RegisterAppliance).
  std::string appliance;
  /// Aggregate series in unscaled Watts (NaN = missing reading).
  /// Borrowed view; see the struct contract. (An optional, not a bare
  /// view, so an explicitly-submitted empty series stays distinguishable
  /// from "not set".)
  std::optional<data::SeriesView> series;
  /// Owning alternative to `series`; see the struct contract. For a
  /// session append this is the delta, not a full series.
  std::optional<std::vector<float>> owned_series;
  /// Scheduling class; defaults to kNormal, which reproduces the pre-
  /// priority FIFO behaviour exactly. Does not affect results — only the
  /// order (and, with a deadline, whether) the request is served.
  RequestPriority priority = RequestPriority::kNormal;
  /// Optional deadline, in seconds from submission; <= 0 means none.
  /// A request still queued when its deadline passes is shed by the next
  /// worker that dequeues it — its future resolves with kDeadlineExceeded
  /// and no scan runs (the point: under overload, capacity goes to
  /// requests whose answers someone still wants). A request whose scan
  /// already started always completes. Session appends never carry
  /// deadlines: a shed append would silently hole the session's series.
  double deadline_seconds = 0.0;
};

/// The effective series of a request: a view of the owned buffer when
/// present, otherwise the borrowed view (empty when the caller set
/// neither). Resolve only on the request's final resting place — the
/// owned buffer's address changes whenever the enclosing QueuedScan
/// moves.
inline data::SeriesView RequestSeries(const ScanRequest& request) {
  if (request.owned_series.has_value()) {
    return data::SeriesView(*request.owned_series);
  }
  return request.series.value_or(data::SeriesView());
}

/// A validated request waiting in the admission queue, paired with the
/// promise its worker fulfills and the admission timestamp that
/// ScanResult::latency_seconds is measured from.
struct QueuedScan {
  ScanRequest request;
  /// Non-null: this task is a session append (request.owned_series holds
  /// the delta) and the worker routes it through AppendScanMany against
  /// the session's persisted stitch state.
  std::shared_ptr<Session> session;
  std::promise<Result<ScanResult>> promise;
  std::chrono::steady_clock::time_point admitted;
  /// Absolute expiry stamped at admission from request.deadline_seconds;
  /// empty = no deadline. Workers compare against steady_clock::now()
  /// once per dequeued group, before scanning.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Scan attempts already consumed by this task (retry bookkeeping; see
  /// RetryPolicy). A re-enqueued task keeps its admission timestamp,
  /// priority, and deadline — only this counter moves.
  int attempts = 0;
};

/// Bounded MPMC admission queue of the serving front-end: producers are
/// Service::Submit callers, consumers are the service's worker threads.
///
/// Push never blocks — when the queue is at capacity (backpressure) or
/// closed, it returns kFailedPrecondition and leaves the caller's task
/// untouched, so the caller still owns the promise and can fail it.
/// Pop blocks until a task arrives or the queue is closed *and* drained:
/// Close stops admission immediately but lets consumers finish every task
/// admitted before it (graceful shutdown).
class RequestQueue {
 public:
  /// \p capacity bounds the number of waiting tasks; <= 0 means unbounded
  /// (used by batch clients like ShardedScanner that pre-size their work).
  explicit RequestQueue(int64_t capacity);

  /// Moves \p *task into the queue. On failure (full or closed) \p *task
  /// is left intact and a kFailedPrecondition status is returned; when
  /// \p rejected_full is non-null it is set to whether the failure was the
  /// capacity bound (backpressure) rather than shutdown — the distinction
  /// ServiceStats telemetry reports. \p force bypasses the capacity bound
  /// (never the closed check): session appends use it, both at admission
  /// and at the worker handoff that re-queues a session's next parked
  /// append — session flow control is per-session (max_pending_appends),
  /// and bouncing a handoff off the global bound would strand the parked
  /// backlog behind an in_flight flag nobody clears.
  Status Push(QueuedScan* task, bool* rejected_full = nullptr,
              bool force = false);

  /// Blocks until a task is available (returns true) or the queue is
  /// closed and fully drained (returns false). The task taken is the
  /// earliest-admitted one of the most urgent RequestPriority present
  /// (FIFO within a class; all-kNormal traffic behaves exactly like the
  /// plain FIFO this used to be).
  bool Pop(QueuedScan* out);

  /// Batch pop with appliance affinity, the queue side of cross-request
  /// window coalescing: blocks for the head task like Pop (same priority-
  /// aware head selection), then — without blocking — drains more waiting
  /// tasks for the SAME appliance AND SAME priority into \p extras
  /// (cleared first), skipping over everything else, whose relative order
  /// is preserved. Drained tasks come out in admission order. Grouping
  /// never crosses priority classes: a low request must not ride a high
  /// head's scan ahead of other high requests (nor the reverse).
  ///
  /// The drain budget is adaptive (ROADMAP adaptive-coalescing step 2),
  /// never more than \p extra_budget: with idle sibling consumers blocked
  /// in Pop/PopGroup, a fixed budget would batch work one request deep
  /// while a whole worker sat idle, so the drain leaves at least one task
  /// behind per waiting consumer — see AdaptiveDrainBudget. Purely a
  /// batching policy: results are bitwise-identical whichever worker or
  /// group serves a request. extra_budget <= 0 makes this exactly Pop.
  /// Returns false only when closed and fully drained.
  bool PopGroup(QueuedScan* first, std::vector<QueuedScan>* extras,
                int64_t extra_budget);

  /// The effective extras budget a PopGroup may drain: the configured
  /// \p extra_budget, capped so that \p idle_consumers tasks of the
  /// remaining \p backlog (queue depth AFTER removing the head) are left
  /// for the consumers currently blocked waiting. Exposed for tests;
  /// pure.
  static int64_t AdaptiveDrainBudget(int64_t extra_budget, int64_t backlog,
                                     int64_t idle_consumers);

  /// Stops admission; queued tasks remain poppable. Idempotent.
  void Close();

  int64_t size() const;
  int64_t capacity() const { return capacity_; }
  bool closed() const;

  /// Consumers currently blocked inside Pop/PopGroup waiting for work —
  /// the idle-worker signal the adaptive drain budget is gated on.
  int64_t waiting_consumers() const;

 private:
  /// Index of the task Pop/PopGroup takes: earliest of the most urgent
  /// priority class present. Caller holds mu_; tasks_ must be non-empty.
  size_t HeadIndexLocked() const CAMAL_REQUIRES(mu_);

  const int64_t capacity_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<QueuedScan> tasks_ CAMAL_GUARDED_BY(mu_);
  bool closed_ CAMAL_GUARDED_BY(mu_) = false;
  /// Consumers blocked in Pop/PopGroup.
  int64_t waiting_ CAMAL_GUARDED_BY(mu_) = 0;
};

}  // namespace camal::serve

#endif  // CAMAL_SERVE_REQUEST_QUEUE_H_
