#ifndef CAMAL_SERVE_REQUEST_QUEUE_H_
#define CAMAL_SERVE_REQUEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/batch_runner.h"

namespace camal::serve {

/// One asynchronous scan request submitted to serve::Service.
struct ScanRequest {
  /// Caller-chosen identifier echoed through logs and benches; the service
  /// itself does not interpret it.
  std::string household_id;
  /// Name of a registered appliance (Service::RegisterAppliance).
  std::string appliance;
  /// Aggregate series in unscaled Watts (NaN = missing reading). Borrowed:
  /// must stay alive until the request's future resolves.
  const std::vector<float>* series = nullptr;
};

/// A validated request waiting in the admission queue, paired with the
/// promise its worker fulfills and the admission timestamp that
/// ScanResult::latency_seconds is measured from.
struct QueuedScan {
  ScanRequest request;
  std::promise<Result<ScanResult>> promise;
  std::chrono::steady_clock::time_point admitted;
};

/// Bounded MPMC admission queue of the serving front-end: producers are
/// Service::Submit callers, consumers are the service's worker threads.
///
/// Push never blocks — when the queue is at capacity (backpressure) or
/// closed, it returns kFailedPrecondition and leaves the caller's task
/// untouched, so the caller still owns the promise and can fail it.
/// Pop blocks until a task arrives or the queue is closed *and* drained:
/// Close stops admission immediately but lets consumers finish every task
/// admitted before it (graceful shutdown).
class RequestQueue {
 public:
  /// \p capacity bounds the number of waiting tasks; <= 0 means unbounded
  /// (used by batch clients like ShardedScanner that pre-size their work).
  explicit RequestQueue(int64_t capacity);

  /// Moves \p *task into the queue. On failure (full or closed) \p *task
  /// is left intact and a kFailedPrecondition status is returned; when
  /// \p rejected_full is non-null it is set to whether the failure was the
  /// capacity bound (backpressure) rather than shutdown — the distinction
  /// ServiceStats telemetry reports.
  Status Push(QueuedScan* task, bool* rejected_full = nullptr);

  /// Blocks until a task is available (returns true) or the queue is
  /// closed and fully drained (returns false).
  bool Pop(QueuedScan* out);

  /// Batch pop with appliance affinity, the queue side of cross-request
  /// window coalescing: blocks for the head task like Pop, then — without
  /// blocking — drains up to \p extra_budget more waiting tasks for the
  /// SAME appliance into \p extras (cleared first), skipping over other
  /// appliances, whose relative order is preserved. Drained tasks come
  /// out in admission order. extra_budget <= 0 makes this exactly Pop.
  /// Returns false only when closed and fully drained.
  bool PopGroup(QueuedScan* first, std::vector<QueuedScan>* extras,
                int64_t extra_budget);

  /// Stops admission; queued tasks remain poppable. Idempotent.
  void Close();

  int64_t size() const;
  int64_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  const int64_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedScan> tasks_;
  bool closed_ = false;
};

}  // namespace camal::serve

#endif  // CAMAL_SERVE_REQUEST_QUEUE_H_
