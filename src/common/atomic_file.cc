#include "common/atomic_file.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/fault_injection.h"

namespace camal {

AtomicFileWriter::AtomicFileWriter(std::string path, FaultInjector* faults)
    : path_(std::move(path)),
      // Same directory as the destination: rename(2) is only atomic
      // within a filesystem, and a crash leaves the orphan temp next to
      // the file it was meant to replace, where a sweep can find it.
      temp_path_(path_ + ".tmp"),
      faults_(faults) {
  file_ = std::fopen(temp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot create " + temp_path_ + ": " +
                              std::strerror(errno));
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!committed_) {
    std::remove(temp_path_.c_str());  // uncommitted: discard, keep the old
  }
}

Status AtomicFileWriter::Fail(Status status) {
  status_ = std::move(status);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(temp_path_.c_str());
  return status_;
}

Status AtomicFileWriter::Write(const void* bytes, size_t size) {
  if (!status_.ok()) return status_;
  if (committed_) {
    return Status::FailedPrecondition("write after Commit on " + path_);
  }
  if (faults_ != nullptr) {
    Status injected = faults_->OnWrite(path_);
    if (!injected.ok()) return Fail(std::move(injected));
  }
  if (size > 0 && std::fwrite(bytes, 1, size, file_) != size) {
    return Fail(Status::IoError("short write to " + temp_path_));
  }
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (!status_.ok()) return status_;
  if (committed_) {
    return Status::FailedPrecondition("double Commit on " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Fail(Status::IoError("cannot flush " + temp_path_));
  }
  // fsync before rename: the rename must not become durable ahead of the
  // data it points at, or a crash yields exactly the torn file this
  // class exists to prevent.
  if (fsync(fileno(file_)) != 0) {
    return Fail(Status::IoError("cannot fsync " + temp_path_));
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    return Fail(Status::IoError("cannot close " + temp_path_));
  }
  file_ = nullptr;
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    return Fail(Status::IoError("cannot rename " + temp_path_ + " to " +
                                path_ + ": " + std::strerror(errno)));
  }
  committed_ = true;
  if (faults_ != nullptr) faults_->OnFileCommitted(path_);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const void* bytes,
                       size_t size, FaultInjector* faults) {
  AtomicFileWriter writer(path, faults);
  CAMAL_RETURN_NOT_OK(writer.Write(bytes, size));
  return writer.Commit();
}

}  // namespace camal
