#ifndef CAMAL_COMMON_FAULT_INJECTION_H_
#define CAMAL_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"

namespace camal {

/// Deterministic fault plan: which operations fail, decided up front.
///
/// A FaultPlan is data, not callbacks — the same plan replays the same
/// faults on the same operation sequence, which is what makes crash and
/// retry tests reproducible. Counters are 1-based and count only
/// operations that match the label filter (all of them when
/// `scan_label` is empty).
struct FaultPlan {
  // --- Scan faults (FaultInjector::OnScan, the worker-thread seam) ---
  /// Only scans whose label (the request's household_id) equals this
  /// fault; empty matches every scan. A label with neither
  /// `fail_scan_at` nor `scan_fault_rate` set faults on EVERY matching
  /// scan — the "this household is poison" shape.
  std::string scan_label;
  /// 1-based index of the first matching scan to fault; 0 = no indexed
  /// window. With `fail_scan_count` this carves a fault window: matching
  /// scans [at, at + count) throw, everything after succeeds — the
  /// transient-fault shape bounded retry is tested against.
  int64_t fail_scan_at = 0;
  int64_t fail_scan_count = 1;
  /// Seeded probabilistic faults: each matching scan throws with this
  /// probability, drawn from an Rng seeded with `seed` — deterministic
  /// for a fixed seed and scan order. 0 disables.
  double scan_fault_rate = 0.0;
  uint64_t seed = 0;

  // --- Write faults (OnWrite, the durable-IO seam) ---
  /// 1-based index of the IO write to fail with kIoError; 0 = never.
  int64_t fail_write_at = 0;

  // --- Torn writes (OnFileCommitted, the post-rename seam) ---
  /// 1-based index of the committed file to truncate — simulating a
  /// crash after rename but before the data pages hit disk, the torn
  /// write a checkpoint reader must reject by CRC. 0 = never.
  int64_t truncate_commit_at = 0;
  int64_t truncate_to_bytes = 0;  ///< size the torn file is cut to.
};

/// Structured fault-injection seam, threaded through the serving scan
/// path (serve::ServiceOptions::fault_injector) and durable IO
/// (AtomicFileWriter). Replaces the old bare pre_scan_hook: instead of
/// every test hand-rolling throw logic in a lambda, faults are declared
/// in a FaultPlan and the injector decides; a plain observation hook
/// (set_scan_hook) remains for tests that gate or record scan order.
///
/// Thread-safe: workers call OnScan concurrently; counters and the
/// seeded Rng are guarded. An injector outlives the Service/writer it is
/// wired into (it is borrowed, never owned).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan = {});

  /// Scan seam. Called on the worker thread for each request of a group
  /// immediately before the shared scan, with the request's household_id
  /// as \p label. Runs the observation hook first (outside the lock),
  /// then throws std::runtime_error("injected scan fault ...") when the
  /// plan says this scan faults. The service turns the throw into
  /// kInternal exactly like any scan failure.
  void OnScan(const std::string& label);

  /// Durable-write seam. Called before each buffered write of an
  /// AtomicFileWriter; a non-OK return (kIoError per plan) aborts the
  /// write so the temp file is discarded and the destination survives.
  [[nodiscard]] Status OnWrite(const std::string& path);

  /// Post-commit seam. Called after an AtomicFileWriter renames its temp
  /// file over the destination; per plan, truncates the committed file
  /// to truncate_to_bytes — the torn-write a reader must reject.
  void OnFileCommitted(const std::string& path);

  /// Observation hook run at the top of every OnScan (fault or not),
  /// with the scan's label. The structured home for what tests used
  /// pre_scan_hook for: recording serve order, gating on a barrier,
  /// pinning per-request cost with a sleep. May throw; a throw is a scan
  /// fault like any other.
  void set_scan_hook(std::function<void(const std::string&)> hook);

  /// Telemetry: operations seen and faults injected so far.
  int64_t scans() const;
  int64_t writes() const;
  int64_t faults_injected() const;

 private:
  const FaultPlan plan_;
  mutable Mutex mu_;
  Rng rng_ CAMAL_GUARDED_BY(mu_);
  std::function<void(const std::string&)> scan_hook_ CAMAL_GUARDED_BY(mu_);
  int64_t scans_ CAMAL_GUARDED_BY(mu_) = 0;
  int64_t matching_scans_ CAMAL_GUARDED_BY(mu_) = 0;
  int64_t writes_ CAMAL_GUARDED_BY(mu_) = 0;
  int64_t commits_ CAMAL_GUARDED_BY(mu_) = 0;
  int64_t faults_ CAMAL_GUARDED_BY(mu_) = 0;
};

}  // namespace camal

#endif  // CAMAL_COMMON_FAULT_INJECTION_H_
