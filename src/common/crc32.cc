#include "common/crc32.h"

#include <array>

namespace camal {
namespace {

/// 256-entry lookup table for the reflected polynomial, built once at
/// first use (function-local static: thread-safe, no global ctor order).
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto& table = Crc32Table();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Finalize(Crc32Update(kCrc32Initial, data, size));
}

}  // namespace camal
