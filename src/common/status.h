#ifndef CAMAL_COMMON_STATUS_H_
#define CAMAL_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace camal {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
  /// The request's deadline passed before a worker could serve it; the
  /// service shed it without running the scan (see ScanRequest).
  kDeadlineExceeded,
};

/// Returns a human-readable name for \p code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation (Arrow/RocksDB idiom: no exceptions).
///
/// A Status is either OK or carries a code plus a message. Functions that can
/// fail for reasons outside the programmer's control return Status (or
/// Result<T> when they also produce a value).
///
/// The class is [[nodiscard]]: every function returning a Status by value
/// inherits must-use, so a dropped kIoError/kDeadlineExceeded is a compile
/// error under CAMAL_WERROR, not a silent success. A deliberate discard is
/// written `(void)DoThing();  // why it is safe to ignore`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with \p code and \p message. \p code must not be kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    CAMAL_CHECK(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status (Arrow's Result idiom).
/// [[nodiscard]] like Status: discarding a Result drops the value AND the
/// error, so the compiler rejects it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning functions.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; \p status must not be OK.
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    CAMAL_CHECK(!std::get<Status>(value_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// Returns the error, or OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  /// Returns the held value; aborts if this holds an error.
  const T& value() const& {
    CAMAL_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(value_);
  }
  T& value() & {
    CAMAL_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(value_);
  }
  T&& value() && {
    CAMAL_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(value_));
  }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK Status to the caller.
#define CAMAL_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::camal::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define CAMAL_CONCAT_INNER_(a, b) a##b
#define CAMAL_CONCAT_(a, b) CAMAL_CONCAT_INNER_(a, b)
#define CAMAL_ASSIGN_OR_RETURN(lhs, expr) \
  CAMAL_ASSIGN_OR_RETURN_IMPL_(CAMAL_CONCAT_(_camal_res_, __LINE__), lhs, expr)
#define CAMAL_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                 \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value();

}  // namespace camal

#endif  // CAMAL_COMMON_STATUS_H_
