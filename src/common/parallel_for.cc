#include "common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace camal {
namespace {

// A minimal fixed-size pool that executes [begin, end) chunk tasks. Workers
// live for the process lifetime; tasks are distributed as contiguous ranges.
class Pool {
 public:
  explicit Pool(int workers) : workers_(workers) {
    threads_.reserve(workers_);
    for (int w = 0; w < workers_; ++w) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  // Runs body over [begin, end) split into one chunk per worker; blocks.
  void Run(int64_t begin, int64_t end,
           const std::function<void(int64_t, int64_t)>& body) {
    const int64_t n = end - begin;
    const int chunks = static_cast<int>(
        std::min<int64_t>(workers_ + 1, n));  // +1: caller also works
    const int64_t chunk = (n + chunks - 1) / chunks;
    std::atomic<int> remaining{chunks - 1};
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int c = 1; c < chunks; ++c) {
        int64_t b = begin + c * chunk;
        int64_t e = std::min<int64_t>(b + chunk, end);
        if (b >= e) {
          remaining.fetch_sub(1, std::memory_order_relaxed);
          continue;
        }
        queue_.push_back([&body, b, e, &remaining, this] {
          body(b, e);
          if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> done_lock(done_mu_);
            done_cv_.notify_all();
          }
        });
      }
      cv_.notify_all();
    }
    // The calling thread processes the first chunk itself.
    body(begin, std::min<int64_t>(begin + chunk, end));
    std::unique_lock<std::mutex> done_lock(done_mu_);
    done_cv_.wait(done_lock, [&remaining] {
      return remaining.load(std::memory_order_acquire) == 0;
    });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return !queue_.empty(); });
        task = std::move(queue_.back());
        queue_.pop_back();
      }
      task();
    }
  }

  int workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::function<void()>> queue_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
};

int ReadThreadsEnv() {
  const char* env = std::getenv("CAMAL_THREADS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 1) return std::min(v, 64);
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  return static_cast<int>(std::min<unsigned>(hw, 32));
}

Pool* GetPool() {
  // Leaked intentionally: threads run for the process lifetime (style-guide
  // pattern for non-trivially-destructible singletons).
  static Pool* pool = new Pool(NumThreads() - 1);
  return pool;
}

thread_local bool in_parallel_region = false;

}  // namespace

int NumThreads() {
  static int threads = ReadThreadsEnv();
  return threads;
}

void ParallelForChunked(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)>& body) {
  if (begin >= end) return;
  const int64_t n = end - begin;
  if (NumThreads() == 1 || n < 2 || in_parallel_region) {
    body(begin, end);
    return;
  }
  in_parallel_region = true;
  GetPool()->Run(begin, end, [&body](int64_t b, int64_t e) {
    in_parallel_region = true;
    body(b, e);
    in_parallel_region = false;
  });
  in_parallel_region = false;
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body) {
  ParallelForChunked(begin, end, [&body](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) body(i);
  });
}

}  // namespace camal
