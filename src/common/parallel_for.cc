#include "common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"

namespace camal {
namespace {

// Thread-local execution state of the two-level pool. `depth` is 0 on
// threads outside any parallel region, 1 inside an outer shard or a
// top-level chunk, 2 inside an inner (nested) chunk. `budget` is how many
// chunks a ParallelFor started from this thread may fan out to; 1 means
// run inline. At depth 0 the budget is the whole pool (NumThreads()).
thread_local int tls_depth = 0;
thread_local int tls_budget = 0;

int ReadThreadsEnv() {
  const char* env = std::getenv("CAMAL_THREADS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 1) return std::min(v, 64);
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  return static_cast<int>(std::min<unsigned>(hw, 32));
}

// One blocking parallel-for invocation: a fixed range cut into n_chunks
// contiguous pieces that workers and the calling thread claim dynamically
// through the `next` cursor. Lives on the caller's stack for the duration
// of Pool::Run.
struct Job {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk = 1;
  int64_t n_chunks = 0;
  int depth = 1;         // tls_depth while a chunk of this job runs
  int inner_budget = 1;  // tls_budget while a chunk of this job runs
  const std::function<void(int64_t, int64_t)>* body = nullptr;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
};

// Work-sharing pool, re-entrant by construction: every Run publishes its
// own Job, the calling thread claims chunks of its job exactly like a
// worker, and completion is tracked per job. Concurrent top-level Runs are
// independent (no shared completion state), and a nested Run issued from a
// worker thread can never deadlock — if no worker is free, the nested
// caller simply executes every chunk itself.
class Pool {
 public:
  explicit Pool(int workers) : workers_(workers) {
    // A pool with no workers would make Run()'s hand-off pointless; the
    // dispatch guards in ParallelForChunked/ParallelForOuter keep
    // NumThreads() == 1 processes from ever constructing one.
    CAMAL_CHECK_GE(workers_, 1);
    threads_.reserve(static_cast<size_t>(workers_));
    for (int w = 0; w < workers_; ++w) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  // Blocks until every chunk of \p job has executed. Safe to call
  // concurrently from any thread, including pool workers.
  void Run(Job* job) {
    CAMAL_CHECK_GE(job->n_chunks, 1);
    {
      MutexLock lock(&mu_);
      jobs_.push_back(job);
    }
    cv_.NotifyAll();
    // Claim chunks of our own job until none remain.
    for (;;) {
      const int64_t c = job->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job->n_chunks) break;
      RunChunk(job, c);
    }
    // Wait for chunks claimed by workers (none in the common case where
    // the caller drained the job itself).
    if (job->done.load(std::memory_order_acquire) != job->n_chunks) {
      MutexLock lock(&done_mu_);
      while (job->done.load(std::memory_order_acquire) != job->n_chunks) {
        done_cv_.Wait(&done_mu_);
      }
    }
    // Unlink the job before it goes out of scope on the caller's stack
    // (a worker that saw it exhausted may already have removed it).
    {
      MutexLock lock(&mu_);
      for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
        if (*it == job) {
          jobs_.erase(it);
          break;
        }
      }
    }
  }

 private:
  void RunChunk(Job* job, int64_t c) {
    const int64_t b = job->begin + c * job->chunk;
    const int64_t e = std::min<int64_t>(b + job->chunk, job->end);
    const int saved_depth = tls_depth;
    const int saved_budget = tls_budget;
    tls_depth = job->depth;
    tls_budget = job->inner_budget;
    (*job->body)(b, e);
    tls_depth = saved_depth;
    tls_budget = saved_budget;
    // Read n_chunks before the final fetch_add: once `done` reaches the
    // total, the caller may return and destroy the job.
    const int64_t total = job->n_chunks;
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
      MutexLock lock(&done_mu_);
      done_cv_.NotifyAll();
    }
  }

  void WorkerLoop() {
    for (;;) {
      Job* job = nullptr;
      int64_t c = 0;
      {
        MutexLock lock(&mu_);
        while (jobs_.empty()) cv_.Wait(&mu_);
        job = jobs_.front();
        c = job->next.fetch_add(1, std::memory_order_relaxed);
        if (c >= job->n_chunks) {
          // Exhausted: retire it so the queue advances to the next job.
          // (Only the front pointer is compared — the owner may have
          // unlinked it already.)
          if (!jobs_.empty() && jobs_.front() == job) jobs_.pop_front();
          continue;
        }
      }
      RunChunk(job, c);
    }
  }

  int workers_;
  Mutex mu_;
  CondVar cv_;
  /// FIFO: outer jobs drain before inner ones.
  std::deque<Job*> jobs_ CAMAL_GUARDED_BY(mu_);
  Mutex done_mu_;
  CondVar done_cv_;
  std::vector<std::thread> threads_;
};

Pool* GetPool() {
  // Built lazily on the first call that actually fans out, so serial
  // processes (CAMAL_THREADS=1) never spawn workers. Leaked intentionally:
  // threads run for the process lifetime (style-guide pattern for
  // non-trivially-destructible singletons).
  // lint: new-ok(intentionally leaked process-lifetime singleton)
  static Pool* pool = new Pool(NumThreads() - 1);
  return pool;
}

// Chunk budget available to a parallel loop started on this thread.
int CurrentBudget() {
  return tls_depth == 0 ? NumThreads() : std::max(1, tls_budget);
}

void RunJob(int64_t begin, int64_t end, int64_t chunk, int depth,
            int inner_budget,
            const std::function<void(int64_t, int64_t)>& body) {
  Job job;
  job.begin = begin;
  job.end = end;
  job.chunk = chunk;
  job.n_chunks = (end - begin + chunk - 1) / chunk;
  job.depth = depth;
  job.inner_budget = inner_budget;
  job.body = &body;
  GetPool()->Run(&job);
}

}  // namespace

int NumThreads() {
  static int threads = ReadThreadsEnv();
  return threads;
}

ShardPlan PlanOuterShards(int64_t items, int max_shards) {
  ShardPlan plan;
  if (items <= 0) return plan;
  const int budget = NumThreads();
  const int cap = max_shards > 0 ? std::min(max_shards, budget) : budget;
  const int64_t want =
      std::max<int64_t>(1, std::min<int64_t>(items, cap));
  plan.chunk = (items + want - 1) / want;
  // Ceil division can leave fewer chunks than requested shards (items=9,
  // want=6 -> chunk=2 -> 5 chunks); clamp so shards is exactly the number
  // of chunks that will run — callers size per-shard state off it.
  plan.shards = static_cast<int>((items + plan.chunk - 1) / plan.chunk);
  plan.inner = std::max(1, budget / plan.shards);
  return plan;
}

ParallelBudgetScope::ParallelBudgetScope(int budget)
    : saved_depth_(tls_depth), saved_budget_(tls_budget) {
  // Nesting a scope inside a parallel region (or another scope) would
  // let a shard's body re-widen a budget the planner already narrowed.
  CAMAL_CHECK_EQ(tls_depth, 0);
  CAMAL_CHECK_GE(budget, 1);
  tls_depth = 1;
  tls_budget = budget;
}

ParallelBudgetScope::~ParallelBudgetScope() {
  tls_depth = saved_depth_;
  tls_budget = saved_budget_;
}

void ParallelForChunked(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)>& body) {
  if (begin >= end) return;
  const int64_t n = end - begin;
  const int budget = CurrentBudget();
  if (budget <= 1 || n < 2 || tls_depth >= 2) {
    body(begin, end);
    return;
  }
  const int64_t chunks = std::min<int64_t>(budget, n);
  const int64_t chunk = (n + chunks - 1) / chunks;
  // Chunks of this job run one level deeper with no further fan-out.
  RunJob(begin, end, chunk, tls_depth + 1, /*inner_budget=*/1, body);
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body) {
  ParallelForChunked(begin, end, [&body](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) body(i);
  });
}

void ParallelForOuter(
    int64_t begin, int64_t end, int max_shards,
    const std::function<void(int, int64_t, int64_t)>& body) {
  if (begin >= end) return;
  const ShardPlan plan = PlanOuterShards(end - begin, max_shards);
  if (plan.shards <= 1 || tls_depth > 0) {
    // Single-shard plan, or nested inside another parallel region: run as
    // one shard on the calling thread with its current inner budget.
    body(0, begin, end);
    return;
  }
  // One chunk per shard: the chunk index doubles as a stable shard id, so
  // at most one chunk per shard id executes at any time.
  const std::function<void(int64_t, int64_t)> chunk_body =
      [&body, begin, &plan](int64_t b, int64_t e) {
        body(static_cast<int>((b - begin) / plan.chunk), b, e);
      };
  RunJob(begin, end, plan.chunk, /*depth=*/1, plan.inner, chunk_body);
}

}  // namespace camal
