#ifndef CAMAL_COMMON_RNG_H_
#define CAMAL_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace camal {

/// Deterministic pseudo-random number generator used across the library.
///
/// Every stochastic component (weight init, data simulation, shuffling,
/// dropout) takes an explicit Rng or seed so runs are reproducible. The
/// engine is std::mt19937_64 seeded explicitly; copying an Rng forks the
/// stream state.
class Rng {
 public:
  /// Creates a generator seeded with \p seed.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Gaussian with mean \p mean and standard deviation \p stddev.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Bernoulli trial with success probability \p p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Poisson-distributed count with rate \p lambda.
  int64_t Poisson(double lambda) {
    std::poisson_distribution<int64_t> dist(lambda);
    return dist(engine_);
  }

  /// Exponential inter-arrival sample with rate \p lambda.
  double Exponential(double lambda) {
    std::exponential_distribution<double> dist(lambda);
    return dist(engine_);
  }

  /// Fisher-Yates shuffles \p items in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j =
          static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent child generator (for parallel streams).
  Rng Fork() { return Rng(engine_()); }

  /// Access to the raw engine for use with std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace camal

#endif  // CAMAL_COMMON_RNG_H_
