#include "common/table_printer.h"

#include <cstdio>

#include "common/check.h"

namespace camal {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CAMAL_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CAMAL_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };
  std::string sep = "+";
  for (size_t c = 0; c < widths.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += '+';
  }
  sep += '\n';
  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

void TablePrinter::Print(std::FILE* out) const {
  std::string text = ToString();
  std::fwrite(text.data(), 1, text.size(), out);
}

std::string Fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FmtInt(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

}  // namespace camal
