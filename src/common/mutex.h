#ifndef CAMAL_COMMON_MUTEX_H_
#define CAMAL_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

/// \file mutex.h
/// The repo's ONLY mutex primitives: thin wrappers over std::mutex /
/// std::condition_variable that carry Clang Thread Safety Analysis
/// capability attributes, so `CAMAL_GUARDED_BY(mu_)` fields and
/// `CAMAL_REQUIRES(mu_)` helpers are checked at compile time under clang
/// (-Werror=thread-safety). Raw std::mutex / std::lock_guard /
/// std::unique_lock elsewhere in src/ are rejected by
/// scripts/check_invariants.py — the analysis cannot see through the
/// unannotated standard types, so one stray std::lock_guard silently
/// punches a hole in the proof.

namespace camal {

/// Annotated exclusive mutex. Same semantics and cost as the std::mutex it
/// wraps; the capability attribute is what lets clang connect Lock/Unlock
/// to CAMAL_GUARDED_BY fields.
class CAMAL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CAMAL_ACQUIRE() { mu_.lock(); }
  void Unlock() CAMAL_RELEASE() { mu_.unlock(); }
  bool TryLock() CAMAL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex (the std::lock_guard shape, annotated). Takes a
/// pointer, not a reference, so a lock site reads `MutexLock lock(&mu_);`
/// and can never be mistaken for a copy.
class CAMAL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CAMAL_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() CAMAL_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to camal::Mutex. Wait atomically releases the
/// mutex and reacquires it before returning, exactly like
/// std::condition_variable — callers hold the lock across the call, which
/// is what CAMAL_REQUIRES expresses. Deliberately predicate-free: callers
/// write the standard `while (!ready_) cv_.Wait(&mu_);` loop with the
/// guarded fields read directly in the loop condition, so the analysis
/// sees every access (a predicate lambda would be opaque to it).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible, as ever). \p mu
  /// must be held by the caller.
  void Wait(Mutex* mu) CAMAL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace camal

#endif  // CAMAL_COMMON_MUTEX_H_
