#include "common/stopwatch.h"

// Stopwatch is header-only; this translation unit anchors the library target.
