#include "common/csv.h"

#include <cstdio>

namespace camal {
namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteCell(const std::string& cell) {
  if (!NeedsQuoting(cell)) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += QuoteCell(row[c]);
    }
    out += '\n';
  }
  return out;
}

Status CsvWriter::Write() const {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path_);
  }
  std::string text = ToString();
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::IoError("short write to " + path_);
  }
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  size_t i = 0;
  while (i < text.size()) {
    char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
    } else if (ch == '"') {
      if (!cell.empty()) {
        return Status::InvalidArgument("quote in unquoted cell");
      }
      in_quotes = true;
    } else if (ch == ',') {
      row.push_back(std::move(cell));
      cell.clear();
    } else if (ch == '\n') {
      row.push_back(std::move(cell));
      cell.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else if (ch != '\r') {
      cell += ch;
    }
    ++i;
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted cell");
  if (!cell.empty() || !row.empty()) {
    row.push_back(std::move(cell));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace camal
