#ifndef CAMAL_COMMON_CRC32_H_
#define CAMAL_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace camal {

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial 0xEDB88320), implemented
/// in-repo so binary formats can checksum their payloads without a
/// dependency. Used by the session checkpoint format to reject torn or
/// bit-flipped snapshots before any field is trusted.
///
/// Known answer (the classic check value): Crc32("123456789", 9) ==
/// 0xCBF43926.
uint32_t Crc32(const void* data, size_t size);

/// Streaming form: feed chunks through \p crc, starting from
/// kCrc32Initial and finishing with Crc32Finalize. Equivalent to one
/// Crc32 call over the concatenation.
inline constexpr uint32_t kCrc32Initial = 0xFFFFFFFFu;
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);
inline uint32_t Crc32Finalize(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

}  // namespace camal

#endif  // CAMAL_COMMON_CRC32_H_
