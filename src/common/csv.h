#ifndef CAMAL_COMMON_CSV_H_
#define CAMAL_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace camal {

/// Writes rows of string cells to a CSV file. Cells containing commas,
/// quotes, or newlines are quoted per RFC 4180. Bench binaries use this to
/// dump machine-readable copies of each reproduced table/figure.
class CsvWriter {
 public:
  /// Creates a writer targeting \p path; nothing is written until Write().
  explicit CsvWriter(std::string path) : path_(std::move(path)) {}

  /// Appends a row.
  void AddRow(const std::vector<std::string>& cells);

  /// Writes all accumulated rows to the file, overwriting it.
  Status Write() const;

  /// Serializes the accumulated rows (for tests).
  std::string ToString() const;

 private:
  std::string path_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses a CSV string into rows of cells (RFC 4180 quoting).
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

}  // namespace camal

#endif  // CAMAL_COMMON_CSV_H_
