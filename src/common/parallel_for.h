#ifndef CAMAL_COMMON_PARALLEL_FOR_H_
#define CAMAL_COMMON_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace camal {

/// Returns the worker count used by the parallel-for pool. Defaults to the
/// hardware concurrency, clamped to [1, 32]; override with the
/// CAMAL_THREADS environment variable (CAMAL_THREADS=1 forces serial
/// execution everywhere).
int NumThreads();

/// How the process-wide thread budget is split between concurrent outer
/// shards and the inner loops (conv GEMMs) running inside each shard.
/// Produced by PlanOuterShards and honored by ParallelForOuter.
struct ShardPlan {
  int shards = 1;     ///< concurrent outer shards (<= NumThreads()).
  int inner = 1;      ///< inner-loop chunk budget per shard (>= 1).
  int64_t chunk = 0;  ///< outer items per shard (ceil; 0 when no items).
};

/// Splits NumThreads() between \p items outer shards and the inner loops
/// nested inside them: shards = min(items, max_shards or NumThreads()),
/// inner = NumThreads() / shards (at least 1). With many items the whole
/// budget goes to shards and inner loops run inline; with few items the
/// leftover threads serve each shard's inner GEMMs.
ShardPlan PlanOuterShards(int64_t items, int max_shards);

/// Runs body(i) for i in [begin, end) across the process-wide thread pool.
///
/// Iterations are split into contiguous chunks that the pool's workers and
/// the calling thread claim dynamically. The call blocks until all
/// iterations finish. `body` must be safe to invoke concurrently on
/// disjoint indices. Serial when (end - begin) is small or the calling
/// thread's budget is one thread.
///
/// The pool is re-entrant: concurrent top-level calls from different
/// threads are safe, and a call nested inside a parallel region runs
/// inline on the calling thread unless that region granted it an inner
/// budget (see ParallelForOuter) — it never deadlocks and never
/// oversubscribes the thread budget.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body);

/// Chunked variant: body(chunk_begin, chunk_end) per worker. Use when per-
/// iteration work is tiny and loop overhead matters (e.g. elementwise ops).
void ParallelForChunked(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& body);

/// Pins the calling thread's nested-parallelism budget for the lifetime of
/// the scope: ParallelFor/ParallelForChunked calls made from this thread
/// fan out to at most \p budget chunks (1 = run inline), exactly as if the
/// thread were executing an outer shard that granted it that inner budget.
///
/// For long-lived threads that are NOT pool workers — serve::Service's
/// request workers — which would otherwise count as top-level callers and
/// fan every nested conv GEMM out to the whole pool, oversubscribing it
/// W-fold when W workers scan concurrently. Scopes must not be nested.
class ParallelBudgetScope {
 public:
  explicit ParallelBudgetScope(int budget);
  ~ParallelBudgetScope();

  ParallelBudgetScope(const ParallelBudgetScope&) = delete;
  ParallelBudgetScope& operator=(const ParallelBudgetScope&) = delete;

 private:
  int saved_depth_;
  int saved_budget_;
};

/// Outer-level sharded loop for serving: cuts [begin, end) into
/// PlanOuterShards(end - begin, max_shards).shards contiguous shards and
/// runs body(shard, shard_begin, shard_end) with at most `shards` shards
/// executing concurrently. `shard` is a stable index in [0, shards) — at
/// most one chunk per shard index runs at any time, so it can select
/// per-shard state (model replicas, scratch buffers).
///
/// Inner ParallelFor/ParallelForChunked calls made from inside `body`
/// receive the plan's per-shard inner budget: they fan out to
/// NumThreads() / shards chunks when threads outnumber shards, and run
/// inline otherwise. Called from inside another parallel region (or with
/// a single-shard plan) the loop runs inline as one shard.
void ParallelForOuter(
    int64_t begin, int64_t end, int max_shards,
    const std::function<void(int, int64_t, int64_t)>& body);

}  // namespace camal

#endif  // CAMAL_COMMON_PARALLEL_FOR_H_
