#ifndef CAMAL_COMMON_PARALLEL_FOR_H_
#define CAMAL_COMMON_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace camal {

/// Returns the worker count used by ParallelFor. Defaults to the hardware
/// concurrency, clamped to [1, 32]; override with the CAMAL_THREADS
/// environment variable (CAMAL_THREADS=1 forces serial execution).
int NumThreads();

/// Runs body(i) for i in [begin, end) across the process-wide thread pool.
///
/// Iterations are split into contiguous chunks, one per worker. The call
/// blocks until all iterations finish. `body` must be safe to invoke
/// concurrently on disjoint indices. Serial when (end - begin) is small or
/// NumThreads() == 1. Nested ParallelFor calls execute the inner loop
/// serially (the pool is not re-entrant).
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body);

/// Chunked variant: body(chunk_begin, chunk_end) per worker. Use when per-
/// iteration work is tiny and loop overhead matters (e.g. elementwise ops).
void ParallelForChunked(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& body);

}  // namespace camal

#endif  // CAMAL_COMMON_PARALLEL_FOR_H_
