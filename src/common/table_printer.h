#ifndef CAMAL_COMMON_TABLE_PRINTER_H_
#define CAMAL_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace camal {

/// Renders aligned ASCII tables; used by the bench binaries to print the
/// rows/series that the paper's tables and figures report.
///
/// Usage:
///   TablePrinter t({"Dataset", "Case", "F1", "MAE"});
///   t.AddRow({"REFIT", "Dishwasher", Fmt(0.54), Fmt(44.8)});
///   t.Print(stdout);
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> cells);

  /// Writes the table (with separators) to \p out.
  void Print(std::FILE* out) const;

  /// Renders the table to a string (for tests).
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with \p decimals decimal places.
std::string Fmt(double value, int decimals = 3);

/// Formats an integer as plain digits (e.g. 12'418'000 -> "12418000").
std::string FmtInt(int64_t value);

}  // namespace camal

#endif  // CAMAL_COMMON_TABLE_PRINTER_H_
