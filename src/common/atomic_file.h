#ifndef CAMAL_COMMON_ATOMIC_FILE_H_
#define CAMAL_COMMON_ATOMIC_FILE_H_

#include <cstdio>
#include <string>

#include "common/status.h"

namespace camal {

class FaultInjector;

/// Crash-safe file writer: bytes go to a temp file in the destination's
/// directory, and Commit fsyncs then renames it over the destination —
/// so readers only ever see the old complete file or the new complete
/// file, never a partial one. A writer destroyed (or failed) before
/// Commit removes its temp file and leaves the destination untouched.
///
/// Every durable file in src/serve/ and src/data/ is written through
/// this class (invariant R6, scripts/check_invariants.py): a naked
/// fopen-for-write on a persisted path is exactly the torn-file bug the
/// session checkpointer exists to rule out.
///
/// \p faults (borrowed, optional) threads the fault-injection seams
/// through the IO: FaultInjector::OnWrite may fail any Write with
/// kIoError, and OnFileCommitted may tear the committed file — the
/// hooks the crash-matrix tests drive.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path, FaultInjector* faults = nullptr);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Buffers \p size bytes into the temp file. After any failure the
  /// writer is dead: further Writes and Commit return the first error.
  Status Write(const void* bytes, size_t size);

  /// Flushes, fsyncs, closes, and renames the temp file over the
  /// destination. After an OK Commit the destination is durably the new
  /// content; after a failed one it is untouched (temp removed).
  /// Calling Commit twice, or after a failed Write, returns the error.
  Status Commit();

  const std::string& path() const { return path_; }

 private:
  /// Records the first failure, closes and removes the temp file.
  Status Fail(Status status);

  const std::string path_;
  const std::string temp_path_;
  FaultInjector* const faults_;
  std::FILE* file_ = nullptr;
  bool committed_ = false;
  Status status_;
};

/// One-shot convenience over AtomicFileWriter: atomically replaces
/// \p path with \p size bytes. On any failure the previous content of
/// \p path (or its absence) is preserved.
Status WriteFileAtomic(const std::string& path, const void* bytes,
                       size_t size, FaultInjector* faults = nullptr);

}  // namespace camal

#endif  // CAMAL_COMMON_ATOMIC_FILE_H_
