#ifndef CAMAL_COMMON_THREAD_ANNOTATIONS_H_
#define CAMAL_COMMON_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// Clang Thread Safety Analysis attribute macros (the Abseil/LLVM idiom):
/// declare which mutex guards a field and which lock a function needs, and
/// clang proves every access at COMPILE time (-Werror=thread-safety in CI)
/// instead of hoping the TSan job happens to hit the bad interleaving.
/// GCC has no such analysis; the macros expand to nothing there, so the
/// annotations cost nothing outside clang builds.
///
/// Use via common/mutex.h — camal::Mutex / camal::MutexLock / camal::CondVar
/// are the annotated primitives — not by annotating std::mutex directly
/// (the standard library types carry no capability attributes, so the
/// analysis cannot see through them).

#if defined(__clang__) && !defined(SWIG)
#define CAMAL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CAMAL_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability (mutexes).
#define CAMAL_CAPABILITY(x) CAMAL_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define CAMAL_SCOPED_CAPABILITY CAMAL_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a field/variable may only be accessed while holding \p x.
#define CAMAL_GUARDED_BY(x) CAMAL_THREAD_ANNOTATION_(guarded_by(x))

/// Declares that the data POINTED TO may only be accessed holding \p x.
#define CAMAL_PT_GUARDED_BY(x) CAMAL_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that a function may only be called while holding the given
/// capabilities (the `...Locked` helper contract).
#define CAMAL_REQUIRES(...) \
  CAMAL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Declares that a function acquires the given capabilities and holds them
/// on return.
#define CAMAL_ACQUIRE(...) \
  CAMAL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Declares that a function releases the given capabilities.
#define CAMAL_RELEASE(...) \
  CAMAL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Declares that a function tries to acquire the capability and returns
/// \p ret on success.
#define CAMAL_TRY_ACQUIRE(ret, ...) \
  CAMAL_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Declares that a function must NOT be called while holding the given
/// capabilities (deadlock prevention for non-reentrant locks).
#define CAMAL_EXCLUDES(...) \
  CAMAL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that a function returns a reference to the given capability.
#define CAMAL_RETURN_CAPABILITY(x) CAMAL_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Every use must
/// carry a comment explaining why the invariant holds anyway (see
/// scripts/check_invariants.py, which counts these).
#define CAMAL_NO_THREAD_SAFETY_ANALYSIS \
  CAMAL_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // CAMAL_COMMON_THREAD_ANNOTATIONS_H_
