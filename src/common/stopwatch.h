#ifndef CAMAL_COMMON_STOPWATCH_H_
#define CAMAL_COMMON_STOPWATCH_H_

#include <chrono>

namespace camal {

/// Wall-clock stopwatch for timing training / inference (Fig. 7 experiments).
class Stopwatch {
 public:
  /// Starts (or restarts) the stopwatch.
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace camal

#endif  // CAMAL_COMMON_STOPWATCH_H_
