#ifndef CAMAL_COMMON_CHECK_H_
#define CAMAL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file check.h
/// CHECK-style assertion macros for programmer errors (contract violations).
/// These abort the process with a message; they are *not* for recoverable
/// errors, which use camal::Status / camal::Result instead.

#define CAMAL_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "CAMAL_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define CAMAL_CHECK_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "CAMAL_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                           \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define CAMAL_CHECK_EQ(a, b) CAMAL_CHECK((a) == (b))
#define CAMAL_CHECK_NE(a, b) CAMAL_CHECK((a) != (b))
#define CAMAL_CHECK_LT(a, b) CAMAL_CHECK((a) < (b))
#define CAMAL_CHECK_LE(a, b) CAMAL_CHECK((a) <= (b))
#define CAMAL_CHECK_GT(a, b) CAMAL_CHECK((a) > (b))
#define CAMAL_CHECK_GE(a, b) CAMAL_CHECK((a) >= (b))

#endif  // CAMAL_COMMON_CHECK_H_
