#include "common/fault_injection.h"

#include <filesystem>
#include <stdexcept>
#include <utility>

namespace camal {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultInjector::OnScan(const std::string& label) {
  // Copy the hook out and run it unlocked: a hook that blocks (barrier
  // tests) or sleeps (pinned-cost benches) must not hold the injector's
  // lock against other workers.
  std::function<void(const std::string&)> hook;
  {
    MutexLock lock(&mu_);
    hook = scan_hook_;
  }
  if (hook) hook(label);

  bool fault = false;
  int64_t index = 0;
  {
    MutexLock lock(&mu_);
    ++scans_;
    const bool matches = plan_.scan_label.empty() || label == plan_.scan_label;
    if (matches) {
      index = ++matching_scans_;
      if (plan_.fail_scan_at > 0) {
        fault = index >= plan_.fail_scan_at &&
                index < plan_.fail_scan_at + plan_.fail_scan_count;
      } else if (plan_.scan_fault_rate > 0.0) {
        fault = rng_.Bernoulli(plan_.scan_fault_rate);
      } else if (!plan_.scan_label.empty()) {
        fault = true;  // labeled plan with no window: always poison
      }
    }
    if (fault) ++faults_;
  }
  if (fault) {
    throw std::runtime_error("injected scan fault for '" + label +
                             "' (matching scan " + std::to_string(index) +
                             ")");
  }
}

Status FaultInjector::OnWrite(const std::string& path) {
  MutexLock lock(&mu_);
  ++writes_;
  if (plan_.fail_write_at > 0 && writes_ == plan_.fail_write_at) {
    ++faults_;
    return Status::IoError("injected write fault on " + path + " (write " +
                           std::to_string(writes_) + ")");
  }
  return Status::OK();
}

void FaultInjector::OnFileCommitted(const std::string& path) {
  bool torn = false;
  {
    MutexLock lock(&mu_);
    ++commits_;
    torn = plan_.truncate_commit_at > 0 &&
           commits_ == plan_.truncate_commit_at;
    if (torn) ++faults_;
  }
  if (torn) {
    // The crash-after-rename torn write: the destination exists but its
    // tail never reached disk. resize_file is the deterministic stand-in.
    std::error_code ec;
    std::filesystem::resize_file(
        path, static_cast<uintmax_t>(plan_.truncate_to_bytes), ec);
  }
}

void FaultInjector::set_scan_hook(
    std::function<void(const std::string&)> hook) {
  MutexLock lock(&mu_);
  scan_hook_ = std::move(hook);
}

int64_t FaultInjector::scans() const {
  MutexLock lock(&mu_);
  return scans_;
}

int64_t FaultInjector::writes() const {
  MutexLock lock(&mu_);
  return writes_;
}

int64_t FaultInjector::faults_injected() const {
  MutexLock lock(&mu_);
  return faults_;
}

}  // namespace camal
