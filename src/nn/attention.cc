#include "nn/attention.h"

#include <cmath>

#include "nn/init.h"

namespace camal::nn {
namespace {

// (N, D, L) -> per-sample (L, D) matrix.
Tensor ToLd(const Tensor& x, int64_t sample) {
  const int64_t d = x.dim(1), l = x.dim(2);
  Tensor out({l, d});
  for (int64_t t = 0; t < l; ++t) {
    for (int64_t j = 0; j < d; ++j) out.at2(t, j) = x.at3(sample, j, t);
  }
  return out;
}

// One sample's attention output (L, D). When the cache out-params are
// non-null the tensors Backward consumes are moved into them (the
// training path); inference passes nulls and keeps nothing.
Tensor AttendSample(const Tensor& x, int64_t ni, const Tensor& wq,
                    const Tensor& wk, const Tensor& wv, const Tensor& wo,
                    int64_t num_heads, int64_t d_head, Tensor* q_out,
                    Tensor* k_out, Tensor* v_out, Tensor* attn_out,
                    Tensor* ctx_out) {
  const int64_t d_model = x.dim(1), l = x.dim(2);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head));
  Tensor xs = ToLd(x, ni);                 // (L, D)
  Tensor q = MatMulTransposeB(xs, wq);     // (L, D)
  Tensor k = MatMulTransposeB(xs, wk);
  Tensor v = MatMulTransposeB(xs, wv);

  Tensor attn({num_heads, l, l});
  Tensor ctx({l, d_model});
  for (int64_t hh = 0; hh < num_heads; ++hh) {
    const int64_t off = hh * d_head;
    // Scores + softmax per query position.
    for (int64_t i = 0; i < l; ++i) {
      float max_s = -1e30f;
      for (int64_t j = 0; j < l; ++j) {
        float s = 0.0f;
        for (int64_t p = 0; p < d_head; ++p) {
          s += q.at2(i, off + p) * k.at2(j, off + p);
        }
        s *= scale;
        attn.at3(hh, i, j) = s;
        if (s > max_s) max_s = s;
      }
      float denom = 0.0f;
      for (int64_t j = 0; j < l; ++j) {
        const float e = std::exp(attn.at3(hh, i, j) - max_s);
        attn.at3(hh, i, j) = e;
        denom += e;
      }
      const float inv = 1.0f / denom;
      for (int64_t j = 0; j < l; ++j) attn.at3(hh, i, j) *= inv;
      // Context row for this head.
      for (int64_t p = 0; p < d_head; ++p) {
        float acc = 0.0f;
        for (int64_t j = 0; j < l; ++j) {
          acc += attn.at3(hh, i, j) * v.at2(j, off + p);
        }
        ctx.at2(i, off + p) = acc;
      }
    }
  }
  Tensor out = MatMulTransposeB(ctx, wo);  // (L, D)
  if (q_out != nullptr) {
    *q_out = std::move(q);
    *k_out = std::move(k);
    *v_out = std::move(v);
    *attn_out = std::move(attn);
    *ctx_out = std::move(ctx);
  }
  return out;
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t d_model,
                                               int64_t num_heads, Rng* rng)
    : d_model_(d_model), num_heads_(num_heads), d_head_(d_model / num_heads) {
  CAMAL_CHECK_GT(num_heads, 0);
  CAMAL_CHECK_EQ(d_head_ * num_heads_, d_model_);
  auto init = [&](Parameter* p, const char* name) {
    p->name = name;
    p->value = Tensor({d_model_, d_model_});
    p->grad = Tensor(p->value.shape());
    XavierUniform(&p->value, d_model_, d_model_, rng);
  };
  init(&wq_, "mhsa.wq");
  init(&wk_, "mhsa.wk");
  init(&wv_, "mhsa.wv");
  init(&wo_, "mhsa.wo");
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  CAMAL_CHECK_EQ(x.dim(1), d_model_);
  input_ = x;
  const int64_t n = x.dim(0), l = x.dim(2);

  q_.clear();
  k_.clear();
  v_.clear();
  attn_.clear();
  context_.clear();
  Tensor y({n, d_model_, l});

  for (int64_t ni = 0; ni < n; ++ni) {
    Tensor q, k, v, attn, ctx;
    Tensor out =
        AttendSample(x, ni, wq_.value, wk_.value, wv_.value, wo_.value,
                     num_heads_, d_head_, &q, &k, &v, &attn, &ctx);
    for (int64_t t = 0; t < l; ++t) {
      for (int64_t j = 0; j < d_model_; ++j) y.at3(ni, j, t) = out.at2(t, j);
    }
    q_.push_back(std::move(q));
    k_.push_back(std::move(k));
    v_.push_back(std::move(v));
    attn_.push_back(std::move(attn));
    context_.push_back(std::move(ctx));
  }
  return y;
}

Tensor MultiHeadSelfAttention::ForwardInference(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  CAMAL_CHECK_EQ(x.dim(1), d_model_);
  const int64_t n = x.dim(0), l = x.dim(2);
  Tensor y = Tensor::Uninitialized({n, d_model_, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    Tensor out =
        AttendSample(x, ni, wq_.value, wk_.value, wv_.value, wo_.value,
                     num_heads_, d_head_, nullptr, nullptr, nullptr, nullptr,
                     nullptr);
    for (int64_t t = 0; t < l; ++t) {
      for (int64_t j = 0; j < d_model_; ++j) y.at3(ni, j, t) = out.at2(t, j);
    }
  }
  return y;
}

Tensor MultiHeadSelfAttention::Backward(const Tensor& grad_output) {
  const int64_t n = input_.dim(0), l = input_.dim(2);
  CAMAL_CHECK(grad_output.SameShape(input_));
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head_));
  Tensor grad_input({n, d_model_, l});

  for (int64_t ni = 0; ni < n; ++ni) {
    Tensor gy = ToLd(grad_output, ni);  // (L, D)
    // Output projection: ctx -> out. d_ctx = gy Wo; dWo += gy^T ctx.
    Tensor dwo = MatMulTransposeA(gy, context_[ni]);  // (D, D)
    wo_.grad.AddInPlace(dwo);
    Tensor dctx = MatMul(gy, wo_.value);  // (L, D)

    Tensor dq({l, d_model_}), dk({l, d_model_}), dv({l, d_model_});
    const Tensor& attn = attn_[ni];
    const Tensor& q = q_[ni];
    const Tensor& k = k_[ni];
    const Tensor& v = v_[ni];
    for (int64_t hh = 0; hh < num_heads_; ++hh) {
      const int64_t off = hh * d_head_;
      for (int64_t i = 0; i < l; ++i) {
        // dA[i, j] = sum_p dctx[i, off+p] * v[j, off+p]
        // dV[j] += A[i, j] * dctx[i]
        std::vector<float> dA(static_cast<size_t>(l), 0.0f);
        for (int64_t j = 0; j < l; ++j) {
          float acc = 0.0f;
          const float a = attn.at3(hh, i, j);
          for (int64_t p = 0; p < d_head_; ++p) {
            acc += dctx.at2(i, off + p) * v.at2(j, off + p);
            dv.at2(j, off + p) += a * dctx.at2(i, off + p);
          }
          dA[static_cast<size_t>(j)] = acc;
        }
        // Softmax backward: dS = A * (dA - sum_j A dA).
        double dot = 0.0;
        for (int64_t j = 0; j < l; ++j) {
          dot += static_cast<double>(attn.at3(hh, i, j)) *
                 dA[static_cast<size_t>(j)];
        }
        for (int64_t j = 0; j < l; ++j) {
          const float ds = attn.at3(hh, i, j) *
                           (dA[static_cast<size_t>(j)] -
                            static_cast<float>(dot)) * scale;
          for (int64_t p = 0; p < d_head_; ++p) {
            dq.at2(i, off + p) += ds * k.at2(j, off + p);
            dk.at2(j, off + p) += ds * q.at2(i, off + p);
          }
        }
      }
    }

    // Projections: q = x Wq^T => dWq += dq^T x; dx += dq Wq.
    Tensor xs = ToLd(input_, ni);
    wq_.grad.AddInPlace(MatMulTransposeA(dq, xs));
    wk_.grad.AddInPlace(MatMulTransposeA(dk, xs));
    wv_.grad.AddInPlace(MatMulTransposeA(dv, xs));
    Tensor dxs = MatMul(dq, wq_.value);
    dxs.AddInPlace(MatMul(dk, wk_.value));
    dxs.AddInPlace(MatMul(dv, wv_.value));
    for (int64_t t = 0; t < l; ++t) {
      for (int64_t j = 0; j < d_model_; ++j) {
        grad_input.at3(ni, j, t) = dxs.at2(t, j);
      }
    }
  }
  return grad_input;
}

void MultiHeadSelfAttention::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&wq_);
  out->push_back(&wk_);
  out->push_back(&wv_);
  out->push_back(&wo_);
}

}  // namespace camal::nn
