#ifndef CAMAL_NN_TENSOR_H_
#define CAMAL_NN_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace camal::nn {

/// Allocator for kernel-facing float buffers: 64-byte aligned (full
/// cache-line / zmm-register alignment for the GEMM kernels) and with a
/// no-op default-construct, so resize() on a fresh vector leaves memory
/// uninitialized. Value-construction with arguments (copies, fills)
/// behaves like std::allocator.
template <typename T>
struct AlignedBufferAllocator {
  using value_type = T;
  using is_always_equal = std::true_type;

  AlignedBufferAllocator() = default;
  template <typename U>
  AlignedBufferAllocator(const AlignedBufferAllocator<U>&) {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedBufferAllocator<U>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{64}));
  }
  void deallocate(T* p, size_t) {
    ::operator delete(p, std::align_val_t{64});
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) > 0) {
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
  }
  friend bool operator==(const AlignedBufferAllocator&,
                         const AlignedBufferAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedBufferAllocator&,
                         const AlignedBufferAllocator&) {
    return false;
  }
};

/// Aligned, lazily-initialized float buffer — scratch space for kernels.
using AlignedBuffer = std::vector<float, AlignedBufferAllocator<float>>;

/// Dense row-major float32 tensor.
///
/// This is the numeric workhorse of the from-scratch deep-learning substrate:
/// all layer activations, parameters, and gradients are Tensors. Layout
/// conventions across the library:
///   - batched sequences: (N, C, L)  [batch, channels, length]
///   - flat features:     (N, F)
///   - conv weights:      (C_out, C_in, K)
/// Copying a Tensor deep-copies its storage (value semantics).
class Tensor {
 public:
  /// Empty tensor (numel() == 0, ndim() == 0).
  Tensor() = default;

  /// Allocates a zero-initialized tensor with the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  /// Zero-filled tensor of the given shape.
  static Tensor Zeros(std::vector<int64_t> shape);

  /// Allocates WITHOUT zero-filling. Only for outputs a kernel fully
  /// overwrites before anything reads them (GEMM epilogues, fused
  /// normalization passes): skipping the constructor's memset is a real
  /// win on batch-sized activations.
  static Tensor Uninitialized(std::vector<int64_t> shape);

  /// Constant-filled tensor of the given shape.
  static Tensor Full(std::vector<int64_t> shape, float value);

  /// Builds a 1-D tensor from values.
  static Tensor FromVector(const std::vector<float>& values);

  /// Number of elements.
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  /// Shape vector.
  const std::vector<int64_t>& shape() const { return shape_; }

  /// Number of dimensions.
  int ndim() const { return static_cast<int>(shape_.size()); }

  /// Size along dimension \p i (0-based; must be < ndim()).
  int64_t dim(int i) const {
    CAMAL_CHECK_GE(i, 0);
    CAMAL_CHECK_LT(i, ndim());
    return shape_[i];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Flat element access.
  float& at(int64_t i) { return data_[i]; }
  float at(int64_t i) const { return data_[i]; }

  /// 2-D access for (rows, cols) tensors.
  float& at2(int64_t r, int64_t c) { return data_[r * shape_[1] + c]; }
  float at2(int64_t r, int64_t c) const { return data_[r * shape_[1] + c]; }

  /// 3-D access for (N, C, L) tensors.
  float& at3(int64_t n, int64_t c, int64_t l) {
    return data_[(n * shape_[1] + c) * shape_[2] + l];
  }
  float at3(int64_t n, int64_t c, int64_t l) const {
    return data_[(n * shape_[1] + c) * shape_[2] + l];
  }

  /// Returns a copy with a new shape; numel must match.
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  /// Sets every element to \p value.
  void Fill(float value);

  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// True when shapes are identical (same rank and extents).
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// "(2, 64, 510)" — for error messages and tests.
  std::string ShapeString() const;

  /// this += other (shapes must match).
  void AddInPlace(const Tensor& other);

  /// this *= s.
  void ScaleInPlace(float s);

  /// Sum of all elements.
  double Sum() const;

  /// Maximum element; tensor must be non-empty.
  float Max() const;

  /// Mean of all elements; tensor must be non-empty.
  double Mean() const;

 private:
  struct UninitTag {};
  Tensor(std::vector<int64_t> shape, UninitTag);

  std::vector<int64_t> shape_;
  AlignedBuffer data_;
};

/// Elementwise a + b (shapes must match).
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise a - b (shapes must match).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise a * b (Hadamard; shapes must match).
Tensor Mul(const Tensor& a, const Tensor& b);

/// a * s.
Tensor Scale(const Tensor& a, float s);

/// Matrix product of (M, K) x (K, N) -> (M, N). Uses the register-blocked
/// (and, when the CPU supports it, AVX2+FMA) kernel from nn/gemm.h.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Matrix product a x b^T of (M, K) x (N, K) -> (M, N).
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);

/// Matrix product a^T x b of (K, M) x (K, N) -> (M, N).
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);

/// Concatenates (N, C_i, L) tensors along the channel axis.
Tensor ConcatChannels(const std::vector<Tensor>& parts);

/// Splits an (N, C, L) tensor into chunks of the given channel counts
/// (inverse of ConcatChannels; used to route gradients back to branches).
std::vector<Tensor> SplitChannels(const Tensor& x,
                                  const std::vector<int64_t>& channel_counts);

}  // namespace camal::nn

#endif  // CAMAL_NN_TENSOR_H_
