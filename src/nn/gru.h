#ifndef CAMAL_NN_GRU_H_
#define CAMAL_NN_GRU_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"

namespace camal::nn {

/// Unidirectional gated recurrent unit over (N, C, L) -> (N, H, L).
///
/// Gate equations follow the PyTorch convention (gate order r, z, n):
///   r_t = sigmoid(W_ir x_t + b_ir + W_hr h_{t-1} + b_hr)
///   z_t = sigmoid(W_iz x_t + b_iz + W_hz h_{t-1} + b_hz)
///   n_t = tanh(W_in x_t + b_in + r_t * (W_hn h_{t-1} + b_hn))
///   h_t = (1 - z_t) * n_t + z_t * h_{t-1}
/// Backward is full BPTT over the cached per-step gate activations.
class Gru : public Module {
 public:
  /// \p reverse runs the recurrence from the last timestep to the first
  /// (the backward half of a bidirectional GRU).
  Gru(int64_t input_size, int64_t hidden_size, bool reverse, Rng* rng);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Identical recurrence without the per-step gate caches BPTT needs
  /// (Forward stores five (N, H) tensors per timestep; inference keeps
  /// only the rolling hidden state).
  Tensor ForwardInference(const Tensor& x) override;

  void CollectParameters(std::vector<Parameter*>* out) override;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  // Gate block offsets within the stacked (3H, *) weights: r=0, z=H, n=2H.
  int64_t input_size_;
  int64_t hidden_size_;
  bool reverse_;
  Parameter w_ih_;  // (3H, I)
  Parameter w_hh_;  // (3H, H)
  Parameter b_ih_;  // (3H)
  Parameter b_hh_;  // (3H)
  // Cached forward state (time-ordered in processing order).
  Tensor input_;                 // (N, C, L)
  std::vector<Tensor> h_;       // L+1 entries of (N, H); h_[0] is zeros
  std::vector<Tensor> r_, z_, n_, q_;  // per-step gates; q = W_hn h + b_hn
};

/// Bidirectional GRU: concatenates a forward and a reverse Gru along the
/// channel axis, (N, C, L) -> (N, 2H, L).
class BiGru : public Module {
 public:
  BiGru(int64_t input_size, int64_t hidden_size, Rng* rng);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Both directions through the cache-free Gru::ForwardInference.
  Tensor ForwardInference(const Tensor& x) override;

  void CollectParameters(std::vector<Parameter*>* out) override;
  void SetTraining(bool training) override;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  std::unique_ptr<Gru> fwd_;
  std::unique_ptr<Gru> bwd_;
};

}  // namespace camal::nn

#endif  // CAMAL_NN_GRU_H_
