#include "nn/optimizer.h"

#include <cmath>

namespace camal::nn {

void Optimizer::ZeroGrad() {
  for (Parameter* p : params_) p->grad.Zero();
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* vel = velocity_[i].data();
    for (int64_t j = 0; j < p->value.numel(); ++j) {
      float grad = g[j] + weight_decay_ * w[j];
      vel[j] = momentum_ * vel[j] + grad;
      w[j] -= lr_ * vel[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (int64_t j = 0; j < p->value.numel(); ++j) {
      float grad = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      w[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace camal::nn
