#include "nn/linear.h"

#include "nn/init.h"

namespace camal::nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool bias, Rng* rng)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  CAMAL_CHECK_GT(in_features, 0);
  CAMAL_CHECK_GT(out_features, 0);
  weight_.name = "linear.weight";
  weight_.value = Tensor({out_features_, in_features_});
  weight_.grad = Tensor(weight_.value.shape());
  KaimingUniform(&weight_.value, in_features_, rng);
  if (has_bias_) {
    bias_.name = "linear.bias";
    bias_.value = Tensor({out_features_});
    bias_.grad = Tensor({out_features_});
    KaimingUniform(&bias_.value, in_features_, rng);
  }
}

Tensor Linear::Forward(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 2);
  CAMAL_CHECK_EQ(x.dim(1), in_features_);
  input_ = x;
  Tensor y = MatMulTransposeB(x, weight_.value);  // (N, F_out)
  if (has_bias_) {
    const int64_t n = y.dim(0);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < out_features_; ++j) {
        y.at2(i, j) += bias_.value.at(j);
      }
    }
  }
  return y;
}

Tensor Linear::ForwardInference(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 2);
  CAMAL_CHECK_EQ(x.dim(1), in_features_);
  Tensor y = MatMulTransposeB(x, weight_.value);  // (N, F_out)
  if (has_bias_) {
    const int64_t n = y.dim(0);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < out_features_; ++j) {
        y.at2(i, j) += bias_.value.at(j);
      }
    }
  }
  return y;
}

Tensor Linear::Backward(const Tensor& grad_output) {
  CAMAL_CHECK_EQ(grad_output.ndim(), 2);
  CAMAL_CHECK_EQ(grad_output.dim(1), out_features_);
  // dW = g^T x, accumulated.
  Tensor dw = MatMulTransposeA(grad_output, input_);  // (F_out, F_in)
  weight_.grad.AddInPlace(dw);
  if (has_bias_) {
    const int64_t n = grad_output.dim(0);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < out_features_; ++j) {
        bias_.grad.at(j) += grad_output.at2(i, j);
      }
    }
  }
  // dx = g W.
  return MatMul(grad_output, weight_.value);
}

void Linear::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&weight_);
  if (has_bias_) out->push_back(&bias_);
}

}  // namespace camal::nn
