#ifndef CAMAL_NN_POOLING_H_
#define CAMAL_NN_POOLING_H_

#include <vector>

#include "nn/module.h"

namespace camal::nn {

/// Max pooling over (N, C, L) with the given kernel and stride.
/// Output length is floor((L + 2*padding - kernel) / stride) + 1; padded
/// positions act as -infinity (they are never selected). padding must be
/// smaller than kernel so every window sees at least one real value.
class MaxPool1d : public Module {
 public:
  MaxPool1d(int64_t kernel, int64_t stride, int64_t padding = 0);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Forward without recording the per-output argmax Backward needs.
  Tensor ForwardInference(const Tensor& x) override;

  int64_t OutputLength(int64_t input_length) const;

  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }
  int64_t padding() const { return padding_; }

 private:
  int64_t kernel_;
  int64_t stride_;
  int64_t padding_;
  std::vector<int64_t> input_shape_;
  std::vector<int64_t> argmax_;  // flat index into input per output element
};

/// Average pooling over (N, C, L) with the given kernel and stride.
class AvgPool1d : public Module {
 public:
  AvgPool1d(int64_t kernel, int64_t stride);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Forward without caching the input shape for Backward.
  Tensor ForwardInference(const Tensor& x) override;

  int64_t OutputLength(int64_t input_length) const;

  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t kernel_;
  int64_t stride_;
  std::vector<int64_t> input_shape_;
};

/// Global average pooling (N, C, L) -> (N, C); the layer between the last
/// conv block and the linear head that makes CAM extraction possible
/// (Definition II.1 in the paper).
class GlobalAvgPool1d : public Module {
 public:
  GlobalAvgPool1d() = default;

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  std::vector<int64_t> input_shape_;
};

}  // namespace camal::nn

#endif  // CAMAL_NN_POOLING_H_
