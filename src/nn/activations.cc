#include "nn/activations.h"

#include <cmath>

namespace camal::nn {

float SigmoidScalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }

Tensor ReLU::Forward(const Tensor& x) {
  input_ = x;
  Tensor y = x;
  float* d = y.data();
  for (int64_t i = 0; i < y.numel(); ++i) d[i] = d[i] > 0.0f ? d[i] : 0.0f;
  return y;
}

Tensor ReLU::ForwardInference(const Tensor& x) {
  Tensor y = x;
  float* d = y.data();
  for (int64_t i = 0; i < y.numel(); ++i) d[i] = d[i] > 0.0f ? d[i] : 0.0f;
  return y;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  CAMAL_CHECK(grad_output.SameShape(input_));
  Tensor g = grad_output;
  float* d = g.data();
  const float* in = input_.data();
  for (int64_t i = 0; i < g.numel(); ++i) {
    if (in[i] <= 0.0f) d[i] = 0.0f;
  }
  return g;
}

Tensor Sigmoid::Forward(const Tensor& x) {
  Tensor y = x;
  float* d = y.data();
  for (int64_t i = 0; i < y.numel(); ++i) d[i] = SigmoidScalar(d[i]);
  output_ = y;
  return y;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  CAMAL_CHECK(grad_output.SameShape(output_));
  Tensor g = grad_output;
  float* d = g.data();
  const float* s = output_.data();
  for (int64_t i = 0; i < g.numel(); ++i) d[i] *= s[i] * (1.0f - s[i]);
  return g;
}

Tensor Tanh::Forward(const Tensor& x) {
  Tensor y = x;
  float* d = y.data();
  for (int64_t i = 0; i < y.numel(); ++i) d[i] = std::tanh(d[i]);
  output_ = y;
  return y;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  CAMAL_CHECK(grad_output.SameShape(output_));
  Tensor g = grad_output;
  float* d = g.data();
  const float* t = output_.data();
  for (int64_t i = 0; i < g.numel(); ++i) d[i] *= 1.0f - t[i] * t[i];
  return g;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;
}  // namespace

Tensor Gelu::Forward(const Tensor& x) {
  input_ = x;
  Tensor y = x;
  float* d = y.data();
  for (int64_t i = 0; i < y.numel(); ++i) {
    const float v = d[i];
    d[i] = 0.5f * v * (1.0f + std::tanh(kGeluC * (v + kGeluA * v * v * v)));
  }
  return y;
}

Tensor Gelu::Backward(const Tensor& grad_output) {
  CAMAL_CHECK(grad_output.SameShape(input_));
  Tensor g = grad_output;
  float* d = g.data();
  const float* in = input_.data();
  for (int64_t i = 0; i < g.numel(); ++i) {
    const float v = in[i];
    const float u = kGeluC * (v + kGeluA * v * v * v);
    const float t = std::tanh(u);
    const float du = kGeluC * (1.0f + 3.0f * kGeluA * v * v);
    d[i] *= 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
  }
  return g;
}

}  // namespace camal::nn
