#include "nn/batchnorm1d.h"

#include <cmath>

namespace camal::nn {

BatchNorm1d::BatchNorm1d(int64_t channels, float eps, float momentum)
    : channels_(channels), eps_(eps), momentum_(momentum) {
  CAMAL_CHECK_GT(channels, 0);
  gamma_.name = "bn.gamma";
  gamma_.value = Tensor::Full({channels_}, 1.0f);
  gamma_.grad = Tensor({channels_});
  beta_.name = "bn.beta";
  beta_.value = Tensor({channels_});
  beta_.grad = Tensor({channels_});
  running_mean_ = Tensor({channels_});
  running_var_ = Tensor::Full({channels_}, 1.0f);
}

Tensor BatchNorm1d::Forward(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  CAMAL_CHECK_EQ(x.dim(1), channels_);
  const int64_t n = x.dim(0), c = channels_, l = x.dim(2);
  const int64_t count = n * l;
  forward_was_training_ = training();

  Tensor mean({c}), var({c});
  if (training()) {
    for (int64_t ci = 0; ci < c; ++ci) {
      double sum = 0.0, sq = 0.0;
      for (int64_t ni = 0; ni < n; ++ni) {
        const float* row = x.data() + (ni * c + ci) * l;
        for (int64_t t = 0; t < l; ++t) {
          sum += row[t];
          sq += static_cast<double>(row[t]) * row[t];
        }
      }
      const double m = sum / count;
      const double v = sq / count - m * m;
      mean.at(ci) = static_cast<float>(m);
      var.at(ci) = static_cast<float>(v > 0.0 ? v : 0.0);
      running_mean_.at(ci) = (1.0f - momentum_) * running_mean_.at(ci) +
                             momentum_ * mean.at(ci);
      // Unbiased variance for the running estimate (PyTorch convention).
      const float unbiased =
          count > 1 ? var.at(ci) * count / static_cast<float>(count - 1)
                    : var.at(ci);
      running_var_.at(ci) =
          (1.0f - momentum_) * running_var_.at(ci) + momentum_ * unbiased;
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  inv_std_ = Tensor({c});
  for (int64_t ci = 0; ci < c; ++ci) {
    inv_std_.at(ci) = 1.0f / std::sqrt(var.at(ci) + eps_);
  }

  x_hat_ = Tensor({n, c, l});
  Tensor y({n, c, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float m = mean.at(ci), is = inv_std_.at(ci);
      const float g = gamma_.value.at(ci), b = beta_.value.at(ci);
      const float* row = x.data() + (ni * c + ci) * l;
      float* xh = x_hat_.data() + (ni * c + ci) * l;
      float* out = y.data() + (ni * c + ci) * l;
      for (int64_t t = 0; t < l; ++t) {
        xh[t] = (row[t] - m) * is;
        out[t] = g * xh[t] + b;
      }
    }
  }
  return y;
}

void BatchNorm1d::FusedAffine(std::vector<float>* scale,
                              std::vector<float>* shift) const {
  scale->resize(static_cast<size_t>(channels_));
  shift->resize(static_cast<size_t>(channels_));
  for (int64_t ci = 0; ci < channels_; ++ci) {
    const float is = 1.0f / std::sqrt(running_var_.at(ci) + eps_);
    (*scale)[static_cast<size_t>(ci)] = gamma_.value.at(ci) * is;
    (*shift)[static_cast<size_t>(ci)] =
        beta_.value.at(ci) - gamma_.value.at(ci) * is * running_mean_.at(ci);
  }
}

Tensor BatchNorm1d::ForwardInference(const Tensor& x) {
  if (training()) return Forward(x);
  CAMAL_CHECK_EQ(x.ndim(), 3);
  CAMAL_CHECK_EQ(x.dim(1), channels_);
  const int64_t n = x.dim(0), c = channels_, l = x.dim(2);
  // y = gamma * (x - mean) * inv_std + beta == scale * x + shift.
  std::vector<float> scale, shift;
  FusedAffine(&scale, &shift);
  Tensor y = Tensor::Uninitialized({n, c, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float a = scale[static_cast<size_t>(ci)];
      const float b = shift[static_cast<size_t>(ci)];
      const float* row = x.data() + (ni * c + ci) * l;
      float* out = y.data() + (ni * c + ci) * l;
      for (int64_t t = 0; t < l; ++t) out[t] = a * row[t] + b;
    }
  }
  return y;
}

Tensor BatchNorm1d::Backward(const Tensor& grad_output) {
  const int64_t n = x_hat_.dim(0), c = channels_, l = x_hat_.dim(2);
  CAMAL_CHECK(grad_output.SameShape(x_hat_));
  const int64_t count = n * l;
  Tensor grad_input({n, c, l});

  for (int64_t ci = 0; ci < c; ++ci) {
    // Accumulate per-channel sums of g and g * x_hat.
    double sum_g = 0.0, sum_gx = 0.0;
    for (int64_t ni = 0; ni < n; ++ni) {
      const float* go = grad_output.data() + (ni * c + ci) * l;
      const float* xh = x_hat_.data() + (ni * c + ci) * l;
      for (int64_t t = 0; t < l; ++t) {
        sum_g += go[t];
        sum_gx += static_cast<double>(go[t]) * xh[t];
      }
    }
    gamma_.grad.at(ci) += static_cast<float>(sum_gx);
    beta_.grad.at(ci) += static_cast<float>(sum_g);

    const float g = gamma_.value.at(ci), is = inv_std_.at(ci);
    if (forward_was_training_) {
      const float mean_g = static_cast<float>(sum_g / count);
      const float mean_gx = static_cast<float>(sum_gx / count);
      for (int64_t ni = 0; ni < n; ++ni) {
        const float* go = grad_output.data() + (ni * c + ci) * l;
        const float* xh = x_hat_.data() + (ni * c + ci) * l;
        float* gi = grad_input.data() + (ni * c + ci) * l;
        for (int64_t t = 0; t < l; ++t) {
          gi[t] = g * is * (go[t] - mean_g - xh[t] * mean_gx);
        }
      }
    } else {
      // Eval mode: running stats are constants w.r.t. the input.
      for (int64_t ni = 0; ni < n; ++ni) {
        const float* go = grad_output.data() + (ni * c + ci) * l;
        float* gi = grad_input.data() + (ni * c + ci) * l;
        for (int64_t t = 0; t < l; ++t) gi[t] = g * is * go[t];
      }
    }
  }
  return grad_input;
}

void BatchNorm1d::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&gamma_);
  out->push_back(&beta_);
}

void BatchNorm1d::CollectBuffers(std::vector<Tensor*>* out) {
  out->push_back(&running_mean_);
  out->push_back(&running_var_);
}

}  // namespace camal::nn
