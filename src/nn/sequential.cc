#include "nn/sequential.h"

namespace camal::nn {

Tensor Sequential::Forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->Forward(h);
  return h;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

void Sequential::CollectParameters(std::vector<Parameter*>* out) {
  for (auto& layer : layers_) layer->CollectParameters(out);
}

void Sequential::CollectBuffers(std::vector<Tensor*>* out) {
  for (auto& layer : layers_) layer->CollectBuffers(out);
}

void Sequential::SetTraining(bool training) {
  Module::SetTraining(training);
  for (auto& layer : layers_) layer->SetTraining(training);
}

Residual::Residual(std::unique_ptr<Module> body,
                   std::unique_ptr<Module> shortcut)
    : body_(std::move(body)), shortcut_(std::move(shortcut)) {
  CAMAL_CHECK(body_ != nullptr);
}

Tensor Residual::Forward(const Tensor& x) {
  Tensor main = body_->Forward(x);
  Tensor skip = shortcut_ ? shortcut_->Forward(x) : x;
  CAMAL_CHECK_MSG(main.SameShape(skip),
                  "residual body/shortcut shape mismatch");
  return Add(main, skip);
}

Tensor Residual::Backward(const Tensor& grad_output) {
  Tensor g_body = body_->Backward(grad_output);
  Tensor g_skip =
      shortcut_ ? shortcut_->Backward(grad_output) : grad_output;
  return Add(g_body, g_skip);
}

void Residual::CollectParameters(std::vector<Parameter*>* out) {
  body_->CollectParameters(out);
  if (shortcut_) shortcut_->CollectParameters(out);
}

void Residual::CollectBuffers(std::vector<Tensor*>* out) {
  body_->CollectBuffers(out);
  if (shortcut_) shortcut_->CollectBuffers(out);
}

void Residual::SetTraining(bool training) {
  Module::SetTraining(training);
  body_->SetTraining(training);
  if (shortcut_) shortcut_->SetTraining(training);
}

}  // namespace camal::nn
