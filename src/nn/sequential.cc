#include "nn/sequential.h"

#include <vector>

#include "nn/activations.h"
#include "nn/batchnorm1d.h"
#include "nn/conv1d.h"
#include "nn/pooling.h"

namespace camal::nn {

Tensor Sequential::Forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->Forward(h);
  return h;
}

Tensor Sequential::ForwardInference(const Tensor& x) {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size();) {
    // ReLU runs in place: h is always a private copy inside this loop, so
    // the clamp needs no extra tensor (the training path must keep the
    // pre-activation for Backward; inference does not).
    if (dynamic_cast<ReLU*>(layers_[i].get()) != nullptr) {
      float* d = h.data();
      for (int64_t j = 0; j < h.numel(); ++j) {
        if (d[j] < 0.0f) d[j] = 0.0f;
      }
      ++i;
      continue;
    }
    // Collapse Residual -> ReLU into the shortcut addition.
    auto* residual = dynamic_cast<Residual*>(layers_[i].get());
    if (residual != nullptr && i + 1 < layers_.size() &&
        dynamic_cast<ReLU*>(layers_[i + 1].get()) != nullptr) {
      h = residual->ForwardInferenceRelu(h);
      i += 2;
      continue;
    }
    // Collapse Conv [-> BatchNorm(eval)] [-> ReLU]
    // [-> MaxPool/AvgPool(w, w)] into one fused pass: the BatchNorm
    // affine, the ReLU clamp, and the non-overlapping pool all ride in
    // the conv GEMM epilogue instead of re-streaming the activation
    // tensor once per layer — with a fused pool the full-size activation
    // never materializes at all.
    auto* conv = dynamic_cast<Conv1d*>(layers_[i].get());
    if (conv != nullptr) {
      size_t next = i + 1;
      std::vector<float> scale, shift;
      bool have_bn = false;
      if (next < layers_.size()) {
        auto* bn = dynamic_cast<BatchNorm1d*>(layers_[next].get());
        if (bn != nullptr && !bn->training()) {
          bn->FusedAffine(&scale, &shift);
          have_bn = true;
          ++next;
        }
      }
      bool fuse_relu = false;
      if (next < layers_.size() &&
          dynamic_cast<ReLU*>(layers_[next].get()) != nullptr) {
        fuse_relu = true;
        ++next;
      }
      ConvPool pool = ConvPool::kNone;
      int64_t pool_size = 1;
      if (next < layers_.size()) {
        if (auto* mp = dynamic_cast<MaxPool1d*>(layers_[next].get());
            mp != nullptr && mp->kernel() == mp->stride() &&
            mp->padding() == 0 && ConvGemmSupportsPool(mp->kernel())) {
          pool = ConvPool::kMax;
          pool_size = mp->kernel();
          ++next;
        } else if (auto* ap = dynamic_cast<AvgPool1d*>(layers_[next].get());
                   ap != nullptr && ap->kernel() == ap->stride() &&
                   ConvGemmSupportsPool(ap->kernel())) {
          pool = ConvPool::kAvg;
          pool_size = ap->kernel();
          ++next;
        }
      }
      if (have_bn || fuse_relu || pool != ConvPool::kNone) {
        h = conv->ForwardInferenceFused(
            h, have_bn ? scale.data() : nullptr,
            have_bn ? shift.data() : nullptr, fuse_relu, pool, pool_size);
        i = next;
        continue;
      }
    }
    h = layers_[i]->ForwardInference(h);
    ++i;
  }
  return h;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

void Sequential::CollectParameters(std::vector<Parameter*>* out) {
  for (auto& layer : layers_) layer->CollectParameters(out);
}

void Sequential::CollectBuffers(std::vector<Tensor*>* out) {
  for (auto& layer : layers_) layer->CollectBuffers(out);
}

void Sequential::SetTraining(bool training) {
  Module::SetTraining(training);
  for (auto& layer : layers_) layer->SetTraining(training);
}

Residual::Residual(std::unique_ptr<Module> body,
                   std::unique_ptr<Module> shortcut)
    : body_(std::move(body)), shortcut_(std::move(shortcut)) {
  CAMAL_CHECK(body_ != nullptr);
}

Tensor Residual::Forward(const Tensor& x) {
  Tensor main = body_->Forward(x);
  Tensor skip = shortcut_ ? shortcut_->Forward(x) : x;
  CAMAL_CHECK_MSG(main.SameShape(skip),
                  "residual body/shortcut shape mismatch");
  return Add(main, skip);
}

namespace {

// out += other, optionally clamped at zero, in one pass.
void AddInPlaceMaybeRelu(Tensor* out, const Tensor& other, bool relu) {
  CAMAL_CHECK_MSG(out->SameShape(other),
                  "residual body/shortcut shape mismatch");
  float* d = out->data();
  const float* s = other.data();
  const int64_t n = out->numel();
  if (relu) {
    for (int64_t i = 0; i < n; ++i) {
      const float v = d[i] + s[i];
      d[i] = v > 0.0f ? v : 0.0f;
    }
  } else {
    for (int64_t i = 0; i < n; ++i) d[i] += s[i];
  }
}

}  // namespace

Tensor Residual::RunInference(const Tensor& x, bool relu) {
  Tensor main = body_->ForwardInference(x);
  if (shortcut_) {
    AddInPlaceMaybeRelu(&main, shortcut_->ForwardInference(x), relu);
  } else {
    AddInPlaceMaybeRelu(&main, x, relu);
  }
  return main;
}

Tensor Residual::ForwardInference(const Tensor& x) {
  return RunInference(x, /*relu=*/false);
}

Tensor Residual::ForwardInferenceRelu(const Tensor& x) {
  return RunInference(x, /*relu=*/true);
}

Tensor Residual::Backward(const Tensor& grad_output) {
  Tensor g_body = body_->Backward(grad_output);
  Tensor g_skip =
      shortcut_ ? shortcut_->Backward(grad_output) : grad_output;
  return Add(g_body, g_skip);
}

void Residual::CollectParameters(std::vector<Parameter*>* out) {
  body_->CollectParameters(out);
  if (shortcut_) shortcut_->CollectParameters(out);
}

void Residual::CollectBuffers(std::vector<Tensor*>* out) {
  body_->CollectBuffers(out);
  if (shortcut_) shortcut_->CollectBuffers(out);
}

void Residual::SetTraining(bool training) {
  Module::SetTraining(training);
  body_->SetTraining(training);
  if (shortcut_) shortcut_->SetTraining(training);
}

}  // namespace camal::nn
