#ifndef CAMAL_NN_BATCHNORM1D_H_
#define CAMAL_NN_BATCHNORM1D_H_

#include "nn/module.h"

namespace camal::nn {

/// Batch normalization over the channel dimension of (N, C, L) tensors.
///
/// Training mode normalizes with batch statistics (mean/var over N x L per
/// channel) and updates exponential running statistics; eval mode uses the
/// running statistics. Gamma/beta are trainable.
class BatchNorm1d : public Module {
 public:
  /// \p momentum is the running-average update rate (PyTorch convention:
  /// running = (1 - momentum) * running + momentum * batch).
  explicit BatchNorm1d(int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Eval-mode normalization fused into one per-channel scale/shift pass,
  /// without caching x_hat for Backward. Falls back to Forward in
  /// training mode (batch statistics must still be updated there).
  Tensor ForwardInference(const Tensor& x) override;

  /// The eval-mode transform as per-channel scale/shift:
  ///   y = scale[c] * x + shift[c]
  /// with scale = gamma / sqrt(running_var + eps) and
  /// shift = beta - scale * running_mean. This is what lets a preceding
  /// convolution absorb the whole layer into its GEMM epilogue.
  void FusedAffine(std::vector<float>* scale, std::vector<float>* shift) const;

  void CollectParameters(std::vector<Parameter*>* out) override;
  void CollectBuffers(std::vector<Tensor*>* out) override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }

 private:
  int64_t channels_;
  float eps_;
  float momentum_;
  Parameter gamma_;  // (C)
  Parameter beta_;   // (C)
  Tensor running_mean_;
  Tensor running_var_;
  // Cached forward state for backward.
  Tensor x_hat_;      // normalized input
  Tensor inv_std_;    // (C)
  bool forward_was_training_ = true;
};

}  // namespace camal::nn

#endif  // CAMAL_NN_BATCHNORM1D_H_
