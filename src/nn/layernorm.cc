#include "nn/layernorm.h"

#include <cmath>

namespace camal::nn {

LayerNorm::LayerNorm(int64_t features, float eps)
    : features_(features), eps_(eps) {
  CAMAL_CHECK_GT(features, 0);
  gamma_.name = "ln.gamma";
  gamma_.value = Tensor::Full({features_}, 1.0f);
  gamma_.grad = Tensor({features_});
  beta_.name = "ln.beta";
  beta_.value = Tensor({features_});
  beta_.grad = Tensor({features_});
}

Tensor LayerNorm::Forward(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  CAMAL_CHECK_EQ(x.dim(1), features_);
  const int64_t n = x.dim(0), d = features_, l = x.dim(2);
  x_hat_ = Tensor({n, d, l});
  inv_std_ = Tensor({n, l});
  Tensor y({n, d, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t t = 0; t < l; ++t) {
      double sum = 0.0, sq = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        const float v = x.at3(ni, j, t);
        sum += v;
        sq += static_cast<double>(v) * v;
      }
      const double mean = sum / d;
      double var = sq / d - mean * mean;
      if (var < 0.0) var = 0.0;
      const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      inv_std_.at2(ni, t) = is;
      for (int64_t j = 0; j < d; ++j) {
        const float xh = (x.at3(ni, j, t) - static_cast<float>(mean)) * is;
        x_hat_.at3(ni, j, t) = xh;
        y.at3(ni, j, t) = gamma_.value.at(j) * xh + beta_.value.at(j);
      }
    }
  }
  return y;
}

Tensor LayerNorm::ForwardInference(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  CAMAL_CHECK_EQ(x.dim(1), features_);
  const int64_t n = x.dim(0), d = features_, l = x.dim(2);
  Tensor y = Tensor::Uninitialized({n, d, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t t = 0; t < l; ++t) {
      double sum = 0.0, sq = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        const float v = x.at3(ni, j, t);
        sum += v;
        sq += static_cast<double>(v) * v;
      }
      const double mean = sum / d;
      double var = sq / d - mean * mean;
      if (var < 0.0) var = 0.0;
      const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      for (int64_t j = 0; j < d; ++j) {
        const float xh = (x.at3(ni, j, t) - static_cast<float>(mean)) * is;
        y.at3(ni, j, t) = gamma_.value.at(j) * xh + beta_.value.at(j);
      }
    }
  }
  return y;
}

Tensor LayerNorm::Backward(const Tensor& grad_output) {
  CAMAL_CHECK(grad_output.SameShape(x_hat_));
  const int64_t n = x_hat_.dim(0), d = features_, l = x_hat_.dim(2);
  Tensor grad_input({n, d, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t t = 0; t < l; ++t) {
      double sum_g = 0.0, sum_gx = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        const float g = grad_output.at3(ni, j, t) * gamma_.value.at(j);
        sum_g += g;
        sum_gx += static_cast<double>(g) * x_hat_.at3(ni, j, t);
        gamma_.grad.at(j) +=
            grad_output.at3(ni, j, t) * x_hat_.at3(ni, j, t);
        beta_.grad.at(j) += grad_output.at3(ni, j, t);
      }
      const float mean_g = static_cast<float>(sum_g / d);
      const float mean_gx = static_cast<float>(sum_gx / d);
      const float is = inv_std_.at2(ni, t);
      for (int64_t j = 0; j < d; ++j) {
        const float g = grad_output.at3(ni, j, t) * gamma_.value.at(j);
        grad_input.at3(ni, j, t) =
            is * (g - mean_g - x_hat_.at3(ni, j, t) * mean_gx);
      }
    }
  }
  return grad_input;
}

void LayerNorm::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&gamma_);
  out->push_back(&beta_);
}

}  // namespace camal::nn
