#ifndef CAMAL_NN_ATTENTION_H_
#define CAMAL_NN_ATTENTION_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"

namespace camal::nn {

/// Multi-head scaled-dot-product self-attention over (N, D, L) sequences.
///
/// Q/K/V/O are learned (D, D) projections; attention is computed per head
/// with softmax over the length axis. Used by the TransNILM baseline's
/// transformer encoder blocks.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t d_model, int64_t num_heads, Rng* rng);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Identical attention math without retaining the per-sample Q/K/V,
  /// softmax-weight, and context caches Backward consumes.
  Tensor ForwardInference(const Tensor& x) override;

  void CollectParameters(std::vector<Parameter*>* out) override;

 private:
  int64_t d_model_;
  int64_t num_heads_;
  int64_t d_head_;
  Parameter wq_, wk_, wv_, wo_;  // (D, D) each
  // Cached forward state.
  Tensor input_;                  // (N, D, L)
  std::vector<Tensor> q_, k_, v_;  // per sample (L, D)
  std::vector<Tensor> attn_;       // per sample (H, L, L) softmax weights
  std::vector<Tensor> context_;    // per sample (L, D) pre-output-projection
};

}  // namespace camal::nn

#endif  // CAMAL_NN_ATTENTION_H_
