#include "nn/loss.h"

#include <cmath>

namespace camal::nn {

LossResult BceWithLogits(const Tensor& logits, const Tensor& targets) {
  CAMAL_CHECK_MSG(logits.SameShape(targets), "BCE shape mismatch");
  const int64_t n = logits.numel();
  CAMAL_CHECK_GT(n, 0);
  LossResult out;
  out.grad = Tensor(logits.shape());
  double total = 0.0;
  const float* x = logits.data();
  const float* y = targets.data();
  float* g = out.grad.data();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    // loss = max(x,0) - x*y + log(1 + exp(-|x|))
    const float xi = x[i], yi = y[i];
    const float max_part = xi > 0.0f ? xi : 0.0f;
    total += max_part - xi * yi + std::log1p(std::exp(-std::fabs(xi)));
    const float sig = 1.0f / (1.0f + std::exp(-xi));
    g[i] = (sig - yi) * inv_n;
  }
  out.value = total / static_cast<double>(n);
  return out;
}

Tensor Softmax(const Tensor& logits) {
  CAMAL_CHECK_EQ(logits.ndim(), 2);
  const int64_t n = logits.dim(0), k = logits.dim(1);
  Tensor p({n, k});
  for (int64_t i = 0; i < n; ++i) {
    float max_v = logits.at2(i, 0);
    for (int64_t j = 1; j < k; ++j) max_v = std::max(max_v, logits.at2(i, j));
    float denom = 0.0f;
    for (int64_t j = 0; j < k; ++j) {
      const float e = std::exp(logits.at2(i, j) - max_v);
      p.at2(i, j) = e;
      denom += e;
    }
    const float inv = 1.0f / denom;
    for (int64_t j = 0; j < k; ++j) p.at2(i, j) *= inv;
  }
  return p;
}

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels) {
  CAMAL_CHECK_EQ(logits.ndim(), 2);
  const int64_t n = logits.dim(0), k = logits.dim(1);
  CAMAL_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  Tensor p = Softmax(logits);
  LossResult out;
  out.grad = p;
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<size_t>(i)];
    CAMAL_CHECK_GE(y, 0);
    CAMAL_CHECK_LT(y, k);
    total += -std::log(std::max(p.at2(i, y), 1e-12f));
    out.grad.at2(i, y) -= 1.0f;
  }
  out.grad.ScaleInPlace(inv_n);
  out.value = total / static_cast<double>(n);
  return out;
}

LossResult MeanSquaredError(const Tensor& pred, const Tensor& target) {
  CAMAL_CHECK_MSG(pred.SameShape(target), "MSE shape mismatch");
  const int64_t n = pred.numel();
  CAMAL_CHECK_GT(n, 0);
  LossResult out;
  out.grad = Tensor(pred.shape());
  double total = 0.0;
  const float* x = pred.data();
  const float* y = target.data();
  float* g = out.grad.data();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float d = x[i] - y[i];
    total += static_cast<double>(d) * d;
    g[i] = 2.0f * d * inv_n;
  }
  out.value = total / static_cast<double>(n);
  return out;
}

}  // namespace camal::nn
