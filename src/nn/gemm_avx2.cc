// AVX2+FMA instance of the GEMM tile kernel. CMake compiles this one
// translation unit with -mavx2 -mfma on x86-64 (and defines
// CAMAL_GEMM_HAVE_AVX2 project-wide); GemmEpilogue only dispatches here
// after __builtin_cpu_supports confirms the host CPU, so the rest of the
// library stays baseline-portable.

#include "nn/gemm.h"

namespace camal::nn {
namespace internal {

#if defined(CAMAL_GEMM_HAVE_AVX2)

#define CAMAL_GEMM_IMPL GemmEpilogueAvx2
#define CAMAL_GEMM_CONV_IMPL ConvGemmEpilogueAvx2
#include "nn/gemm_tile.inc"
#undef CAMAL_GEMM_CONV_IMPL
#undef CAMAL_GEMM_IMPL

#else  // fallback so the symbol always links

void GemmEpilogueAvx2(const float* a, const float* b, float* c, int64_t m,
                      int64_t k, int64_t n, const float* row_scale,
                      const float* row_shift, bool relu) {
  GemmEpilogueGeneric(a, b, c, m, k, n, row_scale, row_shift, relu);
}

void ConvGemmEpilogueAvx2(const float* w, const float* xpad, float* y,
                          const ConvGemmParams& p) {
  ConvGemmEpilogueGeneric(w, xpad, y, p);
}

#endif

}  // namespace internal
}  // namespace camal::nn
