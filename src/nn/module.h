#ifndef CAMAL_NN_MODULE_H_
#define CAMAL_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace camal::nn {

/// A trainable weight: value plus accumulated gradient of the training loss.
struct Parameter {
  std::string name;  ///< Dotted path, e.g. "block1.conv2.weight".
  Tensor value;      ///< Current weights.
  Tensor grad;       ///< dLoss/dValue, accumulated by Backward passes.
};

/// Base class for all neural-network layers and containers.
///
/// The substrate is layer-graph based rather than taped-autograd: each
/// Module caches whatever activations its exact gradient needs during
/// Forward, and Backward consumes the upstream gradient and returns the
/// gradient with respect to the layer input while accumulating parameter
/// gradients. The contract is:
///
///   1. Forward(x) must be called before Backward(g).
///   2. Backward(g) corresponds to the most recent Forward call.
///   3. Parameter gradients *accumulate*; call ZeroGrad() between steps.
///
/// Every layer's Backward is validated against central-difference numerical
/// gradients in tests/nn_gradcheck_test.cc.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Computes the layer output for input \p x, caching state for Backward.
  virtual Tensor Forward(const Tensor& x) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput for the most recent Forward call.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Inference-only forward: mathematically identical to Forward in eval
  /// mode, but free to skip the activation caching Backward needs and to
  /// use batch-oriented kernels (im2col + GEMM convolutions, fused
  /// BatchNorm affine). Calling Backward after ForwardInference is
  /// undefined. The default delegates to Forward, so layers without a
  /// dedicated fast path stay correct.
  virtual Tensor ForwardInference(const Tensor& x) { return Forward(x); }

  /// Appends pointers to this module's parameters (recursively).
  virtual void CollectParameters(std::vector<Parameter*>* out) { (void)out; }

  /// Appends pointers to this module's non-trainable state tensors that
  /// must persist with the model (BatchNorm running statistics). Buffers
  /// are saved/loaded by nn::SaveParameters/LoadParameters but never
  /// touched by optimizers.
  virtual void CollectBuffers(std::vector<Tensor*>* out) { (void)out; }

  /// Switches train/eval behaviour (BatchNorm statistics, Dropout).
  virtual void SetTraining(bool training) { training_ = training; }

  /// True when in training mode (the default).
  bool training() const { return training_; }

  /// All parameters of this module (recursively).
  std::vector<Parameter*> Parameters();

  /// All persistent buffers of this module (recursively).
  std::vector<Tensor*> Buffers();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Total number of trainable scalar weights (Table II counts).
  int64_t NumParameters();

 protected:
  Module() = default;

 private:
  bool training_ = true;
};

}  // namespace camal::nn

#endif  // CAMAL_NN_MODULE_H_
