#include "nn/conv1d.h"

#include <algorithm>
#include <vector>

#include "common/parallel_for.h"
#include "nn/gemm.h"
#include "nn/init.h"

namespace camal::nn {

Conv1d::Conv1d(const Conv1dOptions& options, Rng* rng) : options_(options) {
  CAMAL_CHECK_GT(options_.in_channels, 0);
  CAMAL_CHECK_GT(options_.out_channels, 0);
  CAMAL_CHECK_GT(options_.kernel_size, 0);
  CAMAL_CHECK_GT(options_.stride, 0);
  CAMAL_CHECK_GE(options_.padding, 0);
  CAMAL_CHECK_GT(options_.dilation, 0);
  weight_.name = "conv.weight";
  weight_.value = Tensor(
      {options_.out_channels, options_.in_channels, options_.kernel_size});
  weight_.grad = Tensor(weight_.value.shape());
  KaimingUniform(&weight_.value,
                 options_.in_channels * options_.kernel_size, rng);
  if (options_.bias) {
    bias_.name = "conv.bias";
    bias_.value = Tensor({options_.out_channels});
    bias_.grad = Tensor({options_.out_channels});
    KaimingUniform(&bias_.value, options_.in_channels * options_.kernel_size,
                   rng);
  }
}

int64_t Conv1d::OutputLength(int64_t input_length) const {
  const int64_t effective_k =
      options_.dilation * (options_.kernel_size - 1) + 1;
  return (input_length + 2 * options_.padding - effective_k) /
             options_.stride + 1;
}

Tensor Conv1d::Forward(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  CAMAL_CHECK_EQ(x.dim(1), options_.in_channels);
  input_ = x;
  const int64_t n = x.dim(0), cin = options_.in_channels, lin = x.dim(2);
  const int64_t cout = options_.out_channels, k = options_.kernel_size;
  const int64_t lout = OutputLength(lin);
  CAMAL_CHECK_GT(lout, 0);
  Tensor y({n, cout, lout});
  const int64_t stride = options_.stride, pad = options_.padding,
                dil = options_.dilation;

  ParallelFor(0, n * cout, [&](int64_t idx) {
    const int64_t ni = idx / cout;
    const int64_t co = idx % cout;
    float* out_row = y.data() + (ni * cout + co) * lout;
    if (options_.bias) {
      std::fill(out_row, out_row + lout, bias_.value.at(co));
    }
    for (int64_t ci = 0; ci < cin; ++ci) {
      const float* in_row = x.data() + (ni * cin + ci) * lin;
      const float* w_row = weight_.value.data() + (co * cin + ci) * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float w = w_row[kk];
        if (w == 0.0f) continue;
        const int64_t in_off = kk * dil - pad;
        // Valid output positions: 0 <= t*stride + in_off < lin.
        int64_t t0 = 0;
        if (in_off < 0) t0 = (-in_off + stride - 1) / stride;
        int64_t t1 = lout;
        if (in_off < lin) {
          t1 = std::min<int64_t>(lout, (lin - 1 - in_off) / stride + 1);
        } else {
          t1 = 0;
        }
        for (int64_t t = t0; t < t1; ++t) {
          out_row[t] += w * in_row[t * stride + in_off];
        }
      }
    }
  });
  return y;
}

Tensor Conv1d::RunBatched(const Tensor& x, const float* row_scale,
                          const float* row_shift, bool fuse_relu,
                          ConvPool pool, int64_t pool_size) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  CAMAL_CHECK_EQ(x.dim(1), options_.in_channels);
  const int64_t n = x.dim(0), cin = options_.in_channels, lin = x.dim(2);
  const int64_t cout = options_.out_channels, k = options_.kernel_size;
  const int64_t lout = OutputLength(lin);
  CAMAL_CHECK_GT(lout, 0);
  const int64_t pw = pool == ConvPool::kNone ? 1 : pool_size;
  if (pool != ConvPool::kNone) CAMAL_CHECK(ConvGemmSupportsPool(pw));
  const int64_t lpool = lout / pw;
  CAMAL_CHECK_GT(lpool, 0);
  Tensor y = Tensor::Uninitialized({n, cout, lpool});
  const int64_t pad = options_.padding;
  const int64_t lpad = lin + 2 * pad;
  const float* w = weight_.value.data();  // (cout, cin * k) row-major

  ConvGemmParams params;
  params.cout = cout;
  params.cin = cin;
  params.kernel = k;
  params.lpad = lpad;
  params.stride = options_.stride;
  params.dilation = options_.dilation;
  params.pool = pool;
  params.pool_size = pw;
  params.row_scale = row_scale;
  params.row_shift = row_shift;
  params.relu = fuse_relu;

  // Implicit im2col for every geometry: the conv GEMM samples the padded
  // input at stride/dilation offsets directly, so only an L1-sized
  // zero-padded copy of each sample is materialized — never the
  // (cin * k) x L_out column matrix.
  ParallelForChunked(0, n, [&](int64_t n_begin, int64_t n_end) {
    thread_local AlignedBuffer xpad;
    const float* sample_pad;
    if (pad == 0) {
      sample_pad = nullptr;  // read straight from x below
    } else {
      xpad.assign(static_cast<size_t>(cin * lpad), 0.0f);
    }
    for (int64_t ni = n_begin; ni < n_end; ++ni) {
      const float* sample = x.data() + ni * cin * lin;
      if (pad == 0) {
        sample_pad = sample;
      } else {
        for (int64_t ci = 0; ci < cin; ++ci) {
          std::copy(sample + ci * lin, sample + (ci + 1) * lin,
                    xpad.data() + ci * lpad + pad);
        }
        sample_pad = xpad.data();
      }
      ConvGemmEpilogue(w, sample_pad, y.data() + ni * cout * lpool, params);
    }
  });
  return y;
}

Tensor Conv1d::ForwardInference(const Tensor& x) {
  return RunBatched(x, /*row_scale=*/nullptr,
                    options_.bias ? bias_.value.data() : nullptr,
                    /*fuse_relu=*/false);
}

Tensor Conv1d::ForwardInferenceFused(const Tensor& x,
                                     const float* channel_scale,
                                     const float* channel_shift,
                                     bool fuse_relu, ConvPool pool,
                                     int64_t pool_size) {
  if (!options_.bias) {
    return RunBatched(x, channel_scale, channel_shift, fuse_relu, pool,
                      pool_size);
  }
  // Fold the conv bias into the shift: s * (conv + bias) + t.
  std::vector<float> shift(static_cast<size_t>(options_.out_channels));
  for (int64_t co = 0; co < options_.out_channels; ++co) {
    const float s = channel_scale != nullptr ? channel_scale[co] : 1.0f;
    const float t = channel_shift != nullptr ? channel_shift[co] : 0.0f;
    shift[static_cast<size_t>(co)] = s * bias_.value.at(co) + t;
  }
  return RunBatched(x, channel_scale, shift.data(), fuse_relu, pool,
                    pool_size);
}

Tensor Conv1d::Backward(const Tensor& grad_output) {
  CAMAL_CHECK_EQ(grad_output.ndim(), 3);
  const int64_t n = input_.dim(0), cin = options_.in_channels,
                lin = input_.dim(2);
  const int64_t cout = options_.out_channels, k = options_.kernel_size;
  const int64_t lout = OutputLength(lin);
  CAMAL_CHECK_EQ(grad_output.dim(0), n);
  CAMAL_CHECK_EQ(grad_output.dim(1), cout);
  CAMAL_CHECK_EQ(grad_output.dim(2), lout);
  const int64_t stride = options_.stride, pad = options_.padding,
                dil = options_.dilation;

  // Parameter gradients: parallel over output channels (each channel's
  // weight slice is touched by exactly one worker).
  ParallelFor(0, cout, [&](int64_t co) {
    float* wg_base = weight_.grad.data() + co * cin * k;
    double bias_acc = 0.0;
    for (int64_t ni = 0; ni < n; ++ni) {
      const float* go_row = grad_output.data() + (ni * cout + co) * lout;
      for (int64_t ci = 0; ci < cin; ++ci) {
        const float* in_row = input_.data() + (ni * cin + ci) * lin;
        float* wg_row = wg_base + ci * k;
        for (int64_t kk = 0; kk < k; ++kk) {
          const int64_t in_off = kk * dil - pad;
          int64_t t0 = 0;
          if (in_off < 0) t0 = (-in_off + stride - 1) / stride;
          int64_t t1 = 0;
          if (in_off < lin) {
            t1 = std::min<int64_t>(lout, (lin - 1 - in_off) / stride + 1);
          }
          float acc = 0.0f;
          for (int64_t t = t0; t < t1; ++t) {
            acc += go_row[t] * in_row[t * stride + in_off];
          }
          wg_row[kk] += acc;
        }
      }
      if (options_.bias) {
        for (int64_t t = 0; t < lout; ++t) bias_acc += go_row[t];
      }
    }
    if (options_.bias) {
      bias_.grad.at(co) += static_cast<float>(bias_acc);
    }
  });

  // Input gradient: parallel over (batch x input-channel).
  Tensor grad_input({n, cin, lin});
  ParallelFor(0, n * cin, [&](int64_t idx) {
    const int64_t ni = idx / cin;
    const int64_t ci = idx % cin;
    float* gi_row = grad_input.data() + (ni * cin + ci) * lin;
    for (int64_t co = 0; co < cout; ++co) {
      const float* go_row = grad_output.data() + (ni * cout + co) * lout;
      const float* w_row = weight_.value.data() + (co * cin + ci) * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float w = w_row[kk];
        if (w == 0.0f) continue;
        const int64_t in_off = kk * dil - pad;
        int64_t t0 = 0;
        if (in_off < 0) t0 = (-in_off + stride - 1) / stride;
        int64_t t1 = 0;
        if (in_off < lin) {
          t1 = std::min<int64_t>(lout, (lin - 1 - in_off) / stride + 1);
        }
        for (int64_t t = t0; t < t1; ++t) {
          gi_row[t * stride + in_off] += w * go_row[t];
        }
      }
    }
  });
  return grad_input;
}

void Conv1d::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&weight_);
  if (options_.bias) out->push_back(&bias_);
}

}  // namespace camal::nn
