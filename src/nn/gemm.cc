#include "nn/gemm.h"

namespace camal::nn {
namespace internal {

#define CAMAL_GEMM_IMPL GemmEpilogueGeneric
#define CAMAL_GEMM_CONV_IMPL ConvGemmEpilogueGeneric
#include "nn/gemm_tile.inc"
#undef CAMAL_GEMM_CONV_IMPL
#undef CAMAL_GEMM_IMPL

bool HasAvx2Gemm() {
#if defined(CAMAL_GEMM_HAVE_AVX2)
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

bool HasAvx512Gemm() {
#if defined(CAMAL_GEMM_HAVE_AVX512)
  static const bool supported = __builtin_cpu_supports("avx512f");
  return supported;
#else
  return false;
#endif
}

}  // namespace internal

void GemmEpilogue(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, const float* row_scale,
                  const float* row_shift, bool relu) {
  if (m <= 0 || n <= 0) return;
  if (internal::HasAvx512Gemm()) {
    internal::GemmEpilogueAvx512(a, b, c, m, k, n, row_scale, row_shift,
                                 relu);
  } else if (internal::HasAvx2Gemm()) {
    internal::GemmEpilogueAvx2(a, b, c, m, k, n, row_scale, row_shift, relu);
  } else {
    internal::GemmEpilogueGeneric(a, b, c, m, k, n, row_scale, row_shift,
                                  relu);
  }
}

bool ConvGemmSupportsPool(int64_t pool_size) {
  // Fused pooling is only offered for windows that divide every tier's
  // tile width (16 portable/AVX2, 32 AVX-512): those keep the tile
  // decomposition identical to an unpooled run, which is what makes the
  // fused result bitwise-equal to conv-then-separate-pool (vector bodies
  // and remainder epilogs may contract floating point differently, so
  // only an identical decomposition guarantees identical bits).
  return pool_size >= 2 && pool_size <= 16 && 16 % pool_size == 0;
}

void ConvGemmEpilogue(const float* w, const float* xpad, float* y,
                      const ConvGemmParams& p) {
  if (p.cout <= 0) return;
  if (internal::HasAvx512Gemm()) {
    internal::ConvGemmEpilogueAvx512(w, xpad, y, p);
  } else if (internal::HasAvx2Gemm()) {
    internal::ConvGemmEpilogueAvx2(w, xpad, y, p);
  } else {
    internal::ConvGemmEpilogueGeneric(w, xpad, y, p);
  }
}

}  // namespace camal::nn
