#include "nn/upsample.h"

namespace camal::nn {
namespace {

// Shared inference bodies: nearest-neighbour copies with no Backward state.
Tensor UpsampleRows(const Tensor& x, int64_t factor) {
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  Tensor y = Tensor::Uninitialized({n, c, l * factor});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* row = x.data() + (ni * c + ci) * l;
      float* out = y.data() + (ni * c + ci) * l * factor;
      for (int64_t t = 0; t < l; ++t) {
        for (int64_t f = 0; f < factor; ++f) out[t * factor + f] = row[t];
      }
    }
  }
  return y;
}

Tensor ResizeRows(const Tensor& x, int64_t target_length) {
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  Tensor y = Tensor::Uninitialized({n, c, target_length});
  // One divide per output position instead of one per element: the
  // nearest-neighbour source map is shared by every (n, c) row.
  std::vector<int64_t> src_of(static_cast<size_t>(target_length));
  for (int64_t t = 0; t < target_length; ++t) {
    int64_t src = t * l / target_length;
    if (src >= l) src = l - 1;
    src_of[static_cast<size_t>(t)] = src;
  }
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* row = x.data() + (ni * c + ci) * l;
      float* out = y.data() + (ni * c + ci) * target_length;
      for (int64_t t = 0; t < target_length; ++t) {
        out[t] = row[src_of[static_cast<size_t>(t)]];
      }
    }
  }
  return y;
}

}  // namespace

UpsampleNearest1d::UpsampleNearest1d(int64_t factor) : factor_(factor) {
  CAMAL_CHECK_GT(factor, 0);
}

Tensor UpsampleNearest1d::Forward(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  input_shape_ = x.shape();
  return UpsampleRows(x, factor_);
}

Tensor UpsampleNearest1d::ForwardInference(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  return UpsampleRows(x, factor_);
}

Tensor UpsampleNearest1d::Backward(const Tensor& grad_output) {
  const int64_t n = input_shape_[0], c = input_shape_[1], l = input_shape_[2];
  CAMAL_CHECK_EQ(grad_output.dim(2), l * factor_);
  Tensor grad_input({n, c, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* go = grad_output.data() + (ni * c + ci) * l * factor_;
      float* gi = grad_input.data() + (ni * c + ci) * l;
      for (int64_t t = 0; t < l; ++t) {
        float acc = 0.0f;
        for (int64_t f = 0; f < factor_; ++f) acc += go[t * factor_ + f];
        gi[t] = acc;
      }
    }
  }
  return grad_input;
}

ResizeNearest1d::ResizeNearest1d(int64_t target_length)
    : target_length_(target_length) {
  CAMAL_CHECK_GT(target_length, 0);
}

Tensor ResizeNearest1d::Forward(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  input_shape_ = x.shape();
  return ResizeRows(x, target_length_);
}

Tensor ResizeNearest1d::ForwardInference(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  return ResizeRows(x, target_length_);
}

Tensor ResizeNearest1d::Backward(const Tensor& grad_output) {
  const int64_t n = input_shape_[0], c = input_shape_[1], l = input_shape_[2];
  CAMAL_CHECK_EQ(grad_output.dim(2), target_length_);
  Tensor grad_input({n, c, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* go = grad_output.data() + (ni * c + ci) * target_length_;
      float* gi = grad_input.data() + (ni * c + ci) * l;
      for (int64_t t = 0; t < target_length_; ++t) {
        int64_t src = t * l / target_length_;
        if (src >= l) src = l - 1;
        gi[src] += go[t];
      }
    }
  }
  return grad_input;
}

}  // namespace camal::nn
