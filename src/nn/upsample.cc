#include "nn/upsample.h"

namespace camal::nn {

UpsampleNearest1d::UpsampleNearest1d(int64_t factor) : factor_(factor) {
  CAMAL_CHECK_GT(factor, 0);
}

Tensor UpsampleNearest1d::Forward(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  input_shape_ = x.shape();
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  Tensor y({n, c, l * factor_});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* row = x.data() + (ni * c + ci) * l;
      float* out = y.data() + (ni * c + ci) * l * factor_;
      for (int64_t t = 0; t < l; ++t) {
        for (int64_t f = 0; f < factor_; ++f) out[t * factor_ + f] = row[t];
      }
    }
  }
  return y;
}

Tensor UpsampleNearest1d::Backward(const Tensor& grad_output) {
  const int64_t n = input_shape_[0], c = input_shape_[1], l = input_shape_[2];
  CAMAL_CHECK_EQ(grad_output.dim(2), l * factor_);
  Tensor grad_input({n, c, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* go = grad_output.data() + (ni * c + ci) * l * factor_;
      float* gi = grad_input.data() + (ni * c + ci) * l;
      for (int64_t t = 0; t < l; ++t) {
        float acc = 0.0f;
        for (int64_t f = 0; f < factor_; ++f) acc += go[t * factor_ + f];
        gi[t] = acc;
      }
    }
  }
  return grad_input;
}

ResizeNearest1d::ResizeNearest1d(int64_t target_length)
    : target_length_(target_length) {
  CAMAL_CHECK_GT(target_length, 0);
}

Tensor ResizeNearest1d::Forward(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  input_shape_ = x.shape();
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  Tensor y({n, c, target_length_});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* row = x.data() + (ni * c + ci) * l;
      float* out = y.data() + (ni * c + ci) * target_length_;
      for (int64_t t = 0; t < target_length_; ++t) {
        int64_t src = t * l / target_length_;
        if (src >= l) src = l - 1;
        out[t] = row[src];
      }
    }
  }
  return y;
}

Tensor ResizeNearest1d::Backward(const Tensor& grad_output) {
  const int64_t n = input_shape_[0], c = input_shape_[1], l = input_shape_[2];
  CAMAL_CHECK_EQ(grad_output.dim(2), target_length_);
  Tensor grad_input({n, c, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* go = grad_output.data() + (ni * c + ci) * target_length_;
      float* gi = grad_input.data() + (ni * c + ci) * l;
      for (int64_t t = 0; t < target_length_; ++t) {
        int64_t src = t * l / target_length_;
        if (src >= l) src = l - 1;
        gi[src] += go[t];
      }
    }
  }
  return grad_input;
}

}  // namespace camal::nn
