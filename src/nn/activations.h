#ifndef CAMAL_NN_ACTIVATIONS_H_
#define CAMAL_NN_ACTIVATIONS_H_

#include "nn/module.h"

namespace camal::nn {

/// Elementwise max(0, x).
class ReLU : public Module {
 public:
  ReLU() = default;
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Single-pass clamp without caching the input for Backward.
  Tensor ForwardInference(const Tensor& x) override;

 private:
  Tensor input_;
};

/// Elementwise logistic sigmoid 1 / (1 + e^-x).
class Sigmoid : public Module {
 public:
  Sigmoid() = default;
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor output_;
};

/// Elementwise hyperbolic tangent.
class Tanh : public Module {
 public:
  Tanh() = default;
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor output_;
};

/// Elementwise GELU (tanh approximation), used by the TransNILM encoder.
class Gelu : public Module {
 public:
  Gelu() = default;
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor input_;
};

/// Stateless helpers for code that needs activation math outside a Module
/// (e.g. CamAL's attention-sigmoid localization step).
float SigmoidScalar(float x);

}  // namespace camal::nn

#endif  // CAMAL_NN_ACTIVATIONS_H_
