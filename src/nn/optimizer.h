#ifndef CAMAL_NN_OPTIMIZER_H_
#define CAMAL_NN_OPTIMIZER_H_

#include <vector>

#include "nn/module.h"

namespace camal::nn {

/// Base class for gradient-descent optimizers over a parameter set.
class Optimizer {
 public:
  /// \p params are borrowed; they must outlive the optimizer.
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the currently accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

 protected:
  std::vector<Parameter*> params_;
};

/// Stochastic gradient descent with classical momentum and L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with decoupled-free L2 weight decay, the optimizer
/// used to train every model in the paper's experiments.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace camal::nn

#endif  // CAMAL_NN_OPTIMIZER_H_
