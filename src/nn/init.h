#ifndef CAMAL_NN_INIT_H_
#define CAMAL_NN_INIT_H_

#include "common/rng.h"
#include "nn/tensor.h"

namespace camal::nn {

/// Kaiming/He uniform initialization: U(-b, b) with b = sqrt(6 / fan_in).
/// Used for conv and linear weights feeding ReLU nonlinearities.
void KaimingUniform(Tensor* t, int64_t fan_in, Rng* rng);

/// Xavier/Glorot uniform: U(-b, b) with b = sqrt(6 / (fan_in + fan_out)).
/// Used for recurrent and attention projection weights.
void XavierUniform(Tensor* t, int64_t fan_in, int64_t fan_out, Rng* rng);

/// Uniform in [lo, hi).
void UniformInit(Tensor* t, float lo, float hi, Rng* rng);

}  // namespace camal::nn

#endif  // CAMAL_NN_INIT_H_
