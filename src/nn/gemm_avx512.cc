// AVX-512 instance of the GEMM tile kernel (see gemm_avx2.cc for the
// dispatch scheme). With -mavx512f the 16-wide inner loop of the tile
// becomes one zmm FMA per accumulator row.

#include "nn/gemm.h"

namespace camal::nn {
namespace internal {

#if defined(CAMAL_GEMM_HAVE_AVX512)

#define CAMAL_GEMM_IMPL GemmEpilogueAvx512
#define CAMAL_GEMM_CONV_IMPL ConvGemmEpilogueAvx512
#define CAMAL_GEMM_TILE_NR 32  // 4x32 conv tiles: two zmm per accumulator row
#include "nn/gemm_tile.inc"
#undef CAMAL_GEMM_TILE_NR
#undef CAMAL_GEMM_CONV_IMPL
#undef CAMAL_GEMM_IMPL

#else  // fallback so the symbol always links

void GemmEpilogueAvx512(const float* a, const float* b, float* c, int64_t m,
                        int64_t k, int64_t n, const float* row_scale,
                        const float* row_shift, bool relu) {
  GemmEpilogueGeneric(a, b, c, m, k, n, row_scale, row_shift, relu);
}

void ConvGemmEpilogueAvx512(const float* w, const float* xpad, float* y,
                            const ConvGemmParams& p) {
  ConvGemmEpilogueGeneric(w, xpad, y, p);
}

#endif

}  // namespace internal
}  // namespace camal::nn
