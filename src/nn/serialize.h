#ifndef CAMAL_NN_SERIALIZE_H_
#define CAMAL_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace camal::nn {

/// Writes all parameters of \p module to \p path in a simple binary format
/// (magic, parameter count, then shape + float32 payload per parameter,
/// in CollectParameters order).
Status SaveParameters(Module* module, const std::string& path);

/// Loads parameters saved by SaveParameters into \p module. The module must
/// have an identical parameter structure (same order, same shapes).
Status LoadParameters(Module* module, const std::string& path);

/// In-memory snapshot of parameter values (for best-epoch checkpointing).
std::vector<Tensor> SnapshotParameters(Module* module);

/// Restores a snapshot taken by SnapshotParameters.
void RestoreParameters(Module* module, const std::vector<Tensor>& snapshot);

}  // namespace camal::nn

#endif  // CAMAL_NN_SERIALIZE_H_
