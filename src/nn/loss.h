#ifndef CAMAL_NN_LOSS_H_
#define CAMAL_NN_LOSS_H_

#include "nn/tensor.h"

namespace camal::nn {

/// A scalar loss value plus the gradient with respect to the prediction.
struct LossResult {
  double value = 0.0;
  Tensor grad;  ///< dLoss/dPrediction, same shape as the prediction.
};

/// Mean binary cross-entropy on logits (numerically stable log-sum-exp
/// form). Prediction and target have the same shape; targets in [0, 1]
/// (soft labels allowed — used for the Fig. 10 soft-label experiments).
LossResult BceWithLogits(const Tensor& logits, const Tensor& targets);

/// Softmax cross-entropy for (N, K) logits and integer class labels.
/// The gradient is (softmax - onehot) / N.
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels);

/// Mean squared error; prediction and target have the same shape.
LossResult MeanSquaredError(const Tensor& pred, const Tensor& target);

/// Row-wise softmax of (N, K) logits.
Tensor Softmax(const Tensor& logits);

}  // namespace camal::nn

#endif  // CAMAL_NN_LOSS_H_
