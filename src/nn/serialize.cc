#include "nn/serialize.h"

#include <cstdio>
#include <cstring>

namespace camal::nn {
namespace {

constexpr uint32_t kMagic = 0x43414D4C;  // "CAML"

}  // namespace

namespace {

bool WriteTensor(std::FILE* f, const Tensor& t) {
  uint32_t ndim = static_cast<uint32_t>(t.ndim());
  if (std::fwrite(&ndim, sizeof(ndim), 1, f) != 1) return false;
  for (int i = 0; i < t.ndim(); ++i) {
    int64_t d = t.dim(i);
    if (std::fwrite(&d, sizeof(d), 1, f) != 1) return false;
  }
  if (t.numel() > 0 &&
      std::fwrite(t.data(), sizeof(float), static_cast<size_t>(t.numel()),
                  f) != static_cast<size_t>(t.numel())) {
    return false;
  }
  return true;
}

Status ReadTensorInto(std::FILE* f, Tensor* t, const std::string& name,
                      const std::string& path) {
  uint32_t ndim = 0;
  if (std::fread(&ndim, sizeof(ndim), 1, f) != 1) {
    return Status::IoError("truncated shape in " + path);
  }
  if (static_cast<int>(ndim) != t->ndim()) {
    return Status::InvalidArgument("rank mismatch for " + name);
  }
  for (uint32_t i = 0; i < ndim; ++i) {
    int64_t d = 0;
    if (std::fread(&d, sizeof(d), 1, f) != 1) {
      return Status::IoError("truncated shape in " + path);
    }
    if (d != t->dim(static_cast<int>(i))) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
  }
  if (t->numel() > 0 &&
      std::fread(t->data(), sizeof(float), static_cast<size_t>(t->numel()),
                 f) != static_cast<size_t>(t->numel())) {
    return Status::IoError("truncated payload in " + path);
  }
  return Status::OK();
}

}  // namespace

Status SaveParameters(Module* module, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  auto params = module->Parameters();
  auto buffers = module->Buffers();
  uint32_t magic = kMagic;
  uint64_t count = params.size();
  uint64_t buffer_count = buffers.size();
  bool ok = std::fwrite(&magic, sizeof(magic), 1, f) == 1 &&
            std::fwrite(&count, sizeof(count), 1, f) == 1 &&
            std::fwrite(&buffer_count, sizeof(buffer_count), 1, f) == 1;
  for (Parameter* p : params) {
    if (!ok) break;
    ok = WriteTensor(f, p->value);
  }
  for (Tensor* b : buffers) {
    if (!ok) break;
    ok = WriteTensor(f, *b);
  }
  std::fclose(f);
  if (!ok) return Status::IoError("short write to " + path);
  return Status::OK();
}

Status LoadParameters(Module* module, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  auto close_and = [&](Status st) {
    std::fclose(f);
    return st;
  };
  uint32_t magic = 0;
  uint64_t count = 0;
  uint64_t buffer_count = 0;
  if (std::fread(&magic, sizeof(magic), 1, f) != 1 || magic != kMagic) {
    return close_and(Status::InvalidArgument("bad magic in " + path));
  }
  if (std::fread(&count, sizeof(count), 1, f) != 1 ||
      std::fread(&buffer_count, sizeof(buffer_count), 1, f) != 1) {
    return close_and(Status::IoError("truncated header in " + path));
  }
  auto params = module->Parameters();
  auto buffers = module->Buffers();
  if (count != params.size()) {
    return close_and(Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", module has " + std::to_string(params.size())));
  }
  if (buffer_count != buffers.size()) {
    return close_and(Status::InvalidArgument(
        "buffer count mismatch: file has " + std::to_string(buffer_count) +
        ", module has " + std::to_string(buffers.size())));
  }
  for (Parameter* p : params) {
    Status st = ReadTensorInto(f, &p->value, p->name, path);
    if (!st.ok()) return close_and(st);
  }
  for (Tensor* b : buffers) {
    Status st = ReadTensorInto(f, b, "buffer", path);
    if (!st.ok()) return close_and(st);
  }
  return close_and(Status::OK());
}

std::vector<Tensor> SnapshotParameters(Module* module) {
  std::vector<Tensor> out;
  for (Parameter* p : module->Parameters()) out.push_back(p->value);
  return out;
}

void RestoreParameters(Module* module, const std::vector<Tensor>& snapshot) {
  auto params = module->Parameters();
  CAMAL_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    CAMAL_CHECK(params[i]->value.SameShape(snapshot[i]));
    params[i]->value = snapshot[i];
  }
}

}  // namespace camal::nn
