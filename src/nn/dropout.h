#ifndef CAMAL_NN_DROPOUT_H_
#define CAMAL_NN_DROPOUT_H_

#include "common/rng.h"
#include "nn/module.h"

namespace camal::nn {

/// Inverted dropout: zeroes each element with probability p during training
/// and scales survivors by 1/(1-p); identity in eval mode.
class Dropout : public Module {
 public:
  /// \p rng must outlive the layer (shared model-level generator).
  Dropout(float p, Rng* rng);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  float p_;
  Rng* rng_;
  Tensor mask_;  // scale factors applied in the last training forward
  bool forward_was_training_ = true;
};

}  // namespace camal::nn

#endif  // CAMAL_NN_DROPOUT_H_
