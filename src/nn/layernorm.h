#ifndef CAMAL_NN_LAYERNORM_H_
#define CAMAL_NN_LAYERNORM_H_

#include "nn/module.h"

namespace camal::nn {

/// Layer normalization over the channel dimension of (N, D, L) tensors:
/// each (n, t) position is normalized across its D features. Used by the
/// TransNILM transformer encoder.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Identical normalization without caching x_hat / inv_std for Backward.
  Tensor ForwardInference(const Tensor& x) override;

  void CollectParameters(std::vector<Parameter*>* out) override;

 private:
  int64_t features_;
  float eps_;
  Parameter gamma_;  // (D)
  Parameter beta_;   // (D)
  Tensor x_hat_;     // (N, D, L)
  Tensor inv_std_;   // (N, L)
};

}  // namespace camal::nn

#endif  // CAMAL_NN_LAYERNORM_H_
