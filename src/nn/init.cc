#include "nn/init.h"

#include <cmath>

namespace camal::nn {

void KaimingUniform(Tensor* t, int64_t fan_in, Rng* rng) {
  CAMAL_CHECK_GT(fan_in, 0);
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  UniformInit(t, -bound, bound, rng);
}

void XavierUniform(Tensor* t, int64_t fan_in, int64_t fan_out, Rng* rng) {
  CAMAL_CHECK_GT(fan_in + fan_out, 0);
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  UniformInit(t, -bound, bound, rng);
}

void UniformInit(Tensor* t, float lo, float hi, Rng* rng) {
  float* d = t->data();
  for (int64_t i = 0; i < t->numel(); ++i) {
    d[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
}

}  // namespace camal::nn
