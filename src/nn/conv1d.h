#ifndef CAMAL_NN_CONV1D_H_
#define CAMAL_NN_CONV1D_H_

#include "common/rng.h"
#include "nn/module.h"

namespace camal::nn {

/// Configuration for a Conv1d layer.
struct Conv1dOptions {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel_size = 1;
  int64_t stride = 1;
  /// Zero padding added on each side. Use SamePadding() for length-preserving
  /// convolutions (odd kernels, stride 1).
  int64_t padding = 0;
  int64_t dilation = 1;
  bool bias = true;

  /// Padding that preserves length at stride 1: dilation * (k - 1) / 2.
  int64_t SamePadding() const { return dilation * (kernel_size - 1) / 2; }
};

/// 1-D convolution over (N, C_in, L) -> (N, C_out, L_out).
///
/// Weight shape is (C_out, C_in, K); output length is
///   L_out = (L + 2*padding - dilation*(K-1) - 1) / stride + 1.
/// Forward and backward are multithreaded over (batch x output-channel).
class Conv1d : public Module {
 public:
  /// Creates the layer and initializes weights (Kaiming uniform) from \p rng.
  Conv1d(const Conv1dOptions& options, Rng* rng);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;

  const Conv1dOptions& options() const { return options_; }
  Parameter& weight() { return weight_; }
  Parameter& bias_param() { return bias_; }

  /// Output length for an input of length \p input_length.
  int64_t OutputLength(int64_t input_length) const;

 private:
  Conv1dOptions options_;
  Parameter weight_;  // (C_out, C_in, K)
  Parameter bias_;    // (C_out) when options_.bias
  Tensor input_;      // cached for backward
};

}  // namespace camal::nn

#endif  // CAMAL_NN_CONV1D_H_
