#ifndef CAMAL_NN_CONV1D_H_
#define CAMAL_NN_CONV1D_H_

#include "common/rng.h"
#include "nn/gemm.h"
#include "nn/module.h"

namespace camal::nn {

/// Configuration for a Conv1d layer.
struct Conv1dOptions {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel_size = 1;
  int64_t stride = 1;
  /// Zero padding added on each side. Use SamePadding() for length-preserving
  /// convolutions (odd kernels, stride 1).
  int64_t padding = 0;
  int64_t dilation = 1;
  bool bias = true;

  /// Padding that preserves length at stride 1: dilation * (k - 1) / 2.
  int64_t SamePadding() const { return dilation * (kernel_size - 1) / 2; }
};

/// 1-D convolution over (N, C_in, L) -> (N, C_out, L_out).
///
/// Weight shape is (C_out, C_in, K); output length is
///   L_out = (L + 2*padding - dilation*(K-1) - 1) / stride + 1.
/// Forward and backward are multithreaded over (batch x output-channel).
class Conv1d : public Module {
 public:
  /// Creates the layer and initializes weights (Kaiming uniform) from \p rng.
  Conv1d(const Conv1dOptions& options, Rng* rng);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Implicit-im2col register-blocked GEMM (AVX-512/AVX2+FMA when the CPU
  /// has them) for EVERY geometry — strided and dilated convolutions walk
  /// the padded sample at stride/dilation offsets inside the tile loops,
  /// so no inference path ever materializes a column matrix. Parallelized
  /// over the batch with per-thread reusable padding scratch; skips the
  /// input caching Forward does for Backward. The batched serving path
  /// runs through this.
  Tensor ForwardInference(const Tensor& x) override;

  /// ForwardInference with a per-output-channel affine + optional ReLU +
  /// optional non-overlapping pool fused into the GEMM epilogue:
  ///   y[co] = pool(relu?(scale[co] * conv(x)[co] + shift[co])).
  /// scale/shift have out_channels entries or are null (identity scale,
  /// zero shift); the conv bias, when present, is folded into the shift
  /// either way. This is how eval-mode Conv -> BatchNorm -> ReLU
  /// [-> MaxPool/AvgPool(w, w)] blocks collapse into a single output pass
  /// (see Sequential::ForwardInference); with pool != kNone the pooled
  /// tensor is written directly and the full-size activation never
  /// materializes. Fused pooling matches a separate pool layer bitwise.
  Tensor ForwardInferenceFused(const Tensor& x, const float* channel_scale,
                               const float* channel_shift, bool fuse_relu,
                               ConvPool pool = ConvPool::kNone,
                               int64_t pool_size = 1);

  void CollectParameters(std::vector<Parameter*>* out) override;

  const Conv1dOptions& options() const { return options_; }
  Parameter& weight() { return weight_; }
  Parameter& bias_param() { return bias_; }

  /// Output length for an input of length \p input_length.
  int64_t OutputLength(int64_t input_length) const;

 private:
  /// Shared batched kernel behind ForwardInference / ForwardInferenceFused.
  Tensor RunBatched(const Tensor& x, const float* row_scale,
                    const float* row_shift, bool fuse_relu,
                    ConvPool pool = ConvPool::kNone, int64_t pool_size = 1);

  Conv1dOptions options_;
  Parameter weight_;  // (C_out, C_in, K)
  Parameter bias_;    // (C_out) when options_.bias
  Tensor input_;      // cached for backward
};

}  // namespace camal::nn

#endif  // CAMAL_NN_CONV1D_H_
