#include "nn/module.h"

namespace camal::nn {

std::vector<Parameter*> Module::Parameters() {
  std::vector<Parameter*> out;
  CollectParameters(&out);
  return out;
}

std::vector<Tensor*> Module::Buffers() {
  std::vector<Tensor*> out;
  CollectBuffers(&out);
  return out;
}

void Module::ZeroGrad() {
  for (Parameter* p : Parameters()) p->grad.Zero();
}

int64_t Module::NumParameters() {
  int64_t total = 0;
  for (Parameter* p : Parameters()) total += p->value.numel();
  return total;
}

}  // namespace camal::nn
