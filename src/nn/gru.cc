#include "nn/gru.h"

#include <cmath>
#include <utility>

#include "nn/activations.h"
#include "nn/init.h"

namespace camal::nn {
namespace {

// Extracts timestep t of (N, C, L) into an (N, C) matrix.
Tensor SliceTimestep(const Tensor& x, int64_t t) {
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  Tensor out({n, c});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) out.at2(ni, ci) = x.at3(ni, ci, t);
  }
  (void)l;
  return out;
}

// One GRU timestep over the batch, from the precomputed projections
// gi = x_t W_ih^T and gh = h_{t-1} W_hh^T (both (N, 3H)): writes h_t into
// ht. When the gate out-params are non-null (the training path) the
// per-step activations BPTT consumes are stored too; inference passes
// nulls and keeps nothing. One body for both paths, so a recurrence fix
// can never drift them apart.
void GruCellStep(const Tensor& gi, const Tensor& gh, const Tensor& b_ih,
                 const Tensor& b_hh, const Tensor& hprev, int64_t h,
                 Tensor* ht, Tensor* rt, Tensor* zt, Tensor* nt,
                 Tensor* qt) {
  const int64_t n = gi.dim(0);
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t j = 0; j < h; ++j) {
      const float ir = gi.at2(ni, j) + b_ih.at(j);
      const float hr = gh.at2(ni, j) + b_hh.at(j);
      const float iz = gi.at2(ni, h + j) + b_ih.at(h + j);
      const float hz = gh.at2(ni, h + j) + b_hh.at(h + j);
      const float in = gi.at2(ni, 2 * h + j) + b_ih.at(2 * h + j);
      const float hn = gh.at2(ni, 2 * h + j) + b_hh.at(2 * h + j);
      const float r = SigmoidScalar(ir + hr);
      const float zz = SigmoidScalar(iz + hz);
      const float nn = std::tanh(in + r * hn);
      ht->at2(ni, j) = (1.0f - zz) * nn + zz * hprev.at2(ni, j);
      if (rt != nullptr) {
        rt->at2(ni, j) = r;
        zt->at2(ni, j) = zz;
        nt->at2(ni, j) = nn;
        qt->at2(ni, j) = hn;
      }
    }
  }
}

}  // namespace

Gru::Gru(int64_t input_size, int64_t hidden_size, bool reverse, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size), reverse_(reverse) {
  CAMAL_CHECK_GT(input_size, 0);
  CAMAL_CHECK_GT(hidden_size, 0);
  const int64_t h3 = 3 * hidden_size_;
  w_ih_.name = "gru.w_ih";
  w_ih_.value = Tensor({h3, input_size_});
  w_ih_.grad = Tensor(w_ih_.value.shape());
  w_hh_.name = "gru.w_hh";
  w_hh_.value = Tensor({h3, hidden_size_});
  w_hh_.grad = Tensor(w_hh_.value.shape());
  b_ih_.name = "gru.b_ih";
  b_ih_.value = Tensor({h3});
  b_ih_.grad = Tensor({h3});
  b_hh_.name = "gru.b_hh";
  b_hh_.value = Tensor({h3});
  b_hh_.grad = Tensor({h3});
  XavierUniform(&w_ih_.value, input_size_, hidden_size_, rng);
  XavierUniform(&w_hh_.value, hidden_size_, hidden_size_, rng);
  const float bound = 1.0f / std::sqrt(static_cast<float>(hidden_size_));
  UniformInit(&b_ih_.value, -bound, bound, rng);
  UniformInit(&b_hh_.value, -bound, bound, rng);
}

Tensor Gru::Forward(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  CAMAL_CHECK_EQ(x.dim(1), input_size_);
  input_ = x;
  const int64_t n = x.dim(0), l = x.dim(2), h = hidden_size_;

  h_.assign(1, Tensor({n, h}));
  r_.clear();
  z_.clear();
  n_.clear();
  q_.clear();
  r_.reserve(l);
  z_.reserve(l);
  n_.reserve(l);
  q_.reserve(l);

  Tensor y({n, h, l});
  for (int64_t step = 0; step < l; ++step) {
    const int64_t t = reverse_ ? l - 1 - step : step;
    Tensor xt = SliceTimestep(x, t);                       // (N, I)
    Tensor gi = MatMulTransposeB(xt, w_ih_.value);         // (N, 3H)
    Tensor gh = MatMulTransposeB(h_.back(), w_hh_.value);  // (N, 3H)
    Tensor rt({n, h}), zt({n, h}), nt({n, h}), qt({n, h}), ht({n, h});
    GruCellStep(gi, gh, b_ih_.value, b_hh_.value, h_.back(), h, &ht, &rt,
                &zt, &nt, &qt);
    for (int64_t ni = 0; ni < n; ++ni) {
      for (int64_t j = 0; j < h; ++j) y.at3(ni, j, t) = ht.at2(ni, j);
    }
    r_.push_back(std::move(rt));
    z_.push_back(std::move(zt));
    n_.push_back(std::move(nt));
    q_.push_back(std::move(qt));
    h_.push_back(std::move(ht));
  }
  return y;
}

Tensor Gru::ForwardInference(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  CAMAL_CHECK_EQ(x.dim(1), input_size_);
  const int64_t n = x.dim(0), l = x.dim(2), h = hidden_size_;

  Tensor hprev({n, h});
  Tensor hnext({n, h});
  Tensor y = Tensor::Uninitialized({n, h, l});
  for (int64_t step = 0; step < l; ++step) {
    const int64_t t = reverse_ ? l - 1 - step : step;
    Tensor xt = SliceTimestep(x, t);                    // (N, I)
    Tensor gi = MatMulTransposeB(xt, w_ih_.value);      // (N, 3H)
    Tensor gh = MatMulTransposeB(hprev, w_hh_.value);   // (N, 3H)
    GruCellStep(gi, gh, b_ih_.value, b_hh_.value, hprev, h, &hnext,
                nullptr, nullptr, nullptr, nullptr);
    for (int64_t ni = 0; ni < n; ++ni) {
      for (int64_t j = 0; j < h; ++j) y.at3(ni, j, t) = hnext.at2(ni, j);
    }
    std::swap(hprev, hnext);
  }
  return y;
}

Tensor Gru::Backward(const Tensor& grad_output) {
  const int64_t n = input_.dim(0), l = input_.dim(2), h = hidden_size_;
  CAMAL_CHECK_EQ(grad_output.dim(1), h);
  CAMAL_CHECK_EQ(grad_output.dim(2), l);
  Tensor grad_input({n, input_size_, l});
  Tensor dh({n, h});  // gradient flowing into h_t from the future

  for (int64_t step = l - 1; step >= 0; --step) {
    const int64_t t = reverse_ ? l - 1 - step : step;
    // Add the gradient from the output at this timestep.
    for (int64_t ni = 0; ni < n; ++ni) {
      for (int64_t j = 0; j < h; ++j) {
        dh.at2(ni, j) += grad_output.at3(ni, j, t);
      }
    }
    const Tensor& hprev = h_[step];
    const Tensor& rt = r_[step];
    const Tensor& zt = z_[step];
    const Tensor& nt = n_[step];
    const Tensor& qt = q_[step];

    // Pre-activation gradients for the three stacked gates.
    Tensor da({n, 3 * h});       // d(pre-sigmoid/tanh) for [r, z, n]
    Tensor dq({n, h});           // gradient into q = W_hn h_prev + b_hn
    Tensor dh_prev({n, h});
    for (int64_t ni = 0; ni < n; ++ni) {
      for (int64_t j = 0; j < h; ++j) {
        const float g = dh.at2(ni, j);
        const float z = zt.at2(ni, j), r = rt.at2(ni, j),
                    nn = nt.at2(ni, j), q = qt.at2(ni, j);
        const float dn = g * (1.0f - z);
        const float dz = g * (hprev.at2(ni, j) - nn);
        dh_prev.at2(ni, j) = g * z;
        const float dan = dn * (1.0f - nn * nn);
        const float dr = dan * q;
        dq.at2(ni, j) = dan * r;
        da.at2(ni, j) = dr * r * (1.0f - r);
        da.at2(ni, h + j) = dz * z * (1.0f - z);
        da.at2(ni, 2 * h + j) = dan;
      }
    }

    // Bias gradients. b_ih gets da for all gates; b_hh gets da for r,z and
    // dq for n (the reset gate multiplies the hidden contribution).
    for (int64_t ni = 0; ni < n; ++ni) {
      for (int64_t j = 0; j < h; ++j) {
        b_ih_.grad.at(j) += da.at2(ni, j);
        b_ih_.grad.at(h + j) += da.at2(ni, h + j);
        b_ih_.grad.at(2 * h + j) += da.at2(ni, 2 * h + j);
        b_hh_.grad.at(j) += da.at2(ni, j);
        b_hh_.grad.at(h + j) += da.at2(ni, h + j);
        b_hh_.grad.at(2 * h + j) += dq.at2(ni, j);
      }
    }

    // Weight gradients: W_ih += da^T x_t; W_hh(r,z) += da^T h_prev;
    // W_hn += dq^T h_prev.
    Tensor xt = SliceTimestep(input_, t);
    Tensor dwih = MatMulTransposeA(da, xt);  // (3H, I)
    w_ih_.grad.AddInPlace(dwih);
    // Build hidden-side pre-activation grad [da_r, da_z, dq].
    Tensor dah({n, 3 * h});
    for (int64_t ni = 0; ni < n; ++ni) {
      for (int64_t j = 0; j < h; ++j) {
        dah.at2(ni, j) = da.at2(ni, j);
        dah.at2(ni, h + j) = da.at2(ni, h + j);
        dah.at2(ni, 2 * h + j) = dq.at2(ni, j);
      }
    }
    Tensor dwhh = MatMulTransposeA(dah, hprev);  // (3H, H)
    w_hh_.grad.AddInPlace(dwhh);

    // Input gradient at t: dx = da * W_ih.
    Tensor dx = MatMul(da, w_ih_.value);  // (N, I)
    for (int64_t ni = 0; ni < n; ++ni) {
      for (int64_t ci = 0; ci < input_size_; ++ci) {
        grad_input.at3(ni, ci, t) = dx.at2(ni, ci);
      }
    }

    // Hidden gradient into h_{t-1}: direct path + through gates.
    Tensor dh_gates = MatMul(dah, w_hh_.value);  // (N, H)
    dh = Add(dh_prev, dh_gates);
  }
  return grad_input;
}

void Gru::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&w_ih_);
  out->push_back(&w_hh_);
  out->push_back(&b_ih_);
  out->push_back(&b_hh_);
}

BiGru::BiGru(int64_t input_size, int64_t hidden_size, Rng* rng)
    : hidden_size_(hidden_size),
      fwd_(std::make_unique<Gru>(input_size, hidden_size, /*reverse=*/false,
                                 rng)),
      bwd_(std::make_unique<Gru>(input_size, hidden_size, /*reverse=*/true,
                                 rng)) {}

Tensor BiGru::Forward(const Tensor& x) {
  Tensor yf = fwd_->Forward(x);
  Tensor yb = bwd_->Forward(x);
  const int64_t n = x.dim(0), l = x.dim(2), h = hidden_size_;
  Tensor y({n, 2 * h, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t j = 0; j < h; ++j) {
      for (int64_t t = 0; t < l; ++t) {
        y.at3(ni, j, t) = yf.at3(ni, j, t);
        y.at3(ni, h + j, t) = yb.at3(ni, j, t);
      }
    }
  }
  return y;
}

Tensor BiGru::ForwardInference(const Tensor& x) {
  Tensor yf = fwd_->ForwardInference(x);
  Tensor yb = bwd_->ForwardInference(x);
  const int64_t n = x.dim(0), l = x.dim(2), h = hidden_size_;
  Tensor y = Tensor::Uninitialized({n, 2 * h, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t j = 0; j < h; ++j) {
      for (int64_t t = 0; t < l; ++t) {
        y.at3(ni, j, t) = yf.at3(ni, j, t);
        y.at3(ni, h + j, t) = yb.at3(ni, j, t);
      }
    }
  }
  return y;
}

Tensor BiGru::Backward(const Tensor& grad_output) {
  const int64_t n = grad_output.dim(0), l = grad_output.dim(2),
                h = hidden_size_;
  CAMAL_CHECK_EQ(grad_output.dim(1), 2 * h);
  Tensor gf({n, h, l}), gb({n, h, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t j = 0; j < h; ++j) {
      for (int64_t t = 0; t < l; ++t) {
        gf.at3(ni, j, t) = grad_output.at3(ni, j, t);
        gb.at3(ni, j, t) = grad_output.at3(ni, h + j, t);
      }
    }
  }
  Tensor gx_f = fwd_->Backward(gf);
  Tensor gx_b = bwd_->Backward(gb);
  return Add(gx_f, gx_b);
}

void BiGru::CollectParameters(std::vector<Parameter*>* out) {
  fwd_->CollectParameters(out);
  bwd_->CollectParameters(out);
}

void BiGru::SetTraining(bool training) {
  Module::SetTraining(training);
  fwd_->SetTraining(training);
  bwd_->SetTraining(training);
}

}  // namespace camal::nn
