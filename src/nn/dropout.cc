#include "nn/dropout.h"

namespace camal::nn {

Dropout::Dropout(float p, Rng* rng) : p_(p), rng_(rng) {
  CAMAL_CHECK_GE(p, 0.0f);
  CAMAL_CHECK_LT(p, 1.0f);
  CAMAL_CHECK(rng != nullptr);
}

Tensor Dropout::Forward(const Tensor& x) {
  forward_was_training_ = training();
  if (!training() || p_ == 0.0f) return x;
  mask_ = Tensor(x.shape());
  const float scale = 1.0f / (1.0f - p_);
  float* m = mask_.data();
  for (int64_t i = 0; i < mask_.numel(); ++i) {
    m[i] = rng_->Bernoulli(p_) ? 0.0f : scale;
  }
  return Mul(x, mask_);
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  if (!forward_was_training_ || p_ == 0.0f) return grad_output;
  return Mul(grad_output, mask_);
}

}  // namespace camal::nn
