#ifndef CAMAL_NN_UPSAMPLE_H_
#define CAMAL_NN_UPSAMPLE_H_

#include <vector>

#include "nn/module.h"

namespace camal::nn {

/// Nearest-neighbour upsampling of (N, C, L) -> (N, C, L * factor); the
/// decoder step in UNet-NILM and the multi-scale merge in TPNILM/TransNILM.
class UpsampleNearest1d : public Module {
 public:
  explicit UpsampleNearest1d(int64_t factor);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Forward without caching the input shape for Backward.
  Tensor ForwardInference(const Tensor& x) override;

 private:
  int64_t factor_;
  std::vector<int64_t> input_shape_;
};

/// Nearest-neighbour resize of (N, C, L) to an arbitrary target length;
/// used to restore the exact input resolution after pooling pyramids.
class ResizeNearest1d : public Module {
 public:
  explicit ResizeNearest1d(int64_t target_length);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Forward without caching the input shape for Backward.
  Tensor ForwardInference(const Tensor& x) override;

 private:
  int64_t target_length_;
  std::vector<int64_t> input_shape_;
};

}  // namespace camal::nn

#endif  // CAMAL_NN_UPSAMPLE_H_
