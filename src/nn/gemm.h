#ifndef CAMAL_NN_GEMM_H_
#define CAMAL_NN_GEMM_H_

#include <cstdint>

namespace camal::nn {

/// Single-precision GEMM with a fused epilogue, the compute kernel of the
/// batched inference runtime:
///
///   C[i][j] = epilogue(sum_p A[i][p] * B[p][j])
///   epilogue(v) = relu? max(0, row_scale[i] * v + row_shift[i])
///                      : row_scale[i] * v + row_shift[i]
///
/// All buffers are row-major: A (m, k), B (k, n), C (m, n). C is
/// overwritten. row_scale / row_shift may be null (identity scale, zero
/// shift) — a null pair with relu=false is a plain matrix product. The
/// epilogue is what lets Conv -> BatchNorm -> ReLU blocks collapse into
/// one pass over the output.
///
/// Dispatches at runtime to an AVX2+FMA micro-kernel when the host CPU
/// supports it (compiled separately; see gemm_avx2.cc), otherwise to a
/// portable register-blocked kernel.
void GemmEpilogue(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, const float* row_scale,
                  const float* row_shift, bool relu);

/// Non-overlapping pooling a conv GEMM can fuse into its output stage:
/// the pooled tensor is written directly and the full-size conv output
/// never materializes.
enum class ConvPool : int {
  kNone = 0,
  kMax = 1,  ///< MaxPool1d(w, w): max of each window of epilogue outputs.
  kAvg = 2,  ///< AvgPool1d(w, w): mean of each window of epilogue outputs.
};

/// Geometry and epilogue of one implicit-im2col convolution sample.
///
/// The weight matrix w is (cout, cin * kernel) row-major; xpad is one
/// sample (cin, lpad) with the zero padding already materialized by the
/// caller. Output column j reads input positions
///   j * stride + kk * dilation,   kk in [0, kernel)
/// which the lpad/stride/dilation geometry keeps in bounds, so every tile
/// load is unconditional. With pool != kNone the epilogue outputs are
/// reduced in non-overlapping windows of pool_size (window == stride, no
/// padding — the MaxPool1d(2,2) / AvgPool1d(s,s) shape that follows
/// Conv+BN+ReLU in the pooling-heavy baselines) and y has
/// (conv_out / pool_size) columns; the conv-column remainder is dropped,
/// exactly like a separate floor-mode pool.
struct ConvGemmParams {
  int64_t cout = 0;
  int64_t cin = 0;
  int64_t kernel = 0;
  int64_t lpad = 0;  ///< padded sample length (zero padding materialized)
  int64_t stride = 1;
  int64_t dilation = 1;
  ConvPool pool = ConvPool::kNone;
  int64_t pool_size = 1;  ///< pooling window == pooling stride
  const float* row_scale = nullptr;  ///< per-output-channel scale (or null)
  const float* row_shift = nullptr;  ///< per-output-channel shift (or null)
  bool relu = false;
};

/// Conv output length (before any fused pooling) for \p p.
inline int64_t ConvGemmOutputLength(const ConvGemmParams& p) {
  return (p.lpad - (p.dilation * (p.kernel - 1) + 1)) / p.stride + 1;
}

/// True when the tile kernels of every dispatch tier can fuse a pool of
/// this window (it must divide the narrowest tile width). Unsupported
/// windows still compute correctly but run on the scalar edge path, so
/// callers should fuse only when this holds.
bool ConvGemmSupportsPool(int64_t pool_size);

/// Strided/dilated 1-D convolution of one sample as an implicit-im2col
/// GEMM with the same epilogue as GemmEpilogue plus an optional fused
/// non-overlapping pool (see ConvGemmParams). The column matrix is read
/// directly out of xpad instead of being materialized. Per output scalar,
/// k accumulates in (ci, kk) order in every tile/edge/dispatch variant, so
/// results are independent of batch composition and tile placement.
/// Same runtime CPU dispatch as GemmEpilogue.
void ConvGemmEpilogue(const float* w, const float* xpad, float* y,
                      const ConvGemmParams& p);

namespace internal {

/// Portable kernel (always available).
void GemmEpilogueGeneric(const float* a, const float* b, float* c, int64_t m,
                         int64_t k, int64_t n, const float* row_scale,
                         const float* row_shift, bool relu);

void ConvGemmEpilogueGeneric(const float* w, const float* xpad, float* y,
                             const ConvGemmParams& p);

void ConvGemmEpilogueAvx2(const float* w, const float* xpad, float* y,
                          const ConvGemmParams& p);

void ConvGemmEpilogueAvx512(const float* w, const float* xpad, float* y,
                            const ConvGemmParams& p);

/// AVX2+FMA kernel; only callable when HasAvx2Gemm() is true.
void GemmEpilogueAvx2(const float* a, const float* b, float* c, int64_t m,
                      int64_t k, int64_t n, const float* row_scale,
                      const float* row_shift, bool relu);

/// AVX-512 kernel; only callable when HasAvx512Gemm() is true.
void GemmEpilogueAvx512(const float* a, const float* b, float* c, int64_t m,
                        int64_t k, int64_t n, const float* row_scale,
                        const float* row_shift, bool relu);

/// True when the AVX2 kernel was compiled in and the CPU supports it.
bool HasAvx2Gemm();

/// True when the AVX-512 kernel was compiled in and the CPU supports it.
bool HasAvx512Gemm();

}  // namespace internal

}  // namespace camal::nn

#endif  // CAMAL_NN_GEMM_H_
