#ifndef CAMAL_NN_GEMM_H_
#define CAMAL_NN_GEMM_H_

#include <cstdint>

namespace camal::nn {

/// Single-precision GEMM with a fused epilogue, the compute kernel of the
/// batched inference runtime:
///
///   C[i][j] = epilogue(sum_p A[i][p] * B[p][j])
///   epilogue(v) = relu? max(0, row_scale[i] * v + row_shift[i])
///                      : row_scale[i] * v + row_shift[i]
///
/// All buffers are row-major: A (m, k), B (k, n), C (m, n). C is
/// overwritten. row_scale / row_shift may be null (identity scale, zero
/// shift) — a null pair with relu=false is a plain matrix product. The
/// epilogue is what lets Conv -> BatchNorm -> ReLU blocks collapse into
/// one pass over the output.
///
/// Dispatches at runtime to an AVX2+FMA micro-kernel when the host CPU
/// supports it (compiled separately; see gemm_avx2.cc), otherwise to a
/// portable register-blocked kernel.
void GemmEpilogue(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, const float* row_scale,
                  const float* row_shift, bool relu);

/// Stride-1, dilation-1 convolution of one sample as an implicit-im2col
/// GEMM: w is (cout, cin * kernel) row-major, xpad one sample (cin, lpad)
/// with the zero padding already materialized by the caller, y is
/// (cout, lpad - kernel + 1). The column matrix is read directly out of
/// xpad instead of being materialized, with the same epilogue as
/// GemmEpilogue. Same runtime CPU dispatch.
void ConvGemmEpilogue(const float* w, const float* xpad, float* y, int64_t cout,
                      int64_t cin, int64_t kernel, int64_t lpad,
                      const float* row_scale, const float* row_shift,
                      bool relu);

namespace internal {

/// Portable kernel (always available).
void GemmEpilogueGeneric(const float* a, const float* b, float* c, int64_t m,
                         int64_t k, int64_t n, const float* row_scale,
                         const float* row_shift, bool relu);

void ConvGemmEpilogueGeneric(const float* w, const float* xpad, float* y,
                             int64_t cout, int64_t cin, int64_t kernel,
                             int64_t lpad, const float* row_scale,
                             const float* row_shift, bool relu);

void ConvGemmEpilogueAvx2(const float* w, const float* xpad, float* y,
                          int64_t cout, int64_t cin, int64_t kernel,
                          int64_t lpad, const float* row_scale,
                          const float* row_shift, bool relu);

void ConvGemmEpilogueAvx512(const float* w, const float* xpad, float* y,
                            int64_t cout, int64_t cin, int64_t kernel,
                            int64_t lpad, const float* row_scale,
                            const float* row_shift, bool relu);

/// AVX2+FMA kernel; only callable when HasAvx2Gemm() is true.
void GemmEpilogueAvx2(const float* a, const float* b, float* c, int64_t m,
                      int64_t k, int64_t n, const float* row_scale,
                      const float* row_shift, bool relu);

/// AVX-512 kernel; only callable when HasAvx512Gemm() is true.
void GemmEpilogueAvx512(const float* a, const float* b, float* c, int64_t m,
                        int64_t k, int64_t n, const float* row_scale,
                        const float* row_shift, bool relu);

/// True when the AVX2 kernel was compiled in and the CPU supports it.
bool HasAvx2Gemm();

/// True when the AVX-512 kernel was compiled in and the CPU supports it.
bool HasAvx512Gemm();

}  // namespace internal

}  // namespace camal::nn

#endif  // CAMAL_NN_GEMM_H_
